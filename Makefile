.PHONY: all build doc test bench bench-json bench-par cache-stats fault profile clean

all: build doc

build:
	dune build

# API documentation: odoc over every public .mli.  When the odoc binary
# is not installed, `dune build @doc` is an empty alias and succeeds
# silently — the odoc comments still serve as in-source reference.
doc:
	dune build @doc

test:
	dune runtest

# The full evaluation harness (every table and claim).
bench: build
	dune exec bench/main.exe

# Machine-readable Table 1 plus the result-cache cold/warm comparison:
# writes ./BENCH_table1.json (engine -> cycles/sec, process bytes,
# source lines) and ./BENCH_cache.json (hit/miss counters, per-engine
# cold vs warm seconds with a bit-identity check).
bench-json: build
	dune exec bench/main.exe -- t1-json cache

# Print the Flow.Cache hit/miss counters recorded in ./BENCH_cache.json
# by the last `make bench-json` (or `bench/main.exe -- cache`) run.
cache-stats:
	dune exec bench/main.exe -- cache-stats

# Parallel campaign scaling: the DECT SEU campaign at 1, 2 and 4 worker
# domains, with a bit-identity check of every parallel report against
# the serial one; writes ./BENCH_parallel.json (runs/sec + speedups).
bench-par: build
	dune exec bench/main.exe -- par

# Fault campaigns: a small deterministic DECT SEU campaign (seeded, so
# repeated runs print the same classification table) plus the bench
# target that writes ./BENCH_fault.json (coverage %, runs/sec).
# Add --domains N to the CLI line to run the campaign on N domains.
fault: build
	dune exec bin/ocapi_cli.exe -- fault --design dect --campaign seu --runs 200 --seed 1
	dune exec bench/main.exe -- fault

# Telemetry demo: metrics report + Chrome trace for the DECT compiled
# simulator (open the .trace.json in https://ui.perfetto.dev).
profile: build
	dune exec bin/ocapi_cli.exe -- profile --design dect --engine compiled

clean:
	dune clean
