.PHONY: all build test bench bench-json fault profile clean

all: build

build:
	dune build

test:
	dune runtest

# The full evaluation harness (every table and claim).
bench: build
	dune exec bench/main.exe

# Machine-readable Table 1 only: writes ./BENCH_table1.json
# (engine -> cycles/sec, process bytes, source lines).
bench-json: build
	dune exec bench/main.exe -- t1-json

# Fault campaigns: a small deterministic DECT SEU campaign (seeded, so
# repeated runs print the same classification table) plus the bench
# target that writes ./BENCH_fault.json (coverage %, runs/sec).
fault: build
	dune exec bin/ocapi_cli.exe -- fault --design dect --campaign seu --runs 200 --seed 1
	dune exec bench/main.exe -- fault

# Telemetry demo: metrics report + Chrome trace for the DECT compiled
# simulator (open the .trace.json in https://ui.perfetto.dev).
profile: build
	dune exec bin/ocapi_cli.exe -- profile --design dect --engine compiled

clean:
	dune clean
