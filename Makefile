.PHONY: all build doc test bench bench-json bench-native bench-par \
	bench-batch bench-service bench-smoke cache-stats fault fuzz batch serve \
	profile report perf-gate ci-determinism ci-crash-recovery ci-fuzz \
	ci-local clean

all: build doc

build:
	dune build

# API documentation: odoc over every public .mli.  Without the odoc
# binary `dune build @doc` is an empty alias that succeeds silently —
# which would let CI report green docs it never built — so the target
# fails loudly when odoc is absent.
doc:
	@command -v odoc >/dev/null 2>&1 || { \
	  echo "error: odoc is not installed (opam install odoc);" \
	       "refusing to pretend the docs built" >&2; \
	  exit 1; }
	dune build @doc

test:
	dune runtest

# The full evaluation harness (every table and claim).
bench: build
	dune exec bench/main.exe

# Machine-readable Table 1 plus the result-cache cold/warm comparison:
# writes ./BENCH_table1.json (engine -> cycles/sec, process bytes,
# source lines) and ./BENCH_cache.json (hit/miss counters, per-engine
# cold vs warm seconds with a bit-identity check).
bench-json: build
	dune exec bench/main.exe -- t1-json cache

# Print the Flow.Cache hit/miss counters recorded in ./BENCH_cache.json
# by the last `make bench-json` (or `bench/main.exe -- cache`) run.
cache-stats:
	dune exec bench/main.exe -- cache-stats

# Native-engine benchmark: cold emit+compile+dynlink vs warm cache-hit
# session build (the warm run must invoke zero compilers), then a timed
# DECT run; appends the native:compile and native:run series to the
# perf ledger.  Skips (successfully) on toolchain-less hosts.
bench-native: build
	dune exec bench/main.exe -- native

# Parallel campaign scaling: the DECT SEU campaign at 1, 2 and 4 worker
# domains, with a bit-identity check of every parallel report against
# the serial one; writes ./BENCH_parallel.json (runs/sec + speedups).
bench-par: build
	dune exec bench/main.exe -- par

# Batch service throughput: a mixed duplicated manifest through the job
# queue on 2 worker domains; writes ./BENCH_batch.json (jobs/sec, queue
# wait p50/p95, dedup hit rate).
bench-batch: build
	dune exec bench/main.exe -- batch

# Resilient service benchmark: a clean campaign vs the same campaign
# under seeded chaos (worker kills) plus a pure journal-replay restart;
# writes ./BENCH_service.json (throughputs, retry counts, a
# byte-identity convergence check).
bench-service: build
	dune exec bench/main.exe -- service

# The CI smoke stage: every BENCH_*.json writer at a size that finishes
# in seconds (BENCH_table1 / fault / batch / cache / service).
bench-smoke: build
	dune exec bench/main.exe -- smoke

# Fault campaigns: a small deterministic DECT SEU campaign (seeded, so
# repeated runs print the same classification table) plus the bench
# target that writes ./BENCH_fault.json (coverage %, runs/sec).
# Add --domains N to the CLI line to run the campaign on N domains.
fault: build
	dune exec bin/ocapi_cli.exe -- fault --design dect --campaign seu --runs 200 --seed 1
	dune exec bench/main.exe -- fault

# Batch mode demo: the example manifest through the job queue on two
# domains, artifacts under _generated/batch/.
batch: build
	dune exec bin/ocapi_cli.exe -- batch --manifest examples/jobs.jsonl --domains 2

# Resilient service demo: the service manifest (including its poisoned
# "chaos": "crash" line) through supervised worker processes with a
# crash-recoverable journal under _generated/service/.  Rerunning after
# a Ctrl-C or a kill resumes from the journal.  Exits 1: the poisoned
# job ends as Failed/retries-exhausted by design.
serve: build
	dune exec bin/ocapi_cli.exe -- serve \
	  --manifest examples/service_jobs.jsonl --workers 2 --retries 2 \
	  --backoff-base 0.2 || true

# Telemetry demo: metrics report + Chrome trace for the DECT compiled
# simulator (open the .trace.json in https://ui.perfetto.dev).
profile: build
	dune exec bin/ocapi_cli.exe -- profile --design dect --engine compiled

# Performance report: trend table over every series in the perf ledger
# (PERF_LEDGER.jsonl, appended to by each bench/smoke run) plus a
# self-contained HTML page with sparkline history per series.
report: build
	dune exec bin/ocapi_cli.exe -- report --html PERF_REPORT.html

# The CI perf gate: newest ledger entry per series vs its rolling
# baseline; ordinary regressions warn, a >50% collapse fails.
# scripts/perf_gate.sh --self-test checks the gate catches an injected
# collapse.
perf-gate: build
	scripts/perf_gate.sh

# The CI determinism gate: serial vs --domains 2 campaign reports,
# batch artifact trees and canonical event logs must be bit-identical.
ci-determinism: build
	scripts/determinism_gate.sh

# The CI crash-recovery gate: a seeded chaos campaign (worker kills, a
# mid-campaign server SIGKILL, one poisoned job) must converge after
# restart to an artifact tree byte-identical to an undisturbed run.
ci-crash-recovery: build
	scripts/crash_recovery_gate.sh

# Differential fuzz demo: replay the committed reproducer corpus, then
# cross-check 50 generated designs on every engine, shrinking any
# divergence to a minimal reproducer.
fuzz: build
	dune exec bin/ocapi_cli.exe -- fuzz --seed 42 --count 50 \
	  --corpus corpus/fuzz_corpus.jsonl

# The CI fuzz smoke gate: harness self-test (an injected engine bug must
# be caught and shrunk), corpus replay + 25 fresh designs on every
# engine, and a serial vs --domains 2 byte-compare of the fuzz report.
ci-fuzz: build
	scripts/fuzz_gate.sh

# The whole CI pipeline, run locally (build, docs when odoc exists,
# tests, determinism gate, bench smoke) — an `act`-equivalent dry run.
ci-local:
	scripts/ci_local.sh

clean:
	dune clean
