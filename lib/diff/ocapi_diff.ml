(* Differential fuzzing of the engine stack: seeded design genomes,
   cross-engine checks, greedy shrinking, and a replayable JSONL
   reproducer corpus.  See ocapi_diff.mli for the contract. *)

module Json = Ocapi_obs.Json

(* ------------------------------------------------------------------ *)
(* Genomes                                                            *)
(* ------------------------------------------------------------------ *)

module Spec = struct
  type fmt = { f_signed : bool; f_width : int; f_frac : int }

  type expr =
    | E_const of int
    | E_input of int
    | E_reg of int
    | E_ram_q of int
    | E_bin of string * expr * expr
    | E_un of string * expr
    | E_mux of expr * expr * expr * expr
    | E_resize of fmt * string * string * expr
    | E_rom of int * expr

  type state_spec = { ss_outs : expr list; ss_assigns : expr list; ss_flag : expr }

  type ram_spec = {
    rs_words : int;
    rs_data : fmt;
    rs_addr : expr;
    rs_wdata : expr;
    rs_we : expr;
  }

  type t = {
    sp_seed : int;
    sp_inputs : fmt list;
    sp_regs : fmt list;
    sp_outs : fmt list;
    sp_roms : (fmt * int list) list;
    sp_states : state_spec list;
    sp_ram : ram_spec option;
    sp_cycles : int;
    sp_stim_seed : int;
  }

  let fixed_of_fmt f =
    Fixed.format
      (if f.f_signed then Fixed.Signed else Fixed.Unsigned)
      ~width:f.f_width ~frac:f.f_frac

  (* Every [E_const] mantissa lives in one fixed small format, so the
     constant pool stays serializable as bare ints. *)
  let const_fmt = Fixed.signed ~width:8 ~frac:2

  let clamp_mantissa fmt m =
    let lo = Fixed.min_mantissa fmt and hi = Fixed.max_mantissa fmt in
    let m = Int64.of_int m in
    if Int64.compare m lo < 0 then lo
    else if Int64.compare m hi > 0 then hi
    else m

  let rounding_of_name = function
    | "nearest" -> Fixed.Round_nearest
    | "even" -> Fixed.Round_even
    | _ -> Fixed.Truncate

  let overflow_of_name = function "sat" -> Fixed.Saturate | _ -> Fixed.Wrap

  (* ---------------- generation ---------------- *)

  let gen_fmt rs =
    {
      f_signed = Random.State.bool rs;
      f_width = 2 + Random.State.int rs 8;
      f_frac = Random.State.int rs 8 - 3;
    }

  let gen_mantissa rs f =
    let fmt = fixed_of_fmt f in
    let lo = Fixed.min_mantissa fmt and hi = Fixed.max_mantissa fmt in
    let span = Int64.add (Int64.sub hi lo) 1L in
    Int64.to_int (Int64.add lo (Random.State.int64 rs span))

  let bin_ops = [| "add"; "sub"; "and"; "or"; "xor"; "eq" |]
  let un_ops = [| "neg"; "not"; "abs" |]
  let roundings = [| "trunc"; "nearest"; "even" |]
  let overflows = [| "wrap"; "sat" |]

  let pick rs a = a.(Random.State.int rs (Array.length a))

  (* General expression generator over the genome's leaf universe. *)
  let rec gen_expr rs ~n_inputs ~n_regs ~ram ~n_roms depth =
    let leaf () =
      let n_kinds = 4 + if ram then 1 else 0 in
      match Random.State.int rs n_kinds with
      | 0 -> E_const (Random.State.int rs 101 - 50)
      | 1 when n_inputs > 0 -> E_input (Random.State.int rs n_inputs)
      | (2 | 3) when n_regs > 0 -> E_reg (Random.State.int rs n_regs)
      | 4 -> E_ram_q 0
      | _ ->
        if n_inputs > 0 then E_input (Random.State.int rs n_inputs)
        else E_const (Random.State.int rs 101 - 50)
    in
    if depth <= 0 then leaf ()
    else
      let sub () = gen_expr rs ~n_inputs ~n_regs ~ram ~n_roms (depth - 1) in
      match Random.State.int rs 12 with
      | 0 | 1 -> leaf ()
      | 2 | 3 | 4 | 5 | 6 -> E_bin (pick rs bin_ops, sub (), sub ())
      | 7 -> E_un (pick rs un_ops, sub ())
      | 8 -> E_mux (sub (), sub (), sub (), sub ())
      | 9 -> E_resize (gen_fmt rs, pick rs roundings, pick rs overflows, sub ())
      | 10 when n_roms > 0 ->
        E_rom (Random.State.int rs n_roms, sub ())
      | _ -> leaf ()

  (* RAM control expressions read registers and constants only, so the
     timed component can put addr/wdata/we on the interconnect in the
     token-production phase (the DECT timed/untimed loop). *)
  let rec gen_ctrl rs ~n_regs depth =
    let leaf () =
      if n_regs > 0 && Random.State.bool rs then
        E_reg (Random.State.int rs n_regs)
      else E_const (Random.State.int rs 101 - 50)
    in
    if depth <= 0 then leaf ()
    else
      match Random.State.int rs 4 with
      | 0 ->
        E_bin
          ( pick rs [| "add"; "xor"; "and" |],
            gen_ctrl rs ~n_regs (depth - 1),
            gen_ctrl rs ~n_regs (depth - 1) )
      | _ -> leaf ()

  let generate ?(size = 2) ~seed () =
    let size = max 1 (min 4 size) in
    let rs = Random.State.make [| 0xd1f; seed; size |] in
    let n_inputs = 1 + Random.State.int rs (1 + size) in
    let n_regs = 1 + Random.State.int rs (1 + size) in
    let n_outs = 1 + Random.State.int rs 2 in
    let n_states = 1 + Random.State.int rs size in
    let n_roms = if Random.State.int rs 3 = 0 then 1 else 0 in
    let ram = size >= 2 && Random.State.int rs 3 = 0 in
    let inputs = List.init n_inputs (fun _ -> gen_fmt rs) in
    let regs = List.init n_regs (fun _ -> gen_fmt rs) in
    let outs = List.init n_outs (fun _ -> gen_fmt rs) in
    let roms =
      List.init n_roms (fun _ ->
          let f = gen_fmt rs in
          let len = 4 + Random.State.int rs 5 in
          (f, List.init len (fun _ -> gen_mantissa rs f)))
    in
    let ram_spec =
      if ram then
        Some
          {
            rs_words = 8;
            rs_data = gen_fmt rs;
            rs_addr = gen_ctrl rs ~n_regs 2;
            rs_wdata = gen_ctrl rs ~n_regs 2;
            rs_we = gen_ctrl rs ~n_regs 1;
          }
      else None
    in
    let depth = min 4 (1 + size) in
    let gexpr d = gen_expr rs ~n_inputs ~n_regs ~ram ~n_roms d in
    let states =
      List.init n_states (fun _ ->
          {
            ss_outs =
              List.init n_outs (fun j ->
                  (* keep the RAM read observable: fold rdata into the
                     first probe of every state *)
                  if j = 0 && ram then E_bin ("xor", E_ram_q 0, gexpr (depth - 1))
                  else gexpr depth);
            ss_assigns = List.init n_regs (fun _ -> gexpr depth);
            ss_flag = gexpr 2;
          })
    in
    {
      sp_seed = seed;
      sp_inputs = inputs;
      sp_regs = regs;
      sp_outs = outs;
      sp_roms = roms;
      sp_states = states;
      sp_ram = ram_spec;
      sp_cycles = 16 + (4 * size);
      sp_stim_seed = seed lxor 0x9e37;
    }

  (* ---------------- build ---------------- *)

  let build spec =
    let sys = Cycle_system.create (Printf.sprintf "fz%d" spec.sp_seed) in
    let clk = Clock.default in
    let input_ports =
      Array.of_list
        (List.mapi
           (fun i f ->
             Signal.Input.create (Printf.sprintf "in%d" i) (fixed_of_fmt f))
           spec.sp_inputs)
    in
    let regs =
      Array.of_list
        (List.mapi
           (fun i f ->
             Signal.Reg.create clk (Printf.sprintf "r%d" i) (fixed_of_fmt f))
           spec.sp_regs)
    in
    let flag = Signal.Reg.create clk "flag" Fixed.bit_format in
    let roms =
      Array.of_list
        (List.mapi
           (fun i (f, contents) ->
             let fmt = fixed_of_fmt f in
             Signal.Rom.create
               (Printf.sprintf "rom%d" i)
               fmt
               (Array.of_list
                  (List.map
                     (fun m -> Fixed.create fmt (clamp_mantissa fmt m))
                     contents)))
           spec.sp_roms)
    in
    let rdata_port =
      match spec.sp_ram with
      | Some r -> Some (Signal.Input.create "rdata" (fixed_of_fmt r.rs_data))
      | None -> None
    in
    let rec sig_of = function
      | E_const m -> Signal.const (Fixed.create const_fmt (clamp_mantissa const_fmt m))
      | E_input i -> Signal.input input_ports.(i)
      | E_reg i -> Signal.reg_q regs.(i)
      | E_ram_q _ -> (
        match rdata_port with
        | Some p -> Signal.input p
        | None -> Signal.const (Fixed.zero const_fmt))
      | E_bin (op, a, b) -> (
        let a = sig_of a and b = sig_of b in
        match op with
        | "add" -> Signal.add a b
        | "sub" -> Signal.sub a b
        | "and" -> Signal.and_ a b
        | "or" -> Signal.or_ a b
        | "xor" -> Signal.xor_ a b
        | _ -> Signal.eq a b)
      | E_un (op, a) -> (
        let a = sig_of a in
        match op with
        | "neg" -> Signal.neg a
        | "abs" -> Signal.abs_ a
        | _ -> Signal.not_ a)
      | E_mux (a, b, c, d) ->
        Signal.mux2 (Signal.lt (sig_of a) (sig_of b)) (sig_of c) (sig_of d)
      | E_resize (f, r, o, a) ->
        Signal.resize ~round:(rounding_of_name r) ~overflow:(overflow_of_name o)
          (fixed_of_fmt f) (sig_of a)
      | E_rom (i, a) ->
        Signal.rom roms.(i)
          (Signal.resize (Fixed.unsigned ~width:4 ~frac:0) (sig_of a))
    in
    let out_fmts = Array.of_list (List.map fixed_of_fmt spec.sp_outs) in
    let addr_fmt = Fixed.unsigned ~width:3 ~frac:0 in
    let sfg_of_state k st =
      Sfg.build (Printf.sprintf "sfg%d" k) (fun b ->
          Array.iter (fun p -> ignore (Sfg.Builder.input_port b p)) input_ports;
          (match rdata_port with
          | Some p -> ignore (Sfg.Builder.input_port b p)
          | None -> ());
          List.iteri
            (fun j e ->
              Sfg.Builder.output b
                (Printf.sprintf "y%d" j)
                (Signal.resize ~overflow:Fixed.Saturate out_fmts.(j) (sig_of e)))
            st.ss_outs;
          (match spec.sp_ram with
          | Some r ->
            Sfg.Builder.output b "addr" (Signal.resize addr_fmt (sig_of r.rs_addr));
            Sfg.Builder.output b "wdata"
              (Signal.resize (fixed_of_fmt r.rs_data) (sig_of r.rs_wdata));
            Sfg.Builder.output b "we"
              (Signal.resize Fixed.bit_format (sig_of r.rs_we))
          | None -> ());
          List.iteri
            (fun j e -> Sfg.Builder.assign_resized b regs.(j) (sig_of e))
            st.ss_assigns;
          Sfg.Builder.assign_resized b flag (sig_of st.ss_flag))
    in
    let sfgs = List.mapi sfg_of_state spec.sp_states in
    let fsm = Fsm.create "ctl" in
    let fstates =
      List.mapi
        (fun k _ ->
          if k = 0 then Fsm.initial fsm "s0"
          else Fsm.state fsm (Printf.sprintf "s%d" k))
        spec.sp_states
    in
    let n = List.length fstates in
    List.iteri
      (fun k sfg ->
        let s = List.nth fstates k in
        let next = List.nth fstates ((k + 1) mod n) in
        if n > 1 then Fsm.(s |-- cnd (Signal.reg_q flag) |+ sfg |-> next);
        Fsm.(s |-- always |+ sfg |-> s))
      sfgs;
    let dp = Cycle_system.add_timed sys "dp" fsm in
    List.iteri
      (fun i f ->
        let fmt = fixed_of_fmt f in
        let stim cyc =
          let r = Random.State.make [| 0x5eed; spec.sp_stim_seed; i; cyc |] in
          let lo = Fixed.min_mantissa fmt and hi = Fixed.max_mantissa fmt in
          let span = Int64.add (Int64.sub hi lo) 1L in
          Some (Fixed.create fmt (Int64.add lo (Random.State.int64 r span)))
        in
        let ic = Cycle_system.add_input sys (Printf.sprintf "pi%d" i) fmt stim in
        ignore
          (Cycle_system.connect sys (ic, "out") [ (dp, Printf.sprintf "in%d" i) ]))
      spec.sp_inputs;
    (match spec.sp_ram with
    | Some r ->
      let ram =
        Cycle_system.add_untimed sys
          (Ram_cell.kernel ~name:"fzram" ~words:r.rs_words
             ~data_fmt:(fixed_of_fmt r.rs_data) ~addr_fmt)
      in
      ignore (Cycle_system.connect sys (dp, "addr") [ (ram, "addr") ]);
      ignore (Cycle_system.connect sys (dp, "wdata") [ (ram, "wdata") ]);
      ignore (Cycle_system.connect sys (dp, "we") [ (ram, "we") ]);
      ignore (Cycle_system.connect sys (ram, "rdata") [ (dp, "rdata") ])
    | None -> ());
    List.iteri
      (fun j _ ->
        let p = Cycle_system.add_output sys (Printf.sprintf "po%d" j) in
        ignore
          (Cycle_system.connect sys (dp, Printf.sprintf "y%d" j) [ (p, "in") ]))
      spec.sp_outs;
    sys

  let digest spec = Cycle_system.digest (build spec)

  (* ---------------- size ---------------- *)

  let rec expr_size = function
    | E_const _ | E_input _ | E_reg _ | E_ram_q _ -> 1
    | E_bin (_, a, b) -> 1 + expr_size a + expr_size b
    | E_un (_, a) -> 1 + expr_size a
    | E_mux (a, b, c, d) ->
      1 + expr_size a + expr_size b + expr_size c + expr_size d
    | E_resize (_, _, _, a) -> 1 + expr_size a
    | E_rom (_, a) -> 1 + expr_size a

  let size spec =
    let state_exprs st =
      List.fold_left (fun acc e -> acc + expr_size e) 0 (st.ss_outs @ st.ss_assigns)
      + expr_size st.ss_flag
    in
    let exprs =
      List.fold_left (fun acc st -> acc + state_exprs st) 0 spec.sp_states
      + (match spec.sp_ram with
        | Some r -> expr_size r.rs_addr + expr_size r.rs_wdata + expr_size r.rs_we
        | None -> 0)
    in
    exprs
    + (2
      * (List.length spec.sp_inputs + List.length spec.sp_regs
        + List.length spec.sp_outs + List.length spec.sp_roms))
    + (3 * List.length spec.sp_states)
    + (match spec.sp_ram with Some _ -> 5 | None -> 0)
    + spec.sp_cycles

  (* ---------------- JSON ---------------- *)

  let fmt_json f =
    Json.Obj [ ("s", Json.Bool f.f_signed); ("w", Json.Int f.f_width); ("f", Json.Int f.f_frac) ]

  let rec expr_json = function
    | E_const m -> Json.List [ Json.String "c"; Json.Int m ]
    | E_input i -> Json.List [ Json.String "i"; Json.Int i ]
    | E_reg i -> Json.List [ Json.String "r"; Json.Int i ]
    | E_ram_q w -> Json.List [ Json.String "q"; Json.Int w ]
    | E_bin (op, a, b) ->
      Json.List [ Json.String "b"; Json.String op; expr_json a; expr_json b ]
    | E_un (op, a) -> Json.List [ Json.String "u"; Json.String op; expr_json a ]
    | E_mux (a, b, c, d) ->
      Json.List [ Json.String "m"; expr_json a; expr_json b; expr_json c; expr_json d ]
    | E_resize (f, r, o, a) ->
      Json.List [ Json.String "z"; fmt_json f; Json.String r; Json.String o; expr_json a ]
    | E_rom (i, a) -> Json.List [ Json.String "t"; Json.Int i; expr_json a ]

  let state_json st =
    Json.Obj
      [
        ("outs", Json.List (List.map expr_json st.ss_outs));
        ("assigns", Json.List (List.map expr_json st.ss_assigns));
        ("flag", expr_json st.ss_flag);
      ]

  let to_json spec =
    Json.Obj
      [
        ("seed", Json.Int spec.sp_seed);
        ("inputs", Json.List (List.map fmt_json spec.sp_inputs));
        ("regs", Json.List (List.map fmt_json spec.sp_regs));
        ("outs", Json.List (List.map fmt_json spec.sp_outs));
        ( "roms",
          Json.List
            (List.map
               (fun (f, contents) ->
                 Json.List
                   [ fmt_json f; Json.List (List.map (fun m -> Json.Int m) contents) ])
               spec.sp_roms) );
        ("states", Json.List (List.map state_json spec.sp_states));
        ( "ram",
          match spec.sp_ram with
          | None -> Json.Null
          | Some r ->
            Json.Obj
              [
                ("words", Json.Int r.rs_words);
                ("data", fmt_json r.rs_data);
                ("addr", expr_json r.rs_addr);
                ("wdata", expr_json r.rs_wdata);
                ("we", expr_json r.rs_we);
              ] );
        ("cycles", Json.Int spec.sp_cycles);
        ("stim_seed", Json.Int spec.sp_stim_seed);
      ]

  exception Bad of string

  let get_int = function Json.Int n -> n | _ -> raise (Bad "expected int")
  let get_list = function Json.List l -> l | _ -> raise (Bad "expected list")
  let get_string = function Json.String s -> s | _ -> raise (Bad "expected string")

  let field name j =
    match Json.member name j with
    | Some v -> v
    | None -> raise (Bad ("missing field " ^ name))

  let fmt_of_json j =
    match (Json.member "s" j, Json.member "w" j, Json.member "f" j) with
    | Some (Json.Bool s), Some (Json.Int w), Some (Json.Int f) ->
      { f_signed = s; f_width = w; f_frac = f }
    | _ -> raise (Bad "bad format")

  let rec expr_of_json j =
    match get_list j with
    | [ Json.String "c"; m ] -> E_const (get_int m)
    | [ Json.String "i"; i ] -> E_input (get_int i)
    | [ Json.String "r"; i ] -> E_reg (get_int i)
    | [ Json.String "q"; w ] -> E_ram_q (get_int w)
    | [ Json.String "b"; op; a; b ] ->
      E_bin (get_string op, expr_of_json a, expr_of_json b)
    | [ Json.String "u"; op; a ] -> E_un (get_string op, expr_of_json a)
    | [ Json.String "m"; a; b; c; d ] ->
      E_mux (expr_of_json a, expr_of_json b, expr_of_json c, expr_of_json d)
    | [ Json.String "z"; f; r; o; a ] ->
      E_resize (fmt_of_json f, get_string r, get_string o, expr_of_json a)
    | [ Json.String "t"; i; a ] -> E_rom (get_int i, expr_of_json a)
    | _ -> raise (Bad "bad expression")

  let state_of_json j =
    {
      ss_outs = List.map expr_of_json (get_list (field "outs" j));
      ss_assigns = List.map expr_of_json (get_list (field "assigns" j));
      ss_flag = expr_of_json (field "flag" j);
    }

  let of_json j =
    try
      Ok
        {
          sp_seed = get_int (field "seed" j);
          sp_inputs = List.map fmt_of_json (get_list (field "inputs" j));
          sp_regs = List.map fmt_of_json (get_list (field "regs" j));
          sp_outs = List.map fmt_of_json (get_list (field "outs" j));
          sp_roms =
            List.map
              (fun r ->
                match get_list r with
                | [ f; contents ] ->
                  (fmt_of_json f, List.map get_int (get_list contents))
                | _ -> raise (Bad "bad rom"))
              (get_list (field "roms" j));
          sp_states = List.map state_of_json (get_list (field "states" j));
          sp_ram =
            (match field "ram" j with
            | Json.Null -> None
            | r ->
              Some
                {
                  rs_words = get_int (field "words" r);
                  rs_data = fmt_of_json (field "data" r);
                  rs_addr = expr_of_json (field "addr" r);
                  rs_wdata = expr_of_json (field "wdata" r);
                  rs_we = expr_of_json (field "we" r);
                });
          sp_cycles = get_int (field "cycles" j);
          sp_stim_seed = get_int (field "stim_seed" j);
        }
    with Bad msg -> Error ("spec: " ^ msg)
end

(* ------------------------------------------------------------------ *)
(* Findings                                                           *)
(* ------------------------------------------------------------------ *)

type finding = { f_check : string; f_error : Ocapi_error.t }

let error_json (e : Ocapi_error.t) =
  Json.Obj
    [
      ("code", Json.String (Ocapi_error.code_label e.e_code));
      ("severity", Json.String (Ocapi_error.severity_label e.e_severity));
      ("engine", Json.String e.e_engine);
      ( "construct",
        match e.e_construct with None -> Json.Null | Some c -> Json.String c );
      ("cycle", match e.e_cycle with None -> Json.Null | Some c -> Json.Int c);
      ("nets", Json.List (List.map (fun n -> Json.String n) e.e_nets));
      ("message", Json.String e.e_message);
    ]

let finding_json f =
  Json.Obj [ ("check", Json.String f.f_check); ("error", error_json f.f_error) ]

(* ------------------------------------------------------------------ *)
(* Differential checks                                                *)
(* ------------------------------------------------------------------ *)

let buggy_name = "buggy-lsb"

let default_engines () =
  List.filter (fun n -> n <> buggy_name) (Ocapi_engine.names ())

type run_result =
  | R_ok of (string * (int * Fixed.t) list) list
  | R_err of Ocapi_error.t

let run_engine sys ~cycles name =
  try R_ok (Flow.simulate ~engine:name sys ~cycles)
  with exn -> (
    match Flow.classify_exn ~engine:name exn with
    | Some e -> R_err e
    | None -> raise exn)

let engines_findings sys ~cycles engines =
  match engines with
  | [] | [ _ ] -> []
  | base :: rest ->
    let base_r = run_engine sys ~cycles base in
    List.concat_map
      (fun name ->
        let pair = base ^ "-vs-" ^ name in
        let mk ?construct ?cycle msg =
          [
            {
              f_check = "engines";
              f_error =
                Ocapi_error.make ?construct ?cycle Ocapi_error.Mismatch
                  ~engine:pair msg;
            };
          ]
        in
        match (base_r, run_engine sys ~cycles name) with
        | R_ok ha, R_ok hb -> (
          match Flow.first_history_mismatch ha hb with
          | None -> []
          | Some (probe, cycle, detail) ->
            mk ~construct:probe ?cycle
              (Printf.sprintf "probe %s diverges: %s" probe detail))
        | R_err ea, R_err eb ->
          if ea.e_code = eb.e_code then []
          else
            mk
              (Printf.sprintf "engines stop differently: %s raises %s, %s raises %s"
                 base
                 (Ocapi_error.code_label ea.e_code)
                 name
                 (Ocapi_error.code_label eb.e_code))
        | R_ok _, R_err eb ->
          mk
            (Printf.sprintf "%s completes but %s stops with %s: %s" base name
               (Ocapi_error.code_label eb.e_code)
               eb.e_message)
        | R_err ea, R_ok _ ->
          mk
            (Printf.sprintf "%s completes but %s stops with %s: %s" name base
               (Ocapi_error.code_label ea.e_code)
               ea.e_message))
      rest

let includes_gate engines =
  List.exists
    (fun n ->
      match Ocapi_engine.find n with
      | Some e -> Ocapi_engine.name_of e = "gate"
      | None -> false)
    engines

let classified_check ~check ~engine body =
  try body ()
  with exn -> (
    match Flow.classify_exn ~engine exn with
    | Some e -> [ { f_check = check; f_error = e } ]
    | None -> raise exn)

let opt_equivalence_findings spec =
  classified_check ~check:"opt-equivalence" ~engine:"ir" (fun () ->
      let b = Ocapi_ir.behavioral (Spec.build spec) in
      let g = Ocapi_ir.pipeline [ Ocapi_ir.lower_to_gate; Ocapi_ir.optimize_gates ] b in
      match Ocapi_ir.check_equivalence ~cycles:spec.Spec.sp_cycles b g with
      | Ok () -> []
      | Error e -> [ { f_check = "opt-equivalence"; f_error = e } ])

let norm_seu_outcome = function
  | Ocapi_fault.Masked -> "m"
  | Ocapi_fault.Sdc { probe; cycle; detail } ->
    Printf.sprintf "s:%s:%s:%s" probe
      (match cycle with Some c -> string_of_int c | None -> "-")
      detail
  | Ocapi_fault.Detected e -> "d:" ^ Ocapi_error.code_label e.Ocapi_error.e_code

let seu_cross_findings spec =
  classified_check ~check:"seu-cross" ~engine:"fault" (fun () ->
      let signature engine =
        let sys = Spec.build spec in
        let r =
          Ocapi_fault.seu_campaign ~engine ~runs:8
            ~seed:(1 + (spec.Spec.sp_seed land 0xffff))
            sys ~cycles:spec.Spec.sp_cycles
        in
        List.map
          (fun (run : Ocapi_fault.seu_run) ->
            Printf.sprintf "%d:%s:%d:%s" run.run_index run.run_label run.run_cycle
              (norm_seu_outcome run.run_outcome))
          r.Ocapi_fault.seu_records
      in
      let a = signature "interp" and b = signature "compiled" in
      if a = b then []
      else
        let detail =
          match
            List.find_opt (fun (x, y) -> x <> y) (List.combine a b)
          with
          | Some (x, y) -> Printf.sprintf "%s vs %s" x y
          | None -> "campaign lengths differ"
        in
        [
          {
            f_check = "seu-cross";
            f_error =
              Ocapi_error.make Ocapi_error.Mismatch ~engine:"interp-vs-compiled"
                (Printf.sprintf "SEU classifications diverge: %s" detail);
          };
        ])

let stuck_determinism_findings spec =
  classified_check ~check:"stuck-determinism" ~engine:"fault" (fun () ->
      let run () =
        let sys = Spec.build spec in
        let r =
          Ocapi_fault.stuck_at_system ~max_faults:8 ~seed:7
            ~macro_of_kernel:Ocapi_ir.macro_of_model sys
            ~cycles:spec.Spec.sp_cycles
        in
        Json.to_string (Ocapi_fault.stuck_report_json r)
      in
      let a = run () and b = run () in
      if String.equal a b then []
      else
        [
          {
            f_check = "stuck-determinism";
            f_error =
              Ocapi_error.make Ocapi_error.Mismatch ~engine:"gates"
                "stuck-at campaign is not deterministic under a fixed seed";
          };
        ])

let check_spec ?engines ?(deep = false) spec =
  let engines =
    match engines with Some e -> e | None -> default_engines ()
  in
  let sys = Spec.build spec in
  let cycles = spec.Spec.sp_cycles in
  let f1 = engines_findings sys ~cycles engines in
  let f2 = if includes_gate engines then opt_equivalence_findings spec else [] in
  let f3 = if deep then seu_cross_findings spec else [] in
  let f4 = if deep then stuck_determinism_findings spec else [] in
  f1 @ f2 @ f3 @ f4

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

let rec map_expr f e =
  let e' =
    match e with
    | Spec.E_bin (op, a, b) -> Spec.E_bin (op, map_expr f a, map_expr f b)
    | Spec.E_un (op, a) -> Spec.E_un (op, map_expr f a)
    | Spec.E_mux (a, b, c, d) ->
      Spec.E_mux (map_expr f a, map_expr f b, map_expr f c, map_expr f d)
    | Spec.E_resize (fmt, r, o, a) -> Spec.E_resize (fmt, r, o, map_expr f a)
    | Spec.E_rom (i, a) -> Spec.E_rom (i, map_expr f a)
    | leaf -> leaf
  in
  f e'

let map_spec_exprs f (spec : Spec.t) =
  {
    spec with
    Spec.sp_states =
      List.map
        (fun (st : Spec.state_spec) ->
          {
            Spec.ss_outs = List.map (map_expr f) st.Spec.ss_outs;
            ss_assigns = List.map (map_expr f) st.Spec.ss_assigns;
            ss_flag = map_expr f st.Spec.ss_flag;
          })
        spec.Spec.sp_states;
    sp_ram =
      Option.map
        (fun (r : Spec.ram_spec) ->
          {
            r with
            Spec.rs_addr = map_expr f r.Spec.rs_addr;
            rs_wdata = map_expr f r.Spec.rs_wdata;
            rs_we = map_expr f r.Spec.rs_we;
          })
        spec.Spec.sp_ram;
  }

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let expr_children = function
  | Spec.E_bin (_, a, b) -> [ a; b ]
  | Spec.E_un (_, a) -> [ a ]
  | Spec.E_mux (a, b, c, d) -> [ a; b; c; d ]
  | Spec.E_resize (_, _, _, a) -> [ a ]
  | Spec.E_rom (_, a) -> [ a ]
  | _ -> []

(* Candidate genomes in a fixed order; each is structurally smaller in
   at least one dimension (the shrink loop re-checks [size] anyway). *)
let candidates (spec : Spec.t) =
  let open Spec in
  let cycle_cuts =
    if spec.sp_cycles > 4 then
      [ { spec with sp_cycles = max 4 (spec.sp_cycles / 2) } ]
    else []
  in
  let ram_cut =
    match spec.sp_ram with
    | None -> []
    | Some _ ->
      [
        map_spec_exprs
          (function E_ram_q _ -> E_const 0 | e -> e)
          { spec with sp_ram = None };
      ]
  in
  let rom_cuts =
    List.mapi
      (fun j _ ->
        map_spec_exprs
          (function
            | E_rom (i, _) when i = j -> E_const 0
            | E_rom (i, a) when i > j -> E_rom (i - 1, a)
            | e -> e)
          { spec with sp_roms = drop_nth spec.sp_roms j })
      spec.sp_roms
  in
  let state_cuts =
    if List.length spec.sp_states > 1 then
      List.mapi
        (fun k _ -> { spec with sp_states = drop_nth spec.sp_states k })
        spec.sp_states
    else []
  in
  let out_cuts =
    if List.length spec.sp_outs > 1 then
      List.mapi
        (fun j _ ->
          {
            spec with
            sp_outs = drop_nth spec.sp_outs j;
            sp_states =
              List.map
                (fun st -> { st with ss_outs = drop_nth st.ss_outs j })
                spec.sp_states;
          })
        spec.sp_outs
    else []
  in
  let reg_cuts =
    List.mapi
      (fun j _ ->
        map_spec_exprs
          (function
            | E_reg i when i = j -> E_const 0
            | E_reg i when i > j -> E_reg (i - 1)
            | e -> e)
          {
            spec with
            sp_regs = drop_nth spec.sp_regs j;
            sp_states =
              List.map
                (fun st -> { st with ss_assigns = drop_nth st.ss_assigns j })
                spec.sp_states;
          })
      spec.sp_regs
  in
  let input_cuts =
    List.mapi
      (fun j _ ->
        map_spec_exprs
          (function
            | E_input i when i = j -> E_const 0
            | E_input i when i > j -> E_input (i - 1)
            | e -> e)
          { spec with sp_inputs = drop_nth spec.sp_inputs j })
      spec.sp_inputs
  in
  (* expression edits: replace one top-level expression with each of its
     children, or with the zero constant *)
  let edits_of e =
    expr_children e @ (match e with E_const _ -> [] | _ -> [ E_const 0 ])
  in
  let with_state k st = { spec with sp_states = List.mapi (fun i s -> if i = k then st else s) spec.sp_states } in
  let expr_cuts =
    List.concat
      (List.mapi
         (fun k st ->
           List.concat
             [
               List.concat
                 (List.mapi
                    (fun j e ->
                      List.map
                        (fun e' ->
                          with_state k
                            { st with ss_outs = List.mapi (fun i x -> if i = j then e' else x) st.ss_outs })
                        (edits_of e))
                    st.ss_outs);
               List.concat
                 (List.mapi
                    (fun j e ->
                      List.map
                        (fun e' ->
                          with_state k
                            { st with ss_assigns = List.mapi (fun i x -> if i = j then e' else x) st.ss_assigns })
                        (edits_of e))
                    st.ss_assigns);
               List.map (fun e' -> with_state k { st with ss_flag = e' }) (edits_of st.ss_flag);
             ])
         spec.sp_states)
  in
  let ram_expr_cuts =
    match spec.sp_ram with
    | None -> []
    | Some r ->
      let set f = { spec with sp_ram = Some (f r) } in
      List.concat
        [
          List.map (fun e -> set (fun r -> { r with rs_addr = e })) (edits_of r.rs_addr);
          List.map (fun e -> set (fun r -> { r with rs_wdata = e })) (edits_of r.rs_wdata);
          List.map (fun e -> set (fun r -> { r with rs_we = e })) (edits_of r.rs_we);
        ]
  in
  List.concat
    [
      cycle_cuts; ram_cut; rom_cuts; state_cuts; out_cuts; reg_cuts; input_cuts;
      expr_cuts; ram_expr_cuts;
    ]

let shrink ~check spec =
  if check spec = [] then spec
  else
    let rec loop spec =
      let sz = Spec.size spec in
      match
        List.find_opt
          (fun c -> Spec.size c < sz && check c <> [])
          (candidates spec)
      with
      | Some c -> loop c
      | None -> spec
    in
    loop spec

(* ------------------------------------------------------------------ *)
(* Corpus                                                             *)
(* ------------------------------------------------------------------ *)

module Corpus = struct
  type entry = {
    ce_seed : int;
    ce_digest : string;
    ce_engines : string list;
    ce_check : string;
    ce_detail : string;
    ce_spec : Spec.t;
  }

  let entry_json e =
    Json.Obj
      [
        ("seed", Json.Int e.ce_seed);
        ("digest", Json.String e.ce_digest);
        ("engines", Json.List (List.map (fun n -> Json.String n) e.ce_engines));
        ("check", Json.String e.ce_check);
        ("detail", Json.String e.ce_detail);
        ("spec", Spec.to_json e.ce_spec);
      ]

  let entry_of_json j =
    let str name =
      match Json.member name j with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "corpus entry: missing string field %S" name)
    in
    match (Json.member "seed" j, Json.member "spec" j) with
    | Some (Json.Int seed), Some spec_j -> (
      match Spec.of_json spec_j with
      | Error e -> Error e
      | Ok spec -> (
        match (str "digest", str "check", str "detail") with
        | Ok digest, Ok check, Ok detail ->
          let engines =
            match Json.member "engines" j with
            | Some (Json.List l) ->
              List.filter_map (function Json.String s -> Some s | _ -> None) l
            | _ -> []
          in
          Ok
            {
              ce_seed = seed;
              ce_digest = digest;
              ce_engines = engines;
              ce_check = check;
              ce_detail = detail;
              ce_spec = spec;
            }
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e))
    | _ -> Error "corpus entry: missing seed or spec"

  let load path =
    if not (Sys.file_exists path) then Ok []
    else
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go lineno acc =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | line ->
              let t = String.trim line in
              if t = "" || t.[0] = '#' then go (lineno + 1) acc
              else (
                match Json.of_string t with
                | Error e ->
                  Error (Printf.sprintf "%s:%d: %s" path lineno e)
                | Ok j -> (
                  match entry_of_json j with
                  | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
                  | Ok entry -> go (lineno + 1) (entry :: acc)))
          in
          go 1 [])

  let append path entries =
    let dir = Filename.dirname path in
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then (
      try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (Json.to_string (entry_json e));
            output_char oc '\n')
          entries)
end

(* ------------------------------------------------------------------ *)
(* Campaigns                                                          *)
(* ------------------------------------------------------------------ *)

type replay = {
  rp_entry : Corpus.entry;
  rp_digest_ok : bool;
  rp_findings : finding list;
}

type design_result = {
  dr_index : int;
  dr_seed : int;
  dr_digest : string;
  dr_size : int;
  dr_cycles : int;
  dr_findings : finding list;
  dr_shrunk : (Spec.t * string * int) option;
}

type report = {
  fz_seed : int;
  fz_count : int;
  fz_engines : string list;
  fz_deep : bool;
  fz_replays : replay list;
  fz_results : design_result list;
  fz_divergent : int;
  fz_replay_failures : int;
}

let derive_seed seed index =
  let rs = Random.State.make [| 0xfa22; seed; index |] in
  Random.State.int rs 0x3FFFFFFF

let replay_failed r = (not r.rp_digest_ok) || r.rp_findings <> []

let replay_entry ~engines ~deep (e : Corpus.entry) =
  (* prefer the engines the entry recorded, dropping any that are not
     registered in this process (e.g. the self-test's injected engine);
     fall back to the campaign roster when fewer than two survive *)
  let recorded =
    List.filter (fun n -> Ocapi_engine.find n <> None) e.Corpus.ce_engines
  in
  let engines = if List.length recorded >= 2 then recorded else engines in
  let ok = String.equal (Spec.digest e.Corpus.ce_spec) e.Corpus.ce_digest in
  let findings = if ok then check_spec ~engines ~deep e.Corpus.ce_spec else [] in
  { rp_entry = e; rp_digest_ok = ok; rp_findings = findings }

type task_result = T_replay of replay | T_fresh of design_result

let fuzz ?engines ?(deep = false) ?(shrink_failures = true) ?size ?(domains = 1)
    ?(corpus = []) ?progress ~seed ~count () =
  let engines =
    match engines with Some e -> e | None -> default_engines ()
  in
  let corpus = Array.of_list corpus in
  let n_replay = Array.length corpus in
  let tasks = n_replay + count in
  let results =
    Ocapi_parallel.map_tasks ~domains
      ~make_state:(fun _ -> ())
      ~tasks
      ~f:(fun () i ->
        (match progress with Some p -> p i | None -> ());
        if i < n_replay then
          T_replay (replay_entry ~engines ~deep corpus.(i))
        else
          let idx = i - n_replay in
          let dseed = derive_seed seed idx in
          let spec = Spec.generate ?size ~seed:dseed () in
          let findings = check_spec ~engines ~deep spec in
          let shrunk =
            if findings <> [] && shrink_failures then
              let s = shrink ~check:(check_spec ~engines ~deep) spec in
              Some (s, Spec.digest s, Spec.size s)
            else None
          in
          T_fresh
            {
              dr_index = idx;
              dr_seed = dseed;
              dr_digest = Spec.digest spec;
              dr_size = Spec.size spec;
              dr_cycles = spec.Spec.sp_cycles;
              dr_findings = findings;
              dr_shrunk = shrunk;
            })
      ()
  in
  let replays =
    Array.to_list results
    |> List.filter_map (function T_replay r -> Some r | T_fresh _ -> None)
  in
  let fresh =
    Array.to_list results
    |> List.filter_map (function T_fresh r -> Some r | T_replay _ -> None)
  in
  {
    fz_seed = seed;
    fz_count = count;
    fz_engines = engines;
    fz_deep = deep;
    fz_replays = replays;
    fz_results = fresh;
    fz_divergent =
      List.length (List.filter (fun r -> r.dr_findings <> []) fresh);
    fz_replay_failures = List.length (List.filter replay_failed replays);
  }

let report_reproducers report =
  List.filter_map
    (fun r ->
      if r.dr_findings = [] then None
      else
        let check, detail =
          match r.dr_findings with
          | f :: _ -> (f.f_check, Ocapi_error.to_string f.f_error)
          | [] -> ("", "")
        in
        let spec, digest =
          match r.dr_shrunk with
          | Some (s, d, _) -> (s, d)
          | None ->
            (* shrinking was off: recover the genome from its seed,
               probing the size knob against the recorded digest *)
            let regen =
              List.find_map
                (fun size ->
                  let s = Spec.generate ~size ~seed:r.dr_seed () in
                  if String.equal (Spec.digest s) r.dr_digest then Some s
                  else None)
                [ 2; 1; 3; 4 ]
            in
            let s =
              match regen with
              | Some s -> s
              | None -> Spec.generate ~seed:r.dr_seed ()
            in
            (s, r.dr_digest)
        in
        Some
          {
            Corpus.ce_seed = r.dr_seed;
            ce_digest = digest;
            ce_engines = report.fz_engines;
            ce_check = check;
            ce_detail = detail;
            ce_spec = spec;
          })
    report.fz_results

let replay_json r =
  Json.Obj
    [
      ("seed", Json.Int r.rp_entry.Corpus.ce_seed);
      ("digest", Json.String r.rp_entry.Corpus.ce_digest);
      ("digest_ok", Json.Bool r.rp_digest_ok);
      ("check", Json.String r.rp_entry.Corpus.ce_check);
      ("findings", Json.List (List.map finding_json r.rp_findings));
    ]

let design_json r =
  Json.Obj
    [
      ("index", Json.Int r.dr_index);
      ("seed", Json.Int r.dr_seed);
      ("digest", Json.String r.dr_digest);
      ("size", Json.Int r.dr_size);
      ("cycles", Json.Int r.dr_cycles);
      ("findings", Json.List (List.map finding_json r.dr_findings));
      ( "shrunk",
        match r.dr_shrunk with
        | None -> Json.Null
        | Some (spec, digest, size) ->
          Json.Obj
            [
              ("digest", Json.String digest);
              ("size", Json.Int size);
              ("spec", Spec.to_json spec);
            ] );
    ]

let report_json r =
  Json.Obj
    [
      ("kind", Json.String "fuzz-report");
      ("seed", Json.Int r.fz_seed);
      ("count", Json.Int r.fz_count);
      ("engines", Json.List (List.map (fun n -> Json.String n) r.fz_engines));
      ("deep", Json.Bool r.fz_deep);
      ("replays", Json.List (List.map replay_json r.fz_replays));
      ("designs", Json.List (List.map design_json r.fz_results));
      ("divergent", Json.Int r.fz_divergent);
      ("replay_failures", Json.Int r.fz_replay_failures);
      ("agree", Json.Bool (r.fz_divergent = 0 && r.fz_replay_failures = 0));
    ]

let pp_report ppf r =
  Format.fprintf ppf "fuzz: seed %d, %d designs, engines [%s]%s@," r.fz_seed
    r.fz_count
    (String.concat ", " r.fz_engines)
    (if r.fz_deep then ", deep checks" else "");
  if r.fz_replays <> [] then
    Format.fprintf ppf "  corpus: %d replayed, %d failing@,"
      (List.length r.fz_replays) r.fz_replay_failures;
  List.iter
    (fun rp ->
      if replay_failed rp then
        Format.fprintf ppf "  REPLAY seed %d %s: %s@," rp.rp_entry.Corpus.ce_seed
          (if rp.rp_digest_ok then "re-fails" else "digest mismatch")
          rp.rp_entry.Corpus.ce_check)
    r.fz_replays;
  Format.fprintf ppf "  fresh: %d checked, %d divergent@,"
    (List.length r.fz_results) r.fz_divergent;
  List.iter
    (fun d ->
      if d.dr_findings <> [] then (
        let f = List.hd d.dr_findings in
        Format.fprintf ppf "  FAIL seed %d (%s): %a@," d.dr_seed f.f_check
          Ocapi_error.pp f.f_error;
        match d.dr_shrunk with
        | Some (_, digest, size) ->
          Format.fprintf ppf "       shrunk to size %d, digest %s@," size digest
        | None -> ()))
    r.fz_results;
  Format.fprintf ppf "  verdict: %s@,"
    (if r.fz_divergent = 0 && r.fz_replay_failures = 0 then
       "all engines agree"
     else "DIVERGENCE")

(* ------------------------------------------------------------------ *)
(* Self test                                                          *)
(* ------------------------------------------------------------------ *)

let buggy_registered = ref false

let register_buggy_engine () =
  if not !buggy_registered then (
    let (module I : Ocapi_engine.ENGINE) = Ocapi_engine.get "interp" in
    let module B = struct
      let name = buggy_name
      let display = "buggy"
      let aliases = []
      let capabilities = I.capabilities

      let make ?options sys =
        let ses = I.make ?options sys in
        let corrupt histories =
          List.map
            (fun (probe, toks) ->
              ( probe,
                List.map
                  (fun (c, v) -> if c >= 3 then (c, Fixed.flip_bit v 0) else (c, v))
                  toks ))
            histories
        in
        {
          ses with
          Ocapi_engine.ses_engine = buggy_name;
          ses_histories = (fun () -> corrupt (ses.Ocapi_engine.ses_histories ()));
        }
    end in
    Ocapi_engine.register (module B);
    buggy_registered := true);
  buggy_name
