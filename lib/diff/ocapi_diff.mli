(** Differential fuzzing of the engine stack.

    The reproduction's correctness story rests on one claim: every
    engine — interpreted, compiled, native, event-driven RT and the
    synthesized gate netlist — computes the same probe histories for
    the same captured design.  Until now that claim was checked against
    two friendly designs (HCOR, DECT) and the small random-DAG
    properties of the test suite.  This module turns those properties
    into a standing subsystem:

    - {!Spec} is a {e serializable genome}: a seeded generator draws a
      design recipe (fixed-point formats, registered expression DAGs,
      a multi-state FSM controller, optional RAM cell and ROM tables,
      probes, stimuli seeds, a cycle budget) and {!Spec.build} turns a
      recipe into a fresh [Cycle_system.t].  Generation is a pure
      function of the seed, so a corpus entry carrying the genome
      replays bit-exactly — {!Spec.build} twice gives the same
      [Cycle_system.digest].
    - {!check_spec} runs one genome through every requested engine of
      the {!Ocapi_engine} registry, diffs probe histories against the
      first engine, cross-checks the [Netopt]-optimized netlist
      through {!Ocapi_ir.check_equivalence}, and (on deep checks)
      cross-checks seeded SEU classifications between two engines and
      the determinism of a sampled stuck-at campaign.  Every
      divergence is reported as a structured {!Ocapi_error.t}.
    - {!shrink} greedily minimizes a failing genome — halving the
      cycle budget, dropping the RAM / ROMs / FSM states / probes /
      registers / inputs, hoisting expression children — re-running
      the check after each cut, until no smaller failing genome is
      found.  Deterministic: same genome and check, same reproducer.
    - {!Corpus} reads and writes replayable JSONL reproducer entries
      (genome + generator seed + design digest + the original
      finding), the regression corpus the nightly CI campaign carries
      across runs.

    All randomness is seed-derived ([Random.State]); campaign reports
    are canonical JSON with no wall-clock content, so a [--domains N]
    run is byte-identical to the serial run. *)

(** {1 Design genomes} *)

module Spec : sig
  (** A serializable fixed-point format. *)
  type fmt = { f_signed : bool; f_width : int; f_frac : int }

  (** A serializable expression tree over the genome's leaves.  The
      operator set mirrors the random-DAG properties of the test
      suite (the feature surface every engine supports), plus ROM
      reads. *)
  type expr =
    | E_const of int  (** mantissa, quantized into the context format *)
    | E_input of int  (** primary input index *)
    | E_reg of int  (** data register index *)
    | E_ram_q of int  (** RAM read-data leaf; payload is the data width *)
    | E_bin of string * expr * expr
        (** ["add" | "sub" | "and" | "or" | "xor" | "eq"] *)
    | E_un of string * expr  (** ["neg" | "not" | "abs"] *)
    | E_mux of expr * expr * expr * expr  (** [mux2 (lt a b) c d] *)
    | E_resize of fmt * string * string * expr
        (** target format, rounding name, overflow name *)
    | E_rom of int * expr  (** ROM table index, address expression *)

  (** One FSM state: what the state's SFG drives.  [ss_outs] has one
      expression per output probe, [ss_assigns] one per data register,
      [ss_flag] the 1-bit guard flag driving the state transition. *)
  type state_spec = { ss_outs : expr list; ss_assigns : expr list; ss_flag : expr }

  (** The optional RAM cell.  Control expressions ([addr]/[wdata]/[we])
      read registers and constants only, so the timed component can
      produce the RAM's tokens in the register-driven phase — the
      DECT-style timed/untimed loop without deadlock. *)
  type ram_spec = {
    rs_words : int;
    rs_data : fmt;
    rs_addr : expr;
    rs_wdata : expr;
    rs_we : expr;
  }

  type t = {
    sp_seed : int;  (** the generator seed this genome was drawn from *)
    sp_inputs : fmt list;  (** primary input formats *)
    sp_regs : fmt list;  (** data register formats *)
    sp_outs : fmt list;  (** output probe formats *)
    sp_roms : (fmt * int list) list;  (** ROM tables (format, mantissas) *)
    sp_states : state_spec list;  (** FSM states, visited cyclically *)
    sp_ram : ram_spec option;
    sp_cycles : int;  (** simulation budget of the differential check *)
    sp_stim_seed : int;  (** seed of the per-cycle input stimuli *)
  }

  (** [generate ~seed ()] draws a genome.  Pure in [seed] (and the
      optional [size] knob, 1–4, default 2): the same arguments always
      return the same genome. *)
  val generate : ?size:int -> seed:int -> unit -> t

  (** Materialize the genome as a fresh system (new registers, inputs,
      ROMs, RAM store).  Deterministic: two builds of one genome have
      equal [Cycle_system.digest]s and independent state. *)
  val build : t -> Cycle_system.t

  (** [Cycle_system.digest] of a fresh {!build}. *)
  val digest : t -> string

  (** Structural size: expression nodes plus weighted component
      counts plus the cycle budget.  Every shrink step strictly
      decreases it. *)
  val size : t -> int

  val to_json : t -> Ocapi_obs.Json.t
  val of_json : Ocapi_obs.Json.t -> (t, string) result
end

(** {1 Differential checks} *)

(** One divergence: which cross-check tripped (["engines"],
    ["opt-equivalence"], ["seu-cross"], ["stuck-determinism"]) and the
    structured diagnostic pinning the first point of disagreement. *)
type finding = { f_check : string; f_error : Ocapi_error.t }

val finding_json : finding -> Ocapi_obs.Json.t

(** The engine roster a check runs by default: every registered engine,
    in registration order, minus the self-test's injected buggy engine. *)
val default_engines : unit -> string list

(** [check_spec spec] builds the genome and runs the differential
    checks:

    - {b engines}: every engine in [engines] (default: the whole
      registry, in registration order) simulates the design for
      [spec.sp_cycles] cycles; probe histories are diffed against the
      first engine's.  An engine stopping with a structured diagnostic
      is a recorded outcome, not an abort — but then {e every} engine
      must stop with the same error code.
    - {b opt-equivalence} (when the gate engine is in [engines]): the
      behavioral root against the [lower-to-gate] + [optimize-gates]
      netlist through {!Ocapi_ir.check_equivalence}.
    - {b seu-cross} / {b stuck-determinism} (when [deep], default
      [false]): a small seeded SEU campaign classified on the first
      two capable engines must agree run for run, and a sampled
      stuck-at campaign re-run under the same seed must reproduce its
      report byte for byte.

    Returns the findings, oldest check first; [[]] means the stack
    agrees on this design. *)
val check_spec : ?engines:string list -> ?deep:bool -> Spec.t -> finding list

(** {1 Shrinking} *)

(** [shrink ~check spec] greedily minimizes a genome that [check]
    reports as failing (non-empty finding list): at each step the
    first strictly smaller candidate that still fails is adopted;
    candidates are tried in a fixed order (cycle halving, RAM / ROM /
    state / probe / register / input removal, expression hoisting and
    zeroing), so the reproducer is deterministic.  Returns [spec]
    unchanged if [check spec] is empty. *)
val shrink : check:(Spec.t -> finding list) -> Spec.t -> Spec.t

(** {1 Reproducer corpus} *)

module Corpus : sig
  (** One replayable reproducer: the genome, where it came from, what
      it tripped.  [ce_digest] is the design digest the genome must
      rebuild to — replay verifies it before re-checking. *)
  type entry = {
    ce_seed : int;  (** generator seed of the original campaign draw *)
    ce_digest : string;
    ce_engines : string list;  (** engines the check ran *)
    ce_check : string;  (** the finding's check kind *)
    ce_detail : string;  (** human summary of the original finding *)
    ce_spec : Spec.t;
  }

  val entry_json : entry -> Ocapi_obs.Json.t
  val entry_of_json : Ocapi_obs.Json.t -> (entry, string) result

  (** [load path] reads a JSONL corpus ([#] comments and blank lines
      skipped).  A missing file is an empty corpus. *)
  val load : string -> (entry list, string) result

  (** [append path entries] appends entries as JSONL lines (creating
      the file and its directory as needed). *)
  val append : string -> entry list -> unit
end

(** {1 Campaigns} *)

(** Replay outcome of one corpus entry. *)
type replay = {
  rp_entry : Corpus.entry;
  rp_digest_ok : bool;  (** genome rebuilt to the recorded digest *)
  rp_findings : finding list;  (** [[]] = the historical bug stays fixed *)
}

(** One fresh generated design's outcome. *)
type design_result = {
  dr_index : int;
  dr_seed : int;  (** derived per-design generator seed *)
  dr_digest : string;
  dr_size : int;
  dr_cycles : int;
  dr_findings : finding list;
  dr_shrunk : (Spec.t * string * int) option;
      (** minimized genome, its digest, its size — when shrinking ran *)
}

type report = {
  fz_seed : int;
  fz_count : int;
  fz_engines : string list;
  fz_deep : bool;
  fz_replays : replay list;
  fz_results : design_result list;
  fz_divergent : int;  (** fresh designs with findings *)
  fz_replay_failures : int;  (** replays failing digest or re-check *)
}

(** [fuzz ~seed ~count ()] replays [corpus] (oldest first), then draws
    and checks [count] fresh genomes with per-design seeds derived
    from [seed].  Failing designs are shrunk when [shrink_failures]
    (default [true]).  [domains] (default 1) distributes designs over
    an {!Ocapi_parallel} pool; results are merged by index, so the
    report is bit-identical to the serial run for any value.
    [progress] is called with a task index before each design (corpus
    replays first); it may raise to abandon the campaign — the batch
    deadline hook. *)
val fuzz :
  ?engines:string list ->
  ?deep:bool ->
  ?shrink_failures:bool ->
  ?size:int ->
  ?domains:int ->
  ?corpus:Corpus.entry list ->
  ?progress:(int -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  report

(** Corpus entries for the report's shrunk reproducers (and unshrunk
    failures when shrinking was off). *)
val report_reproducers : report -> Corpus.entry list

(** Canonical JSON: no wall-clock or host content; byte-identical
    across [--domains] values. *)
val report_json : report -> Ocapi_obs.Json.t

val pp_report : Format.formatter -> report -> unit

(** {1 Self test}

    [register_buggy_engine ()] registers (idempotently) a deliberately
    broken engine under the returned name: it reuses the interpreted
    engine but flips the low mantissa bit of every probe token from
    cycle 3 on.  Running {!fuzz} with [engines = [baseline; buggy]]
    must therefore produce findings and shrunk reproducers — the
    harness proving it actually catches an injected engine bug. *)
val register_buggy_engine : unit -> string
