(** Mealy-type finite state machines with SFG actions.

    The control behaviour of a component is captured as a Mealy FSM whose
    transition actions are signal flow graphs (paper section 3.2, fig 4):

    {v
      fsm f;  initial s0;  state s1;
      s0 << always    << sfg1 << s1;
      s1 << cnd(eof)  << sfg2 << s1;
      s1 << !cnd(eof) << sfg3 << s0;
    v}

    becomes

    {[
      let f = Fsm.create "f" in
      let s0 = Fsm.initial f "s0" and s1 = Fsm.state f "s1" in
      Fsm.(s0 |-- always |+ sfg1 |-> s1);
      Fsm.(s1 |-- cnd eof |+ sfg2 |-> s1);
      Fsm.(s1 |-- cnd Signal.(~:eof) |+ sfg3 |-> s0)
    ]}

    Guard expressions are evaluated at the start of a clock cycle, before
    any token exists, so they may only read registers and constants ("the
    conditions are stored in registers inside the signal flow graphs"). *)

exception Fsm_error of string

type t
type state

(** {1 Guards} *)

type guard

(** The guard that is always enabled. *)
val always : guard

(** [cnd e] guards on the 1-bit, register-and-constant-only expression
    [e]. @raise Fsm_error if [e] is wider than one bit or combinationally
    depends on an SFG input. *)
val cnd : Signal.t -> guard

(** Boolean combinators over guards. *)
val gnot : guard -> guard

val gand : guard -> guard -> guard
val gor : guard -> guard -> guard

(** The guard as a signal expression ([always] is constant 1). *)
val guard_expr : guard -> Signal.t

(** Is this the [always] guard?  (Controller synthesis treats [always]
    transitions as unconditional, ending the priority chain.) *)
val is_always : guard -> bool

(** {1 Construction} *)

val create : string -> t

(** [initial t name] declares the (unique) initial state.
    @raise Fsm_error if an initial state was already declared. *)
val initial : t -> string -> state

(** [state t name] declares a further state.
    @raise Fsm_error on duplicate names. *)
val state : t -> string -> state

(** [add_transition t ~from ~guard ~actions ~goto] appends a transition.
    Within a state, transitions are prioritized in declaration order. *)
val add_transition :
  t -> from:state -> guard:guard -> actions:Sfg.t list -> goto:state -> unit

(** {2 The fig 4 operator spelling} *)

type partial_transition

val ( |-- ) : state -> guard -> partial_transition
val ( |+ ) : partial_transition -> Sfg.t -> partial_transition

(** Registers the transition on the FSM of its source state. *)
val ( |-> ) : partial_transition -> state -> unit

(** {1 Accessors} *)

val name : t -> string
val states : t -> state list
val initial_state : t -> state
val state_name : state -> string
val state_index : state -> int
val state_equal : state -> state -> bool

type transition = {
  t_from : state;
  t_guard : guard;
  t_actions : Sfg.t list;
  t_goto : state;
}

val transitions : t -> transition list
val transitions_from : t -> state -> transition list

(** All SFGs referenced by any transition (deduplicated, in order). *)
val all_sfgs : t -> Sfg.t list

(** All registers written or read by any action SFG, plus guard reads. *)
val all_regs : t -> Signal.Reg.t list

(** {1 Execution} *)

val current : t -> state

(** [select t] evaluates the guards of the current state's transitions in
    priority order and returns the first enabled one, or [None] if no
    transition is enabled this cycle (the machine then implicitly holds
    its state with no actions). *)
val select : t -> transition option

(** [advance t tr] moves to [tr.t_goto] (called in the register-update
    phase). *)
val advance : t -> transition -> unit

(** Return to the initial state. Does not touch registers. *)
val reset : t -> unit

(** [force_state t i] jumps to the state whose {!state_index} is [i],
    bypassing transitions — the fault-injection access used by SEU
    campaigns on the interpreted engine (a bit flip in the encoded state
    register selects an arbitrary index).
    @raise Fsm_error if no state has index [i]. *)
val force_state : t -> int -> unit

(** {1 Checks} *)

type check_issue =
  | Unreachable_state of string
  | Nondeterministic of string  (** >1 guard enabled for a sampled valuation *)
  | Incomplete of string  (** no guard enabled for a sampled valuation *)
  | No_initial

val pp_issue : Format.formatter -> check_issue -> unit

(** [check ?samples ?flag_overlaps t] performs structural checks and a
    randomized completeness check: for [samples] (default 100) random
    valuations of the registers read by the guards, verify some
    transition is enabled per state (the implicit hold is legal but
    usually unintended).  With [flag_overlaps] (default false), also
    report states where several guards are enabled simultaneously —
    harmless under the priority-ordered {!select} semantics, but worth
    knowing for machines written in the paper's explicit-complement
    style. *)
val check : ?samples:int -> ?flag_overlaps:bool -> t -> check_issue list

val pp : Format.formatter -> t -> unit

(** Graphviz dot rendering of the machine (states, guarded transitions
    with their action SFG names) — the textual twin of fig 4's diagram. *)
val to_dot : t -> string
