exception Fsm_error of string

let error fmt = Format.kasprintf (fun s -> raise (Fsm_error s)) fmt

type state = { s_fsm_id : int; s_index : int; s_name : string }

type guard = Always | When of Signal.t

type transition = {
  t_from : state;
  t_guard : guard;
  t_actions : Sfg.t list;
  t_goto : state;
}

type t = {
  id : int;
  name : string;
  mutable f_states : state list;  (* reversed *)
  mutable f_initial : state option;
  mutable f_transitions : transition list;  (* reversed *)
  mutable f_current : state option;
}

(* Atomic so machine construction is safe from any domain
   (domain-isolation audit: construction-time gensym must not race). *)
let fsm_counter = Atomic.make 0

let create name =
  {
    id = Atomic.fetch_and_add fsm_counter 1 + 1;
    name;
    f_states = [];
    f_initial = None;
    f_transitions = [];
    f_current = None;
  }

let always = Always

let cnd e =
  if (Signal.fmt e).Fixed.width <> 1 then
    error "cnd: guard must be 1 bit wide, got %s"
      (Fixed.format_to_string (Signal.fmt e));
  (match Signal.input_deps e with
  | [] -> ()
  | i :: _ ->
    error "cnd: guard depends on input %s; guards may only read registers"
      (Signal.Input.name i));
  When e

let guard_expr = function Always -> Signal.vdd | When e -> e
let is_always = function Always -> true | When _ -> false

let gnot = function
  | Always -> When (Signal.not_ Signal.vdd)
  | When e -> When (Signal.not_ e)

let gand a b =
  match a, b with
  | Always, g | g, Always -> g
  | When x, When y -> When (Signal.and_ x y)

let gor a b =
  match a, b with
  | Always, _ | _, Always -> Always
  | When x, When y -> When (Signal.or_ x y)

let add_state t name =
  if List.exists (fun s -> s.s_name = name) t.f_states then
    error "fsm %s: duplicate state %s" t.name name;
  let s = { s_fsm_id = t.id; s_index = List.length t.f_states; s_name = name } in
  t.f_states <- s :: t.f_states;
  s

let initial t name =
  (match t.f_initial with
  | Some s -> error "fsm %s: initial state already declared (%s)" t.name s.s_name
  | None -> ());
  let s = add_state t name in
  t.f_initial <- Some s;
  t.f_current <- Some s;
  s

let state t name = add_state t name

(* The table of live FSMs lets the operator spelling find the machine a
   state belongs to without threading it through the expression.  Writes
   (at [create]) and the [|->] lookups both happen at design-construction
   time; the mutex makes concurrent construction from several domains
   safe.  Simulation never touches this table. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let registry_find id =
  Mutex.lock registry_mutex;
  let r = Hashtbl.find_opt registry id in
  Mutex.unlock registry_mutex;
  r

let add_transition t ~from ~guard ~actions ~goto =
  if from.s_fsm_id <> t.id || goto.s_fsm_id <> t.id then
    error "fsm %s: transition uses a state of another machine" t.name;
  t.f_transitions <-
    { t_from = from; t_guard = guard; t_actions = actions; t_goto = goto }
    :: t.f_transitions

type partial_transition = {
  p_from : state;
  p_guard : guard;
  p_actions : Sfg.t list;  (* reversed *)
}

let ( |-- ) s g = { p_from = s; p_guard = g; p_actions = [] }
let ( |+ ) p sfg = { p with p_actions = sfg :: p.p_actions }

let ( |-> ) p goto =
  match registry_find p.p_from.s_fsm_id with
  | None -> error "(|->): source state's machine is not registered"
  | Some t ->
    add_transition t ~from:p.p_from ~guard:p.p_guard
      ~actions:(List.rev p.p_actions) ~goto

let name t = t.name
let states t = List.rev t.f_states

let initial_state t =
  match t.f_initial with
  | Some s -> s
  | None -> error "fsm %s: no initial state" t.name

let state_name s = s.s_name
let state_index s = s.s_index
let state_equal a b = a.s_fsm_id = b.s_fsm_id && a.s_index = b.s_index
let transitions t = List.rev t.f_transitions

let transitions_from t s =
  List.filter (fun tr -> state_equal tr.t_from s) (transitions t)

let all_sfgs t =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun tr -> tr.t_actions) (transitions t)
  |> List.filter (fun sfg ->
         let key = Sfg.name sfg in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end)

let all_regs t =
  let seen = Hashtbl.create 16 in
  let add acc r =
    let id = Signal.Reg.id r in
    if Hashtbl.mem seen id then acc
    else begin
      Hashtbl.add seen id ();
      r :: acc
    end
  in
  let from_sfgs =
    List.fold_left
      (fun acc sfg ->
        let acc = List.fold_left add acc (Sfg.regs_written sfg) in
        List.fold_left add acc (Sfg.regs_read sfg))
      [] (all_sfgs t)
  in
  let from_guards =
    List.fold_left
      (fun acc tr ->
        match tr.t_guard with
        | Always -> acc
        | When e -> List.fold_left add acc (Signal.regs_read e))
      from_sfgs (transitions t)
  in
  List.rev from_guards

let current t =
  match t.f_current with
  | Some s -> s
  | None -> error "fsm %s: no current state (no initial declared)" t.name

let guard_enabled env g =
  match g with
  | Always -> true
  | When e -> Fixed.is_true (Signal.eval env e)

let select t =
  let cur = current t in
  let env = Signal.Env.create () in
  List.find_opt (fun tr -> guard_enabled env tr.t_guard) (transitions_from t cur)

let advance t tr = t.f_current <- Some tr.t_goto

let reset t =
  match t.f_initial with
  | Some s -> t.f_current <- Some s
  | None -> error "fsm %s: cannot reset, no initial state" t.name

let force_state t i =
  match List.find_opt (fun s -> s.s_index = i) t.f_states with
  | Some s -> t.f_current <- Some s
  | None -> error "fsm %s: force_state: no state with index %d" t.name i

type check_issue =
  | Unreachable_state of string
  | Nondeterministic of string
  | Incomplete of string
  | No_initial

let pp_issue ppf = function
  | Unreachable_state s -> Format.fprintf ppf "unreachable state %s" s
  | Nondeterministic s ->
    Format.fprintf ppf "state %s: several guards enabled simultaneously" s
  | Incomplete s -> Format.fprintf ppf "state %s: no guard enabled (implicit hold)" s
  | No_initial -> Format.fprintf ppf "no initial state declared"

(* Registers read by any guard of the machine. *)
let guard_regs t =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun tr ->
      match tr.t_guard with
      | Always -> []
      | When e -> Signal.regs_read e)
    (transitions t)
  |> List.filter (fun r ->
         let id = Signal.Reg.id r in
         if Hashtbl.mem seen id then false
         else begin
           Hashtbl.add seen id ();
           true
         end)

let check ?(samples = 100) ?(flag_overlaps = false) t =
  let issues = ref [] in
  (match t.f_initial with
  | None -> issues := No_initial :: !issues
  | Some init ->
    (* Reachability over the transition graph. *)
    let n = List.length t.f_states in
    let reachable = Array.make n false in
    let rec visit s =
      if not reachable.(s.s_index) then begin
        reachable.(s.s_index) <- true;
        List.iter (fun tr -> visit tr.t_goto) (transitions_from t s)
      end
    in
    visit init;
    List.iter
      (fun s ->
        if not reachable.(s.s_index) then
          issues := Unreachable_state s.s_name :: !issues)
      (states t));
  (* Randomized determinism / completeness over guard-register space. *)
  let regs = guard_regs t in
  let saved = List.map (fun r -> (r, Signal.Reg.value r)) regs in
  let rng = Random.State.make [| 0x0ca91; List.length regs |] in
  let env = Signal.Env.create () in
  let nondet = Hashtbl.create 4 and incomplete = Hashtbl.create 4 in
  for _ = 1 to samples do
    List.iter
      (fun r ->
        let f = Signal.Reg.fmt r in
        let lo = Fixed.min_mantissa f and hi = Fixed.max_mantissa f in
        let range = Int64.add (Int64.sub hi lo) 1L in
        let m = Int64.add lo (Random.State.int64 rng range) in
        Signal.Reg.set_value r (Fixed.create f m))
      regs;
    List.iter
      (fun s ->
        let enabled =
          List.filter
            (fun tr -> guard_enabled env tr.t_guard)
            (transitions_from t s)
        in
        match enabled with
        | [] ->
          if transitions_from t s <> [] then
            Hashtbl.replace incomplete s.s_name ()
        | [ _ ] -> ()
        | _ :: _ :: _ ->
          if flag_overlaps then Hashtbl.replace nondet s.s_name ())
      (states t)
  done;
  List.iter (fun (r, v) -> Signal.Reg.set_value r v) saved;
  Hashtbl.iter (fun s () -> issues := Nondeterministic s :: !issues) nondet;
  Hashtbl.iter (fun s () -> issues := Incomplete s :: !issues) incomplete;
  List.rev !issues

let pp ppf t =
  Format.fprintf ppf "@[<v 2>fsm %s:" t.name;
  List.iter
    (fun tr ->
      let g =
        match tr.t_guard with
        | Always -> "always"
        | When e -> Format.asprintf "%a" Signal.pp e
      in
      Format.fprintf ppf "@ %s --[%s / %s]--> %s" tr.t_from.s_name g
        (String.concat "," (List.map Sfg.name tr.t_actions))
        tr.t_goto.s_name)
    (transitions t);
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph %S {\n  rankdir=LR;\n  node [shape=circle];\n" t.name;
  (match t.f_initial with
  | Some s -> pf "  %S [shape=doublecircle];\n" s.s_name
  | None -> ());
  List.iter
    (fun tr ->
      let g =
        match tr.t_guard with
        | Always -> "always"
        | When e -> Format.asprintf "%a" Signal.pp e
      in
      pf "  %S -> %S [label=\"%s / %s\"];\n" tr.t_from.s_name tr.t_goto.s_name
        (String.escaped g)
        (String.escaped (String.concat "," (List.map Sfg.name tr.t_actions))))
    (transitions t);
  pf "}\n";
  Buffer.contents buf

(* Register machines in the operator-spelling registry at creation. *)
let create name =
  let t = create name in
  Mutex.lock registry_mutex;
  Hashtbl.replace registry t.id t;
  Mutex.unlock registry_mutex;
  t
