(** Gate-level netlists and their event-driven simulation.

    The synthesis strategy of the paper (section 6, fig 8) produces a
    gate-level netlist per component, which is then linked into a system
    netlist and verified with generated test benches.  This module is
    the netlist substrate: gate primitives, two macro cells (ROM and
    RAM, as the DECT chip's "7 RAM cells" are macros, not gates), a
    builder API working in single-bit nets grouped into named buses, and
    an event-driven gate simulator — the "VHDL/Verilog (netlist)"
    comparator rows of Table 1.

    Wires carry booleans; buses are [int array]s of net indices, LSB
    first.  Multi-bit numbers on buses are two's-complement mantissas,
    matching [Fixed] bit semantics. *)

exception Netlist_error of string

type t
type net = int

type gate_kind =
  | Buf
  | Not
  | And
  | Or
  | Xor
  | Nand
  | Nor
  | Mux2  (** inputs [sel; a; b]: [a] when [sel] else [b] *)
  | Const0
  | Const1

(** {1 Building} *)

val create : string -> t
val name : t -> string

(** A fresh, undriven net. *)
val new_net : t -> net

(** [gate t kind inputs] adds a gate and returns its output net. *)
val gate : t -> gate_kind -> net list -> net

(** [buf_into t ~dst src] drives the pre-allocated (and so far undriven)
    net [dst] with a buffer from [src].  This is the forward-reference
    mechanism used by operator-sharing synthesis, where a unit's operand
    nets exist before their selection logic does.
    @raise Netlist_error if [dst] already has a driver. *)
val buf_into : t -> dst:net -> net -> unit

(** [dff_into t ?init ~q d] adds a D flip-flop whose output is the
    pre-allocated net [q]. *)
val dff_into : t -> ?init:bool -> q:net -> net -> unit

(** [gate_into t kind inputs ~dst] adds a gate driving the pre-allocated
    net [dst] (used by the netlist optimizer's rebuild, where feedback
    through flip-flops and gated selection networks makes a topological
    emission order impossible). *)
val gate_into : t -> gate_kind -> net list -> dst:net -> unit

(** [dff t ?init d] adds a D flip-flop; returns its output net [q].
    [init] is the reset value (default false). *)
val dff : t -> ?init:bool -> net -> net

(** [dff_en t ?init ~enable d] — a DFF that holds its value when
    [enable] is low (built as dff + recirculating mux). *)
val dff_en : t -> ?init:bool -> enable:net -> net -> net

(** [rom t ~name ~contents addr] adds a ROM macro cell: [addr] is an
    unsigned bus (LSB first), the result bus has [width] bits per word.
    Reads wrap modulo the table size. *)
val rom : t -> name:string -> width:int -> contents:int64 array -> net array -> net array

(** [ram t ~name ~words ~width ~addr ~wdata ~we] adds a RAM macro cell
    with combinational read (old value) and write on the clock edge.
    Returns the read-data bus. *)
val ram :
  t ->
  name:string ->
  words:int ->
  width:int ->
  addr:net array ->
  wdata:net array ->
  we:net ->
  net array

(** Declare a primary input bus of [width] bits, named. *)
val input_bus : t -> string -> int -> net array

(** Declare nets as a named primary output bus. *)
val output_bus : t -> string -> net array -> unit

val find_input : t -> string -> net array
val find_output : t -> string -> net array

(** {1 Bus helpers} *)

val const_bus : t -> width:int -> int64 -> net array

(** Sign- or zero-extend / truncate a bus (two's complement). *)
val extend_bus : t -> signed:bool -> net array -> int -> net array

(** {1 Statistics} *)

type gate_counts = {
  combinational : int;  (** primitive gates *)
  flip_flops : int;
  rom_bits : int;
  ram_bits : int;
  (* Two-input-NAND equivalents including sequential and macro cells;
     the figure comparable to the paper's "Kgate" sizes. *)
  gate_equivalents : int;
}

val counts : t -> gate_counts
val net_count : t -> int

(** [combinational_depth t] is [(depth, cyclic)]: the longest acyclic
    chain of combinational elements (gates and macro-cell read paths)
    between registers / primary ports, and the number of elements that
    sit on combinational cycles and were excluded (operator-sharing
    selection networks create such {e false} cycles; they are gated off
    at run time but defeat a static longest-path count). *)
val combinational_depth : t -> int * int

(** {1 Introspection} (used by the Verilog printer) *)

val fold_gates :
  t -> init:'a -> f:('a -> gate_kind -> net array -> net -> 'a) -> 'a

val fold_dffs : t -> init:'a -> f:('a -> bool -> d:net -> q:net -> 'a) -> 'a

(** ROMs as (name, word width, contents, address bus, output bus). *)
val roms_list : t -> (string * int * int64 array * net array * net array) list

(** RAMs as (name, words, width, addr, wdata, we, rdata). *)
val rams_list :
  t -> (string * int * int * net array * net array * net * net array) list

val inputs_list : t -> (string * net array) list
val outputs_list : t -> (string * net array) list

(** [net_label t n] — the net's position in a named input/output bus
    (["samples[3]"]) when it has one, else ["n<index>"]. *)
val net_label : t -> net -> string

(** Canonical structural hash (hex MD5) over nets, gates, flip-flops,
    macro cells and named buses, in creation order.  The netlist's name
    is excluded: two identically-built circuits digest equally whatever
    they are called.  This is the gate level's entry in the cross-level
    digest scheme ([Cycle_system.digest] / [Rtl.digest] / here), and
    what gate-level [Flow.Cache] keys and pass provenance records are
    made of. *)
val digest : t -> string

(** {1 Stuck-at fault model}

    The classic gate-level fault universe: every gate pin can be stuck
    at 0 or 1.  A {!Stem} fault pins a whole net (the driver's output
    pin and all its fanout); a {!Branch} fault affects a single input
    pin of a single gate, leaving the other branches of the same net
    healthy.  [br_gate] indexes gates in {!fold_gates} order. *)

type fault_site = Stem of net | Branch of { br_gate : int; br_pin : int }
type fault = { f_site : fault_site; f_stuck : bool }

(** Every pin fault of the netlist: both polarities on each primary
    input net, DFF output and gate output (stem faults) and on each
    gate input pin (branch faults).  Constant gates contribute only
    the polarity that differs from their value. *)
val fault_universe : t -> fault list

(** Drop faults equivalent to a remaining one: buffer/inverter pin
    faults, controlling-value pin faults of AND/NAND/OR/NOR (equivalent
    to an output-stem fault of the same gate), and branch faults on
    single-load stems.  Coverage computed on the collapsed list equals
    coverage on the full universe. *)
val collapse_faults : t -> fault list -> fault list

(** ["<net>/sa0"], ["g<i>.in<p>/sa1"], ... *)
val fault_label : t -> fault -> string

(** {1 Simulation} *)

module Sim : sig
  type netlist := t
  type t

  (** The event queue did not quiesce within the settle budget.  The
      diagnostic lists (a sample of) the still-toggling nets, the
      budget, and the clock cycle. *)
  exception Did_not_settle of Ocapi_error.t

  (** [create ?settle_budget nl] — [settle_budget] bounds the element
      evaluations of one {!settle} call (default
      [1000 * max 64 n_elements]). *)
  val create : ?settle_budget:int -> netlist -> t

  (** [set_input sim name mantissa] drives an input bus with the low
      bits of a two's-complement mantissa. *)
  val set_input : t -> string -> int64 -> unit

  (** Propagate until stable (event-driven).  Bounded; raises
      {!Did_not_settle} on oscillation. *)
  val settle : t -> unit

  (** Read an output bus as a two's-complement mantissa ([signed]
      controls sign extension of the top bit). *)
  val get_output : t -> signed:bool -> string -> int64

  (** Clock edge: latch all DFFs and apply RAM writes. *)
  val clock : t -> unit

  (** [cycle sim inputs] = set all inputs, settle, returns unit; callers
      sample outputs and then call {!clock}. *)

  val reset : t -> unit

  (** {2 Fault injection}

      Serial stuck-at simulation: per fault, [reset]; [inject]; replay
      the test-bench vectors; [clear_fault].  A stem fault forces its
      net and masks all writes to it; a branch fault makes one gate pin
      read a constant.  At most one fault of each kind is active; the
      fault survives {!reset} (inject after reset to re-apply a stem's
      forced value). *)

  val inject : t -> fault -> unit
  val clear_fault : t -> unit

  (** {2 Net access}

      The poke surface of the gate cycle engine: a write to a DFF
      q-net between two clocks models a transient bit flip (the
      register re-samples from [d] at the next edge), a read of the
      controller's state bits decodes FSM state.  Writes respect an
      active stem fault and propagate through the event queue at the
      next {!settle}. *)

  val net_value : t -> net -> bool
  val poke_net : t -> net -> bool -> unit

  type stats = { evaluations : int; events : int }

  val stats : t -> stats
end
