exception Netlist_error of string

let error fmt = Format.kasprintf (fun s -> raise (Netlist_error s)) fmt

type net = int

type gate_kind =
  | Buf
  | Not
  | And
  | Or
  | Xor
  | Nand
  | Nor
  | Mux2
  | Const0
  | Const1

type gate = { g_kind : gate_kind; g_inputs : net array; g_out : net }
type dff_rec = { d_init : bool; d_d : net; d_q : net }

type rom_rec = {
  r_name : string;
  r_width : int;
  r_contents : int64 array;
  r_addr : net array;
  r_out : net array;
}

type ram_rec = {
  m_name : string;
  m_words : int;
  m_width : int;
  m_addr : net array;
  m_wdata : net array;
  m_we : net;
  m_out : net array;
}

type t = {
  nl_name : string;
  mutable n_nets : int;
  mutable gates : gate list;  (* reversed *)
  mutable dffs : dff_rec list;
  mutable roms : rom_rec list;
  mutable rams : ram_rec list;
  mutable inputs : (string * net array) list;
  mutable outputs : (string * net array) list;
  mutable driven : (int, unit) Hashtbl.t;
}

let create nl_name =
  {
    nl_name;
    n_nets = 0;
    gates = [];
    dffs = [];
    roms = [];
    rams = [];
    inputs = [];
    outputs = [];
    driven = Hashtbl.create 256;
  }

let name t = t.nl_name

let new_net t =
  let n = t.n_nets in
  t.n_nets <- n + 1;
  n

let mark_driven t n =
  if Hashtbl.mem t.driven n then error "net %d has two drivers" n;
  Hashtbl.replace t.driven n ()

let arity = function
  | Buf | Not -> 1
  | And | Or | Xor | Nand | Nor -> 2
  | Mux2 -> 3
  | Const0 | Const1 -> 0

let gate t kind inputs =
  if List.length inputs <> arity kind then
    error "gate: wrong arity (%d inputs)" (List.length inputs);
  let out = new_net t in
  mark_driven t out;
  t.gates <- { g_kind = kind; g_inputs = Array.of_list inputs; g_out = out } :: t.gates;
  out

let buf_into t ~dst src =
  mark_driven t dst;
  t.gates <- { g_kind = Buf; g_inputs = [| src |]; g_out = dst } :: t.gates

let dff_into t ?(init = false) ~q d =
  mark_driven t q;
  t.dffs <- { d_init = init; d_d = d; d_q = q } :: t.dffs

let gate_into t kind inputs ~dst =
  if List.length inputs <> arity kind then
    error "gate_into: wrong arity (%d inputs)" (List.length inputs);
  mark_driven t dst;
  t.gates <- { g_kind = kind; g_inputs = Array.of_list inputs; g_out = dst } :: t.gates

let dff t ?(init = false) d =
  let q = new_net t in
  mark_driven t q;
  t.dffs <- { d_init = init; d_d = d; d_q = q } :: t.dffs;
  q

let dff_en t ?(init = false) ~enable d =
  (* Recirculating mux: q feeds back when enable is low. *)
  let q = new_net t in
  mark_driven t q;
  let m = gate t Mux2 [ enable; d; q ] in
  t.dffs <- { d_init = init; d_d = m; d_q = q } :: t.dffs;
  q

let rom t ~name ~width ~contents addr =
  if Array.length contents = 0 then error "rom %s: empty" name;
  let out = Array.init width (fun _ -> new_net t) in
  Array.iter (mark_driven t) out;
  t.roms <-
    { r_name = name; r_width = width; r_contents = contents; r_addr = addr;
      r_out = out }
    :: t.roms;
  out

let ram t ~name ~words ~width ~addr ~wdata ~we =
  let out = Array.init width (fun _ -> new_net t) in
  Array.iter (mark_driven t) out;
  t.rams <-
    { m_name = name; m_words = words; m_width = width; m_addr = addr;
      m_wdata = wdata; m_we = we; m_out = out }
    :: t.rams;
  out

let input_bus t name width =
  if List.mem_assoc name t.inputs then error "duplicate input bus %s" name;
  let bus = Array.init width (fun _ -> new_net t) in
  Array.iter (mark_driven t) bus;
  t.inputs <- (name, bus) :: t.inputs;
  bus

let output_bus t name bus =
  if List.mem_assoc name t.outputs then error "duplicate output bus %s" name;
  t.outputs <- (name, bus) :: t.outputs

let find_input t name =
  match List.assoc_opt name t.inputs with
  | Some b -> b
  | None -> error "no input bus %s" name

let find_output t name =
  match List.assoc_opt name t.outputs with
  | Some b -> b
  | None -> error "no output bus %s" name

let const_bus t ~width v =
  Array.init width (fun i ->
      if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then
        gate t Const1 []
      else gate t Const0 [])

let extend_bus t ~signed bus width =
  let w = Array.length bus in
  if width <= w then Array.sub bus 0 width
  else
    let top =
      if signed && w > 0 then bus.(w - 1)
      else gate t Const0 []
    in
    Array.init width (fun i -> if i < w then bus.(i) else top)

type gate_counts = {
  combinational : int;
  flip_flops : int;
  rom_bits : int;
  ram_bits : int;
  gate_equivalents : int;
}

(* NAND2-equivalent weights, the usual back-of-the-envelope factors.
   Buffers are forward-reference wiring artifacts, not logic. *)
let gate_weight = function
  | Buf -> 0
  | Not -> 1
  | And | Or | Nand | Nor -> 1
  | Xor -> 2
  | Mux2 -> 3
  | Const0 | Const1 -> 0

let counts t =
  let combinational = List.length t.gates in
  let flip_flops = List.length t.dffs in
  let rom_bits =
    List.fold_left
      (fun acc r -> acc + (Array.length r.r_contents * r.r_width))
      0 t.roms
  in
  let ram_bits =
    List.fold_left (fun acc m -> acc + (m.m_words * m.m_width)) 0 t.rams
  in
  let comb_eq =
    List.fold_left (fun acc g -> acc + gate_weight g.g_kind) 0 t.gates
  in
  {
    combinational;
    flip_flops;
    rom_bits;
    ram_bits;
    gate_equivalents = comb_eq + (flip_flops * 6) + (rom_bits / 4) + (ram_bits / 2);
  }

let net_count t = t.n_nets

(* Longest acyclic combinational chain (Kahn levelization).  Element =
   gate, ROM read or RAM read; DFF outputs and primary inputs are depth
   0 sources; elements left with nonzero in-degree sit on cycles. *)
let combinational_depth t =
  let elems =
    List.rev_map (fun g -> (Array.to_list g.g_inputs, [ g.g_out ])) t.gates
    @ List.map (fun r -> (Array.to_list r.r_addr, Array.to_list r.r_out)) t.roms
    @ List.map (fun m -> (Array.to_list m.m_addr, Array.to_list m.m_out)) t.rams
    |> Array.of_list
  in
  let n = Array.length elems in
  let producer = Hashtbl.create 256 in
  Array.iteri
    (fun i (_, outs) -> List.iter (fun o -> Hashtbl.replace producer o i) outs)
    elems;
  let succs = Array.make n [] and indeg = Array.make n 0 in
  Array.iteri
    (fun i (ins, _) ->
      List.iter
        (fun net ->
          match Hashtbl.find_opt producer net with
          | Some j ->
            succs.(j) <- i :: succs.(j);
            indeg.(i) <- indeg.(i) + 1
          | None -> () (* dff q, primary input or undriven: a source *))
        ins)
    elems;
  let depth = Array.make n 1 in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let visited = ref 0 and best = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr visited;
    if depth.(i) > !best then best := depth.(i);
    List.iter
      (fun j ->
        if depth.(i) + 1 > depth.(j) then depth.(j) <- depth.(i) + 1;
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  (!best, n - !visited)

let fold_gates t ~init ~f =
  List.fold_left
    (fun acc g -> f acc g.g_kind g.g_inputs g.g_out)
    init (List.rev t.gates)

let fold_dffs t ~init ~f =
  List.fold_left
    (fun acc d -> f acc d.d_init ~d:d.d_d ~q:d.d_q)
    init (List.rev t.dffs)

let roms_list t =
  List.rev_map
    (fun r -> (r.r_name, r.r_width, r.r_contents, r.r_addr, r.r_out))
    t.roms

let rams_list t =
  List.rev_map
    (fun m -> (m.m_name, m.m_words, m.m_width, m.m_addr, m.m_wdata, m.m_we, m.m_out))
    t.rams

let inputs_list t = List.rev t.inputs
let outputs_list t = List.rev t.outputs

(* Human-readable label for a single-bit net: its position in a named
   input/output bus when it has one, else the bare index. *)
let label_in_buses buses n =
  List.fold_left
    (fun acc (bname, bus) ->
      match acc with
      | Some _ -> acc
      | None ->
        let rec idx i =
          if i >= Array.length bus then None
          else if bus.(i) = n then Some (Printf.sprintf "%s[%d]" bname i)
          else idx (i + 1)
        in
        idx 0)
    None buses

let net_label t n =
  match label_in_buses t.inputs n with
  | Some s -> s
  | None -> (
    match label_in_buses t.outputs n with
    | Some s -> s
    | None -> Printf.sprintf "n%d" n)

(* Canonical structural hash.  Net indices are creation-order integers
   and every element list is rebuilt in creation order, so two builder
   runs producing the same structure hash identically; the name is
   excluded on purpose — the digest identifies the circuit, not its
   label. *)
let digest t =
  let b = Buffer.create 4096 in
  let net n = Buffer.add_string b (string_of_int n); Buffer.add_char b ',' in
  let bus bus = Array.iter net bus; Buffer.add_char b ';' in
  let kind_tag = function
    | Buf -> 'b' | Not -> 'n' | And -> 'a' | Or -> 'o' | Xor -> 'x'
    | Nand -> 'A' | Nor -> 'O' | Mux2 -> 'm' | Const0 -> '0' | Const1 -> '1'
  in
  Buffer.add_string b "nets:";
  Buffer.add_string b (string_of_int t.n_nets);
  Buffer.add_string b "|gates:";
  List.iter
    (fun g ->
      Buffer.add_char b (kind_tag g.g_kind);
      Array.iter net g.g_inputs;
      net g.g_out)
    (List.rev t.gates);
  Buffer.add_string b "|dffs:";
  List.iter
    (fun d ->
      Buffer.add_char b (if d.d_init then '1' else '0');
      net d.d_d;
      net d.d_q)
    (List.rev t.dffs);
  Buffer.add_string b "|roms:";
  List.iter
    (fun r ->
      Buffer.add_string b r.r_name;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int r.r_width);
      Array.iter (fun w -> Buffer.add_string b (Int64.to_string w);
                   Buffer.add_char b ',') r.r_contents;
      bus r.r_addr;
      bus r.r_out)
    (List.rev t.roms);
  Buffer.add_string b "|rams:";
  List.iter
    (fun m ->
      Buffer.add_string b m.m_name;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int m.m_words);
      Buffer.add_char b 'x';
      Buffer.add_string b (string_of_int m.m_width);
      bus m.m_addr;
      bus m.m_wdata;
      net m.m_we;
      bus m.m_out)
    (List.rev t.rams);
  Buffer.add_string b "|inputs:";
  List.iter
    (fun (name, bs) -> Buffer.add_string b name; Buffer.add_char b ':'; bus bs)
    (List.rev t.inputs);
  Buffer.add_string b "|outputs:";
  List.iter
    (fun (name, bs) -> Buffer.add_string b name; Buffer.add_char b ':'; bus bs)
    (List.rev t.outputs);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- stuck-at fault model ------------------------------------------------ *)

type fault_site = Stem of net | Branch of { br_gate : int; br_pin : int }
type fault = { f_site : fault_site; f_stuck : bool }

let gates_in_order t = Array.of_list (List.rev t.gates)

let fault_label t f =
  let v = if f.f_stuck then 1 else 0 in
  match f.f_site with
  | Stem n -> Printf.sprintf "%s/sa%d" (net_label t n) v
  | Branch { br_gate; br_pin } ->
    Printf.sprintf "g%d.in%d/sa%d" br_gate br_pin v

let fault_universe t =
  let gates = gates_in_order t in
  let faults = ref [] in
  let add site stuck = faults := { f_site = site; f_stuck = stuck } :: !faults in
  let both site =
    add site false;
    add site true
  in
  (* Primary inputs and DFF outputs are fanout stems in their own right. *)
  List.iter (fun (_, bus) -> Array.iter (fun n -> both (Stem n)) bus) t.inputs;
  List.iter (fun d -> both (Stem d.d_q)) (List.rev t.dffs);
  Array.iteri
    (fun gi g ->
      (match g.g_kind with
      (* A constant output stuck at its own value is the fault-free
         circuit; only the opposite polarity is a fault. *)
      | Const0 -> add (Stem g.g_out) true
      | Const1 -> add (Stem g.g_out) false
      | _ -> both (Stem g.g_out));
      Array.iteri (fun pin _ -> both (Branch { br_gate = gi; br_pin = pin }))
        g.g_inputs)
    gates;
  List.rev !faults

(* Equivalence-based collapsing: drop pin faults that some stem fault in
   the universe provably dominates-and-is-dominated-by (classic gate
   rules), and fold single-fanout branch faults onto their stem. *)
let collapse_faults t faults =
  let gates = gates_in_order t in
  (* Gate-pin fanout count per net, plus loads that block branch->stem
     folding (macro-cell reads, primary outputs). *)
  let pin_fanout = Hashtbl.create 256 in
  let bump n =
    Hashtbl.replace pin_fanout n
      (1 + Option.value ~default:0 (Hashtbl.find_opt pin_fanout n))
  in
  Array.iter (fun g -> Array.iter bump g.g_inputs) gates;
  List.iter (fun d -> bump d.d_d) t.dffs;
  let observed = Hashtbl.create 64 in
  List.iter (fun r -> Array.iter (fun n -> Hashtbl.replace observed n ()) r.r_addr)
    t.roms;
  List.iter
    (fun m ->
      Array.iter (fun n -> Hashtbl.replace observed n ()) m.m_addr;
      Array.iter (fun n -> Hashtbl.replace observed n ()) m.m_wdata;
      Hashtbl.replace observed m.m_we ())
    t.rams;
  List.iter (fun (_, bus) -> Array.iter (fun n -> Hashtbl.replace observed n ()) bus)
    t.outputs;
  let stems = Hashtbl.create 256 in
  List.iter
    (fun f -> match f.f_site with Stem n -> Hashtbl.replace stems n () | _ -> ())
    faults;
  List.filter
    (fun f ->
      match f.f_site with
      | Stem _ -> true
      | Branch { br_gate; br_pin } -> (
        let g = gates.(br_gate) in
        let src = g.g_inputs.(br_pin) in
        let controlled_equiv =
          (* Pin fault equivalent to an output-stem fault of the same
             gate: controlling input values, and any fault through an
             inverter or buffer. *)
          match g.g_kind, f.f_stuck with
          | (Buf | Not), _ -> true
          | (And | Nand), false -> true
          | (Or | Nor), true -> true
          | _ -> false
        in
        if controlled_equiv then false
        else
          (* Sole load of its stem and not otherwise observed: the
             branch is electrically the stem. *)
          match Hashtbl.find_opt pin_fanout src with
          | Some 1 when (not (Hashtbl.mem observed src)) && Hashtbl.mem stems src
            -> false
          | _ -> true))
    faults

module Sim = struct
  exception Did_not_settle of Ocapi_error.t

  type elem = Gate of gate | Rom_elem of rom_rec | Ram_elem of int * ram_rec

  type t = {
    nl : (string * net array) list * (string * net array) list;  (* in, out *)
    values : bool array;
    elems : elem array;
    fanout : int list array;  (* net -> element indices *)
    dffs : dff_rec array;
    ram_state : int64 array array;  (* per ram, word values *)
    ram_index : ram_rec array;
    queue : int Queue.t;
    queued : bool array;
    name : string;
    settle_budget : int;
    mutable n_evaluations : int;
    mutable n_events : int;
    mutable n_clocks : int;
    (* Active stuck-at fault, if any: a forced net (stem fault) ignores
       all writes; a faulty gate pin (branch fault) reads a constant. *)
    mutable forced_net : net;  (* -1 = none *)
    mutable forced_value : bool;
    mutable fault_elem : int;  (* -1 = none *)
    mutable fault_pin : int;
    mutable fault_pin_value : bool;
  }

  let bus_value values ~signed bus =
    let w = Array.length bus in
    let m = ref 0L in
    for i = 0 to w - 1 do
      if values.(bus.(i)) then m := Int64.logor !m (Int64.shift_left 1L i)
    done;
    if signed && w > 0 && values.(bus.(w - 1)) then
      Int64.sub !m (Int64.shift_left 1L w)
    else !m

  let create ?settle_budget (nl : (* netlist *) _) =
    let nl_record : (* the outer type *) _ = nl in
    let values = Array.make (max 1 nl_record.n_nets) false in
    let rams = Array.of_list (List.rev nl_record.rams) in
    let elems =
      Array.of_list
        (List.rev_map (fun g -> Gate g) nl_record.gates
        @ List.map (fun r -> Rom_elem r) (List.rev nl_record.roms)
        @ List.mapi (fun i r -> Ram_elem (i, r)) (Array.to_list rams))
    in
    let fanout = Array.make (max 1 nl_record.n_nets) [] in
    Array.iteri
      (fun ei e ->
        let ins =
          match e with
          | Gate g -> Array.to_list g.g_inputs
          | Rom_elem r -> Array.to_list r.r_addr
          | Ram_elem (_, r) -> Array.to_list r.m_addr
          (* wdata/we only matter at the clock edge *)
        in
        List.iter (fun n -> fanout.(n) <- ei :: fanout.(n)) ins)
      elems;
    let t =
      {
        nl = (nl_record.inputs, nl_record.outputs);
        values;
        elems;
        fanout;
        dffs = Array.of_list (List.rev nl_record.dffs);
        ram_state = Array.map (fun r -> Array.make r.m_words 0L) rams;
        ram_index = rams;
        queue = Queue.create ();
        queued = Array.make (max 1 (Array.length elems)) false;
        name = nl_record.nl_name;
        settle_budget =
          (match settle_budget with
          | Some b -> b
          | None -> 1000 * max 64 (Array.length elems));
        n_evaluations = 0;
        n_events = 0;
        n_clocks = 0;
        forced_net = -1;
        forced_value = false;
        fault_elem = -1;
        fault_pin = 0;
        fault_pin_value = false;
      }
    in
    (* Initialize DFF outputs and evaluate everything once. *)
    Array.iter (fun d -> values.(d.d_q) <- d.d_init) t.dffs;
    Array.iteri
      (fun i _ ->
        t.queued.(i) <- true;
        Queue.add i t.queue)
      elems;
    t

  let set_net t n v =
    if n <> t.forced_net && t.values.(n) <> v then begin
      t.values.(n) <- v;
      t.n_events <- t.n_events + 1;
      List.iter
        (fun ei ->
          if not t.queued.(ei) then begin
            t.queued.(ei) <- true;
            Queue.add ei t.queue
          end)
        t.fanout.(n)
    end

  let gate_value g v =
    match g.g_kind with
    | Buf -> v 0
    | Not -> not (v 0)
    | And -> v 0 && v 1
    | Or -> v 0 || v 1
    | Xor -> v 0 <> v 1
    | Nand -> not (v 0 && v 1)
    | Nor -> not (v 0 || v 1)
    | Mux2 -> if v 0 then v 1 else v 2
    | Const0 -> false
    | Const1 -> true

  let eval_gate t g =
    let v i = t.values.(g.g_inputs.(i)) in
    set_net t g.g_out (gate_value g v)

  let drive_bus t bus m =
    Array.iteri
      (fun i n ->
        set_net t n (Int64.logand (Int64.shift_right_logical m i) 1L = 1L))
      bus

  let eval_elem t ei =
    t.n_evaluations <- t.n_evaluations + 1;
    match t.elems.(ei) with
    | Gate g ->
      if ei = t.fault_elem then
        let v i =
          if i = t.fault_pin then t.fault_pin_value
          else t.values.(g.g_inputs.(i))
        in
        set_net t g.g_out (gate_value g v)
      else eval_gate t g
    | Rom_elem r ->
      let addr = Int64.to_int (bus_value t.values ~signed:false r.r_addr) in
      let word = r.r_contents.(addr mod Array.length r.r_contents) in
      drive_bus t r.r_out word
    | Ram_elem (ri, r) ->
      let addr = Int64.to_int (bus_value t.values ~signed:false r.m_addr) in
      let word = t.ram_state.(ri).(addr mod r.m_words) in
      drive_bus t r.m_out word

  let settle t =
    let obs = Ocapi_obs.enabled () in
    let evals0 = t.n_evaluations and events0 = t.n_events in
    let t_settle = Ocapi_obs.span_begin () in
    let budget = ref t.settle_budget in
    while not (Queue.is_empty t.queue) do
      decr budget;
      if !budget < 0 then begin
        (* Report the nets still in motion: the output nets of every
           element left on the event queue. *)
        let ins, outs = t.nl in
        let label n =
          match label_in_buses ins n with
          | Some s -> s
          | None -> (
            match label_in_buses outs n with
            | Some s -> s
            | None -> Printf.sprintf "n%d" n)
        in
        let toggling =
          Queue.fold
            (fun acc ei ->
              match t.elems.(ei) with
              | Gate g -> g.g_out :: acc
              | Rom_elem r -> Array.to_list r.r_out @ acc
              | Ram_elem (_, r) -> Array.to_list r.m_out @ acc)
            [] t.queue
          |> List.sort_uniq compare
        in
        let shown = List.filteri (fun i _ -> i < 12) toggling in
        raise
          (Did_not_settle
             (Ocapi_error.make Ocapi_error.Did_not_settle ~engine:"gates"
                ~construct:t.name ~cycle:t.n_clocks
                ~nets:(List.map label shown)
                (Printf.sprintf
                   "netlist %s oscillates: %d nets still toggling after \
                    %d evaluations"
                   t.name (List.length toggling) t.settle_budget)))
      end;
      let ei = Queue.pop t.queue in
      t.queued.(ei) <- false;
      eval_elem t ei
    done;
    if obs then begin
      Ocapi_obs.count "gates.settles";
      Ocapi_obs.count ~n:(t.n_evaluations - evals0) "gates.evaluations";
      Ocapi_obs.count ~n:(t.n_events - events0) "gates.events";
      Ocapi_obs.observe "gates.evals_per_settle"
        (float_of_int (t.n_evaluations - evals0));
      Ocapi_obs.span_end ~cat:"gates" "gates.settle" t_settle
    end

  let set_input t name m =
    let ins, _ = t.nl in
    match List.assoc_opt name ins with
    | Some bus -> drive_bus t bus m
    | None -> raise (Netlist_error (Printf.sprintf "no input bus %s" name))

  let get_output t ~signed name =
    let _, outs = t.nl in
    match List.assoc_opt name outs with
    | Some bus -> bus_value t.values ~signed bus
    | None -> raise (Netlist_error (Printf.sprintf "no output bus %s" name))

  let clock t =
    t.n_clocks <- t.n_clocks + 1;
    if Ocapi_obs.enabled () then Ocapi_obs.count "gates.clocks";
    (* Sample all DFF inputs first, then update, so the edge is atomic. *)
    let sampled = Array.map (fun d -> t.values.(d.d_d)) t.dffs in
    (* RAM writes use the pre-edge address/data. *)
    Array.iteri
      (fun ri r ->
        if t.values.(r.m_we) then begin
          let addr = Int64.to_int (bus_value t.values ~signed:false r.m_addr) in
          let data = bus_value t.values ~signed:false r.m_wdata in
          t.ram_state.(ri).(addr mod r.m_words) <- data
        end)
      t.ram_index;
    Array.iteri (fun i d -> set_net t d.d_q sampled.(i)) t.dffs;
    (* Memory contents changed: re-evaluate RAM reads. *)
    Array.iteri
      (fun ri _ ->
        let ei =
          (* RAM elements sit at the tail of the element array. *)
          Array.length t.elems - Array.length t.ram_index + ri
        in
        if not t.queued.(ei) then begin
          t.queued.(ei) <- true;
          Queue.add ei t.queue
        end)
      t.ram_index;
    settle t

  let reset t =
    Array.fill t.values 0 (Array.length t.values) false;
    Array.iter (fun st -> Array.fill st 0 (Array.length st) 0L) t.ram_state;
    Array.iter (fun d -> t.values.(d.d_q) <- d.d_init) t.dffs;
    Queue.clear t.queue;
    Array.fill t.queued 0 (Array.length t.queued) false;
    Array.iteri
      (fun i _ ->
        t.queued.(i) <- true;
        Queue.add i t.queue)
      t.elems;
    t.n_evaluations <- 0;
    t.n_events <- 0;
    t.n_clocks <- 0

  (* Activate a stuck-at fault.  A stem fault pins a net: its value is
     forced now and every later write is ignored.  A branch fault makes
     one gate read a constant on one input pin.  Inject after {!reset};
     {!clear_fault} before the next reset restores the healthy circuit. *)
  let inject t (f : fault) =
    match f.f_site with
    | Stem n ->
      t.forced_net <- n;
      t.forced_value <- f.f_stuck;
      if t.values.(n) <> f.f_stuck then begin
        t.values.(n) <- f.f_stuck;
        t.n_events <- t.n_events + 1;
        List.iter
          (fun ei ->
            if not t.queued.(ei) then begin
              t.queued.(ei) <- true;
              Queue.add ei t.queue
            end)
          t.fanout.(n)
      end
    | Branch { br_gate; br_pin } ->
      t.fault_elem <- br_gate;
      t.fault_pin <- br_pin;
      t.fault_pin_value <- f.f_stuck;
      if not t.queued.(br_gate) then begin
        t.queued.(br_gate) <- true;
        Queue.add br_gate t.queue
      end

  let clear_fault t =
    t.forced_net <- -1;
    t.fault_elem <- -1

  (* Direct net access for the gate cycle engine's poke surface: a DFF
     q-net write models a transient bit flip (the register re-samples at
     the next edge), a read decodes FSM state bits.  Writes respect an
     active stem fault and propagate through the event queue at the next
     settle. *)
  let net_value t n = t.values.(n)
  let poke_net t n v = set_net t n v

  type stats = { evaluations : int; events : int }

  let stats t = { evaluations = t.n_evaluations; events = t.n_events }
end
