(** The section 3.3 architecture-migration story, reproduced.

    "Originally, a data-flow target architecture was chosen...  the
    extreme latency requirement required the introduction of global
    exceptions...  the target architecture was changed from data driven
    to central control.  The machine model allowed to reuse the datapath
    descriptions and only required the control descriptions to be
    reworked."

    This module builds the same receive chain — DC removal, a 16-tap
    FIR equalizer, a slicer, captured {e once} as SFGs — under both
    targets:

    - {!run_dataflow}: the SFGs become untimed processes
      ({!Sfg_kernel.kernel_of_sfg}) scheduled by the data-flow scheduler
      with local, data-driven control;
    - {!run_central}: the same SFGs become clock-cycle-true components
      under the cycle scheduler (the central-control target), where a
      global exception is just a hold of the instruction stream.

    Both runs produce identical bit decisions (tested), demonstrating
    that only the control had to be reworked. *)

type chain
(** One set of datapath descriptions (SFGs + their registers). *)

(** Fresh datapath descriptions (DC-removal SFG, FIR SFG, slicer SFG),
    using the DECT formats and equalizer coefficients. *)
val build_chain : unit -> chain

type result = {
  r_bits : bool list;  (** sliced decisions, in order *)
  r_soft : Fixed.t list;  (** equalizer outputs, in order *)
}

(** Run the chain over the samples under data-flow control; also
    returns the scheduler's statistics. *)
val run_dataflow : chain -> Fixed.t array -> result * Dataflow.run_stats

(** Run the same chain under the central cycle scheduler. *)
val run_central : chain -> Fixed.t array -> result * Cycle_system.stats
