(* DECT S-field sync word (PP -> FP direction), 0xE98A MSB first. *)
let sync_word =
  Array.of_list
    (List.map
       (fun c -> c = '1')
       [ '1'; '1'; '1'; '0'; '1'; '0'; '0'; '1'; '1'; '0'; '0'; '0'; '1'; '0';
         '1'; '0' ])

let preamble = Array.init 16 (fun i -> i mod 2 = 0)

let burst ?payload ~seed () =
  let payload =
    match payload with
    | Some p -> p
    | None ->
      let rng = Random.State.make [| seed; 0xdec7 |] in
      Array.init 388 (fun _ -> Random.State.bool rng)
  in
  Array.concat [ preamble; sync_word; payload ]

let transmit bits = Array.map (fun b -> if b then 1.0 else -1.0) bits

(* Box-Muller white Gaussian noise. *)
let gaussian rng =
  let u1 = max 1e-12 (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let channel ?(taps = [| 1.0; 0.45; -0.2 |]) ?(snr_db = 20.0) ~seed samples =
  let rng = Random.State.make [| seed; 0xc4a7 |] in
  let n = Array.length samples in
  let nt = Array.length taps in
  let sigma = sqrt (10.0 ** (-.snr_db /. 10.0)) in
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for k = 0 to nt - 1 do
        if i - k >= 0 then acc := !acc +. (taps.(k) *. samples.(i - k))
      done;
      !acc +. (sigma *. gaussian rng))

let fir coefficients samples =
  let nc = Array.length coefficients in
  Array.init (Array.length samples) (fun i ->
      let acc = ref 0.0 in
      for k = 0 to nc - 1 do
        if i - k >= 0 then acc := !acc +. (coefficients.(k) *. samples.(i - k))
      done;
      !acc)

let slice samples = Array.map (fun s -> s >= 0.0) samples

let correlate bits pattern =
  let np = Array.length pattern in
  Array.init (Array.length bits) (fun n ->
      if n < np - 1 then 0
      else begin
        let score = ref 0 in
        for k = 0 to np - 1 do
          if bits.(n - np + 1 + k) = pattern.(k) then incr score
        done;
        !score
      end)

let find_sync bits ~threshold =
  let scores = correlate bits sync_word in
  let n = Array.length scores in
  let rec scan i =
    if i >= n then None
    else if scores.(i) >= threshold then Some i
    else scan (i + 1)
  in
  scan 0

let crc16 bits =
  let poly = 0x1021 in
  Array.fold_left
    (fun crc bit ->
      let fb = (crc lsr 15) land 1 <> 0 <> bit in
      let crc = (crc lsl 1) land 0xffff in
      if fb then crc lxor poly else crc)
    0 bits

let quantize fmt samples =
  Array.map (fun s -> Fixed.of_float ~overflow:Fixed.Saturate fmt s) samples
