(** The DECT radio-link transceiver ASIC — the paper's driver design.

    The architecture is fig 5: a central VLIW controller, a program
    counter with the execute/hold machinery of fig 2, 22 datapath
    blocks decoding between 2 and 57 instructions each, and 7 RAM cells
    modeled as untimed components.  The controller's instruction ROM
    holds a 320-word microprogram (16 symbol loops of 20 cycles) that
    implements the receive chain:

    {v
      ADC latch -> DC removal -> gain -> sample RAM write ->
      16-tap FIR equalization on four MAC datapaths (4 taps each,
      coefficient ROMs, one sample-RAM read per cycle) ->
      tap-sum -> slicer -> { sync correlator, CRC-16, descrambler,
      deinterleaver (ping-pong RAMs), framer (byte assembly into the
      wire-link TX/RX buffers), timing recovery, frequency estimate,
      AGC, coefficient-adaptation bookkeeping (the 57-instruction
      datapath), control/status registers, monitor }
    v}

    Every datapath output port carries a token every cycle, so all four
    simulation engines and the synthesized netlist can be compared
    token by token.

    The hold exception (fig 2): asserting the [hold_request] pin makes
    the controller distribute nop instructions, freezing the datapath
    state and storing the program counter; on release the interrupted
    instruction issues from [hold_pc].  A run with holds produces
    exactly the delayed token stream of a run without (tested). *)

val sample_format : Fixed.format

(** Cycles per symbol loop (20) and microprogram length (320). *)
val loop_length : int

val program_length : int

(** The 16 equalizer coefficients (s8.6), as implemented in the four
    MAC coefficient ROMs. *)
val equalizer_coefficients : Fixed.t array

type t = {
  system : Cycle_system.t;
  probes : string list;
  program_length : int;  (** microprogram words (320) *)
  loop_length : int;  (** cycles per symbol loop (20) *)
  instruction_counts : (string * int) list;
      (** per datapath, the decoded instruction count (2..57) *)
  ram_names : string list;  (** the 7 RAM cells *)
}

(** [create ?hold ?ctl ~stimulus ()] builds the transceiver.

    [stimulus] supplies the ADC sample per cycle (use
    {!sample_stimulus}).  [hold cycle] asserts the hold_request pin
    (default: never).  [ctl cycle] drives the control-interface input
    byte (default: constant 0).  Each call creates a fresh design. *)
val create :
  ?hold:(int -> bool) ->
  ?ctl:(int -> int) ->
  stimulus:(int -> Fixed.t option) ->
  unit ->
  t

(** Pad a quantized sample array into a total per-cycle stimulus. *)
val sample_stimulus : Fixed.t array -> int -> Fixed.t option

(** The macro mapping for the 7 RAM cells (pass to synthesis). *)
val macro_of_kernel : Dataflow.Kernel.t -> Synthesize.macro_spec option

(** {1 Golden model}

    A bit-exact floating... no: {e fixed}-point reference of the
    equalizer chain, mirroring the microprogram's resize points. *)

type golden = {
  g_soft : Fixed.t array;  (** FIR output per symbol (s14.6) *)
  g_bits : bool array;  (** sliced symbol decisions *)
  g_crc : int array;  (** CRC-16 register value after each bit *)
}

(** [golden_reference samples ~symbols] runs the reference chain on the
    per-cycle sample array (one symbol consumed every [loop_length]
    cycles). *)
val golden_reference : Fixed.t array -> symbols:int -> golden

(** Approximate OCaml line count of this capture. *)
val source_lines : unit -> int
