(** Synthetic DECT burst generation — the "Matlab level" of the flow.

    The paper's chip receives DECT burst signals through an RF front-end
    and a multipath radio channel (fig 1); the equalization algorithm is
    "described and verified inside a high level design environment such
    as Matlab".  We have neither the RF hardware nor the Matlab model,
    so this module is the substitution: a floating-point burst
    generator, multipath channel and golden receiver chain that exercise
    the same code paths (DESIGN.md, substitution table).

    A burst is the DECT S-field structure: 16 preamble bits
    (1010...), the 16-bit sync word, then payload bits.  Symbols are
    transmitted as ±1.0, distorted by an FIR multipath channel and AWGN,
    and quantized by the receiver front end. *)

(** The DECT PP->FP S-field sync word, MSB first. *)
val sync_word : bool array

(** Preamble bits (alternating, 16 bits). *)
val preamble : bool array

(** [burst ~payload ~seed] — preamble @ sync @ payload bits.  When
    [payload] is omitted, [seed] generates a pseudo-random payload of
    the standard 388 bits. *)
val burst : ?payload:bool array -> seed:int -> unit -> bool array

(** [transmit bits] maps bits to ±1.0 symbols. *)
val transmit : bool array -> float array

(** [channel ~taps ~snr_db ~seed samples] convolves with the multipath
    impulse response and adds white Gaussian noise.  The default used by
    the examples is [taps = [|1.0; 0.45; -0.2|]]. *)
val channel :
  ?taps:float array -> ?snr_db:float -> seed:int -> float array -> float array

(** {1 Golden receiver (floating point)} *)

(** [fir coefficients samples] — direct-form FIR, same alignment as the
    hardware equalizer (output[n] uses samples[n], n-1, ...). *)
val fir : float array -> float array -> float array

(** Hard decisions: sign slicer. *)
val slice : float array -> bool array

(** [correlate bits pattern] — at each position ending at index [n],
    the number of agreeing bits over the pattern length (the HCOR
    metric). *)
val correlate : bool array -> bool array -> int array

(** [find_sync bits ~threshold] — first index where the correlation of
    the last 16 bits against {!sync_word} reaches [threshold]. *)
val find_sync : bool array -> threshold:int -> int option

(** CRC-16 (X.25 polynomial 0x1021, init 0) over a bit sequence, MSB
    first — the golden model for the CRC datapath. *)
val crc16 : bool array -> int

(** Quantize samples into a fixed-point format (receiver ADC). *)
val quantize : Fixed.format -> float array -> Fixed.t array
