(* The DECT transceiver of fig 5.  See the interface for the overview.

   Microprogram timing (tau = position in the 20-cycle symbol loop):
     tau  0  adc.LATCH            macs.DUMP (previous symbol)
     tau  1  dc.TRACK             macs.CLR
     tau  2  gain.APPLY  agc.ACC  sum.SUM4 (previous symbol)
     tau  3  mem.WRITE            slice.SLICE (previous symbol)
     tau  4..19  mem.READ tap 0..15; mac m MACs during tau 4+4m .. 7+4m
     tau  4  corr.SHIFT   5 crc.UPDATE   6 scram.STEP   7 framer.PUSH
     tau  8/9 deint_a WR/RD   10/11 deint_b WR/RD
     tau 12/13/14 timing EARLY/LATE/DECIDE   15 freq.ACC
     tau 13 equ.SET_MU_k  14 equ misc  16 equ.READ_k  17 equ.UPD_k  18 equ.WRB
     tau 18 ctl rotation   19 monitor.SNAP  agc.UPDATE

   The opcode-capture register gives the VLIW a one-cycle decode
   pipeline: cycle c >= 1 executes schedule[(c-1) mod 320]. *)

let sample_format = Fixed.signed ~width:6 ~frac:4
let x_fmt = Fixed.signed ~width:8 ~frac:4
let est_fmt = Fixed.signed ~width:10 ~frac:8
let coef_fmt = Fixed.signed ~width:8 ~frac:6
let acc_fmt = Fixed.signed ~width:18 ~frac:10
let mac_out_fmt = Fixed.signed ~width:12 ~frac:6
let sum_fmt = Fixed.signed ~width:14 ~frac:6
let adapt_fmt = Fixed.signed ~width:12 ~frac:8
let byte_fmt = Fixed.unsigned ~width:8 ~frac:0
let crc_fmt = Fixed.unsigned ~width:16 ~frac:0
let bit = Fixed.bit_format
let u width = Fixed.unsigned ~width ~frac:0

let loop_length = 20
let loops = 16
let program_length = loop_length * loops

(* Zero-forcing inverse of the default channel [1.0; 0.45; -0.2],
   truncated to 16 taps and quantized to the coefficient ROM format. *)
let equalizer_coefficients =
  let h = Array.make 16 0.0 in
  h.(0) <- 1.0;
  for k = 1 to 15 do
    let prev2 = if k >= 2 then h.(k - 2) else 0.0 in
    h.(k) <- -.((0.45 *. h.(k - 1)) -. (0.2 *. prev2))
  done;
  Array.map (fun c -> Fixed.of_float coef_fmt c) h

(* --- instruction-set table and field packing ------------------------------- *)

let rec bits_for n = if n <= 2 then 1 else 1 + bits_for ((n + 1) / 2)

(* (name, instruction count): between 2 and 57, 22 datapaths (fig 5). *)
let datapath_table =
  [
    ("dp_adc", 2); ("dp_dc", 3); ("dp_agc", 4); ("dp_gain", 3); ("dp_mem", 6);
    ("dp_mac0", 6); ("dp_mac1", 6); ("dp_mac2", 6); ("dp_mac3", 6);
    ("dp_sum", 5); ("dp_slice", 3); ("dp_corr", 4); ("dp_crc", 4);
    ("dp_scram", 4); ("dp_timing", 5); ("dp_freq", 4); ("dp_deint_a", 5);
    ("dp_deint_b", 5); ("dp_framer", 8); ("dp_ctl", 8); ("dp_equ", 57);
    ("dp_mon", 3);
  ]

type field = { f_bank : int; f_offset : int; f_width : int }

let field_layout, bank_widths =
  let fields = Hashtbl.create 32 in
  let bank = ref 0 and offset = ref 0 in
  let widths = ref [] in
  List.iter
    (fun (name, nops) ->
      let w = bits_for nops in
      if !offset + w > 30 then begin
        widths := !offset :: !widths;
        incr bank;
        offset := 0
      end;
      Hashtbl.replace fields name
        { f_bank = !bank; f_offset = !offset; f_width = w };
      offset := !offset + w)
    datapath_table;
  widths := !offset :: !widths;
  (fields, Array.of_list (List.rev !widths))

let n_banks = Array.length bank_widths
let bank_fmt b = Fixed.unsigned ~width:bank_widths.(b) ~frac:0

(* --- the microprogram ------------------------------------------------------- *)

let schedule : (string * int) list array =
  let s = Array.make program_length [] in
  let put p dp op = s.(p) <- (dp, op) :: s.(p) in
  let macs = [ "dp_mac0"; "dp_mac1"; "dp_mac2"; "dp_mac3" ] in
  for k = 0 to loops - 1 do
    let t tau = (k * loop_length) + tau in
    put (t 0) "dp_adc" 1;
    List.iter (fun m -> put (t 0) m 3 (* DUMP *)) macs;
    put (t 1) "dp_dc" 1;
    List.iter (fun m -> put (t 1) m 1 (* CLR *)) macs;
    put (t 2) "dp_gain" 1;
    put (t 2) "dp_agc" 1;
    put (t 2) "dp_sum" 1;
    put (t 3) "dp_mem" 2 (* WRITE *);
    put (t 3) "dp_slice" 1;
    for tau = 4 to 19 do
      put (t tau) "dp_mem" 3 (* READ *);
      put (t tau) (Printf.sprintf "dp_mac%d" ((tau - 4) / 4)) 2 (* MAC *)
    done;
    put (t 4) "dp_corr" 1;
    put (t 5) "dp_crc" 2;
    put (t 6) "dp_scram" 2;
    put (t 7) "dp_framer" 2;
    put (t 8) "dp_deint_a" 2;
    put (t 9) "dp_deint_a" 3;
    put (t 10) "dp_deint_b" 2;
    put (t 11) "dp_deint_b" 3;
    put (t 12) "dp_timing" 1;
    put (t 13) "dp_timing" 2;
    put (t 14) "dp_timing" 3;
    put (t 15) "dp_freq" 1;
    put (t 13) "dp_equ" (34 + k) (* SET_MU_k *);
    if k < 7 then put (t 14) "dp_equ" (50 + k) else put (t 14) "dp_equ" 56;
    put (t 16) "dp_equ" (1 + k) (* READ_k *);
    put (t 17) "dp_equ" (17 + k) (* UPD_k *);
    put (t 18) "dp_equ" 33 (* WRB *);
    put (t 18) "dp_ctl" (1 + (k mod 7));
    put (t 19) "dp_mon" 1;
    put (t 19) "dp_agc" 2
  done;
  (* Coverage of the remaining operations, scheduled where their effect
     is overwritten before it is consumed (see the opcode comments). *)
  let t k tau = (k * loop_length) + tau in
  put (t 0 18) "dp_agc" 3;
  put (t 0 0) "dp_dc" 2;
  put (t 15 0) "dp_gain" 2;
  put (t 3 1) "dp_mem" 5;
  put (t 2 2) "dp_mem" 4;
  List.iter
    (fun m ->
      put (t 15 2) m 4;
      put (t 14 2) m 5)
    macs;
  put (t 2 10) "dp_sum" 2;
  put (t 2 11) "dp_sum" 3;
  put (t 2 12) "dp_sum" 4;
  put (t 0 0) "dp_slice" 2;
  put (t 0 1) "dp_corr" 2;
  put (t 1 1) "dp_corr" 3;
  put (t 0 2) "dp_crc" 1;
  put (t 14 18) "dp_crc" 3;
  put (t 0 3) "dp_scram" 1;
  put (t 5 16) "dp_scram" 3;
  put (t 0 5) "dp_timing" 4;
  put (t 0 6) "dp_freq" 3;
  put (t 5 17) "dp_freq" 2;
  put (t 0 7) "dp_deint_a" 1;
  put (t 1 7) "dp_deint_a" 4;
  put (t 0 8) "dp_deint_b" 1;
  put (t 1 8) "dp_deint_b" 4;
  put (t 0 9) "dp_framer" 1;
  put (t 0 10) "dp_framer" 4;
  put (t 3 13) "dp_framer" 6;
  put (t 5 13) "dp_framer" 7;
  put (t 6 13) "dp_framer" 5;
  put (t 7 13) "dp_framer" 3;
  put (t 0 11) "dp_mon" 2;
  s

(* Clashes: "put" prepends, and the datapath executes the FIRST entry
   found for it... it must not have two.  Validate. *)
let () =
  Array.iteri
    (fun p entry ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (dp, op) ->
          if Hashtbl.mem seen dp then
            Ocapi_error.fail Internal ~engine:"design"
              ~construct:"dect.schedule"
              "datapath %s has two ops at program word %d" dp p;
          Hashtbl.replace seen dp ();
          let nops = List.assoc dp datapath_table in
          if op < 0 || op >= nops then
            Ocapi_error.fail Internal ~engine:"design"
              ~construct:"dect.schedule"
              "datapath %s op %d out of range [0, %d) at program word %d" dp op
              nops p)
        entry)
    schedule

let encode_word entry b =
  List.fold_left
    (fun acc (dp, op) ->
      let f = Hashtbl.find field_layout dp in
      if f.f_bank = b then
        Int64.logor acc (Int64.shift_left (Int64.of_int op) f.f_offset)
      else acc)
    0L entry

(* --- design ------------------------------------------------------------------ *)

type t = {
  system : Cycle_system.t;
  probes : string list;
  program_length : int;
  loop_length : int;
  instruction_counts : (string * int) list;
  ram_names : string list;
}

(* Build one datapath: an opcode capture register plus one FSM
   transition per instruction, guarded on the registered opcode
   ("conditions are stored in registers", fig 2).  [ports] lists every
   output with its default (register-read) expression; [body] returns
   per-op output overrides and performs op-specific register assigns.
   Illegal opcodes decode as nop. *)
let make_datapath ~clk ~name ~n_ops ~ports ~extra_inputs ~body =
  ignore clk;
  let f = Hashtbl.find field_layout name in
  let op_fmt = u f.f_width in
  let op_reg = Signal.Reg.create clk (name ^ "_op") op_fmt in
  let instr_port = Signal.Input.create "instr" (bank_fmt f.f_bank) in
  let next_op = Signal.resize op_fmt (Signal.shift_right (Signal.input instr_port) f.f_offset) in
  let input_ports =
    List.map (fun (pname, fmt) -> (pname, Signal.Input.create pname fmt))
      extra_inputs
  in
  let input_signals =
    List.map (fun (pname, port) -> (pname, Signal.input port)) input_ports
  in
  let build_op k =
    Sfg.build
      (Printf.sprintf "%s_op%d" name k)
      (fun b ->
        ignore (Sfg.Builder.input_port b instr_port);
        Sfg.Builder.assign b op_reg next_op;
        let declared = Hashtbl.create 4 in
        let use pname =
          if not (Hashtbl.mem declared pname) then begin
            Hashtbl.replace declared pname ();
            ignore (Sfg.Builder.input_port b (List.assoc pname input_ports))
          end;
          List.assoc pname input_signals
        in
        let overrides = body b k ~use in
        List.iter
          (fun (pname, default) ->
            let e =
              match List.assoc_opt pname overrides with
              | Some e -> e
              | None -> default
            in
            Sfg.Builder.output b pname e)
          ports)
  in
  let sfgs = Array.init n_ops build_op in
  let fsm = Fsm.create name in
  let run = Fsm.initial fsm "run" in
  for k = 0 to n_ops - 1 do
    Fsm.(
      run
      |-- cnd Signal.(reg_q op_reg ==: consti op_fmt k)
      |+ sfgs.(k) |-> run)
  done;
  Fsm.(run |-- always |+ sfgs.(0) |-> run);
  fsm

let sample_stimulus samples cycle =
  if cycle < Array.length samples then Some samples.(cycle)
  else Some (Fixed.zero sample_format)

let macro_of_kernel = Ram_cell.macro_of_kernel

(* Bit accessor used by the serial datapaths: bit [i] of an unsigned
   register value, as a 1-bit signal. *)
let bit_of e i = Signal.resize bit (Signal.shift_right e i)

(* Each [create] call builds a fully isolated transceiver: every RAM
   cell allocates a fresh backing store captured by its own closures
   (see [Ram_cell.kernel]), so factories may be invoked to replicate
   the design for per-domain campaign workers.  Component names are
   deliberately build-independent — no instance counters — so every
   build of the transceiver shares one canonical [Cycle_system.digest]
   (result-cache keys, batch dedup fingerprints).  The by-name
   [Ram_cell] registry consequently maps each RAM name to its most
   recent instance, which is all its peek/clear conveniences promise. *)
let create ?(hold = fun _ -> false) ?(ctl = fun _ -> 0) ~stimulus () =
  let ram_name base = base in
  let clk = Clock.default in
  let sys = Cycle_system.create "dect" in
  (* -- VLIW controller and program counter controller (figs 2 and 5) --
     The controller owns the execute/hold machine and the instruction
     ROM banks; the separate PC controller owns pc and hold_pc and obeys
     a command bus (0 nop, 1 advance, 2 store-hold, 3 resume). *)
  let pc_fmt = u 9 in
  let cmd_fmt = u 2 in
  let pc = Signal.Reg.create clk "pc" pc_fmt in
  let hold_pc = Signal.Reg.create clk "hold_pc" pc_fmt in
  let hold_req_r = Signal.Reg.create clk "hold_req_r" bit in
  let roms =
    Array.init n_banks (fun b ->
        let contents =
          Array.init program_length (fun p ->
              Fixed.create (bank_fmt b) (encode_word schedule.(p) b))
        in
        Signal.Rom.create (Printf.sprintf "irom%d" b) (bank_fmt b) contents)
  in
  let hold_port = Signal.Input.create "hold_in" bit in
  let pc_in_port = Signal.Input.create "pc_in" pc_fmt in
  let hold_pc_in_port = Signal.Input.create "hold_pc_in" pc_fmt in
  let capture_hold b =
    ignore (Sfg.Builder.input_port b hold_port);
    Sfg.Builder.assign b hold_req_r (Signal.input hold_port)
  in
  let rom_outputs b addr =
    Array.iteri
      (fun bk rom ->
        Sfg.Builder.output b (Printf.sprintf "bank%d" bk) (Signal.rom rom addr))
      roms
  in
  let nop_outputs b =
    Array.iteri
      (fun bk _ ->
        Sfg.Builder.output b
          (Printf.sprintf "bank%d" bk)
          (Signal.consti (bank_fmt bk) 0))
      roms
  in
  let cmd b n = Sfg.Builder.output b "pc_cmd" (Signal.consti cmd_fmt n) in
  let sfg_lookup =
    Sfg.build "lookup" (fun b ->
        capture_hold b;
        rom_outputs b (Sfg.Builder.input_port b pc_in_port);
        cmd b 1)
  in
  let sfg_hold_on =
    Sfg.build "hold_on" (fun b ->
        capture_hold b;
        nop_outputs b;
        cmd b 2)
  in
  let sfg_wait =
    Sfg.build "wait" (fun b ->
        capture_hold b;
        nop_outputs b;
        cmd b 0)
  in
  let sfg_hold_lookup =
    Sfg.build "hold_lookup" (fun b ->
        capture_hold b;
        rom_outputs b (Sfg.Builder.input_port b hold_pc_in_port);
        cmd b 3)
  in
  let vliw = Fsm.create "vliw_ctl" in
  let st_execute = Fsm.initial vliw "execute" in
  let st_hold = Fsm.state vliw "hold" in
  Fsm.(st_execute |-- cnd (Signal.reg_q hold_req_r) |+ sfg_hold_on |-> st_hold);
  Fsm.(st_execute |-- always |+ sfg_lookup |-> st_execute);
  Fsm.(st_hold |-- cnd (Signal.reg_q hold_req_r) |+ sfg_wait |-> st_hold);
  Fsm.(st_hold |-- always |+ sfg_hold_lookup |-> st_execute);
  (* The PC controller: a datapath-style component decoding the command
     bus with muxes (it has no conditions of its own). *)
  let pc_next base =
    Signal.(
      mux2
        (base ==: consti pc_fmt (program_length - 1))
        (consti pc_fmt 0)
        (resize pc_fmt (base +: consti pc_fmt 1)))
  in
  let sfg_pc =
    Sfg.build "pc_step" (fun b ->
        let command = Sfg.Builder.input b "cmd" cmd_fmt in
        let is n = Signal.(command ==: consti cmd_fmt n) in
        Sfg.Builder.output b "pc_out" (Signal.resize pc_fmt (Signal.reg_q pc));
        Sfg.Builder.output b "hold_pc_out"
          (Signal.resize pc_fmt (Signal.reg_q hold_pc));
        Sfg.Builder.assign b pc
          (Signal.resize pc_fmt
             (Signal.mux2 (is 1)
                (pc_next (Signal.reg_q pc))
                (Signal.mux2 (is 3)
                   (pc_next (Signal.reg_q hold_pc))
                   (Signal.reg_q pc))));
        Sfg.Builder.assign b hold_pc
          (Signal.resize pc_fmt
             (Signal.mux2 (is 2) (Signal.reg_q pc) (Signal.reg_q hold_pc))))
  in
  let pc_fsm = Fsm.create "pc_ctl" in
  let pc_run = Fsm.initial pc_fsm "run" in
  Fsm.(pc_run |-- always |+ sfg_pc |-> pc_run);
  (* -- datapaths -- *)
  let dp name = make_datapath ~clk ~name in
  let no_override : (string * Signal.t) list = [] in
  (* dp_adc: 0 nop, 1 LATCH *)
  let s_r = Signal.Reg.create clk "s_r" sample_format in
  let dp_adc =
    dp "dp_adc" ~n_ops:2
      ~ports:[ ("s", Signal.reg_q s_r) ]
      ~extra_inputs:[ ("sample", sample_format) ]
      ~body:(fun b k ~use ->
        if k = 1 then Sfg.Builder.assign b s_r (use "sample");
        no_override)
  in
  (* dp_dc: 0 nop, 1 TRACK, 2 RESET *)
  let est = Signal.Reg.create clk "dc_est" est_fmt in
  let y_r = Signal.Reg.create clk "dc_y" x_fmt in
  let dp_dc =
    dp "dp_dc" ~n_ops:3
      ~ports:[ ("y", Signal.reg_q y_r) ]
      ~extra_inputs:[ ("s_in", sample_format) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          let s = use "s_in" in
          let diff = Signal.(s -: reg_q est) in
          Sfg.Builder.assign_resized b est
            Signal.(reg_q est +: shift_right diff 5);
          Sfg.Builder.assign b y_r
            (Signal.resize ~overflow:Fixed.Saturate x_fmt diff)
        | 2 -> Sfg.Builder.assign b est (Signal.consti est_fmt 0)
        | _ -> ());
        no_override)
  in
  (* dp_agc: 0 nop, 1 ACC, 2 UPDATE, 3 CLRALL *)
  let mag_fmt = Fixed.unsigned ~width:12 ~frac:4 in
  let mag = Signal.Reg.create clk "agc_mag" mag_fmt in
  let gain_r = Signal.Reg.create clk "agc_gain" (u 2) in
  let dp_agc =
    dp "dp_agc" ~n_ops:4
      ~ports:[ ("agc", Signal.reg_q mag) ]
      ~extra_inputs:[ ("y_in", x_fmt) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          Sfg.Builder.assign b mag
            (Signal.resize ~overflow:Fixed.Saturate mag_fmt
               Signal.(reg_q mag +: abs_ (use "y_in")))
        | 2 ->
          Sfg.Builder.assign b gain_r
            Signal.(
              mux2 (reg_q mag <: constf mag_fmt 16.0) (consti (u 2) 1)
                (consti (u 2) 0));
          Sfg.Builder.assign b mag (Signal.consti mag_fmt 0)
        | 3 ->
          Sfg.Builder.assign b mag (Signal.consti mag_fmt 0);
          Sfg.Builder.assign b gain_r (Signal.consti (u 2) 0)
        | _ -> ());
        no_override)
  in
  (* dp_gain: 0 nop, 1 APPLY, 2 RESETG *)
  let x_r = Signal.Reg.create clk "gain_x" x_fmt in
  let dp_gain =
    dp "dp_gain" ~n_ops:3
      ~ports:[ ("x", Signal.reg_q x_r) ]
      ~extra_inputs:[ ("y_in", x_fmt) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 -> Sfg.Builder.assign b x_r (Signal.resize x_fmt (use "y_in"))
        | 2 -> Sfg.Builder.assign b x_r (Signal.consti x_fmt 0)
        | _ -> ());
        no_override)
  in
  (* dp_mem: 0 nop, 1 RST, 2 WRITE, 3 READ, 4 SETTAP, 5 MARK *)
  let ptr = Signal.Reg.create clk "mem_ptr" (u 6) in
  let tap = Signal.Reg.create clk "mem_tap" (u 4) in
  let mark = Signal.Reg.create clk "mem_mark" (u 6) in
  let dp_mem =
    dp "dp_mem" ~n_ops:6
      ~ports:[ ("addr", Signal.reg_q ptr); ("we", Signal.gnd) ]
      ~extra_inputs:[]
      ~body:(fun b k ~use ->
        ignore use;
        match k with
        | 1 ->
          Sfg.Builder.assign b ptr (Signal.consti (u 6) 0);
          Sfg.Builder.assign b tap (Signal.consti (u 4) 0);
          no_override
        | 2 ->
          Sfg.Builder.assign_resized b ptr
            Signal.(reg_q ptr +: consti (u 6) 1);
          Sfg.Builder.assign b tap (Signal.consti (u 4) 0);
          [ ("we", Signal.vdd) ]
        | 3 ->
          Sfg.Builder.assign_resized b tap
            Signal.(reg_q tap +: consti (u 4) 1);
          [ ("addr",
             Signal.resize (u 6)
               Signal.(reg_q ptr -: consti (u 6) 1 -: reg_q tap)) ]
        | 4 ->
          Sfg.Builder.assign b tap (Signal.consti (u 4) 0);
          no_override
        | 5 ->
          Sfg.Builder.assign b mark (Signal.reg_q ptr);
          no_override
        | _ -> no_override)
  in
  (* dp_macM: 0 nop, 1 CLR, 2 MAC, 3 DUMP, 4 NEGACC, 5 HOLDQ *)
  let make_mac m =
    let acc = Signal.Reg.create clk (Printf.sprintf "mac%d_acc" m) acc_fmt in
    let cnt = Signal.Reg.create clk (Printf.sprintf "mac%d_cnt" m) (u 2) in
    let out_r =
      Signal.Reg.create clk (Printf.sprintf "mac%d_out" m) mac_out_fmt
    in
    let coef_rom =
      Signal.Rom.create
        (Printf.sprintf "coef%d" m)
        coef_fmt
        (Array.sub equalizer_coefficients (4 * m) 4)
    in
    dp
      (Printf.sprintf "dp_mac%d" m)
      ~n_ops:6
      ~ports:[ ("out", Signal.reg_q out_r) ]
      ~extra_inputs:[ ("rdata", x_fmt) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          Sfg.Builder.assign b acc (Signal.consti acc_fmt 0);
          Sfg.Builder.assign b cnt (Signal.consti (u 2) 0)
        | 2 ->
          let coef = Signal.rom coef_rom (Signal.reg_q cnt) in
          Sfg.Builder.assign_resized b acc
            Signal.(reg_q acc +: (use "rdata" *: coef));
          Sfg.Builder.assign_resized b cnt
            Signal.(reg_q cnt +: consti (u 2) 1)
        | 3 ->
          Sfg.Builder.assign b out_r
            (Signal.resize ~overflow:Fixed.Saturate mac_out_fmt
               (Signal.reg_q acc))
        | 4 -> Sfg.Builder.assign_resized b acc (Signal.neg (Signal.reg_q acc))
        | 5 -> Sfg.Builder.assign b out_r (Signal.reg_q out_r)
        | _ -> ());
        no_override)
  in
  let dp_mac = Array.init 4 make_mac in
  (* dp_sum: 0 nop, 1 SUM4, 2 CLRS, 3 SUM2, 4 HOLDS *)
  let sum_r = Signal.Reg.create clk "sum_r" sum_fmt in
  let dp_sum =
    dp "dp_sum" ~n_ops:5
      ~ports:[ ("soft", Signal.reg_q sum_r) ]
      ~extra_inputs:
        [ ("m0", mac_out_fmt); ("m1", mac_out_fmt); ("m2", mac_out_fmt);
          ("m3", mac_out_fmt) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          Sfg.Builder.assign b sum_r
            (Signal.resize ~overflow:Fixed.Saturate sum_fmt
               Signal.((use "m0" +: use "m1") +: (use "m2" +: use "m3")))
        | 2 -> Sfg.Builder.assign b sum_r (Signal.consti sum_fmt 0)
        | 3 ->
          Sfg.Builder.assign b sum_r
            (Signal.resize ~overflow:Fixed.Saturate sum_fmt
               Signal.(use "m0" +: use "m1"))
        | 4 -> Sfg.Builder.assign b sum_r (Signal.reg_q sum_r)
        | _ -> ());
        no_override)
  in
  (* dp_slice: 0 nop, 1 SLICE, 2 CLRB *)
  let bit_r = Signal.Reg.create clk "bit_r" bit in
  let dp_slice =
    dp "dp_slice" ~n_ops:3
      ~ports:[ ("bit", Signal.reg_q bit_r) ]
      ~extra_inputs:[ ("soft_in", sum_fmt) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          Sfg.Builder.assign b bit_r
            Signal.(use "soft_in" >=: consti sum_fmt 0)
        | 2 -> Sfg.Builder.assign b bit_r Signal.gnd
        | _ -> ());
        no_override)
  in
  (* dp_corr: 0 nop, 1 SHIFT, 2 CLRW, 3 HOLD2 *)
  let window = 16 in
  let w =
    Array.init window (fun i ->
        Signal.Reg.create clk (Printf.sprintf "corr_w%d" i) bit)
  in
  let corr_r = Signal.Reg.create clk "corr_r" (u 5) in
  let found_r = Signal.Reg.create clk "corr_found" bit in
  let rec sum_tree = function
    | [] -> invalid_arg "Dect_transceiver: sum_tree of an empty signal list"
    | [ e ] -> e
    | es ->
      let rec pair = function
        | [] -> []
        | [ e ] -> [ e ]
        | a :: b :: rest -> Signal.add a b :: pair rest
      in
      sum_tree (pair es)
  in
  let dp_corr =
    dp "dp_corr" ~n_ops:4
      ~ports:
        [ ("corr", Signal.reg_q corr_r); ("found", Signal.reg_q found_r) ]
      ~extra_inputs:[ ("bit_in", bit) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          let nw =
            Array.init window (fun i ->
                if i = 0 then use "bit_in" else Signal.reg_q w.(i - 1))
          in
          Array.iteri (fun i reg -> Sfg.Builder.assign b reg nw.(i)) w;
          let agree =
            List.init window (fun j ->
                if Dect_stimuli.sync_word.(window - 1 - j) then nw.(j)
                else Signal.not_ nw.(j))
          in
          let corr = sum_tree agree in
          Sfg.Builder.assign b corr_r (Signal.resize (u 5) corr);
          Sfg.Builder.assign b found_r
            Signal.(corr >=: consti (Signal.fmt corr) 14)
        | 2 ->
          Array.iter (fun reg -> Sfg.Builder.assign b reg Signal.gnd) w;
          Sfg.Builder.assign b corr_r (Signal.consti (u 5) 0);
          Sfg.Builder.assign b found_r Signal.gnd
        | 3 -> Sfg.Builder.assign b corr_r (Signal.reg_q corr_r)
        | _ -> ());
        no_override)
  in
  (* dp_crc: 0 nop, 1 INIT, 2 UPDATE, 3 DUMP *)
  let crc = Signal.Reg.create clk "crc" crc_fmt in
  let crc_dump = Signal.Reg.create clk "crc_dump" crc_fmt in
  let dp_crc =
    dp "dp_crc" ~n_ops:4
      ~ports:[ ("crc_out", Signal.reg_q crc) ]
      ~extra_inputs:[ ("bit_in", bit) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 -> Sfg.Builder.assign b crc (Signal.consti crc_fmt 0)
        | 2 ->
          let q = Signal.reg_q crc in
          let fb = Signal.(bit_of q 15 ^: use "bit_in") in
          let shifted = Signal.resize crc_fmt (Signal.shift_left q 1) in
          Sfg.Builder.assign_resized b crc
            Signal.(
              shifted
              ^: mux2 fb (consti crc_fmt 0x1021) (consti crc_fmt 0))
        | 3 -> Sfg.Builder.assign b crc_dump (Signal.reg_q crc)
        | _ -> ());
        no_override)
  in
  (* dp_scram: 0 nop, 1 INIT, 2 STEP, 3 DUMP — x^7 + x^4 + 1 *)
  let seed = 0x5B in
  let lfsr = Signal.Reg.create clk "lfsr" ~init:(Fixed.of_int (u 7) seed) (u 7) in
  let sbit_r = Signal.Reg.create clk "sbit_r" bit in
  let lfsr_dump = Signal.Reg.create clk "lfsr_dump" (u 7) in
  let dp_scram =
    dp "dp_scram" ~n_ops:4
      ~ports:[ ("sbit", Signal.reg_q sbit_r) ]
      ~extra_inputs:[ ("bit_in", bit) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 -> Sfg.Builder.assign b lfsr (Signal.consti (u 7) seed)
        | 2 ->
          let q = Signal.reg_q lfsr in
          let fb = Signal.(bit_of q 6 ^: bit_of q 3) in
          Sfg.Builder.assign_resized b lfsr
            Signal.(resize (u 7) (shift_left q 1) |: fb);
          Sfg.Builder.assign b sbit_r Signal.(use "bit_in" ^: bit_of q 6)
        | 3 -> Sfg.Builder.assign b lfsr_dump (Signal.reg_q lfsr)
        | _ -> ());
        no_override)
  in
  (* dp_timing: 0 nop, 1 EARLY, 2 LATE, 3 DECIDE, 4 CLRT *)
  let e_r = Signal.Reg.create clk "tim_e" sum_fmt in
  let l_r = Signal.Reg.create clk "tim_l" sum_fmt in
  let t_r = Signal.Reg.create clk "tim_t" bit in
  let dp_timing =
    dp "dp_timing" ~n_ops:5
      ~ports:[ ("terr", Signal.reg_q t_r) ]
      ~extra_inputs:[ ("soft_in", sum_fmt) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          Sfg.Builder.assign b e_r
            (Signal.resize ~overflow:Fixed.Saturate sum_fmt
               Signal.(reg_q e_r +: use "soft_in"))
        | 2 ->
          Sfg.Builder.assign b l_r
            (Signal.resize ~overflow:Fixed.Saturate sum_fmt
               Signal.(reg_q l_r +: use "soft_in"))
        | 3 -> Sfg.Builder.assign b t_r Signal.(reg_q e_r <: reg_q l_r)
        | 4 ->
          Sfg.Builder.assign b e_r (Signal.consti sum_fmt 0);
          Sfg.Builder.assign b l_r (Signal.consti sum_fmt 0)
        | _ -> ());
        no_override)
  in
  (* dp_freq: 0 nop, 1 ACC, 2 DUMPF, 3 CLRF *)
  let f_r = Signal.Reg.create clk "freq_f" sum_fmt in
  let prev = Signal.Reg.create clk "freq_prev" sum_fmt in
  let fd_r = Signal.Reg.create clk "freq_dump" sum_fmt in
  let dp_freq =
    dp "dp_freq" ~n_ops:4
      ~ports:[ ("fout", Signal.reg_q f_r) ]
      ~extra_inputs:[ ("soft_in", sum_fmt) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          Sfg.Builder.assign b f_r
            (Signal.resize ~overflow:Fixed.Saturate sum_fmt
               Signal.(reg_q f_r +: (use "soft_in" -: reg_q prev)));
          Sfg.Builder.assign b prev (Signal.resize sum_fmt (use "soft_in"))
        | 2 -> Sfg.Builder.assign b fd_r (Signal.reg_q f_r)
        | 3 ->
          Sfg.Builder.assign b f_r (Signal.consti sum_fmt 0);
          Sfg.Builder.assign b prev (Signal.consti sum_fmt 0)
        | _ -> ());
        no_override)
  in
  (* dp_deint_{a,b}: 0 nop, 1 RST, 2 WR_SEQ, 3 RD_PERM, 4 HOLD3 *)
  let make_deint suffix =
    let i_r = Signal.Reg.create clk ("deint_i" ^ suffix) (u 5) in
    dp
      ("dp_deint_" ^ suffix)
      ~n_ops:5
      ~ports:
        [ ("d" ^ suffix ^ "_addr", Signal.reg_q i_r);
          ("d" ^ suffix ^ "_we", Signal.gnd) ]
      ~extra_inputs:[]
      ~body:(fun b k ~use ->
        ignore use;
        match k with
        | 1 ->
          Sfg.Builder.assign b i_r (Signal.consti (u 5) 0);
          no_override
        | 2 ->
          Sfg.Builder.assign_resized b i_r
            Signal.(reg_q i_r +: consti (u 5) 1);
          [ ("d" ^ suffix ^ "_we", Signal.vdd) ]
        | 3 ->
          [ ("d" ^ suffix ^ "_addr",
             Signal.resize (u 5) Signal.(reg_q i_r *: consti (u 5) 5)) ]
        | _ -> no_override)
  in
  let dp_deint_a = make_deint "a" in
  let dp_deint_b = make_deint "b" in
  (* dp_framer: 0 nop, 1 CLR, 2 PUSH, 3 EMIT, 4 SYNC_INS, 5 IDLE1,
     6 COUNT, 7 MARK2 *)
  let byte_r = Signal.Reg.create clk "fr_byte" byte_fmt in
  let bitcnt = Signal.Reg.create clk "fr_bitcnt" (u 3) in
  let bptr = Signal.Reg.create clk "fr_bptr" (u 5) in
  let fcnt = Signal.Reg.create clk "fr_cnt" byte_fmt in
  let frame_r = Signal.Reg.create clk "fr_frame" byte_fmt in
  let dp_framer =
    dp "dp_framer" ~n_ops:8
      ~ports:
        [ ("frame", Signal.reg_q frame_r);
          ("tx_addr", Signal.reg_q bptr);
          ("tx_wdata", Signal.reg_q byte_r);
          ("tx_we", Signal.gnd);
          ("rx_addr", Signal.reg_q bptr);
          ("rx_wdata", Signal.reg_q frame_r);
          ("rx_we", Signal.gnd) ]
      ~extra_inputs:[ ("bit_in", bit); ("da_in", bit); ("db_in", bit) ]
      ~body:(fun b k ~use ->
        match k with
        | 1 ->
          Sfg.Builder.assign b byte_r (Signal.consti byte_fmt 0);
          Sfg.Builder.assign b bitcnt (Signal.consti (u 3) 0);
          no_override
        | 2 ->
          let nb =
            Signal.(
              resize byte_fmt (shift_left (reg_q byte_r) 1) |: use "bit_in")
          in
          let full = Signal.(reg_q bitcnt ==: consti (u 3) 7) in
          Sfg.Builder.assign b byte_r nb;
          Sfg.Builder.assign_resized b bitcnt
            Signal.(reg_q bitcnt +: consti (u 3) 1);
          Sfg.Builder.assign b frame_r
            (Signal.mux2 full nb (Signal.reg_q frame_r));
          Sfg.Builder.assign b bptr
            (Signal.mux2 full
               (Signal.resize (u 5) Signal.(reg_q bptr +: consti (u 5) 1))
               (Signal.reg_q bptr));
          [ ("tx_we", full); ("tx_wdata", nb) ]
        | 3 ->
          Sfg.Builder.assign_resized b bptr
            Signal.(reg_q bptr +: consti (u 5) 1);
          Sfg.Builder.assign b frame_r (Signal.reg_q byte_r);
          [ ("tx_we", Signal.vdd) ]
        | 4 ->
          Sfg.Builder.assign b byte_r (Signal.consti byte_fmt 0xE9);
          no_override
        | 6 ->
          Sfg.Builder.assign_resized b fcnt
            Signal.(reg_q fcnt +: consti byte_fmt 1);
          no_override
        | 7 ->
          [ ("rx_we", Signal.vdd);
            ("rx_wdata", Signal.resize byte_fmt Signal.(use "da_in" +: use "db_in")) ]
        | _ -> no_override)
  in
  (* dp_ctl: 0 nop, 1 WR_MODE, 2 RD_STATUS, 3 SET_THR, 4 CLR_FLAGS,
     5 LATCH_ERR, 6 TOGGLE, 7 IDLE2 *)
  let mode = Signal.Reg.create clk "ctl_mode" byte_fmt in
  let status = Signal.Reg.create clk "ctl_status" byte_fmt in
  let thr = Signal.Reg.create clk "ctl_thr" byte_fmt in
  let flags = Signal.Reg.create clk "ctl_flags" byte_fmt in
  let err = Signal.Reg.create clk "ctl_err" bit in
  let tgl = Signal.Reg.create clk "ctl_tgl" bit in
  let dp_ctl =
    dp "dp_ctl" ~n_ops:8
      ~ports:
        [ ("status_out", Signal.reg_q status);
          ("ctl_addr", Signal.consti (u 4) 0);
          ("ctl_wdata", Signal.reg_q mode);
          ("ctl_we", Signal.gnd) ]
      ~extra_inputs:
        [ ("ext_in", byte_fmt); ("found_in", bit); ("creg_in", byte_fmt) ]
      ~body:(fun b k ~use ->
        (* Write data is always registered (captured on a previous
           WR_MODE/SET_THR) so the control-RAM write path stays free of
           combinational input dependencies — the compiled scheduler
           orders components, not ports. *)
        match k with
        | 1 ->
          Sfg.Builder.assign b mode (use "ext_in");
          [ ("ctl_we", Signal.vdd) ]
        | 2 ->
          Sfg.Builder.assign_resized b status
            Signal.(use "creg_in" +: use "found_in");
          no_override
        | 3 ->
          Sfg.Builder.assign b thr (use "ext_in");
          [ ("ctl_addr", Signal.consti (u 4) 1);
            ("ctl_we", Signal.vdd);
            ("ctl_wdata", Signal.reg_q thr) ]
        | 4 ->
          Sfg.Builder.assign b flags (Signal.consti byte_fmt 0);
          no_override
        | 5 ->
          Sfg.Builder.assign b err (use "found_in");
          no_override
        | 6 ->
          Sfg.Builder.assign b tgl (Signal.not_ (Signal.reg_q tgl));
          no_override
        | _ -> no_override)
  in
  (* dp_equ: the 57-instruction adaptation datapath.
     0 nop; 1..16 READ_k; 17..32 UPD_k; 33 WRB; 34..49 SET_MU_k;
     50 CLR; 51 DUMP; 52 SCALE; 53 SAT; 54 STEP; 55 SIGN; 56 IDLE3. *)
  let wb_r = Signal.Reg.create clk "equ_wb" adapt_fmt in
  let idx = Signal.Reg.create clk "equ_idx" (u 4) in
  let mu = Signal.Reg.create clk "equ_mu" (u 4) in
  let metric = Signal.Reg.create clk "equ_metric" adapt_fmt in
  let metric_dump = Signal.Reg.create clk "equ_mdump" adapt_fmt in
  let dp_equ =
    dp "dp_equ" ~n_ops:57
      ~ports:
        [ ("adapt", Signal.reg_q metric);
          ("e_addr", Signal.reg_q idx);
          ("e_wdata", Signal.reg_q wb_r);
          ("e_we", Signal.gnd) ]
      ~extra_inputs:[ ("erd_in", adapt_fmt); ("soft_in", sum_fmt) ]
      ~body:(fun b k ~use ->
        if k >= 1 && k <= 16 then begin
          let tap_i = k - 1 in
          Sfg.Builder.assign b idx (Signal.consti (u 4) tap_i);
          [ ("e_addr", Signal.consti (u 4) tap_i) ]
        end
        else if k >= 17 && k <= 32 then begin
          let shift = 2 + ((k - 17) mod 4) in
          Sfg.Builder.assign b wb_r
            (Signal.resize ~overflow:Fixed.Saturate adapt_fmt
               Signal.(use "erd_in" +: shift_right (use "soft_in") shift));
          Sfg.Builder.assign b metric
            (Signal.resize ~overflow:Fixed.Saturate adapt_fmt
               Signal.(reg_q metric +: abs_ (use "erd_in")));
          no_override
        end
        else if k = 33 then [ ("e_we", Signal.vdd) ]
        else if k >= 34 && k <= 49 then begin
          Sfg.Builder.assign b mu (Signal.consti (u 4) (k - 34));
          no_override
        end
        else begin
          (match k with
          | 50 -> Sfg.Builder.assign b metric (Signal.consti adapt_fmt 0)
          | 51 -> Sfg.Builder.assign b metric_dump (Signal.reg_q metric)
          | 52 ->
            Sfg.Builder.assign_resized b metric
              (Signal.shift_right (Signal.reg_q metric) 1)
          | 53 ->
            Sfg.Builder.assign b metric
              (Signal.resize ~overflow:Fixed.Saturate adapt_fmt
                 Signal.(reg_q metric +: reg_q metric))
          | 54 ->
            Sfg.Builder.assign b metric
              (Signal.resize ~overflow:Fixed.Saturate adapt_fmt
                 Signal.(reg_q metric +: constf adapt_fmt 0.125))
          | 55 ->
            Sfg.Builder.assign b metric
              (Signal.resize ~overflow:Fixed.Saturate adapt_fmt
                 (Signal.neg (Signal.reg_q metric)))
          | _ -> ());
          no_override
        end)
  in
  (* dp_mon: 0 nop, 1 SNAP, 2 CLRM *)
  let snap = Signal.Reg.create clk "mon_snap" byte_fmt in
  let dp_mon =
    dp "dp_mon" ~n_ops:3
      ~ports:[ ("mon", Signal.reg_q snap) ]
      ~extra_inputs:[ ("tx_in", byte_fmt); ("rx_in", byte_fmt) ]
      ~body:(fun b k ~use ->
        (match k with
        | 1 ->
          Sfg.Builder.assign_resized b snap
            Signal.(use "tx_in" ^: use "rx_in")
        | 2 -> Sfg.Builder.assign b snap (Signal.consti byte_fmt 0)
        | _ -> ());
        no_override)
  in
  (* -- RAM cells (7, untimed) -- *)
  let ram base ~words ~data_fmt ~addr_fmt =
    Cycle_system.add_untimed sys
      (Ram_cell.kernel ~name:(ram_name base) ~words ~data_fmt ~addr_fmt)
  in
  let ram_samples = ram "ram_samples" ~words:64 ~data_fmt:x_fmt ~addr_fmt:(u 6) in
  let ram_deint_a = ram "ram_deint_a" ~words:32 ~data_fmt:bit ~addr_fmt:(u 5) in
  let ram_deint_b = ram "ram_deint_b" ~words:32 ~data_fmt:bit ~addr_fmt:(u 5) in
  let ram_tx = ram "ram_tx" ~words:32 ~data_fmt:byte_fmt ~addr_fmt:(u 5) in
  let ram_rx = ram "ram_rx" ~words:32 ~data_fmt:byte_fmt ~addr_fmt:(u 5) in
  let ram_ctl = ram "ram_ctl" ~words:16 ~data_fmt:byte_fmt ~addr_fmt:(u 4) in
  let ram_adapt = ram "ram_adapt" ~words:16 ~data_fmt:adapt_fmt ~addr_fmt:(u 4) in
  (* -- components and interconnect -- *)
  let add = Cycle_system.add_timed sys in
  let c_vliw = add "vliw_ctl" vliw in
  let c_pc = add "pc_ctl" pc_fsm in
  let c_adc = add "dp_adc" dp_adc in
  let c_dc = add "dp_dc" dp_dc in
  let c_agc = add "dp_agc" dp_agc in
  let c_gain = add "dp_gain" dp_gain in
  let c_mem = add "dp_mem" dp_mem in
  let c_mac = Array.mapi (fun m f -> add (Printf.sprintf "dp_mac%d" m) f) dp_mac in
  let c_sum = add "dp_sum" dp_sum in
  let c_slice = add "dp_slice" dp_slice in
  let c_corr = add "dp_corr" dp_corr in
  let c_crc = add "dp_crc" dp_crc in
  let c_scram = add "dp_scram" dp_scram in
  let c_timing = add "dp_timing" dp_timing in
  let c_freq = add "dp_freq" dp_freq in
  let c_deint_a = add "dp_deint_a" dp_deint_a in
  let c_deint_b = add "dp_deint_b" dp_deint_b in
  let c_framer = add "dp_framer" dp_framer in
  let c_ctl = add "dp_ctl" dp_ctl in
  let c_equ = add "dp_equ" dp_equ in
  let c_mon = add "dp_mon" dp_mon in
  let in_sample = Cycle_system.add_input sys "sample_in" sample_format stimulus in
  let in_hold =
    Cycle_system.add_input sys "hold_request" bit (fun c ->
        Some (Fixed.of_bool (hold c)))
  in
  let in_ctl =
    Cycle_system.add_input sys "ctl_in" byte_fmt (fun c ->
        Some (Fixed.of_int byte_fmt (ctl c land 0xff)))
  in
  let probes =
    [ "soft_out"; "bit_out"; "corr_out"; "found_out"; "crc_probe";
      "scram_out"; "frame_probe"; "status_probe"; "agc_probe"; "timing_probe";
      "freq_probe"; "adapt_probe"; "mon_probe"; "pc_probe" ]
  in
  let probe_comp = List.map (fun p -> (p, Cycle_system.add_output sys p)) probes in
  let pr p = (List.assoc p probe_comp, "in") in
  let cn src sinks = ignore (Cycle_system.connect sys src sinks) in
  (* Instruction buses: every datapath listens to its bank. *)
  let all_dps =
    [ ("dp_adc", c_adc); ("dp_dc", c_dc); ("dp_agc", c_agc);
      ("dp_gain", c_gain); ("dp_mem", c_mem); ("dp_mac0", c_mac.(0));
      ("dp_mac1", c_mac.(1)); ("dp_mac2", c_mac.(2)); ("dp_mac3", c_mac.(3));
      ("dp_sum", c_sum); ("dp_slice", c_slice); ("dp_corr", c_corr);
      ("dp_crc", c_crc); ("dp_scram", c_scram); ("dp_timing", c_timing);
      ("dp_freq", c_freq); ("dp_deint_a", c_deint_a);
      ("dp_deint_b", c_deint_b); ("dp_framer", c_framer); ("dp_ctl", c_ctl);
      ("dp_equ", c_equ); ("dp_mon", c_mon) ]
  in
  for b = 0 to n_banks - 1 do
    let sinks =
      List.filter_map
        (fun (name, comp) ->
          let f = Hashtbl.find field_layout name in
          if f.f_bank = b then Some (comp, "instr") else None)
        all_dps
    in
    cn (c_vliw, Printf.sprintf "bank%d" b) sinks
  done;
  cn (c_vliw, "pc_cmd") [ (c_pc, "cmd") ];
  cn (c_pc, "pc_out") [ (c_vliw, "pc_in"); pr "pc_probe" ];
  cn (c_pc, "hold_pc_out") [ (c_vliw, "hold_pc_in") ];
  cn (in_hold, "out") [ (c_vliw, "hold_in") ];
  cn (in_sample, "out") [ (c_adc, "sample") ];
  cn (in_ctl, "out") [ (c_ctl, "ext_in") ];
  (* Receive chain. *)
  cn (c_adc, "s") [ (c_dc, "s_in") ];
  cn (c_dc, "y") [ (c_gain, "y_in"); (c_agc, "y_in") ];
  cn (c_gain, "x") [ (ram_samples, "wdata") ];
  cn (c_mem, "addr") [ (ram_samples, "addr") ];
  cn (c_mem, "we") [ (ram_samples, "we") ];
  cn (ram_samples, "rdata")
    [ (c_mac.(0), "rdata"); (c_mac.(1), "rdata"); (c_mac.(2), "rdata");
      (c_mac.(3), "rdata") ];
  cn (c_mac.(0), "out") [ (c_sum, "m0") ];
  cn (c_mac.(1), "out") [ (c_sum, "m1") ];
  cn (c_mac.(2), "out") [ (c_sum, "m2") ];
  cn (c_mac.(3), "out") [ (c_sum, "m3") ];
  cn (c_sum, "soft")
    [ (c_slice, "soft_in"); (c_timing, "soft_in"); (c_freq, "soft_in");
      (c_equ, "soft_in"); pr "soft_out" ];
  cn (c_slice, "bit")
    [ (c_corr, "bit_in"); (c_crc, "bit_in"); (c_scram, "bit_in");
      (c_framer, "bit_in"); (ram_deint_a, "wdata"); (ram_deint_b, "wdata");
      pr "bit_out" ];
  cn (c_corr, "corr") [ pr "corr_out" ];
  cn (c_corr, "found") [ (c_ctl, "found_in"); pr "found_out" ];
  cn (c_crc, "crc_out") [ pr "crc_probe" ];
  cn (c_scram, "sbit") [ pr "scram_out" ];
  cn (c_timing, "terr") [ pr "timing_probe" ];
  cn (c_freq, "fout") [ pr "freq_probe" ];
  cn (c_agc, "agc") [ pr "agc_probe" ];
  (* Deinterleaver ping-pong RAMs. *)
  cn (c_deint_a, "da_addr") [ (ram_deint_a, "addr") ];
  cn (c_deint_a, "da_we") [ (ram_deint_a, "we") ];
  cn (c_deint_b, "db_addr") [ (ram_deint_b, "addr") ];
  cn (c_deint_b, "db_we") [ (ram_deint_b, "we") ];
  cn (ram_deint_a, "rdata") [ (c_framer, "da_in") ];
  cn (ram_deint_b, "rdata") [ (c_framer, "db_in") ];
  (* Wire-link buffers. *)
  cn (c_framer, "tx_addr") [ (ram_tx, "addr") ];
  cn (c_framer, "tx_wdata") [ (ram_tx, "wdata") ];
  cn (c_framer, "tx_we") [ (ram_tx, "we") ];
  cn (c_framer, "rx_addr") [ (ram_rx, "addr") ];
  cn (c_framer, "rx_wdata") [ (ram_rx, "wdata") ];
  cn (c_framer, "rx_we") [ (ram_rx, "we") ];
  cn (c_framer, "frame") [ pr "frame_probe" ];
  cn (ram_tx, "rdata") [ (c_mon, "tx_in") ];
  cn (ram_rx, "rdata") [ (c_mon, "rx_in") ];
  cn (c_mon, "mon") [ pr "mon_probe" ];
  (* Control interface. *)
  cn (c_ctl, "ctl_addr") [ (ram_ctl, "addr") ];
  cn (c_ctl, "ctl_wdata") [ (ram_ctl, "wdata") ];
  cn (c_ctl, "ctl_we") [ (ram_ctl, "we") ];
  cn (ram_ctl, "rdata") [ (c_ctl, "creg_in") ];
  cn (c_ctl, "status_out") [ pr "status_probe" ];
  (* Adaptation store. *)
  cn (c_equ, "e_addr") [ (ram_adapt, "addr") ];
  cn (c_equ, "e_wdata") [ (ram_adapt, "wdata") ];
  cn (c_equ, "e_we") [ (ram_adapt, "we") ];
  cn (ram_adapt, "rdata") [ (c_equ, "erd_in") ];
  cn (c_equ, "adapt") [ pr "adapt_probe" ];
  {
    system = sys;
    probes;
    program_length;
    loop_length;
    instruction_counts = datapath_table;
    ram_names =
      List.map ram_name
        [ "ram_samples"; "ram_deint_a"; "ram_deint_b"; "ram_tx"; "ram_rx";
          "ram_ctl"; "ram_adapt" ];
  }

(* --- golden model -------------------------------------------------------- *)

type golden = {
  g_soft : Fixed.t array;
  g_bits : bool array;
  g_crc : int array;
}

let golden_reference samples ~symbols =
  let sample_at c =
    if c < Array.length samples then samples.(c) else Fixed.zero sample_format
  in
  let est = ref (Fixed.zero est_fmt) in
  let hist = Array.make 64 (Fixed.zero x_fmt) in
  let g_soft = Array.make symbols (Fixed.zero sum_fmt) in
  let g_bits = Array.make symbols false in
  let g_crc = Array.make symbols 0 in
  let crc = ref 0 in
  let crc_step b =
    let fb = (!crc lsr 15) land 1 <> 0 <> b in
    crc := (!crc lsl 1) land 0xffff;
    if fb then crc := !crc lxor 0x1021
  in
  (* Pipeline fill: the first pass's loop 0 slices the still-zero sum
     register (a 1 bit) before any real symbol reaches the CRC. *)
  crc_step true;
  for n = 0 to symbols - 1 do
    (* The microprogram re-executes its coverage ops on every pass:
       dc.RESET before the TRACK of symbols n = 0 mod 16, and crc.INIT
       before the update that processes bit (16p - 1). *)
    if n mod loops = 0 then est := Fixed.zero est_fmt;
    (* LATCH at cycle 20n+1; TRACK at 20n+2. *)
    let s = sample_at ((loop_length * n) + 1) in
    let diff = Fixed.sub s !est in
    let est' =
      Fixed.resize est_fmt (Fixed.add !est (Fixed.shift_right diff 5))
    in
    let y = Fixed.resize ~overflow:Fixed.Saturate x_fmt diff in
    est := est';
    (* APPLY, WRITE. *)
    let x = Fixed.resize x_fmt y in
    hist.(n mod 64) <- x;
    (* Four MACs, four taps each; the tap sample for tap j is x[n-j]
       (RAM zeros before the stream started). *)
    let mac_out m =
      let acc = ref (Fixed.zero acc_fmt) in
      for j = 0 to 3 do
        let tap_index = (4 * m) + j in
        let xi =
          if n - tap_index < 0 then Fixed.zero x_fmt
          else hist.((n - tap_index) mod 64)
        in
        acc :=
          Fixed.resize acc_fmt
            (Fixed.add !acc (Fixed.mul xi equalizer_coefficients.(tap_index)))
      done;
      Fixed.resize ~overflow:Fixed.Saturate mac_out_fmt !acc
    in
    let m0 = mac_out 0 and m1 = mac_out 1 and m2 = mac_out 2 and m3 = mac_out 3 in
    let soft =
      Fixed.resize ~overflow:Fixed.Saturate sum_fmt
        (Fixed.add (Fixed.add m0 m1) (Fixed.add m2 m3))
    in
    g_soft.(n) <- soft;
    let b = Fixed.compare_value soft (Fixed.zero sum_fmt) >= 0 in
    g_bits.(n) <- b;
    (* CRC update, one step per sliced bit; the pass-start INIT lands
       just before the update of the pass's first processed bit. *)
    if (n + 1) mod loops = 0 then crc := 0;
    crc_step b;
    g_crc.(n) <- !crc
  done;
  { g_soft; g_bits; g_crc }

let source_lines () =
  let candidates =
    [ "lib/designs/dect_transceiver.ml"; "../lib/designs/dect_transceiver.ml";
      "../../lib/designs/dect_transceiver.ml" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Metrics.source_lines_of_files [ path ]
  | None -> 780
