(** HCOR — the DECT header correlator processor.

    Table 1's first design: a ~6 Kgate processor that watches the
    received sample stream for the DECT S-field sync word.  The
    architecture follows the combined control/data processing model of
    section 3: one clock-cycle-true component whose datapath holds

    - a 16-deep soft-sample window (s6.4 registers) and the sliced hard
      bit window,
    - a hard correlator (XNOR + population-count tree against
      {!Dect_stimuli.sync_word}),
    - a soft correlator (add/subtract tree of the sample window signed
      by the sync pattern),
    - a signal-magnitude accumulator (AGC estimate),
    - a payload bit counter,

    and whose Mealy FSM hunts in state [search] until the registered
    hard correlation reaches the threshold, then emits payload bits in
    state [locked] until [payload_len] bits have passed (fig 2 style:
    the condition flags are registered).

    Every output port produces a token each cycle, so all simulation
    engines and the synthesized netlist can be compared cycle by cycle:
    - ["corr"]    hard correlation of the current window (u5.0),
    - ["soft"]    soft correlation (saturated to s12.4),
    - ["agc"]     windowed magnitude estimate (saturated to u12.4),
    - ["bit_out"] the sliced bit (u1.0),
    - ["locked"]  1 while emitting payload (u1.0). *)

(** Receiver sample format: s6.4 (the front-end ADC of fig 1). *)
val sample_format : Fixed.format

type t = {
  system : Cycle_system.t;
  probes : string list;  (** ["corr"; "soft"; "agc"; "bit_out"; "locked"] *)
}

(** [create ?threshold ?payload_len ~stimulus ()] builds the HCOR
    system with the given sample stimulus.  Default [threshold] is 14
    of 16; default [payload_len] is 388 (a DECT B-field + CRC).  Each
    call creates fresh registers, so instances are independent. *)
val create :
  ?threshold:int ->
  ?payload_len:int ->
  stimulus:(int -> Fixed.t option) ->
  unit ->
  t

(** [sample_stimulus samples] turns a quantized burst into a stimulus
    function ([None] once exhausted... the stream is padded with zero
    samples so it is total, which every engine requires). *)
val sample_stimulus : Fixed.t array -> int -> Fixed.t option

(** Approximate OCaml line count of this capture (for Table 1's source
    size column). *)
val source_lines : unit -> int
