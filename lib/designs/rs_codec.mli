(** RS — a parameterized Reed–Solomon encoder / syndrome-decoder pair.

    The third gallery design: a GF(16) shortened-RS link in the
    255,239 style, scaled to the 4-bit symbol field so the whole
    codec fits the reproduction's 62-bit mantissa budget.  Defaults
    give RS(15,11), t = 2 — the exact GF(2^4) analog of the classic
    RS(255,239) profile (narrow-sense, systematic, roots
    [alpha^1 .. alpha^2t]).

    Two clock-cycle-true components share one system:

    - {b enc} — the systematic LFSR encoder of section 3's combined
      control/data model: [2t] parity registers, the generator
      polynomial folded into per-coefficient constant-GF-multiply
      ROMs (16-entry lookup tables indexed by the feedback symbol),
      and a two-state Mealy FSM ([data]: shift the message through
      the LFSR; [parity]: flush the parity registers) sequenced by
      registered block-position flags, fig 2 style.
    - {b dec} — the syndrome front end: one Horner accumulator per
      root ([S_j <- alpha^j * S_j + r], the multiply again a constant
      ROM), restarted every block boundary, latching the
      any-syndrome-nonzero flag as the per-codeword error detector.

    The channel between them is a symbol-wise XOR error injector fed
    by the ["err"] primary input, so fault and fuzz campaigns can
    corrupt codewords deterministically.  Every output port produces
    a token each cycle:

    - ["sym"]  the transmitted code symbol (u4.0),
    - ["rx"]   the received (possibly corrupted) symbol (u4.0),
    - ["syn1"] the running first-syndrome accumulator (u4.0),
    - ["serr"] the previous block's error-detected flag (u1.0).

    The self-check property: a block with zero injected error yields
    [serr = 0] (the encoder really emits codewords with roots at
    [alpha^1..alpha^2t]); any nonzero injection in a block yields
    [serr = 1] one cycle after the block boundary. *)

(** Code symbol format: u4.0 — one GF(16) element. *)
val sym_fmt : Fixed.format

type t = {
  system : Cycle_system.t;
  probes : string list;  (** ["sym"; "rx"; "syn1"; "serr"] *)
  n : int;  (** block length [k + 2t] *)
  k : int;  (** message length *)
}

(** GF(16) product under the primitive polynomial [x^4 + x + 1]
    (exposed for the test suite's reference model). *)
val gf_mul : int -> int -> int

(** [gf_pow a e] is [a^e] in GF(16); [gf_pow 2 e] gives the powers of
    the primitive element [alpha = 2]. *)
val gf_pow : int -> int -> int

(** Generator polynomial of a [t]-error-correcting narrow-sense code:
    coefficient array of [prod_{j=1..2t} (x + alpha^j)], index = power
    of [x], monic. *)
val gen_poly : int -> int array

(** [create ?k ?t ~data_stimulus ~err_stimulus ()] builds the codec
    system.  Defaults: [k = 11], [t = 2] (so [n = 15]).  Requires
    [1 <= t <= 3] and [k + 2t <= 15].  Each call creates fresh
    registers and ROMs, so instances are independent. *)
val create :
  ?k:int ->
  ?t:int ->
  data_stimulus:(int -> Fixed.t option) ->
  err_stimulus:(int -> Fixed.t option) ->
  unit ->
  t

(** Deterministic pseudorandom message symbols (pure in [seed] and the
    cycle index). *)
val data_stimulus : ?seed:int -> unit -> int -> Fixed.t option

(** Symbol-error injector: the value 9 on every cycle congruent to
    [offset] modulo [period] (default one corrupted symbol every three
    RS(15,11) blocks), zero elsewhere.  [period = 0] never injects. *)
val err_stimulus : ?period:int -> ?offset:int -> unit -> int -> Fixed.t option

(** Approximate OCaml line count of this capture (for Table 1's source
    size column). *)
val source_lines : unit -> int
