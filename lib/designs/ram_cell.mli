(** RAM cells, modeled "at high level" (paper section 4).

    "In the DECT transceiver, such a loop of detailed (timed) and high
    level (untimed) components occurs for instance in the RAM cells that
    are attached to the datapaths.  In that case, the RAM cells are
    described at high level while the datapaths are described at clock
    cycle true level."

    A RAM cell is an untimed kernel with ports [addr], [wdata], [we] and
    [rdata]; per cycle it returns the {e pre-write} word at [addr] and,
    when [we] is set, commits [wdata] — the exact behaviour of the
    [Netlist.ram] macro cell, so synthesis is a drop-in replacement. *)

(** [kernel ~name ~words ~data_fmt ~addr_fmt] — the untimed process.
    Port formats are declared, so all static back ends work. *)
val kernel :
  name:string ->
  words:int ->
  data_fmt:Fixed.format ->
  addr_fmt:Fixed.format ->
  Dataflow.Kernel.t

(** Macro mapping for {!Synthesize.synthesize}: recognizes kernels
    created by {!kernel} (by name) and maps them to RAM macro cells. *)
val macro_of_kernel : Dataflow.Kernel.t -> Synthesize.macro_spec option

(** Direct read access to the backing store (test/debug only). *)
val peek : name:string -> int -> Fixed.t option

(** Reset the contents of a RAM created by {!kernel} to zeros. *)
val clear : name:string -> unit
