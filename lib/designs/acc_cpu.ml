let word_fmt = Fixed.unsigned ~width:8 ~frac:0
let pc_fmt = Fixed.unsigned ~width:4 ~frac:0

type t = { system : Cycle_system.t; probes : string list }

(* Opcodes.  The ISA is deliberately mux-decodable: no instruction
   touches more than the accumulator, the program counter and one data
   RAM port. *)
let op_nop = 0
let op_ldi = 1
let op_add = 2
let op_sub = 3
let op_xor = 4
let op_ld = 5
let op_st = 6
let op_jmp = 7
let op_jnz = 8
let op_out = 9
let op_halt = 10
let op_chk = 11
let op_adm = 12
let op_in = 13

let max_op = op_in
let rom_slots = 16
let ram_words = 8

(* Sum 1..5 into mem[7] via the classic count-down loop, then assert
   the result: a self-checking workload covering LDI/ST/LD/ADM/SUB/JNZ/
   CHK/OUT/HALT and both RAM ports. *)
let default_program =
  [|
    (op_ldi, 0);
    (op_st, 7);
    (* sum = 0 *)
    (op_ldi, 5);
    (op_st, 6);
    (* i = 5 *)
    (op_ld, 6);
    (* loop: acc = i *)
    (op_adm, 7);
    (op_st, 7);
    (* sum += i *)
    (op_ld, 6);
    (op_sub, 1);
    (op_st, 6);
    (* i -= 1 *)
    (op_jnz, 4);
    (* while i <> 0 *)
    (op_ld, 7);
    (op_chk, 15);
    (* ok = (sum == 15) *)
    (op_out, 0);
    (op_halt, 0);
  |]

let create ?(program = default_program) ~io_stimulus () =
  let len = Array.length program in
  if len < 1 || len > rom_slots then
    invalid_arg
      (Printf.sprintf "Acc_cpu.create: program length %d out of range [1, %d]"
         len rom_slots);
  Array.iteri
    (fun i (op, arg) ->
      if op < 0 || op > max_op then
        invalid_arg (Printf.sprintf "Acc_cpu.create: bad opcode %d at %d" op i);
      if arg < 0 || arg > 255 then
        invalid_arg
          (Printf.sprintf "Acc_cpu.create: argument %d at %d exceeds u8" arg i))
    program;
  let slot i = if i < len then program.(i) else (op_halt, 0) in
  let clk = Clock.default in
  let bit = Fixed.bit_format in
  let op_fmt = Fixed.unsigned ~width:4 ~frac:0 in
  (* Two ROM banks indexed by the program counter — the DECT microcode
     idiom, which keeps the fetch path free of bit slicing. *)
  let op_rom =
    Signal.Rom.create "op_rom" op_fmt
      (Array.init rom_slots (fun i -> Fixed.of_int op_fmt (fst (slot i))))
  in
  let arg_rom =
    Signal.Rom.create "arg_rom" word_fmt
      (Array.init rom_slots (fun i -> Fixed.of_int word_fmt (snd (slot i))))
  in
  let pc = Signal.Reg.create clk "pc" pc_fmt in
  let acc = Signal.Reg.create clk "acc" word_fmt in
  let out_r = Signal.Reg.create clk "out_r" word_fmt in
  let ok_r = Signal.Reg.create clk "ok_r" bit in
  let halt_r = Signal.Reg.create clk "halt_r" bit in
  let sfg =
    Sfg.build "exec" (fun b ->
        let rdata = Sfg.Builder.input b "rdata" word_fmt in
        let io = Sfg.Builder.input b "io" word_fmt in
        let pc_q = Signal.reg_q pc in
        let acc_q = Signal.reg_q acc in
        let halted = Signal.reg_q halt_r in
        let op = Signal.rom op_rom pc_q in
        let arg = Signal.rom arg_rom pc_q in
        let is o = Signal.eq op (Signal.consti op_fmt o) in
        let wrap e = Signal.resize word_fmt e in
        (* Accumulator network: one mux arm per writing opcode. *)
        let acc_next =
          List.fold_left
            (fun tail (o, v) -> Signal.mux2 (is o) v tail)
            acc_q
            [
              (op_ldi, arg);
              (op_add, wrap (Signal.add acc_q arg));
              (op_sub, wrap (Signal.sub acc_q arg));
              (op_xor, Signal.xor_ acc_q arg);
              (op_ld, rdata);
              (op_adm, wrap (Signal.add acc_q rdata));
              (op_in, io);
            ]
        in
        let pc_inc =
          Signal.resize pc_fmt (Signal.add pc_q (Signal.consti pc_fmt 1))
        in
        let arg_pc = Signal.resize pc_fmt arg in
        let taken =
          Signal.or_ (is op_jmp)
            (Signal.and_ (is op_jnz)
               (Signal.ne acc_q (Signal.consti word_fmt 0)))
        in
        let pc_next =
          Signal.mux2
            (Signal.or_ halted (is op_halt))
            pc_q
            (Signal.mux2 taken arg_pc pc_inc)
        in
        let active e hold = Signal.mux2 halted hold e in
        Sfg.Builder.assign b pc pc_next;
        Sfg.Builder.assign b acc (active acc_next acc_q);
        Sfg.Builder.assign b out_r
          (active (Signal.mux2 (is op_out) acc_q (Signal.reg_q out_r))
             (Signal.reg_q out_r));
        Sfg.Builder.assign b ok_r
          (active
             (Signal.mux2 (is op_chk)
                (Signal.eq acc_q arg)
                (Signal.reg_q ok_r))
             (Signal.reg_q ok_r));
        Sfg.Builder.assign b halt_r (Signal.or_ halted (is op_halt));
        (* RAM command ports read registers and ROM-of-register only, so
           the scheduler can produce them in the token-production phase
           and close the timed/untimed loop without deadlock. *)
        Sfg.Builder.output b "addr"
          (Signal.resize (Fixed.unsigned ~width:3 ~frac:0) arg);
        Sfg.Builder.output b "wdata" acc_q;
        Sfg.Builder.output b "we"
          (Signal.and_ (is op_st) (Signal.not_ halted));
        Sfg.Builder.output b "out" (Signal.reg_q out_r);
        Sfg.Builder.output b "ok" (Signal.reg_q ok_r);
        Sfg.Builder.output b "pc" pc_q;
        Sfg.Builder.output b "acc" acc_q)
  in
  let fsm = Fsm.create "cpu_ctl" in
  let s_run = Fsm.initial fsm "run" in
  Fsm.(s_run |-- always |+ sfg |-> s_run);
  let system = Cycle_system.create "cpu" in
  let core = Cycle_system.add_timed system "core" fsm in
  let ram =
    Cycle_system.add_untimed system
      (Ram_cell.kernel ~name:"cpu_ram" ~words:ram_words ~data_fmt:word_fmt
         ~addr_fmt:(Fixed.unsigned ~width:3 ~frac:0))
  in
  let io_c = Cycle_system.add_input system "io_in" word_fmt io_stimulus in
  let probes = [ "out"; "ok"; "pc"; "acc" ] in
  let probe_comps =
    List.map (fun pr -> (pr, Cycle_system.add_output system pr)) probes
  in
  ignore (Cycle_system.connect system (core, "addr") [ (ram, "addr") ]);
  ignore (Cycle_system.connect system (core, "wdata") [ (ram, "wdata") ]);
  ignore (Cycle_system.connect system (core, "we") [ (ram, "we") ]);
  ignore (Cycle_system.connect system (ram, "rdata") [ (core, "rdata") ]);
  ignore (Cycle_system.connect system (io_c, "out") [ (core, "io") ]);
  List.iter
    (fun (pr, pc) ->
      ignore (Cycle_system.connect system (core, pr) [ (pc, "in") ]))
    probe_comps;
  { system; probes }

let io_stimulus ?(seed = 3) () =
  fun cycle ->
    let rs = Random.State.make [| 0x10c; seed; cycle |] in
    Some (Fixed.of_int word_fmt (Random.State.int rs 256))

(* The default program halts after its 5-iteration loop: 4 setup, 5 * 7
   loop body, 3 epilogue, then HALT.  64 cycles is comfortably past it. *)
let check_cycles = 64

let source_lines () =
  let candidates =
    [
      "lib/designs/acc_cpu.ml";
      "../lib/designs/acc_cpu.ml";
      "../../lib/designs/acc_cpu.ml";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Metrics.source_lines_of_files [ path ]
  | None -> 210 (* the size of this capture when the source is unavailable *)
