let sample_fmt = Dect_transceiver.sample_format
let x_fmt = Fixed.signed ~width:8 ~frac:4
let est_fmt = Fixed.signed ~width:10 ~frac:8
let sum_fmt = Fixed.signed ~width:14 ~frac:6

type chain = { c_dc : Sfg.t; c_fir : Sfg.t; c_slice : Sfg.t }

(* The datapath descriptions, captured once; both targets reuse these
   objects unchanged. *)
let build_chain () =
  let clk = Clock.default in
  let est = Signal.Reg.create clk "mig_est" est_fmt in
  let c_dc =
    Sfg.build "mig_dc" (fun b ->
        let s = Sfg.Builder.input b "s" sample_fmt in
        let diff = Signal.(s -: reg_q est) in
        Sfg.Builder.assign_resized b est
          Signal.(reg_q est +: shift_right diff 5);
        Sfg.Builder.output b "y"
          (Signal.resize ~overflow:Fixed.Saturate x_fmt diff))
  in
  let w =
    Array.init 16 (fun i ->
        Signal.Reg.create clk (Printf.sprintf "mig_w%d" i) x_fmt)
  in
  let c_fir =
    Sfg.build "mig_fir" (fun b ->
        let x = Sfg.Builder.input b "x" x_fmt in
        let n =
          Array.init 16 (fun i ->
              if i = 0 then x else Signal.reg_q w.(i - 1))
        in
        Array.iteri (fun i reg -> Sfg.Builder.assign_resized b reg n.(i)) w;
        let acc =
          Array.to_list
            (Array.mapi
               (fun i xi ->
                 Signal.(
                   xi *: const Dect_transceiver.equalizer_coefficients.(i)))
               n)
        in
        let rec tree = function
          | [] -> invalid_arg "Arch_migration: addition tree of an empty signal list"
          | [ e ] -> e
          | es ->
            let rec pair = function
              | [] -> []
              | [ e ] -> [ e ]
              | a :: b :: rest -> Signal.add a b :: pair rest
            in
            tree (pair es)
        in
        Sfg.Builder.output b "soft"
          (Signal.resize ~overflow:Fixed.Saturate sum_fmt (tree acc)))
  in
  let c_slice =
    Sfg.build "mig_slice" (fun b ->
        let soft = Sfg.Builder.input b "soft" sum_fmt in
        Sfg.Builder.output b "bit" Signal.(soft >=: consti sum_fmt 0);
        Sfg.Builder.output b "soft_out" (Signal.resize sum_fmt soft))
  in
  { c_dc; c_fir; c_slice }

type result = { r_bits : bool list; r_soft : Fixed.t list }

let reset_chain chain =
  List.iter
    (fun sfg -> List.iter Signal.Reg.reset (Sfg.regs_written sfg))
    [ chain.c_dc; chain.c_fir; chain.c_slice ]

(* Data-flow target: local, data-driven control. *)
let run_dataflow chain samples =
  reset_chain chain;
  let g = Dataflow.create "mig_dataflow" in
  let src = Dataflow.add_process g (Dataflow.Kernel.source "src" (Array.to_list samples)) in
  let dc = Dataflow.add_process g (Sfg_kernel.kernel_of_sfg chain.c_dc) in
  let fir = Dataflow.add_process g (Sfg_kernel.kernel_of_sfg chain.c_fir) in
  let slc = Dataflow.add_process g (Sfg_kernel.kernel_of_sfg chain.c_slice) in
  let bit_sink, bits_drained = Dataflow.Kernel.sink "bits" in
  let soft_sink, soft_drained = Dataflow.Kernel.sink "softs" in
  let bsink = Dataflow.add_process g bit_sink in
  let ssink = Dataflow.add_process g soft_sink in
  ignore (Dataflow.connect g (src, "out") (dc, "s"));
  ignore (Dataflow.connect g (dc, "y") (fir, "x"));
  ignore (Dataflow.connect g (fir, "soft") (slc, "soft"));
  ignore (Dataflow.connect g (slc, "bit") (bsink, "in"));
  ignore (Dataflow.connect g (slc, "soft_out") (ssink, "in"));
  let stats = Dataflow.run g in
  let result =
    {
      r_bits = List.map Fixed.is_true (bits_drained ());
      r_soft = soft_drained ();
    }
  in
  (result, stats)

(* Central-control target: the same SFGs as clock-cycle-true components
   under the cycle scheduler. *)
let run_central chain samples =
  reset_chain chain;
  let timed name sfg =
    let fsm = Fsm.create name in
    let s0 = Fsm.initial fsm "run" in
    Fsm.(s0 |-- always |+ sfg |-> s0);
    fsm
  in
  let sys = Cycle_system.create "mig_central" in
  let c_dc = Cycle_system.add_timed sys "dc" (timed "dc_ctl" chain.c_dc) in
  let c_fir = Cycle_system.add_timed sys "fir" (timed "fir_ctl" chain.c_fir) in
  let c_slc = Cycle_system.add_timed sys "slice" (timed "slice_ctl" chain.c_slice) in
  let stim =
    Cycle_system.add_input sys "s_in" sample_fmt (fun c ->
        if c < Array.length samples then Some samples.(c) else None)
  in
  let p_bit = Cycle_system.add_output sys "bit_out" in
  let p_soft = Cycle_system.add_output sys "soft_probe" in
  ignore (Cycle_system.connect sys (stim, "out") [ (c_dc, "s") ]);
  ignore (Cycle_system.connect sys (c_dc, "y") [ (c_fir, "x") ]);
  ignore (Cycle_system.connect sys (c_fir, "soft") [ (c_slc, "soft") ]);
  ignore (Cycle_system.connect sys (c_slc, "bit") [ (p_bit, "in") ]);
  ignore (Cycle_system.connect sys (c_slc, "soft_out") [ (p_soft, "in") ]);
  Cycle_system.run sys (Array.length samples);
  let result =
    {
      r_bits =
        List.map (fun (_, v) -> Fixed.is_true v)
          (Cycle_system.output_history sys p_bit);
      r_soft = List.map snd (Cycle_system.output_history sys p_soft);
    }
  in
  (result, Cycle_system.stats sys)
