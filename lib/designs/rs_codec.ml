let sym_fmt = Fixed.unsigned ~width:4 ~frac:0

type t = { system : Cycle_system.t; probes : string list; n : int; k : int }

(* GF(16) arithmetic, primitive polynomial x^4 + x + 1 (0x13), alpha = 2.
   Computed at capture time in OCaml — the hardware only ever sees the
   resulting constant-multiply lookup tables. *)
let gf_mul a b =
  let rec go acc a b =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      let a =
        let a = a lsl 1 in
        if a land 0x10 <> 0 then a lxor 0x13 else a
      in
      go acc a (b lsr 1)
  in
  go 0 a b

let gf_pow a e =
  let rec go acc e = if e = 0 then acc else go (gf_mul acc a) (e - 1) in
  go 1 e

(* Generator polynomial g(x) = prod_{j=1..2t} (x + alpha^j), returned as
   the coefficient array g.(i) of x^i; g.(2t) = 1 (monic). *)
let gen_poly t =
  let g = ref [| 1 |] in
  for j = 1 to 2 * t do
    let root = gf_pow 2 j in
    let old = !g in
    let d = Array.length old in
    let ng =
      Array.init (d + 1) (fun i ->
          let shifted = if i > 0 then old.(i - 1) else 0 in
          let scaled = if i < d then gf_mul root old.(i) else 0 in
          shifted lxor scaled)
    in
    g := ng
  done;
  !g

let mul_table name c =
  Signal.Rom.create name sym_fmt
    (Array.init 16 (fun x -> Fixed.of_int sym_fmt (gf_mul c x)))

let create ?(k = 11) ?(t = 2) ~data_stimulus ~err_stimulus () =
  if t < 1 || t > 3 then
    invalid_arg (Printf.sprintf "Rs_codec.create: t %d out of range [1, 3]" t);
  let n = k + (2 * t) in
  if k < 1 || n > 15 then
    invalid_arg
      (Printf.sprintf "Rs_codec.create: k %d gives block length %d > 15" k n);
  let clk = Clock.default in
  let bit = Fixed.bit_format in
  let cnt_fmt = Fixed.unsigned ~width:4 ~frac:0 in
  let g = gen_poly t in
  let np = 2 * t in
  (* --- Encoder: systematic LFSR over the generator polynomial. ------ *)
  let p =
    Array.init np (fun i ->
        Signal.Reg.create clk (Printf.sprintf "p%d" i) sym_fmt)
  in
  let cnt = Signal.Reg.create clk "ecnt" cnt_fmt in
  let to_par = Signal.Reg.create clk "to_par" bit in
  let to_data = Signal.Reg.create clk "to_data" bit in
  let g_rom =
    Array.init np (fun j -> mul_table (Printf.sprintf "g%d" j) g.(j))
  in
  let data_port = Signal.Input.create "data" sym_fmt in
  let data = Signal.input data_port in
  let cnt_q = Signal.reg_q cnt in
  let cnt_next =
    Signal.mux2
      (Signal.eq cnt_q (Signal.consti cnt_fmt (n - 1)))
      (Signal.consti cnt_fmt 0)
      (Signal.resize cnt_fmt (Signal.add cnt_q (Signal.consti cnt_fmt 1)))
  in
  let common b =
    ignore (Sfg.Builder.input_port b data_port);
    Sfg.Builder.assign b cnt cnt_next
  in
  let sfg_data =
    Sfg.build "enc_data" (fun b ->
        common b;
        (* Feedback shortens the LFSR recurrence to table lookups:
           p.(j) <- p.(j-1) xor g_j * fb, p.(0) <- g_0 * fb. *)
        let fb = Signal.xor_ data (Signal.reg_q p.(np - 1)) in
        Array.iteri
          (fun j reg ->
            let scaled = Signal.rom g_rom.(j) fb in
            let v =
              if j = 0 then scaled
              else Signal.xor_ (Signal.reg_q p.(j - 1)) scaled
            in
            Sfg.Builder.assign b reg v)
          p;
        Sfg.Builder.output b "sym" data;
        Sfg.Builder.assign b to_par
          (Signal.eq cnt_q (Signal.consti cnt_fmt (k - 1)));
        Sfg.Builder.assign b to_data Signal.gnd)
  in
  let sfg_par =
    Sfg.build "enc_par" (fun b ->
        common b;
        (* Shift the parity symbols out, highest degree first. *)
        Array.iteri
          (fun j reg ->
            let v =
              if j = 0 then Signal.consti sym_fmt 0
              else Signal.reg_q p.(j - 1)
            in
            Sfg.Builder.assign b reg v)
          p;
        Sfg.Builder.output b "sym" (Signal.reg_q p.(np - 1));
        Sfg.Builder.assign b to_par Signal.gnd;
        Sfg.Builder.assign b to_data
          (Signal.eq cnt_q (Signal.consti cnt_fmt (n - 1))))
  in
  let enc = Fsm.create "rs_enc" in
  let s_data = Fsm.initial enc "data" in
  let s_par = Fsm.state enc "parity" in
  Fsm.(s_data |-- cnd (Signal.reg_q to_par) |+ sfg_par |-> s_par);
  Fsm.(s_data |-- always |+ sfg_data |-> s_data);
  Fsm.(s_par |-- cnd (Signal.reg_q to_data) |+ sfg_data |-> s_data);
  Fsm.(s_par |-- always |+ sfg_par |-> s_par);
  (* --- Decoder front end: Horner syndrome evaluation. --------------- *)
  let s =
    Array.init np (fun j ->
        Signal.Reg.create clk (Printf.sprintf "s%d" (j + 1)) sym_fmt)
  in
  let dcnt = Signal.Reg.create clk "dcnt" cnt_fmt in
  let serr_r = Signal.Reg.create clk "serr" bit in
  let a_rom =
    Array.init np (fun j ->
        mul_table (Printf.sprintf "a%d" (j + 1)) (gf_pow 2 (j + 1)))
  in
  let sfg_dec =
    Sfg.build "dec" (fun b ->
        let sym = Sfg.Builder.input b "sym" sym_fmt in
        let err = Sfg.Builder.input b "err" sym_fmt in
        let rx = Signal.xor_ sym err in
        let dcnt_q = Signal.reg_q dcnt in
        let last = Signal.eq dcnt_q (Signal.consti cnt_fmt (n - 1)) in
        Sfg.Builder.assign b dcnt
          (Signal.mux2 last
             (Signal.consti cnt_fmt 0)
             (Signal.resize cnt_fmt
                (Signal.add dcnt_q (Signal.consti cnt_fmt 1))));
        (* S_j <- alpha^j * S_j + r, restarted at each block boundary. *)
        let upd =
          Array.mapi
            (fun j reg ->
              Signal.xor_ (Signal.rom a_rom.(j) (Signal.reg_q reg)) rx)
            s
        in
        Array.iteri
          (fun j reg ->
            Sfg.Builder.assign b reg
              (Signal.mux2 last (Signal.consti sym_fmt 0) upd.(j)))
          s;
        let nz =
          Array.fold_left
            (fun acc u -> Signal.or_ acc (Signal.ne u (Signal.consti sym_fmt 0)))
            Signal.gnd upd
        in
        (* serr latches at the block boundary and holds through the next
           block, so a probe sees one flag per codeword. *)
        Sfg.Builder.assign b serr_r
          (Signal.mux2 last nz (Signal.reg_q serr_r));
        Sfg.Builder.output b "serr" (Signal.reg_q serr_r);
        Sfg.Builder.output b "syn1" (Signal.reg_q s.(0));
        Sfg.Builder.output b "rx" rx)
  in
  let dec = Fsm.create "rs_dec" in
  let s_run = Fsm.initial dec "run" in
  Fsm.(s_run |-- always |+ sfg_dec |-> s_run);
  (* --- System wiring. ----------------------------------------------- *)
  let system = Cycle_system.create "rs" in
  let enc_c = Cycle_system.add_timed system "enc" enc in
  let dec_c = Cycle_system.add_timed system "dec" dec in
  let data_c = Cycle_system.add_input system "data_in" sym_fmt data_stimulus in
  let err_c = Cycle_system.add_input system "err_in" sym_fmt err_stimulus in
  let probes = [ "sym"; "rx"; "syn1"; "serr" ] in
  let probe_comps =
    List.map (fun pr -> (pr, Cycle_system.add_output system pr)) probes
  in
  ignore (Cycle_system.connect system (data_c, "out") [ (enc_c, "data") ]);
  ignore (Cycle_system.connect system (err_c, "out") [ (dec_c, "err") ]);
  ignore
    (Cycle_system.connect system (enc_c, "sym")
       [ (dec_c, "sym"); (List.assoc "sym" probe_comps, "in") ]);
  List.iter
    (fun (pr, pc) ->
      if pr <> "sym" then
        ignore (Cycle_system.connect system (dec_c, pr) [ (pc, "in") ]))
    probe_comps;
  { system; probes; n; k }

let data_stimulus ?(seed = 11) () =
  fun cycle ->
    let rs = Random.State.make [| 0x25c; seed; cycle |] in
    Some (Fixed.of_int sym_fmt (Random.State.int rs 16))

let err_stimulus ?(period = 45) ?(offset = 7) () =
  fun cycle ->
    let v = if period > 0 && cycle mod period = offset then 9 else 0 in
    Some (Fixed.of_int sym_fmt v)

let source_lines () =
  let candidates =
    [
      "lib/designs/rs_codec.ml";
      "../lib/designs/rs_codec.ml";
      "../../lib/designs/rs_codec.ml";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Metrics.source_lines_of_files [ path ]
  | None -> 220 (* the size of this capture when the source is unavailable *)
