let sample_format = Fixed.signed ~width:6 ~frac:4

type t = { system : Cycle_system.t; probes : string list }

let window = 16

(* Balanced addition tree (keeps the widening shallow). *)
let rec sum_tree = function
  | [] -> invalid_arg "Hcor: sum_tree of an empty signal list"
  | [ e ] -> e
  | es ->
    let rec pair = function
      | [] -> []
      | [ e ] -> [ e ]
      | a :: b :: rest -> Signal.add a b :: pair rest
    in
    sum_tree (pair es)

let create ?(threshold = 14) ?(payload_len = 388) ~stimulus () =
  if threshold < 1 || threshold > window then
    invalid_arg
      (Printf.sprintf "Hcor.create: threshold %d out of range [1, %d]" threshold
         window);
  if payload_len < 1 || payload_len > 500 then
    invalid_arg
      (Printf.sprintf "Hcor.create: payload_len %d out of range [1, 500]"
         payload_len);
  let clk = Clock.default in
  let bit = Fixed.bit_format in
  let cnt_fmt = Fixed.unsigned ~width:9 ~frac:0 in
  let corr_fmt = Fixed.unsigned ~width:5 ~frac:0 in
  let soft_fmt = Fixed.signed ~width:12 ~frac:4 in
  let agc_fmt = Fixed.unsigned ~width:12 ~frac:4 in
  (* The sample window: w.(0) is the newest stored sample. *)
  let w =
    Array.init window (fun i ->
        Signal.Reg.create clk (Printf.sprintf "w%d" i) sample_format)
  in
  let found_r = Signal.Reg.create clk "found_r" bit in
  let done_r = Signal.Reg.create clk "done_r" bit in
  let cnt = Signal.Reg.create clk "cnt" cnt_fmt in
  (* The datapath expressions are built once and shared by both SFGs —
     the same object sharing the paper's C++ capture gets for free. *)
  let sample_port = Signal.Input.create "sample" sample_format in
  let sample = Signal.input sample_port in
  (* New window: sample, then the stored samples shifted by one. *)
  let n =
    Array.init window (fun i ->
        if i = 0 then sample else Signal.reg_q w.(i - 1))
  in
  let zero = Signal.constf sample_format 0.0 in
  let hard = Array.map (fun v -> Signal.ge v zero) n in
  (* Window position j holds the bit received j cycles ago; the sync
     word's first (oldest) bit aligns with the oldest position. *)
  let agree =
    List.init window (fun j ->
        let expect = Dect_stimuli.sync_word.(window - 1 - j) in
        if expect then hard.(j) else Signal.not_ hard.(j))
  in
  let corr = sum_tree agree in
  let soft_terms =
    List.init window (fun j ->
        if Dect_stimuli.sync_word.(window - 1 - j) then n.(j)
        else Signal.neg n.(j))
  in
  let soft = sum_tree soft_terms in
  let agc = sum_tree (List.init window (fun j -> Signal.abs_ n.(j))) in
  let found = Signal.ge corr (Signal.consti (Signal.fmt corr) threshold) in
  let datapath b =
    ignore (Sfg.Builder.input_port b sample_port);
    Array.iteri (fun i reg -> Sfg.Builder.assign_resized b reg n.(i)) w;
    Sfg.Builder.output b "corr" (Signal.resize corr_fmt corr);
    Sfg.Builder.output b "soft"
      (Signal.resize ~overflow:Fixed.Saturate soft_fmt soft);
    Sfg.Builder.output b "agc"
      (Signal.resize ~overflow:Fixed.Saturate agc_fmt agc);
    Sfg.Builder.output b "bit_out" hard.(0);
    Sfg.Builder.assign b found_r found
  in
  let sfg_search =
    Sfg.build "search" (fun b ->
        datapath b;
        Sfg.Builder.output b "locked" Signal.gnd;
        Sfg.Builder.assign b cnt (Signal.consti cnt_fmt 0);
        Sfg.Builder.assign b done_r Signal.gnd)
  in
  let sfg_track =
    Sfg.build "track" (fun b ->
        datapath b;
        Sfg.Builder.output b "locked" Signal.vdd;
        Sfg.Builder.assign_resized b cnt
          Signal.(reg_q cnt +: consti cnt_fmt 1);
        Sfg.Builder.assign b done_r
          Signal.(reg_q cnt ==: consti cnt_fmt (payload_len - 1)))
  in
  let fsm = Fsm.create "hcor_ctl" in
  let s_search = Fsm.initial fsm "search" in
  let s_locked = Fsm.state fsm "locked" in
  Fsm.(s_search |-- cnd (Signal.reg_q found_r) |+ sfg_track |-> s_locked);
  Fsm.(s_search |-- always |+ sfg_search |-> s_search);
  Fsm.(s_locked |-- cnd (Signal.reg_q done_r) |+ sfg_search |-> s_search);
  Fsm.(s_locked |-- always |+ sfg_track |-> s_locked);
  let system = Cycle_system.create "hcor" in
  let comp = Cycle_system.add_timed system "hcor" fsm in
  let src = Cycle_system.add_input system "sample_in" sample_format stimulus in
  let probes = [ "corr"; "soft"; "agc"; "bit_out"; "locked" ] in
  let probe_comps =
    List.map (fun p -> (p, Cycle_system.add_output system p)) probes
  in
  ignore (Cycle_system.connect system (src, "out") [ (comp, "sample") ]);
  List.iter
    (fun (p, pc) ->
      ignore (Cycle_system.connect system (comp, p) [ (pc, "in") ]))
    probe_comps;
  { system; probes }

let sample_stimulus samples cycle =
  if cycle < Array.length samples then Some samples.(cycle)
  else Some (Fixed.zero sample_format)

let source_lines () =
  let candidates =
    [ "lib/designs/hcor.ml"; "../lib/designs/hcor.ml"; "../../lib/designs/hcor.ml" ]
  in
  match
    List.find_opt Sys.file_exists candidates
  with
  | Some path -> Metrics.source_lines_of_files [ path ]
  | None -> 140 (* the size of this capture when the source is unavailable *)
