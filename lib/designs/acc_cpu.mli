(** ACC — a small accumulator-machine CPU core with a self-checking
    ROM program.

    The fourth gallery design: where HCOR/DECT/RS are signal-path
    machines, ACC is a stored-program controller — the "complex
    control" half of the paper's ASIC mix.  One clock-cycle-true
    component holds the whole core:

    - fetch: two ROM banks ([op_rom] u4.0, [arg_rom] u8.0) indexed by
      the program counter — the DECT microcode idiom, no bit slicing
      on the fetch path;
    - execute: a mux-decoded single-cycle datapath over the
      accumulator (u8.0, wrapping), with a sticky [ok] flag written by
      the CHK instruction and an output register written by OUT;
    - memory: an 8-word {!Ram_cell} data RAM closed over the
      timed/untimed loop, its command ports ([addr]/[wdata]/[we])
      register-driven so the three-phase scheduler can produce them in
      the token-production phase.

    The 14-opcode ISA: NOP(0) LDI(1) ADD(2) SUB(3) XOR(4) LD(5) ST(6)
    JMP(7) JNZ(8) OUT(9) HALT(10) CHK(11) ADM(12, add-memory) IN(13,
    read the ["io"] primary input).  HALT freezes the architectural
    state (pc, acc, out, ok) permanently.

    Every output port produces a token each cycle:

    - ["out"] the OUT register (u8.0),
    - ["ok"]  the CHK flag (u1.0),
    - ["pc"]  the program counter (u4.0),
    - ["acc"] the accumulator (u8.0).

    The default program sums 1..5 through the data RAM with a
    count-down JNZ loop, checks the total against 15, publishes it and
    halts — so ["ok"] = 1 and ["out"] = 15 from {!check_cycles} on is
    the design's self-check. *)

(** Accumulator / data word format: u8.0. *)
val word_fmt : Fixed.format

(** Program counter format: u4.0 (16 instruction slots). *)
val pc_fmt : Fixed.format

type t = {
  system : Cycle_system.t;
  probes : string list;  (** ["out"; "ok"; "pc"; "acc"] *)
}

(** Opcode numbers, exposed so tests can assemble programs. *)

val op_nop : int
val op_ldi : int
val op_add : int
val op_sub : int
val op_xor : int
val op_ld : int
val op_st : int
val op_jmp : int
val op_jnz : int
val op_out : int
val op_halt : int
val op_chk : int
val op_adm : int
val op_in : int

(** Program ROM capacity (16) and data RAM size (8 words). *)

val rom_slots : int
val ram_words : int

(** The self-checking sum-1..5 workload described above, as
    [(opcode, argument)] pairs. *)
val default_program : (int * int) array

(** [create ?program ~io_stimulus ()] builds the core.  [program] (at
    most {!rom_slots} instructions, padded with HALT) defaults to
    {!default_program}.  Each call creates fresh registers, ROMs and a
    fresh RAM store, so instances are independent. *)
val create :
  ?program:(int * int) array ->
  io_stimulus:(int -> Fixed.t option) ->
  unit ->
  t

(** Deterministic pseudorandom bytes for the IN instruction (pure in
    [seed] and the cycle index). *)
val io_stimulus : ?seed:int -> unit -> int -> Fixed.t option

(** Cycle budget after which the default program has provably halted
    with ["ok"] = 1 and ["out"] = 15. *)
val check_cycles : int

(** Approximate OCaml line count of this capture (for Table 1's source
    size column). *)
val source_lines : unit -> int
