(* Registry: kernel name -> (spec, backing store).  Each [kernel] call
   allocates a fresh backing store captured by its own closures, so two
   systems built from the same factory never share RAM state (domain
   isolation for parallel campaigns); the registry — mutex-guarded, as
   factories may run while another domain synthesizes — only serves the
   by-name [peek]/[clear]/[macro_of_kernel] conveniences and maps a name
   to its most recent instance. *)
type instance = {
  words : int;
  data_fmt : Fixed.format;
  store : Fixed.t array;
}

let registry : (string, instance) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()

let registry_replace name inst =
  Mutex.lock registry_mutex;
  Hashtbl.replace registry name inst;
  Mutex.unlock registry_mutex

let registry_find name =
  Mutex.lock registry_mutex;
  let r = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mutex;
  r

let kernel ~name ~words ~data_fmt ~addr_fmt =
  let store = Array.make words (Fixed.zero data_fmt) in
  registry_replace name { words; data_fmt; store };
  (* Writes are staged by the behaviour and applied by the commit hook:
     the event-driven RT engine may run the behaviour several times per
     cycle while signals settle, and only the settled staging counts. *)
  let pending = ref None in
  Dataflow.Kernel.create name
    ~model:
      (Dataflow.Kernel.Ram_model
         {
           words;
           data_fmt;
           addr_port = "addr";
           wdata_port = "wdata";
           we_port = "we";
           rdata_port = "rdata";
         })
    ~formats:
      [
        ("addr", addr_fmt);
        ("wdata", data_fmt);
        ("we", Fixed.bit_format);
        ("rdata", data_fmt);
      ]
    ~commit:(fun () ->
      match !pending with
      | Some (addr, v) ->
        store.(addr) <- v;
        pending := None
      | None -> ())
    ~reset:(fun () ->
      pending := None;
      Array.fill store 0 words (Fixed.zero data_fmt))
    ~inputs:[ ("addr", 1); ("wdata", 1); ("we", 1) ]
    ~outputs:[ ("rdata", 1) ]
    (fun consumed ->
      let one port =
        match List.assoc_opt port consumed with
        | Some [ v ] -> v
        | Some _ | None ->
          raise (Dataflow.Dataflow_error ("ram " ^ name ^ ": bad port " ^ port))
      in
      let addr = Fixed.to_int (one "addr") mod words in
      let addr = if addr < 0 then addr + words else addr in
      let out = store.(addr) in
      if Fixed.is_true (one "we") then
        pending :=
          Some
            ( addr,
              Fixed.resize ~round:Fixed.Truncate ~overflow:Fixed.Wrap data_fmt
                (one "wdata") )
      else pending := None;
      [ ("rdata", [ out ]) ])

let macro_of_kernel (k : Dataflow.Kernel.t) =
  match registry_find k.Dataflow.Kernel.k_name with
  | Some inst ->
    Some
      (Synthesize.Ram_macro
         {
           words = inst.words;
           width = inst.data_fmt.Fixed.width;
           addr_port = "addr";
           wdata_port = "wdata";
           we_port = "we";
           rdata_port = "rdata";
         })
  | None -> None

let peek ~name i =
  match registry_find name with
  | Some inst when i >= 0 && i < inst.words -> Some inst.store.(i)
  | Some _ | None -> None

let clear ~name =
  match registry_find name with
  | Some inst ->
    Array.fill inst.store 0 inst.words (Fixed.zero inst.data_fmt)
  | None -> ()
