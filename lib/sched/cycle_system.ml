exception Deadlock of string list
exception System_error of string

let error fmt = Format.kasprintf (fun s -> raise (System_error s)) fmt

type kind =
  | Timed of Fsm.t
  | Untimed of Dataflow.Kernel.t
  | Primary_input of Fixed.format * (int -> Fixed.t option)
  | Primary_output

type component = { c_id : int; c_name : string; c_kind : kind }

type net = {
  n_id : int;
  n_name : string;
  n_driver : component * string;
  n_sinks : (component * string) list;
  mutable n_token : Fixed.t option;
  mutable n_traced : bool;
  mutable n_history : (int * Fixed.t) list;  (* reversed *)
}

type t = {
  s_name : string;
  clock : Clock.t;
  mutable comps : component list;  (* reversed *)
  mutable s_nets : net list;  (* reversed *)
  mutable cycle_count : int;
  mutable probe_histories : (int * (int * Fixed.t) list) list;
      (* component id -> reversed history *)
  mutable inputs_seen : (int * string * Fixed.t) list;  (* reversed *)
  mutable tokens_transferred : int;
  mutable eval_iterations : int;
  mutable untimed_fires : int;
  mutable s_attached : string list;  (* engine names of open sessions *)
}

let create ?(clock = Clock.default) s_name =
  {
    s_name;
    clock;
    comps = [];
    s_nets = [];
    cycle_count = 0;
    probe_histories = [];
    inputs_seen = [];
    tokens_transferred = 0;
    eval_iterations = 0;
    untimed_fires = 0;
    s_attached = [];
  }

let attach_engine t engine = t.s_attached <- engine :: t.s_attached

let detach_engine t engine =
  (* Remove one occurrence: nested sessions of the same engine each
     hold their own mark. *)
  let rec drop = function
    | [] -> []
    | e :: rest -> if e = engine then rest else e :: drop rest
  in
  t.s_attached <- drop t.s_attached

let attached_engines t = t.s_attached

let name t = t.s_name
let component_name c = c.c_name

let add t c_name c_kind =
  if List.exists (fun c -> c.c_name = c_name) t.comps then
    error "system %s: duplicate component %s" t.s_name c_name;
  let c = { c_id = List.length t.comps; c_name; c_kind } in
  t.comps <- c :: t.comps;
  c

let add_timed t name fsm = add t name (Timed fsm)

let add_untimed t kernel =
  List.iter
    (fun (p, r) ->
      if r <> 1 then
        error "untimed %s: port %s has rate %d; the cycle scheduler moves \
               one token per net per cycle"
          kernel.Dataflow.Kernel.k_name p r)
    (kernel.Dataflow.Kernel.k_inputs @ kernel.Dataflow.Kernel.k_outputs);
  add t kernel.Dataflow.Kernel.k_name (Untimed kernel)

let add_input t name fmt stim = add t name (Primary_input (fmt, stim))

let add_output t name =
  let c = add t name Primary_output in
  t.probe_histories <- (c.c_id, []) :: t.probe_histories;
  c

let find_component t name = List.find_opt (fun c -> c.c_name = name) t.comps

(* --- port inventories -------------------------------------------------- *)

let timed_input_ports fsm =
  List.concat_map
    (fun sfg -> List.map Signal.Input.name (Sfg.inputs sfg))
    (Fsm.all_sfgs fsm)
  |> List.sort_uniq String.compare

let timed_output_ports fsm =
  List.concat_map
    (fun sfg -> List.map fst (Sfg.outputs sfg))
    (Fsm.all_sfgs fsm)
  |> List.sort_uniq String.compare

let input_ports c =
  match c.c_kind with
  | Timed fsm -> timed_input_ports fsm
  | Untimed k -> List.map fst k.Dataflow.Kernel.k_inputs
  | Primary_input _ -> []
  | Primary_output -> [ "in" ]

let output_ports c =
  match c.c_kind with
  | Timed fsm -> timed_output_ports fsm
  | Untimed k -> List.map fst k.Dataflow.Kernel.k_outputs
  | Primary_input _ -> [ "out" ]
  | Primary_output -> []

let connect t (src, src_port) sinks =
  if not (List.mem src_port (output_ports src)) then
    error "connect: %s has no output port %s" src.c_name src_port;
  List.iter
    (fun (dst, dst_port) ->
      if not (List.mem dst_port (input_ports dst)) then
        error "connect: %s has no input port %s" dst.c_name dst_port;
      if
        List.exists
          (fun n ->
            List.exists
              (fun (c, p) -> c.c_id = dst.c_id && p = dst_port)
              n.n_sinks)
          t.s_nets
      then error "connect: %s.%s already driven" dst.c_name dst_port)
    sinks;
  let n =
    {
      n_id = List.length t.s_nets;
      n_name = Printf.sprintf "%s.%s" src.c_name src_port;
      n_driver = (src, src_port);
      n_sinks = sinks;
      n_token = None;
      n_traced = false;
      n_history = [];
    }
  in
  t.s_nets <- n :: t.s_nets;
  n

(* --- checks ------------------------------------------------------------ *)

type check_issue =
  | Unconnected_input of string * string
  | Unconnected_output of string * string
  | Unknown_port of string * string

let pp_issue ppf = function
  | Unconnected_input (c, p) ->
    Format.fprintf ppf "dangling input: %s.%s has no driver" c p
  | Unconnected_output (c, p) ->
    Format.fprintf ppf "unconnected output: %s.%s drives nothing" c p
  | Unknown_port (c, p) -> Format.fprintf ppf "unknown port %s.%s" c p

let check t =
  let issues = ref [] in
  let sink_connected c p =
    List.exists
      (fun n ->
        List.exists (fun (sc, sp) -> sc.c_id = c.c_id && sp = p) n.n_sinks)
      t.s_nets
  in
  let driver_connected c p =
    List.exists
      (fun n -> (fst n.n_driver).c_id = c.c_id && snd n.n_driver = p)
      t.s_nets
  in
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          if not (sink_connected c p) then
            issues := Unconnected_input (c.c_name, p) :: !issues)
        (input_ports c);
      List.iter
        (fun p ->
          if not (driver_connected c p) then
            issues := Unconnected_output (c.c_name, p) :: !issues)
        (output_ports c))
    t.comps;
  List.rev !issues

(* --- per-cycle machinery ------------------------------------------------ *)

(* State of one marked SFG during a cycle. *)
type marked_sfg = {
  m_comp : component;
  m_sfg : Sfg.t;
  m_env : Signal.Env.t;  (* shared per component *)
  m_produced : (string, unit) Hashtbl.t;
  mutable m_complete : bool;
}

let nets_in_order t = List.rev t.s_nets

let net_of_driver t c port =
  List.find_opt
    (fun n -> (fst n.n_driver).c_id = c.c_id && snd n.n_driver = port)
    t.s_nets

(* Deliver a token to a net: store it, trace it, and bind it into the
   environments of all timed sinks (matching marked-SFG inputs by name). *)
let push_token t marked n v =
  (match n.n_token with
  | Some _ -> error "net %s: two tokens in one cycle" n.n_name
  | None -> ());
  n.n_token <- Some v;
  t.tokens_transferred <- t.tokens_transferred + 1;
  if n.n_traced then n.n_history <- (t.cycle_count, v) :: n.n_history;
  List.iter
    (fun (sink, port) ->
      match sink.c_kind with
      | Timed _ ->
        List.iter
          (fun m ->
            if m.m_comp.c_id = sink.c_id then
              List.iter
                (fun i ->
                  if Signal.Input.name i = port then
                    Signal.Env.bind m.m_env i v)
                (Sfg.inputs m.m_sfg))
          marked
      | Untimed _ | Primary_input _ | Primary_output -> ())
    n.n_sinks

let deliver_outputs t marked m outputs =
  List.iter
    (fun (port, v) ->
      Hashtbl.replace m.m_produced port ();
      match net_of_driver t m.m_comp port with
      | Some n -> push_token t marked n v
      | None -> () (* unconnected output: token falls on the floor *))
    outputs

(* Untimed kernel firing inside a cycle: all input nets carry a token. *)
let untimed_ready t c k fired =
  (not (Hashtbl.mem fired c.c_id))
  && k.Dataflow.Kernel.k_ready ()
  && List.for_all
       (fun (port, _) ->
         List.exists
           (fun n ->
             n.n_token <> None
             && List.exists
                  (fun (sc, sp) -> sc.c_id = c.c_id && sp = port)
                  n.n_sinks)
           t.s_nets)
       k.Dataflow.Kernel.k_inputs

(* Per-component firing counters; only consulted when telemetry is on. *)
let obs_fire cname = Ocapi_obs.count ("sched.fire." ^ cname)

let fire_untimed t marked c k fired =
  if Ocapi_obs.enabled () then obs_fire c.c_name;
  let consumed =
    List.map
      (fun (port, _) ->
        let n =
          List.find
            (fun n ->
              List.exists
                (fun (sc, sp) -> sc.c_id = c.c_id && sp = port)
                n.n_sinks)
            t.s_nets
        in
        match n.n_token with
        | Some v -> (port, [ v ])
        | None -> error "untimed %s: token vanished" c.c_name)
      k.Dataflow.Kernel.k_inputs
  in
  let produced = k.Dataflow.Kernel.k_behavior consumed in
  Dataflow.Kernel.validate_production k produced;
  Hashtbl.replace fired c.c_id ();
  t.untimed_fires <- t.untimed_fires + 1;
  List.iter
    (fun (port, values) ->
      match values, net_of_driver t c port with
      | [ v ], Some n -> push_token t marked n v
      | [ _ ], None -> ()
      | _, _ -> error "untimed %s: port %s must produce one token" c.c_name port)
    produced

let primary_outputs_collect t =
  List.iter
    (fun n ->
      match n.n_token with
      | None -> ()
      | Some v ->
        List.iter
          (fun (sink, _) ->
            match sink.c_kind with
            | Primary_output ->
              t.probe_histories <-
                List.map
                  (fun (id, h) ->
                    if id = sink.c_id then (id, (t.cycle_count, v) :: h)
                    else (id, h))
                  t.probe_histories
            | Timed _ | Untimed _ | Primary_input _ -> ())
          n.n_sinks)
    (nets_in_order t)

let clear_nets t = List.iter (fun n -> n.n_token <- None) t.s_nets

(* Mark the SFGs selected by each FSM and remember the transitions. *)
let select_transitions t =
  let marked = ref [] and chosen = ref [] in
  List.iter
    (fun c ->
      match c.c_kind with
      | Timed fsm -> begin
        match Fsm.select fsm with
        | None -> ()
        | Some tr ->
          chosen := (fsm, tr) :: !chosen;
          let env = Signal.Env.create () in
          List.iter
            (fun sfg ->
              marked :=
                {
                  m_comp = c;
                  m_sfg = sfg;
                  m_env = env;
                  m_produced = Hashtbl.create 8;
                  m_complete = false;
                }
                :: !marked)
            tr.Fsm.t_actions
      end
      | Untimed _ | Primary_input _ | Primary_output -> ())
    (List.rev t.comps);
  (List.rev !marked, List.rev !chosen)

let drive_primary_inputs t marked =
  List.iter
    (fun c ->
      match c.c_kind with
      | Primary_input (_, stim) -> begin
        match stim t.cycle_count with
        | None -> ()
        | Some v -> begin
          t.inputs_seen <- (t.cycle_count, c.c_name, v) :: t.inputs_seen;
          match net_of_driver t c "out" with
          | Some n -> push_token t marked n v
          | None -> ()
        end
      end
      | Timed _ | Untimed _ | Primary_output -> ())
    (List.rev t.comps)

let commit_fired_kernels t fired =
  List.iter
    (fun c ->
      match c.c_kind with
      | Untimed k ->
        if Hashtbl.mem fired c.c_id then k.Dataflow.Kernel.k_commit ()
      | Timed _ | Primary_input _ | Primary_output -> ())
    t.comps

let commit_and_advance t marked chosen =
  List.iter
    (fun m -> List.iter Signal.Reg.commit (Sfg.regs_written m.m_sfg))
    marked;
  List.iter (fun (fsm, tr) -> Fsm.advance fsm tr) chosen;
  primary_outputs_collect t;
  clear_nets t;
  t.cycle_count <- t.cycle_count + 1

let untimed_list t =
  List.filter_map
    (fun c ->
      match c.c_kind with
      | Untimed k -> Some (c, k)
      | Timed _ | Primary_input _ | Primary_output -> None)
    (List.rev t.comps)

let deadlock_report marked =
  List.filter_map
    (fun m ->
      if m.m_complete then None
      else Some (Printf.sprintf "%s/%s" m.m_comp.c_name (Sfg.name m.m_sfg)))
    marked

(* Telemetry for one scheduler cycle, shared by both disciplines.
   Deltas of the existing activity counters are pushed when enabled. *)
let obs_cycle_done t ~tokens0 ~evals0 ~fires0 marked =
  if Ocapi_obs.enabled () then begin
    Ocapi_obs.count "sched.cycles";
    Ocapi_obs.count ~n:(List.length marked) "sched.sfg_firings";
    List.iter (fun m -> if m.m_complete then obs_fire m.m_comp.c_name) marked;
    Ocapi_obs.count ~n:(t.tokens_transferred - tokens0) "sched.tokens";
    Ocapi_obs.count ~n:(t.untimed_fires - fires0) "sched.untimed_firings";
    Ocapi_obs.observe "sched.eval_iterations_per_cycle"
      (float_of_int (t.eval_iterations - evals0))
  end

(* The three-phase cycle of section 4. *)
let cycle t =
  let t_cycle = Ocapi_obs.span_begin () in
  let tokens0 = t.tokens_transferred
  and evals0 = t.eval_iterations
  and fires0 = t.untimed_fires in
  let t_sel = Ocapi_obs.span_begin () in
  let marked, chosen = select_transitions t in
  let fired_untimed = Hashtbl.create 8 in
  drive_primary_inputs t marked;
  Ocapi_obs.span_end ~cat:"sched" "sched.select+inputs" t_sel;
  (* Phase 1: token production — partial firing with nothing bound except
     primary inputs produces exactly the outputs that depend only on
     registers and constants (and already-arrived primary inputs). *)
  let fire_marked m =
    if not m.m_complete then begin
      let before = Hashtbl.length m.m_produced in
      let outputs, status =
        Sfg.fire_partial m.m_sfg m.m_env ~produced:(Hashtbl.mem m.m_produced)
      in
      deliver_outputs t marked m outputs;
      (match status with `Complete -> m.m_complete <- true | `Partial -> ());
      Hashtbl.length m.m_produced > before
      || (m.m_complete && status = `Complete)
    end
    else false
  in
  let t_p1 = Ocapi_obs.span_begin () in
  List.iter (fun m -> ignore (fire_marked m)) marked;
  Ocapi_obs.span_end ~cat:"sched" "sched.phase1.token-production" t_p1;
  (* Phases 2a/2b: iterative evaluation. *)
  let t_p2 = Ocapi_obs.span_begin () in
  let untimed = untimed_list t in
  let progress = ref true in
  while
    !progress
    && (List.exists (fun m -> not m.m_complete) marked
       || List.exists
            (fun (c, k) -> untimed_ready t c k fired_untimed)
            untimed)
  do
    t.eval_iterations <- t.eval_iterations + 1;
    progress := false;
    List.iter
      (fun m ->
        if not m.m_complete then begin
          let got = Hashtbl.length m.m_produced in
          let was_complete = m.m_complete in
          ignore (fire_marked m);
          if Hashtbl.length m.m_produced > got || m.m_complete <> was_complete
          then progress := true
        end)
      marked;
    List.iter
      (fun (c, k) ->
        if untimed_ready t c k fired_untimed then begin
          fire_untimed t marked c k fired_untimed;
          progress := true
        end)
      untimed
  done;
  Ocapi_obs.span_end ~cat:"sched" "sched.phase2.evaluate" t_p2;
  (match deadlock_report marked with
  | [] -> ()
  | waiting ->
    clear_nets t;
    raise (Deadlock waiting));
  (* Phase 3: register update. *)
  let t_p3 = Ocapi_obs.span_begin () in
  commit_fired_kernels t fired_untimed;
  commit_and_advance t marked chosen;
  Ocapi_obs.span_end ~cat:"sched" "sched.phase3.commit" t_p3;
  obs_cycle_done t ~tokens0 ~evals0 ~fires0 marked;
  Ocapi_obs.span_end ~cat:"sched" "sched.cycle" t_cycle

(* The classic two-phase discipline: no token-production phase; an SFG
   fires only once all of its inputs are bound. *)
let cycle_two_phase t =
  let t_cycle = Ocapi_obs.span_begin () in
  let tokens0 = t.tokens_transferred
  and evals0 = t.eval_iterations
  and fires0 = t.untimed_fires in
  let marked, chosen = select_transitions t in
  let fired_untimed = Hashtbl.create 8 in
  drive_primary_inputs t marked;
  let try_fire m =
    if
      (not m.m_complete)
      && List.for_all
           (fun i -> Signal.Env.is_bound m.m_env i)
           (Sfg.inputs m.m_sfg)
    then begin
      let outputs = Sfg.fire m.m_sfg m.m_env in
      m.m_complete <- true;
      deliver_outputs t marked m outputs;
      true
    end
    else false
  in
  (* Zero-input SFGs can fire immediately. *)
  let untimed = untimed_list t in
  let progress = ref true in
  while !progress do
    t.eval_iterations <- t.eval_iterations + 1;
    progress := false;
    List.iter (fun m -> if try_fire m then progress := true) marked;
    List.iter
      (fun (c, k) ->
        if untimed_ready t c k fired_untimed then begin
          fire_untimed t marked c k fired_untimed;
          progress := true
        end)
      untimed
  done;
  (match deadlock_report marked with
  | [] -> ()
  | waiting ->
    clear_nets t;
    raise (Deadlock waiting));
  commit_fired_kernels t fired_untimed;
  commit_and_advance t marked chosen;
  obs_cycle_done t ~tokens0 ~evals0 ~fires0 marked;
  Ocapi_obs.span_end ~cat:"sched" "sched.cycle" t_cycle

let run ?(two_phase = false) t n =
  for _ = 1 to n do
    if two_phase then cycle_two_phase t else cycle t
  done

let all_regs t =
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun c ->
      match c.c_kind with
      | Timed fsm -> Fsm.all_regs fsm
      | Untimed _ | Primary_input _ | Primary_output -> [])
    (List.rev t.comps)
  |> List.filter (fun r ->
         let id = Signal.Reg.id r in
         if Hashtbl.mem seen id then false
         else begin
           Hashtbl.add seen id ();
           true
         end)

let reset t =
  t.cycle_count <- 0;
  t.tokens_transferred <- 0;
  t.eval_iterations <- 0;
  t.untimed_fires <- 0;
  t.inputs_seen <- [];
  t.probe_histories <- List.map (fun (id, _) -> (id, [])) t.probe_histories;
  List.iter
    (fun n ->
      n.n_token <- None;
      n.n_history <- [])
    t.s_nets;
  List.iter Signal.Reg.reset (all_regs t);
  List.iter
    (fun c ->
      match c.c_kind with
      | Timed fsm -> Fsm.reset fsm
      | Untimed k -> k.Dataflow.Kernel.k_reset ()
      | Primary_input _ | Primary_output -> ())
    t.comps

let current_cycle t = t.cycle_count

let output_history t probe =
  match List.assoc_opt probe.c_id t.probe_histories with
  | Some h -> List.rev h
  | None -> error "output_history: %s is not a probe" probe.c_name

let trace_net _t net = net.n_traced <- true
let net_history _t net = List.rev net.n_history

let trace_all t = List.iter (fun n -> n.n_traced <- true) t.s_nets

let traced_histories t =
  List.filter_map
    (fun n ->
      if n.n_traced then Some (n.n_name, List.rev n.n_history) else None)
    (nets_in_order t)
let input_history t = List.rev t.inputs_seen

let timed_components t =
  List.filter_map
    (fun c ->
      match c.c_kind with
      | Timed fsm -> Some (c.c_name, fsm)
      | Untimed _ | Primary_input _ | Primary_output -> None)
    (List.rev t.comps)

let primary_inputs t =
  List.filter_map
    (fun c ->
      match c.c_kind with
      | Primary_input (fmt, stim) -> Some (c.c_name, fmt, stim)
      | Timed _ | Untimed _ | Primary_output -> None)
    (List.rev t.comps)

let probes t =
  List.filter_map
    (fun c ->
      match c.c_kind with
      | Primary_output -> Some c.c_name
      | Timed _ | Untimed _ | Primary_input _ -> None)
    (List.rev t.comps)

let untimed_components t =
  List.filter_map
    (fun c ->
      match c.c_kind with
      | Untimed k -> Some (c.c_name, k)
      | Timed _ | Primary_input _ | Primary_output -> None)
    (List.rev t.comps)

let nets t =
  List.map
    (fun n ->
      let d, dp = n.n_driver in
      ( n.n_name,
        (d.c_name, dp),
        List.map (fun (c, p) -> (c.c_name, p)) n.n_sinks ))
    (nets_in_order t)

let net_formats t =
  let fmts = Hashtbl.create 64 in
  let driver_index = Hashtbl.create 64 in
  List.iter
    (fun (net, (dc, dp), _) -> Hashtbl.replace driver_index (dc, dp) net)
    (nets t);
  let set net f =
    match Hashtbl.find_opt fmts net with
    | None -> Hashtbl.replace fmts net f
    | Some f0 ->
      if not (Fixed.equal_format f0 f) then
        error "net %s driven with inconsistent formats %s and %s" net
          (Fixed.format_to_string f0) (Fixed.format_to_string f)
  in
  List.iter
    (fun (name, fmt, _) ->
      match Hashtbl.find_opt driver_index (name, "out") with
      | Some net -> set net fmt
      | None -> ())
    (primary_inputs t);
  List.iter
    (fun (name, k) ->
      List.iter
        (fun (port, _) ->
          match Hashtbl.find_opt driver_index (name, port) with
          | Some net -> set net (Dataflow.Kernel.port_format k port)
          | None -> ())
        k.Dataflow.Kernel.k_outputs)
    (untimed_components t);
  List.iter
    (fun (cname, fsm) ->
      List.iter
        (fun sfg ->
          List.iter
            (fun (port, e) ->
              match Hashtbl.find_opt driver_index (cname, port) with
              | Some net -> set net (Signal.fmt e)
              | None -> ())
            (Sfg.outputs sfg))
        (Fsm.all_sfgs fsm))
    (timed_components t);
  (* Static back ends compile input reads with the declared input format;
     reject nets whose carried format differs from a sink's declaration. *)
  List.iter
    (fun (net, _, sinks) ->
      match Hashtbl.find_opt fmts net with
      | None -> ()
      | Some f ->
        List.iter
          (fun (sc, sp) ->
            match find_component t sc with
            | None -> ()
            | Some c -> begin
              match c.c_kind with
              | Timed fsm ->
                List.iter
                  (fun sfg ->
                    List.iter
                      (fun i ->
                        if
                          Signal.Input.name i = sp
                          && not (Fixed.equal_format (Signal.Input.fmt i) f)
                        then
                          error
                            "net %s carries %s but input %s.%s is declared %s"
                            net (Fixed.format_to_string f) sc sp
                            (Fixed.format_to_string (Signal.Input.fmt i)))
                      (Sfg.inputs sfg))
                  (Fsm.all_sfgs fsm)
              | Untimed _ | Primary_input _ | Primary_output -> ()
            end)
          sinks)
    (nets t);
  fmts

let to_dot t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph %S {\n  rankdir=LR;\n" t.s_name;
  List.iter
    (fun c ->
      match c.c_kind with
      | Timed _ -> pf "  %S [shape=box];\n" c.c_name
      | Untimed _ -> pf "  %S [shape=ellipse, style=dashed];\n" c.c_name
      | Primary_input _ | Primary_output ->
        pf "  %S [shape=plaintext];\n" c.c_name)
    (List.rev t.comps);
  List.iter
    (fun n ->
      let driver, port = n.n_driver in
      List.iter
        (fun (sink, _) ->
          pf "  %S -> %S [label=%S];\n" driver.c_name sink.c_name port)
        n.n_sinks)
    (nets_in_order t);
  pf "}\n";
  Buffer.contents buf

(* --- canonical structural digest ---------------------------------------- *)

(* The rendering below is the design's canonical identity: everything
   structural (topology, formats, expressions, FSMs, ROM contents,
   firing rules) and nothing incidental (global instance counters,
   construction order of components and nets, closures).  Shared
   expression nodes are numbered in traversal order, so two builds of
   the same design — even under different instance-counter offsets —
   produce byte-identical renderings. *)
let digest t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fmt_s = Fixed.format_to_string in
  let rounding_s = function
    | Fixed.Truncate -> "trunc"
    | Fixed.Round_nearest -> "nearest"
    | Fixed.Round_even -> "even"
  in
  let overflow_s = function Fixed.Wrap -> "wrap" | Fixed.Saturate -> "sat" in
  let reg_s r =
    Printf.sprintf "%s:%s=%s@%s" (Signal.Reg.name r)
      (fmt_s (Signal.Reg.fmt r))
      (Fixed.to_string (Signal.Reg.init r))
      (Clock.name (Signal.Reg.clock r))
  in
  (* Local DAG numbering: global node ids key the memo table but never
     reach the buffer. *)
  let local = Hashtbl.create 256 in
  let next = ref 0 in
  let rec expr e =
    match Hashtbl.find_opt local (Signal.id e) with
    | Some k -> pf "#%d;" k
    | None ->
      Hashtbl.add local (Signal.id e) !next;
      incr next;
      pf "(%s " (fmt_s (Signal.fmt e));
      (match Signal.op e with
      | Signal.Const v -> pf "const %s" (Fixed.to_string v)
      | Signal.Input_read i ->
        pf "in %s:%s" (Signal.Input.name i) (fmt_s (Signal.Input.fmt i))
      | Signal.Reg_read r -> pf "reg %s" (reg_s r)
      | Signal.Add (a, b) -> pf "add "; expr a; expr b
      | Signal.Sub (a, b) -> pf "sub "; expr a; expr b
      | Signal.Mul (a, b) -> pf "mul "; expr a; expr b
      | Signal.Neg a -> pf "neg "; expr a
      | Signal.Abs a -> pf "abs "; expr a
      | Signal.And (a, b) -> pf "and "; expr a; expr b
      | Signal.Or (a, b) -> pf "or "; expr a; expr b
      | Signal.Xor (a, b) -> pf "xor "; expr a; expr b
      | Signal.Not a -> pf "not "; expr a
      | Signal.Eq (a, b) -> pf "eq "; expr a; expr b
      | Signal.Lt (a, b) -> pf "lt "; expr a; expr b
      | Signal.Le (a, b) -> pf "le "; expr a; expr b
      | Signal.Mux (s, a, b) -> pf "mux "; expr s; expr a; expr b
      | Signal.Resize (r, o, a) ->
        pf "resize %s %s " (rounding_s r) (overflow_s o);
        expr a
      | Signal.Rom_read (rom, a) ->
        pf "rom %s:%s[%d]{" (Signal.Rom.name rom)
          (fmt_s (Signal.Rom.fmt rom))
          (Signal.Rom.size rom);
        for i = 0 to Signal.Rom.size rom - 1 do
          pf "%Ld," (Fixed.mantissa (Signal.Rom.get rom i))
        done;
        pf "} ";
        expr a
      | Signal.Shift_left (a, k) -> pf "shl %d " k; expr a
      | Signal.Shift_right (a, k) -> pf "shr %d " k; expr a);
      pf ")"
  in
  let sfg s =
    pf "sfg %s ins[" (Sfg.name s);
    List.iter
      (fun i ->
        pf "%s:%s," (Signal.Input.name i) (fmt_s (Signal.Input.fmt i)))
      (Sfg.inputs s);
    pf "] outs[";
    List.iter
      (fun (port, e) ->
        pf "%s=" port;
        expr e;
        pf ",")
      (Sfg.outputs s);
    pf "] assigns[";
    List.iter
      (fun (r, e) ->
        pf "%s<-" (reg_s r);
        expr e;
        pf ",")
      (Sfg.assigns s);
    pf "]\n"
  in
  let fsm f =
    pf "fsm %s states[" (Fsm.name f);
    List.iter (fun s -> pf "%s," (Fsm.state_name s)) (Fsm.states f);
    pf "] initial %s\n" (Fsm.state_name (Fsm.initial_state f));
    List.iter (fun s -> sfg s) (Fsm.all_sfgs f);
    List.iter
      (fun tr ->
        pf "tr %s -[" (Fsm.state_name tr.Fsm.t_from);
        expr (Fsm.guard_expr tr.Fsm.t_guard);
        pf "]-> %s {" (Fsm.state_name tr.Fsm.t_goto);
        List.iter (fun s -> pf "%s," (Sfg.name s)) tr.Fsm.t_actions;
        pf "}\n")
      (Fsm.transitions f)
  in
  pf "system %s clock %s\n" t.s_name (Clock.name t.clock);
  let comps =
    List.sort (fun a b -> String.compare a.c_name b.c_name) t.comps
  in
  List.iter
    (fun c ->
      match c.c_kind with
      | Timed f ->
        pf "timed %s " c.c_name;
        fsm f
      | Untimed k ->
        (* Firing rule and declared formats are structural; the
           behaviour closure is opaque (documented digest limit). *)
        pf "untimed %s ins[" c.c_name;
        List.iter (fun (p, r) -> pf "%s*%d," p r) k.Dataflow.Kernel.k_inputs;
        pf "] outs[";
        List.iter (fun (p, r) -> pf "%s*%d," p r) k.Dataflow.Kernel.k_outputs;
        pf "] formats[";
        List.iter
          (fun (p, f) -> pf "%s:%s," p (fmt_s f))
          (List.sort compare k.Dataflow.Kernel.k_formats);
        pf "]\n"
      | Primary_input (f, _stim) -> pf "input %s:%s\n" c.c_name (fmt_s f)
      | Primary_output -> pf "output %s\n" c.c_name)
    comps;
  List.iter
    (fun n ->
      let d, dp = n.n_driver in
      pf "net %s %s.%s ->" n.n_name d.c_name dp;
      List.iter
        (fun (s, sp) -> pf " %s.%s" s.c_name sp)
        (List.sort
           (fun (a, ap) (b, bp) -> compare (a.c_name, ap) (b.c_name, bp))
           n.n_sinks);
      pf "\n")
    (List.sort (fun a b -> String.compare a.n_name b.n_name) t.s_nets);
  Digest.to_hex (Digest.string (Buffer.contents buf))

type stats = {
  cycles : int;
  tokens_transferred : int;
  eval_iterations : int;
  untimed_firings : int;
}

let stats t =
  {
    cycles = t.cycle_count;
    tokens_transferred = t.tokens_transferred;
    eval_iterations = t.eval_iterations;
    untimed_firings = t.untimed_fires;
  }
