(** Systems of components and the three-phase cycle scheduler.

    A system is a set of concurrent components exchanging data signals
    over a system interconnect (paper section 2, fig 5).  Components are
    either {e timed} — an FSM whose transition actions are SFGs, one
    iteration per clock cycle — or {e untimed} — a data-flow kernel with
    a firing rule, which the cycle scheduler interleaves with the timed
    blocks (fig 6; the DECT RAM cells are untimed while the datapaths
    are clock-cycle true).

    One clock cycle is simulated in three phases (section 4):

    + {b transition selection} — each FSM picks a transition from its
      current state by evaluating guards over registered values; the
      attached SFGs are marked for execution;
    + {b token production} — for every marked SFG, the outputs that
      depend only on registered signals and constants are evaluated and
      their tokens put on the interconnect (this breaks the apparent
      deadlocks a pure data-flow scheduler would need initial tokens
      for);
    + {b evaluation} — iteratively, marked SFGs emit outputs as soon as
      the inputs those outputs depend on have arrived, and untimed
      kernels fire when their rule is satisfied; when an iteration makes
      no progress while marked SFGs remain unfired, the system is
      declared deadlocked — this is how combinational loops are found;
    + {b register update} — staged next-values are committed and the
      FSMs advance.

    The traditional two-phase register-transfer discipline (no token
    production, whole-SFG firing only) is also provided, as
    {!cycle_two_phase}, for the scheduler ablation of bench C4. *)

exception Deadlock of string list
(** Raised when the evaluation phase stalls; the payload names the
    components/SFGs still waiting on tokens. *)

exception System_error of string

type t
type component
type net

(** {1 Building} *)

val create : ?clock:Clock.t -> string -> t
val name : t -> string

(** [add_timed t name fsm] adds a clock-cycle-true component.  Its input
    ports are the names of the SFG inputs of the FSM's actions; its
    output ports are their output names. *)
val add_timed : t -> string -> Fsm.t -> component

(** [add_untimed t kernel] adds a high-level component.  All port rates
    must be 1 (one token per clock cycle at most).
    @raise System_error otherwise. *)
val add_untimed : t -> Dataflow.Kernel.t -> component

(** [add_input t name fmt stim] adds a primary input driven by [stim]:
    at each cycle [c], [stim c] is placed on the output net (port
    ["out"]) unless it is [None]. *)
val add_input :
  t -> string -> Fixed.format -> (int -> Fixed.t option) -> component

(** [add_output t name] adds a primary output probe with input port
    ["in"]; its received tokens are recorded (see {!output_history}). *)
val add_output : t -> string -> component

(** [connect t (src, port) sinks] creates a net driven by an output
    port, fanning out to input ports.
    @raise System_error if the driver port does not exist, or a sink
    port is already driven by another net. *)
val connect : t -> component * string -> (component * string) list -> net

val component_name : component -> string
val find_component : t -> string -> component option

(** {1 Checks} *)

type check_issue =
  | Unconnected_input of string * string  (** component, port *)
  | Unconnected_output of string * string
  | Unknown_port of string * string

val pp_issue : Format.formatter -> check_issue -> unit

(** Static interconnect audit: every SFG input port of every timed
    component (and every kernel input) should be the sink of some net —
    the system-level "dangling input" check. *)
val check : t -> check_issue list

(** {1 Simulation} *)

(** Run one clock cycle with the three-phase scheduler.
    @raise Deadlock on a combinational loop / missing token. *)
val cycle : t -> unit

(** Run one clock cycle with the classic two-phase scheduler (ablation):
    no token-production phase, SFGs fire only when {e all} their inputs
    are present.  Deadlocks on fig 6-style circular component
    dependencies that the three-phase scheduler resolves. *)
val cycle_two_phase : t -> unit

(** [run ?two_phase t n] simulates [n] cycles. *)
val run : ?two_phase:bool -> t -> int -> unit

(** Reset: cycle counter to zero, FSMs to initial states, registers to
    init values, recorded histories cleared. *)
val reset : t -> unit

val current_cycle : t -> int

(** {1 Observation} *)

(** [output_history t probe] — tokens received by an [add_output] probe:
    [(cycle, value)] pairs, oldest first. *)
val output_history : t -> component -> (int * Fixed.t) list

(** [trace_net t net] starts recording tokens on [net];
    [net_history t net] reads the recording. *)
val trace_net : t -> net -> unit

val net_history : t -> net -> (int * Fixed.t) list

(** Start recording tokens on every net (for waveform dumping). *)
val trace_all : t -> unit

(** Recorded histories of all traced nets, as (net name, history). *)
val traced_histories : t -> (string * (int * Fixed.t) list) list

(** [input_history t] — every token produced by every primary input,
    as [(cycle, input-name, value)], oldest first (for test-bench
    generation). *)
val input_history : t -> (int * string * Fixed.t) list

(** {1 Introspection for code generators and statistics} *)

val timed_components : t -> (string * Fsm.t) list
val untimed_components : t -> (string * Dataflow.Kernel.t) list

(** Primary inputs: name, format, stimulus function. *)
val primary_inputs :
  t -> (string * Fixed.format * (int -> Fixed.t option)) list

(** Primary output probe names. *)
val probes : t -> string list

(** Nets as (net-name, driver (component, port), sinks). *)
val nets : t -> (string * (string * string) * (string * string) list) list

(** The value format carried by each net, derived from its driver:
    primary inputs and untimed kernels declare theirs; a timed output
    carries the producing expression's format, which must agree across
    all SFGs producing the port.  Static back ends (compiled simulation,
    RTL elaboration, synthesis, HDL generation) all rely on this map.
    @raise System_error on inconsistent or undeclared formats. *)
val net_formats : t -> (string, Fixed.format) Hashtbl.t

(** All registers of all timed components. *)
val all_regs : t -> Signal.Reg.t list

(** {1 Canonical structural digest}

    [digest t] is a hex MD5 of a canonical rendering of the captured
    structure: components (sorted by name) with their FSMs, SFG
    expression DAGs, registers (name/format/init), ROM contents,
    kernel firing rules and declared port formats, primary input
    formats, and the interconnect (nets sorted by name).

    The rendering never uses the global instance counters of signals,
    registers or inputs — shared expression nodes are numbered in
    traversal order — so the same design built twice, in the same or
    another process, under any instance-counter offsets, hashes equal;
    any wordlength or topology edit hashes different.

    Not covered (documented limits): primary-input {e stimulus}
    closures and untimed kernels' behaviour closures are opaque —
    result caches must fingerprint stimuli separately (see
    [Flow.Cache]). *)
val digest : t -> string

(** {1 Engine attachment}

    Engine sessions ([Ocapi_engine]) mark the systems they elaborate:
    compiled programs and RTL elaborations cache state derived from
    (or aliasing — the RTL engine shares the register objects) the
    system, so a system with a live session must not be handed to
    another engine or worker domain.  [attached_engines] lists the
    engine names of currently open sessions, most recent first. *)

val attach_engine : t -> string -> unit
val detach_engine : t -> string -> unit
val attached_engines : t -> string list

(** Graphviz dot rendering of the component/interconnect structure —
    the textual twin of the paper's architecture diagrams (figs 1, 5,
    6).  Timed components are boxes, untimed components (RAM cells)
    ellipses, primary inputs/outputs plain text; edges are nets labeled
    with the driver port. *)
val to_dot : t -> string

type stats = {
  cycles : int;
  tokens_transferred : int;
  eval_iterations : int;  (** total evaluation-phase sweeps *)
  untimed_firings : int;
}

val stats : t -> stats
