(** Reusing timed datapath descriptions as untimed processes.

    Section 3.3's architecture story: the DECT design began data-driven
    (local control), and the machine model "allowed to reuse the
    datapath descriptions and only required the control descriptions to
    be reworked" when the target moved to central control.  This module
    is that reuse path in the other direction: any SFG — one clock cycle
    of data processing — can serve as the behaviour of a data-flow
    process with a one-token-per-input firing rule.

    Registers referenced by the SFG keep their state across firings
    (committed after each firing), so an SFG with internal state (an
    accumulator, a shift window) behaves identically under data-flow
    control and under an FSM. *)

(** [kernel_of_sfg sfg] — inputs and outputs mirror the SFG's ports
    (rate 1); each firing evaluates the SFG and commits its register
    assigns.  Port formats are declared from the SFG, so the kernel
    works with every static back end that supports kernels. *)
val kernel_of_sfg : Sfg.t -> Dataflow.Kernel.t
