let kernel_of_sfg sfg =
  let inputs = List.map (fun i -> (Signal.Input.name i, 1)) (Sfg.inputs sfg) in
  let outputs = List.map (fun (p, _) -> (p, 1)) (Sfg.outputs sfg) in
  let formats =
    List.map (fun i -> (Signal.Input.name i, Signal.Input.fmt i)) (Sfg.inputs sfg)
    @ List.map (fun (p, e) -> (p, Signal.fmt e)) (Sfg.outputs sfg)
  in
  let regs = Sfg.regs_written sfg in
  let reset () = List.iter Signal.Reg.reset (Sfg.regs_read sfg @ regs) in
  Dataflow.Kernel.create (Sfg.name sfg) ~formats ~reset ~inputs ~outputs
    (fun consumed ->
      let env = Signal.Env.create () in
      List.iter
        (fun i ->
          match List.assoc_opt (Signal.Input.name i) consumed with
          | Some [ v ] -> Signal.Env.bind env i v
          | Some _ | None ->
            raise
              (Dataflow.Dataflow_error
                 (Printf.sprintf "kernel %s: missing token on %s"
                    (Sfg.name sfg) (Signal.Input.name i))))
        (Sfg.inputs sfg);
      let out = Sfg.fire sfg env in
      (* One firing = one clock cycle: commit the register assigns. *)
      List.iter Signal.Reg.commit regs;
      List.map (fun (p, v) -> (p, [ v ])) out)
