type severity = Warning | Error | Fatal

type code =
  | Deadlock
  | Did_not_settle
  | Delta_overflow
  | Overflow
  | Invalid_state
  | Watchdog
  | Timeout
  | Cancelled
  | Worker_crashed
  | Retries_exhausted
  | Overloaded
  | Unsupported
  | Native_unavailable
  | Shared_state
  | Mismatch
  | Internal

type t = {
  e_code : code;
  e_severity : severity;
  e_engine : string;
  e_construct : string option;
  e_cycle : int option;
  e_nets : string list;
  e_message : string;
}

let make ?(severity = Error) ?construct ?cycle ?(nets = []) code ~engine
    message =
  {
    e_code = code;
    e_severity = severity;
    e_engine = engine;
    e_construct = construct;
    e_cycle = cycle;
    e_nets = nets;
    e_message = message;
  }

exception Error of t

let fail ?severity ?construct ?cycle ?nets code ~engine fmt =
  Format.kasprintf
    (fun s -> raise (Error (make ?severity ?construct ?cycle ?nets code ~engine s)))
    fmt

let code_label = function
  | Deadlock -> "deadlock"
  | Did_not_settle -> "did-not-settle"
  | Delta_overflow -> "delta-overflow"
  | Overflow -> "overflow"
  | Invalid_state -> "invalid-state"
  | Watchdog -> "watchdog"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Worker_crashed -> "worker-crashed"
  | Retries_exhausted -> "retries-exhausted"
  | Overloaded -> "overloaded"
  | Unsupported -> "unsupported"
  | Native_unavailable -> "native-unavailable"
  | Shared_state -> "shared-state"
  | Mismatch -> "mismatch"
  | Internal -> "internal"

let severity_label = function
  | Warning -> "warning"
  | Error -> "error"
  | Fatal -> "fatal"

let pp ppf d =
  Format.fprintf ppf "%s%s: %s" d.e_engine
    (match d.e_construct with Some c -> "/" ^ c | None -> "")
    (code_label d.e_code);
  (match d.e_cycle with
  | Some c -> Format.fprintf ppf " (cycle %d)" c
  | None -> ());
  Format.fprintf ppf ": %s" d.e_message;
  if d.e_nets <> [] then
    Format.fprintf ppf " [nets: %s]" (String.concat ", " d.e_nets)

let to_string d = Format.asprintf "%a" pp d

(* Print [Error d] readably when it escapes to the toplevel. *)
let () =
  Printexc.register_printer (function
    | Error d -> Some ("Ocapi_error.Error: " ^ to_string d)
    | _ -> None)
