(** Structured engine diagnostics.

    Every simulation engine of the environment can fail: the three-phase
    scheduler deadlocks, the gate-level simulator oscillates, the RT
    kernel exhausts its delta budget, fixed-point resizes overflow.  For
    interactive use a bare exception string is enough; for a 10k-run
    fault-injection campaign it is not — a single non-settling netlist
    must degrade to a {e classified per-run record}, not abort the whole
    campaign.

    This module is the shared currency of such failures: a diagnostic
    record carrying a machine-readable code, a severity, the engine and
    source construct it arose in, the clock cycle, and the culprit nets,
    plus one exception ({!Error}) wrapping it.  It sits upstream of all
    engine libraries so that [sched], [compiled], [rtl], [netlist] and
    the flow layer can raise and classify through one type. *)

(** How bad: [Warning] is advisory, [Error] aborted one run or request,
    [Fatal] means the engine state is unusable afterwards. *)
type severity = Warning | Error | Fatal

(** Machine-readable failure classes, spanning all engines. *)
type code =
  | Deadlock  (** scheduler: no component can make progress *)
  | Did_not_settle  (** gate-level: event queue did not quiesce *)
  | Delta_overflow  (** RT kernel: delta-cycle budget exhausted *)
  | Overflow  (** fixed-point overflow (resize/create) *)
  | Invalid_state  (** FSM driven into an unencoded state *)
  | Watchdog  (** a configured cycle/settle budget was exceeded *)
  | Timeout
      (** a request exceeded its wall-clock deadline (batch jobs with
          a [~timeout]; the computation was abandoned cooperatively) *)
  | Cancelled  (** a queued or running request was cancelled *)
  | Worker_crashed
      (** a worker {e process} died mid-job — killed by a signal
          (segfault, OOM kill, chaos injection) or reaped past its
          heartbeat/deadline backstop by the campaign service, which
          retries the job under its bounded retry budget *)
  | Retries_exhausted
      (** a poisoned job: it killed every worker that attempted it,
          exhausting the retry budget, and is resolved [Failed]
          instead of being requeued forever *)
  | Overloaded
      (** a submission was rejected by bounded-queue backpressure:
          the service's pending queue is at capacity, and rejecting
          beats growing without limit *)
  | Unsupported  (** construct outside an engine's subset *)
  | Native_unavailable
      (** the native (dynlinked) engine cannot run here: no
          [ocamlfind]/[ocamlopt] toolchain on [PATH], no native
          [Dynlink] support, or the plugin ABI interface could not be
          located.  Sessions degrade to the interpreted compiled
          program; [Ocapi_native.availability] reports this code *)
  | Shared_state
      (** a design object still owned by a live engine session (or by
          another worker domain) was handed to a second consumer — e.g.
          a [~replicate] factory returning the campaign system itself *)
  | Mismatch
      (** cross-level equivalence checking found two representations of
          one design disagreeing on a probe token ([Ocapi_ir.check_equivalence]) *)
  | Internal  (** violated internal invariant *)

type t = {
  e_code : code;
  e_severity : severity;
  e_engine : string;  (** "sched" | "compiled" | "rtl" | "gates" | ... *)
  e_construct : string option;  (** component / FSM / register / bus *)
  e_cycle : int option;  (** clock cycle of the failure, when known *)
  e_nets : string list;  (** culprit nets or signals *)
  e_message : string;
}

exception Error of t

(** [make code ~engine msg] builds a diagnostic; optional context
    defaults to absent/empty and severity to {!Error}. *)
val make :
  ?severity:severity ->
  ?construct:string ->
  ?cycle:int ->
  ?nets:string list ->
  code ->
  engine:string ->
  string ->
  t

(** [fail code ~engine fmt ...] formats a message and raises {!Error}. *)
val fail :
  ?severity:severity ->
  ?construct:string ->
  ?cycle:int ->
  ?nets:string list ->
  code ->
  engine:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a

val code_label : code -> string
val severity_label : severity -> string

(** One-line rendering:
    [engine/construct: code (cycle N): message [nets: a, b, ...]]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
