(* Process-wide telemetry: metric registry + Chrome trace-event spans.
   Everything here must stay allocation-light on the disabled path —
   the engines call into this module from their per-cycle hot loops. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        (* %.17g round-trips; trim the common integral case for humans. *)
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        l;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    to_buffer buf j;
    Buffer.contents buf

  (* A recursive-descent parser for the same subset the serializer
     emits (strict JSON; no comments, no trailing commas).  The batch
     job-manifest reader and the tests use it; keeping it here spares
     the repo an external JSON dependency. *)
  exception Parse of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let error msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> error (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        value
      end
      else error (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then error "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 'b' -> Buffer.add_char buf '\b'; loop ()
          | 'f' -> Buffer.add_char buf '\012'; loop ()
          | 'u' ->
            if !pos + 4 > n then error "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error "invalid \\u escape"
            in
            (* Escaped control characters round-trip; other code points
               are emitted as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end;
            loop ()
          | _ -> error "invalid escape")
        | c -> Buffer.add_char buf c; loop ()
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let is_int = ref true in
      let rec loop () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          loop ()
        | Some ('.' | 'e' | 'E') ->
          is_int := false;
          advance ();
          loop ()
        | _ -> ()
      in
      loop ();
      let text = String.sub s start (!pos - start) in
      if !is_int then
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error "invalid number")
      else
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error "invalid number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> error "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields (kv :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev (kv :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
        end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> error (Printf.sprintf "unexpected %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then error "trailing characters";
      v
    with
    | v -> Ok v
    | exception Parse msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* --- master switch ------------------------------------------------------- *)

(* Atomic so every domain reads one coherent flag; workers spawned while
   telemetry is enabled instrument themselves into their own domain-local
   registry (below) without any further coordination. *)
let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* --- metric registry ----------------------------------------------------- *)

type histogram = {
  h_bounds : float array;  (* ascending upper bounds *)
  h_counts : int array;  (* length = bounds + 1; last = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | M_counter of int ref
  | M_gauge of float ref
  | M_hist of histogram

(* One registry per domain (Domain.DLS): the hot instrumentation paths
   stay lock-free, and the counters a worker domain accumulates are
   merged into its parent's registry at join via [export_domain] /
   [absorb_domain].  Single-domain programs see exactly the old
   process-wide behaviour. *)
let registry_key : (string, metric) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key

let kind_clash name =
  invalid_arg
    ("Ocapi_obs: metric " ^ name
   ^ " already registered with a different kind (counter, gauge and \
      histogram names must not overlap)")

let counter_ref name =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (M_counter r) -> r
  | Some _ -> kind_clash name
  | None ->
    let r = ref 0 in
    Hashtbl.replace registry name (M_counter r);
    r

let gauge_ref name =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (M_gauge r) -> r
  | Some _ -> kind_clash name
  | None ->
    let r = ref 0. in
    Hashtbl.replace registry name (M_gauge r);
    r

let default_buckets =
  Array.init 21 (fun i -> Float.of_int (1 lsl i)) (* 1 .. 2^20 *)

let hist ?(buckets = default_buckets) name =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (M_hist h) -> h
  | Some _ -> kind_clash name
  | None ->
    let h =
      {
        h_bounds = Array.copy buckets;
        h_counts = Array.make (Array.length buckets + 1) 0;
        h_count = 0;
        h_sum = 0.;
        h_min = infinity;
        h_max = neg_infinity;
      }
    in
    Hashtbl.replace registry name (M_hist h);
    h

let count ?(n = 1) name =
  if Atomic.get on then begin
    let r = counter_ref name in
    r := !r + n
  end

let set_gauge name v = if Atomic.get on then gauge_ref name := v

let max_gauge name v =
  if Atomic.get on then begin
    let r = gauge_ref name in
    if v > !r then r := v
  end

let observe ?buckets name v =
  if Atomic.get on then begin
    let h = hist ?buckets name in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let n = Array.length h.h_bounds in
    let i = ref 0 in
    while !i < n && v > h.h_bounds.(!i) do
      incr i
    done;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1
  end

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

(* Quantile estimate from the bucketed counts: find the bucket holding
   the q-th observation and interpolate linearly inside it, clamping to
   the recorded min/max so small samples never report a bucket edge far
   from any real observation. *)
let hist_quantile hs q =
  if hs.hs_count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int hs.hs_count in
    let rec find lower cum = function
      | [] -> hs.hs_max
      | (bound, n) :: rest ->
        let cum' = cum +. float_of_int n in
        if n > 0 && cum' >= target then
          if Float.is_finite bound then begin
            let inside = (target -. cum) /. float_of_int n in
            let lo = Float.max lower hs.hs_min in
            let hi = Float.min bound hs.hs_max in
            Float.max lo (Float.min hi (lo +. ((hi -. lo) *. inside)))
          end
          else hs.hs_max
        else find (if Float.is_finite bound then bound else lower) cum' rest
    in
    find hs.hs_min 0.0 hs.hs_buckets
  end

let snapshot () =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | M_counter r -> Counter_v !r
        | M_gauge r -> Gauge_v !r
        | M_hist h ->
          let buckets =
            List.init
              (Array.length h.h_counts)
              (fun i ->
                let bound =
                  if i < Array.length h.h_bounds then h.h_bounds.(i)
                  else infinity
                in
                (bound, h.h_counts.(i)))
          in
          Histogram_v
            {
              hs_count = h.h_count;
              hs_sum = h.h_sum;
              hs_min = h.h_min;
              hs_max = h.h_max;
              hs_buckets = buckets;
            }
      in
      (name, v) :: acc)
    (registry ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let value_json = function
  | Counter_v n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge_v v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
  | Histogram_v h ->
    Json.Obj
      [
        ("type", Json.String "histogram");
        ("count", Json.Int h.hs_count);
        ("sum", Json.Float h.hs_sum);
        ("min", Json.Float h.hs_min);
        ("max", Json.Float h.hs_max);
        ( "buckets",
          Json.List
            (List.filter_map
               (fun (bound, n) ->
                 if n = 0 then None
                 else
                   Some
                     (Json.Obj [ ("le", Json.Float bound); ("n", Json.Int n) ]))
               h.hs_buckets) );
      ]

let metrics_json () =
  Json.Obj (List.map (fun (name, v) -> (name, value_json v)) (snapshot ()))

let reset_metrics () = Hashtbl.reset (registry ())

(* --- span tracing --------------------------------------------------------- *)

type trace_event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (* 'X' complete | 'i' instant *)
  ev_ts : float;  (* us since epoch *)
  ev_dur : float;  (* us; 0 for instants *)
  ev_args : (string * Json.t) list;
  ev_tid : int;  (* producing domain *)
}

let max_events = 1_000_000

(* One trace buffer per domain, like the metric registry.  [ev_tid]
   records the producing domain so merged traces keep one Perfetto
   track per worker.  The epoch is process-wide: it is (re)set by
   [clear_trace]/[reset] on the coordinating domain before workers
   spawn, so all domains share one time base. *)
type trace_buf = {
  mutable tb_events : trace_event list;  (* reversed *)
  mutable tb_count : int;
  mutable tb_dropped : int;
}

let trace_key : trace_buf Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tb_events = []; tb_count = 0; tb_dropped = 0 })

let trace_buf () = Domain.DLS.get trace_key
let epoch_us = Atomic.make 0.

let now_us () = Unix.gettimeofday () *. 1e6

(* Forward-declared: sampling state lives below but must restart with
   the trace so a fresh trace begins at phase 0 for every span name. *)
let reset_sampling_counts = ref (fun () -> ())

let clear_trace () =
  let tb = trace_buf () in
  tb.tb_events <- [];
  tb.tb_count <- 0;
  tb.tb_dropped <- 0;
  !reset_sampling_counts ();
  Atomic.set epoch_us (now_us ())

let push ev =
  let tb = trace_buf () in
  if tb.tb_count >= max_events then tb.tb_dropped <- tb.tb_dropped + 1
  else begin
    tb.tb_events <- ev :: tb.tb_events;
    tb.tb_count <- tb.tb_count + 1
  end

let span_begin () = if Atomic.get on then now_us () else Float.nan

(* --- span sampling.  Long campaigns emit millions of identical
   high-frequency spans; [set_span_sampling n] keeps one span in [n]
   {e per span name} so rare spans (one "simulate" wrapping 10^6
   "cycle"s) are never starved out by frequent ones.  Occurrence
   counting is domain-local, like the buffers it protects; the factor
   itself is process-wide and deliberately survives [reset] so a
   campaign configured once stays sampled across runs. *)

let span_sampling = Atomic.make 1

let set_span_sampling n =
  if n < 1 then
    invalid_arg "Ocapi_obs.set_span_sampling: factor must be >= 1";
  Atomic.set span_sampling n

let span_sampling_factor () = Atomic.get span_sampling

let span_counts_key : (string, int ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let sampled_out = ref 0

(* true when this occurrence of [name] should be kept. *)
let sample_keep name =
  let n = Atomic.get span_sampling in
  if n <= 1 then true
  else begin
    let counts = Domain.DLS.get span_counts_key in
    let c =
      match Hashtbl.find_opt counts name with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.replace counts name c;
        c
    in
    let keep = !c mod n = 0 in
    incr c;
    if not keep then incr sampled_out;
    keep
  end

let sampled_out_spans () = !sampled_out

let () =
  reset_sampling_counts :=
    fun () ->
      Hashtbl.reset (Domain.DLS.get span_counts_key);
      sampled_out := 0

let span_end ?(cat = "ocapi") ?(args = []) name t0 =
  if Atomic.get on && not (Float.is_nan t0) && sample_keep name then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'X';
        ev_ts = t0 -. Atomic.get epoch_us;
        ev_dur = now_us () -. t0;
        ev_args = args;
        ev_tid = (Domain.self () :> int);
      }

let with_span ?cat ?args name f =
  let t0 = span_begin () in
  Fun.protect ~finally:(fun () -> span_end ?cat ?args name t0) f

let instant ?(cat = "ocapi") ?(args = []) name =
  if Atomic.get on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = now_us () -. Atomic.get epoch_us;
        ev_dur = 0.;
        ev_args = args;
        ev_tid = (Domain.self () :> int);
      }

let event_count () = (trace_buf ()).tb_count
let dropped_events () = (trace_buf ()).tb_dropped

let event_json ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ph", Json.String (String.make 1 ev.ev_ph));
      ("ts", Json.Float ev.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let base = if ev.ev_ph = 'X' then base @ [ ("dur", Json.Float ev.ev_dur) ] else base in
  let base = if ev.ev_ph = 'i' then base @ [ ("s", Json.String "g") ] else base in
  let base =
    if ev.ev_args = [] then base else base @ [ ("args", Json.Obj ev.ev_args) ]
  in
  Json.Obj base

let trace_json () =
  Json.to_string
    (Json.Obj
       [
         ("displayTimeUnit", Json.String "ms");
         ("otherData", Json.Obj [ ("generator", Json.String "ocapi-ml telemetry");
                                  ("droppedEvents", Json.Int (trace_buf ()).tb_dropped) ]);
         ("traceEvents", Json.List (List.rev_map event_json (trace_buf ()).tb_events));
       ])

let write_trace ~path =
  let oc = open_out path in
  output_string oc (trace_json ());
  close_out oc

(* --- cross-domain merge ---------------------------------------------------- *)

type domain_export = {
  de_metrics : (string * value) list;
  de_events : trace_event list;  (* reversed *)
  de_dropped : int;
}

let export_domain () =
  let tb = trace_buf () in
  { de_metrics = snapshot (); de_events = tb.tb_events;
    de_dropped = tb.tb_dropped }

let absorb_domain ex =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n ->
        let r = counter_ref name in
        r := !r + n
      | Gauge_v v ->
        (* High-water semantics: without an ordering between domains the
           only associative, commutative merge of a gauge is its max. *)
        let r = gauge_ref name in
        if v > !r then r := v
      | Histogram_v hs ->
        let bounds =
          Array.of_list
            (List.filter_map
               (fun (b, _) -> if b = infinity then None else Some b)
               hs.hs_buckets)
        in
        let h = hist ~buckets:bounds name in
        h.h_count <- h.h_count + hs.hs_count;
        h.h_sum <- h.h_sum +. hs.hs_sum;
        if hs.hs_min < h.h_min then h.h_min <- hs.hs_min;
        if hs.hs_max > h.h_max then h.h_max <- hs.hs_max;
        List.iteri
          (fun i (_, n) ->
            if i < Array.length h.h_counts then
              h.h_counts.(i) <- h.h_counts.(i) + n)
          hs.hs_buckets)
    ex.de_metrics;
  let tb = trace_buf () in
  tb.tb_dropped <- tb.tb_dropped + ex.de_dropped;
  List.iter push (List.rev ex.de_events)

(* --- reports --------------------------------------------------------------- *)

let reset () =
  disable ();
  reset_metrics ();
  clear_trace ()

type report = {
  rp_label : string;
  rp_seconds : float;
  rp_metrics : (string * value) list;
  rp_events : int;
}

let run_with_telemetry ~label f =
  let was = Atomic.get on in
  reset ();
  enable ();
  let t0 = Unix.gettimeofday () in
  let finish () =
    let seconds = Unix.gettimeofday () -. t0 in
    let report =
      {
        rp_label = label;
        rp_seconds = seconds;
        rp_metrics = snapshot ();
        rp_events = (trace_buf ()).tb_count;
      }
    in
    Atomic.set on was;
    report
  in
  match f () with
  | x -> (x, finish ())
  | exception e ->
    ignore (finish ());
    raise e

let report_json r =
  Json.Obj
    [
      ("label", Json.String r.rp_label);
      ("wall_seconds", Json.Float r.rp_seconds);
      ("trace_events", Json.Int r.rp_events);
      ( "metrics",
        Json.Obj (List.map (fun (name, v) -> (name, value_json v)) r.rp_metrics)
      );
    ]

let pp_value ppf = function
  | Counter_v n -> Format.fprintf ppf "%d" n
  | Gauge_v v -> Format.fprintf ppf "%g" v
  | Histogram_v h ->
    if h.hs_count = 0 then Format.fprintf ppf "histogram (empty)"
    else
      Format.fprintf ppf "n=%d sum=%g min=%g max=%g mean=%g" h.hs_count h.hs_sum
        h.hs_min h.hs_max
        (h.hs_sum /. float_of_int h.hs_count)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>telemetry %s: %.3fs wall, %d trace events@,"
    r.rp_label r.rp_seconds r.rp_events;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-36s %a@," name pp_value v)
    r.rp_metrics;
  Format.fprintf ppf "@]"
