(* Process-wide telemetry: metric registry + Chrome trace-event spans.
   Everything here must stay allocation-light on the disabled path —
   the engines call into this module from their per-cycle hot loops. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else begin
          (* Shortest representation that still round-trips: a value
             parsed back and re-serialized must produce the same bytes
             (the determinism gate compares ledger/event-log files). *)
          let s15 = Printf.sprintf "%.15g" f in
          if float_of_string s15 = f then Buffer.add_string buf s15
          else
            let s16 = Printf.sprintf "%.16g" f in
            if float_of_string s16 = f then Buffer.add_string buf s16
            else Buffer.add_string buf (Printf.sprintf "%.17g" f)
        end
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        l;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    to_buffer buf j;
    Buffer.contents buf

  (* A recursive-descent parser for the same subset the serializer
     emits (strict JSON; no comments, no trailing commas).  The batch
     job-manifest reader and the tests use it; keeping it here spares
     the repo an external JSON dependency. *)
  exception Parse of string

  (* Containers may nest this deep before the parser gives up.  The cap
     turns adversarially deep input ("[[[[…") into an [Error] instead of
     a stack overflow that would take the whole process down. *)
  let max_depth = 255

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let error msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> error (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        value
      end
      else error (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then error "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 'b' -> Buffer.add_char buf '\b'; loop ()
          | 'f' -> Buffer.add_char buf '\012'; loop ()
          | 'u' ->
            if !pos + 4 > n then error "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error "invalid \\u escape"
            in
            (* Escaped control characters round-trip; other code points
               are emitted as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end;
            loop ()
          | _ -> error "invalid escape")
        | c -> Buffer.add_char buf c; loop ()
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let is_int = ref true in
      let rec loop () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          loop ()
        | Some ('.' | 'e' | 'E') ->
          is_int := false;
          advance ();
          loop ()
        | _ -> ()
      in
      loop ();
      let text = String.sub s start (!pos - start) in
      if !is_int then
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error "invalid number")
      else
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error "invalid number"
    in
    let rec parse_value depth =
      if depth > max_depth then error "nesting too deep";
      skip_ws ();
      match peek () with
      | None -> error "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field acc =
            skip_ws ();
            let k = parse_string () in
            (* Duplicate keys silently shadow under [member]'s assoc
               lookup; reject them outright so a hand-edited manifest or
               ledger line fails loudly instead of half-applying. *)
            if List.mem_assoc k acc then
              error (Printf.sprintf "duplicate key %S" k);
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let rec fields acc =
            let kv = field acc in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields (kv :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev (kv :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
        end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> error (Printf.sprintf "unexpected %C" c)
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then error "trailing characters";
      v
    with
    | v -> Ok v
    | exception Parse msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* --- master switch ------------------------------------------------------- *)

(* Atomic so every domain reads one coherent flag; workers spawned while
   telemetry is enabled instrument themselves into their own domain-local
   registry (below) without any further coordination. *)
let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* --- metric registry ----------------------------------------------------- *)

type histogram = {
  h_bounds : float array;  (* ascending upper bounds *)
  h_counts : int array;  (* length = bounds + 1; last = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | M_counter of int ref
  | M_gauge of float ref
  | M_hist of histogram

(* One registry per domain (Domain.DLS): the hot instrumentation paths
   stay lock-free, and the counters a worker domain accumulates are
   merged into its parent's registry at join via [export_domain] /
   [absorb_domain].  Single-domain programs see exactly the old
   process-wide behaviour. *)
let registry_key : (string, metric) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key

let kind_clash name =
  invalid_arg
    ("Ocapi_obs: metric " ^ name
   ^ " already registered with a different kind (counter, gauge and \
      histogram names must not overlap)")

let counter_ref name =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (M_counter r) -> r
  | Some _ -> kind_clash name
  | None ->
    let r = ref 0 in
    Hashtbl.replace registry name (M_counter r);
    r

let gauge_ref name =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (M_gauge r) -> r
  | Some _ -> kind_clash name
  | None ->
    let r = ref 0. in
    Hashtbl.replace registry name (M_gauge r);
    r

let default_buckets =
  Array.init 21 (fun i -> Float.of_int (1 lsl i)) (* 1 .. 2^20 *)

let hist ?(buckets = default_buckets) name =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (M_hist h) -> h
  | Some _ -> kind_clash name
  | None ->
    let h =
      {
        h_bounds = Array.copy buckets;
        h_counts = Array.make (Array.length buckets + 1) 0;
        h_count = 0;
        h_sum = 0.;
        h_min = infinity;
        h_max = neg_infinity;
      }
    in
    Hashtbl.replace registry name (M_hist h);
    h

let count ?(n = 1) name =
  if Atomic.get on then begin
    let r = counter_ref name in
    r := !r + n
  end

let set_gauge name v = if Atomic.get on then gauge_ref name := v

let max_gauge name v =
  if Atomic.get on then begin
    let r = gauge_ref name in
    if v > !r then r := v
  end

let observe ?buckets name v =
  if Atomic.get on then begin
    let h = hist ?buckets name in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let n = Array.length h.h_bounds in
    let i = ref 0 in
    while !i < n && v > h.h_bounds.(!i) do
      incr i
    done;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1
  end

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

(* Quantile estimate from the bucketed counts: find the bucket holding
   the q-th observation and interpolate linearly inside it, clamping to
   the recorded min/max so small samples never report a bucket edge far
   from any real observation. *)
let hist_quantile hs q =
  if hs.hs_count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int hs.hs_count in
    let rec find lower cum = function
      | [] -> hs.hs_max
      | (bound, n) :: rest ->
        let cum' = cum +. float_of_int n in
        if n > 0 && cum' >= target then
          if Float.is_finite bound then begin
            let inside = (target -. cum) /. float_of_int n in
            let lo = Float.max lower hs.hs_min in
            let hi = Float.min bound hs.hs_max in
            Float.max lo (Float.min hi (lo +. ((hi -. lo) *. inside)))
          end
          else hs.hs_max
        else find (if Float.is_finite bound then bound else lower) cum' rest
    in
    find hs.hs_min 0.0 hs.hs_buckets
  end

let snapshot () =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | M_counter r -> Counter_v !r
        | M_gauge r -> Gauge_v !r
        | M_hist h ->
          let buckets =
            List.init
              (Array.length h.h_counts)
              (fun i ->
                let bound =
                  if i < Array.length h.h_bounds then h.h_bounds.(i)
                  else infinity
                in
                (bound, h.h_counts.(i)))
          in
          Histogram_v
            {
              hs_count = h.h_count;
              hs_sum = h.h_sum;
              hs_min = h.h_min;
              hs_max = h.h_max;
              hs_buckets = buckets;
            }
      in
      (name, v) :: acc)
    (registry ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let value_json = function
  | Counter_v n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge_v v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
  | Histogram_v h ->
    Json.Obj
      [
        ("type", Json.String "histogram");
        ("count", Json.Int h.hs_count);
        ("sum", Json.Float h.hs_sum);
        ("min", Json.Float h.hs_min);
        ("max", Json.Float h.hs_max);
        ( "buckets",
          Json.List
            (List.filter_map
               (fun (bound, n) ->
                 if n = 0 then None
                 else
                   Some
                     (Json.Obj [ ("le", Json.Float bound); ("n", Json.Int n) ]))
               h.hs_buckets) );
      ]

let metrics_json () =
  Json.Obj (List.map (fun (name, v) -> (name, value_json v)) (snapshot ()))

let reset_metrics () = Hashtbl.reset (registry ())

(* --- span tracing --------------------------------------------------------- *)

type trace_event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (* 'X' complete | 'i' instant *)
  ev_ts : float;  (* us since epoch *)
  ev_dur : float;  (* us; 0 for instants *)
  ev_args : (string * Json.t) list;
  ev_tid : int;  (* producing domain *)
}

let max_events = 1_000_000

(* One trace buffer per domain, like the metric registry.  [ev_tid]
   records the producing domain so merged traces keep one Perfetto
   track per worker.  The epoch is process-wide: it is (re)set by
   [clear_trace]/[reset] on the coordinating domain before workers
   spawn, so all domains share one time base. *)
type trace_buf = {
  mutable tb_events : trace_event list;  (* reversed *)
  mutable tb_count : int;
  mutable tb_dropped : int;
}

let trace_key : trace_buf Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tb_events = []; tb_count = 0; tb_dropped = 0 })

let trace_buf () = Domain.DLS.get trace_key
let epoch_us = Atomic.make 0.

let now_us () = Unix.gettimeofday () *. 1e6

(* Forward-declared: sampling state lives below but must restart with
   the trace so a fresh trace begins at phase 0 for every span name. *)
let reset_sampling_counts = ref (fun () -> ())

let clear_trace () =
  let tb = trace_buf () in
  tb.tb_events <- [];
  tb.tb_count <- 0;
  tb.tb_dropped <- 0;
  !reset_sampling_counts ();
  Atomic.set epoch_us (now_us ())

let push ev =
  let tb = trace_buf () in
  if tb.tb_count >= max_events then tb.tb_dropped <- tb.tb_dropped + 1
  else begin
    tb.tb_events <- ev :: tb.tb_events;
    tb.tb_count <- tb.tb_count + 1
  end

let span_begin () = if Atomic.get on then now_us () else Float.nan

(* --- span sampling.  Long campaigns emit millions of identical
   high-frequency spans; [set_span_sampling n] keeps one span in [n]
   {e per span name} so rare spans (one "simulate" wrapping 10^6
   "cycle"s) are never starved out by frequent ones.  Occurrence
   counting is domain-local, like the buffers it protects; the factor
   itself is process-wide and deliberately survives [reset] so a
   campaign configured once stays sampled across runs. *)

let span_sampling = Atomic.make 1

let set_span_sampling n =
  if n < 1 then
    invalid_arg "Ocapi_obs.set_span_sampling: factor must be >= 1";
  Atomic.set span_sampling n

let span_sampling_factor () = Atomic.get span_sampling

let span_counts_key : (string, int ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let sampled_out = ref 0

(* true when this occurrence of [name] should be kept. *)
let sample_keep name =
  let n = Atomic.get span_sampling in
  if n <= 1 then true
  else begin
    let counts = Domain.DLS.get span_counts_key in
    let c =
      match Hashtbl.find_opt counts name with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.replace counts name c;
        c
    in
    let keep = !c mod n = 0 in
    incr c;
    if not keep then incr sampled_out;
    keep
  end

let sampled_out_spans () = !sampled_out

let () =
  reset_sampling_counts :=
    fun () ->
      Hashtbl.reset (Domain.DLS.get span_counts_key);
      sampled_out := 0

let span_end ?(cat = "ocapi") ?(args = []) name t0 =
  if Atomic.get on && not (Float.is_nan t0) && sample_keep name then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'X';
        ev_ts = t0 -. Atomic.get epoch_us;
        ev_dur = now_us () -. t0;
        ev_args = args;
        ev_tid = (Domain.self () :> int);
      }

let with_span ?cat ?args name f =
  let t0 = span_begin () in
  Fun.protect ~finally:(fun () -> span_end ?cat ?args name t0) f

let instant ?(cat = "ocapi") ?(args = []) name =
  if Atomic.get on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = now_us () -. Atomic.get epoch_us;
        ev_dur = 0.;
        ev_args = args;
        ev_tid = (Domain.self () :> int);
      }

let event_count () = (trace_buf ()).tb_count
let dropped_events () = (trace_buf ()).tb_dropped

let event_json ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ph", Json.String (String.make 1 ev.ev_ph));
      ("ts", Json.Float ev.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let base = if ev.ev_ph = 'X' then base @ [ ("dur", Json.Float ev.ev_dur) ] else base in
  let base = if ev.ev_ph = 'i' then base @ [ ("s", Json.String "g") ] else base in
  let base =
    if ev.ev_args = [] then base else base @ [ ("args", Json.Obj ev.ev_args) ]
  in
  Json.Obj base

let trace_json () =
  Json.to_string
    (Json.Obj
       [
         ("displayTimeUnit", Json.String "ms");
         ("otherData", Json.Obj [ ("generator", Json.String "ocapi-ml telemetry");
                                  ("droppedEvents", Json.Int (trace_buf ()).tb_dropped) ]);
         ("traceEvents", Json.List (List.rev_map event_json (trace_buf ()).tb_events));
       ])

let write_trace ~path =
  let oc = open_out path in
  output_string oc (trace_json ());
  close_out oc

(* --- cross-domain merge ---------------------------------------------------- *)

type domain_export = {
  de_metrics : (string * value) list;
  de_events : trace_event list;  (* reversed *)
  de_dropped : int;
}

let export_domain () =
  let tb = trace_buf () in
  { de_metrics = snapshot (); de_events = tb.tb_events;
    de_dropped = tb.tb_dropped }

let absorb_domain ex =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n ->
        let r = counter_ref name in
        r := !r + n
      | Gauge_v v ->
        (* High-water semantics: without an ordering between domains the
           only associative, commutative merge of a gauge is its max. *)
        let r = gauge_ref name in
        if v > !r then r := v
      | Histogram_v hs ->
        let bounds =
          Array.of_list
            (List.filter_map
               (fun (b, _) -> if b = infinity then None else Some b)
               hs.hs_buckets)
        in
        let h = hist ~buckets:bounds name in
        h.h_count <- h.h_count + hs.hs_count;
        h.h_sum <- h.h_sum +. hs.hs_sum;
        if hs.hs_min < h.h_min then h.h_min <- hs.hs_min;
        if hs.hs_max > h.h_max then h.h_max <- hs.hs_max;
        List.iteri
          (fun i (_, n) ->
            if i < Array.length h.h_counts then
              h.h_counts.(i) <- h.h_counts.(i) + n)
          hs.hs_buckets)
    ex.de_metrics;
  let tb = trace_buf () in
  tb.tb_dropped <- tb.tb_dropped + ex.de_dropped;
  List.iter push (List.rev ex.de_events)

(* --- reports --------------------------------------------------------------- *)

let reset () =
  disable ();
  reset_metrics ();
  clear_trace ()

type report = {
  rp_label : string;
  rp_seconds : float;
  rp_metrics : (string * value) list;
  rp_events : int;
}

let run_with_telemetry ~label f =
  let was = Atomic.get on in
  reset ();
  enable ();
  let t0 = Unix.gettimeofday () in
  let finish () =
    let seconds = Unix.gettimeofday () -. t0 in
    let report =
      {
        rp_label = label;
        rp_seconds = seconds;
        rp_metrics = snapshot ();
        rp_events = (trace_buf ()).tb_count;
      }
    in
    Atomic.set on was;
    report
  in
  match f () with
  | x -> (x, finish ())
  | exception e ->
    ignore (finish ());
    raise e

let report_json r =
  Json.Obj
    [
      ("label", Json.String r.rp_label);
      ("wall_seconds", Json.Float r.rp_seconds);
      ("trace_events", Json.Int r.rp_events);
      ( "metrics",
        Json.Obj (List.map (fun (name, v) -> (name, value_json v)) r.rp_metrics)
      );
    ]

let pp_value ppf = function
  | Counter_v n -> Format.fprintf ppf "%d" n
  | Gauge_v v -> Format.fprintf ppf "%g" v
  | Histogram_v h ->
    if h.hs_count = 0 then Format.fprintf ppf "histogram (empty)"
    else
      Format.fprintf ppf "n=%d sum=%g min=%g max=%g mean=%g" h.hs_count h.hs_sum
        h.hs_min h.hs_max
        (h.hs_sum /. float_of_int h.hs_count)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>telemetry %s: %.3fs wall, %d trace events@,"
    r.rp_label r.rp_seconds r.rp_events;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-36s %a@," name pp_value v)
    r.rp_metrics;
  Format.fprintf ppf "@]"

(* --- shared file helpers (events + ledger) -------------------------------- *)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publication, same idiom as the batch artifact writer: write a
   process-unique temp file next to the target and [Sys.rename] it into
   place, so a concurrent reader sees either the old bytes or the new
   bytes, never a torn file. *)
let write_file_atomic ~path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (match output_string oc content with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

(* --- structured event log -------------------------------------------------- *)

module Events = struct
  type event = {
    e_seq : int;
    e_ts : float;  (* unix seconds at emission *)
    e_kind : string;
    e_corr : string;
    e_fields : (string * Json.t) list;
  }

  (* Events are per-job lifecycle markers, not per-cycle telemetry: a
     campaign emits a handful per job, so one process-wide mutex-guarded
     buffer is cheap and keeps a single total order across domains. *)
  let on = Atomic.make false
  let enabled () = Atomic.get on
  let set_enabled b = Atomic.set on b
  let lock = Mutex.create ()
  let buffer = ref [] (* reversed *)
  let next_seq = ref 0

  let clear () =
    Mutex.protect lock (fun () ->
        buffer := [];
        next_seq := 0)

  let emit ?(corr = "") ?(fields = []) kind =
    if Atomic.get on then
      Mutex.protect lock (fun () ->
          incr next_seq;
          buffer :=
            {
              e_seq = !next_seq;
              e_ts = Unix.gettimeofday ();
              e_kind = kind;
              e_corr = corr;
              e_fields = fields;
            }
            :: !buffer)

  let events () = Mutex.protect lock (fun () -> List.rev !buffer)

  let base_fields e =
    ("event", Json.String e.e_kind)
    :: ((if e.e_corr = "" then [] else [ ("corr", Json.String e.e_corr) ])
       @ e.e_fields)

  let to_json ?(ts = true) e =
    let fields = ("seq", Json.Int e.e_seq) :: base_fields e in
    Json.Obj
      (if ts then fields @ [ ("ts", Json.Float e.e_ts) ] else fields)

  (* Lifecycle rank inside one correlation id: submission before start
     before the run before crash/retry before completion, whatever
     wall-clock order the worker domains (or the campaign service's
     worker processes) produced. *)
  let kind_rank = function
    | "job_submitted" -> 0
    | "job_deduped" -> 1
    | "job_rejected" -> 2
    | "job_started" -> 3
    | "run_started" -> 4
    | "run_finished" -> 5
    | "worker_crashed" -> 6
    | "job_retried" -> 7
    | "job_completed" | "job_failed" | "job_cancelled" -> 8
    | _ -> 9

  (* Canonical form: wall-clock stamps dropped, events sorted by
     (corr, lifecycle rank, rendered fields), seq renumbered.  Two runs
     of the same campaign — serial or parallel, whatever the domain
     interleaving — canonicalize to byte-identical JSONL. *)
  let canonicalize evs =
    List.stable_sort
      (fun a b ->
        compare
          (a.e_corr, kind_rank a.e_kind, Json.to_string (Json.Obj (base_fields a)))
          (b.e_corr, kind_rank b.e_kind, Json.to_string (Json.Obj (base_fields b))))
      evs
    |> List.mapi (fun i e -> { e with e_seq = i + 1; e_ts = 0. })

  let write ?(canonical = true) ~path () =
    let evs = events () in
    let evs = if canonical then canonicalize evs else evs in
    let buf = Buffer.create 4096 in
    List.iter
      (fun e ->
        Json.to_buffer buf (to_json ~ts:(not canonical) e);
        Buffer.add_char buf '\n')
      evs;
    write_file_atomic ~path (Buffer.contents buf)

  let load path =
    if not (Sys.file_exists path) then Ok []
    else begin
      let lines = String.split_on_char '\n' (read_whole_file path) in
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let line = String.trim line in
          if line = "" then go (lineno + 1) acc rest
          else (
            match Json.of_string line with
            | Ok j -> go (lineno + 1) (j :: acc) rest
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      go 1 [] lines
    end
end

(* --- perf ledger ------------------------------------------------------------ *)

module Ledger = struct
  type entry = {
    en_bench : string;
    en_engine : string;
    en_digest : string;
    en_value : float;  (* a rate: bigger is better *)
    en_unit : string;
    en_commit : string;
    en_host : string;
    en_domains : int;
    en_ts : float;
  }

  let default_path () =
    match Sys.getenv_opt "OCAPI_LEDGER" with
    | Some p when p <> "" -> p
    | _ -> "PERF_LEDGER.jsonl"

  (* The current commit id without shelling out to git: follow
     [.git/HEAD] one level, falling back to [packed-refs] for repos
     whose loose ref has been packed away.  "unknown" when not run from
     a checkout (or with [OCAPI_COMMIT] unset in a bare environment). *)
  let git_commit () =
    match Sys.getenv_opt "OCAPI_COMMIT" with
    | Some c when c <> "" -> c
    | _ -> (
      let first_line path =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> String.trim (input_line ic))
      in
      let resolve_ref r =
        let direct = Filename.concat ".git" r in
        if Sys.file_exists direct then first_line direct
        else begin
          let text = read_whole_file ".git/packed-refs" in
          let hit =
            List.find_map
              (fun line ->
                match String.index_opt line ' ' with
                | Some i when String.sub line (i + 1) (String.length line - i - 1) = r
                  ->
                  Some (String.sub line 0 i)
                | _ -> None)
              (String.split_on_char '\n' text)
          in
          match hit with Some sha -> sha | None -> "unknown"
        end
      in
      try
        let head = first_line ".git/HEAD" in
        let id =
          if String.length head > 5 && String.sub head 0 5 = "ref: " then
            resolve_ref (String.sub head 5 (String.length head - 5))
          else head
        in
        if String.length id > 12 then String.sub id 0 12 else id
      with _ -> "unknown")

  let entry ?(digest = "") ?(unit_ = "") ?domains ~bench ~engine value =
    {
      en_bench = bench;
      en_engine = engine;
      en_digest = digest;
      en_value = value;
      en_unit = unit_;
      en_commit = git_commit ();
      en_host = (try Unix.gethostname () with _ -> "unknown");
      en_domains =
        (match domains with
        | Some d -> d
        | None -> Domain.recommended_domain_count ());
      en_ts = Unix.gettimeofday ();
    }

  let entry_json e =
    Json.Obj
      [
        ("bench", Json.String e.en_bench);
        ("engine", Json.String e.en_engine);
        ("digest", Json.String e.en_digest);
        ("value", Json.Float e.en_value);
        ("unit", Json.String e.en_unit);
        ("commit", Json.String e.en_commit);
        ("host", Json.String e.en_host);
        ("domains", Json.Int e.en_domains);
        ("ts", Json.Float e.en_ts);
      ]

  let entry_of_json j =
    let str k =
      match Json.member k j with Some (Json.String s) -> Some s | _ -> None
    in
    let num k =
      match Json.member k j with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    match (str "bench", str "engine", num "value") with
    | Some bench, Some engine, Some value ->
      Ok
        {
          en_bench = bench;
          en_engine = engine;
          en_digest = Option.value ~default:"" (str "digest");
          en_value = value;
          en_unit = Option.value ~default:"" (str "unit");
          en_commit = Option.value ~default:"" (str "commit");
          en_host = Option.value ~default:"" (str "host");
          en_domains =
            (match Json.member "domains" j with
            | Some (Json.Int d) -> d
            | _ -> 0);
          en_ts = Option.value ~default:0. (num "ts");
        }
    | _ -> Error "ledger entry needs string bench/engine and numeric value"

  (* Appends serialize on one mutex inside the process and publish via
     tmp+rename, so concurrent domains can record results while a reader
     (the report, the gate) never observes a torn line. *)
  let lock = Mutex.create ()

  let append ?path e =
    let path = match path with Some p -> p | None -> default_path () in
    Mutex.protect lock (fun () ->
        let existing =
          if Sys.file_exists path then read_whole_file path else ""
        in
        let line = Json.to_string (entry_json e) ^ "\n" in
        write_file_atomic ~path (existing ^ line))

  let load ?path () =
    let path = match path with Some p -> p | None -> default_path () in
    if not (Sys.file_exists path) then Ok []
    else begin
      let lines = String.split_on_char '\n' (read_whole_file path) in
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go (lineno + 1) acc rest
          else (
            match Json.of_string line with
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
            | Ok j -> (
              match entry_of_json j with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
              | Ok entry -> go (lineno + 1) (entry :: acc) rest))
      in
      go 1 [] lines
    end

  let median = function
    | [] -> Float.nan
    | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

  (* A series is one measured quantity over time.  The key is
     (bench, engine, digest) — deliberately {e not} the hostname: CI
     runners get a fresh hostname every run, and a baseline that never
     matches is no baseline at all.  Cross-machine noise is what the
     tolerance absorbs. *)
  let series_of entries =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun e ->
        let k = (e.en_bench, e.en_engine, e.en_digest) in
        match Hashtbl.find_opt tbl k with
        | Some r -> r := e :: !r
        | None ->
          Hashtbl.add tbl k (ref [ e ]);
          order := k :: !order)
      entries;
    List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

  type status = Fresh | Steady | Improved | Regressed | Collapsed

  let status_label = function
    | Fresh -> "fresh"
    | Steady -> "steady"
    | Improved -> "improved"
    | Regressed -> "regressed"
    | Collapsed -> "collapsed"

  type verdict = {
    v_bench : string;
    v_engine : string;
    v_digest : string;
    v_latest : entry;
    v_baseline : float;  (* nan when Fresh *)
    v_window : int;  (* prior entries behind the baseline *)
    v_delta : float;  (* (latest - baseline) / baseline; nan when Fresh *)
    v_status : status;
  }

  let verdicts ?(window = 5) ?(tolerance = 0.2) ?(hard_tolerance = 0.5) entries
      =
    series_of entries
    |> List.map (fun ((bench, engine, digest), history) ->
           match List.rev history with
           | [] -> assert false (* series_of never yields an empty series *)
           | latest :: prior_rev ->
             let prior = List.filteri (fun i _ -> i < window) prior_rev in
             let n = List.length prior in
             let baseline, delta, status =
               if n = 0 then (Float.nan, Float.nan, Fresh)
               else begin
                 let base = median (List.map (fun e -> e.en_value) prior) in
                 let delta = (latest.en_value -. base) /. base in
                 let delta = if Float.is_finite delta then delta else 0. in
                 let status =
                   if delta <= -.hard_tolerance then Collapsed
                   else if delta <= -.tolerance then Regressed
                   else if delta >= tolerance then Improved
                   else Steady
                 in
                 (base, delta, status)
               end
             in
             {
               v_bench = bench;
               v_engine = engine;
               v_digest = digest;
               v_latest = latest;
               v_baseline = baseline;
               v_window = n;
               v_delta = delta;
               v_status = status;
             })

  let status_severity = function
    | Collapsed -> 4
    | Regressed -> 3
    | Steady -> 2
    | Improved -> 1
    | Fresh -> 0

  let worst_status vs =
    List.fold_left
      (fun acc v ->
        if status_severity v.v_status > status_severity acc then v.v_status
        else acc)
      Fresh vs

  let opt_float f = if Float.is_nan f then Json.Null else Json.Float f

  let verdict_json v =
    Json.Obj
      [
        ("bench", Json.String v.v_bench);
        ("engine", Json.String v.v_engine);
        ("digest", Json.String v.v_digest);
        ("value", Json.Float v.v_latest.en_value);
        ("unit", Json.String v.v_latest.en_unit);
        ("baseline", opt_float v.v_baseline);
        ("window", Json.Int v.v_window);
        ("delta", opt_float v.v_delta);
        ("status", Json.String (status_label v.v_status));
      ]

  let verdicts_json vs =
    Json.Obj
      [
        ("worst", Json.String (status_label (worst_status vs)));
        ("verdicts", Json.List (List.map verdict_json vs));
      ]

  (* --- rendering: sparklines, terminal trends, static HTML --- *)

  let spark_blocks = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

  let sparkline ?(width = 16) values =
    let n = List.length values in
    let values =
      if n <= width then values else List.filteri (fun i _ -> i >= n - width) values
    in
    match values with
    | [] -> ""
    | vs ->
      let lo = List.fold_left Float.min infinity vs in
      let hi = List.fold_left Float.max neg_infinity vs in
      let span = hi -. lo in
      String.concat ""
        (List.map
           (fun v ->
             let idx =
               if span <= 0. then 3
               else int_of_float (Float.round ((v -. lo) /. span *. 7.))
             in
             spark_blocks.(max 0 (min 7 idx)))
           vs)

  let iso8601 ts =
    if ts <= 0. then "-"
    else begin
      let tm = Unix.gmtime ts in
      Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec
    end

  let pp_trends ?(window = 5) ?(tolerance = 0.2) ?(hard_tolerance = 0.5) ppf
      entries =
    let series = series_of entries in
    let vs = verdicts ~window ~tolerance ~hard_tolerance entries in
    Format.fprintf ppf "@[<v>%-28s %-26s %4s %12s %12s %8s  %-16s %s@,"
      "bench" "engine" "n" "latest" "baseline" "delta" "trend" "status";
    List.iter2
      (fun ((_, _, _), history) v ->
        let values = List.map (fun e -> e.en_value) history in
        let delta_s =
          if Float.is_nan v.v_delta then "-"
          else Printf.sprintf "%+.1f%%" (v.v_delta *. 100.)
        in
        let base_s =
          if Float.is_nan v.v_baseline then "-"
          else Printf.sprintf "%.4g" v.v_baseline
        in
        Format.fprintf ppf "%-28s %-26s %4d %12.4g %12s %8s  %-16s %s@,"
          v.v_bench v.v_engine (List.length history) v.v_latest.en_value base_s
          delta_s (sparkline values)
          (status_label v.v_status))
      series vs;
    Format.fprintf ppf "@]"

  let html_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '"' -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* One self-contained page: no scripts, no external assets, inline
     CSS only — it must open from a CI artifact zip with file://. *)
  let html_page ?(title = "ocapi perf report") ?(events = []) ?(window = 5)
      ?(tolerance = 0.2) ?(hard_tolerance = 0.5) entries =
    let b = Buffer.create 8192 in
    let add = Buffer.add_string b in
    let series = series_of entries in
    let vs = verdicts ~window ~tolerance ~hard_tolerance entries in
    add "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>";
    add (html_escape title);
    add "</title><style>\n";
    add
      "body{font-family:system-ui,sans-serif;margin:2em;color:#222}\n\
       table{border-collapse:collapse;margin:1em 0}\n\
       th,td{border:1px solid #ccc;padding:0.3em 0.7em;text-align:left;\
       font-variant-numeric:tabular-nums}\n\
       th{background:#f0f0f0}\n\
       .spark{font-family:monospace;font-size:1.1em;color:#36c}\n\
       .fresh{color:#888}.steady{color:#222}.improved{color:#071}\n\
       .regressed{color:#b60;font-weight:bold}\n\
       .collapsed{color:#c00;font-weight:bold}\n\
       .meta{color:#666;font-size:0.9em}\n";
    add "</style></head><body>\n<h1>";
    add (html_escape title);
    add "</h1>\n";
    add
      (Printf.sprintf "<p class=\"meta\">%d ledger entries, %d series</p>\n"
         (List.length entries) (List.length series));
    add
      "<table>\n<tr><th>bench</th><th>engine</th><th>n</th><th>latest</th>\
       <th>baseline</th><th>delta</th><th>trend</th><th>status</th></tr>\n";
    List.iter2
      (fun ((_, _, _), history) v ->
        let values = List.map (fun e -> e.en_value) history in
        add "<tr><td>";
        add (html_escape v.v_bench);
        add "</td><td>";
        add (html_escape v.v_engine);
        add
          (Printf.sprintf "</td><td>%d</td><td>%.4g %s</td>"
             (List.length history) v.v_latest.en_value
             (html_escape v.v_latest.en_unit));
        add
          (if Float.is_nan v.v_baseline then "<td>-</td>"
           else Printf.sprintf "<td>%.4g</td>" v.v_baseline);
        add
          (if Float.is_nan v.v_delta then "<td>-</td>"
           else Printf.sprintf "<td>%+.1f%%</td>" (v.v_delta *. 100.));
        add "<td class=\"spark\">";
        add (sparkline ~width:24 values);
        add "</td><td class=\"";
        add (status_label v.v_status);
        add "\">";
        add (status_label v.v_status);
        add "</td></tr>\n")
      series vs;
    add "</table>\n";
    List.iter2
      (fun ((_, _, digest), history) v ->
        add "<h2>";
        add (html_escape (v.v_bench ^ " / " ^ v.v_engine));
        add "</h2>\n<p class=\"meta\">digest ";
        add (html_escape (if digest = "" then "-" else digest));
        add "</p>\n<table>\n<tr><th>when (UTC)</th><th>commit</th>\
             <th>host</th><th>domains</th><th>value</th></tr>\n";
        let rows =
          let n = List.length history in
          if n <= 10 then history
          else List.filteri (fun i _ -> i >= n - 10) history
        in
        List.iter
          (fun e ->
            add
              (Printf.sprintf
                 "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td>\
                  <td>%.6g %s</td></tr>\n"
                 (html_escape (iso8601 e.en_ts))
                 (html_escape e.en_commit) (html_escape e.en_host) e.en_domains
                 e.en_value (html_escape e.en_unit)))
          rows;
        add "</table>\n")
      series vs;
    (match events with
    | [] -> ()
    | evs ->
      add "<h2>Latest event log</h2>\n";
      let kind_of j =
        match Json.member "event" j with
        | Some (Json.String k) -> k
        | _ -> "?"
      in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun j ->
          let k = kind_of j in
          Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
        evs;
      add "<p class=\"meta\">";
      add
        (html_escape
           (String.concat ", "
              (Hashtbl.fold (fun k n acc -> Printf.sprintf "%s: %d" k n :: acc) counts []
              |> List.sort String.compare)));
      add "</p>\n<table>\n<tr><th>seq</th><th>event</th><th>corr</th>\
           <th>detail</th></tr>\n";
      let shown =
        let n = List.length evs in
        if n <= 200 then evs else List.filteri (fun i _ -> i < 200) evs
      in
      List.iter
        (fun j ->
          let seq =
            match Json.member "seq" j with Some (Json.Int s) -> s | _ -> 0
          in
          let corr =
            match Json.member "corr" j with
            | Some (Json.String c) -> c
            | _ -> ""
          in
          let detail =
            match j with
            | Json.Obj fields ->
              Json.to_string
                (Json.Obj
                   (List.filter
                      (fun (k, _) ->
                        k <> "seq" && k <> "event" && k <> "corr" && k <> "ts")
                      fields))
            | _ -> ""
          in
          add
            (Printf.sprintf
               "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n" seq
               (html_escape (kind_of j)) (html_escape corr)
               (html_escape detail)))
        shown);
    add "</body></html>\n";
    Buffer.contents b
end
