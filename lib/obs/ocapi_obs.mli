(** Simulation telemetry: a process-wide registry of counters, gauges
    and histograms plus a span tracer exporting Chrome trace-event JSON.

    The paper's Table 1 says {e how fast} each simulation engine is;
    this module is the instrument that says {e why}.  Every engine of
    the environment (the three-phase scheduler, the compiled closure
    program, the event-driven RT kernel, the gate-level simulator) and
    the synthesis passes report into the same registry, and timed spans
    accumulate into a trace that Perfetto or [chrome://tracing] opens
    directly.

    Telemetry is {b disabled by default} and the disabled path is cheap
    enough to leave compiled into the hot loops: one mutable-bool read
    per instrumentation site.  Nothing is recorded, and no time source
    is consulted, until {!enable} is called. *)

(** {1 Minimal JSON} *)

(** A tiny JSON tree and serializer, so telemetry (and the benchmark
    harness) can emit well-formed JSON without an external dependency.
    Serialization escapes control characters, quotes and backslashes;
    non-finite floats print as [null]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_buffer : Buffer.t -> t -> unit
  val to_string : t -> string

  (** [of_string s] parses strict JSON (the subset {!to_string} emits:
      no comments, no trailing commas; numbers without [.], [e] or [E]
      that fit an OCaml [int] parse as [Int], everything else as
      [Float]).  Returns [Error msg] with the failing offset on
      malformed input, on objects with duplicate keys, and on input
      nested deeper than 255 containers (a stack-overflow guard).  This
      is the parser behind the batch job manifests, the perf ledger and
      the event log. *)
  val of_string : string -> (t, string) result

  (** [member key j] is field [key] of object [j] ([None] when absent
      or [j] is not an object). *)
  val member : string -> t -> t option
end

(** {1 Master switch} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** {1 Metrics}

    Metrics are identified by name in one registry {e per domain}
    (domain-local storage): the hot instrumentation paths stay
    lock-free, and a single-domain program sees exactly the historical
    process-wide behaviour.  A parallel campaign worker accumulates
    into its own domain's registry; the campaign runner merges each
    worker's {!export_domain} back into the coordinating domain with
    {!absorb_domain} at join (see [Ocapi_parallel]).

    The by-name operations below look the metric up (creating it on
    first use) and are intended for enabled-path instrumentation; they
    are no-ops while telemetry is disabled. *)

(** [count ?n name] adds [n] (default 1) to the counter [name]. *)
val count : ?n:int -> string -> unit

(** [set_gauge name v] sets the gauge [name] to [v]. *)
val set_gauge : string -> float -> unit

(** [max_gauge name v] raises the gauge [name] to [v] if [v] is larger
    (a high-water mark). *)
val max_gauge : string -> float -> unit

(** [observe ?buckets name v] records [v] into the histogram [name].
    [buckets] (ascending upper bounds; a final overflow bucket is
    implicit) is honoured only when the histogram is first created;
    the default is powers of two from 1 to 2{^20}. *)
val observe : ?buckets:float array -> string -> float -> unit

(** A histogram snapshot: [hs_buckets] pairs each upper bound with its
    cumulative-free (per-bucket) count; the final pair has bound
    [infinity].  [hs_min]/[hs_max] are [infinity]/[neg_infinity] when
    empty. *)
type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

(** [hist_quantile hs q] estimates the [q]-quantile ([0.0 .. 1.0]) of a
    histogram snapshot: the observation is located in its bucket by
    cumulative count and interpolated linearly inside it, clamped to
    the recorded [hs_min]/[hs_max].  [nan] on an empty histogram.  The
    batch bench derives its queue-latency p50/p95 from this. *)
val hist_quantile : hist_snapshot -> float -> float

(** All registered metrics, sorted by name. *)
val snapshot : unit -> (string * value) list

val value_json : value -> Json.t

(** The whole registry as a JSON object keyed by metric name. *)
val metrics_json : unit -> Json.t

(** Drop every registered metric. *)
val reset_metrics : unit -> unit

(** {1 Span tracing}

    Spans become Chrome trace-event ["ph":"X"] (complete) events.
    Timestamps are microseconds since the last {!clear_trace} (or
    {!reset}).  The buffer is bounded; events past the cap are counted
    in {!dropped_events} instead of recorded. *)

(** [span_begin ()] is the current time in microseconds, or [nan] while
    telemetry is disabled. *)
val span_begin : unit -> float

(** [span_end ?cat ?args name t0] records the span [name] begun at
    [t0].  A no-op when [t0] is [nan] or telemetry has been disabled
    meanwhile. *)
val span_end : ?cat:string -> ?args:(string * Json.t) list -> string -> float -> unit

(** [with_span ?cat ?args name f] runs [f ()] inside a span. *)
val with_span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** An instant (["ph":"i"]) event. *)
val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit

val event_count : unit -> int
val dropped_events : unit -> int
val clear_trace : unit -> unit

(** {2 Span sampling}

    [set_span_sampling n] keeps one complete-span event in [n], counted
    {e per span name} — so a long campaign's millions of per-cycle spans
    are thinned without ever dropping its few enclosing campaign-level
    spans.  [n = 1] (the default) records everything.  The factor is
    process-wide and intentionally {e not} cleared by {!reset}: a
    campaign configures it once.  Per-name occurrence counters restart
    at {!clear_trace}, so every fresh trace begins at sampling phase 0
    (first occurrence of each name is always kept).
    @raise Invalid_argument if [n < 1]. *)
val set_span_sampling : int -> unit

val span_sampling_factor : unit -> int

(** Spans suppressed by sampling (this domain, since the last
    {!clear_trace}) — distinct from {!dropped_events}, which counts
    buffer-capacity drops. *)
val sampled_out_spans : unit -> int

(** The trace as a Chrome trace-event JSON object
    ([{"traceEvents": [...], ...}]) — open it in Perfetto or
    [chrome://tracing]. *)
val trace_json : unit -> string

val write_trace : path:string -> unit

(** {1 Cross-domain merge}

    Metrics and trace events live in domain-local storage, so a worker
    domain spawned while telemetry is enabled records into buffers of
    its own.  Before such a worker terminates it calls
    {!export_domain}; the coordinating domain then feeds every export
    through {!absorb_domain} {e after joining} the workers.  Merging is
    deterministic given a fixed absorption order: counters and
    histograms add, gauges keep the maximum (the only associative,
    commutative merge available without an ordering between domains),
    and trace events append, keeping their producing domain as the
    Chrome trace [tid] so each worker renders as its own track. *)

(** A domain's telemetry, packaged for transfer to the joining domain. *)
type domain_export

(** Snapshot the {e calling} domain's metrics and trace buffer. *)
val export_domain : unit -> domain_export

(** Merge a worker's export into the {e calling} domain's registry and
    trace buffer (counters/histograms add, gauges max, events append). *)
val absorb_domain : domain_export -> unit

(** {1 Reports} *)

(** [reset ()] = {!disable} + {!reset_metrics} + {!clear_trace}: back to
    the pristine (disabled, empty) state. *)
val reset : unit -> unit

type report = {
  rp_label : string;
  rp_seconds : float;  (** wall-clock of the measured section *)
  rp_metrics : (string * value) list;
  rp_events : int;  (** trace events recorded (after drops) *)
}

(** [run_with_telemetry ~label f] resets the registry and the trace,
    enables telemetry, runs [f], snapshots, and restores the previous
    enabled state.  The trace buffer is left intact so the caller can
    {!write_trace} afterwards. *)
val run_with_telemetry : label:string -> (unit -> 'a) -> 'a * report

val report_json : report -> Json.t
val pp_report : Format.formatter -> report -> unit

(** {1 Structured event log}

    Job-lifecycle events ([job_submitted], [job_started],
    [job_completed], [job_deduped], [job_failed], [job_cancelled], the
    campaign-service resilience markers
    [job_rejected]/[worker_crashed]/[job_retried], and the engine-level
    [run_started]/[run_finished]) recorded into one
    process-wide buffer, independent of the metric registry: a campaign
    emits a handful of events per job, so a single mutex-guarded list
    keeps a total order across domains without touching the lock-free
    hot paths.

    Every event may carry a {e correlation id} — [Ocapi_batch] derives
    it from the job's dedup key and [Flow.simulate] tags its trace span
    with the same id, so an event log and a Perfetto trace join per
    job. *)
module Events : sig
  type event = {
    e_seq : int;  (** emission order, 1-based *)
    e_ts : float;  (** unix seconds at emission *)
    e_kind : string;
    e_corr : string;  (** correlation id; [""] when uncorrelated *)
    e_fields : (string * Json.t) list;
  }

  (** The event log has its own switch (default off) so batch campaigns
      can record lifecycle events without enabling full telemetry. *)
  val enabled : unit -> bool

  val set_enabled : bool -> unit

  (** [emit ?corr ?fields kind] appends an event; a no-op while the log
      is disabled. *)
  val emit : ?corr:string -> ?fields:(string * Json.t) list -> string -> unit

  (** Recorded events in emission order. *)
  val events : unit -> event list

  val clear : unit -> unit

  (** Canonical form: wall-clock stamps dropped, events sorted by
      (correlation id, lifecycle rank, rendered fields), [e_seq]
      renumbered — byte-identical however the domain interleaving went.
      The determinism gate compares canonical event logs of serial and
      parallel runs. *)
  val canonicalize : event list -> event list

  (** [to_json ~ts e] renders one event ([ts:false] omits the
      wall-clock field, as canonical output must). *)
  val to_json : ?ts:bool -> event -> Json.t

  (** [write ?canonical ~path ()] writes the buffered events as JSONL
      via atomic tmp+rename.  [canonical] (default [true]) applies
      {!canonicalize} first. *)
  val write : ?canonical:bool -> path:string -> unit -> unit

  (** Parse an event-log JSONL file back into JSON lines.  A missing
      file is [Ok []]. *)
  val load : string -> (Json.t list, string) result
end

(** {1 Perf ledger}

    An append-only JSONL time series of benchmark results: every bench
    run appends one line per measured rate, keyed by bench name, engine,
    design digest, git commit, hostname, domain count and timestamp.
    The regression gate ([scripts/perf_gate.sh] via [ocapi report
    --gate]) compares each series' newest entry against the median of
    its recent history. *)
module Ledger : sig
  type entry = {
    en_bench : string;
    en_engine : string;
    en_digest : string;  (** [Cycle_system.digest]; [""] when n/a *)
    en_value : float;  (** a rate — bigger is better *)
    en_unit : string;  (** e.g. ["cycles/s"], ["runs/s"], ["jobs/s"] *)
    en_commit : string;
    en_host : string;
    en_domains : int;
    en_ts : float;  (** unix seconds *)
  }

  (** [$OCAPI_LEDGER] when set, else ["PERF_LEDGER.jsonl"]. *)
  val default_path : unit -> string

  (** [entry ~bench ~engine v] stamps a new entry with the current
      commit (read from [.git/HEAD], no subprocess), hostname, domain
      count ({!Domain.recommended_domain_count} unless [domains] is
      given) and time. *)
  val entry :
    ?digest:string ->
    ?unit_:string ->
    ?domains:int ->
    bench:string ->
    engine:string ->
    float ->
    entry

  val entry_json : entry -> Json.t
  val entry_of_json : Json.t -> (entry, string) result

  (** Append one line, atomically (tmp+rename, serialized on a mutex so
      concurrent domains interleave whole lines, never bytes). *)
  val append : ?path:string -> entry -> unit

  (** All entries in file order (chronological).  A missing file is
      [Ok []]; blank lines and [#] comments are skipped. *)
  val load : ?path:string -> unit -> (entry list, string) result

  val median : float list -> float

  (** Entries grouped into series by (bench, engine, digest) — hostname
      deliberately excluded so CI runners with per-run hostnames still
      accumulate a baseline — in first-appearance order, each series in
      file order. *)
  val series_of : entry list -> ((string * string * string) * entry list) list

  type status =
    | Fresh  (** no prior same-series entries *)
    | Steady
    | Improved  (** latest at least [tolerance] above baseline *)
    | Regressed  (** latest at least [tolerance] below baseline *)
    | Collapsed  (** latest at least [hard_tolerance] below baseline *)

  val status_label : status -> string

  type verdict = {
    v_bench : string;
    v_engine : string;
    v_digest : string;
    v_latest : entry;
    v_baseline : float;  (** median of recent history; [nan] when Fresh *)
    v_window : int;  (** prior entries behind the baseline *)
    v_delta : float;  (** (latest - baseline) / baseline; [nan] when Fresh *)
    v_status : status;
  }

  (** One verdict per series: the newest entry against the median of up
      to [window] (default 5) immediately preceding same-series entries.
      [tolerance] (default 0.2) bounds [Steady]; [hard_tolerance]
      (default 0.5) marks a throughput collapse. *)
  val verdicts :
    ?window:int ->
    ?tolerance:float ->
    ?hard_tolerance:float ->
    entry list ->
    verdict list

  val worst_status : verdict list -> status
  val verdict_json : verdict -> Json.t

  (** [{"worst": ..., "verdicts": [...]}] — the machine-readable gate
      output. *)
  val verdicts_json : verdict list -> Json.t

  (** Unicode block sparkline of the last [width] (default 16) values. *)
  val sparkline : ?width:int -> float list -> string

  (** Terminal trend table: one row per series with latest value,
      baseline, delta and sparkline. *)
  val pp_trends :
    ?window:int ->
    ?tolerance:float ->
    ?hard_tolerance:float ->
    Format.formatter ->
    entry list ->
    unit

  (** A self-contained static HTML page (inline CSS, no scripts, no
      external assets): per-series trend table with sparklines, recent
      history, and an optional event-log section. *)
  val html_page :
    ?title:string ->
    ?events:Json.t list ->
    ?window:int ->
    ?tolerance:float ->
    ?hard_tolerance:float ->
    entry list ->
    string
end
