(** A batch campaign service: many simulation and fault-campaign
    requests, one bounded worker pool, async artifact writing.

    The interactive flow runs one request at a time; a verification
    campaign over a design is dozens to thousands of them — simulate
    this configuration, sweep the engines, run the SEU and stuck-at
    campaigns — and production use wants them {e queued}, not typed.
    This service is that queue made first-class:

    - {b Jobs are data} ({!job}): a simulate request, an SEU or
      stuck-at campaign, an engine-disagreement sweep, or a custom
      thunk, referencing designs by registry name ({!register_design}).
    - {b Scheduling} is priority classes ({!priority}) with strict
      FIFO order inside each class, served by a bounded
      {!Ocapi_parallel.Service} domain pool ([domains] at {!create}).
    - {b Deduplication}: every job is fingerprinted through
      {!Flow.Cache.key_of} (design digest, stimuli, parameters, seed).
      A submission whose key matches an in-flight or completed job
      attaches to that execution instead of running again — N
      identical submissions cost one execution, and every attached
      handle resolves with the shared result (flagged [oc_dedup]).
    - {b Timeouts and cancellation} are cooperative: the running job's
      [progress] hook (threaded down to the engine stepping loop)
      raises a structured {!Ocapi_error.t} with code [Timeout] or
      [Cancelled]; queued jobs cancel or time out without running at
      all.  Nothing hangs and nothing is killed mid-effect.
    - {b Artifacts} (the canonical JSON report of each completed
      execution) are handed to a dedicated writer thread and written
      asynchronously; {!flush} and {!shutdown} block until the files
      are on disk.

    Determinism: an artifact contains only the job's canonical report —
    the same bytes the CLI's [--json] renderings print — never wall
    times or scheduling accidents, so a manifest run with [domains=8]
    writes bit-identical artifacts to a serial run.  Timing lives in
    the per-handle {!outcome} and in telemetry ([batch.queue.wait_us],
    [batch.queue.depth], [batch.job.*] counters) only. *)

(** {1 Design registry}

    Jobs name designs; the registry maps names to builders.  A builder
    must be deterministic — the job key fingerprints the system it
    returns, and dedup across submissions relies on two builds hashing
    alike. *)

val register_design :
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  name:string ->
  (unit -> Cycle_system.t) ->
  unit

val registered_designs : unit -> string list

(** {1 Jobs} *)

type priority = High | Normal | Low

type job =
  | Simulate of {
      sim_design : string;
      sim_engine : string;  (** engine registry name or alias *)
      sim_cycles : int;
      sim_seed : int;
    }
  | Seu of {
      seu_design : string;
      seu_engine : string;
      seu_runs : int;
      seu_cycles : int;
      seu_seed : int;
    }
  | Stuck_at of {
      sa_design : string;
      sa_cycles : int;
      sa_seed : int;
      sa_max_faults : int option;
    }
  | Engine_sweep of { sw_design : string; sw_cycles : int }
  | Fuzz of {
      fu_seed : int;  (** campaign seed; per-design seeds derive from it *)
      fu_count : int;  (** fresh generated designs to check *)
      fu_engines : string list option;
          (** engine roster ([None] = {!Ocapi_diff.default_engines}) *)
      fu_deep : bool;  (** also run SEU / stuck-at cross-checks *)
      fu_shrink : bool;  (** shrink failing designs to reproducers *)
    }
      (** A differential fuzz campaign ({!Ocapi_diff.fuzz}).  Unlike the
          other kinds it references no registered design — the campaign
          generates its own — so its dedup key is its parameter tuple
          and its artifact is the canonical fuzz report. *)
  | Custom of {
      cu_tag : string;
          (** dedup key: identical tags coalesce to one execution *)
      cu_body : progress:(unit -> unit) -> Ocapi_obs.Json.t;
          (** runs on a worker domain; must call [progress] at
              reasonable intervals — it raises to signal timeout or
              cancellation *)
    }

(** How a handle resolved.  [oc_json] is the canonical report (see the
    determinism note above); [oc_dedup] is set on every handle that was
    served by another submission's execution; [oc_queue_seconds] is
    submit-to-start wait ([0.] when served from the completed table);
    [oc_seconds] the execution wall time. *)
type outcome =
  | Completed of {
      oc_json : Ocapi_obs.Json.t;
      oc_seconds : float;
      oc_queue_seconds : float;
      oc_dedup : bool;
    }
  | Failed of Ocapi_error.t
      (** includes timeouts: [e_code = Timeout], raised cooperatively *)
  | Cancelled

type status = Queued | Running | Done of outcome

(** {1 The service} *)

type t
type handle

(** Lifecycle events.  [ev_corr] is the job's correlation id — a short
    digest of its dedup key, so it is identical for deduplicated
    submissions of the same work, stable across serial and parallel
    runs, and matches the [corr] on the {!Ocapi_obs.Events} lines and
    the [Flow.simulate] trace span of the execution. *)
type event =
  | Ev_submitted of { ev_label : string; ev_corr : string; ev_dedup : bool }
  | Ev_started of { ev_label : string; ev_corr : string }
  | Ev_finished of { ev_label : string; ev_corr : string; ev_outcome : outcome }

(** Histogram buckets used for the [batch.queue.wait_us] metric: a
    1-2-5 decade ladder from 1 µs to 10{^8} µs.  Exposed so callers
    deriving quantiles (the batch bench) can reuse them instead of the
    far coarser {!Ocapi_obs.observe} defaults. *)
val queue_wait_buckets : float array

(** [create ()] starts the worker pool (and, with [artifact_dir], the
    async writer thread; the directory is created if missing).
    [on_event] observes the job lifecycle — it is called from worker
    domains, outside the service lock, and must be thread-safe.
    @raise Invalid_argument on [domains < 1]. *)
val create :
  ?domains:int ->
  ?artifact_dir:string ->
  ?on_event:(event -> unit) ->
  unit ->
  t

(** [submit t job] enqueues [job] (default priority [Normal]) and
    returns its handle.  [timeout] is a wall-clock budget in seconds,
    measured from submission; when it expires the job fails with code
    [Timeout] whether still queued or already running.  [label] names
    the job in events and artifacts (default: derived from the job).

    The job's design is built and fingerprinted in the calling domain;
    on a key match with in-flight or completed work the submission
    attaches to it instead of enqueuing (see the module preamble).

    @raise Ocapi_error.Error with code [Unsupported] on an unknown
    design or engine name.
    @raise Invalid_argument after {!shutdown}, or on a non-positive
    [cycles]/[runs] parameter or non-positive [timeout]. *)
val submit :
  ?priority:priority -> ?timeout:float -> ?label:string -> t -> job -> handle

(** [await t h] blocks until [h] resolves.  Total: every execution
    ends in an outcome (worker exceptions are classified through
    {!Flow.classify_exn} into [Failed]). *)
val await : t -> handle -> outcome

val status : t -> handle -> status

(** [cancel t h] withdraws this handle's interest; [false] if [h] was
    already cancelled or resolved.  The underlying execution is
    cancelled only when no other live handle shares it: a queued
    execution resolves [Cancelled] without running, a running one is
    asked to stop at its next [progress] call.  Other handles attached
    to the same execution are unaffected. *)
val cancel : t -> handle -> bool

val label_of : handle -> string

(** The artifact file this handle's execution writes on completion
    ([None] without an [artifact_dir] or for a completed-table hit).
    The file exists only after the outcome is [Completed] and a
    {!flush} (or {!shutdown}). *)
val artifact_path : t -> handle -> string option

(** Block until every artifact handed to the writer so far is on
    disk. *)
val flush : t -> unit

(** Drain: wait for all queued and running jobs, stop the workers,
    merge their telemetry, flush and stop the writer.  Idempotent.
    Further {!submit}s raise; {!await}/{!status} keep answering.
    @raise Ocapi_parallel.Worker_error if a worker died outside a job
    body (a service bug, not a job failure). *)
val shutdown : t -> unit

(** {1 Statistics} *)

type stats = {
  bs_submitted : int;  (** submissions, including deduplicated ones *)
  bs_deduped : int;
      (** submissions served by an in-flight or completed execution *)
  bs_executed : int;  (** executions actually run on a worker *)
  bs_completed : int;  (** executions resolved [Completed] *)
  bs_failed : int;  (** executions resolved [Failed] (incl. timeouts) *)
  bs_timed_out : int;  (** subset of [bs_failed] with code [Timeout] *)
  bs_cancelled : int;  (** executions resolved [Cancelled] *)
  bs_artifacts_written : int;
  bs_dedup_hit_rate : float;  (** [bs_deduped / bs_submitted]; [0.] empty *)
}

val stats : t -> stats

(** {1 Manifests}

    The CLI's batch mode reads jobs from a JSONL manifest: one JSON
    object per line, e.g.

    {v
{"kind": "seu", "design": "hcor", "engine": "compiled",
 "runs": 200, "cycles": 48, "seed": 1, "priority": "high"}
    v}

    Fields: [kind] (["simulate"] | ["seu"] | ["stuck-at"] |
    ["engine-sweep"] | ["fuzz"]) is required, and so is [design] for
    every kind but ["fuzz"] (a fuzz campaign generates its own
    designs); [engine], [cycles], [runs], [seed], [max_faults],
    [priority] (["high"] | ["normal"] | ["low"]), [timeout] (seconds)
    and [label] are optional with the same defaults as the CLI.  A
    ["fuzz"] job additionally takes [count] (default 25), [engines] (a
    JSON list of engine names), [deep] and [shrink] (booleans).
    [Custom] jobs carry closures and have no manifest form. *)

type request = {
  rq_job : job;
  rq_priority : priority;
  rq_timeout : float option;
  rq_label : string option;
}

(** One manifest line to a request; [Error] carries a message naming
    the offending field.  Design and engine names are resolved at
    {!submit}, not here. *)
val request_of_json : Ocapi_obs.Json.t -> (request, string) result

val request_of_line : string -> (request, string) result

(** [read_manifest path] parses a JSONL file, skipping blank lines and
    [#] comments.  [Error] messages carry the 1-based line number. *)
val read_manifest : string -> (request list, string) result

val submit_request : t -> request -> handle

(** {1 Preparation for external executors}

    The campaign service ([Ocapi_service]) runs jobs in {e worker
    processes} rather than on this module's domain pool, but shares the
    job vocabulary: the same manifests, the same dedup fingerprints,
    the same canonical artifact bytes.  [prepare_request] is that
    shared front half of {!submit}: it resolves the design and engine,
    builds and fingerprints the system (so the caller owns it from then
    on), and returns the job's identity plus the closure that executes
    it. *)

type prepared = {
  pr_key : string;  (** the {!Flow.Cache.key_of} dedup fingerprint *)
  pr_corr : string;  (** correlation id: short digest of [pr_key] *)
  pr_label : string;  (** display label (the request's, or derived) *)
  pr_artifact_file : string;
      (** artifact {e file name} (label slug + key digest), identical
          to the one {!submit} would write under its [artifact_dir] *)
  pr_run : progress:(unit -> unit) -> Ocapi_obs.Json.t;
      (** executes the job; [progress] is the cooperative stop hook *)
}

(** @raise Ocapi_error.Error with code [Unsupported] on an unknown
    design or engine name; [Invalid_argument] on non-positive
    parameters (the same validation as {!submit}). *)
val prepare_request : request -> prepared
