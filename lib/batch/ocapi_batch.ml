(* The batch campaign service: a priority job queue over a persistent
   [Ocapi_parallel.Service] domain pool, with job dedup through
   [Flow.Cache] digests and an async artifact writer thread.

   Concurrency map:
   - one service mutex guards the queues, the in-flight and completed
     tables, handle/exec state and the counters; [bt_work] wakes
     workers, [bt_done] wakes awaiters;
   - worker domains run [pull] and the job bodies; jobs touch only the
     system built for their own execution, so no design state crosses
     domains;
   - the writer is a systhread of the creating domain with its own
     mutex/condition; workers hand it (path, bytes) pairs and never
     block on the disk;
   - event callbacks fire outside every lock. *)

(* --- design registry ------------------------------------------------------ *)

type design_spec = {
  ds_build : unit -> Cycle_system.t;
  ds_macro : Dataflow.Kernel.t -> Synthesize.macro_spec option;
}

let designs : (string, design_spec) Hashtbl.t = Hashtbl.create 8
let designs_mutex = Mutex.create ()

let register_design ?(macro_of_kernel = fun _ -> None) ~name build =
  Mutex.protect designs_mutex (fun () ->
      Hashtbl.replace designs name { ds_build = build; ds_macro = macro_of_kernel })

let registered_designs () =
  Mutex.protect designs_mutex (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) designs []))

let find_design name =
  match Mutex.protect designs_mutex (fun () -> Hashtbl.find_opt designs name) with
  | Some d -> d
  | None ->
    Ocapi_error.fail Ocapi_error.Unsupported ~engine:"batch"
      "unknown design %S (registered: %s)" name
      (match registered_designs () with
      | [] -> "none"
      | ds -> String.concat ", " ds)

(* --- jobs ----------------------------------------------------------------- *)

type priority = High | Normal | Low

type job =
  | Simulate of {
      sim_design : string;
      sim_engine : string;
      sim_cycles : int;
      sim_seed : int;
    }
  | Seu of {
      seu_design : string;
      seu_engine : string;
      seu_runs : int;
      seu_cycles : int;
      seu_seed : int;
    }
  | Stuck_at of {
      sa_design : string;
      sa_cycles : int;
      sa_seed : int;
      sa_max_faults : int option;
    }
  | Engine_sweep of { sw_design : string; sw_cycles : int }
  | Fuzz of {
      fu_seed : int;
      fu_count : int;
      fu_engines : string list option;
      fu_deep : bool;
      fu_shrink : bool;
    }
  | Custom of {
      cu_tag : string;
      cu_body : progress:(unit -> unit) -> Ocapi_obs.Json.t;
    }

type outcome =
  | Completed of {
      oc_json : Ocapi_obs.Json.t;
      oc_seconds : float;
      oc_queue_seconds : float;
      oc_dedup : bool;
    }
  | Failed of Ocapi_error.t
  | Cancelled

type status = Queued | Running | Done of outcome

type event =
  | Ev_submitted of { ev_label : string; ev_corr : string; ev_dedup : bool }
  | Ev_started of { ev_label : string; ev_corr : string }
  | Ev_finished of { ev_label : string; ev_corr : string; ev_outcome : outcome }

(* The correlation id is a short digest of the dedup key: deterministic
   for a given job (identical across serial and parallel runs, and
   across processes), shared by every event of one execution, and passed
   to [Flow.simulate ~corr] so the run's trace span carries it too. *)
let corr_of_key key = String.sub (Digest.to_hex (Digest.string key)) 0 12

(* --- the async artifact writer -------------------------------------------- *)

(* A plain systhread: workers enqueue (path, bytes) and move on; the
   writer owns all file I/O.  Files land atomically (temp + rename) so
   a concurrent reader — the CI determinism gate diffing artifact
   trees — never sees a half-written report.  [wr_busy] covers the
   window between pop and rename, so [flush] really means "on disk". *)
type writer = {
  wr_mutex : Mutex.t;
  wr_cond : Condition.t;
  wr_queue : (string * string) Queue.t;
  mutable wr_busy : bool;
  mutable wr_stop : bool;
  mutable wr_written : int;
  mutable wr_thread : Thread.t option;
}

let writer_loop w () =
  let rec loop () =
    Mutex.lock w.wr_mutex;
    while Queue.is_empty w.wr_queue && not w.wr_stop do
      Condition.wait w.wr_cond w.wr_mutex
    done;
    if Queue.is_empty w.wr_queue then Mutex.unlock w.wr_mutex
    else begin
      let path, data = Queue.pop w.wr_queue in
      w.wr_busy <- true;
      Mutex.unlock w.wr_mutex;
      (try
         let tmp = path ^ ".tmp" in
         let oc = open_out_bin tmp in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc data);
         Sys.rename tmp path
       with Sys_error _ -> ());
      Mutex.lock w.wr_mutex;
      w.wr_busy <- false;
      w.wr_written <- w.wr_written + 1;
      Condition.broadcast w.wr_cond;
      Mutex.unlock w.wr_mutex;
      loop ()
    end
  in
  loop ()

let writer_start () =
  let w =
    {
      wr_mutex = Mutex.create ();
      wr_cond = Condition.create ();
      wr_queue = Queue.create ();
      wr_busy = false;
      wr_stop = false;
      wr_written = 0;
      wr_thread = None;
    }
  in
  w.wr_thread <- Some (Thread.create (writer_loop w) ());
  w

let writer_push w path data =
  Mutex.protect w.wr_mutex (fun () ->
      Queue.push (path, data) w.wr_queue;
      Condition.broadcast w.wr_cond)

let writer_flush w =
  Mutex.protect w.wr_mutex (fun () ->
      while not (Queue.is_empty w.wr_queue) || w.wr_busy do
        Condition.wait w.wr_cond w.wr_mutex
      done)

let writer_stop w =
  Mutex.protect w.wr_mutex (fun () ->
      w.wr_stop <- true;
      Condition.broadcast w.wr_cond);
  match w.wr_thread with
  | Some th ->
    Thread.join th;
    w.wr_thread <- None
  | None -> ()

(* --- service state -------------------------------------------------------- *)

type exec = {
  ex_key : string;
  ex_label : string;
  ex_run : progress:(unit -> unit) -> Ocapi_obs.Json.t;
  ex_priority : priority;
  ex_submitted : float;
  ex_artifact : string option;
  mutable ex_status : status;
  mutable ex_handles : handle list;
  mutable ex_queue_seconds : float;
}

and handle = {
  h_label : string;
  h_dedup : bool;
  h_deadline : float option;
  mutable h_cancelled : bool;
  h_kind : h_kind;
}

and h_kind = Attached of exec | Snapshot of outcome

type stats = {
  bs_submitted : int;
  bs_deduped : int;
  bs_executed : int;
  bs_completed : int;
  bs_failed : int;
  bs_timed_out : int;
  bs_cancelled : int;
  bs_artifacts_written : int;
  bs_dedup_hit_rate : float;
}

type t = {
  bt_mutex : Mutex.t;
  bt_work : Condition.t;
  bt_done : Condition.t;
  bt_queues : exec Queue.t array;  (* indexed High = 0, Normal = 1, Low = 2 *)
  bt_inflight : (string, exec) Hashtbl.t;
  bt_completed : (string, outcome) Hashtbl.t;
  bt_artifact_dir : string option;
  bt_writer : writer option;
  bt_on_event : (event -> unit) option;
  mutable bt_pool : Ocapi_parallel.Service.t option;
  mutable bt_shutdown : bool;
  mutable bt_submitted : int;
  mutable bt_deduped : int;
  mutable bt_executed : int;
  mutable bt_completed_n : int;
  mutable bt_failed : int;
  mutable bt_timed_out : int;
  mutable bt_cancelled : int;
}

let queue_index = function High -> 0 | Normal -> 1 | Low -> 2
let locked t f = Mutex.protect t.bt_mutex f

(* Mirror a lifecycle event into the structured event log (a no-op
   while [Ocapi_obs.Events] is disabled). *)
let event_to_log ev =
  let label l = ("label", Ocapi_obs.Json.String l) in
  match ev with
  | Ev_submitted { ev_label; ev_corr; ev_dedup } ->
    Ocapi_obs.Events.emit ~corr:ev_corr ~fields:[ label ev_label ]
      (if ev_dedup then "job_deduped" else "job_submitted")
  | Ev_started { ev_label; ev_corr } ->
    Ocapi_obs.Events.emit ~corr:ev_corr ~fields:[ label ev_label ]
      "job_started"
  | Ev_finished { ev_label; ev_corr; ev_outcome } ->
    let kind, extra =
      match ev_outcome with
      | Completed _ -> ("job_completed", [])
      | Failed d ->
        ( "job_failed",
          [
            ( "code",
              Ocapi_obs.Json.String (Ocapi_error.code_label d.Ocapi_error.e_code)
            );
          ] )
      | Cancelled -> ("job_cancelled", [])
    in
    Ocapi_obs.Events.emit ~corr:ev_corr ~fields:(label ev_label :: extra) kind

let fire t events =
  let events = List.rev events in
  if Ocapi_obs.Events.enabled () then List.iter event_to_log events;
  match t.bt_on_event with
  | None -> ()
  | Some f -> List.iter f events

let queued_depth t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.bt_queues

let live_interest exec =
  List.exists (fun h -> not h.h_cancelled) exec.ex_handles

(* The execution's effective deadline: the tightest among its live
   handles (a deduplicated submission may well be the impatient one). *)
let tightest_deadline exec =
  List.fold_left
    (fun acc h ->
      if h.h_cancelled then acc
      else
        match acc, h.h_deadline with
        | None, d | d, None -> d
        | Some a, Some b -> Some (Float.min a b))
    None exec.ex_handles

(* Resolve an execution.  Runs with the service lock held; returns the
   finish event for the caller to fire outside the lock.  Only
   [Completed] outcomes enter the completed (dedup) table and the
   artifact queue — failed, timed-out and cancelled jobs stay
   resubmittable. *)
let finish_exec t exec outcome =
  exec.ex_status <- Done outcome;
  Hashtbl.remove t.bt_inflight exec.ex_key;
  (match outcome with
  | Completed c ->
    t.bt_completed_n <- t.bt_completed_n + 1;
    Hashtbl.replace t.bt_completed exec.ex_key (Completed { c with oc_dedup = true; oc_queue_seconds = 0.0 });
    if Ocapi_obs.enabled () then Ocapi_obs.count "batch.job.completed";
    (match t.bt_writer, exec.ex_artifact with
    | Some w, Some path ->
      writer_push w path (Ocapi_obs.Json.to_string c.oc_json ^ "\n")
    | _ -> ())
  | Failed d ->
    t.bt_failed <- t.bt_failed + 1;
    if d.Ocapi_error.e_code = Ocapi_error.Timeout then begin
      t.bt_timed_out <- t.bt_timed_out + 1;
      if Ocapi_obs.enabled () then Ocapi_obs.count "batch.job.timeout"
    end;
    if Ocapi_obs.enabled () then Ocapi_obs.count "batch.job.failed"
  | Cancelled ->
    t.bt_cancelled <- t.bt_cancelled + 1;
    if Ocapi_obs.enabled () then Ocapi_obs.count "batch.job.cancelled");
  Condition.broadcast t.bt_done;
  Ev_finished
    {
      ev_label = exec.ex_label;
      ev_corr = corr_of_key exec.ex_key;
      ev_outcome = outcome;
    }

let timeout_error label =
  Ocapi_error.make Ocapi_error.Timeout ~engine:"batch"
    (Printf.sprintf "job %s exceeded its wall-clock deadline" label)

(* --- worker side ---------------------------------------------------------- *)

(* The cooperative stop hook, threaded into the engine stepping loops
   as their [?progress] callback.  A raised [Ocapi_error] abandons the
   job between cycles/runs; the worker classifies it below. *)
let progress_check t exec () =
  let verdict =
    locked t (fun () ->
        if not (live_interest exec) then `Cancelled
        else
          match tightest_deadline exec with
          | Some d when Unix.gettimeofday () > d -> `Timeout
          | _ -> `Go)
  in
  match verdict with
  | `Go -> ()
  | `Timeout -> raise (Ocapi_error.Error (timeout_error exec.ex_label))
  | `Cancelled ->
    Ocapi_error.fail Ocapi_error.Cancelled ~engine:"batch"
      "job %s cancelled while running" exec.ex_label

let run_exec t exec =
  fire t
    [ Ev_started { ev_label = exec.ex_label; ev_corr = corr_of_key exec.ex_key } ];
  let started = Unix.gettimeofday () in
  let result =
    match exec.ex_run ~progress:(progress_check t exec) with
    | json ->
      Completed
        {
          oc_json = json;
          oc_seconds = Unix.gettimeofday () -. started;
          oc_queue_seconds = exec.ex_queue_seconds;
          oc_dedup = false;
        }
    | exception Ocapi_error.Error d
      when d.Ocapi_error.e_code = Ocapi_error.Cancelled ->
      Cancelled
    | exception Ocapi_error.Error d -> Failed d
    | exception e -> (
      match Flow.classify_exn ~engine:"batch" e with
      | Some d -> Failed d
      | None ->
        Failed
          (Ocapi_error.make Ocapi_error.Internal ~engine:"batch"
             ~severity:Ocapi_error.Error
             (Printf.sprintf "job %s raised: %s" exec.ex_label
                (Printexc.to_string e))))
  in
  let ev = locked t (fun () -> finish_exec t exec result) in
  fire t [ ev ]

(* Queue waits span microseconds (idle worker) to seconds (saturated
   campaign); the default power-of-two telemetry buckets (1 .. 2^20)
   lump everything above a millisecond into a handful of cells, which
   wrecks the interpolated p50/p95.  A 1-2-5 decade ladder from 1 µs to
   10^8 µs keeps the quantile estimate honest across the whole range. *)
let queue_wait_buckets =
  [|
    1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 2e4; 5e4;
    1e5; 2e5; 5e5; 1e6; 2e6; 5e6; 1e7; 2e7; 5e7; 1e8;
  |]

(* Pop the next runnable execution in priority order, resolving dead
   ones (cancelled or expired while queued) inline.  Lock held. *)
let rec dequeue_ready t events =
  let rec pop i =
    if i >= Array.length t.bt_queues then None
    else if Queue.is_empty t.bt_queues.(i) then pop (i + 1)
    else Some (Queue.pop t.bt_queues.(i))
  in
  match pop 0 with
  | None -> None
  | Some exec ->
    if not (live_interest exec) then begin
      events := finish_exec t exec Cancelled :: !events;
      dequeue_ready t events
    end
    else begin
      let now = Unix.gettimeofday () in
      match tightest_deadline exec with
      | Some d when now > d ->
        events :=
          finish_exec t exec (Failed (timeout_error exec.ex_label)) :: !events;
        dequeue_ready t events
      | _ ->
        exec.ex_status <- Running;
        exec.ex_queue_seconds <- now -. exec.ex_submitted;
        t.bt_executed <- t.bt_executed + 1;
        if Ocapi_obs.enabled () then begin
          Ocapi_obs.set_gauge "batch.queue.depth" (float_of_int (queued_depth t));
          Ocapi_obs.observe ~buckets:queue_wait_buckets "batch.queue.wait_us"
            (exec.ex_queue_seconds *. 1e6)
        end;
        Some exec
    end

let pull t () =
  let events = ref [] in
  let next =
    locked t (fun () ->
        let rec wait () =
          match dequeue_ready t events with
          | Some exec -> Some exec
          | None ->
            if t.bt_shutdown && queued_depth t = 0 then None
            else begin
              Condition.wait t.bt_work t.bt_mutex;
              wait ()
            end
        in
        wait ())
  in
  fire t !events;
  Option.map (fun exec () -> run_exec t exec) next

(* --- lifecycle ------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(domains = 1) ?artifact_dir ?on_event () =
  if domains < 1 then invalid_arg "Ocapi_batch.create: domains < 1";
  Option.iter mkdir_p artifact_dir;
  let t =
    {
      bt_mutex = Mutex.create ();
      bt_work = Condition.create ();
      bt_done = Condition.create ();
      bt_queues = Array.init 3 (fun _ -> Queue.create ());
      bt_inflight = Hashtbl.create 32;
      bt_completed = Hashtbl.create 32;
      bt_artifact_dir = artifact_dir;
      bt_writer = Option.map (fun _ -> writer_start ()) artifact_dir;
      bt_on_event = on_event;
      bt_pool = None;
      bt_shutdown = false;
      bt_submitted = 0;
      bt_deduped = 0;
      bt_executed = 0;
      bt_completed_n = 0;
      bt_failed = 0;
      bt_timed_out = 0;
      bt_cancelled = 0;
    }
  in
  t.bt_pool <- Some (Ocapi_parallel.Service.start ~domains ~pull:(pull t) ());
  t

let flush t = Option.iter writer_flush t.bt_writer

let shutdown t =
  locked t (fun () ->
      t.bt_shutdown <- true;
      Condition.broadcast t.bt_work);
  (match t.bt_pool with
  | Some pool -> Ocapi_parallel.Service.join pool
  | None -> ());
  Option.iter writer_stop t.bt_writer

(* --- job preparation ------------------------------------------------------ *)

let require_pos what n =
  if n <= 0 then
    invalid_arg (Printf.sprintf "Ocapi_batch.submit: %s must be > 0" what)

(* A prepared job: its dedup key (a [Flow.Cache.key_of] fingerprint
   with the job kind and parameters folded into the engine component),
   a display label, an artifact slug, and the closure a worker runs.
   The design is built here, in the submitting domain, and owned by
   the execution from then on. *)
let prepare ~label job =
  let slugify s =
    String.map (fun c -> if c = ':' || c = '/' || c = ' ' then '-' else c) s
  in
  let key, default_label, run =
    match job with
    | Simulate { sim_design; sim_engine; sim_cycles; sim_seed } ->
      require_pos "cycles" sim_cycles;
      let d = find_design sim_design in
      let engine = Ocapi_engine.name_of (Ocapi_engine.get sim_engine) in
      let sys = d.ds_build () in
      let key =
        Flow.Cache.key_of
          ~engine:("batch-sim+" ^ engine)
          ~seed:sim_seed sys ~cycles:sim_cycles
      in
      ( key,
        Printf.sprintf "simulate:%s:%s:c%d" sim_design engine sim_cycles,
        fun ~progress ->
          Flow.simulate ~engine ~seed:sim_seed ~corr:(corr_of_key key)
            ~progress:(fun _ -> progress ())
            sys ~cycles:sim_cycles
          |> Flow.simulate_result_json ~engine ~cycles:sim_cycles )
    | Seu { seu_design; seu_engine; seu_runs; seu_cycles; seu_seed } ->
      require_pos "cycles" seu_cycles;
      require_pos "runs" seu_runs;
      let d = find_design seu_design in
      let engine = Ocapi_engine.name_of (Ocapi_engine.get seu_engine) in
      let sys = d.ds_build () in
      ( Flow.Cache.key_of
          ~engine:
            (Printf.sprintf "batch-seu+%s+runs%d" engine seu_runs)
          ~seed:seu_seed sys ~cycles:seu_cycles,
        Printf.sprintf "seu:%s:%s:r%d" seu_design engine seu_runs,
        fun ~progress ->
          Ocapi_fault.seu_campaign ~engine ~runs:seu_runs ~seed:seu_seed
            ~progress:(fun _ -> progress ())
            sys ~cycles:seu_cycles
          |> Ocapi_fault.seu_report_json )
    | Stuck_at { sa_design; sa_cycles; sa_seed; sa_max_faults } ->
      require_pos "cycles" sa_cycles;
      let d = find_design sa_design in
      let sys = d.ds_build () in
      ( Flow.Cache.key_of
          ~engine:
            (Printf.sprintf "batch-sa+mf%s"
               (match sa_max_faults with
               | Some n -> string_of_int n
               | None -> "-"))
          ~seed:sa_seed sys ~cycles:sa_cycles,
        Printf.sprintf "stuck-at:%s:c%d" sa_design sa_cycles,
        fun ~progress ->
          Ocapi_fault.stuck_at_system ?max_faults:sa_max_faults ~seed:sa_seed
            ~macro_of_kernel:d.ds_macro
            ~progress:(fun _ -> progress ())
            sys ~cycles:sa_cycles
          |> Ocapi_fault.stuck_report_json )
    | Engine_sweep { sw_design; sw_cycles } ->
      require_pos "cycles" sw_cycles;
      let d = find_design sw_design in
      let sys = d.ds_build () in
      ( Flow.Cache.key_of
          ~engine:
            ("batch-sweep+" ^ String.concat "," (Ocapi_engine.names ()))
          ~seed:0 sys ~cycles:sw_cycles,
        Printf.sprintf "engine-sweep:%s:c%d" sw_design sw_cycles,
        fun ~progress ->
          Flow.engine_disagreements ~progress:(fun _ -> progress ()) sys
            ~cycles:sw_cycles
          |> Flow.mismatches_json ~cycles:sw_cycles )
    | Fuzz { fu_seed; fu_count; fu_engines; fu_deep; fu_shrink } ->
      require_pos "count" fu_count;
      (* No single design to fingerprint: the campaign's identity is its
         parameters (the generator is pure in them), so the dedup key is
         a literal string, Custom-style.  Engines are resolved here so a
         bad roster fails at submit, not on a worker. *)
      let engines =
        match fu_engines with
        | None -> Ocapi_diff.default_engines ()
        | Some names ->
          List.map
            (fun n -> Ocapi_engine.name_of (Ocapi_engine.get n))
            names
      in
      ( Printf.sprintf "batch-fuzz|seed%d|count%d|%s|deep%b|shrink%b" fu_seed
          fu_count (String.concat "," engines) fu_deep fu_shrink,
        Printf.sprintf "fuzz:s%d:n%d" fu_seed fu_count,
        fun ~progress ->
          Ocapi_diff.fuzz ~engines ~deep:fu_deep ~shrink_failures:fu_shrink
            ~progress:(fun _ -> progress ())
            ~seed:fu_seed ~count:fu_count ()
          |> Ocapi_diff.report_json )
    | Custom { cu_tag; cu_body } ->
      ("batch-custom|" ^ cu_tag, "custom:" ^ cu_tag, cu_body)
  in
  let label = match label with Some l -> l | None -> default_label in
  ( key,
    label,
    Printf.sprintf "%s-%s.json" (slugify label)
      (String.sub (Digest.to_hex (Digest.string key)) 0 8),
    run )

(* --- submission ----------------------------------------------------------- *)

let submit ?(priority = Normal) ?timeout ?label t job =
  (match timeout with
  | Some s when s <= 0.0 ->
    invalid_arg "Ocapi_batch.submit: timeout must be > 0"
  | _ -> ());
  (* Build and fingerprint outside the lock: design construction is
     pure of service state, and a slow build must not stall workers. *)
  let key, label, artifact_file, run = prepare ~label job in
  let now = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> now +. s) timeout in
  let handle, event =
    locked t (fun () ->
        if t.bt_shutdown then
          invalid_arg "Ocapi_batch.submit: the service is shut down";
        t.bt_submitted <- t.bt_submitted + 1;
        if Ocapi_obs.enabled () then Ocapi_obs.count "batch.job.submitted";
        match Hashtbl.find_opt t.bt_completed key with
        | Some outcome ->
          t.bt_deduped <- t.bt_deduped + 1;
          if Ocapi_obs.enabled () then Ocapi_obs.count "batch.job.dedup";
          ( {
              h_label = label;
              h_dedup = true;
              h_deadline = deadline;
              h_cancelled = false;
              h_kind = Snapshot outcome;
            },
            Ev_submitted
              { ev_label = label; ev_corr = corr_of_key key; ev_dedup = true }
          )
        | None -> (
          match Hashtbl.find_opt t.bt_inflight key with
          | Some exec ->
            t.bt_deduped <- t.bt_deduped + 1;
            if Ocapi_obs.enabled () then Ocapi_obs.count "batch.job.dedup";
            let h =
              {
                h_label = label;
                h_dedup = true;
                h_deadline = deadline;
                h_cancelled = false;
                h_kind = Attached exec;
              }
            in
            exec.ex_handles <- h :: exec.ex_handles;
            ( h,
              Ev_submitted
                { ev_label = label; ev_corr = corr_of_key key; ev_dedup = true }
            )
          | None ->
            let exec =
              {
                ex_key = key;
                ex_label = label;
                ex_run = run;
                ex_priority = priority;
                ex_submitted = now;
                ex_artifact =
                  Option.map
                    (fun dir -> Filename.concat dir artifact_file)
                    t.bt_artifact_dir;
                ex_status = Queued;
                ex_handles = [];
                ex_queue_seconds = 0.0;
              }
            in
            let h =
              {
                h_label = label;
                h_dedup = false;
                h_deadline = deadline;
                h_cancelled = false;
                h_kind = Attached exec;
              }
            in
            exec.ex_handles <- [ h ];
            Hashtbl.replace t.bt_inflight key exec;
            Queue.push exec t.bt_queues.(queue_index priority);
            if Ocapi_obs.enabled () then
              Ocapi_obs.set_gauge "batch.queue.depth"
                (float_of_int (queued_depth t));
            Condition.signal t.bt_work;
            ( h,
              Ev_submitted
                {
                  ev_label = label;
                  ev_corr = corr_of_key key;
                  ev_dedup = false;
                } )))
  in
  fire t [ event ];
  handle

(* --- handle queries ------------------------------------------------------- *)

let label_of h = h.h_label

(* The outcome as seen through one handle: a cancelled handle resolves
   [Cancelled] even when the shared execution went on for others, and
   a deduplicated handle sees the [oc_dedup] flag set. *)
let handle_view h outcome =
  if h.h_cancelled then Cancelled
  else
    match outcome with
    | Completed c when h.h_dedup && not c.oc_dedup ->
      Completed { c with oc_dedup = true }
    | o -> o

let status t h =
  locked t (fun () ->
      match h.h_kind with
      | Snapshot o -> Done (handle_view h o)
      | Attached exec -> (
        if h.h_cancelled then
          match exec.ex_status with
          | Done _ | Queued -> Done Cancelled
          | Running -> Running  (* still winding down for other handles *)
        else
          match exec.ex_status with
          | Done o -> Done (handle_view h o)
          | (Queued | Running) as s -> s))

let await t h =
  locked t (fun () ->
      match h.h_kind with
      | Snapshot o -> handle_view h o
      | Attached exec ->
        if h.h_cancelled then Cancelled
        else begin
          while
            (match exec.ex_status with Done _ -> false | _ -> true)
            && not h.h_cancelled
          do
            Condition.wait t.bt_done t.bt_mutex
          done;
          if h.h_cancelled then Cancelled
          else
            match exec.ex_status with
            | Done o -> handle_view h o
            | Queued | Running -> assert false
        end)

let cancel t h =
  let cancelled =
    locked t (fun () ->
        if h.h_cancelled then false
        else
          match h.h_kind with
          | Snapshot _ -> false
          | Attached exec -> (
            match exec.ex_status with
            | Done _ -> false
            | Queued | Running ->
              h.h_cancelled <- true;
              (* A queued execution nobody wants any more resolves
                 right here; a running one is stopped by its next
                 [progress] check.  Dead queue entries are skipped
                 lazily at dequeue. *)
              Condition.broadcast t.bt_done;
              true))
  in
  if cancelled then
    if Ocapi_obs.enabled () then Ocapi_obs.count "batch.handle.cancelled";
  cancelled

let artifact_path t h =
  locked t (fun () ->
      match h.h_kind with
      | Snapshot _ -> None
      | Attached exec -> exec.ex_artifact)

let stats t =
  locked t (fun () ->
      {
        bs_submitted = t.bt_submitted;
        bs_deduped = t.bt_deduped;
        bs_executed = t.bt_executed;
        bs_completed = t.bt_completed_n;
        bs_failed = t.bt_failed;
        bs_timed_out = t.bt_timed_out;
        bs_cancelled = t.bt_cancelled;
        bs_artifacts_written =
          (match t.bt_writer with Some w -> w.wr_written | None -> 0);
        bs_dedup_hit_rate =
          (if t.bt_submitted = 0 then 0.0
           else float_of_int t.bt_deduped /. float_of_int t.bt_submitted);
      })

(* --- manifests ------------------------------------------------------------ *)

type request = {
  rq_job : job;
  rq_priority : priority;
  rq_timeout : float option;
  rq_label : string option;
}

let request_of_json json =
  let open Ocapi_obs.Json in
  let str field =
    match member field json with
    | Some (String s) -> Ok (Some s)
    | Some _ -> Error (Printf.sprintf "field %S must be a string" field)
    | None -> Ok None
  in
  let int_field field =
    match member field json with
    | Some (Int n) -> Ok (Some n)
    | Some _ -> Error (Printf.sprintf "field %S must be an integer" field)
    | None -> Ok None
  in
  let num_field field =
    match member field json with
    | Some (Int n) -> Ok (Some (float_of_int n))
    | Some (Float f) -> Ok (Some f)
    | Some _ -> Error (Printf.sprintf "field %S must be a number" field)
    | None -> Ok None
  in
  let ( let* ) = Result.bind in
  let require field = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing required field %S" field)
  in
  let bool_field field =
    match member field json with
    | Some (Bool b) -> Ok (Some b)
    | Some _ -> Error (Printf.sprintf "field %S must be a boolean" field)
    | None -> Ok None
  in
  let str_list field =
    match member field json with
    | Some (List items) ->
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must be a list of strings" field)
      in
      go [] items
    | Some _ -> Error (Printf.sprintf "field %S must be a list of strings" field)
    | None -> Ok None
  in
  let* kind = str "kind" in
  let* kind = require "kind" kind in
  (* [design] is required by every design-bound kind, but a fuzz
     campaign generates its own designs. *)
  let* design_opt = str "design" in
  let design = require "design" design_opt in
  let* engine = str "engine" in
  let* cycles = int_field "cycles" in
  let* runs = int_field "runs" in
  let* seed = int_field "seed" in
  let* count = int_field "count" in
  let* engines = str_list "engines" in
  let* deep = bool_field "deep" in
  let* shrink = bool_field "shrink" in
  let* max_faults = int_field "max_faults" in
  let* timeout = num_field "timeout" in
  let* label = str "label" in
  let* priority_s = str "priority" in
  let* priority =
    match priority_s with
    | None | Some "normal" -> Ok Normal
    | Some "high" -> Ok High
    | Some "low" -> Ok Low
    | Some other -> Error (Printf.sprintf "unknown priority %S" other)
  in
  let seed = Option.value seed ~default:1 in
  let* job =
    match kind with
    | "simulate" ->
      let* design = design in
      Ok
        (Simulate
           {
             sim_design = design;
             sim_engine = Option.value engine ~default:"interp";
             sim_cycles = Option.value cycles ~default:200;
             sim_seed = seed;
           })
    | "seu" ->
      let* design = design in
      Ok
        (Seu
           {
             seu_design = design;
             seu_engine = Option.value engine ~default:"compiled";
             seu_runs = Option.value runs ~default:1000;
             seu_cycles = Option.value cycles ~default:64;
             seu_seed = seed;
           })
    | "stuck-at" | "stuck_at" ->
      let* design = design in
      Ok
        (Stuck_at
           {
             sa_design = design;
             sa_cycles = Option.value cycles ~default:64;
             sa_seed = seed;
             sa_max_faults = max_faults;
           })
    | "engine-sweep" | "sweep" ->
      let* design = design in
      Ok
        (Engine_sweep
           { sw_design = design; sw_cycles = Option.value cycles ~default:200 })
    | "fuzz" ->
      Ok
        (Fuzz
           {
             fu_seed = seed;
             fu_count = Option.value count ~default:25;
             fu_engines = engines;
             fu_deep = Option.value deep ~default:false;
             fu_shrink = Option.value shrink ~default:true;
           })
    | other -> Error (Printf.sprintf "unknown job kind %S" other)
  in
  Ok { rq_job = job; rq_priority = priority; rq_timeout = timeout; rq_label = label }

let request_of_line line =
  match Ocapi_obs.Json.of_string line with
  | Error e -> Error (Printf.sprintf "invalid JSON: %s" e)
  | Ok json -> request_of_json json

let read_manifest path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line ->
            let trimmed = String.trim line in
            if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc
            else (
              match request_of_line trimmed with
              | Ok r -> go (lineno + 1) (r :: acc)
              | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
        in
        go 1 [])

let submit_request t r =
  submit ~priority:r.rq_priority ?timeout:r.rq_timeout ?label:r.rq_label t
    r.rq_job

(* --- preparation for external executors ----------------------------------- *)

type prepared = {
  pr_key : string;
  pr_corr : string;
  pr_label : string;
  pr_artifact_file : string;
  pr_run : progress:(unit -> unit) -> Ocapi_obs.Json.t;
}

let prepare_request r =
  let key, label, artifact_file, run = prepare ~label:r.rq_label r.rq_job in
  {
    pr_key = key;
    pr_corr = corr_of_key key;
    pr_label = label;
    pr_artifact_file = artifact_file;
    pr_run = run;
  }
