exception Dataflow_error of string

let error fmt = Format.kasprintf (fun s -> raise (Dataflow_error s)) fmt

module Kernel = struct
  type model =
    | Ram_model of {
        words : int;
        data_fmt : Fixed.format;
        addr_port : string;
        wdata_port : string;
        we_port : string;
        rdata_port : string;
      }

  type t = {
    k_name : string;
    k_inputs : (string * int) list;
    k_outputs : (string * int) list;
    k_ready : unit -> bool;
    k_formats : (string * Fixed.format) list;
    k_reset : unit -> unit;
    k_commit : unit -> unit;
    k_behavior : (string * Fixed.t list) list -> (string * Fixed.t list) list;
    k_model : model option;
  }

  let create k_name ?(ready = fun () -> true) ?(formats = [])
      ?(commit = fun () -> ()) ?(reset = fun () -> ()) ?model ~inputs ~outputs
      k_behavior =
    List.iter
      (fun (p, rate) ->
        if rate < 1 then error "kernel %s: port %s has rate %d < 1" k_name p rate)
      (inputs @ outputs);
    { k_name; k_inputs = inputs; k_outputs = outputs; k_ready = ready;
      k_formats = formats; k_reset = reset; k_commit = commit; k_behavior;
      k_model = model }

  let port_format k port =
    match List.assoc_opt port k.k_formats with
    | Some f -> f
    | None -> error "kernel %s: no declared format for port %s" k.k_name port

  let map1 name f =
    create name ~inputs:[ ("in", 1) ] ~outputs:[ ("out", 1) ] (fun consumed ->
        match consumed with
        | [ ("in", [ v ]) ] -> [ ("out", [ f v ]) ]
        | _ -> error "map1 %s: unexpected consumption shape" name)

  let source name values =
    let remaining = ref values in
    create name
      ~ready:(fun () -> !remaining <> [])
      ~inputs:[] ~outputs:[ ("out", 1) ]
      (fun _ ->
        match !remaining with
        | [] -> error "source %s: fired while exhausted" name
        | v :: rest ->
          remaining := rest;
          [ ("out", [ v ]) ])

  let sink name =
    let collected = ref [] in
    let k =
      create name ~inputs:[ ("in", 1) ] ~outputs:[] (fun consumed ->
          match consumed with
          | [ ("in", [ v ]) ] ->
            collected := v :: !collected;
            []
          | _ -> error "sink %s: unexpected consumption shape" name)
    in
    (k, fun () -> List.rev !collected)

  let validate_production k produced =
    List.iter
      (fun (port, rate) ->
        let got =
          match List.assoc_opt port produced with
          | Some vs -> List.length vs
          | None -> 0
        in
        if got <> rate then
          error "kernel %s: port %s produced %d tokens, declared %d" k.k_name
            port got rate)
      k.k_outputs;
    List.iter
      (fun (port, _) ->
        if not (List.mem_assoc port k.k_outputs) then
          error "kernel %s: produced on undeclared port %s" k.k_name port)
      produced
end

type process = { p_index : int; kernel : Kernel.t }

type channel = {
  c_index : int;
  c_src : process * string;
  c_dst : process * string;
  c_queue : Fixed.t Queue.t;
}

type t = {
  g_name : string;
  mutable procs : process list;  (* reversed *)
  mutable chans : channel list;  (* reversed *)
}

let create g_name = { g_name; procs = []; chans = [] }
let name t = t.g_name
let processes t = List.rev t.procs
let process_name p = p.kernel.Kernel.k_name

let add_process t kernel =
  let p = { p_index = List.length t.procs; kernel } in
  t.procs <- p :: t.procs;
  p

let port_exists ports port = List.mem_assoc port ports

let connect t (p1, out_port) (p2, in_port) =
  if not (port_exists p1.kernel.Kernel.k_outputs out_port) then
    error "connect: %s has no output port %s" (process_name p1) out_port;
  if not (port_exists p2.kernel.Kernel.k_inputs in_port) then
    error "connect: %s has no input port %s" (process_name p2) in_port;
  if
    List.exists
      (fun c -> fst c.c_dst == p2 && snd c.c_dst = in_port)
      t.chans
  then
    error "connect: input %s.%s already driven" (process_name p2) in_port;
  let c =
    {
      c_index = List.length t.chans;
      c_src = (p1, out_port);
      c_dst = (p2, in_port);
      c_queue = Queue.create ();
    }
  in
  t.chans <- c :: t.chans;
  c

let initial_tokens _t ch values = List.iter (fun v -> Queue.add v ch.c_queue) values
let channel_depth _t ch = Queue.length ch.c_queue

let in_channel_of t p port =
  List.find_opt (fun c -> fst c.c_dst == p && snd c.c_dst = port) t.chans

let out_channels_of t p port =
  List.filter (fun c -> fst c.c_src == p && snd c.c_src = port) t.chans

let fireable t p =
  p.kernel.Kernel.k_ready ()
  && List.for_all
       (fun (port, rate) ->
         match in_channel_of t p port with
         | None -> false
         | Some c -> Queue.length c.c_queue >= rate)
       p.kernel.Kernel.k_inputs

let fire t p =
  if not (fireable t p) then
    error "fire: %s's firing rule is not satisfied" (process_name p);
  let consumed =
    List.map
      (fun (port, rate) ->
        let c =
          match in_channel_of t p port with
          | Some c -> c
          | None -> error "fire: %s.%s unconnected" (process_name p) port
        in
        (port, List.init rate (fun _ -> Queue.pop c.c_queue)))
      p.kernel.Kernel.k_inputs
  in
  let produced = p.kernel.Kernel.k_behavior consumed in
  p.kernel.Kernel.k_commit ();
  Kernel.validate_production p.kernel produced;
  List.iter
    (fun (port, values) ->
      match out_channels_of t p port with
      | [] -> () (* unconnected output: tokens fall on the floor *)
      | chans ->
        List.iter
          (fun c -> List.iter (fun v -> Queue.add v c.c_queue) values)
          chans)
    produced

type run_stats = {
  firings : (string * int) list;
  steps : int;
  deadlocked : bool;
}

let run ?(max_firings = 1_000_000) t =
  let procs = processes t in
  let counts = Array.make (List.length procs) 0 in
  let steps = ref 0 in
  let progress = ref true in
  while !progress && !steps < max_firings do
    progress := false;
    List.iter
      (fun p ->
        if !steps < max_firings && fireable t p then begin
          fire t p;
          counts.(p.p_index) <- counts.(p.p_index) + 1;
          incr steps;
          progress := true
        end)
      procs
  done;
  let tokens_remain =
    List.exists (fun c -> not (Queue.is_empty c.c_queue)) t.chans
  in
  let any_fireable = List.exists (fireable t) procs in
  {
    firings = List.map (fun p -> (process_name p, counts.(p.p_index))) procs;
    steps = !steps;
    deadlocked = tokens_remain && not any_fireable;
  }

(* --- SDF balance equations ------------------------------------------- *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

(* Solve q(src) * prod = q(dst) * cons for all channels by propagating
   rational firing ratios over the (assumed connected) graph, then scale
   to the smallest integers.  Rationals are (num, den) pairs. *)
let repetition_vector t =
  let procs = processes t in
  let n = List.length procs in
  if n = 0 then None
  else begin
    let ratio = Array.make n None in
    (* Adjacency: channel constraints touching each process. *)
    let rate_of ports port =
      match List.assoc_opt port ports with Some r -> r | None -> 0
    in
    let constraints =
      List.map
        (fun c ->
          let sp, sport = c.c_src and dp, dport = c.c_dst in
          let prod = rate_of sp.kernel.Kernel.k_outputs sport in
          let cons = rate_of dp.kernel.Kernel.k_inputs dport in
          (sp.p_index, prod, dp.p_index, cons))
        t.chans
    in
    let consistent = ref true in
    let rec propagate i =
      List.iter
        (fun (si, prod, di, cons) ->
          let link ra b prod cons =
            (* q(a) * prod = q(b) * cons, ra = (num, den) of q(a) *)
            let num, den = ra in
            let nb = (num * prod, den * cons) in
            match ratio.(b) with
            | None ->
              ratio.(b) <- Some nb;
              propagate b
            | Some (n2, d2) ->
              if fst nb * d2 <> n2 * snd nb then consistent := false
          in
          if si = i then begin
            match ratio.(si) with
            | Some ra -> link ra di prod cons
            | None -> ()
          end
          else if di = i then begin
            match ratio.(di) with
            | Some rd -> link rd si cons prod
            | None -> ()
          end)
        constraints
    in
    (* Seed each connected component with ratio 1. *)
    for i = 0 to n - 1 do
      if ratio.(i) = None then begin
        ratio.(i) <- Some (1, 1);
        propagate i
      end
    done;
    if not !consistent then None
    else begin
      let dens =
        Array.to_list ratio
        |> List.map (function Some (_, d) -> d | None -> 1)
      in
      let common = List.fold_left lcm 1 dens in
      let counts =
        Array.map
          (function
            | Some (num, den) -> num * (common / den)
            | None -> common)
          ratio
      in
      let g = Array.fold_left (fun acc v -> gcd acc v) 0 counts in
      let g = if g = 0 then 1 else g in
      Some
        (List.map
           (fun p -> (process_name p, counts.(p.p_index) / g))
           procs)
    end
  end

let single_iteration_schedule t =
  match repetition_vector t with
  | None -> None
  | Some reps ->
    (* Simulate token counts symbolically and greedily schedule. *)
    let procs = processes t in
    let remaining =
      Array.of_list (List.map (fun (_, r) -> r) reps)
    in
    let depth = Array.make (List.length t.chans) 0 in
    List.iter (fun c -> depth.(c.c_index) <- Queue.length c.c_queue) t.chans;
    let rate_of ports port =
      match List.assoc_opt port ports with Some r -> r | None -> 0
    in
    let can_fire p =
      remaining.(p.p_index) > 0
      && List.for_all
           (fun (port, rate) ->
             match in_channel_of t p port with
             | None -> false
             | Some c -> depth.(c.c_index) >= rate)
           p.kernel.Kernel.k_inputs
    in
    let do_fire p =
      List.iter
        (fun (port, rate) ->
          match in_channel_of t p port with
          | Some c -> depth.(c.c_index) <- depth.(c.c_index) - rate
          | None -> ())
        p.kernel.Kernel.k_inputs;
      List.iter
        (fun (port, rate) ->
          List.iter
            (fun c -> depth.(c.c_index) <- depth.(c.c_index) + rate)
            (out_channels_of t p port))
        p.kernel.Kernel.k_outputs;
      ignore (rate_of [] "");
      remaining.(p.p_index) <- remaining.(p.p_index) - 1
    in
    let schedule = ref [] in
    let progress = ref true in
    while !progress do
      progress := false;
      List.iter
        (fun p ->
          if can_fire p then begin
            do_fire p;
            schedule := process_name p :: !schedule;
            progress := true
          end)
        procs
    done;
    if Array.for_all (fun r -> r = 0) remaining then Some (List.rev !schedule)
    else None
