(** Untimed data-flow processes and their scheduler.

    At the system level, processes execute with data-flow simulation
    semantics (paper section 2): a process is an iterative behaviour
    that reads its inputs at the start of an iteration and produces its
    outputs at the end; execution can start as soon as the required
    input values are available ("firing rule", after Lee &
    Messerschmitt's SDF).  A system containing only untimed blocks is
    simulated by the data-flow scheduler of this module; mixed systems
    use {e the cycle scheduler} (library [ocapi_sched]), which embeds
    the same process kernels. *)

exception Dataflow_error of string

(** {1 Process kernels} *)

module Kernel : sig
  (** The executable part of an untimed process: a firing rule (tokens
      required per input port, produced per output port) plus a
      behaviour function.  Behaviours may carry state in their closure. *)

  (** A declarative description of a kernel's complete behaviour, for
      kernels whose semantics fit a closed form.  A kernel carrying a
      model {e guarantees} that its closures ([k_ready], [k_behavior],
      [k_commit], [k_reset]) implement exactly the model's semantics
      with the default always-true firing rule; code-generating back
      ends (the native engine's emitter) may then bypass the closures
      entirely and inline the model, keeping results bit-identical
      while avoiding the per-firing boxing of the closure interface. *)
  type model =
    | Ram_model of {
        words : int;
        data_fmt : Fixed.format;
        addr_port : string;
        wdata_port : string;
        we_port : string;
        rdata_port : string;
      }
        (** A single-port synchronous RAM ([Ram_cell.kernel]'s
            contract): per firing, [rdata_port] produces the
            {e pre-write} word at [addr_port] (index taken modulo
            [words], wrapped positive); when [we_port] is true the
            [wdata_port] token — resized to [data_fmt] with truncation
            and wrap-around — is staged and applied by the commit
            phase.  Reset zeroes the store. *)

  type t = {
    k_name : string;
    k_inputs : (string * int) list;  (** port name, tokens consumed *)
    k_outputs : (string * int) list;  (** port name, tokens produced *)
    k_ready : unit -> bool;
        (** extra firing condition beyond token availability; lets
            finite sources stop firing *)
    k_formats : (string * Fixed.format) list;
        (** optional port formats; required by static back ends (the
            compiled simulator and HDL generation), ignored by the
            dynamic schedulers *)
    k_reset : unit -> unit;
        (** restore internal state (e.g. RAM contents) to power-on;
            called by the simulation engines' reset *)
    k_commit : unit -> unit;
        (** commit staged state changes at the end of the clock cycle.
            Behaviours with internal state (e.g. RAM writes) must stage
            changes in [k_behavior] and apply them here: the event-driven
            RT engine may execute [k_behavior] several times per cycle
            while signals settle, and only the final execution's staging
            may take effect. *)
    k_behavior : (string * Fixed.t list) list -> (string * Fixed.t list) list;
        (** consumed tokens by port -> produced tokens by port *)
    k_model : model option;
        (** declarative equivalent of the closures, when one exists *)
  }

  val create :
    string ->
    ?ready:(unit -> bool) ->
    ?formats:(string * Fixed.format) list ->
    ?commit:(unit -> unit) ->
    ?reset:(unit -> unit) ->
    ?model:model ->
    inputs:(string * int) list ->
    outputs:(string * int) list ->
    ((string * Fixed.t list) list -> (string * Fixed.t list) list) ->
    t

  (** Declared format of a port. @raise Dataflow_error when absent. *)
  val port_format : t -> string -> Fixed.format

  (** [map1 name f] : one token in on ["in"], one out on ["out"],
      stateless. *)
  val map1 : string -> (Fixed.t -> Fixed.t) -> t

  (** [source name values] produces the [values] one per firing on
      ["out"], then stops firing (rule never satisfied again). *)
  val source : string -> Fixed.t list -> t

  (** [sink name] consumes one token per firing on ["in"] and records it;
      [drained] returns everything consumed so far, oldest first. *)
  val sink : string -> t * (unit -> Fixed.t list)

  (** Validates that declared behaviour production matches the declared
      rates on one trial firing result. *)
  val validate_production : t -> (string * Fixed.t list) list -> unit
end

(** {1 Graphs} *)

type t
(** A data-flow graph: processes connected by FIFO channels. *)

type process
type channel

val create : string -> t
val add_process : t -> Kernel.t -> process

(** [connect t (p1, "out") (p2, "in")] adds a FIFO from an output port
    of [p1] to an input port of [p2].
    @raise Dataflow_error if either port does not exist on its kernel, or
    the input port is already driven. *)
val connect :
  t -> process * string -> process * string -> channel

(** [initial_tokens t ch values] pre-loads a channel (data-flow delay /
    the "initial tokens" of section 4). *)
val initial_tokens : t -> channel -> Fixed.t list -> unit

val name : t -> string
val processes : t -> process list
val process_name : process -> string

(** Tokens currently queued on a channel. *)
val channel_depth : t -> channel -> int

(** {1 Scheduling} *)

type run_stats = {
  firings : (string * int) list;  (** per process, in graph order *)
  steps : int;  (** total firings *)
  deadlocked : bool;
      (** true when unconsumed tokens remain but no firing rule is
          satisfiable — the "apparent deadlock" situation of section 4 *)
}

(** [run ?max_firings t] repeatedly scans the processes and fires any
    whose rule is satisfied, until nothing can fire or the budget is
    exhausted. *)
val run : ?max_firings:int -> t -> run_stats

(** [fireable t p] — is the firing rule of [p] currently satisfied? *)
val fireable : t -> process -> bool

(** Fire a single process. @raise Dataflow_error if not fireable. *)
val fire : t -> process -> unit

(** {1 SDF analysis} *)

(** The repetition vector of a consistent synchronous-data-flow graph:
    the smallest positive integer firing counts that leave every channel
    depth unchanged (balance equations).  [None] when the graph is
    inconsistent (no solution) or has no processes. *)
val repetition_vector : t -> (string * int) list option

(** A single-iteration admissible schedule (process names in firing
    order, each appearing its repetition count times), or [None] if the
    graph is inconsistent or deadlocks within one iteration. *)
val single_iteration_schedule : t -> string list option
