exception Delta_overflow of Ocapi_error.t
exception Rtl_error of string

let error fmt = Format.kasprintf (fun s -> raise (Rtl_error s)) fmt

type rtl_signal = {
  sg_id : int;
  sg_name : string;
  mutable sg_value : Fixed.t;
  sg_initial : Fixed.t;
  mutable sg_driven_this_cycle : bool;  (* sticky: ever driven *)
}

type assignment = rtl_signal * Fixed.t

type process_ = {
  pr_id : int;
  pr_name : string;
  pr_sensitivity : rtl_signal list;
  pr_exec : unit -> assignment list;
}

type probe_rec = {
  pb_name : string;
  pb_signal : rtl_signal;
  mutable pb_history : (int * Fixed.t) list;  (* reversed *)
}

(* Optional per-signal value recording (waveform dumping). *)
type trace_rec = {
  tr_signal : rtl_signal;
  mutable tr_last : Fixed.t option;  (* last recorded value *)
  mutable tr_hist : (int * Fixed.t) list;  (* reversed *)
}

type t = {
  mutable signals : rtl_signal list;  (* reversed *)
  mutable processes : process_ list;  (* reversed *)
  (* signal id -> processes sensitive to it *)
  mutable wakeups : (int, process_ list) Hashtbl.t;
  clk : rtl_signal;
  stims : (rtl_signal * (int -> Fixed.t option)) list;
  probes : probe_rec list;
  resets : (unit -> unit) list;  (* restore component-local state *)
  kernel_commits : (unit -> unit) list;
  kernel_procs : process_ list;
  regs : Signal.Reg.t array;  (* Cycle_system.all_regs order *)
  reg_shadows : (int * rtl_signal) list;  (* Reg.id -> shadow signal *)
  (* Per timed component: name, state signal, number of encoded states. *)
  state_sigs : (string * rtl_signal * int) array;
  mutable traces : trace_rec list;  (* [] unless trace_all was called *)
  mutable cycle_count : int;
  mutable initialized : bool;
  mutable n_events : int;
  mutable n_transactions : int;
  mutable n_deltas : int;
  mutable n_activations : int;
  max_deltas : int;
}

(* Canonical structural hash.  Signal/process ids are global gensyms
   (two elaborations of the same system get different ids), so the
   digest is built from names, elaboration order, formats and initial
   values only — everything that determines behaviour and nothing that
   varies between identical elaborations. *)
let digest t =
  let b = Buffer.create 4096 in
  let fmt_of (f : Fixed.format) =
    Buffer.add_string b
      (Printf.sprintf "%c%d.%d"
         (match f.Fixed.signedness with Fixed.Signed -> 's' | Fixed.Unsigned -> 'u')
         f.Fixed.width f.Fixed.frac)
  in
  let value v =
    fmt_of (Fixed.fmt v);
    Buffer.add_char b '=';
    Buffer.add_string b (Int64.to_string (Fixed.mantissa v))
  in
  Buffer.add_string b "signals:";
  List.iter
    (fun s ->
      Buffer.add_string b s.sg_name;
      Buffer.add_char b ':';
      value s.sg_initial;
      Buffer.add_char b ';')
    (List.rev t.signals);
  Buffer.add_string b "|processes:";
  List.iter
    (fun p ->
      Buffer.add_string b p.pr_name;
      Buffer.add_char b '<';
      List.iter
        (fun s -> Buffer.add_string b s.sg_name; Buffer.add_char b ',')
        p.pr_sensitivity;
      Buffer.add_char b '>')
    (List.rev t.processes);
  Buffer.add_string b "|probes:";
  List.iter
    (fun p ->
      Buffer.add_string b p.pb_name;
      Buffer.add_char b '~';
      Buffer.add_string b p.pb_signal.sg_name;
      Buffer.add_char b ';')
    t.probes;
  Buffer.add_string b "|regs:";
  Array.iter
    (fun r ->
      Buffer.add_string b (Signal.Reg.name r);
      Buffer.add_char b ':';
      value (Signal.Reg.init r);
      Buffer.add_char b ';')
    t.regs;
  Buffer.add_string b "|states:";
  Array.iter
    (fun (name, s, n) ->
      Buffer.add_string b name;
      Buffer.add_char b ':';
      Buffer.add_string b s.sg_name;
      Buffer.add_char b '/';
      Buffer.add_string b (string_of_int n);
      Buffer.add_char b ';')
    t.state_sigs;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- construction -------------------------------------------------------- *)

(* Atomic so elaborations may run concurrently in different domains
   (domain-isolation audit: construction-time gensyms must not race). *)
let sig_counter = Atomic.make 0

let make_signal name init =
  {
    sg_id = Atomic.fetch_and_add sig_counter 1 + 1;
    sg_name = name;
    sg_value = init;
    sg_initial = init;
    sg_driven_this_cycle = false;
  }

let proc_counter = Atomic.make 0

let make_process name sensitivity exec =
  { pr_id = Atomic.fetch_and_add proc_counter 1 + 1; pr_name = name;
    pr_sensitivity = sensitivity; pr_exec = exec }

(* Formats of every net, reusing the conventions of the compiled engine:
   timed outputs carry the producing expression's format. *)
let net_formats sys =
  let fmts = Hashtbl.create 64 in
  let driver_index = Hashtbl.create 64 in
  List.iter
    (fun (net, (dc, dp), _) -> Hashtbl.replace driver_index (dc, dp) net)
    (Cycle_system.nets sys);
  let set net f =
    match Hashtbl.find_opt fmts net with
    | None -> Hashtbl.replace fmts net f
    | Some f0 ->
      if not (Fixed.equal_format f0 f) then
        error "net %s driven with inconsistent formats" net
  in
  List.iter
    (fun (name, fmt, _) ->
      match Hashtbl.find_opt driver_index (name, "out") with
      | Some net -> set net fmt
      | None -> ())
    (Cycle_system.primary_inputs sys);
  List.iter
    (fun (name, k) ->
      List.iter
        (fun (port, _) ->
          match Hashtbl.find_opt driver_index (name, port) with
          | Some net -> set net (Dataflow.Kernel.port_format k port)
          | None -> ())
        k.Dataflow.Kernel.k_outputs)
    (Cycle_system.untimed_components sys);
  List.iter
    (fun (cname, fsm) ->
      List.iter
        (fun sfg ->
          List.iter
            (fun (port, e) ->
              match Hashtbl.find_opt driver_index (cname, port) with
              | Some net -> set net (Signal.fmt e)
              | None -> ())
            (Sfg.outputs sfg))
        (Fsm.all_sfgs fsm))
    (Cycle_system.timed_components sys);
  (fmts, driver_index)

let of_system ?(max_deltas = 1000) sys =
  let fmts, driver_index = net_formats sys in
  let sink_index = Hashtbl.create 64 in
  List.iter
    (fun (net, _, sinks) ->
      List.iter (fun (sc, sp) -> Hashtbl.replace sink_index (sc, sp) net) sinks)
    (Cycle_system.nets sys);
  let signals = ref [] in
  let add_signal name init =
    let s = make_signal name init in
    signals := s :: !signals;
    s
  in
  (* One RTL signal per net. *)
  let net_signal = Hashtbl.create 64 in
  List.iter
    (fun (net, _, _) ->
      let fmt =
        match Hashtbl.find_opt fmts net with
        | Some f -> f
        | None -> Fixed.bit_format (* conservatively a bit; refined below *)
      in
      Hashtbl.replace net_signal net (add_signal net (Fixed.zero fmt)))
    (Cycle_system.nets sys);
  let clk = add_signal "clk" (Fixed.of_bool false) in
  let processes = ref [] in
  let resets = ref [] in
  let kernel_commits = ref [] in
  let kernel_procs = ref [] in
  let add_process p = processes := p :: !processes in
  (* Fault-injection bookkeeping: register shadows and state signals. *)
  let all_shadows = ref [] in
  let state_sig_rows = ref [] in
  (* Timed components: comb + seq process pairs. *)
  List.iter
    (fun (cname, fsm) ->
      let regs = Fsm.all_regs fsm in
      (* Shadow and next signals per register. *)
      let shadow =
        List.map
          (fun r ->
            (Signal.Reg.id r, add_signal (cname ^ "." ^ Signal.Reg.name r)
                                (Signal.Reg.init r)))
          regs
      in
      let next_sig =
        List.map
          (fun r ->
            ( Signal.Reg.id r,
              add_signal (cname ^ "." ^ Signal.Reg.name r ^ "_next")
                (Signal.Reg.init r) ))
          regs
      in
      let state_fmt = Fixed.unsigned ~width:16 ~frac:0 in
      let state_sig =
        add_signal (cname ^ ".state")
          (Fixed.of_int state_fmt (Fsm.state_index (Fsm.initial_state fsm)))
      in
      let next_state_sig =
        add_signal (cname ^ ".state_next") state_sig.sg_initial
      in
      all_shadows := shadow @ !all_shadows;
      state_sig_rows :=
        (cname, state_sig, List.length (Fsm.states fsm)) :: !state_sig_rows;
      (* Input nets feeding this component, by SFG input name. *)
      let input_net port = Hashtbl.find_opt sink_index (cname, port) in
      let all_input_nets =
        List.concat_map
          (fun sfg ->
            List.filter_map
              (fun i -> input_net (Signal.Input.name i))
              (Sfg.inputs sfg))
          (Fsm.all_sfgs fsm)
        |> List.sort_uniq String.compare
      in
      let comb_sensitivity =
        List.map (fun net -> Hashtbl.find net_signal net) all_input_nets
        @ List.map snd shadow
        @ [ state_sig ]
      in
      let transitions = Array.of_list (Fsm.transitions fsm) in
      let comb_exec () =
        (* Mirror register shadows into the shared Reg objects so that
           Signal.eval sees the event-driven state. *)
        List.iter
          (fun r ->
            match List.assoc_opt (Signal.Reg.id r) shadow with
            | Some s -> Signal.Reg.set_value r s.sg_value
            | None -> ())
          regs;
        let state = Fixed.to_int state_sig.sg_value in
        (* Select the transition as the FSM would. *)
        let env0 = Signal.Env.create () in
        let selected =
          Array.to_list transitions
          |> List.find_opt (fun tr ->
                 Fsm.state_index tr.Fsm.t_from = state
                 && Fixed.is_true
                      (Signal.eval env0 (Fsm.guard_expr tr.Fsm.t_guard)))
        in
        match selected with
        | None ->
          (* Hold: next state and next regs keep current values. *)
          (next_state_sig, state_sig.sg_value)
          :: List.map
               (fun r ->
                 let nx = List.assoc (Signal.Reg.id r) next_sig in
                 let sh = List.assoc (Signal.Reg.id r) shadow in
                 (nx, sh.sg_value))
               regs
        | Some tr ->
          let env = Signal.Env.create () in
          List.iter
            (fun sfg ->
              List.iter
                (fun i ->
                  match input_net (Signal.Input.name i) with
                  | Some net ->
                    Signal.Env.bind env i
                      (Hashtbl.find net_signal net).sg_value
                  | None -> ())
                (Sfg.inputs sfg))
            tr.Fsm.t_actions;
          let memo = Hashtbl.create 64 in
          let outs =
            List.concat_map
              (fun sfg ->
                List.filter_map
                  (fun (port, e) ->
                    match Hashtbl.find_opt driver_index (cname, port) with
                    | None -> None
                    | Some net ->
                      Some
                        ( Hashtbl.find net_signal net,
                          Signal.eval_memo memo env e ))
                  (Sfg.outputs sfg))
              tr.Fsm.t_actions
          in
          let assigned =
            List.concat_map
              (fun sfg ->
                List.map
                  (fun (r, e) ->
                    ( List.assoc (Signal.Reg.id r) next_sig,
                      Signal.eval_memo memo env e ))
                  (Sfg.assigns sfg))
              tr.Fsm.t_actions
          in
          (* Unassigned registers hold their value. *)
          let holds =
            List.filter_map
              (fun r ->
                let nx = List.assoc (Signal.Reg.id r) next_sig in
                if List.exists (fun (s, _) -> s == nx) assigned then None
                else
                  let sh = List.assoc (Signal.Reg.id r) shadow in
                  Some (nx, sh.sg_value))
              regs
          in
          ((next_state_sig,
            Fixed.of_int state_fmt (Fsm.state_index tr.Fsm.t_goto))
          :: outs)
          @ assigned @ holds
      in
      add_process (make_process (cname ^ "_comb") comb_sensitivity comb_exec);
      (* Sequential process: latch on the rising clock edge. *)
      let prev_clk = ref false in
      let seq_exec () =
        let now = Fixed.is_true clk.sg_value in
        let rising = now && not !prev_clk in
        prev_clk := now;
        if rising then
          (state_sig, next_state_sig.sg_value)
          :: List.map
               (fun r ->
                 let nx = List.assoc (Signal.Reg.id r) next_sig in
                 let sh = List.assoc (Signal.Reg.id r) shadow in
                 (sh, nx.sg_value))
               regs
        else []
      in
      add_process (make_process (cname ^ "_seq") [ clk ] seq_exec);
      resets :=
        (fun () ->
          prev_clk := false;
          Fsm.reset fsm)
        :: !resets)
    (Cycle_system.timed_components sys);
  (* Untimed kernels: combinational processes. *)
  List.iter
    (fun (cname, k) ->
      let ins =
        List.filter_map
          (fun (port, _) ->
            match Hashtbl.find_opt sink_index (cname, port) with
            | Some net -> Some (port, Hashtbl.find net_signal net)
            | None -> None)
          k.Dataflow.Kernel.k_inputs
      in
      let outs =
        List.filter_map
          (fun (port, _) ->
            match Hashtbl.find_opt driver_index (cname, port) with
            | Some net -> Some (port, Hashtbl.find net_signal net)
            | None -> None)
          k.Dataflow.Kernel.k_outputs
      in
      kernel_commits := k.Dataflow.Kernel.k_commit :: !kernel_commits;
      resets := k.Dataflow.Kernel.k_reset :: !resets;
      let exec () =
        if k.Dataflow.Kernel.k_ready () then begin
          let consumed = List.map (fun (port, s) -> (port, [ s.sg_value ])) ins in
          let produced = k.Dataflow.Kernel.k_behavior consumed in
          List.filter_map
            (fun (port, s) ->
              match List.assoc_opt port produced with
              | Some [ v ] -> Some (s, v)
              | Some _ | None -> None)
            outs
        end
        else []
      in
      let p = make_process (cname ^ "_comb") (List.map snd ins) exec in
      kernel_procs := p :: !kernel_procs;
      add_process p)
    (Cycle_system.untimed_components sys);
  (* Primary inputs and probes. *)
  let stims =
    List.filter_map
      (fun (name, _fmt, stim) ->
        match Hashtbl.find_opt driver_index (name, "out") with
        | Some net -> Some (Hashtbl.find net_signal net, stim)
        | None -> None)
      (Cycle_system.primary_inputs sys)
  in
  let probes =
    List.filter_map
      (fun pname ->
        match Hashtbl.find_opt sink_index (pname, "in") with
        | Some net ->
          Some
            {
              pb_name = pname;
              pb_signal = Hashtbl.find net_signal net;
              pb_history = [];
            }
        | None -> None)
      (Cycle_system.probes sys)
  in
  let wakeups = Hashtbl.create 256 in
  List.iter
    (fun p ->
      List.iter
        (fun s ->
          let existing =
            match Hashtbl.find_opt wakeups s.sg_id with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace wakeups s.sg_id (p :: existing))
        p.pr_sensitivity)
    !processes;
  {
    signals = !signals;
    processes = !processes;
    wakeups;
    clk;
    stims;
    probes;
    resets = !resets;
    kernel_commits = !kernel_commits;
    kernel_procs = !kernel_procs;
    regs = Array.of_list (Cycle_system.all_regs sys);
    reg_shadows = !all_shadows;
    state_sigs = Array.of_list (List.rev !state_sig_rows);
    traces = [];
    cycle_count = 0;
    initialized = false;
    n_events = 0;
    n_transactions = 0;
    n_deltas = 0;
    n_activations = 0;
    max_deltas;
  }

(* --- the event-driven kernel ---------------------------------------------- *)

(* Apply assignments, wake sensitive processes of changed signals, loop. *)
let settle t initial_assignments =
  let obs = Ocapi_obs.enabled () in
  let pending = ref initial_assignments in
  let deltas = ref 0 in
  while !pending <> [] do
    incr deltas;
    t.n_deltas <- t.n_deltas + 1;
    if obs then
      (* pending transactions = the event queue of this delta *)
      Ocapi_obs.max_gauge "rtl.queue_high_water"
        (float_of_int (List.length !pending));
    if !deltas > t.max_deltas then begin
      (* Name the signals still being scheduled — the combinational loop
         (or ping-ponging process pair) runs through them. *)
      let culprits =
        List.map (fun (s, _) -> s.sg_name) !pending
        |> List.sort_uniq String.compare
      in
      let shown =
        if List.length culprits <= 12 then culprits
        else
          (List.filteri (fun i _ -> i < 12) culprits)
          @ [ Printf.sprintf "... %d more" (List.length culprits - 12) ]
      in
      raise
        (Delta_overflow
           (Ocapi_error.make Ocapi_error.Delta_overflow ~engine:"rtl"
              ~cycle:t.cycle_count ~nets:shown
              (Printf.sprintf
                 "no convergence after %d delta cycles: %d signals still \
                  scheduling transactions"
                 t.max_deltas (List.length culprits))))
    end;
    (* Apply transactions; collect processes woken by events. *)
    let woken = Hashtbl.create 16 in
    List.iter
      (fun (s, v) ->
        t.n_transactions <- t.n_transactions + 1;
        s.sg_driven_this_cycle <- true;
        if not (Fixed.equal s.sg_value v) then begin
          s.sg_value <- v;
          t.n_events <- t.n_events + 1;
          match Hashtbl.find_opt t.wakeups s.sg_id with
          | Some procs ->
            List.iter (fun p -> Hashtbl.replace woken p.pr_id p) procs
          | None -> ()
        end)
      !pending;
    (* Execute woken processes, gathering next-delta assignments. *)
    let next = ref [] in
    Hashtbl.iter
      (fun _ p ->
        t.n_activations <- t.n_activations + 1;
        next := p.pr_exec () @ !next)
      woken;
    pending := !next
  done

let initialize t =
  (* VHDL semantics: every process executes once at time zero. *)
  if not t.initialized then begin
    t.initialized <- true;
    let assignments =
      List.concat_map
        (fun p ->
          t.n_activations <- t.n_activations + 1;
          p.pr_exec ())
        t.processes
    in
    settle t assignments
  end

let cycle t =
  let t_cycle = Ocapi_obs.span_begin () in
  let events0 = t.n_events
  and transactions0 = t.n_transactions
  and deltas0 = t.n_deltas
  and activations0 = t.n_activations in
  initialize t;
  (* Drive primary inputs, settle. *)
  let input_assignments =
    List.filter_map
      (fun (s, stim) ->
        match stim t.cycle_count with
        | Some v -> Some (s, v)
        | None -> None)
      t.stims
  in
  settle t input_assignments;
  (* Sample probes that saw a transaction, before the clock edge — the
     combinational outputs of this cycle are stable now, computed from
     this cycle's inputs and the pre-edge register values, exactly as a
     test bench would sample them. *)
  List.iter
    (fun pb ->
      if pb.pb_signal.sg_driven_this_cycle then
        pb.pb_history <- (t.cycle_count, pb.pb_signal.sg_value) :: pb.pb_history)
    t.probes;
  (* Record traced signals whose value changed (waveform dumping). *)
  List.iter
    (fun tr ->
      let v = tr.tr_signal.sg_value in
      let changed =
        match tr.tr_last with
        | None -> true
        | Some prev -> not (Fixed.equal prev v)
      in
      if changed then begin
        tr.tr_last <- Some v;
        tr.tr_hist <- (t.cycle_count, v) :: tr.tr_hist
      end)
    t.traces;
  (* Kernel state commits are synchronous: like a register latch they
     apply the staging settled from this cycle's pre-edge signal values.
     Committing before the clock event re-runs any process keeps the
     staged write exactly what the cycle's tokens computed — the three-
     phase scheduler's register-update-phase semantics.  (Committing
     after the edge settle would overwrite the staging with post-edge
     register values first: a one-cycle skew on register-driven write
     data that the differential fuzzer caught.) *)
  if t.kernel_commits <> [] then List.iter (fun f -> f ()) t.kernel_commits;
  (* Rising edge, settle. *)
  settle t [ (t.clk, Fixed.of_bool true) ];
  (* Committed state may change combinational reads (a RAM's read port
     now sees the written word), so kernel processes re-execute and
     settle even when none of their input nets saw an edge event. *)
  if t.kernel_commits <> [] then begin
    let assignments =
      List.concat_map
        (fun p ->
          t.n_activations <- t.n_activations + 1;
          p.pr_exec ())
        t.kernel_procs
    in
    settle t assignments
  end;
  (* Falling edge, settle. *)
  settle t [ (t.clk, Fixed.of_bool false) ];
  if Ocapi_obs.enabled () then begin
    Ocapi_obs.count "rtl.cycles";
    Ocapi_obs.count ~n:(t.n_events - events0) "rtl.events_fired";
    Ocapi_obs.count ~n:(t.n_transactions - transactions0)
      "rtl.events_scheduled";
    Ocapi_obs.count ~n:(t.n_activations - activations0) "rtl.activations";
    Ocapi_obs.observe "rtl.deltas_per_cycle"
      (float_of_int (t.n_deltas - deltas0));
    Ocapi_obs.span_end ~cat:"rtl" "rtl.cycle" t_cycle
  end;
  t.cycle_count <- t.cycle_count + 1

let run t n =
  for _ = 1 to n do
    cycle t
  done

let current_cycle t = t.cycle_count

let output_history t name =
  match List.find_opt (fun pb -> pb.pb_name = name) t.probes with
  | Some pb -> List.rev pb.pb_history
  | None -> error "output_history: no probe %s" name

let reset t =
  t.cycle_count <- 0;
  t.initialized <- false;
  t.n_events <- 0;
  t.n_transactions <- 0;
  t.n_deltas <- 0;
  t.n_activations <- 0;
  List.iter
    (fun s ->
      s.sg_value <- s.sg_initial;
      s.sg_driven_this_cycle <- false)
    t.signals;
  Array.iter Signal.Reg.reset t.regs;
  List.iter (fun f -> f ()) t.resets;
  List.iter (fun pb -> pb.pb_history <- []) t.probes;
  List.iter
    (fun tr ->
      tr.tr_last <- None;
      tr.tr_hist <- [])
    t.traces

let trace_all t =
  if t.traces = [] then
    t.traces <-
      List.rev_map
        (fun s -> { tr_signal = s; tr_last = None; tr_hist = [] })
        t.signals

let traced_histories t =
  List.map
    (fun tr ->
      ( tr.tr_signal.sg_name,
        (Fixed.fmt tr.tr_signal.sg_value).Fixed.width,
        List.rev tr.tr_hist ))
    t.traces

let signal_count t = List.length t.signals
let process_count t = List.length t.processes

(* --- fault-injection access ----------------------------------------------- *)

let register_count t = Array.length t.regs

let register_info t i =
  let r = t.regs.(i) in
  (Signal.Reg.name r, Signal.Reg.fmt r)

let flip_register_bit t i ~bit =
  let r = t.regs.(i) in
  let f = Signal.Reg.fmt r in
  if bit < 0 || bit >= f.Fixed.width then
    invalid_arg
      (Printf.sprintf "Rtl.flip_register_bit: bit %d outside format %s of %s"
         bit
         (Fixed.format_to_string f)
         (Signal.Reg.name r));
  match List.assoc_opt (Signal.Reg.id r) t.reg_shadows with
  | None ->
    error "flip_register_bit: register %s has no shadow signal"
      (Signal.Reg.name r)
  | Some sh ->
    initialize t;
    let v = sh.sg_value in
    (* The shadow may hold a value in a wider expression format than the
       declared one; flip within the stored width. *)
    let b = min bit ((Fixed.fmt v).Fixed.width - 1) in
    settle t [ (sh, Fixed.flip_bit v b) ]

let component_count t = Array.length t.state_sigs

let component_info t i =
  let cname, _, n = t.state_sigs.(i) in
  (cname, n)

let component_state t i =
  let _, s, _ = t.state_sigs.(i) in
  Fixed.to_int s.sg_value

let set_component_state t i state =
  let cname, s, n = t.state_sigs.(i) in
  if state < 0 || state >= n then
    raise
      (Ocapi_error.Error
         (Ocapi_error.make Ocapi_error.Invalid_state ~engine:"rtl"
            ~construct:cname ~cycle:t.cycle_count
            (Printf.sprintf "state index %d outside the %d encoded states"
               state n)));
  initialize t;
  settle t [ (s, Fixed.of_int (Fixed.fmt s.sg_value) state) ]

type stats = {
  cycles : int;
  events : int;
  transactions : int;
  deltas : int;
  activations : int;
}

let stats t =
  {
    cycles = t.cycle_count;
    events = t.n_events;
    transactions = t.n_transactions;
    deltas = t.n_deltas;
    activations = t.n_activations;
  }
