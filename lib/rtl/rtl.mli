(** Event-driven register-transfer simulation (the "VHDL (RT)" baseline).

    Table 1 of the paper compares the C++ engines against RT-VHDL
    simulation by a commercial event-driven simulator.  This module is
    that comparator, built rather than bought: a design is elaborated
    into VHDL-style {e processes} over {e signals} and simulated with an
    event-driven kernel — sensitivity lists, transactions, events and
    delta cycles.

    Elaboration follows the classic two-process VHDL coding style the
    paper's code generator targets (fig 8):
    - per timed component, one {e combinational process} sensitive to
      its input nets, its state and its registers' shadow signals; it
      selects the FSM transition and drives output nets, next-state and
      next-register signals;
    - per timed component, one {e sequential process} sensitive to the
      clock; on the rising edge it latches next-state/next-register;
    - untimed kernels become combinational processes (they must be
      idempotent within a cycle, as a RAM model is);
    - a test-bench process drives the clock and the primary inputs.

    One simulated clock cycle = drive inputs, settle; rising edge,
    settle; falling edge, settle.  "Settle" is the delta-cycle loop; an
    unbounded delta chain (a combinational loop) raises
    {!Delta_overflow}. *)

(** The delta-cycle budget was exhausted.  The diagnostic names (a
    sample of) the signals still scheduling transactions, the budget and
    the clock cycle. *)
exception Delta_overflow of Ocapi_error.t

exception Rtl_error of string

type t

(** Elaborate a system for event-driven simulation.  The RTL engine
    shares the register objects of the source system: run only one
    engine at a time and call {!reset} before a run.  [max_deltas]
    bounds the delta-cycle loop of one settle (default 1000). *)
val of_system : ?max_deltas:int -> Cycle_system.t -> t

(** Canonical structural hash (hex MD5) of the elaboration: signal
    names, initial values and formats in elaboration order, process
    names and sensitivity lists, probes, registers and FSM state
    signals.  Gensym'd signal/process ids are excluded, so two
    elaborations of the same system digest equally — the RTL level's
    entry in the cross-level digest scheme. *)
val digest : t -> string

(** Simulate one clock cycle (input drive + both clock edges). *)
val cycle : t -> unit

val run : t -> int -> unit
val current_cycle : t -> int

(** Probe history, keyed by the probe component's name. *)
val output_history : t -> string -> (int * Fixed.t) list

val reset : t -> unit

(** {1 Signal tracing (waveform dumping)} *)

(** Enable per-signal value recording: each subsequent {!cycle} records,
    at the probe-sampling point, every signal whose value changed since
    it was last recorded.  Costs one sweep of the signal list per cycle;
    leave off for timed runs. *)
val trace_all : t -> unit

(** Recorded signal histories as (signal name, bit width, history);
    each history entry is the cycle at which the signal took a new
    value. *)
val traced_histories : t -> (string * int * (int * Fixed.t) list) list

(** {1 Size and activity metrics} *)

val signal_count : t -> int
val process_count : t -> int

(** {1 Fault-injection access}

    Registers are indexed in [Cycle_system.all_regs] order — the shared
    indexing of the SEU campaigns, identical across engines. *)

val register_count : t -> int

(** [register_info t i] is the register's name and declared format. *)
val register_info : t -> int -> string * Fixed.format

(** [flip_register_bit t i ~bit] XORs one bit into register [i]'s shadow
    signal and lets the event kernel propagate the change (a transient
    SEU between two {!cycle}s).
    @raise Invalid_argument if [bit] is outside the declared width. *)
val flip_register_bit : t -> int -> bit:int -> unit

(** Timed components (FSMs), in system order. *)
val component_count : t -> int

(** [component_info t i] is the component's name and state count. *)
val component_info : t -> int -> string * int

val component_state : t -> int -> int

(** [set_component_state t i s] forces FSM [i]'s state signal to [s] and
    propagates.
    @raise Ocapi_error.Error with code [Invalid_state] if [s] is not an
    encoded state — the detected-outcome path of SEU campaigns on state
    registers. *)
val set_component_state : t -> int -> int -> unit

type stats = {
  cycles : int;
  events : int;  (** signal value changes *)
  transactions : int;  (** signal assignments, changed or not *)
  deltas : int;  (** delta cycles executed *)
  activations : int;  (** process executions *)
}

val stats : t -> stats
