(** Event-driven register-transfer simulation (the "VHDL (RT)" baseline).

    Table 1 of the paper compares the C++ engines against RT-VHDL
    simulation by a commercial event-driven simulator.  This module is
    that comparator, built rather than bought: a design is elaborated
    into VHDL-style {e processes} over {e signals} and simulated with an
    event-driven kernel — sensitivity lists, transactions, events and
    delta cycles.

    Elaboration follows the classic two-process VHDL coding style the
    paper's code generator targets (fig 8):
    - per timed component, one {e combinational process} sensitive to
      its input nets, its state and its registers' shadow signals; it
      selects the FSM transition and drives output nets, next-state and
      next-register signals;
    - per timed component, one {e sequential process} sensitive to the
      clock; on the rising edge it latches next-state/next-register;
    - untimed kernels become combinational processes (they must be
      idempotent within a cycle, as a RAM model is);
    - a test-bench process drives the clock and the primary inputs.

    One simulated clock cycle = drive inputs, settle; rising edge,
    settle; falling edge, settle.  "Settle" is the delta-cycle loop; an
    unbounded delta chain (a combinational loop) raises
    {!Delta_overflow}. *)

exception Delta_overflow of string
exception Rtl_error of string

type t

(** Elaborate a system for event-driven simulation.  The RTL engine
    shares the register objects of the source system: run only one
    engine at a time and call {!reset} before a run. *)
val of_system : Cycle_system.t -> t

(** Simulate one clock cycle (input drive + both clock edges). *)
val cycle : t -> unit

val run : t -> int -> unit
val current_cycle : t -> int

(** Probe history, keyed by the probe component's name. *)
val output_history : t -> string -> (int * Fixed.t) list

val reset : t -> unit

(** {1 Signal tracing (waveform dumping)} *)

(** Enable per-signal value recording: each subsequent {!cycle} records,
    at the probe-sampling point, every signal whose value changed since
    it was last recorded.  Costs one sweep of the signal list per cycle;
    leave off for timed runs. *)
val trace_all : t -> unit

(** Recorded signal histories as (signal name, bit width, history);
    each history entry is the cycle at which the signal took a new
    value. *)
val traced_histories : t -> (string * int * (int * Fixed.t) list) list

(** {1 Size and activity metrics} *)

val signal_count : t -> int
val process_count : t -> int

type stats = {
  cycles : int;
  events : int;  (** signal value changes *)
  transactions : int;  (** signal assignments, changed or not *)
  deltas : int;  (** delta cycles executed *)
  activations : int;  (** process executions *)
}

val stats : t -> stats
