type stats = {
  gates_before : int;
  gates_after : int;
  dffs_before : int;
  dffs_after : int;
  equivalents_before : int;
  equivalents_after : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "netlist optimization: %d -> %d gates, %d -> %d dffs, %d -> %d \
     gate-equivalents (%.0f%%)"
    s.gates_before s.gates_after s.dffs_before s.dffs_after
    s.equivalents_before s.equivalents_after
    (100.
    *. float_of_int s.equivalents_after
    /. float_of_int (max 1 s.equivalents_before))

(* Working gate representation (mutable: folds may rewrite the kind). *)
type wgate = {
  mutable w_kind : Netlist.gate_kind;
  mutable w_ins : int array;
  w_out : int;
  mutable w_dead : bool;
}

type binding = Opaque | Const of bool | Alias of int

let run_once nl =
  let n = Netlist.net_count nl in
  let binding = Array.make (max 1 n) Opaque in
  (* Resolve through alias chains. *)
  let rec repr net =
    match binding.(net) with Alias t -> repr t | Const _ | Opaque -> net
  in
  let resolve net = binding.(repr net) in
  let gates =
    Netlist.fold_gates nl ~init:[] ~f:(fun acc kind ins out ->
        { w_kind = kind; w_ins = Array.copy ins; w_out = out; w_dead = false }
        :: acc)
    |> List.rev |> Array.of_list
  in
  let dffs =
    Netlist.fold_dffs nl ~init:[] ~f:(fun acc init ~d ~q -> (init, d, q) :: acc)
    |> List.rev |> Array.of_list
  in
  let roms = Netlist.roms_list nl in
  let rams = Netlist.rams_list nl in
  (* --- constant propagation, identities and structural hashing --- *)
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations < 50 do
    incr iterations;
    changed := false;
    let hash : (string, int) Hashtbl.t = Hashtbl.create 1024 in
    Array.iter
      (fun g ->
        if not g.w_dead then begin
          (* Normalize inputs to representatives. *)
          Array.iteri
            (fun i x ->
              let r = repr x in
              if r <> x then begin
                g.w_ins.(i) <- r;
                changed := true
              end)
            g.w_ins;
          let const i =
            match resolve g.w_ins.(i) with Const b -> Some b | Alias _ | Opaque -> None
          in
          let bind b =
            binding.(g.w_out) <- b;
            g.w_dead <- true;
            changed := true
          in
          let alias i = bind (Alias g.w_ins.(i)) in
          (match g.w_kind, Array.length g.w_ins with
          | Netlist.Const0, _ -> bind (Const false)
          | Netlist.Const1, _ -> bind (Const true)
          | Netlist.Buf, 1 -> (
            match const 0 with Some b -> bind (Const b) | None -> alias 0)
          | Netlist.Not, 1 -> (
            match const 0 with
            | Some b -> bind (Const (not b))
            | None -> ())
          | Netlist.And, 2 -> (
            match const 0, const 1 with
            | Some false, _ | _, Some false -> bind (Const false)
            | Some true, Some true -> bind (Const true)
            | Some true, None -> alias 1
            | None, Some true -> alias 0
            | None, None -> if g.w_ins.(0) = g.w_ins.(1) then alias 0)
          | Netlist.Or, 2 -> (
            match const 0, const 1 with
            | Some true, _ | _, Some true -> bind (Const true)
            | Some false, Some false -> bind (Const false)
            | Some false, None -> alias 1
            | None, Some false -> alias 0
            | None, None -> if g.w_ins.(0) = g.w_ins.(1) then alias 0)
          | Netlist.Xor, 2 -> (
            match const 0, const 1 with
            | Some a, Some b -> bind (Const (a <> b))
            | Some false, None -> alias 1
            | None, Some false -> alias 0
            | Some true, None ->
              g.w_kind <- Netlist.Not;
              g.w_ins <- [| g.w_ins.(1) |];
              changed := true
            | None, Some true ->
              g.w_kind <- Netlist.Not;
              g.w_ins <- [| g.w_ins.(0) |];
              changed := true
            | None, None ->
              if g.w_ins.(0) = g.w_ins.(1) then bind (Const false))
          | Netlist.Nand, 2 -> (
            match const 0, const 1 with
            | Some false, _ | _, Some false -> bind (Const true)
            | Some true, Some true -> bind (Const false)
            | Some true, None ->
              g.w_kind <- Netlist.Not;
              g.w_ins <- [| g.w_ins.(1) |];
              changed := true
            | None, Some true ->
              g.w_kind <- Netlist.Not;
              g.w_ins <- [| g.w_ins.(0) |];
              changed := true
            | None, None -> ())
          | Netlist.Nor, 2 -> (
            match const 0, const 1 with
            | Some true, _ | _, Some true -> bind (Const false)
            | Some false, Some false -> bind (Const true)
            | Some false, None ->
              g.w_kind <- Netlist.Not;
              g.w_ins <- [| g.w_ins.(1) |];
              changed := true
            | None, Some false ->
              g.w_kind <- Netlist.Not;
              g.w_ins <- [| g.w_ins.(0) |];
              changed := true
            | None, None -> ())
          | Netlist.Mux2, 3 -> (
            match const 0 with
            | Some true -> alias 1
            | Some false -> alias 2
            | None -> (
              if g.w_ins.(1) = g.w_ins.(2) then alias 1
              else
                match const 1, const 2 with
                | Some true, Some false -> alias 0
                | Some false, Some true ->
                  g.w_kind <- Netlist.Not;
                  g.w_ins <- [| g.w_ins.(0) |];
                  changed := true
                | _, _ -> ()))
          | (Netlist.Buf | Netlist.Not | Netlist.And | Netlist.Or
            | Netlist.Xor | Netlist.Nand | Netlist.Nor | Netlist.Mux2), _ ->
            ());
          (* Structural hashing on the surviving gate. *)
          if not g.w_dead then begin
            let key =
              (match g.w_kind with
              | Netlist.Buf -> "b"
              | Netlist.Not -> "n"
              | Netlist.And -> "a"
              | Netlist.Or -> "o"
              | Netlist.Xor -> "x"
              | Netlist.Nand -> "A"
              | Netlist.Nor -> "O"
              | Netlist.Mux2 -> "m"
              | Netlist.Const0 -> "0"
              | Netlist.Const1 -> "1")
              ^ String.concat ","
                  (Array.to_list (Array.map string_of_int g.w_ins))
            in
            match Hashtbl.find_opt hash key with
            | Some other when other <> g.w_out ->
              binding.(g.w_out) <- Alias other;
              g.w_dead <- true;
              changed := true
            | Some _ -> ()
            | None -> Hashtbl.add hash key g.w_out
          end
        end)
      gates;
    (* DFFs whose input resolved to their own constant init value could
       fold, but only when the init matches a constant d forever; fold
       the simple case d = Const b with init = b. *)
    Array.iteri
      (fun i (init, d, q) ->
        let d' = repr d in
        if d' <> d then dffs.(i) <- (init, d', q);
        match binding.(q), resolve d' with
        | Opaque, Const b when b = init ->
          binding.(q) <- Const b;
          changed := true
        | _, _ -> ())
      dffs
  done;
  (* --- liveness ------------------------------------------------------- *)
  let live = Array.make (max 1 n) false in
  let driver_gate = Array.make (max 1 n) (-1) in
  Array.iteri
    (fun i g -> if not g.w_dead then driver_gate.(g.w_out) <- i)
    gates;
  let dff_of_q = Hashtbl.create 64 in
  Array.iteri
    (fun i (_, _, q) ->
      match binding.(q) with
      | Opaque -> Hashtbl.replace dff_of_q q i
      | Const _ | Alias _ -> ())
    dffs;
  let rom_of_out = Hashtbl.create 16 and ram_of_out = Hashtbl.create 16 in
  List.iteri
    (fun i (_, _, _, _, outs) ->
      Array.iter (fun o -> Hashtbl.replace rom_of_out o i) outs)
    roms;
  List.iteri
    (fun i (_, _, _, _, _, _, outs) ->
      Array.iter (fun o -> Hashtbl.replace ram_of_out o i) outs)
    rams;
  let rec mark net =
    let r = repr net in
    if (not live.(r)) && resolve r = Opaque then begin
      live.(r) <- true;
      if driver_gate.(r) >= 0 then
        Array.iter mark gates.(driver_gate.(r)).w_ins;
      (match Hashtbl.find_opt dff_of_q r with
      | Some i ->
        let _, d, _ = dffs.(i) in
        mark d
      | None -> ());
      (match Hashtbl.find_opt rom_of_out r with
      | Some i ->
        let _, _, _, addr, _ = List.nth roms i in
        Array.iter mark addr
      | None -> ());
      match Hashtbl.find_opt ram_of_out r with
      | Some i ->
        let _, _, _, addr, wdata, we, _ = List.nth rams i in
        Array.iter mark addr;
        Array.iter mark wdata;
        mark we
      | None -> ()
    end
  in
  List.iter
    (fun (_, bus) -> Array.iter mark bus)
    (Netlist.outputs_list nl);
  (* --- rebuild --------------------------------------------------------- *)
  let out = Netlist.create (Netlist.name nl) in
  let map = Array.make (max 1 n) (-1) in
  List.iter
    (fun (name, bus) ->
      let nb = Netlist.input_bus out name (Array.length bus) in
      Array.iteri (fun i old -> map.(old) <- nb.(i)) bus)
    (Netlist.inputs_list nl);
  let const0 = lazy (Netlist.gate out Netlist.Const0 []) in
  let const1 = lazy (Netlist.gate out Netlist.Const1 []) in
  (* Pre-allocate new nets for every live opaque rep not already mapped. *)
  for net = 0 to n - 1 do
    if live.(net) && map.(net) < 0 then map.(net) <- Netlist.new_net out
  done;
  let lookup net =
    let r = repr net in
    match resolve r with
    | Const false -> Lazy.force const0
    | Const true -> Lazy.force const1
    | Alias _ -> assert false
    | Opaque ->
      if map.(r) < 0 then map.(r) <- Netlist.new_net out;
      map.(r)
  in
  Array.iter
    (fun g ->
      if (not g.w_dead) && live.(g.w_out) && map.(g.w_out) >= 0 then
        Netlist.gate_into out g.w_kind
          (Array.to_list (Array.map lookup g.w_ins))
          ~dst:map.(g.w_out))
    gates;
  Array.iter
    (fun (init, d, q) ->
      match binding.(q) with
      | Opaque when live.(q) ->
        Netlist.dff_into out ~init ~q:map.(q) (lookup d)
      | Opaque | Const _ | Alias _ -> ())
    dffs;
  List.iter
    (fun (name, width, contents, addr, outs) ->
      if Array.exists (fun o -> live.(repr o)) outs then begin
        let fresh =
          Netlist.rom out ~name ~width ~contents (Array.map lookup addr)
        in
        Array.iteri
          (fun i o ->
            let r = repr o in
            if live.(r) && map.(r) >= 0 then
              Netlist.buf_into out ~dst:map.(r) fresh.(i))
          outs
      end)
    roms;
  List.iter
    (fun (name, words, width, addr, wdata, we, outs) ->
      if Array.exists (fun o -> live.(repr o)) outs then begin
        let fresh =
          Netlist.ram out ~name ~words ~width
            ~addr:(Array.map lookup addr)
            ~wdata:(Array.map lookup wdata)
            ~we:(lookup we)
        in
        Array.iteri
          (fun i o ->
            let r = repr o in
            if live.(r) && map.(r) >= 0 then
              Netlist.buf_into out ~dst:map.(r) fresh.(i))
          outs
      end)
    rams;
  List.iter
    (fun (name, bus) -> Netlist.output_bus out name (Array.map lookup bus))
    (Netlist.outputs_list nl);
  let before = Netlist.counts nl and after = Netlist.counts out in
  ( out,
    {
      gates_before = before.Netlist.combinational;
      gates_after = after.Netlist.combinational;
      dffs_before = before.Netlist.flip_flops;
      dffs_after = after.Netlist.flip_flops;
      equivalents_before = before.Netlist.gate_equivalents;
      equivalents_after = after.Netlist.gate_equivalents;
    } )

(* Iterate whole passes: the rebuild introduces bridge buffers and the
   alias collapse exposes further structural merges, so one pass is not
   a fixpoint.  Loop until the weighted size stops improving. *)
let run nl =
  let rec go current first_stats passes =
    let t_pass = Ocapi_obs.span_begin () in
    let optimized, stats = run_once current in
    if Ocapi_obs.enabled () then begin
      Ocapi_obs.count "netopt.passes";
      Ocapi_obs.count
        ~n:(max 0 (stats.equivalents_before - stats.equivalents_after))
        "netopt.gate_equivalents_removed";
      Ocapi_obs.span_end ~cat:"synth"
        ~args:
          [
            ("pass", Ocapi_obs.Json.Int passes);
            ("gates_before", Ocapi_obs.Json.Int stats.equivalents_before);
            ("gates_after", Ocapi_obs.Json.Int stats.equivalents_after);
          ]
        "netopt.pass" t_pass
    end;
    let merged =
      match first_stats with
      | None -> stats
      | Some f ->
        {
          f with
          gates_after = stats.gates_after;
          dffs_after = stats.dffs_after;
          equivalents_after = stats.equivalents_after;
        }
    in
    if passes >= 5 || stats.equivalents_after >= stats.equivalents_before then
      (optimized, merged)
    else go optimized (Some merged) (passes + 1)
  in
  go nl None 1
