exception Synth_error of string

let error fmt = Format.kasprintf (fun s -> raise (Synth_error s)) fmt

type state_encoding = Binary | One_hot

type options = {
  share_operators : bool;
  state_encoding : state_encoding;
  emit_probe_valids : bool;
}

let default_options =
  { share_operators = true; state_encoding = Binary; emit_probe_valids = false }

type macro_spec =
  | Ram_macro of {
      words : int;
      width : int;
      addr_port : string;
      wdata_port : string;
      we_port : string;
      rdata_port : string;
    }

type component_report = {
  cr_name : string;
  cr_instructions : int;
  cr_states : int;
  cr_shared_units : (string * int) list;
  cr_ops_before_sharing : int;
  cr_gate_equivalents : int;
  cr_seconds : float;
}

type report = {
  system_name : string;
  components : component_report list;
  total : Netlist.gate_counts;
  total_seconds : float;
}

(* --- structural map ------------------------------------------------------- *)

(* Where the design's architectural state landed in the netlist: the
   flip-flop q-nets of every datapath register (Cycle_system.all_regs
   order) and of every controller state register (timed-component
   order).  This is the gate cycle engine's poke surface — SEU flips
   write q-nets, FSM state reads decode them. *)

type reg_map = {
  rm_name : string;
  rm_fmt : Fixed.format;
  rm_nets : Netlist.net array;  (* q-nets, LSB first *)
}

type fsm_map = {
  fm_name : string;
  fm_states : int;
  fm_encoding : state_encoding;
  fm_state_nets : Netlist.net array;  (* state register q-nets *)
}

type state_map = { sm_regs : reg_map array; sm_fsms : fsm_map array }

(* --- shared operator pools ------------------------------------------------ *)

type unit_cell = {
  u_operands : Wordgen.bus array;  (* pre-allocated fresh nets *)
  u_out : Wordgen.bus;
  mutable u_bindings : (Netlist.net * Wordgen.bus array) list;
      (* (instruction select, operand buses) *)
}

(* A shareable-operation signature, also used as a report label.
   Word-level units worth multiplexing: arithmetic, comparators and ROM
   ports.  Cheap bitwise logic and wiring-only operations stay inline. *)
let signature_of node =
  let f = Fixed.format_to_string in
  let two tag x y =
    Some (Printf.sprintf "%s%sx%s" tag (f (Signal.fmt x)) (f (Signal.fmt y)))
  in
  let one tag x = Some (Printf.sprintf "%s%s" tag (f (Signal.fmt x))) in
  match Signal.op node with
  | Signal.Add (x, y) -> two "add" x y
  | Signal.Sub (x, y) -> two "sub" x y
  | Signal.Mul (x, y) -> two "mul" x y
  | Signal.Eq (x, y) -> two "eq" x y
  | Signal.Lt (x, y) -> two "lt" x y
  | Signal.Le (x, y) -> two "le" x y
  | Signal.Neg x -> one "neg" x
  | Signal.Abs x -> one "abs" x
  | Signal.Rom_read (r, idx) ->
    Some (Printf.sprintf "rom:%s[%s]" (Signal.Rom.name r) (f (Signal.fmt idx)))
  | Signal.Const _ | Signal.Input_read _ | Signal.Reg_read _ | Signal.And _
  | Signal.Or _ | Signal.Xor _ | Signal.Not _ | Signal.Mux _ | Signal.Resize _
  | Signal.Shift_left _ | Signal.Shift_right _ -> None

let rom_addr_width (idx_fmt : Fixed.format) =
  let frac = idx_fmt.Fixed.frac in
  if frac <= 0 then idx_fmt.Fixed.width - frac
  else max 1 (idx_fmt.Fixed.width - frac)

(* Build the hardware unit for a signature, from the sample node. *)
let build_unit nl node =
  let fresh_bus (f : Fixed.format) =
    Array.init f.Fixed.width (fun _ -> Netlist.new_net nl)
  in
  let binop gen x y =
    let fa = Signal.fmt x and fb = Signal.fmt y in
    let a = fresh_bus fa and b = fresh_bus fb in
    { u_operands = [| a; b |]; u_out = gen ~fa ~fb a b; u_bindings = [] }
  in
  let unop gen x =
    let fa = Signal.fmt x in
    let a = fresh_bus fa in
    { u_operands = [| a |]; u_out = gen ~fa a; u_bindings = [] }
  in
  match Signal.op node with
  | Signal.Add (x, y) -> binop (Wordgen.add nl) x y
  | Signal.Sub (x, y) -> binop (Wordgen.sub nl) x y
  | Signal.Mul (x, y) -> binop (Wordgen.mul nl) x y
  | Signal.Eq (x, y) ->
    binop (fun ~fa ~fb a b -> [| Wordgen.eq nl ~fa ~fb a b |]) x y
  | Signal.Lt (x, y) ->
    binop (fun ~fa ~fb a b -> [| Wordgen.lt nl ~fa ~fb a b |]) x y
  | Signal.Le (x, y) ->
    binop (fun ~fa ~fb a b -> [| Wordgen.le nl ~fa ~fb a b |]) x y
  | Signal.Neg x -> unop (Wordgen.neg nl) x
  | Signal.Abs x -> unop (Wordgen.abs_ nl) x
  | Signal.Rom_read (r, idx) ->
    let aw = rom_addr_width (Signal.fmt idx) in
    let addr = Array.init aw (fun _ -> Netlist.new_net nl) in
    let contents =
      Array.init (Signal.Rom.size r) (fun i ->
          Fixed.mantissa (Signal.Rom.get r i))
    in
    let out =
      Netlist.rom nl ~name:(Signal.Rom.name r)
        ~width:(Signal.Rom.fmt r).Fixed.width ~contents addr
    in
    { u_operands = [| addr |]; u_out = out; u_bindings = [] }
  | Signal.Const _ | Signal.Input_read _ | Signal.Reg_read _ | Signal.And _
  | Signal.Or _ | Signal.Xor _ | Signal.Not _ | Signal.Mux _ | Signal.Resize _
  | Signal.Shift_left _ | Signal.Shift_right _ ->
    error "build_unit: not a shareable operation"

(* --- expression compilation ----------------------------------------------- *)

(* Compile a node to a bus.  [memo] is component-global: expression
   objects shared between instructions become one piece of hardware,
   which is correct because unpooled logic is a pure function of the
   input nets and registers, independent of the selected transition.
   [eligible node] decides whether this node goes through the operator
   pools (it must be reachable from exactly the current instruction);
   pooled operands are gated by [sel]. *)
let rec compile_node nl ~in_bus ~reg_bus ~pools ~sel ~occ ~eligible memo node =
  match Hashtbl.find_opt memo (Signal.id node) with
  | Some bus -> bus
  | None ->
    let bus =
      compile_fresh nl ~in_bus ~reg_bus ~pools ~sel ~occ ~eligible memo node
    in
    Hashtbl.replace memo (Signal.id node) bus;
    bus

and compile_fresh nl ~in_bus ~reg_bus ~pools ~sel ~occ ~eligible memo node =
  let go = compile_node nl ~in_bus ~reg_bus ~pools ~sel ~occ ~eligible memo in
  match (if eligible node then signature_of node else None) with
  | Some key ->
    let operands =
      match Signal.op node with
      | Signal.Add (x, y) | Signal.Sub (x, y) | Signal.Mul (x, y)
      | Signal.Eq (x, y) | Signal.Lt (x, y) | Signal.Le (x, y) ->
        [| go x; go y |]
      | Signal.Neg x | Signal.Abs x -> [| go x |]
      | Signal.Rom_read (_, idx) ->
        [| Wordgen.rom_address nl ~idx_fmt:(Signal.fmt idx) (go idx) |]
      | Signal.Const _ | Signal.Input_read _ | Signal.Reg_read _
      | Signal.And _ | Signal.Or _ | Signal.Xor _ | Signal.Not _
      | Signal.Mux _ | Signal.Resize _ | Signal.Shift_left _
      | Signal.Shift_right _ -> assert false
    in
    let units =
      match Hashtbl.find_opt pools key with
      | Some us -> us
      | None -> error "no pool for signature %s" key
    in
    let index =
      match Hashtbl.find_opt occ key with Some n -> n | None -> 0
    in
    Hashtbl.replace occ key (index + 1);
    let unit_cell = units.(index) in
    unit_cell.u_bindings <- (sel, operands) :: unit_cell.u_bindings;
    unit_cell.u_out
  | None -> begin
    match Signal.op node with
    | Signal.Const v ->
      Netlist.const_bus nl ~width:(Fixed.fmt v).Fixed.width (Fixed.mantissa v)
    | Signal.Input_read i -> begin
      match in_bus (Signal.Input.name i) with
      | Some bus -> bus
      | None ->
        error "input port %s is not connected" (Signal.Input.name i)
    end
    | Signal.Reg_read r -> reg_bus r
    | Signal.Add (x, y) ->
      Wordgen.add nl ~fa:(Signal.fmt x) ~fb:(Signal.fmt y) (go x) (go y)
    | Signal.Sub (x, y) ->
      Wordgen.sub nl ~fa:(Signal.fmt x) ~fb:(Signal.fmt y) (go x) (go y)
    | Signal.Mul (x, y) ->
      Wordgen.mul nl ~fa:(Signal.fmt x) ~fb:(Signal.fmt y) (go x) (go y)
    | Signal.Neg x -> Wordgen.neg nl ~fa:(Signal.fmt x) (go x)
    | Signal.Abs x -> Wordgen.abs_ nl ~fa:(Signal.fmt x) (go x)
    | Signal.And (x, y) ->
      Wordgen.logic_op nl Netlist.And ~fa:(Signal.fmt x) ~fb:(Signal.fmt y)
        (go x) (go y)
    | Signal.Or (x, y) ->
      Wordgen.logic_op nl Netlist.Or ~fa:(Signal.fmt x) ~fb:(Signal.fmt y)
        (go x) (go y)
    | Signal.Xor (x, y) ->
      Wordgen.logic_op nl Netlist.Xor ~fa:(Signal.fmt x) ~fb:(Signal.fmt y)
        (go x) (go y)
    | Signal.Not x -> Wordgen.not_ nl (go x)
    | Signal.Eq (x, y) ->
      [| Wordgen.eq nl ~fa:(Signal.fmt x) ~fb:(Signal.fmt y) (go x) (go y) |]
    | Signal.Lt (x, y) ->
      [| Wordgen.lt nl ~fa:(Signal.fmt x) ~fb:(Signal.fmt y) (go x) (go y) |]
    | Signal.Le (x, y) ->
      [| Wordgen.le nl ~fa:(Signal.fmt x) ~fb:(Signal.fmt y) (go x) (go y) |]
    | Signal.Mux (s, x, y) ->
      let sb = go s in
      Wordgen.mux2 nl ~fa:(Signal.fmt x) ~fb:(Signal.fmt y)
        ~fr:(Signal.fmt node) sb.(0) (go x) (go y)
    | Signal.Resize (round, overflow, x) ->
      Wordgen.resize nl ~round ~overflow ~src:(Signal.fmt x)
        ~dst:(Signal.fmt node) (go x)
    | Signal.Rom_read (r, idx) ->
      (* Multi-instruction ROM access: a dedicated port, no gating. *)
      let addr = Wordgen.rom_address nl ~idx_fmt:(Signal.fmt idx) (go idx) in
      let contents =
        Array.init (Signal.Rom.size r) (fun i ->
            Fixed.mantissa (Signal.Rom.get r i))
      in
      Netlist.rom nl ~name:(Signal.Rom.name r)
        ~width:(Signal.Rom.fmt r).Fixed.width ~contents addr
    | Signal.Shift_left (x, _) | Signal.Shift_right (x, _) -> go x
  end

(* Guards: pure expressions over registers, compiled without pools but
   through the component-global memo so they share logic with the
   datapath. *)
let compile_guard nl ~in_bus ~reg_bus memo expr =
  let pools = Hashtbl.create 1 in
  let occ = Hashtbl.create 1 in
  let bus =
    compile_node nl ~in_bus ~reg_bus ~pools ~sel:0 ~occ
      ~eligible:(fun _ -> false)
      memo expr
  in
  bus.(0)

(* --- controller synthesis -------------------------------------------------- *)

let rec log2up n = if n <= 1 then 0 else 1 + log2up ((n + 1) / 2)

(* Build the controller from the FSM: an encoded state register plus
   two-level logic for the transition select lines and the next state.
   [guard_net ti] is the synthesized 1-bit guard wire of transition [ti]
   (meaningless for [always] guards).  Returns the select line per
   transition, in transition order. *)
let synthesize_controller nl fsm ~encoding ~guard_net =
  let states = Fsm.states fsm in
  let n_states = List.length states in
  let sw =
    match encoding with
    | Binary -> max 1 (log2up n_states)
    | One_hot -> max 1 n_states
  in
  (* Does bit [b] of the register hold 1 when the machine is in the
     state with index [enc]? *)
  let bit_of enc b =
    match encoding with
    | Binary -> enc land (1 lsl b) <> 0
    | One_hot -> enc = b
  in
  let state_q = Array.init sw (fun _ -> Netlist.new_net nl) in
  let transitions = Array.of_list (Fsm.transitions fsm) in
  let n_tr = Array.length transitions in
  (* SOP input vector: state bits, then one wire per guarded transition. *)
  let guard_pos = Array.make n_tr (-1) in
  let guard_wires = ref [] in
  Array.iteri
    (fun ti tr ->
      if not (Fsm.is_always tr.Fsm.t_guard) then begin
        guard_pos.(ti) <- sw + List.length !guard_wires;
        guard_wires := guard_net ti :: !guard_wires
      end)
    transitions;
  let inputs = Array.append state_q (Array.of_list (List.rev !guard_wires)) in
  let n_inputs = Array.length inputs in
  (* A transition is dead when an earlier transition from the same state
     is unconditional. *)
  let dead ti =
    let from = transitions.(ti).Fsm.t_from in
    let rec scan j =
      j < ti
      && ((Fsm.state_equal transitions.(j).Fsm.t_from from
          && Fsm.is_always transitions.(j).Fsm.t_guard)
         || scan (j + 1))
    in
    scan 0
  in
  let state_literals enc =
    Array.init sw (fun b -> if bit_of enc b then Sop.One else Sop.Zero)
  in
  let cube_of ti =
    let tr = transitions.(ti) in
    let enc = Fsm.state_index tr.Fsm.t_from in
    let cube = Array.make n_inputs Sop.Dash in
    Array.blit (state_literals enc) 0 cube 0 sw;
    if guard_pos.(ti) >= 0 then cube.(guard_pos.(ti)) <- Sop.One;
    (* Priority: earlier guarded transitions from the same state are off. *)
    for tj = 0 to ti - 1 do
      if
        Fsm.state_equal transitions.(tj).Fsm.t_from tr.Fsm.t_from
        && guard_pos.(tj) >= 0
      then cube.(guard_pos.(tj)) <- Sop.Zero
    done;
    cube
  in
  let sels =
    Array.init n_tr (fun ti ->
        if dead ti then Netlist.gate nl Netlist.Const0 []
        else Sop.to_gates nl ~inputs [ cube_of ti ])
  in
  (* Hold cube for a state with no unconditional transition: all its
     guards false. *)
  let hold_cube s =
    let has_always =
      Array.exists
        (fun tr ->
          Fsm.state_equal tr.Fsm.t_from s && Fsm.is_always tr.Fsm.t_guard)
        transitions
    in
    if has_always then None
    else begin
      let cube = Array.make n_inputs Sop.Dash in
      Array.blit (state_literals (Fsm.state_index s)) 0 cube 0 sw;
      Array.iteri
        (fun ti tr ->
          if Fsm.state_equal tr.Fsm.t_from s && guard_pos.(ti) >= 0 then
            cube.(guard_pos.(ti)) <- Sop.Zero)
        transitions;
      Some cube
    end
  in
  let init_enc = Fsm.state_index (Fsm.initial_state fsm) in
  for b = 0 to sw - 1 do
    let goto_cubes =
      List.concat
        (List.init n_tr (fun ti ->
             if dead ti then []
             else if bit_of (Fsm.state_index transitions.(ti).Fsm.t_goto) b
             then [ cube_of ti ]
             else []))
    in
    let hold_cubes =
      List.filter_map
        (fun s ->
          if bit_of (Fsm.state_index s) b then hold_cube s else None)
        states
    in
    let d = Sop.to_gates nl ~inputs (Sop.minimize (goto_cubes @ hold_cubes)) in
    Netlist.dff_into nl ~init:(bit_of init_enc b) ~q:state_q.(b) d
  done;
  ignore n_states;
  (sels, state_q)

(* --- per-component synthesis ---------------------------------------------- *)

(* Synthesize one timed component into [nl].
   [in_bus port] is the system-net bus feeding input port [port];
   [drive port bus] connects an output port to its system net. *)
let synthesize_component nl ~options ~cname fsm ~in_bus ~drive =
  let t0 = Unix.gettimeofday () in
  let t_span = Ocapi_obs.span_begin () in
  let before = (Netlist.counts nl).Netlist.gate_equivalents in
  let regs = Fsm.all_regs fsm in
  (* Pre-allocated register output buses. *)
  let reg_q = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Hashtbl.replace reg_q (Signal.Reg.id r)
        (Array.init (Signal.Reg.fmt r).Fixed.width (fun _ -> Netlist.new_net nl)))
    regs;
  let reg_bus r =
    match Hashtbl.find_opt reg_q (Signal.Reg.id r) with
    | Some b -> b
    | None -> error "%s: register %s unknown" cname (Signal.Reg.name r)
  in
  let transitions = Array.of_list (Fsm.transitions fsm) in
  let memo = Hashtbl.create 512 in
  (* Which instructions reach each expression node?  [-1] marks nodes
     the guards reach (evaluated every cycle, never pooled). *)
  let users : (int, int list) Hashtbl.t = Hashtbl.create 512 in
  let mark ti root =
    Signal.fold_dag root ~init:() ~f:(fun () n ->
        let id = Signal.id n in
        let cur =
          match Hashtbl.find_opt users id with Some l -> l | None -> []
        in
        if not (List.mem ti cur) then Hashtbl.replace users id (ti :: cur))
  in
  let roots_of tr =
    List.concat_map
      (fun sfg ->
        List.map snd (Sfg.outputs sfg) @ List.map snd (Sfg.assigns sfg))
      tr.Fsm.t_actions
  in
  Array.iteri (fun ti tr -> List.iter (mark ti) (roots_of tr)) transitions;
  Array.iter (fun tr -> mark (-1) (Fsm.guard_expr tr.Fsm.t_guard)) transitions;
  let single_user n =
    match Hashtbl.find_opt users (Signal.id n) with
    | Some [ ti ] when ti >= 0 -> Some ti
    | Some _ | None -> None
  in
  (* Guard wires (shared logic through the same memo). *)
  let guard_nets =
    Array.map
      (fun tr ->
        compile_guard nl ~in_bus ~reg_bus memo (Fsm.guard_expr tr.Fsm.t_guard))
      transitions
  in
  (* Controller. *)
  let sels, state_q =
    synthesize_controller nl fsm ~encoding:options.state_encoding
      ~guard_net:(fun ti -> guard_nets.(ti))
  in
  (* Pool sizing: per instruction, its exclusive shareable nodes. *)
  let pool_max = Hashtbl.create 16 in
  let sample_node = Hashtbl.create 16 in
  let total_shareable = ref 0 in
  if options.share_operators then
    Array.iteri
      (fun ti tr ->
        let per_instr = Hashtbl.create 16 in
        let seen = Hashtbl.create 64 in
        List.iter
          (fun root ->
            Signal.fold_dag root ~init:() ~f:(fun () n ->
                if not (Hashtbl.mem seen (Signal.id n)) then begin
                  Hashtbl.add seen (Signal.id n) ();
                  match signature_of n, single_user n with
                  | Some key, Some owner when owner = ti ->
                    incr total_shareable;
                    if not (Hashtbl.mem sample_node key) then
                      Hashtbl.replace sample_node key n;
                    let c =
                      match Hashtbl.find_opt per_instr key with
                      | Some c -> c
                      | None -> 0
                    in
                    Hashtbl.replace per_instr key (c + 1)
                  | (Some _ | None), _ -> ()
                end))
          (roots_of tr);
        Hashtbl.iter
          (fun key c ->
            let m =
              match Hashtbl.find_opt pool_max key with Some m -> m | None -> 0
            in
            Hashtbl.replace pool_max key (max m c))
          per_instr)
      transitions;
  let pools = Hashtbl.create 16 in
  Hashtbl.iter
    (fun key size ->
      let node = Hashtbl.find sample_node key in
      Hashtbl.replace pools key (Array.init size (fun _ -> build_unit nl node)))
    pool_max;
  (* Compile each instruction. *)
  let out_choices = Hashtbl.create 16 in
  let reg_choices = Hashtbl.create 16 in
  Array.iteri
    (fun ti tr ->
      let sel = sels.(ti) in
      let occ = Hashtbl.create 16 in
      let eligible n = options.share_operators && single_user n = Some ti in
      let compile e =
        compile_node nl ~in_bus ~reg_bus ~pools ~sel ~occ ~eligible memo e
      in
      List.iter
        (fun sfg ->
          List.iter
            (fun (port, e) ->
              let bus = compile e in
              let existing =
                match Hashtbl.find_opt out_choices port with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace out_choices port ((sel, bus) :: existing))
            (Sfg.outputs sfg);
          List.iter
            (fun (r, e) ->
              let bus = compile e in
              let existing =
                match Hashtbl.find_opt reg_choices (Signal.Reg.id r) with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace reg_choices (Signal.Reg.id r)
                ((sel, bus) :: existing))
            (Sfg.assigns sfg))
        tr.Fsm.t_actions)
    transitions;
  (* Route operands into the shared units.  A unit bound by a single
     instruction needs no selection network: wire its operands through. *)
  Hashtbl.iter
    (fun _key units ->
      Array.iter
        (fun u ->
          Array.iteri
            (fun p operand_nets ->
              let width = Array.length operand_nets in
              let driven =
                match u.u_bindings with
                | [ (_, ops) ] -> ops.(p)
                | bindings ->
                  Wordgen.select nl
                    (List.map (fun (sel, ops) -> (sel, ops.(p))) bindings)
                    ~width
              in
              Array.iteri
                (fun i dst -> Netlist.buf_into nl ~dst driven.(i))
                operand_nets)
            u.u_operands)
        units)
    pools;
  (* Registers: enabled flip-flops with next-value selection. *)
  List.iter
    (fun r ->
      let q = reg_bus r in
      let width = Array.length q in
      let init = Fixed.mantissa (Signal.Reg.init r) in
      let choices =
        match Hashtbl.find_opt reg_choices (Signal.Reg.id r) with
        | Some l -> l
        | None -> []
      in
      let enable = Wordgen.or_tree nl (List.map fst choices) in
      let d = Wordgen.select nl choices ~width in
      Array.iteri
        (fun i qn ->
          let din = Netlist.gate nl Netlist.Mux2 [ enable; d.(i); qn ] in
          Netlist.dff_into nl
            ~init:(Int64.logand (Int64.shift_right_logical init i) 1L = 1L)
            ~q:qn din)
        q)
    regs;
  (* Outputs: one-hot selection onto the system nets. *)
  Hashtbl.iter
    (fun port choices ->
      match drive port with
      | None -> () (* unconnected output *)
      | Some net_bus ->
        let width = Array.length net_bus in
        let bus = Wordgen.select nl choices ~width in
        Array.iteri (fun i dst -> Netlist.buf_into nl ~dst bus.(i)) net_bus)
    out_choices;
  let after = (Netlist.counts nl).Netlist.gate_equivalents in
  if Ocapi_obs.enabled () then begin
    Ocapi_obs.count "synth.components";
    Ocapi_obs.count ~n:(after - before) "synth.gate_equivalents";
    Ocapi_obs.span_end ~cat:"synth"
      ~args:[ ("gates", Ocapi_obs.Json.Int (after - before)) ]
      ("synth." ^ cname) t_span
  end;
  let report =
    {
      cr_name = cname;
      cr_instructions = Array.length transitions;
      cr_states = List.length (Fsm.states fsm);
      cr_shared_units =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) pool_max []
        |> List.sort compare;
      cr_ops_before_sharing = !total_shareable;
      cr_gate_equivalents = after - before;
      cr_seconds = Unix.gettimeofday () -. t0;
    }
  in
  let reg_nets =
    List.map (fun r -> (Signal.Reg.id r, reg_bus r)) regs
  in
  (* Which transitions write each output port — the timed half of the
     probe-valid computation. *)
  let port_sels =
    Hashtbl.fold
      (fun port choices acc -> (port, List.map fst choices) :: acc)
      out_choices []
  in
  (report, reg_nets, state_q, port_sels)

(* --- system linkage --------------------------------------------------------- *)

let synthesize_mapped ?(options = default_options)
    ?(macro_of_kernel = fun _ -> None) sys =
  let t0 = Unix.gettimeofday () in
  let t_span = Ocapi_obs.span_begin () in
  let nl = Netlist.create (Cycle_system.name sys) in
  let fmts = Cycle_system.net_formats sys in
  let nets = Cycle_system.nets sys in
  let primary_input_names =
    List.map (fun (n, _, _) -> n) (Cycle_system.primary_inputs sys)
  in
  (* Allocate a bus per net; primary-input-driven nets become netlist
     input buses, everything else is driven by its component. *)
  let net_bus = Hashtbl.create 64 in
  let sink_map = Hashtbl.create 64 in
  let driver_map = Hashtbl.create 64 in
  List.iter
    (fun (net, (dc, dp), sinks) ->
      let fmt =
        match Hashtbl.find_opt fmts net with
        | Some f -> f
        | None -> error "net %s has no derivable format" net
      in
      let width = fmt.Fixed.width in
      let bus =
        if List.mem dc primary_input_names then Netlist.input_bus nl dc width
        else Array.init width (fun _ -> Netlist.new_net nl)
      in
      Hashtbl.replace net_bus net (bus, fmt);
      Hashtbl.replace driver_map (dc, dp) net;
      List.iter (fun (sc, sp) -> Hashtbl.replace sink_map (sc, sp) net) sinks)
    nets;
  let in_bus_of cname port =
    match Hashtbl.find_opt sink_map (cname, port) with
    | Some net -> Some (fst (Hashtbl.find net_bus net))
    | None -> None
  in
  let drive_of cname port =
    match Hashtbl.find_opt driver_map (cname, port) with
    | Some net -> Some (fst (Hashtbl.find net_bus net))
    | None -> None
  in
  (* Timed components. *)
  let comp_results =
    List.map
      (fun (cname, fsm) ->
        let report, reg_nets, state_q, port_sels =
          synthesize_component nl ~options ~cname fsm
            ~in_bus:(in_bus_of cname) ~drive:(drive_of cname)
        in
        (cname, fsm, report, reg_nets, state_q, port_sels))
      (Cycle_system.timed_components sys)
  in
  let reports = List.map (fun (_, _, r, _, _, _) -> r) comp_results in
  (* Untimed kernels as macro cells. *)
  List.iter
    (fun (cname, k) ->
      match macro_of_kernel k with
      | Some (Ram_macro m) ->
        let get_in port =
          match in_bus_of cname port with
          | Some b -> b
          | None -> error "RAM %s: input %s unconnected" cname port
        in
        let addr = get_in m.addr_port in
        let wdata = get_in m.wdata_port in
        let we = (get_in m.we_port).(0) in
        let rdata =
          Netlist.ram nl ~name:cname ~words:m.words ~width:m.width ~addr ~wdata
            ~we
        in
        (match drive_of cname m.rdata_port with
        | Some bus ->
          Array.iteri (fun i dst -> Netlist.buf_into nl ~dst rdata.(i)) bus
        | None -> ())
      | None ->
        error "untimed kernel %s has no macro mapping; pass ~macro_of_kernel"
          cname)
    (Cycle_system.untimed_components sys);
  (* Probes become primary outputs. *)
  List.iter
    (fun pname ->
      match Hashtbl.find_opt sink_map (pname, "in") with
      | Some net -> Netlist.output_bus nl pname (fst (Hashtbl.find net_bus net))
      | None -> ())
    (Cycle_system.probes sys);
  (* Optional probe-valid wires: a 1-bit output per probe that is high
     exactly when the behavioral engine would record a token.  A net
     driven by a timed component is valid when one of the transitions
     writing the port fires (OR of their select lines); a macro-cell
     output is valid when all the kernel's inputs are (AND of input-net
     valids); a primary input's validity only the test bench knows, so
     it becomes a host-driven 1-bit input bus. *)
  if options.emit_probe_valids then begin
    let driver_of_net = Hashtbl.create 64 in
    List.iter
      (fun (net, (dc, dp), _) -> Hashtbl.replace driver_of_net net (dc, dp))
      nets;
    let port_sels_of = Hashtbl.create 16 in
    List.iter
      (fun (cname, _, _, _, _, port_sels) ->
        List.iter
          (fun (port, sels) -> Hashtbl.replace port_sels_of (cname, port) sels)
          port_sels)
      comp_results;
    let kernel_inputs = Hashtbl.create 16 in
    List.iter
      (fun (cname, k) ->
        Hashtbl.replace kernel_inputs cname
          (List.map fst k.Dataflow.Kernel.k_inputs))
      (Cycle_system.untimed_components sys);
    let stim_valid = Hashtbl.create 8 in
    let valid_memo = Hashtbl.create 32 in
    let rec valid_of_net net =
      match Hashtbl.find_opt valid_memo net with
      | Some (Some v) -> v
      | Some None ->
        (* A combinational cycle through kernels (gated off at run
           time): break it optimistically. *)
        Netlist.gate nl Netlist.Const1 []
      | None ->
        Hashtbl.replace valid_memo net None;
        let v =
          match Hashtbl.find_opt driver_of_net net with
          | None -> Netlist.gate nl Netlist.Const0 []
          | Some (dc, dp) ->
            if List.mem dc primary_input_names then begin
              match Hashtbl.find_opt stim_valid dc with
              | Some n -> n
              | None ->
                let bus = Netlist.input_bus nl ("__stimvalid__" ^ dc) 1 in
                Hashtbl.replace stim_valid dc bus.(0);
                bus.(0)
            end
            else begin
              match Hashtbl.find_opt port_sels_of (dc, dp) with
              | Some sels -> Wordgen.or_tree nl sels
              | None -> (
                match Hashtbl.find_opt kernel_inputs dc with
                | Some ports ->
                  Wordgen.and_tree nl
                    (List.filter_map
                       (fun port ->
                         Option.map valid_of_net
                           (Hashtbl.find_opt sink_map (dc, port)))
                       ports)
                | None -> Netlist.gate nl Netlist.Const0 [])
            end
        in
        Hashtbl.replace valid_memo net (Some v);
        v
    in
    List.iter
      (fun pname ->
        match Hashtbl.find_opt sink_map (pname, "in") with
        | Some net ->
          Netlist.output_bus nl ("__valid__" ^ pname) [| valid_of_net net |]
        | None -> ())
      (Cycle_system.probes sys)
  end;
  (* The structural map: datapath registers in Cycle_system.all_regs
     order, controllers in timed-component order. *)
  let reg_nets_by_id = Hashtbl.create 64 in
  List.iter
    (fun (_, _, _, reg_nets, _, _) ->
      List.iter (fun (id, nets) -> Hashtbl.replace reg_nets_by_id id nets)
        reg_nets)
    comp_results;
  let sm_regs =
    Array.of_list
      (List.filter_map
         (fun r ->
           Option.map
             (fun nets ->
               {
                 rm_name = Signal.Reg.name r;
                 rm_fmt = Signal.Reg.fmt r;
                 rm_nets = nets;
               })
             (Hashtbl.find_opt reg_nets_by_id (Signal.Reg.id r)))
         (Cycle_system.all_regs sys))
  in
  let sm_fsms =
    Array.of_list
      (List.map
         (fun (cname, fsm, _, _, state_q, _) ->
           {
             fm_name = cname;
             fm_states = List.length (Fsm.states fsm);
             fm_encoding = options.state_encoding;
             fm_state_nets = state_q;
           })
         comp_results)
  in
  let state_map = { sm_regs; sm_fsms } in
  let report =
    {
      system_name = Cycle_system.name sys;
      components = reports;
      total = Netlist.counts nl;
      total_seconds = Unix.gettimeofday () -. t0;
    }
  in
  if Ocapi_obs.enabled () then begin
    Ocapi_obs.set_gauge "synth.total_gate_equivalents"
      (float_of_int report.total.Netlist.gate_equivalents);
    Ocapi_obs.span_end ~cat:"synth"
      ~args:
        [
          ("gates", Ocapi_obs.Json.Int report.total.Netlist.gate_equivalents);
          ("components", Ocapi_obs.Json.Int (List.length reports));
        ]
      "synth.elaborate" t_span
  end;
  (nl, report, state_map)

let synthesize ?options ?macro_of_kernel sys =
  let nl, report, _ = synthesize_mapped ?options ?macro_of_kernel sys in
  (nl, report)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>synthesis of %s: %d gate-equivalents total@,"
    r.system_name r.total.Netlist.gate_equivalents;
  Format.fprintf ppf "  (comb %d, dff %d, rom bits %d, ram bits %d) in %.2fs@,"
    r.total.Netlist.combinational r.total.Netlist.flip_flops
    r.total.Netlist.rom_bits r.total.Netlist.ram_bits r.total_seconds;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-24s %3d instr %2d states %5d gates  %d ops -> %d units  %.3fs@,"
        c.cr_name c.cr_instructions c.cr_states c.cr_gate_equivalents
        c.cr_ops_before_sharing
        (List.fold_left (fun a (_, n) -> a + n) 0 c.cr_shared_units)
        c.cr_seconds)
    r.components;
  Format.fprintf ppf "@]"

(* --- verification against the reference simulation ------------------------- *)

type verify_result = {
  vectors_checked : int;
  mismatches : (int * string * int64 * int64) list;
}

let verify ?(options = default_options) ?(optimize = false) ?macro_of_kernel
    sys ~cycles =
  Cycle_system.reset sys;
  Cycle_system.run sys cycles;
  let probe_names = Cycle_system.probes sys in
  let expected =
    List.map
      (fun p ->
        let c =
          match Cycle_system.find_component sys p with
          | Some c -> c
          | None -> error "probe %s vanished" p
        in
        (p, Cycle_system.output_history sys c))
      probe_names
  in
  let input_hist = Cycle_system.input_history sys in
  let fmts = Cycle_system.net_formats sys in
  let sink_map = Hashtbl.create 16 in
  List.iter
    (fun (net, _, sinks) ->
      List.iter (fun (sc, sp) -> Hashtbl.replace sink_map (sc, sp) net) sinks)
    (Cycle_system.nets sys);
  let probe_signed =
    List.map
      (fun p ->
        let fmt =
          match Hashtbl.find_opt sink_map (p, "in") with
          | Some net -> (
            match Hashtbl.find_opt fmts net with
            | Some f -> f
            | None -> Fixed.bit_format)
          | None -> Fixed.bit_format
        in
        (p, fmt.Fixed.signedness = Fixed.Signed))
      probe_names
  in
  Cycle_system.reset sys;
  let nl, _report = synthesize ~options ?macro_of_kernel sys in
  let nl = if optimize then fst (Netopt.run nl) else nl in
  let sim = Netlist.Sim.create nl in
  (* Stimuli per cycle. *)
  let per_cycle = Array.make cycles [] in
  List.iter
    (fun (c, name, v) ->
      if c < cycles then per_cycle.(c) <- (name, v) :: per_cycle.(c))
    input_hist;
  let vectors = ref 0 in
  let mismatches = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, v) -> Netlist.Sim.set_input sim name (Fixed.mantissa v))
      per_cycle.(c);
    Netlist.Sim.settle sim;
    List.iter
      (fun (p, hist) ->
        match List.assoc_opt c hist with
        | None -> ()
        | Some v ->
          incr vectors;
          let signed = List.assoc p probe_signed in
          let got = Netlist.Sim.get_output sim ~signed p in
          if got <> Fixed.mantissa v then
            mismatches := (c, p, Fixed.mantissa v, got) :: !mismatches)
      expected;
    Netlist.Sim.clock sim
  done;
  { vectors_checked = !vectors; mismatches = List.rev !mismatches }

