(** Word-level module generators.

    Datapath synthesis maps each signal-flow-graph operation to a
    bit-parallel hardware module (ripple-carry adders, array
    multipliers, comparators, saturation logic...).  Every generator is
    {e bit-exact} against the corresponding [Fixed] operation: a bus of
    width [fmt.width] carries the two's-complement mantissa, LSB first,
    and the generated gates compute exactly what [Fixed.add] (etc.)
    computes on the mantissas — the property the generated-test-bench
    verification flow of section 6 relies on. *)

type bus = Netlist.net array

(** [of_format f] is the bus width for values of format [f]. *)
val width_of_format : Fixed.format -> int

(** [extend nl ~fmt bus w] sign- or zero-extends (per the format's
    signedness) to [w] bits; truncates if [w] is smaller. *)
val extend : Netlist.t -> fmt:Fixed.format -> bus -> int -> bus

(** [align nl ~fmt bus ~frac] appends LSB zeros so the bus represents
    the same value with [frac] fraction bits ([frac >= fmt.frac]). *)
val align : Netlist.t -> fmt:Fixed.format -> bus -> frac:int -> bus

(** Ripple-carry addition of equal-width buses (no carry out). *)
val ripple_add : Netlist.t -> ?carry_in:Netlist.net -> bus -> bus -> bus

(** OR / AND trees over nets. *)
val or_tree : Netlist.t -> Netlist.net list -> Netlist.net

val and_tree : Netlist.t -> Netlist.net list -> Netlist.net

(** [select nl choices ~width] — AND-OR one-hot selection:
    [choices = [(sel_net, bus); ...]]; when no select is high the result
    is zero.  Buses must have [width] bits. *)
val select : Netlist.t -> (Netlist.net * bus) list -> width:int -> bus

(** {1 Operator generators}

    Each takes operand formats and buses (of matching widths) and
    returns the full-precision result bus, of width
    [width_of_format (Fixed.<op>_format fa fb)]. *)

val add : Netlist.t -> fa:Fixed.format -> fb:Fixed.format -> bus -> bus -> bus
val sub : Netlist.t -> fa:Fixed.format -> fb:Fixed.format -> bus -> bus -> bus
val mul : Netlist.t -> fa:Fixed.format -> fb:Fixed.format -> bus -> bus -> bus
val neg : Netlist.t -> fa:Fixed.format -> bus -> bus
val abs_ : Netlist.t -> fa:Fixed.format -> bus -> bus

val logic_op :
  Netlist.t ->
  Netlist.gate_kind ->
  fa:Fixed.format ->
  fb:Fixed.format ->
  bus ->
  bus ->
  bus

val not_ : Netlist.t -> bus -> bus

(** Comparisons: 1-bit result as a single net. *)
val eq : Netlist.t -> fa:Fixed.format -> fb:Fixed.format -> bus -> bus -> Netlist.net

val lt : Netlist.t -> fa:Fixed.format -> fb:Fixed.format -> bus -> bus -> Netlist.net
val le : Netlist.t -> fa:Fixed.format -> fb:Fixed.format -> bus -> bus -> Netlist.net

(** [mux2 nl ~fa ~fb ~fr sel a b]: per-bit mux after exact resize of
    both branches to [fr] (the [Signal.Mux] semantics). *)
val mux2 :
  Netlist.t ->
  fa:Fixed.format ->
  fb:Fixed.format ->
  fr:Fixed.format ->
  Netlist.net ->
  bus ->
  bus ->
  bus

(** [resize nl ~round ~overflow ~src ~dst bus] mirrors [Fixed.resize]:
    rounding away fraction bits, then wrap or saturate. *)
val resize :
  Netlist.t ->
  round:Fixed.rounding ->
  overflow:Fixed.overflow ->
  src:Fixed.format ->
  dst:Fixed.format ->
  bus ->
  bus

(** [rom_address nl ~idx_fmt bus] converts an (unsigned) index value bus
    to an integer address bus, per [Fixed.to_int] semantics. *)
val rom_address : Netlist.t -> idx_fmt:Fixed.format -> bus -> bus
