(** Two-level sum-of-products logic with cube merging.

    Controller synthesis ("pure logic synthesis such as FSM synthesis",
    section 6) represents next-state and output functions as cube lists
    over an input vector and minimizes them by iterated distance-1 cube
    merging (the combining step of Quine-McCluskey, without the covering
    step — sufficient for the state-decode structures FSMs produce). *)

type literal = Zero | One | Dash

type cube = literal array
(** One product term; index [i] constrains input [i]. *)

(** [minimize cubes] merges cubes differing in exactly one literal and
    absorbs cubes covered by another, to fixpoint.  The result covers
    exactly the same minterms (the inputs where at least one cube
    matches). *)
val minimize : cube list -> cube list

(** [covers cube input] — does [cube] match the boolean vector? *)
val covers : cube -> bool array -> bool

(** [eval cubes input] — the SOP value on an input vector. *)
val eval : cube list -> bool array -> bool

(** Count of literals (non-Dash entries) over all cubes, the classic
    two-level cost measure. *)
val literal_count : cube list -> int

(** [to_gates nl ~inputs cubes] materializes the SOP over the given
    input nets: inverters as needed, an AND tree per cube, an OR tree.
    An empty cube list yields constant 0; an all-Dash cube constant 1. *)
val to_gates : Netlist.t -> inputs:Netlist.net array -> cube list -> Netlist.net
