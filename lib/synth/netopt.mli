(** Gate-level netlist optimization — the post-synthesis cleanup the
    paper delegates to logic synthesis ("the combined netlists of
    datapath and controller are also post-optimized by Synopsys DC to
    perform gate-level netlist optimizations", section 6).

    Passes, iterated to fixpoint:
    - {b constant propagation} (gates with constant inputs fold;
      identities like [and x 1 = x], [mux s a a = a], [not (not x) = x]
      become aliases),
    - {b structural hashing} (gates with the same kind and resolved
      inputs merge),
    - {b dead-logic elimination} (anything not reachable backwards from
      a primary output, a live flip-flop or a macro-cell input is
      dropped; flip-flop liveness is a fixpoint through the [d -> q]
      edges).

    The result is functionally equivalent by construction (aliases and
    folds are local identities); the test suite additionally re-verifies
    optimized netlists against reference simulations. *)

type stats = {
  gates_before : int;
  gates_after : int;
  dffs_before : int;
  dffs_after : int;
  equivalents_before : int;
  equivalents_after : int;
}

(** [run nl] returns the optimized netlist (same name, same input and
    output buses) and the reduction statistics. *)
val run : Netlist.t -> Netlist.t * stats

val pp_stats : Format.formatter -> stats -> unit
