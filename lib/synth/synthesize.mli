(** The divide-and-conquer synthesis strategy of section 6 (fig 8).

    Each timed component is split into a {e controller} and a
    {e datapath}, synthesized by dedicated procedures, and the resulting
    netlists are linked over the system nets:

    - {b Datapath synthesis} (the Cathedral-3 role): every FSM
      transition is one {e instruction}; instructions are mutually
      exclusive, so word-level operators (adders, subtractors,
      multipliers, ROM ports) are {e shared} across them — an operator
      pool per signature is sized by the worst-case per-instruction use,
      and operand buses are routed to the shared units through
      one-hot-gated selection networks.  Registers become enabled flip-
      flops with next-value selection across the assigning instructions.
    - {b Controller synthesis} (the Synopsys-DC role): the Mealy FSM
      becomes a binary-encoded state register plus two-level
      next-state/select logic minimized with {!Sop}.  Guard conditions
      are synthesized from the register outputs by the datapath and fed
      to the controller, mirroring the paper's "conditions are stored in
      registers".
    - {b Linkage}: components, RAM macro cells (for untimed kernels),
      primary inputs and probes are wired into one system netlist. *)

exception Synth_error of string

type state_encoding = Binary | One_hot

type options = {
  share_operators : bool;
      (** word-level operator sharing across instructions (default on;
          off is the ablation measured by bench C5) *)
  state_encoding : state_encoding;
      (** controller state register encoding (default [Binary];
          [One_hot] trades register bits for decode logic) *)
  emit_probe_valids : bool;
      (** also emit, per probe [p], a 1-bit output bus ["__valid__p"]
          that is high exactly when the behavioral engine would record
          a token on [p], plus a 1-bit input bus ["__stimvalid__i"] per
          primary input [i] whose probes depend on stimulus arrival.
          The gate cycle engine needs these to reconstruct sparse probe
          histories; default off, which leaves the netlist byte-for-byte
          what it was before this option existed *)
}

val default_options : options

(** How to map an untimed kernel onto a hardware macro. *)
type macro_spec =
  | Ram_macro of {
      words : int;
      width : int;
      addr_port : string;
      wdata_port : string;
      we_port : string;
      rdata_port : string;
    }

type component_report = {
  cr_name : string;
  cr_instructions : int;  (** FSM transitions (datapath instructions) *)
  cr_states : int;
  cr_shared_units : (string * int) list;  (** signature label, pool size *)
  cr_ops_before_sharing : int;
      (** total shareable operator instances over all instructions *)
  cr_gate_equivalents : int;  (** gates added to the netlist by this component *)
  cr_seconds : float;  (** synthesis wall-clock time *)
}

type report = {
  system_name : string;
  components : component_report list;
  total : Netlist.gate_counts;
  total_seconds : float;
}

(** {1 Structural map}

    Where the architectural state of the design landed in the netlist —
    the poke surface of the gate cycle engine and of netlist-level fault
    injection. *)

type reg_map = {
  rm_name : string;
  rm_fmt : Fixed.format;  (** declared register format *)
  rm_nets : Netlist.net array;  (** flip-flop q-nets, LSB first *)
}

type fsm_map = {
  fm_name : string;
  fm_states : int;  (** encoded state count *)
  fm_encoding : state_encoding;
  fm_state_nets : Netlist.net array;  (** state register q-nets *)
}

type state_map = {
  sm_regs : reg_map array;  (** [Cycle_system.all_regs] order *)
  sm_fsms : fsm_map array;  (** timed-component (system) order *)
}

(** [synthesize ?options ?macro_of_kernel sys] produces the linked
    system netlist and a synthesis report.  Untimed kernels require a
    [macro_of_kernel] mapping; unknown kernels raise {!Synth_error}. *)
val synthesize :
  ?options:options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> macro_spec option) ->
  Cycle_system.t ->
  Netlist.t * report

(** [synthesize_mapped] is {!synthesize} plus the {!state_map} relating
    the system's registers and FSMs to netlist flip-flops. *)
val synthesize_mapped :
  ?options:options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> macro_spec option) ->
  Cycle_system.t ->
  Netlist.t * report * state_map

val pp_report : Format.formatter -> report -> unit

(** {1 Netlist-level verification (the generated-test-bench flow)} *)

type verify_result = {
  vectors_checked : int;
  mismatches : (int * string * int64 * int64) list;
      (** cycle, probe, expected mantissa, netlist mantissa *)
}

(** [verify ?options ?optimize ?macro_of_kernel sys ~cycles] runs the
    reference (interpreted) simulation for [cycles], replays the
    recorded stimuli on the synthesized netlist, and compares every
    probe token — the "verification of the synthesis result" of fig 8.
    With [optimize] (default false) the netlist is first run through
    {!Netopt.run}, so the post-optimization netlist is what is
    verified.  The system is reset before and after. *)
val verify :
  ?options:options ->
  ?optimize:bool ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> macro_spec option) ->
  Cycle_system.t ->
  cycles:int ->
  verify_result
