type bus = Netlist.net array

let width_of_format (f : Fixed.format) = f.Fixed.width

let is_signed (f : Fixed.format) =
  match f.Fixed.signedness with Fixed.Signed -> true | Fixed.Unsigned -> false

let extend nl ~fmt bus w =
  Netlist.extend_bus nl ~signed:(is_signed fmt) bus w

let zero_net nl = Netlist.gate nl Netlist.Const0 []

let align nl ~fmt bus ~frac =
  let k = frac - fmt.Fixed.frac in
  if k = 0 then bus
  else if k > 0 then
    Array.append (Array.init k (fun _ -> zero_net nl)) bus
  else
    (* Dropping fraction bits exactly (used only by exact alignment,
       where the dropped bits are known zero by construction). *)
    Array.sub bus (-k) (Array.length bus + k)

(* Full adder from gates. *)
let full_add nl a b c =
  let axb = Netlist.gate nl Netlist.Xor [ a; b ] in
  let s = Netlist.gate nl Netlist.Xor [ axb; c ] in
  let ab = Netlist.gate nl Netlist.And [ a; b ] in
  let axbc = Netlist.gate nl Netlist.And [ axb; c ] in
  let carry = Netlist.gate nl Netlist.Or [ ab; axbc ] in
  (s, carry)

let ripple_add nl ?carry_in a b =
  let w = Array.length a in
  assert (Array.length b = w);
  let out = Array.make w 0 in
  let carry = ref (match carry_in with Some c -> c | None -> zero_net nl) in
  for i = 0 to w - 1 do
    let s, c = full_add nl a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out

let rec or_tree nl = function
  | [] -> zero_net nl
  | [ n ] -> n
  | n1 :: n2 :: rest -> or_tree nl (Netlist.gate nl Netlist.Or [ n1; n2 ] :: rest)

let rec and_tree nl = function
  | [] -> Netlist.gate nl Netlist.Const1 []
  | [ n ] -> n
  | n1 :: n2 :: rest -> and_tree nl (Netlist.gate nl Netlist.And [ n1; n2 ] :: rest)

let select nl choices ~width =
  match choices with
  | [] -> Array.init width (fun _ -> zero_net nl)
  | _ ->
    Array.init width (fun i ->
        let terms =
          List.map
            (fun (sel, bus) -> Netlist.gate nl Netlist.And [ sel; bus.(i) ])
            choices
        in
        or_tree nl terms)

(* Align both operands to a common fraction and extend to width [w]
   per each operand's own signedness. *)
let align2 nl ~fa ~fb a b w =
  let frac = max fa.Fixed.frac fb.Fixed.frac in
  let a' = align nl ~fmt:fa a ~frac in
  let b' = align nl ~fmt:fb b ~frac in
  (extend nl ~fmt:fa a' w, extend nl ~fmt:fb b' w)

let add nl ~fa ~fb a b =
  let fr = Fixed.add_format fa fb in
  let w = fr.Fixed.width in
  let a', b' = align2 nl ~fa ~fb a b w in
  ripple_add nl a' b'

let sub nl ~fa ~fb a b =
  let fr = Fixed.add_format fa (Fixed.neg_format fb) in
  let w = fr.Fixed.width in
  let a', b' = align2 nl ~fa ~fb a b w in
  let nb = Array.map (fun n -> Netlist.gate nl Netlist.Not [ n ]) b' in
  ripple_add nl ~carry_in:(Netlist.gate nl Netlist.Const1 []) a' nb

(* Array multiplier modulo 2^w: extend both operands to the result width
   and accumulate partial products; two's-complement wrap-around makes
   the truncated product exact because the true product fits in w bits. *)
let mul nl ~fa ~fb a b =
  let fr = Fixed.mul_format fa fb in
  let w = fr.Fixed.width in
  let a' = extend nl ~fmt:fa a w in
  let b' = extend nl ~fmt:fb b w in
  let acc = ref (Array.init w (fun _ -> zero_net nl)) in
  for i = 0 to w - 1 do
    (* Partial product (a' << i) gated by b'.(i). *)
    let pp =
      Array.init w (fun j ->
          if j < i then zero_net nl
          else Netlist.gate nl Netlist.And [ a'.(j - i); b'.(i) ])
    in
    acc := ripple_add nl !acc pp
  done;
  !acc

let neg nl ~fa a =
  let fr = Fixed.neg_format fa in
  let w = fr.Fixed.width in
  let a' = extend nl ~fmt:fa a w in
  let na = Array.map (fun n -> Netlist.gate nl Netlist.Not [ n ]) a' in
  let zero = Array.init w (fun _ -> zero_net nl) in
  ripple_add nl ~carry_in:(Netlist.gate nl Netlist.Const1 []) na zero

let abs_ nl ~fa a =
  let fr = Fixed.neg_format fa in
  let w = fr.Fixed.width in
  let a' = extend nl ~fmt:fa a w in
  let negated = neg nl ~fa a in
  let sign =
    if is_signed fa then a.(Array.length a - 1) else zero_net nl
  in
  Array.init w (fun i -> Netlist.gate nl Netlist.Mux2 [ sign; negated.(i); a'.(i) ])

let logic_op nl kind ~fa ~fb a b =
  let fr = Fixed.logic_format fa fb in
  let w = fr.Fixed.width in
  let a', b' = align2 nl ~fa ~fb a b w in
  Array.init w (fun i -> Netlist.gate nl kind [ a'.(i); b'.(i) ])

let not_ nl a = Array.map (fun n -> Netlist.gate nl Netlist.Not [ n ]) a

(* Common value-faithful width for comparisons. *)
let compare_width ~fa ~fb =
  let frac = max fa.Fixed.frac fb.Fixed.frac in
  let sw (f : Fixed.format) =
    let w = f.Fixed.width + (frac - f.Fixed.frac) in
    if is_signed f then w else w + 1
  in
  max (sw fa) (sw fb)

let cmp_operands nl ~fa ~fb a b =
  let frac = max fa.Fixed.frac fb.Fixed.frac in
  let w = compare_width ~fa ~fb in
  let a' = extend nl ~fmt:fa (align nl ~fmt:fa a ~frac) w in
  let b' = extend nl ~fmt:fb (align nl ~fmt:fb b ~frac) w in
  (a', b', w)

let eq nl ~fa ~fb a b =
  let a', b', w = cmp_operands nl ~fa ~fb a b in
  let bits =
    List.init w (fun i ->
        Netlist.gate nl Netlist.Not
          [ Netlist.gate nl Netlist.Xor [ a'.(i); b'.(i) ] ])
  in
  and_tree nl bits

(* a < b as the sign of (a - b) computed at width w+1 (both operands are
   value-faithful signed at width w, so the difference fits w+1). *)
let lt nl ~fa ~fb a b =
  let a', b', w = cmp_operands nl ~fa ~fb a b in
  let ext bus = Array.append bus [| bus.(w - 1) |] in
  let a2 = ext a' and b2 = ext b' in
  let nb = Array.map (fun n -> Netlist.gate nl Netlist.Not [ n ]) b2 in
  let diff = ripple_add nl ~carry_in:(Netlist.gate nl Netlist.Const1 []) a2 nb in
  diff.(w)

let le nl ~fa ~fb a b =
  Netlist.gate nl Netlist.Not [ lt nl ~fa:fb ~fb:fa b a ]

(* Exact resize (shift + extend) used by mux branch normalization; the
   target format always covers the source range there. *)
let resize_exact nl ~src ~dst bus =
  let aligned = align nl ~fmt:src bus ~frac:dst.Fixed.frac in
  extend nl ~fmt:src aligned dst.Fixed.width

let mux2 nl ~fa ~fb ~fr sel a b =
  let a' = resize_exact nl ~src:fa ~dst:fr a in
  let b' = resize_exact nl ~src:fb ~dst:fr b in
  Array.init fr.Fixed.width (fun i ->
      Netlist.gate nl Netlist.Mux2 [ sel; a'.(i); b'.(i) ])

let resize nl ~round ~overflow ~src ~dst bus =
  let k = src.Fixed.frac - dst.Fixed.frac in
  (* Step 1: the rounded value, value-faithful, with dst.frac fraction
     bits.  Work at width W = src.width + 2 so rounding carries fit. *)
  let rounded, rounded_fmt =
    if k <= 0 then
      (align nl ~fmt:src bus ~frac:dst.Fixed.frac,
       Fixed.format src.Fixed.signedness
         ~width:(src.Fixed.width - k)
         ~frac:dst.Fixed.frac)
    else begin
      let w0 = max (src.Fixed.width + 2) (k + 2) in
      let ext = extend nl ~fmt:src bus w0 in
      let floor_bits = Array.init w0 (fun i -> ext.(min (i + k) (w0 - 1))) in
      let value =
        match round with
        | Fixed.Truncate -> floor_bits
        | Fixed.Round_nearest ->
          (* (m + half) asr k: add 2^(k-1) before shifting. *)
          let half = Array.init w0 (fun i -> i = k - 1) in
          let half_bus =
            Array.map
              (fun b ->
                if b then Netlist.gate nl Netlist.Const1 [] else zero_net nl)
              half
          in
          let summed = ripple_add nl ext half_bus in
          Array.init w0 (fun i -> summed.(min (i + k) (w0 - 1)))
        | Fixed.Round_even ->
          let h = if k - 1 < w0 then ext.(k - 1) else zero_net nl in
          let rest_bits =
            List.init (max 0 (k - 1)) (fun i -> ext.(min i (w0 - 1)))
          in
          let rest = or_tree nl rest_bits in
          let up =
            Netlist.gate nl Netlist.And
              [ h; Netlist.gate nl Netlist.Or [ rest; floor_bits.(0) ] ]
          in
          let zero = Array.init w0 (fun _ -> zero_net nl) in
          ripple_add nl ~carry_in:up floor_bits zero
      in
      (value,
       Fixed.format src.Fixed.signedness ~width:w0 ~frac:dst.Fixed.frac)
    end
  in
  (* Step 2: overflow handling into dst.width bits. *)
  let wv = Array.length rounded in
  match overflow with
  | Fixed.Wrap ->
    let padded = extend nl ~fmt:rounded_fmt rounded (max wv dst.Fixed.width) in
    Array.sub padded 0 dst.Fixed.width
  | Fixed.Saturate ->
    let wext = max (wv + 1) (dst.Fixed.width + 1) in
    let v = extend nl ~fmt:rounded_fmt rounded wext in
    let sign =
      if is_signed rounded_fmt then v.(wext - 1) else zero_net nl
    in
    let low = Array.sub v 0 dst.Fixed.width in
    (match dst.Fixed.signedness with
    | Fixed.Unsigned ->
      (* Negative -> 0; too large -> all ones. *)
      let high_bits = List.init (wext - dst.Fixed.width) (fun i -> v.(dst.Fixed.width + i)) in
      let too_big = or_tree nl high_bits in
      let ones = Netlist.gate nl Netlist.Const1 [] in
      Array.map
        (fun bit ->
          let saturated =
            Netlist.gate nl Netlist.Mux2 [ too_big; ones; bit ]
          in
          (* sign has priority: clamp to zero *)
          Netlist.gate nl Netlist.Mux2 [ sign; zero_net nl; saturated ])
        low
    | Fixed.Signed ->
      (* In range iff bits [dst.width-1 .. wext-1] form a sign extension. *)
      let msb = dst.Fixed.width - 1 in
      let same =
        List.init (wext - 1 - msb) (fun i ->
            Netlist.gate nl Netlist.Not
              [ Netlist.gate nl Netlist.Xor [ v.(msb + i); sign ] ])
      in
      let in_range = and_tree nl same in
      (* min = 100..0, max = 011..1 *)
      Array.mapi
        (fun i bit ->
          let sat_bit =
            if i = msb then sign
            else Netlist.gate nl Netlist.Not [ sign ]
          in
          Netlist.gate nl Netlist.Mux2 [ in_range; bit; sat_bit ])
        low)

let rom_address nl ~idx_fmt bus =
  let frac = idx_fmt.Fixed.frac in
  if frac <= 0 then
    Array.append (Array.init (-frac) (fun _ -> zero_net nl)) bus
  else if frac >= Array.length bus then [| zero_net nl |]
  else Array.sub bus frac (Array.length bus - frac)
