type literal = Zero | One | Dash
type cube = literal array

let covers cube input =
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      match lit with
      | Dash -> ()
      | One -> if not input.(i) then ok := false
      | Zero -> if input.(i) then ok := false)
    cube;
  !ok

let eval cubes input = List.exists (fun c -> covers c input) cubes

let literal_count cubes =
  List.fold_left
    (fun acc c ->
      Array.fold_left
        (fun acc lit -> match lit with Dash -> acc | Zero | One -> acc + 1)
        acc c)
    0 cubes

(* [a] absorbs [b] when every assignment matching [b] matches [a]. *)
let absorbs a b =
  let ok = ref true in
  Array.iteri
    (fun i la ->
      match la, b.(i) with
      | Dash, _ -> ()
      | One, One | Zero, Zero -> ()
      | One, (Zero | Dash) | Zero, (One | Dash) -> ok := false)
    a;
  !ok

(* Merge cubes identical everywhere except one position holding
   complementary fixed literals. *)
let try_merge a b =
  let n = Array.length a in
  let diff = ref (-1) and compatible = ref true in
  for i = 0 to n - 1 do
    if a.(i) <> b.(i) then begin
      match a.(i), b.(i) with
      | One, Zero | Zero, One ->
        if !diff >= 0 then compatible := false else diff := i
      | _, _ -> compatible := false
    end
  done;
  if !compatible && !diff >= 0 then begin
    let merged = Array.copy a in
    merged.(!diff) <- Dash;
    Some merged
  end
  else None

let minimize cubes =
  let changed = ref true in
  let current = ref cubes in
  while !changed do
    changed := false;
    (* One pass of pairwise merging. *)
    let arr = Array.of_list !current in
    let removed = Array.make (Array.length arr) false in
    let additions = ref [] in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        if (not removed.(i)) && not removed.(j) then
          match try_merge arr.(i) arr.(j) with
          | Some m ->
            removed.(i) <- true;
            removed.(j) <- true;
            additions := m :: !additions;
            changed := true
          | None ->
            if absorbs arr.(i) arr.(j) then begin
              removed.(j) <- true;
              changed := true
            end
            else if absorbs arr.(j) arr.(i) then begin
              removed.(i) <- true;
              changed := true
            end
      done
    done;
    let survivors =
      Array.to_list arr
      |> List.filteri (fun i _ -> not removed.(i))
    in
    current := survivors @ !additions
  done;
  !current

let to_gates nl ~inputs cubes =
  let open Netlist in
  match cubes with
  | [] -> gate nl Const0 []
  | _ ->
    (* Share inverters across cubes. *)
    let inverted = Hashtbl.create 8 in
    let inv i =
      match Hashtbl.find_opt inverted i with
      | Some n -> n
      | None ->
        let n = gate nl Not [ inputs.(i) ] in
        Hashtbl.replace inverted i n;
        n
    in
    let rec tree kind = function
      | [] -> assert false
      | [ n ] -> n
      | n1 :: n2 :: rest -> tree kind (gate nl kind [ n1; n2 ] :: rest)
    in
    let cube_net c =
      let lits =
        Array.to_list
          (Array.mapi
             (fun i lit ->
               match lit with
               | Dash -> None
               | One -> Some inputs.(i)
               | Zero -> Some (inv i))
             c)
        |> List.filter_map Fun.id
      in
      match lits with
      | [] -> gate nl Const1 []
      | ls -> tree And ls
    in
    tree Or (List.map cube_net cubes)
