(** The Table 1 measurement harness.

    For a design, measures the three columns of the paper's Table 1 —
    source code size (lines), simulation speed (cycles/second) and
    process size (bytes of live heap attributable to the engine) — for
    each simulation engine:

    - [Interpreted_objects] — the three-phase cycle scheduler walking
      the object structure ("C++ (interpreted obj)"),
    - [Compiled_code] — the flattened closure program ("C++ (compiled)"),
    - [Native_code] — the regenerated simulator compiled to machine
      code and dynlinked (the paper's "simulator is regenerated" path),
    - [Rt_event_driven] — the delta-cycle RTL kernel ("VHDL (RT)"),
    - [Gate_netlist] — the synthesized netlist under the event-driven
      gate simulator ("VHDL/Verilog (netlist)"). *)

type engine =
  | Interpreted_objects
  | Compiled_code
  | Native_code
  | Rt_event_driven
  | Gate_netlist

val engine_label : engine -> string
val all_engines : engine list

type measurement = {
  m_engine : engine;
  m_cycles : int;
  m_seconds : float;
  m_cycles_per_second : float;
  m_process_bytes : int;  (** live-heap growth retained by the engine *)
  m_source_lines : int;  (** description size for this representation *)
}

(** [measure ?ocaml_source_lines ?macro_of_kernel sys engine ~cycles]
    builds the engine, runs [cycles] cycles (after a short warm-up) and
    reports.  [ocaml_source_lines] is the size of the OCaml capture, used
    for the two C++-column rows; the RT row reports generated-VHDL lines
    and the netlist row generated-Verilog lines. *)
val measure :
  ?ocaml_source_lines:int ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  Cycle_system.t ->
  engine ->
  cycles:int ->
  measurement

(** [source_lines_of_files paths] — physical line count of on-disk OCaml
    sources, for the [ocaml_source_lines] argument. *)
val source_lines_of_files : string list -> int

(** Render measurements in the paper's Table 1 layout. *)
val pp_table :
  Format.formatter ->
  design:string ->
  gates:int ->
  measurement list ->
  unit
