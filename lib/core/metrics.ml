type engine =
  | Interpreted_objects
  | Compiled_code
  | Rt_event_driven
  | Gate_netlist

let engine_label = function
  | Interpreted_objects -> "OCaml (interpreted obj)"
  | Compiled_code -> "OCaml (compiled)"
  | Rt_event_driven -> "VHDL (RT)"
  | Gate_netlist -> "Verilog (netlist)"

let all_engines =
  [ Interpreted_objects; Compiled_code; Rt_event_driven; Gate_netlist ]

type measurement = {
  m_engine : engine;
  m_cycles : int;
  m_seconds : float;
  m_cycles_per_second : float;
  m_process_bytes : int;
  m_source_lines : int;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Process size is the engine's resident state (slots, signals, event
   structures): the words reachable from the engine root after
   construction and a short warm-up, before the timed run — the recorded
   probe histories of a long run would otherwise dominate. *)
let resident_bytes root = Obj.reachable_words (Obj.repr root) * (Sys.word_size / 8)

let measure ?(ocaml_source_lines = 0) ?macro_of_kernel sys engine ~cycles =
  let seconds, source_lines, process_bytes =
    match engine with
    | Interpreted_objects ->
      Cycle_system.reset sys;
      Cycle_system.run sys (min 16 cycles) (* warm-up *);
      Cycle_system.reset sys;
      let resident = resident_bytes sys in
      let s = timed (fun () -> Cycle_system.run sys cycles) in
      (s, ocaml_source_lines, resident)
    | Compiled_code ->
      Cycle_system.reset sys;
      let prog = Compiled_sim.compile sys in
      Compiled_sim.run prog (min 16 cycles);
      Compiled_sim.reset prog;
      let resident = resident_bytes prog in
      let s = timed (fun () -> Compiled_sim.run prog cycles) in
      ignore (Sys.opaque_identity prog);
      (* The size of the regenerated program stands in for the paper's
         generated-C++ line count. *)
      (s, Compiled_sim.statement_count prog, resident)
    | Rt_event_driven ->
      Cycle_system.reset sys;
      let rtl = Rtl.of_system sys in
      Rtl.reset rtl;
      Rtl.run rtl (min 16 cycles);
      Rtl.reset rtl;
      let resident = resident_bytes rtl in
      let s = timed (fun () -> Rtl.run rtl cycles) in
      ignore (Sys.opaque_identity rtl);
      (s, Vhdl.line_count (Vhdl.of_system sys), resident)
    | Gate_netlist ->
      let vectors = Testbench.record sys ~cycles in
      let nl, _report = Synthesize.synthesize ?macro_of_kernel sys in
      let sim = Netlist.Sim.create nl in
      let per_cycle = Array.make (max 1 cycles) [] in
      List.iter
        (fun (c, name, v) ->
          if c < cycles then per_cycle.(c) <- (name, v) :: per_cycle.(c))
        vectors.Testbench.tb_inputs;
      Netlist.Sim.settle sim;
      let resident = resident_bytes sim in
      let s =
        timed (fun () ->
            for c = 0 to cycles - 1 do
              List.iter
                (fun (name, v) ->
                  Netlist.Sim.set_input sim name (Fixed.mantissa v))
                per_cycle.(c);
              Netlist.Sim.settle sim;
              Netlist.Sim.clock sim
            done)
      in
      ignore (Sys.opaque_identity sim);
      (s, Verilog.line_count (Verilog.of_netlist nl), resident)
  in
  Cycle_system.reset sys;
  {
    m_engine = engine;
    m_cycles = cycles;
    m_seconds = seconds;
    m_cycles_per_second =
      (if seconds > 0. then float_of_int cycles /. seconds else infinity);
    m_process_bytes = process_bytes;
    m_source_lines = source_lines;
  }

let source_lines_of_files paths =
  List.fold_left
    (fun acc path ->
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      acc + !n)
    0 paths

let human_speed v =
  if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fK" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let pp_table ppf ~design ~gates ms =
  Format.fprintf ppf
    "@[<v>%-8s %-7s %-26s %10s %14s %12s@,%s@," "Design" "Size" "Type"
    "Src lines" "Speed (cyc/s)" "Process"
    (String.make 82 '-');
  List.iter
    (fun m ->
      Format.fprintf ppf "%-8s %-7s %-26s %10d %14s %9.1fMB@," design
        (Printf.sprintf "%dK" (gates / 1000))
        (engine_label m.m_engine) m.m_source_lines
        (human_speed m.m_cycles_per_second)
        (float_of_int m.m_process_bytes /. 1048576.);
      ignore m.m_seconds)
    ms;
  Format.fprintf ppf "@]"
