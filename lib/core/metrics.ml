type engine =
  | Interpreted_objects
  | Compiled_code
  | Native_code
  | Rt_event_driven
  | Gate_netlist

let engine_label = function
  | Interpreted_objects -> "OCaml (interpreted obj)"
  | Compiled_code -> "OCaml (compiled)"
  | Native_code -> "OCaml (native)"
  | Rt_event_driven -> "VHDL (RT)"
  | Gate_netlist -> "Verilog (netlist)"

let all_engines =
  [ Interpreted_objects; Compiled_code; Native_code; Rt_event_driven;
    Gate_netlist ]

type measurement = {
  m_engine : engine;
  m_cycles : int;
  m_seconds : float;
  m_cycles_per_second : float;
  m_process_bytes : int;
  m_source_lines : int;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* The registry engine behind each Table 1 row.  Since the gate engine
   joined the registry every row is measured through the same uniform
   session loop — no per-representation harness remains here. *)
let session_engine = function
  | Interpreted_objects -> "interp"
  | Compiled_code -> "compiled"
  | Native_code -> "native"
  | Rt_event_driven -> "rtl"
  | Gate_netlist -> "gate"

let measure ?(ocaml_source_lines = 0) ?macro_of_kernel sys engine ~cycles =
  (* The paper reports generated-HDL line counts for the RT and netlist
     rows; render those before the session opens. *)
  let generated_lines =
    match engine with
    | Rt_event_driven -> Vhdl.line_count (Vhdl.of_system sys)
    | Gate_netlist ->
      let nl, _report = Synthesize.synthesize ?macro_of_kernel sys in
      Verilog.line_count (Verilog.of_netlist nl)
    | Interpreted_objects | Compiled_code | Native_code -> 0
  in
  let (module E : Ocapi_engine.ENGINE) =
    Ocapi_engine.get (session_engine engine)
  in
  let ses = E.make sys in
  let seconds, source_lines, process_bytes =
    Fun.protect ~finally:ses.Ocapi_engine.ses_close (fun () ->
        let open Ocapi_engine in
        ses.ses_reset ();
        for _ = 1 to min 16 cycles do ses.ses_step () done (* warm-up *);
        ses.ses_reset ();
        let resident = ses.ses_resident_words () * (Sys.word_size / 8) in
        let s =
          timed (fun () ->
              for _ = 1 to cycles do ses.ses_step () done)
        in
        let lines =
          match engine with
          | Interpreted_objects -> ocaml_source_lines
          | Compiled_code | Native_code ->
            (* The static program size stands in for the paper's
               generated-C++ line count. *)
            Option.value ~default:0 ses.ses_static_size
          | Rt_event_driven | Gate_netlist -> generated_lines
        in
        (s, lines, resident))
  in
  Cycle_system.reset sys;
  {
    m_engine = engine;
    m_cycles = cycles;
    m_seconds = seconds;
    m_cycles_per_second =
      (if seconds > 0. then float_of_int cycles /. seconds else infinity);
    m_process_bytes = process_bytes;
    m_source_lines = source_lines;
  }

let source_lines_of_files paths =
  List.fold_left
    (fun acc path ->
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      acc + !n)
    0 paths

let human_speed v =
  if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fK" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let pp_table ppf ~design ~gates ms =
  Format.fprintf ppf
    "@[<v>%-8s %-7s %-26s %10s %14s %12s@,%s@," "Design" "Size" "Type"
    "Src lines" "Speed (cyc/s)" "Process"
    (String.make 82 '-');
  List.iter
    (fun m ->
      Format.fprintf ppf "%-8s %-7s %-26s %10d %14s %9.1fMB@," design
        (Printf.sprintf "%dK" (gates / 1000))
        (engine_label m.m_engine) m.m_source_lines
        (human_speed m.m_cycles_per_second)
        (float_of_int m.m_process_bytes /. 1048576.);
      ignore m.m_seconds)
    ms;
  Format.fprintf ppf "@]"
