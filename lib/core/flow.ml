type check_report = {
  system_issues : Cycle_system.check_issue list;
  sfg_issues : (string * Sfg.check_issue list) list;
  fsm_issues : (string * Fsm.check_issue list) list;
}

let check sys =
  let system_issues = Cycle_system.check sys in
  let sfg_issues =
    List.concat_map
      (fun (cname, fsm) ->
        List.filter_map
          (fun sfg ->
            match Sfg.check sfg with
            | [] -> None
            | issues -> Some (cname ^ "/" ^ Sfg.name sfg, issues))
          (Fsm.all_sfgs fsm))
      (Cycle_system.timed_components sys)
  in
  let fsm_issues =
    List.filter_map
      (fun (cname, fsm) ->
        match Fsm.check fsm with
        | [] -> None
        | issues -> Some (cname, issues))
      (Cycle_system.timed_components sys)
  in
  { system_issues; sfg_issues; fsm_issues }

let check_clean r =
  r.system_issues = [] && r.sfg_issues = [] && r.fsm_issues = []

let pp_check_report ppf r =
  if check_clean r then Format.fprintf ppf "all checks clean"
  else begin
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun i -> Format.fprintf ppf "system: %a@," Cycle_system.pp_issue i)
      r.system_issues;
    List.iter
      (fun (name, issues) ->
        List.iter
          (fun i -> Format.fprintf ppf "%s: %a@," name Sfg.pp_issue i)
          issues)
      r.sfg_issues;
    List.iter
      (fun (name, issues) ->
        List.iter
          (fun i -> Format.fprintf ppf "%s: %a@," name Fsm.pp_issue i)
          issues)
      r.fsm_issues;
    Format.fprintf ppf "@]"
  end

(* Run [f] plainly, or — when a [telemetry] cell is supplied — under a
   fresh enabled telemetry scope, leaving the report in the cell. *)
let scoped ?telemetry ~label f =
  match telemetry with
  | None -> f ()
  | Some cell ->
    let result, report = Ocapi_obs.run_with_telemetry ~label f in
    cell := Some report;
    result

(* --- keyed result cache ----------------------------------------------------

   Memoizes probe histories by (design digest, stimulus fingerprint,
   engine key, seed, cycles).  The structural digest
   ([Cycle_system.digest]) does not cover primary-input stimulus
   closures, so the key samples every stimulus over the simulated
   cycle range — stimuli must be pure functions of the cycle index for
   caching to be sound, which every generated test bench already
   requires.  Disabled by default; [enable ~dir] adds a Marshal-based
   on-disk store so warm runs survive the process. *)
module Cache = struct
  type stats = {
    hits : int;
    misses : int;
    entries : int;
    disk_hits : int;
    disk_writes : int;
    disk_evictions : int;
  }

  let lock = Mutex.create ()
  let table : (string, (string * (int * Fixed.t) list) list) Hashtbl.t =
    Hashtbl.create 64

  (* None = disabled; Some dir = enabled, with an optional disk store. *)
  let state : string option option ref = ref None

  (* Disk-store byte cap; [None] = unbounded (the historical default). *)
  let disk_cap : int option ref = ref None
  let hits = ref 0
  let misses = ref 0
  let disk_hits = ref 0
  let disk_writes = ref 0
  let disk_evictions = ref 0

  (* Auxiliary [Store]s register a reset hook here so [clear] empties
     them along with the history table.  Guarded by [lock]. *)
  let clear_hooks : (unit -> unit) list ref = ref []

  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      let parent = Filename.dirname dir in
      if parent <> dir then mkdir_p parent;
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end

  let enable ?dir ?max_disk_bytes () =
    (match max_disk_bytes with
    | Some b when b < 0 ->
      invalid_arg "Flow.Cache.enable: max_disk_bytes < 0"
    | _ -> ());
    (match dir with Some d -> mkdir_p d | None -> ());
    locked (fun () ->
        state := Some dir;
        disk_cap := max_disk_bytes)

  let disable () = locked (fun () -> state := None)
  let enabled () = !state <> None

  let clear () =
    locked (fun () ->
        Hashtbl.reset table;
        List.iter (fun f -> f ()) !clear_hooks)

  let stats () =
    locked (fun () ->
        {
          hits = !hits;
          misses = !misses;
          entries = Hashtbl.length table;
          disk_hits = !disk_hits;
          disk_writes = !disk_writes;
          disk_evictions = !disk_evictions;
        })

  let reset_stats () =
    locked (fun () ->
        hits := 0;
        misses := 0;
        disk_hits := 0;
        disk_writes := 0;
        disk_evictions := 0)

  let key_of ~engine ~seed sys ~cycles =
    let digest = Cycle_system.digest sys in
    let stim_buf = Buffer.create 256 in
    List.iter
      (fun (name, _, stim) ->
        Buffer.add_string stim_buf name;
        Buffer.add_char stim_buf ':';
        for c = 0 to cycles - 1 do
          (match stim c with
          | Some v -> Buffer.add_string stim_buf (Int64.to_string (Fixed.mantissa v))
          | None -> Buffer.add_char stim_buf '-');
          Buffer.add_char stim_buf ','
        done;
        Buffer.add_char stim_buf ';')
      (List.sort
         (fun (a, _, _) (b, _, _) -> String.compare a b)
         (Cycle_system.primary_inputs sys));
    let stim_fp = Digest.to_hex (Digest.string (Buffer.contents stim_buf)) in
    String.concat "|"
      [ digest; stim_fp; engine; string_of_int seed; string_of_int cycles ]

  let disk_path ~namespace dir k =
    Filename.concat dir
      ("v1-" ^ namespace ^ "-" ^ Digest.to_hex (Digest.string k) ^ ".cache")

  (* LRU-by-mtime size bound on the disk store: after every write, if
     the [.cache] files of [dir] exceed the byte cap, the least
     recently used (oldest mtime — reads touch the file) are deleted
     until the store fits.  Runs with [lock] held. *)
  let sweep_disk dir cap =
    match
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun f -> Filename.check_suffix f ".cache")
      |> List.filter_map (fun f ->
             let path = Filename.concat dir f in
             try
               let st = Unix.stat path in
               Some (path, st.Unix.st_mtime, st.Unix.st_size)
             with Unix.Unix_error _ | Sys_error _ -> None)
    with
    | entries ->
      let total =
        List.fold_left (fun acc (_, _, size) -> acc + size) 0 entries
      in
      if total > cap then begin
        let oldest_first =
          List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) entries
        in
        let excess = ref (total - cap) in
        List.iter
          (fun (path, _, size) ->
            if !excess > 0 then begin
              (try
                 Sys.remove path;
                 excess := !excess - size;
                 incr disk_evictions;
                 Ocapi_obs.count "flow.cache.disk_eviction"
               with Sys_error _ -> ())
            end)
          oldest_first
      end
    | exception Sys_error _ -> ()

  (* Disk entries carry their full key so an MD5 filename collision
     degrades to a miss, never a wrong result.  A hit touches the file
     so the LRU sweep sees it as recently used. *)
  let disk_read ~namespace (type v) dir k : v option =
    let path = disk_path ~namespace dir k in
    if not (Sys.file_exists path) then None
    else
      try
        let ic = open_in_bin path in
        let result =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let stored_key, value =
                (Marshal.from_channel ic : string * v)
              in
              if stored_key = k then Some value else None)
        in
        if result <> None then
          (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
        result
      with _ -> None

  (* Writes are atomic (tmp + rename, the same idiom as the batch
     artifact writer): a crash mid-write leaves at worst a stray tmp
     file, never a truncated [.cache] entry for [disk_read] to choke
     on.  The handler is deliberately wide — out of space, permission,
     a directory swapped for a file, anything — because a failed write
     must degrade to a future miss, not abort the simulation that just
     produced the value. *)
  let disk_write ~namespace dir k v =
    let path = disk_path ~namespace dir k in
    let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Marshal.to_channel oc (k, v) []);
      Sys.rename tmp path
    with
    | () ->
      (match !disk_cap with Some cap -> sweep_disk dir cap | None -> ());
      true
    | exception _ ->
      (try Sys.remove tmp with _ -> ());
      false

  (* The shared lookup/store shape of the history table and every
     auxiliary [Store]: memory first, then the namespaced disk entry,
     counting into the shared hit/miss statistics.  Runs under
     [lock]. *)
  let find_in ~namespace tbl k =
    locked (fun () ->
        match !state with
        | None -> None
        | Some dir -> (
          match Hashtbl.find_opt tbl k with
          | Some v ->
            incr hits;
            Ocapi_obs.count "flow.cache.hit";
            Some v
          | None -> (
            match Option.bind dir (fun d -> disk_read ~namespace d k) with
            | Some v ->
              Hashtbl.replace tbl k v;
              incr hits;
              incr disk_hits;
              Ocapi_obs.count "flow.cache.hit";
              Some v
            | None ->
              incr misses;
              Ocapi_obs.count "flow.cache.miss";
              None)))

  (* Like [find_in] but free of statistics: the re-check inside
     [coalesced] must not inflate the miss counters. *)
  let probe_in ~namespace tbl k =
    locked (fun () ->
        match !state with
        | None -> None
        | Some dir -> (
          match Hashtbl.find_opt tbl k with
          | Some v -> Some v
          | None -> Option.bind dir (fun d -> disk_read ~namespace d k)))

  let store_in ~namespace tbl k v =
    locked (fun () ->
        match !state with
        | None -> ()
        | Some dir ->
          Hashtbl.replace tbl k v;
          Option.iter
            (fun d -> if disk_write ~namespace d k v then incr disk_writes)
            dir)

  let find_histories k = find_in ~namespace:"hist" table k
  let store_histories k v = store_in ~namespace:"hist" table k v

  (* --- in-flight coalescing.  The first caller of a key computes
     while identical concurrent callers block on [inflight_cond]; when
     the computation lands in the cache the waiters are served from it.
     This is the hook the batch service's duplicate-job coalescing and
     the parallel sweeps lean on: N identical requests cost one
     execution. *)
  let inflight : (string, unit) Hashtbl.t = Hashtbl.create 8
  let inflight_cond = Condition.create ()

  let coalesced ~key:k ~lookup ~probe ~compute ~store =
    (* true -> we own the computation; false -> another domain finished
       it while we waited, re-try the lookup. *)
    let claim () =
      locked (fun () ->
          if Hashtbl.mem inflight k then begin
            while Hashtbl.mem inflight k do
              Condition.wait inflight_cond lock
            done;
            false
          end
          else begin
            Hashtbl.add inflight k ();
            true
          end)
    in
    let release () =
      locked (fun () ->
          Hashtbl.remove inflight k;
          Condition.broadcast inflight_cond)
    in
    let rec go () =
      match lookup k with
      | Some v -> v
      | None ->
        if claim () then
          Fun.protect ~finally:release (fun () ->
              (* A winner may have stored between our miss and our
                 claim; a stat-free probe avoids recomputing. *)
              match probe k with
              | Some v -> v
              | None ->
                let v = compute () in
                store k v;
                v)
        else go ()
    in
    go ()

  let coalesced_histories ~key ~compute =
    coalesced ~key ~lookup:find_histories
      ~probe:(probe_in ~namespace:"hist" table)
      ~compute ~store:store_histories

  (* A typed auxiliary store sharing the cache's lifecycle (enable /
     disable / clear / stats) and disk directory.  One application per
     value type; [namespace] keys the disk entries, so it must be
     unique per type or disk reads would unmarshal at the wrong type. *)
  module Store (V : sig
    type t

    val namespace : string
  end) =
  struct
    let tbl : (string, V.t) Hashtbl.t = Hashtbl.create 16

    let () =
      locked (fun () ->
          clear_hooks := (fun () -> Hashtbl.reset tbl) :: !clear_hooks)

    let find k = find_in ~namespace:V.namespace tbl k
    let probe k = probe_in ~namespace:V.namespace tbl k
    let add k v = store_in ~namespace:V.namespace tbl k v

    let coalesced ~key ~compute =
      coalesced ~key ~lookup:find ~probe ~compute ~store:add
  end
end

(* Native-engine plugin artifacts ([.cmxs] bytes plus the marshalled
   metadata sidecar) ride the cache's lifecycle as a second tier behind
   the engine's own artifact directory.  Lookups go through the
   stat-free [probe] so the history hit/miss counters stay exactly what
   they are without a native toolchain in the picture. *)
module Cmxs_store = Cache.Store (struct
  type t = string * string

  let namespace = "cmxs"
end)

(* The flow layer is the first common dependency of every entry point
   (CLI, batch, tests), so registering the native engine here makes
   [Ocapi_engine.find "native"] work everywhere without each client
   naming [Ocapi_native]. *)
let () =
  Ocapi_native.register_engine ();
  Ocapi_ir.register_gate_engine ();
  Ocapi_native.set_shared_store ~find:Cmxs_store.probe ~store:Cmxs_store.add

(* One cache key per distinct behaviour: scheduling discipline and the
   RTL delta budget change what a run can produce, so they fold into
   the engine component of the key. *)
let engine_key name ~two_phase ~max_deltas =
  name
  ^ (if two_phase then "+two-phase" else "")
  ^ match max_deltas with Some n -> "+md" ^ string_of_int n | None -> ""

let simulate ?telemetry ?(two_phase = false) ?(engine = "interp") ?max_deltas
    ?(seed = 0) ?progress ?corr sys ~cycles =
  let (module E : Ocapi_engine.ENGINE) = Ocapi_engine.get engine in
  scoped ?telemetry ~label:("simulate." ^ E.name) (fun () ->
      let compute () =
        let options =
          { Ocapi_engine.opt_two_phase = two_phase;
            opt_max_deltas = max_deltas }
        in
        let ses = E.make ~options sys in
        Fun.protect ~finally:ses.Ocapi_engine.ses_close (fun () ->
            Ocapi_engine.run ?progress ses ~cycles)
      in
      let run () =
        if not (Cache.enabled ()) then compute ()
        else
          let key =
            Cache.key_of ~engine:(engine_key E.name ~two_phase ~max_deltas)
              ~seed sys ~cycles
          in
          Cache.coalesced_histories ~key ~compute
      in
      (* The correlation id lands both in the event log and in the span
         args, so a Perfetto trace and the event log join per job. *)
      let ev_fields =
        [ ("engine", Ocapi_obs.Json.String E.name);
          ("cycles", Ocapi_obs.Json.Int cycles) ]
      in
      let span_args =
        match corr with
        | None -> ev_fields
        | Some c -> ("corr", Ocapi_obs.Json.String c) :: ev_fields
      in
      Ocapi_obs.Events.emit ?corr ~fields:ev_fields "run_started";
      let result =
        Ocapi_obs.with_span ~cat:"flow" ~args:span_args "flow.simulate" run
      in
      Ocapi_obs.Events.emit ?corr ~fields:ev_fields "run_finished";
      result)

type mismatch = {
  mm_pair : string;
  mm_probe : string;
  mm_cycle : int option;
  mm_detail : string;
}

let first_history_mismatch a b =
  let rec scan_hist probe h1 h2 =
    match h1, h2 with
    | [], [] -> None
    | (c1, v1) :: t1, (c2, v2) :: t2 ->
      if c1 <> c2 then
        Some
          ( probe,
            Some (min c1 c2),
            Printf.sprintf "token cycles diverge (%d vs %d)" c1 c2 )
      else if not (Fixed.equal v1 v2) then
        Some
          ( probe,
            Some c1,
            Printf.sprintf "%s vs %s" (Fixed.to_string v1)
              (Fixed.to_string v2) )
      else scan_hist probe t1 t2
    | (c, _) :: _, [] ->
      Some (probe, Some c, "second history ends early")
    | [], (c, _) :: _ ->
      Some (probe, Some c, "first history ends early")
  in
  let rec scan a b =
    match a, b with
    | [], [] -> None
    | (p1, h1) :: t1, (p2, h2) :: t2 ->
      if p1 <> p2 then
        Some (p1, None, Printf.sprintf "probe order differs (vs %s)" p2)
      else (
        match scan_hist p1 h1 h2 with
        | Some m -> Some m
        | None -> scan t1 t2)
    | (p, _) :: _, [] -> Some (p, None, "probe missing from second engine")
    | [], (p, _) :: _ -> Some (p, None, "probe missing from first engine")
  in
  scan a b

(* The [~replicate] contract: each worker domain must own an isolated
   copy of the design, because engine sessions cache compiled and
   elaborated state inside (or aliasing) the system.  A factory that
   hands back the campaign system, the same system twice, or a system
   some live session still owns would silently share mutable engine
   state across domains — detect all three and refuse. *)
let check_replica ~context ~campaign ~seen replica =
  let refuse msg =
    raise
      (Ocapi_error.Error
         (Ocapi_error.make Ocapi_error.Shared_state ~engine:"flow"
            ~construct:(Cycle_system.name replica)
            (context ^ ": " ^ msg)))
  in
  if replica == campaign then
    refuse
      "~replicate returned the campaign system itself; worker domains \
       would share mutable engine state";
  if List.memq replica seen then
    refuse
      "~replicate returned the same system twice; each worker domain \
       needs its own copy";
  match Cycle_system.attached_engines replica with
  | [] -> ()
  | attached ->
    refuse
      (Printf.sprintf
         "~replicate returned a system with live engine sessions (%s); \
          close them (or build a fresh system) before handing it to a \
          worker"
         (String.concat ", " attached))

let engine_disagreements ?(domains = 1) ?replicate ?progress sys ~cycles =
  (* One task per registered engine; each worker domain owns an
     isolated copy of the system, so the runs can proceed concurrently.
     Results are keyed by engine index — the sweep is deterministic for
     any [domains]. *)
  let engines = Array.of_list (Ocapi_engine.all ()) in
  let n = Array.length engines in
  let seen = ref [] in
  let make_state k =
    if k = 0 then sys
    else
      match replicate with
      | Some f ->
        let s = f () in
        check_replica ~context:"Flow.engine_disagreements" ~campaign:sys
          ~seen:!seen s;
        seen := s :: !seen;
        s
      | None ->
        invalid_arg
          "Flow.engine_disagreements: a ~replicate design factory is \
           required when domains > 1 (each worker domain owns an isolated \
           copy of the system)"
  in
  let histories =
    Ocapi_parallel.map_tasks ~domains:(min domains n) ~chunk:1 ~make_state
      ~tasks:n
      ~f:(fun s i ->
        simulate ~engine:(Ocapi_engine.name_of engines.(i)) ?progress s ~cycles)
      ()
  in
  let baseline_display = Ocapi_engine.display_of engines.(0) in
  let pairs =
    List.init (n - 1) (fun j ->
        ( baseline_display ^ "-vs-" ^ Ocapi_engine.display_of engines.(j + 1),
          histories.(0),
          histories.(j + 1) ))
  in
  List.filter_map
    (fun (pair, a, b) ->
      match first_history_mismatch a b with
      | None -> None
      | Some (probe, cycle, detail) ->
        Some
          { mm_pair = pair; mm_probe = probe; mm_cycle = cycle;
            mm_detail = detail })
    pairs

let pp_mismatch ppf m =
  Format.fprintf ppf "%s: first mismatch at probe %s%s: %s" m.mm_pair
    m.mm_probe
    (match m.mm_cycle with
    | Some c -> Printf.sprintf ", cycle %d" c
    | None -> "")
    m.mm_detail

(* Canonical machine-readable rendering of a simulation result.  The
   CLI's [simulate --json] and the batch service's simulate artifacts
   both print exactly this (plus a trailing newline), which is what
   makes "batch output bit-identical to one-shot CLI output" a
   byte-level comparison. *)
let simulate_result_json ~engine ~cycles histories =
  let open Ocapi_obs.Json in
  Obj
    [
      ("kind", String "simulate");
      ("engine", String engine);
      ("cycles", Int cycles);
      ( "probes",
        Obj
          (List.map
             (fun (probe, hist) ->
               ( probe,
                 List
                   (List.map
                      (fun (c, v) ->
                        List [ Int c; String (Fixed.to_string v) ])
                      hist) ))
             histories) );
    ]

let mismatch_json m =
  let open Ocapi_obs.Json in
  Obj
    [
      ("pair", String m.mm_pair);
      ("probe", String m.mm_probe);
      ("cycle", match m.mm_cycle with Some c -> Int c | None -> Null);
      ("detail", String m.mm_detail);
    ]

let mismatches_json ~cycles ms =
  let open Ocapi_obs.Json in
  Obj
    [
      ("kind", String "engine-sweep");
      ("cycles", Int cycles);
      ("engines", List (List.map (fun n -> String n) (Ocapi_engine.names ())));
      ("agree", Bool (ms = []));
      ("mismatches", List (List.map mismatch_json ms));
    ]

let engines_agree ?domains ?replicate sys ~cycles =
  List.map
    (fun m -> Format.asprintf "%a" pp_mismatch m)
    (engine_disagreements ?domains ?replicate sys ~cycles)

(* --- structured diagnostics ----------------------------------------------- *)

let classify_exn ?cycle ~engine exn =
  let open Ocapi_error in
  match exn with
  | Error e -> Some e
  | Netlist.Sim.Did_not_settle e | Rtl.Delta_overflow e -> Some e
  | Cycle_system.Deadlock waiting ->
    Some
      (make Deadlock ~engine ?cycle ~nets:waiting
         "no component can fire: every candidate waits on a missing token")
  | Fixed.Overflow msg -> Some (make Overflow ~engine ?cycle msg)
  | Compiled_sim.Unsupported msg -> Some (make Unsupported ~engine ?cycle msg)
  | Cycle_system.System_error msg
  | Rtl.Rtl_error msg
  | Netlist.Netlist_error msg
  | Fsm.Fsm_error msg
  | Invalid_argument msg
  | Failure msg ->
    Some (make Internal ~engine ?cycle msg)
  | _ -> None

let write_file dir name contents =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let emit_vhdl sys ~dir =
  List.map (fun (name, contents) -> write_file dir name contents)
    (Vhdl.of_system sys)

let emit_testbench sys ~dir ~cycles =
  let vectors = Testbench.record sys ~cycles in
  write_file dir
    ("tb_" ^ Verilog.sanitize (Cycle_system.name sys) ^ ".vhd")
    (Testbench.vhdl sys vectors)

let emit_ocaml_simulator sys ~dir ~cycles =
  Cycle_system.reset sys;
  let src = Compiled_sim.emit_ocaml sys ~cycles in
  write_file dir
    (Verilog.sanitize (Cycle_system.name sys) ^ "_sim.ml")
    src

let synthesize_to_verilog ?telemetry ?options ?macro_of_kernel sys ~dir =
  scoped ?telemetry ~label:"synthesize" (fun () ->
      let nl, report = Synthesize.synthesize ?options ?macro_of_kernel sys in
      let path =
        write_file dir
          (Verilog.sanitize (Cycle_system.name sys) ^ "_netlist.v")
          (Verilog.of_netlist nl)
      in
      (nl, report, path))

let verify_netlist ?options ?macro_of_kernel sys ~cycles =
  Synthesize.verify ?options ?macro_of_kernel sys ~cycles
