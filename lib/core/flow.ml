type check_report = {
  system_issues : Cycle_system.check_issue list;
  sfg_issues : (string * Sfg.check_issue list) list;
  fsm_issues : (string * Fsm.check_issue list) list;
}

let check sys =
  let system_issues = Cycle_system.check sys in
  let sfg_issues =
    List.concat_map
      (fun (cname, fsm) ->
        List.filter_map
          (fun sfg ->
            match Sfg.check sfg with
            | [] -> None
            | issues -> Some (cname ^ "/" ^ Sfg.name sfg, issues))
          (Fsm.all_sfgs fsm))
      (Cycle_system.timed_components sys)
  in
  let fsm_issues =
    List.filter_map
      (fun (cname, fsm) ->
        match Fsm.check fsm with
        | [] -> None
        | issues -> Some (cname, issues))
      (Cycle_system.timed_components sys)
  in
  { system_issues; sfg_issues; fsm_issues }

let check_clean r =
  r.system_issues = [] && r.sfg_issues = [] && r.fsm_issues = []

let pp_check_report ppf r =
  if check_clean r then Format.fprintf ppf "all checks clean"
  else begin
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun i -> Format.fprintf ppf "system: %a@," Cycle_system.pp_issue i)
      r.system_issues;
    List.iter
      (fun (name, issues) ->
        List.iter
          (fun i -> Format.fprintf ppf "%s: %a@," name Sfg.pp_issue i)
          issues)
      r.sfg_issues;
    List.iter
      (fun (name, issues) ->
        List.iter
          (fun i -> Format.fprintf ppf "%s: %a@," name Fsm.pp_issue i)
          issues)
      r.fsm_issues;
    Format.fprintf ppf "@]"
  end

(* Run [f] plainly, or — when a [telemetry] cell is supplied — under a
   fresh enabled telemetry scope, leaving the report in the cell. *)
let scoped ?telemetry ~label f =
  match telemetry with
  | None -> f ()
  | Some cell ->
    let result, report = Ocapi_obs.run_with_telemetry ~label f in
    cell := Some report;
    result

(* --- keyed result cache ----------------------------------------------------

   Memoizes probe histories by (design digest, stimulus fingerprint,
   engine key, seed, cycles).  The structural digest
   ([Cycle_system.digest]) does not cover primary-input stimulus
   closures, so the key samples every stimulus over the simulated
   cycle range — stimuli must be pure functions of the cycle index for
   caching to be sound, which every generated test bench already
   requires.  Disabled by default; [enable ~dir] adds a Marshal-based
   on-disk store so warm runs survive the process. *)
module Cache = struct
  type stats = {
    hits : int;
    misses : int;
    entries : int;
    disk_hits : int;
    disk_writes : int;
  }

  let lock = Mutex.create ()
  let table : (string, (string * (int * Fixed.t) list) list) Hashtbl.t =
    Hashtbl.create 64

  (* None = disabled; Some dir = enabled, with an optional disk store. *)
  let state : string option option ref = ref None
  let hits = ref 0
  let misses = ref 0
  let disk_hits = ref 0
  let disk_writes = ref 0

  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      let parent = Filename.dirname dir in
      if parent <> dir then mkdir_p parent;
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end

  let enable ?dir () =
    (match dir with Some d -> mkdir_p d | None -> ());
    locked (fun () -> state := Some dir)

  let disable () = locked (fun () -> state := None)
  let enabled () = !state <> None
  let clear () = locked (fun () -> Hashtbl.reset table)

  let stats () =
    locked (fun () ->
        {
          hits = !hits;
          misses = !misses;
          entries = Hashtbl.length table;
          disk_hits = !disk_hits;
          disk_writes = !disk_writes;
        })

  let reset_stats () =
    locked (fun () ->
        hits := 0;
        misses := 0;
        disk_hits := 0;
        disk_writes := 0)

  let key ~engine ~seed sys ~cycles =
    let digest = Cycle_system.digest sys in
    let stim_buf = Buffer.create 256 in
    List.iter
      (fun (name, _, stim) ->
        Buffer.add_string stim_buf name;
        Buffer.add_char stim_buf ':';
        for c = 0 to cycles - 1 do
          (match stim c with
          | Some v -> Buffer.add_string stim_buf (Int64.to_string (Fixed.mantissa v))
          | None -> Buffer.add_char stim_buf '-');
          Buffer.add_char stim_buf ','
        done;
        Buffer.add_char stim_buf ';')
      (List.sort
         (fun (a, _, _) (b, _, _) -> String.compare a b)
         (Cycle_system.primary_inputs sys));
    let stim_fp = Digest.to_hex (Digest.string (Buffer.contents stim_buf)) in
    String.concat "|"
      [ digest; stim_fp; engine; string_of_int seed; string_of_int cycles ]

  let disk_path dir k =
    Filename.concat dir ("v1-" ^ Digest.to_hex (Digest.string k) ^ ".cache")

  (* Disk entries carry their full key so an MD5 filename collision
     degrades to a miss, never a wrong result. *)
  let disk_read dir k =
    let path = disk_path dir k in
    if not (Sys.file_exists path) then None
    else
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let stored_key, histories =
              (Marshal.from_channel ic
                : string * (string * (int * Fixed.t) list) list)
            in
            if stored_key = k then Some histories else None)
      with _ -> None

  let disk_write dir k v =
    try
      let oc = open_out_bin (disk_path dir k) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Marshal.to_channel oc (k, v) []);
      true
    with Sys_error _ -> false

  let lookup k =
    locked (fun () ->
        match !state with
        | None -> None
        | Some dir -> (
          match Hashtbl.find_opt table k with
          | Some v ->
            incr hits;
            Ocapi_obs.count "flow.cache.hit";
            Some v
          | None -> (
            match Option.bind dir (fun d -> disk_read d k) with
            | Some v ->
              Hashtbl.replace table k v;
              incr hits;
              incr disk_hits;
              Ocapi_obs.count "flow.cache.hit";
              Some v
            | None ->
              incr misses;
              Ocapi_obs.count "flow.cache.miss";
              None)))

  let store k v =
    locked (fun () ->
        match !state with
        | None -> ()
        | Some dir ->
          Hashtbl.replace table k v;
          Option.iter
            (fun d -> if disk_write d k v then incr disk_writes)
            dir)
end

(* One cache key per distinct behaviour: scheduling discipline and the
   RTL delta budget change what a run can produce, so they fold into
   the engine component of the key. *)
let engine_key name ~two_phase ~max_deltas =
  name
  ^ (if two_phase then "+two-phase" else "")
  ^ match max_deltas with Some n -> "+md" ^ string_of_int n | None -> ""

let simulate ?telemetry ?(two_phase = false) ?(engine = "interp") ?max_deltas
    ?(seed = 0) sys ~cycles =
  let (module E : Ocapi_engine.ENGINE) = Ocapi_engine.get engine in
  scoped ?telemetry ~label:("simulate." ^ E.name) (fun () ->
      let k =
        if Cache.enabled () then
          Some (Cache.key ~engine:(engine_key E.name ~two_phase ~max_deltas)
                  ~seed sys ~cycles)
        else None
      in
      match Option.bind k Cache.lookup with
      | Some histories -> histories
      | None ->
        let options =
          { Ocapi_engine.opt_two_phase = two_phase;
            opt_max_deltas = max_deltas }
        in
        let ses = E.make ~options sys in
        let histories =
          Fun.protect ~finally:ses.Ocapi_engine.ses_close (fun () ->
              Ocapi_engine.run ses ~cycles)
        in
        Option.iter (fun k -> Cache.store k histories) k;
        histories)

let simulate_compiled ?telemetry sys ~cycles =
  simulate ?telemetry ~engine:"compiled" sys ~cycles

let simulate_rtl ?telemetry sys ~cycles =
  simulate ?telemetry ~engine:"rtl" sys ~cycles

type mismatch = {
  mm_pair : string;
  mm_probe : string;
  mm_cycle : int option;
  mm_detail : string;
}

let first_history_mismatch a b =
  let rec scan_hist probe h1 h2 =
    match h1, h2 with
    | [], [] -> None
    | (c1, v1) :: t1, (c2, v2) :: t2 ->
      if c1 <> c2 then
        Some
          ( probe,
            Some (min c1 c2),
            Printf.sprintf "token cycles diverge (%d vs %d)" c1 c2 )
      else if not (Fixed.equal v1 v2) then
        Some
          ( probe,
            Some c1,
            Printf.sprintf "%s vs %s" (Fixed.to_string v1)
              (Fixed.to_string v2) )
      else scan_hist probe t1 t2
    | (c, _) :: _, [] ->
      Some (probe, Some c, "second history ends early")
    | [], (c, _) :: _ ->
      Some (probe, Some c, "first history ends early")
  in
  let rec scan a b =
    match a, b with
    | [], [] -> None
    | (p1, h1) :: t1, (p2, h2) :: t2 ->
      if p1 <> p2 then
        Some (p1, None, Printf.sprintf "probe order differs (vs %s)" p2)
      else (
        match scan_hist p1 h1 h2 with
        | Some m -> Some m
        | None -> scan t1 t2)
    | (p, _) :: _, [] -> Some (p, None, "probe missing from second engine")
    | [], (p, _) :: _ -> Some (p, None, "probe missing from first engine")
  in
  scan a b

(* The [~replicate] contract: each worker domain must own an isolated
   copy of the design, because engine sessions cache compiled and
   elaborated state inside (or aliasing) the system.  A factory that
   hands back the campaign system, the same system twice, or a system
   some live session still owns would silently share mutable engine
   state across domains — detect all three and refuse. *)
let check_replica ~context ~campaign ~seen replica =
  let refuse msg =
    raise
      (Ocapi_error.Error
         (Ocapi_error.make Ocapi_error.Shared_state ~engine:"flow"
            ~construct:(Cycle_system.name replica)
            (context ^ ": " ^ msg)))
  in
  if replica == campaign then
    refuse
      "~replicate returned the campaign system itself; worker domains \
       would share mutable engine state";
  if List.memq replica seen then
    refuse
      "~replicate returned the same system twice; each worker domain \
       needs its own copy";
  match Cycle_system.attached_engines replica with
  | [] -> ()
  | attached ->
    refuse
      (Printf.sprintf
         "~replicate returned a system with live engine sessions (%s); \
          close them (or build a fresh system) before handing it to a \
          worker"
         (String.concat ", " attached))

let engine_disagreements ?(domains = 1) ?replicate sys ~cycles =
  (* One task per registered engine; each worker domain owns an
     isolated copy of the system, so the runs can proceed concurrently.
     Results are keyed by engine index — the sweep is deterministic for
     any [domains]. *)
  let engines = Array.of_list (Ocapi_engine.all ()) in
  let n = Array.length engines in
  let seen = ref [] in
  let make_state k =
    if k = 0 then sys
    else
      match replicate with
      | Some f ->
        let s = f () in
        check_replica ~context:"Flow.engine_disagreements" ~campaign:sys
          ~seen:!seen s;
        seen := s :: !seen;
        s
      | None ->
        invalid_arg
          "Flow.engine_disagreements: a ~replicate design factory is \
           required when domains > 1 (each worker domain owns an isolated \
           copy of the system)"
  in
  let histories =
    Ocapi_parallel.map_tasks ~domains:(min domains n) ~chunk:1 ~make_state
      ~tasks:n
      ~f:(fun s i -> simulate ~engine:(Ocapi_engine.name_of engines.(i)) s ~cycles)
      ()
  in
  let baseline_display = Ocapi_engine.display_of engines.(0) in
  let pairs =
    List.init (n - 1) (fun j ->
        ( baseline_display ^ "-vs-" ^ Ocapi_engine.display_of engines.(j + 1),
          histories.(0),
          histories.(j + 1) ))
  in
  List.filter_map
    (fun (pair, a, b) ->
      match first_history_mismatch a b with
      | None -> None
      | Some (probe, cycle, detail) ->
        Some
          { mm_pair = pair; mm_probe = probe; mm_cycle = cycle;
            mm_detail = detail })
    pairs

let pp_mismatch ppf m =
  Format.fprintf ppf "%s: first mismatch at probe %s%s: %s" m.mm_pair
    m.mm_probe
    (match m.mm_cycle with
    | Some c -> Printf.sprintf ", cycle %d" c
    | None -> "")
    m.mm_detail

let engines_agree ?domains ?replicate sys ~cycles =
  List.map
    (fun m -> Format.asprintf "%a" pp_mismatch m)
    (engine_disagreements ?domains ?replicate sys ~cycles)

(* --- structured diagnostics ----------------------------------------------- *)

let classify_exn ?cycle ~engine exn =
  let open Ocapi_error in
  match exn with
  | Error e -> Some e
  | Netlist.Sim.Did_not_settle e | Rtl.Delta_overflow e -> Some e
  | Cycle_system.Deadlock waiting ->
    Some
      (make Deadlock ~engine ?cycle ~nets:waiting
         "no component can fire: every candidate waits on a missing token")
  | Fixed.Overflow msg -> Some (make Overflow ~engine ?cycle msg)
  | Compiled_sim.Unsupported msg -> Some (make Unsupported ~engine ?cycle msg)
  | Cycle_system.System_error msg
  | Rtl.Rtl_error msg
  | Netlist.Netlist_error msg
  | Fsm.Fsm_error msg
  | Invalid_argument msg
  | Failure msg ->
    Some (make Internal ~engine ?cycle msg)
  | _ -> None

let write_file dir name contents =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let emit_vhdl sys ~dir =
  List.map (fun (name, contents) -> write_file dir name contents)
    (Vhdl.of_system sys)

let emit_testbench sys ~dir ~cycles =
  let vectors = Testbench.record sys ~cycles in
  write_file dir
    ("tb_" ^ Verilog.sanitize (Cycle_system.name sys) ^ ".vhd")
    (Testbench.vhdl sys vectors)

let emit_ocaml_simulator sys ~dir ~cycles =
  Cycle_system.reset sys;
  let src = Compiled_sim.emit_ocaml sys ~cycles in
  write_file dir
    (Verilog.sanitize (Cycle_system.name sys) ^ "_sim.ml")
    src

let synthesize_to_verilog ?telemetry ?options ?macro_of_kernel sys ~dir =
  scoped ?telemetry ~label:"synthesize" (fun () ->
      let nl, report = Synthesize.synthesize ?options ?macro_of_kernel sys in
      let path =
        write_file dir
          (Verilog.sanitize (Cycle_system.name sys) ^ "_netlist.v")
          (Verilog.of_netlist nl)
      in
      (nl, report, path))

let verify_netlist ?options ?macro_of_kernel sys ~cycles =
  Synthesize.verify ?options ?macro_of_kernel sys ~cycles
