type check_report = {
  system_issues : Cycle_system.check_issue list;
  sfg_issues : (string * Sfg.check_issue list) list;
  fsm_issues : (string * Fsm.check_issue list) list;
}

let check sys =
  let system_issues = Cycle_system.check sys in
  let sfg_issues =
    List.concat_map
      (fun (cname, fsm) ->
        List.filter_map
          (fun sfg ->
            match Sfg.check sfg with
            | [] -> None
            | issues -> Some (cname ^ "/" ^ Sfg.name sfg, issues))
          (Fsm.all_sfgs fsm))
      (Cycle_system.timed_components sys)
  in
  let fsm_issues =
    List.filter_map
      (fun (cname, fsm) ->
        match Fsm.check fsm with
        | [] -> None
        | issues -> Some (cname, issues))
      (Cycle_system.timed_components sys)
  in
  { system_issues; sfg_issues; fsm_issues }

let check_clean r =
  r.system_issues = [] && r.sfg_issues = [] && r.fsm_issues = []

let pp_check_report ppf r =
  if check_clean r then Format.fprintf ppf "all checks clean"
  else begin
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun i -> Format.fprintf ppf "system: %a@," Cycle_system.pp_issue i)
      r.system_issues;
    List.iter
      (fun (name, issues) ->
        List.iter
          (fun i -> Format.fprintf ppf "%s: %a@," name Sfg.pp_issue i)
          issues)
      r.sfg_issues;
    List.iter
      (fun (name, issues) ->
        List.iter
          (fun i -> Format.fprintf ppf "%s: %a@," name Fsm.pp_issue i)
          issues)
      r.fsm_issues;
    Format.fprintf ppf "@]"
  end

let probe_histories sys =
  List.filter_map
    (fun p ->
      match Cycle_system.find_component sys p with
      | Some c -> Some (p, Cycle_system.output_history sys c)
      | None -> None)
    (Cycle_system.probes sys)

(* Run [f] plainly, or — when a [telemetry] cell is supplied — under a
   fresh enabled telemetry scope, leaving the report in the cell. *)
let scoped ?telemetry ~label f =
  match telemetry with
  | None -> f ()
  | Some cell ->
    let result, report = Ocapi_obs.run_with_telemetry ~label f in
    cell := Some report;
    result

let simulate ?telemetry ?(two_phase = false) sys ~cycles =
  scoped ?telemetry ~label:"simulate.interp" (fun () ->
      Cycle_system.reset sys;
      Cycle_system.run ~two_phase sys cycles;
      let result = probe_histories sys in
      Cycle_system.reset sys;
      result)

let simulate_compiled ?telemetry sys ~cycles =
  scoped ?telemetry ~label:"simulate.compiled" (fun () ->
      Cycle_system.reset sys;
      let prog = Compiled_sim.compile sys in
      Compiled_sim.run prog cycles;
      List.map
        (fun p -> (p, Compiled_sim.output_history prog p))
        (Cycle_system.probes sys))

let simulate_rtl ?telemetry sys ~cycles =
  scoped ?telemetry ~label:"simulate.rtl" (fun () ->
      Cycle_system.reset sys;
      let rtl = Rtl.of_system sys in
      Rtl.reset rtl;
      Rtl.run rtl cycles;
      let result =
        List.map
          (fun p -> (p, Rtl.output_history rtl p))
          (Cycle_system.probes sys)
      in
      Cycle_system.reset sys;
      result)

type mismatch = {
  mm_pair : string;
  mm_probe : string;
  mm_cycle : int option;
  mm_detail : string;
}

let first_history_mismatch a b =
  let rec scan_hist probe h1 h2 =
    match h1, h2 with
    | [], [] -> None
    | (c1, v1) :: t1, (c2, v2) :: t2 ->
      if c1 <> c2 then
        Some
          ( probe,
            Some (min c1 c2),
            Printf.sprintf "token cycles diverge (%d vs %d)" c1 c2 )
      else if not (Fixed.equal v1 v2) then
        Some
          ( probe,
            Some c1,
            Printf.sprintf "%s vs %s" (Fixed.to_string v1)
              (Fixed.to_string v2) )
      else scan_hist probe t1 t2
    | (c, _) :: _, [] ->
      Some (probe, Some c, "second history ends early")
    | [], (c, _) :: _ ->
      Some (probe, Some c, "first history ends early")
  in
  let rec scan a b =
    match a, b with
    | [], [] -> None
    | (p1, h1) :: t1, (p2, h2) :: t2 ->
      if p1 <> p2 then
        Some (p1, None, Printf.sprintf "probe order differs (vs %s)" p2)
      else (
        match scan_hist p1 h1 h2 with
        | Some m -> Some m
        | None -> scan t1 t2)
    | (p, _) :: _, [] -> Some (p, None, "probe missing from second engine")
    | [], (p, _) :: _ -> Some (p, None, "probe missing from first engine")
  in
  scan a b

let engine_disagreements ?(domains = 1) ?replicate sys ~cycles =
  (* One task per engine; each worker domain owns an isolated copy of
     the system (engines cache compiled/elaborated state inside it), so
     the three runs can proceed concurrently.  Results are keyed by
     engine index — the sweep is deterministic for any [domains]. *)
  let make_state k =
    if k = 0 then sys
    else
      match replicate with
      | Some f -> f ()
      | None ->
        invalid_arg
          "Flow.engine_disagreements: a ~replicate design factory is \
           required when domains > 1 (each worker domain owns an isolated \
           copy of the system)"
  in
  let histories =
    Ocapi_parallel.map_tasks ~domains:(min domains 3) ~chunk:1 ~make_state
      ~tasks:3
      ~f:(fun s i ->
        match i with
        | 0 -> simulate s ~cycles
        | 1 -> simulate_compiled s ~cycles
        | _ -> simulate_rtl s ~cycles)
      ()
  in
  let interp = histories.(0) in
  let compiled = histories.(1) in
  let rtl = histories.(2) in
  List.filter_map
    (fun (pair, a, b) ->
      match first_history_mismatch a b with
      | None -> None
      | Some (probe, cycle, detail) ->
        Some
          { mm_pair = pair; mm_probe = probe; mm_cycle = cycle;
            mm_detail = detail })
    [
      ("interpreted-vs-compiled", interp, compiled);
      ("interpreted-vs-rtl", interp, rtl);
    ]

let pp_mismatch ppf m =
  Format.fprintf ppf "%s: first mismatch at probe %s%s: %s" m.mm_pair
    m.mm_probe
    (match m.mm_cycle with
    | Some c -> Printf.sprintf ", cycle %d" c
    | None -> "")
    m.mm_detail

let engines_agree ?domains ?replicate sys ~cycles =
  List.map
    (fun m -> Format.asprintf "%a" pp_mismatch m)
    (engine_disagreements ?domains ?replicate sys ~cycles)

(* --- structured diagnostics ----------------------------------------------- *)

let classify_exn ?cycle ~engine exn =
  let open Ocapi_error in
  match exn with
  | Error e -> Some e
  | Netlist.Sim.Did_not_settle e | Rtl.Delta_overflow e -> Some e
  | Cycle_system.Deadlock waiting ->
    Some
      (make Deadlock ~engine ?cycle ~nets:waiting
         "no component can fire: every candidate waits on a missing token")
  | Fixed.Overflow msg -> Some (make Overflow ~engine ?cycle msg)
  | Compiled_sim.Unsupported msg -> Some (make Unsupported ~engine ?cycle msg)
  | Cycle_system.System_error msg
  | Rtl.Rtl_error msg
  | Netlist.Netlist_error msg
  | Fsm.Fsm_error msg
  | Invalid_argument msg
  | Failure msg ->
    Some (make Internal ~engine ?cycle msg)
  | _ -> None

let write_file dir name contents =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let emit_vhdl sys ~dir =
  List.map (fun (name, contents) -> write_file dir name contents)
    (Vhdl.of_system sys)

let emit_testbench sys ~dir ~cycles =
  let vectors = Testbench.record sys ~cycles in
  write_file dir
    ("tb_" ^ Verilog.sanitize (Cycle_system.name sys) ^ ".vhd")
    (Testbench.vhdl sys vectors)

let emit_ocaml_simulator sys ~dir ~cycles =
  Cycle_system.reset sys;
  let src = Compiled_sim.emit_ocaml sys ~cycles in
  write_file dir
    (Verilog.sanitize (Cycle_system.name sys) ^ "_sim.ml")
    src

let synthesize_to_verilog ?telemetry ?options ?macro_of_kernel sys ~dir =
  scoped ?telemetry ~label:"synthesize" (fun () ->
      let nl, report = Synthesize.synthesize ?options ?macro_of_kernel sys in
      let path =
        write_file dir
          (Verilog.sanitize (Cycle_system.name sys) ^ "_netlist.v")
          (Verilog.of_netlist nl)
      in
      (nl, report, path))

let verify_netlist ?options ?macro_of_kernel sys ~cycles =
  Synthesize.verify ?options ?macro_of_kernel sys ~cycles
