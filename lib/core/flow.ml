type check_report = {
  system_issues : Cycle_system.check_issue list;
  sfg_issues : (string * Sfg.check_issue list) list;
  fsm_issues : (string * Fsm.check_issue list) list;
}

let check sys =
  let system_issues = Cycle_system.check sys in
  let sfg_issues =
    List.concat_map
      (fun (cname, fsm) ->
        List.filter_map
          (fun sfg ->
            match Sfg.check sfg with
            | [] -> None
            | issues -> Some (cname ^ "/" ^ Sfg.name sfg, issues))
          (Fsm.all_sfgs fsm))
      (Cycle_system.timed_components sys)
  in
  let fsm_issues =
    List.filter_map
      (fun (cname, fsm) ->
        match Fsm.check fsm with
        | [] -> None
        | issues -> Some (cname, issues))
      (Cycle_system.timed_components sys)
  in
  { system_issues; sfg_issues; fsm_issues }

let check_clean r =
  r.system_issues = [] && r.sfg_issues = [] && r.fsm_issues = []

let pp_check_report ppf r =
  if check_clean r then Format.fprintf ppf "all checks clean"
  else begin
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun i -> Format.fprintf ppf "system: %a@," Cycle_system.pp_issue i)
      r.system_issues;
    List.iter
      (fun (name, issues) ->
        List.iter
          (fun i -> Format.fprintf ppf "%s: %a@," name Sfg.pp_issue i)
          issues)
      r.sfg_issues;
    List.iter
      (fun (name, issues) ->
        List.iter
          (fun i -> Format.fprintf ppf "%s: %a@," name Fsm.pp_issue i)
          issues)
      r.fsm_issues;
    Format.fprintf ppf "@]"
  end

let probe_histories sys =
  List.filter_map
    (fun p ->
      match Cycle_system.find_component sys p with
      | Some c -> Some (p, Cycle_system.output_history sys c)
      | None -> None)
    (Cycle_system.probes sys)

let simulate ?(two_phase = false) sys ~cycles =
  Cycle_system.reset sys;
  Cycle_system.run ~two_phase sys cycles;
  let result = probe_histories sys in
  Cycle_system.reset sys;
  result

let simulate_compiled sys ~cycles =
  Cycle_system.reset sys;
  let prog = Compiled_sim.compile sys in
  Compiled_sim.run prog cycles;
  List.map
    (fun p -> (p, Compiled_sim.output_history prog p))
    (Cycle_system.probes sys)

let simulate_rtl sys ~cycles =
  Cycle_system.reset sys;
  let rtl = Rtl.of_system sys in
  Rtl.reset rtl;
  Rtl.run rtl cycles;
  let result =
    List.map (fun p -> (p, Rtl.output_history rtl p)) (Cycle_system.probes sys)
  in
  Cycle_system.reset sys;
  result

let engines_agree sys ~cycles =
  let interp = simulate sys ~cycles in
  let compiled = simulate_compiled sys ~cycles in
  let rtl = simulate_rtl sys ~cycles in
  let same a b =
    List.for_all2
      (fun (p1, h1) (p2, h2) ->
        p1 = p2
        && List.length h1 = List.length h2
        && List.for_all2
             (fun (c1, v1) (c2, v2) -> c1 = c2 && Fixed.equal v1 v2)
             h1 h2)
      a b
  in
  List.filter_map
    (fun (label, ok) -> if ok then None else Some label)
    [
      ("interpreted-vs-compiled", same interp compiled);
      ("interpreted-vs-rtl", same interp rtl);
    ]

let write_file dir name contents =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let emit_vhdl sys ~dir =
  List.map (fun (name, contents) -> write_file dir name contents)
    (Vhdl.of_system sys)

let emit_testbench sys ~dir ~cycles =
  let vectors = Testbench.record sys ~cycles in
  write_file dir
    ("tb_" ^ Verilog.sanitize (Cycle_system.name sys) ^ ".vhd")
    (Testbench.vhdl sys vectors)

let emit_ocaml_simulator sys ~dir ~cycles =
  Cycle_system.reset sys;
  let src = Compiled_sim.emit_ocaml sys ~cycles in
  write_file dir
    (Verilog.sanitize (Cycle_system.name sys) ^ "_sim.ml")
    src

let synthesize_to_verilog ?options ?macro_of_kernel sys ~dir =
  let nl, report = Synthesize.synthesize ?options ?macro_of_kernel sys in
  let path =
    write_file dir
      (Verilog.sanitize (Cycle_system.name sys) ^ "_netlist.v")
      (Verilog.of_netlist nl)
  in
  (nl, report, path)

let verify_netlist ?options ?macro_of_kernel sys ~cycles =
  Synthesize.verify ?options ?macro_of_kernel sys ~cycles
