(** The design flows of the programming environment (figs 7 and 8).

    A design is captured once as a {!Cycle_system.t}; this module is the
    front door to everything that can be done with it:

    - {b simulate} it interpreted (three-phase cycle scheduler) or
      compiled (flattened closure program),
    - {b elaborate} it for event-driven RT simulation,
    - {b generate} VHDL, a standalone OCaml simulator, a self-checking
      test bench,
    - {b synthesize} it to a gate-level netlist and print that netlist
      as structural Verilog,
    - {b verify} the synthesized netlist against the reference
      simulation with the recorded test-bench vectors. *)

(** {1 Static checks} *)

type check_report = {
  system_issues : Cycle_system.check_issue list;
  sfg_issues : (string * Sfg.check_issue list) list;  (** per SFG *)
  fsm_issues : (string * Fsm.check_issue list) list;  (** per component *)
}

(** Run the semantic checks of the environment: interconnect audit,
    SFG dangling-input/dead-code detection, FSM determinism and
    reachability sampling. *)
val check : Cycle_system.t -> check_report

val pp_check_report : Format.formatter -> check_report -> unit

(** True when no issue of any kind was found. *)
val check_clean : check_report -> bool

(** {1 Simulation} *)

(** Interpreted simulation for [cycles]; returns the probe histories by
    probe name.  Resets the system first. *)
val simulate :
  ?two_phase:bool ->
  Cycle_system.t ->
  cycles:int ->
  (string * (int * Fixed.t) list) list

(** Compiled simulation of the same system; same result shape. *)
val simulate_compiled :
  Cycle_system.t -> cycles:int -> (string * (int * Fixed.t) list) list

(** Event-driven RT simulation; same result shape. *)
val simulate_rtl :
  Cycle_system.t -> cycles:int -> (string * (int * Fixed.t) list) list

(** [engines_agree sys ~cycles] runs interpreted, compiled and RTL
    simulation and returns the list of engine pairs that disagree
    (empty = all equivalent). *)
val engines_agree : Cycle_system.t -> cycles:int -> string list

(** {1 Code generation} *)

(** Write the generated VHDL files into [dir]; returns the paths. *)
val emit_vhdl : Cycle_system.t -> dir:string -> string list

(** Write a self-checking VHDL test bench recorded over [cycles]. *)
val emit_testbench : Cycle_system.t -> dir:string -> cycles:int -> string

(** Write the standalone compiled OCaml simulator source. *)
val emit_ocaml_simulator : Cycle_system.t -> dir:string -> cycles:int -> string

(** {1 Synthesis} *)

(** Synthesize and write the structural Verilog netlist; returns the
    netlist, the synthesis report and the file path. *)
val synthesize_to_verilog :
  ?options:Synthesize.options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  Cycle_system.t ->
  dir:string ->
  Netlist.t * Synthesize.report * string

(** Gate-level verification against the reference simulation
    (see {!Synthesize.verify}). *)
val verify_netlist :
  ?options:Synthesize.options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  Cycle_system.t ->
  cycles:int ->
  Synthesize.verify_result
