(** The design flows of the programming environment (figs 7 and 8).

    A design is captured once as a {!Cycle_system.t}; this module is the
    front door to everything that can be done with it:

    - {b simulate} it interpreted (three-phase cycle scheduler) or
      compiled (flattened closure program),
    - {b elaborate} it for event-driven RT simulation,
    - {b generate} VHDL, a standalone OCaml simulator, a self-checking
      test bench,
    - {b synthesize} it to a gate-level netlist and print that netlist
      as structural Verilog,
    - {b verify} the synthesized netlist against the reference
      simulation with the recorded test-bench vectors. *)

(** {1 Static checks} *)

type check_report = {
  system_issues : Cycle_system.check_issue list;
  sfg_issues : (string * Sfg.check_issue list) list;  (** per SFG *)
  fsm_issues : (string * Fsm.check_issue list) list;  (** per component *)
}

(** Run the semantic checks of the environment: interconnect audit,
    SFG dangling-input/dead-code detection, FSM determinism and
    reachability sampling. *)
val check : Cycle_system.t -> check_report

val pp_check_report : Format.formatter -> check_report -> unit

(** True when no issue of any kind was found. *)
val check_clean : check_report -> bool

(** {1 Simulation}

    Every simulation (and synthesis) entry point takes an optional
    [?telemetry] cell.  When supplied, the run executes under a fresh
    enabled {!Ocapi_obs} scope — counters reset, engines instrumented —
    and the cell receives the {!Ocapi_obs.report} (metrics snapshot,
    wall time, trace-event count).  Without it the run pays only the
    disabled-telemetry cost (one flag check per cycle). *)

(** [simulate ?engine sys ~cycles] simulates on the named engine
    (resolved from the {!Ocapi_engine} registry; default ["interp"])
    and returns the probe histories by probe name.  Resets the system
    first and leaves it reset.  [two_phase] selects the classic
    two-phase scheduler (interpreted engine only); [max_deltas] is the
    RTL engine's delta budget; [seed] only keys the result {!Cache}
    (plain simulation is deterministic).

    When the {!Cache} is enabled, the run is served from it on a key
    hit — bit-identical to a cold run — and stored into it otherwise;
    identical runs in flight on other domains are coalesced to one
    execution (see {!Cache.coalesced}).

    [progress] is called with the cycle index before every simulated
    cycle; it may raise to abandon the run cooperatively (the batch
    service's timeout/cancellation hook).  It is not called on a cache
    hit — there is nothing to abandon.

    [corr] is a correlation id: the run emits
    [run_started]/[run_finished] into {!Ocapi_obs.Events} (no-ops while
    the event log is disabled) and tags its trace span with the same
    id, so a batch job's event-log lines and its Perfetto span join.
    Without [corr] the events are still emitted, uncorrelated.

    @raise Ocapi_error.Error with code [Unsupported] on an unknown
    engine name. *)
val simulate :
  ?telemetry:Ocapi_obs.report option ref ->
  ?two_phase:bool ->
  ?engine:string ->
  ?max_deltas:int ->
  ?seed:int ->
  ?progress:(int -> unit) ->
  ?corr:string ->
  Cycle_system.t ->
  cycles:int ->
  (string * (int * Fixed.t) list) list

(** [simulate_result_json ~engine ~cycles histories] is the canonical
    machine-readable rendering of a {!simulate} result: probe name to
    [[cycle, value]] token lists.  [ocapi simulate --json] and the
    batch service's simulate artifacts print exactly this. *)
val simulate_result_json :
  engine:string ->
  cycles:int ->
  (string * (int * Fixed.t) list) list ->
  Ocapi_obs.Json.t

(** {1 Keyed result cache}

    Memoizes {!simulate} results by
    [(Cycle_system.digest, stimulus fingerprint, engine, seed, cycles)].
    The structural digest does not cover primary-input stimulus
    closures, so the key additionally fingerprints every stimulus
    sampled over the simulated cycle range — stimuli must be pure
    functions of the cycle index for caching to be sound.

    Disabled by default.  With [enable ~dir] each stored entry is also
    marshalled to [dir] (e.g. [_generated/cache/]) and warm processes
    read it back; entries carry their full key, so a filename collision
    degrades to a miss, never a wrong result.  Delete the directory for
    clean benchmark numbers.  Hits and misses count into the
    [flow.cache.hit] / [flow.cache.miss] telemetry counters when
    telemetry is enabled.

    The cache is also the {b coalescing and dedup substrate} of the
    batch service: {!Cache.key_of} is the digest-based fingerprint
    batch jobs dedup through, {!Cache.coalesced} merges identical
    in-flight computations across domains, and {!Cache.Store} lets
    other layers (the SEU campaign report cache of [Ocapi_fault])
    memoize their own result types under the same lifecycle. *)
module Cache : sig
  type stats = {
    hits : int;  (** lookups served (memory or disk) *)
    misses : int;
    entries : int;  (** in-memory entries right now *)
    disk_hits : int;  (** subset of [hits] read from disk *)
    disk_writes : int;
    disk_evictions : int;  (** files deleted by the LRU size sweep *)
  }

  (** [enable ?dir ?max_disk_bytes ()] turns the cache on; [dir] adds
      the on-disk store (created if missing).  Disk entries are written
      atomically (tmp + rename) and any write or read failure —
      including a corrupted or truncated entry — degrades to a miss,
      never an exception.  [max_disk_bytes] bounds
      the disk store: after every write, if the [.cache] files of
      [dir] exceed the cap, the least-recently-used entries (oldest
      mtime; disk hits touch their file) are deleted until it fits.
      Omitted = unbounded, the historical behaviour.
      @raise Invalid_argument on a negative cap. *)
  val enable : ?dir:string -> ?max_disk_bytes:int -> unit -> unit

  val disable : unit -> unit
  val enabled : unit -> bool

  (** Drop the in-memory entries of the history table and of every
      auxiliary {!Store} (the disk store, if any, persists). *)
  val clear : unit -> unit

  val stats : unit -> stats
  val reset_stats : unit -> unit

  (** [key_of ~engine ~seed sys ~cycles] is the cache key of a run:
      structural digest, stimulus fingerprint over [cycles], the
      engine/options string, seed and cycle count.  Exposed so other
      layers key their own memoization and dedup on the same identity —
      the batch service fingerprints whole jobs with it by folding the
      job parameters into [engine]. *)
  val key_of :
    engine:string -> seed:int -> Cycle_system.t -> cycles:int -> string

  val find_histories : string -> (string * (int * Fixed.t) list) list option
  val store_histories : string -> (string * (int * Fixed.t) list) list -> unit

  (** [coalesced ~key ~lookup ~probe ~compute ~store] returns the
      cached value of [key], or computes it exactly once across all
      concurrent callers: the first caller runs [compute] while
      identical callers block, then are served from the cache.
      [probe] must be a statistics-free [lookup] (the internal
      re-check).  With the cache disabled every lookup misses and each
      caller computes in turn — correct, just uncoalesced across
      time. *)
  val coalesced :
    key:string ->
    lookup:(string -> 'a option) ->
    probe:(string -> 'a option) ->
    compute:(unit -> 'a) ->
    store:(string -> 'a -> unit) ->
    'a

  (** {!coalesced} specialized to the history table. *)
  val coalesced_histories :
    key:string ->
    compute:(unit -> (string * (int * Fixed.t) list) list) ->
    (string * (int * Fixed.t) list) list

  (** A typed auxiliary store sharing the cache's lifecycle
      (enable/disable/clear/stats) and disk directory.  Apply once per
      value type with a unique [namespace] — disk entries are keyed by
      it, and a namespace shared between two types would unmarshal at
      the wrong type.  Values must be marshallable (no closures). *)
  module Store (V : sig
    type t

    val namespace : string
  end) : sig
    val find : string -> V.t option

    (** Statistics-free {!find}: consults memory then disk without
        touching the shared hit/miss counters.  For lookups whose
        outcome must not perturb {!Cache.stats} (e.g. the native
        engine's artifact tier, which also has its own disk cache). *)
    val probe : string -> V.t option

    val add : string -> V.t -> unit
    val coalesced : key:string -> compute:(unit -> V.t) -> V.t
  end
end

(** {1 Engine cross-checks} *)

(** One engine-pair disagreement, pinned to its first point of
    divergence. *)
type mismatch = {
  mm_pair : string;  (** e.g. ["interpreted-vs-compiled"] *)
  mm_probe : string;  (** first disagreeing probe *)
  mm_cycle : int option;  (** first disagreeing cycle, when comparable *)
  mm_detail : string;  (** the two values, or the structural difference *)
}

(** [first_history_mismatch a b] compares two probe-history sets (the
    result shape of {!simulate}) and returns the first divergence as
    [(probe, cycle, detail)] — [None] when they are identical.  Exposed
    for testing and for diffing externally produced histories. *)
val first_history_mismatch :
  (string * (int * Fixed.t) list) list ->
  (string * (int * Fixed.t) list) list ->
  (string * int option * string) option

(** [check_replica ~context ~campaign ~seen replica] enforces the
    [~replicate] contract shared by every parallel campaign: [replica]
    must not be [campaign] itself, must not appear in [seen] (systems
    already handed to other workers), and must have no live engine
    sessions ([Cycle_system.attached_engines]).
    @raise Ocapi_error.Error with code [Shared_state] otherwise. *)
val check_replica :
  context:string ->
  campaign:Cycle_system.t ->
  seen:Cycle_system.t list ->
  Cycle_system.t ->
  unit

(** [engine_disagreements sys ~cycles] runs every engine of the
    {!Ocapi_engine} registry and reports each pair (first registered
    engine vs each other) that disagrees, with its first mismatch
    (empty = all equivalent).  With the built-in registry the pairs are
    ["interpreted-vs-compiled"] and ["interpreted-vs-rtl"].

    [domains] (default [1] = the serial path) runs the engines on an
    {!Ocapi_parallel} pool, one task per engine.  Worker 0 reuses
    [sys]; each further worker needs an isolated copy of the design
    built by [replicate] (engines cache compiled state inside the
    system).  The sweep result is identical for any [domains].

    [progress] is forwarded to each engine's {!simulate} (so it is
    called per simulated cycle, on the worker domain running that
    engine); it may raise to abandon the sweep cooperatively.

    @raise Invalid_argument if [domains > 1] without [replicate].
    @raise Ocapi_error.Error with code [Shared_state] if [replicate]
    hands a worker a shared or session-owned system
    (see {!check_replica}). *)
val engine_disagreements :
  ?domains:int ->
  ?replicate:(unit -> Cycle_system.t) ->
  ?progress:(int -> unit) ->
  Cycle_system.t ->
  cycles:int ->
  mismatch list

val pp_mismatch : Format.formatter -> mismatch -> unit

(** [mismatch_json m] — one {!mismatch} as JSON. *)
val mismatch_json : mismatch -> Ocapi_obs.Json.t

(** [mismatches_json ~cycles ms] is the canonical machine-readable
    rendering of an {!engine_disagreements} sweep: the engine roster,
    an [agree] verdict, and the mismatch list.  The CLI's
    engine-sweep [--json] output and the batch service's engine-sweep
    artifacts print exactly this. *)
val mismatches_json : cycles:int -> mismatch list -> Ocapi_obs.Json.t

(** [engines_agree sys ~cycles] — {!engine_disagreements} rendered as
    one diagnostic line per disagreeing pair, naming the first
    disagreeing probe and cycle (empty = all equivalent). *)
val engines_agree :
  ?domains:int ->
  ?replicate:(unit -> Cycle_system.t) ->
  Cycle_system.t ->
  cycles:int ->
  string list

(** {1 Structured diagnostics} *)

(** [classify_exn ~engine exn] maps the exceptions the simulation
    engines can raise — deadlock, oscillation, delta overflow, fixed
    point overflow, invariant failures — onto a structured
    {!Ocapi_error.t}, so campaign drivers can record a failing run as a
    per-run diagnostic instead of aborting.  Exceptions already carrying
    an [Ocapi_error.t] pass through unchanged (their own engine/cycle
    fields win); [None] means the exception is foreign and should be
    re-raised. *)
val classify_exn : ?cycle:int -> engine:string -> exn -> Ocapi_error.t option

(** {1 Code generation} *)

(** Write the generated VHDL files into [dir]; returns the paths. *)
val emit_vhdl : Cycle_system.t -> dir:string -> string list

(** Write a self-checking VHDL test bench recorded over [cycles]. *)
val emit_testbench : Cycle_system.t -> dir:string -> cycles:int -> string

(** Write the standalone compiled OCaml simulator source. *)
val emit_ocaml_simulator : Cycle_system.t -> dir:string -> cycles:int -> string

(** {1 Synthesis} *)

(** Synthesize and write the structural Verilog netlist; returns the
    netlist, the synthesis report and the file path. *)
val synthesize_to_verilog :
  ?telemetry:Ocapi_obs.report option ref ->
  ?options:Synthesize.options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  Cycle_system.t ->
  dir:string ->
  Netlist.t * Synthesize.report * string

(** Gate-level verification against the reference simulation
    (see {!Synthesize.verify}). *)
val verify_netlist :
  ?options:Synthesize.options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  Cycle_system.t ->
  cycles:int ->
  Synthesize.verify_result
