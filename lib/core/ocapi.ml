(** The public facade of ocapi-ml.

    Everything the environment offers, re-exported under one roof:

    {[
      let open Ocapi in
      let fmt = Fixed.signed ~width:12 ~frac:8 in
      ...
    ]}

    All modules are also usable directly (the libraries are unwrapped);
    this module exists for discoverability and for the examples. *)

module Fixed = Fixed
module Bitvector = Bitvector
module Clock = Clock
module Signal = Signal
module Sfg = Sfg
module Fsm = Fsm
module Dataflow = Dataflow
module Cycle_system = Cycle_system
module Compiled_sim = Compiled_sim
module Rtl = Rtl
module Vhdl = Vhdl
module Verilog = Verilog
module Testbench = Testbench
module Vcd = Vcd
module Netlist = Netlist
module Sop = Sop
module Wordgen = Wordgen
module Synthesize = Synthesize
module Netopt = Netopt
module Flow = Flow
module Metrics = Metrics

let version = "1.0.0"
