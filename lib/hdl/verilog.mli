(** Structural Verilog emission of gate-level netlists.

    The paper's Table 1 includes a "Verilog (netlist)" simulation of the
    synthesized DECT chip; this printer produces that netlist view from
    an {!Netlist.t}: one module with wire declarations, primitive gate
    instances, DFF always-blocks and behavioural ROM/RAM macros. *)

val of_netlist : Netlist.t -> string

(** Make a name a legal HDL identifier (shared with the test-bench
    generator). *)
val sanitize : string -> string

(** Line count of the generated text (code-size metric). *)
val line_count : string -> int
