(** VCD waveform dumping.

    A practical extension beyond the paper: record the signal activity
    of a simulation and print a Value Change Dump file that any waveform
    viewer (GTKWave, Surfer) opens.  One VCD time unit is one clock
    cycle; each net becomes a wire of its carried format's width,
    holding two's-complement mantissa bits.

    Any of the three in-process engines can produce the waveform:
    - {!Interp}: every interconnect token of the three-phase scheduler;
    - {!Compiled}: every net carrying a token in the compiled program
      (nets without a derivable format are omitted);
    - {!Rtl_engine}: every elaborated RTL signal that changed value —
      including clock, state and register shadow signals, so this dump
      is the most detailed of the three. *)

type engine = Interp | Compiled | Rtl_engine

(** [record ?engine sys ~cycles] resets the system, traces the chosen
    engine's signals (default {!Interp}), runs it for [cycles] and
    returns the VCD text. *)
val record : ?engine:engine -> Cycle_system.t -> cycles:int -> string

(** [write ?engine sys ~cycles ~path] — same, written to a file. *)
val write : ?engine:engine -> Cycle_system.t -> cycles:int -> path:string -> unit
