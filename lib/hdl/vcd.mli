(** VCD waveform dumping.

    A practical extension beyond the paper: record every interconnect
    token of a simulation and print a Value Change Dump file that any
    waveform viewer (GTKWave, Surfer) opens.  One VCD time unit is one
    clock cycle; each net becomes a wire of its carried format's width,
    holding two's-complement mantissa bits. *)

(** [record sys ~cycles] resets the system, traces every net, runs the
    interpreted simulation and returns the VCD text. *)
val record : Cycle_system.t -> cycles:int -> string

(** [write sys ~cycles ~path] — same, written to a file. *)
val write : Cycle_system.t -> cycles:int -> path:string -> unit
