type vectors = {
  tb_cycles : int;
  tb_inputs : (int * string * Fixed.t) list;
  tb_outputs : (int * string * Fixed.t) list;
}

let record sys ~cycles =
  Cycle_system.reset sys;
  Cycle_system.run sys cycles;
  let tb_inputs = Cycle_system.input_history sys in
  let tb_outputs =
    List.concat_map
      (fun p ->
        match Cycle_system.find_component sys p with
        | Some c ->
          List.map (fun (cy, v) -> (cy, p, v)) (Cycle_system.output_history sys c)
        | None -> [])
      (Cycle_system.probes sys)
    |> List.sort compare
  in
  Cycle_system.reset sys;
  { tb_cycles = cycles; tb_inputs; tb_outputs }

let sanitize = Verilog.sanitize

let vhdl sys vectors =
  let buf = Buffer.create 16384 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let top = sanitize (Cycle_system.name sys) in
  let fmts = Cycle_system.net_formats sys in
  let sink_map = Hashtbl.create 16 in
  List.iter
    (fun (net, _, sinks) ->
      List.iter (fun (sc, sp) -> Hashtbl.replace sink_map (sc, sp) net) sinks)
    (Cycle_system.nets sys);
  let probe_fmt p =
    match Hashtbl.find_opt sink_map (p, "in") with
    | Some net -> Hashtbl.find_opt fmts net
    | None -> None
  in
  let is_signed (f : Fixed.format) =
    match f.Fixed.signedness with Fixed.Signed -> true | Fixed.Unsigned -> false
  in
  let vhdl_type (f : Fixed.format) =
    Printf.sprintf "%s(%d downto 0)"
      (if is_signed f then "signed" else "unsigned")
      (f.Fixed.width - 1)
  in
  pf "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  pf "entity tb_%s is\nend entity tb_%s;\n\n" top top;
  pf "architecture sim of tb_%s is\n" top;
  pf "  signal clk : std_logic := '0';\n  signal rst : std_logic := '1';\n";
  List.iter
    (fun (name, fmt, _) ->
      pf "  signal i_%s : %s := (others => '0');\n" (sanitize name)
        (vhdl_type fmt))
    (Cycle_system.primary_inputs sys);
  List.iter
    (fun p ->
      match probe_fmt p with
      | Some f -> pf "  signal o_%s : %s;\n" (sanitize p) (vhdl_type f)
      | None -> ())
    (Cycle_system.probes sys);
  pf "begin\n\n  clk <= not clk after 5 ns;\n\n";
  pf "  dut : entity work.%s\n    port map (\n      clk => clk,\n      rst => rst" top;
  List.iter
    (fun (name, _, _) ->
      pf ",\n      i_%s => i_%s" (sanitize name) (sanitize name))
    (Cycle_system.primary_inputs sys);
  List.iter
    (fun p ->
      match probe_fmt p with
      | Some _ -> pf ",\n      o_%s => o_%s" (sanitize p) (sanitize p)
      | None -> ())
    (Cycle_system.probes sys);
  pf "\n    );\n\n";
  pf "  stimulus : process\n  begin\n";
  pf "    wait until rising_edge(clk);\n    rst <= '0';\n";
  (* Group vectors by cycle: apply inputs after the falling edge, check
     outputs just before the next rising edge. *)
  let per_cycle_in = Array.make vectors.tb_cycles [] in
  List.iter
    (fun (c, name, v) ->
      if c < vectors.tb_cycles then
        per_cycle_in.(c) <- (name, v) :: per_cycle_in.(c))
    vectors.tb_inputs;
  let per_cycle_out = Array.make vectors.tb_cycles [] in
  List.iter
    (fun (c, p, v) ->
      if c < vectors.tb_cycles then
        per_cycle_out.(c) <- (p, v) :: per_cycle_out.(c))
    vectors.tb_outputs;
  for c = 0 to vectors.tb_cycles - 1 do
    pf "    -- cycle %d\n" c;
    List.iter
      (fun (name, v) ->
        let f = Fixed.fmt v in
        pf "    i_%s <= to_%s(%Ld, %d);\n" (sanitize name)
          (if is_signed f then "signed" else "unsigned")
          (Fixed.mantissa v) f.Fixed.width)
      (List.rev per_cycle_in.(c));
    pf "    wait for 4 ns;\n";
    List.iter
      (fun (p, v) ->
        let f = Fixed.fmt v in
        pf
          "    assert o_%s = to_%s(%Ld, %d) report \"cycle %d: %s mismatch\" \
           severity error;\n"
          (sanitize p)
          (if is_signed f then "signed" else "unsigned")
          (Fixed.mantissa v) f.Fixed.width c p)
      (List.rev per_cycle_out.(c));
    pf "    wait until rising_edge(clk);\n"
  done;
  pf "    report \"test bench completed: %d cycles\" severity note;\n"
    vectors.tb_cycles;
  pf "    wait;\n  end process stimulus;\n\nend architecture sim;\n";
  Buffer.contents buf
