(** Synthesizable VHDL generation.

    "The writing of HDL is avoided through code generation from C++"
    (section 7): the clock-cycle-true description is translated into
    equivalent VHDL automatically (fig 7, right branch).  Per fig 8 each
    timed component becomes one entity whose architecture holds

    - a combinational process (the datapath + transition selection):
      three-address variable assignments mirroring the SFG DAGs, guarded
      by a [case] over the state and [if] chains over the conditions,
    - a sequential process (register update on the rising clock edge).

    Untimed RAM kernels map to a generic RAM entity; the system entity
    instantiates every component and wires the nets.

    The generated text is used two ways: as the deliverable HDL hand-off
    and as the code-size comparator of Table 1 ("the C++ modeling gains
    a factor of 5 in code size over RT-VHDL modeling"). *)

exception Vhdl_error of string

(** [of_system sys] returns [(file_name, contents)] pairs: one per
    timed component, one RAM entity if needed, and a structural
    top level named after the system. *)
val of_system : Cycle_system.t -> (string * string) list

(** Total line count of the generated VHDL (the Table 1 metric). *)
val line_count : (string * string) list -> int

(** [of_netlist nl] — a structural VHDL view of a gate-level netlist
    (Table 1's "VHDL (netlist)" row for HCOR): one entity, every net a
    [std_logic] signal, gates as concurrent assignments, flip-flops as a
    clocked process, ROM/RAM macros as behavioural blocks. *)
val of_netlist : Netlist.t -> string
