exception Vhdl_error of string

let _error fmt = Format.kasprintf (fun s -> raise (Vhdl_error s)) fmt

let sanitize name =
  let s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      (String.lowercase_ascii name)
  in
  match s.[0] with
  | 'a' .. 'z' -> s
  | '0' .. '9' | '_' -> "x" ^ s
  | _ -> "x" ^ s
  | exception Invalid_argument _ -> "x"

let is_signed (f : Fixed.format) =
  match f.Fixed.signedness with Fixed.Signed -> true | Fixed.Unsigned -> false

let vhdl_type (f : Fixed.format) =
  Printf.sprintf "%s(%d downto 0)"
    (if is_signed f then "signed" else "unsigned")
    (f.Fixed.width - 1)

(* Value-preserving cast of [expr] (format [src]) to the representation
   width [w] and signedness of [dst], with an alignment shift of [k]
   fraction bits. *)
let cast ~src ~dst_signed ~w ~k expr =
  let resized =
    if is_signed src && dst_signed then Printf.sprintf "resize(%s, %d)" expr w
    else if (not (is_signed src)) && not dst_signed then
      Printf.sprintf "resize(%s, %d)" expr w
    else if is_signed src && not dst_signed then
      (* Only occurs when the value is known non-negative by the format
         rules; reinterpret after resizing. *)
      Printf.sprintf "unsigned(resize(%s, %d))" expr w
    else Printf.sprintf "signed(resize(%s, %d))" expr w
  in
  if k = 0 then resized else Printf.sprintf "shift_left(%s, %d)" resized k

let var n = Printf.sprintf "v_%d" (Signal.id n)

(* Emit three-address assignments computing [node] into its variable.
   [emitted] dedups across the whole process; [line] appends a statement. *)
let rec emit_node ~line ~emitted ~port_name ~reg_name ~rom_name node =
  if not (Hashtbl.mem emitted (Signal.id node)) then begin
    Hashtbl.replace emitted (Signal.id node) ();
    let go x = emit_node ~line ~emitted ~port_name ~reg_name ~rom_name x in
    let nf = Signal.fmt node in
    let w = nf.Fixed.width in
    let self_signed = is_signed nf in
    let bin op x y =
      go x;
      go y;
      let fx = Signal.fmt x and fy = Signal.fmt y in
      let frac = max fx.Fixed.frac fy.Fixed.frac in
      let cx =
        cast ~src:fx ~dst_signed:self_signed ~w ~k:(frac - fx.Fixed.frac) (var x)
      in
      let cy =
        cast ~src:fy ~dst_signed:self_signed ~w ~k:(frac - fy.Fixed.frac) (var y)
      in
      line (Printf.sprintf "%s := %s %s %s;" (var node) cx op cy)
    in
    let cmp op x y =
      go x;
      go y;
      let fx = Signal.fmt x and fy = Signal.fmt y in
      let frac = max fx.Fixed.frac fy.Fixed.frac in
      (* Compare value-faithfully in signed arithmetic two bits wide of
         slack. *)
      let cw =
        2 + max (fx.Fixed.width + frac - fx.Fixed.frac)
              (fy.Fixed.width + frac - fy.Fixed.frac)
      in
      let cx = cast ~src:fx ~dst_signed:true ~w:cw ~k:(frac - fx.Fixed.frac) (var x) in
      let cy = cast ~src:fy ~dst_signed:true ~w:cw ~k:(frac - fy.Fixed.frac) (var y) in
      line
        (Printf.sprintf "if %s %s %s then %s := \"1\"; else %s := \"0\"; end if;"
           cx op cy (var node) (var node))
    in
    match Signal.op node with
    | Signal.Const v ->
      line
        (Printf.sprintf "%s := to_%s(%Ld, %d);" (var node)
           (if self_signed then "signed" else "unsigned")
           (Fixed.mantissa v) w)
    | Signal.Input_read i ->
      line (Printf.sprintf "%s := %s;" (var node) (port_name i))
    | Signal.Reg_read r ->
      line (Printf.sprintf "%s := %s;" (var node) (reg_name r))
    | Signal.Add (x, y) -> bin "+" x y
    | Signal.Sub (x, y) -> bin "-" x y
    | Signal.Mul (x, y) ->
      go x;
      go y;
      let conv f v =
        if is_signed f = self_signed then v
        else cast ~src:f ~dst_signed:self_signed ~w:(f.Fixed.width + 1) ~k:0 v
      in
      line
        (Printf.sprintf "%s := resize(%s * %s, %d);" (var node)
           (conv (Signal.fmt x) (var x))
           (conv (Signal.fmt y) (var y))
           w)
    | Signal.Neg x ->
      go x;
      line
        (Printf.sprintf "%s := -resize(%s, %d);" (var node)
           (cast ~src:(Signal.fmt x) ~dst_signed:true ~w ~k:0 (var x))
           w)
    | Signal.Abs x ->
      go x;
      line
        (Printf.sprintf "%s := abs(resize(%s, %d));" (var node)
           (cast ~src:(Signal.fmt x) ~dst_signed:true ~w ~k:0 (var x))
           w)
    | Signal.And (x, y) -> bin "and" x y
    | Signal.Or (x, y) -> bin "or" x y
    | Signal.Xor (x, y) -> bin "xor" x y
    | Signal.Not x ->
      go x;
      line (Printf.sprintf "%s := not %s;" (var node) (var x))
    | Signal.Eq (x, y) -> cmp "=" x y
    | Signal.Lt (x, y) -> cmp "<" x y
    | Signal.Le (x, y) -> cmp "<=" x y
    | Signal.Mux (s, x, y) ->
      go s;
      go x;
      go y;
      let fx = Signal.fmt x and fy = Signal.fmt y in
      let ex =
        cast ~src:fx ~dst_signed:self_signed ~w ~k:(nf.Fixed.frac - fx.Fixed.frac)
          (var x)
      in
      let ey =
        cast ~src:fy ~dst_signed:self_signed ~w ~k:(nf.Fixed.frac - fy.Fixed.frac)
          (var y)
      in
      line
        (Printf.sprintf
           "if %s = \"1\" then %s := %s; else %s := %s; end if;" (var s)
           (var node) ex (var node) ey)
    | Signal.Resize (round, overflow, x) ->
      go x;
      let fx = Signal.fmt x in
      let k = fx.Fixed.frac - nf.Fixed.frac in
      (* Work in a wide signed temporary. *)
      let wide = fx.Fixed.width + (max 0 (-k)) + 2 in
      let t = Printf.sprintf "%s_w" (var node) in
      line
        (Printf.sprintf "%s := %s;" t
           (cast ~src:fx ~dst_signed:true ~w:wide ~k:(max 0 (-k)) (var x)));
      if k > 0 then begin
        (match round with
        | Fixed.Truncate -> ()
        | Fixed.Round_nearest ->
          line
            (Printf.sprintf "%s := %s + to_signed(%Ld, %d);" t t
               (Int64.shift_left 1L (k - 1))
               wide)
        | Fixed.Round_even ->
          line
            (Printf.sprintf
               "if %s(%d) = '1' and (%s(%d downto 0) /= 0 or %s(%d) = '1') \
                then %s := %s + to_signed(%Ld, %d); end if;"
               t (k - 1) t
               (max 0 (k - 2))
               t k t t
               (Int64.shift_left 1L (k - 1))
               wide));
        line (Printf.sprintf "%s := shift_right(%s, %d);" t t k)
      end;
      (match overflow with
      | Fixed.Wrap ->
        line
          (Printf.sprintf "%s := %s(%s(%d downto 0));" (var node)
             (if self_signed then "signed" else "unsigned")
             t (w - 1))
      | Fixed.Saturate ->
        let lo = Fixed.min_mantissa nf and hi = Fixed.max_mantissa nf in
        line
          (Printf.sprintf
             "if %s < to_signed(%Ld, %d) then %s := to_%s(%Ld, %d); elsif %s \
              > to_signed(%Ld, %d) then %s := to_%s(%Ld, %d); else %s := \
              %s(%s(%d downto 0)); end if;"
             t lo wide (var node)
             (if self_signed then "signed" else "unsigned")
             lo w t hi wide (var node)
             (if self_signed then "signed" else "unsigned")
             hi w (var node)
             (if self_signed then "signed" else "unsigned")
             t (w - 1)))
    | Signal.Rom_read (r, idx) ->
      go idx;
      let fi = Signal.fmt idx in
      let addr =
        if fi.Fixed.frac <= 0 then
          Printf.sprintf "to_integer(%s) * %d" (var idx)
            (1 lsl max 0 (-fi.Fixed.frac))
        else Printf.sprintf "to_integer(%s) / %d" (var idx) (1 lsl fi.Fixed.frac)
      in
      line
        (Printf.sprintf "%s := %s((%s) mod %d);" (var node) (rom_name r) addr
           (Signal.Rom.size r))
    | Signal.Shift_left (x, _) | Signal.Shift_right (x, _) ->
      go x;
      line (Printf.sprintf "%s := %s;" (var node) (var x))
  end

(* Collect every node of a component once. *)
let all_nodes fsm =
  let seen = Hashtbl.create 256 in
  let nodes = ref [] in
  let visit root =
    Signal.fold_dag root ~init:() ~f:(fun () n ->
        if not (Hashtbl.mem seen (Signal.id n)) then begin
          Hashtbl.replace seen (Signal.id n) ();
          nodes := n :: !nodes
        end)
  in
  List.iter
    (fun tr ->
      visit (Fsm.guard_expr tr.Fsm.t_guard);
      List.iter
        (fun sfg ->
          List.iter (fun (_, e) -> visit e) (Sfg.outputs sfg);
          List.iter (fun (_, e) -> visit e) (Sfg.assigns sfg))
        tr.Fsm.t_actions)
    (Fsm.transitions fsm);
  List.rev !nodes

let component_entity cname fsm ~out_fmts =
  let buf = Buffer.create 8192 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ent = sanitize cname in
  let regs = Fsm.all_regs fsm in
  let in_ports =
    List.concat_map
      (fun sfg -> List.map (fun i -> (Signal.Input.name i, Signal.Input.fmt i)) (Sfg.inputs sfg))
      (Fsm.all_sfgs fsm)
    |> List.sort_uniq compare
  in
  let out_ports =
    List.concat_map
      (fun sfg -> List.map fst (Sfg.outputs sfg))
      (Fsm.all_sfgs fsm)
    |> List.sort_uniq String.compare
    |> List.filter_map (fun p ->
           match List.assoc_opt p out_fmts with
           | Some f -> Some (p, f)
           | None -> None)
  in
  pf "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  pf "entity %s is\n  port (\n    clk : in std_logic;\n    rst : in std_logic" ent;
  List.iter
    (fun (p, f) -> pf ";\n    p_%s : in %s" (sanitize p) (vhdl_type f))
    in_ports;
  List.iter
    (fun (p, f) -> pf ";\n    o_%s : out %s" (sanitize p) (vhdl_type f))
    out_ports;
  pf "\n  );\nend entity %s;\n\n" ent;
  pf "architecture rtl of %s is\n" ent;
  (* State type. *)
  let states = Fsm.states fsm in
  pf "  type state_t is (%s);\n"
    (String.concat ", " (List.map (fun s -> "st_" ^ sanitize (Fsm.state_name s)) states));
  pf "  signal state, state_next : state_t;\n";
  List.iter
    (fun r ->
      pf "  signal r_%s, r_%s_next : %s;\n" (sanitize (Signal.Reg.name r))
        (sanitize (Signal.Reg.name r))
        (vhdl_type (Signal.Reg.fmt r)))
    regs;
  (* ROM constants. *)
  let roms = Hashtbl.create 4 in
  List.iter
    (fun n ->
      match Signal.op n with
      | Signal.Rom_read (r, _) ->
        if not (Hashtbl.mem roms (Signal.Rom.name r)) then begin
          Hashtbl.replace roms (Signal.Rom.name r) ();
          let rn = sanitize (Signal.Rom.name r) in
          let rf = Signal.Rom.fmt r in
          pf "  type %s_t is array (0 to %d) of %s;\n" rn
            (Signal.Rom.size r - 1) (vhdl_type rf);
          pf "  constant rom_%s : %s_t := (\n    " rn rn;
          for i = 0 to Signal.Rom.size r - 1 do
            if i > 0 then pf ",%s" (if i mod 8 = 0 then "\n    " else " ");
            pf "to_%s(%Ld, %d)"
              (if is_signed rf then "signed" else "unsigned")
              (Fixed.mantissa (Signal.Rom.get r i))
              rf.Fixed.width
          done;
          pf ");\n"
        end
      | _ -> ())
    (all_nodes fsm);
  pf "begin\n\n";
  (* Combinational process. *)
  pf "  comb : process (state%s%s)\n"
    (String.concat ""
       (List.map (fun r -> ", r_" ^ sanitize (Signal.Reg.name r)) regs))
    (String.concat ""
       (List.map (fun (p, _) -> ", p_" ^ sanitize p) in_ports));
  List.iter
    (fun n -> pf "    variable %s : %s;\n" (var n) (vhdl_type (Signal.fmt n)))
    (all_nodes fsm);
  (* Wide temporaries for resize nodes. *)
  List.iter
    (fun n ->
      match Signal.op n with
      | Signal.Resize (_, _, x) ->
        let fx = Signal.fmt x in
        let k = fx.Fixed.frac - (Signal.fmt n).Fixed.frac in
        let wide = fx.Fixed.width + max 0 (-k) + 2 in
        pf "    variable %s_w : signed(%d downto 0);\n" (var n) (wide - 1)
      | _ -> ())
    (all_nodes fsm);
  pf "  begin\n";
  pf "    state_next <= state;\n";
  List.iter
    (fun r ->
      let rn = sanitize (Signal.Reg.name r) in
      pf "    r_%s_next <= r_%s;\n" rn rn)
    regs;
  List.iter
    (fun (p, _) -> pf "    o_%s <= (others => '0');\n" (sanitize p))
    out_ports;
  let emitted = Hashtbl.create 256 in
  let port_name i = "p_" ^ sanitize (Signal.Input.name i) in
  let reg_name r = "r_" ^ sanitize (Signal.Reg.name r) in
  let rom_name r = "rom_" ^ sanitize (Signal.Rom.name r) in
  let indent = ref 2 in
  let line s =
    pf "%s%s\n" (String.make (!indent * 2) ' ') s
  in
  (* Guards first (they read registers only). *)
  List.iter
    (fun tr ->
      emit_node ~line ~emitted ~port_name ~reg_name ~rom_name
        (Fsm.guard_expr tr.Fsm.t_guard))
    (Fsm.transitions fsm);
  pf "    case state is\n";
  List.iter
    (fun s ->
      pf "      when st_%s =>\n" (sanitize (Fsm.state_name s));
      indent := 4;
      let trs = Fsm.transitions_from fsm s in
      let rec chain first = function
        | [] ->
          if not first then line "end if;"
        | tr :: rest ->
          let g = Fsm.guard_expr tr.Fsm.t_guard in
          line
            (Printf.sprintf "%s %s = \"1\" then"
               (if first then "if" else "elsif")
               (var g));
          indent := !indent + 1;
          (* The transition body: fresh dedup per branch so shared nodes
             are recomputed in each branch (variables are branch-local
             in effect). *)
          let branch_emitted = Hashtbl.create 64 in
          Hashtbl.iter (fun k () -> Hashtbl.replace branch_emitted k ()) emitted;
          let bline = line in
          List.iter
            (fun sfg ->
              List.iter
                (fun (port, e) ->
                  emit_node ~line:bline ~emitted:branch_emitted ~port_name
                    ~reg_name ~rom_name e;
                  bline
                    (Printf.sprintf "o_%s <= %s;" (sanitize port) (var e)))
                (Sfg.outputs sfg);
              List.iter
                (fun (r, e) ->
                  emit_node ~line:bline ~emitted:branch_emitted ~port_name
                    ~reg_name ~rom_name e;
                  bline
                    (Printf.sprintf "r_%s_next <= %s;"
                       (sanitize (Signal.Reg.name r))
                       (var e)))
                (Sfg.assigns sfg))
            tr.Fsm.t_actions;
          bline
            (Printf.sprintf "state_next <= st_%s;"
               (sanitize (Fsm.state_name tr.Fsm.t_goto)));
          indent := !indent - 1;
          chain false rest
      in
      chain true trs;
      indent := 2)
    states;
  pf "    end case;\n";
  pf "  end process comb;\n\n";
  (* Sequential process. *)
  pf "  seq : process (clk)\n  begin\n";
  pf "    if rising_edge(clk) then\n";
  pf "      if rst = '1' then\n";
  pf "        state <= st_%s;\n"
    (sanitize (Fsm.state_name (Fsm.initial_state fsm)));
  List.iter
    (fun r ->
      pf "        r_%s <= to_%s(%Ld, %d);\n"
        (sanitize (Signal.Reg.name r))
        (if is_signed (Signal.Reg.fmt r) then "signed" else "unsigned")
        (Fixed.mantissa (Signal.Reg.init r))
        (Signal.Reg.fmt r).Fixed.width)
    regs;
  pf "      else\n";
  pf "        state <= state_next;\n";
  List.iter
    (fun r ->
      let rn = sanitize (Signal.Reg.name r) in
      pf "        r_%s <= r_%s_next;\n" rn rn)
    regs;
  pf "      end if;\n    end if;\n  end process seq;\n\n";
  pf "end architecture rtl;\n";
  Buffer.contents buf

let ram_entity =
  String.concat "\n"
    [
      "library ieee;";
      "use ieee.std_logic_1164.all;";
      "use ieee.numeric_std.all;";
      "";
      "entity ocapi_ram is";
      "  generic (words : positive; width : positive; addr_width : positive);";
      "  port (";
      "    clk   : in std_logic;";
      "    addr  : in unsigned(addr_width - 1 downto 0);";
      "    wdata : in unsigned(width - 1 downto 0);";
      "    we    : in std_logic;";
      "    rdata : out unsigned(width - 1 downto 0)";
      "  );";
      "end entity ocapi_ram;";
      "";
      "architecture rtl of ocapi_ram is";
      "  type mem_t is array (0 to words - 1) of unsigned(width - 1 downto 0);";
      "  signal mem : mem_t := (others => (others => '0'));";
      "begin";
      "  rdata <= mem(to_integer(addr) mod words);";
      "  write : process (clk)";
      "  begin";
      "    if rising_edge(clk) and we = '1' then";
      "      mem(to_integer(addr) mod words) <= wdata;";
      "    end if;";
      "  end process write;";
      "end architecture rtl;";
      "";
    ]

let toplevel sys fmts =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let top = sanitize (Cycle_system.name sys) in
  pf "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  pf "entity %s is\n  port (\n    clk : in std_logic;\n    rst : in std_logic" top;
  List.iter
    (fun (name, fmt, _) -> pf ";\n    i_%s : in %s" (sanitize name) (vhdl_type fmt))
    (Cycle_system.primary_inputs sys);
  let sink_map = Hashtbl.create 16 in
  List.iter
    (fun (net, _, sinks) ->
      List.iter (fun (sc, sp) -> Hashtbl.replace sink_map (sc, sp) net) sinks)
    (Cycle_system.nets sys);
  List.iter
    (fun p ->
      match Hashtbl.find_opt sink_map (p, "in") with
      | Some net -> begin
        match Hashtbl.find_opt fmts net with
        | Some f -> pf ";\n    o_%s : out %s" (sanitize p) (vhdl_type f)
        | None -> ()
      end
      | None -> ())
    (Cycle_system.probes sys);
  pf "\n  );\nend entity %s;\n\n" top;
  pf "architecture structure of %s is\n" top;
  List.iter
    (fun (net, _, _) ->
      match Hashtbl.find_opt fmts net with
      | Some f -> pf "  signal n_%s : %s;\n" (sanitize net) (vhdl_type f)
      | None -> ())
    (Cycle_system.nets sys);
  pf "begin\n";
  (* Primary input wiring. *)
  List.iter
    (fun (name, _, _) ->
      match
        List.find_opt
          (fun (_, (dc, _), _) -> dc = name)
          (Cycle_system.nets sys)
      with
      | Some (net, _, _) -> pf "  n_%s <= i_%s;\n" (sanitize net) (sanitize name)
      | None -> ())
    (Cycle_system.primary_inputs sys);
  (* Component instances. *)
  List.iter
    (fun (cname, fsm) ->
      pf "\n  u_%s : entity work.%s\n    port map (\n      clk => clk,\n      rst => rst"
        (sanitize cname) (sanitize cname);
      let in_ports =
        List.concat_map
          (fun sfg -> List.map Signal.Input.name (Sfg.inputs sfg))
          (Fsm.all_sfgs fsm)
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun p ->
          match Hashtbl.find_opt sink_map (cname, p) with
          | Some net -> pf ",\n      p_%s => n_%s" (sanitize p) (sanitize net)
          | None -> ())
        in_ports;
      let out_ports =
        List.concat_map
          (fun sfg -> List.map fst (Sfg.outputs sfg))
          (Fsm.all_sfgs fsm)
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun p ->
          match
            List.find_opt
              (fun (_, (dc, dp), _) -> dc = cname && dp = p)
              (Cycle_system.nets sys)
          with
          | Some (net, _, _) ->
            pf ",\n      o_%s => n_%s" (sanitize p) (sanitize net)
          | None -> ())
        out_ports;
      pf "\n    );\n")
    (Cycle_system.timed_components sys);
  (* Probe wiring. *)
  List.iter
    (fun p ->
      match Hashtbl.find_opt sink_map (p, "in") with
      | Some net -> pf "  o_%s <= n_%s;\n" (sanitize p) (sanitize net)
      | None -> ())
    (Cycle_system.probes sys);
  pf "\nend architecture structure;\n";
  Buffer.contents buf

let of_system sys =
  let fmts = Cycle_system.net_formats sys in
  let driver_index = Hashtbl.create 16 in
  List.iter
    (fun (net, (dc, dp), _) -> Hashtbl.replace driver_index (dc, dp) net)
    (Cycle_system.nets sys);
  let comp_files =
    List.map
      (fun (cname, fsm) ->
        let out_fmts =
          List.concat_map
            (fun sfg -> List.map fst (Sfg.outputs sfg))
            (Fsm.all_sfgs fsm)
          |> List.sort_uniq String.compare
          |> List.filter_map (fun p ->
                 match Hashtbl.find_opt driver_index (cname, p) with
                 | Some net -> (
                   match Hashtbl.find_opt fmts net with
                   | Some f -> Some (p, f)
                   | None -> None)
                 | None -> None)
        in
        (sanitize cname ^ ".vhd", component_entity cname fsm ~out_fmts))
      (Cycle_system.timed_components sys)
  in
  let ram_files =
    if Cycle_system.untimed_components sys <> [] then
      [ ("ocapi_ram.vhd", ram_entity) ]
    else []
  in
  comp_files @ ram_files
  @ [ (sanitize (Cycle_system.name sys) ^ "_top.vhd", toplevel sys fmts) ]

let line_count files =
  List.fold_left
    (fun acc (_, contents) ->
      acc + List.length (String.split_on_char '\n' contents))
    0 files

let of_netlist nl =
  let buf = Buffer.create 65536 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let w n = Printf.sprintf "n%d" n in
  let ent = sanitize (Netlist.name nl) in
  let inputs = Netlist.inputs_list nl and outputs = Netlist.outputs_list nl in
  pf "-- Generated by ocapi-ml: structural netlist for %s\n" (Netlist.name nl);
  pf "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  pf "entity %s_netlist is\n  port (\n    clk : in std_logic" ent;
  List.iter
    (fun (name, bus) ->
      pf ";\n    %s : in std_logic_vector(%d downto 0)" (sanitize name)
        (Array.length bus - 1))
    inputs;
  List.iter
    (fun (name, bus) ->
      pf ";\n    %s : out std_logic_vector(%d downto 0)" (sanitize name)
        (Array.length bus - 1))
    outputs;
  pf "\n  );\nend entity %s_netlist;\n\n" ent;
  pf "architecture structural of %s_netlist is\n" ent;
  for n = 0 to Netlist.net_count nl - 1 do
    pf "  signal %s : std_logic;\n" (w n)
  done;
  pf "begin\n";
  List.iter
    (fun (name, bus) ->
      Array.iteri
        (fun i n -> pf "  %s <= %s(%d);\n" (w n) (sanitize name) i)
        bus)
    inputs;
  List.iter
    (fun (name, bus) ->
      Array.iteri
        (fun i n -> pf "  %s(%d) <= %s;\n" (sanitize name) i (w n))
        bus)
    outputs;
  Netlist.fold_gates nl ~init:() ~f:(fun () kind ins out ->
      match kind with
      | Netlist.Buf -> pf "  %s <= %s;\n" (w out) (w ins.(0))
      | Netlist.Not -> pf "  %s <= not %s;\n" (w out) (w ins.(0))
      | Netlist.And ->
        pf "  %s <= %s and %s;\n" (w out) (w ins.(0)) (w ins.(1))
      | Netlist.Or -> pf "  %s <= %s or %s;\n" (w out) (w ins.(0)) (w ins.(1))
      | Netlist.Xor ->
        pf "  %s <= %s xor %s;\n" (w out) (w ins.(0)) (w ins.(1))
      | Netlist.Nand ->
        pf "  %s <= %s nand %s;\n" (w out) (w ins.(0)) (w ins.(1))
      | Netlist.Nor ->
        pf "  %s <= %s nor %s;\n" (w out) (w ins.(0)) (w ins.(1))
      | Netlist.Mux2 ->
        pf "  %s <= %s when %s = '1' else %s;\n" (w out) (w ins.(1))
          (w ins.(0)) (w ins.(2))
      | Netlist.Const0 -> pf "  %s <= '0';\n" (w out)
      | Netlist.Const1 -> pf "  %s <= '1';\n" (w out));
  (* Flip-flops: one clocked process. *)
  let dffs =
    Netlist.fold_dffs nl ~init:[] ~f:(fun acc init ~d ~q -> (init, d, q) :: acc)
  in
  if dffs <> [] then begin
    pf "\n  registers : process (clk)\n  begin\n";
    pf "    if rising_edge(clk) then\n";
    List.iter (fun (_, d, q) -> pf "      %s <= %s;\n" (w q) (w d)) (List.rev dffs);
    pf "    end if;\n  end process registers;\n"
  end;
  (* ROM macros: selected concurrent assignments per word bit. *)
  List.iteri
    (fun i (name, width, contents, addr, out) ->
      pf "\n  -- ROM %s (%d x %d)\n" name (Array.length contents) width;
      pf "  rom%d : process (%s)\n" i
        (String.concat ", " (Array.to_list (Array.map w addr)));
      pf "    variable a : integer;\n  begin\n";
      pf "    a := 0;\n";
      Array.iteri
        (fun bi n -> pf "    if %s = '1' then a := a + %d; end if;\n" (w n) (1 lsl bi))
        addr;
      pf "    a := a mod %d;\n" (Array.length contents);
      pf "    case a is\n";
      Array.iteri
        (fun word v ->
          pf "      when %d =>\n" word;
          Array.iteri
            (fun bi n ->
              pf "        %s <= '%c';\n" (w n)
                (if Int64.logand (Int64.shift_right_logical v bi) 1L = 1L then
                   '1'
                 else '0'))
            out)
        contents;
      pf "      when others =>\n";
      Array.iter (fun n -> pf "        %s <= '0';\n" (w n)) out;
      pf "    end case;\n  end process rom%d;\n" i)
    (Netlist.roms_list nl);
  (* RAM macros. *)
  List.iteri
    (fun i (name, words, width, addr, wdata, we, out) ->
      pf "\n  -- RAM %s (%d x %d)\n" name words width;
      pf "  ram%d : block\n" i;
      pf "    type mem_t is array (0 to %d) of std_logic_vector(%d downto 0);\n"
        (words - 1) (width - 1);
      pf "    signal mem : mem_t := (others => (others => '0'));\n";
      pf "    signal a : integer := 0;\n  begin\n";
      pf "    a <= %s;\n"
        (String.concat " + "
           (Array.to_list
              (Array.mapi
                 (fun bi n ->
                   Printf.sprintf "(%d * to_integer(unsigned'(\"\" & %s)))"
                     (1 lsl bi) (w n))
                 addr)));
      Array.iteri
        (fun bi n -> pf "    %s <= mem(a mod %d)(%d);\n" (w n) words bi)
        out;
      pf "    write : process (clk)\n    begin\n";
      pf "      if rising_edge(clk) and %s = '1' then\n" (w we);
      pf "        mem(a mod %d) <= (%s);\n" words
        (String.concat ", "
           (List.rev
              (Array.to_list
                 (Array.mapi (fun bi n -> Printf.sprintf "%d => %s" bi (w n)) wdata))));
      pf "      end if;\n    end process write;\n";
      pf "  end block ram%d;\n" i)
    (Netlist.rams_list nl);
  pf "\nend architecture structural;\n";
  Buffer.contents buf
