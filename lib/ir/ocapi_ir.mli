(** The multi-level design IR and its lowering passes.

    The paper's environment spans three representation levels — the
    behavioral SFG/FSM system of sections 2–4, the clocked RTL
    processes of section 5, and the synthesized gate netlists of
    section 6.  Historically this repo bridged them with ad hoc calls
    ([Synthesize.synthesize], [Rtl.of_system], [Netopt.run]); in the
    spirit of LLHD's multi-level IR this module makes the levels
    explicit: one typed container ({!t}) holding a design at exactly
    one {!payload} level, lowered by named, composable {!pass}es, with
    each application recorded in a {e provenance chain} of
    (pass name, input digest, output digest) triples.

    Every level has a canonical structural digest
    ([Cycle_system.digest] / [Rtl.digest] / [Netlist.digest]), so a
    lowered design carries a verifiable derivation: replaying the
    chain's passes over the root digest must reproduce each link.

    The gate level also becomes a first-class cycle engine here:
    {!register_gate_engine} puts [Netlist.Sim] behind the uniform
    [Ocapi_engine] session surface as engine ["gate"] (alias
    ["netlist"]), so [Flow.simulate], fault campaigns, engine
    disagreement sweeps and batch manifests reach gate simulation with
    no special-casing. *)

(** A design at one explicit representation level.  The constructors
    wrap the existing representations unchanged — the IR is a
    container and pass discipline, not a fourth representation. *)
type payload =
  | Behavioral of Cycle_system.t  (** SFG/FSM system, cycle-scheduled *)
  | Rtl of Rtl.t  (** event-driven two-process RTL elaboration *)
  | Gate of Netlist.t  (** synthesized gate netlist *)

(** One provenance link: which pass ran, over what, producing what. *)
type pass_record = {
  pr_pass : string;
  pr_input_digest : string;
  pr_output_digest : string;
}

type t = {
  ir_design : payload;
  ir_source : Cycle_system.t;
      (** the behavioral root the design was lowered from; retained
          because the shared stimuli and probe declarations that drive
          cross-level equivalence checking live there *)
  ir_digest : string;  (** canonical digest of [ir_design] *)
  ir_provenance : pass_record list;  (** oldest first *)
}

(** A named lowering/optimization step: [pass_body] maps a design to
    the payload of the next level (or an optimized same-level one);
    {!apply} wraps it with digest bookkeeping.  A pass applied to a
    level it does not accept raises [Ocapi_error.Error] with code
    [Unsupported]. *)
type pass = { pass_name : string; pass_body : t -> payload }

(** {1 Constructing and inspecting} *)

(** Wrap a behavioral system as an IR design (empty provenance). *)
val behavioral : Cycle_system.t -> t

(** ["behavioral"], ["rtl"] or ["gate"]. *)
val level_name : t -> string

(** Canonical digest of a payload ([Cycle_system.digest] /
    [Rtl.digest] / [Netlist.digest]). *)
val digest_of : payload -> string

val to_system : t -> Cycle_system.t option
val to_rtl : t -> Rtl.t option
val to_netlist : t -> Netlist.t option

(** {1 The pass manager} *)

(** [apply pass design] runs one pass and appends its provenance
    record (pass name, input digest, output digest). *)
val apply : pass -> t -> t

(** [pipeline passes design] folds {!apply} left to right. *)
val pipeline : pass list -> t -> t

(** The built-in passes, by registry name:
    ["lower-to-rtl"], ["lower-to-gate"], ["optimize-gates"]. *)
val find_pass : string -> pass option

val pass_names : unit -> string list

(** {1 The built-in passes} *)

(** Behavioral -> Rtl ([Rtl.of_system]).  The elaboration shares the
    source system's register objects (the RTL engine's documented
    aliasing); the system is reset first. *)
val lower_to_rtl : pass

(** Behavioral or Rtl -> Gate ([Synthesize.synthesize] over the
    behavioral root — synthesis is deterministic, so lowering from an
    RTL-level design goes through the retained source).  Untimed
    kernels are mapped through {!macro_of_model}, i.e. their declared
    [Dataflow.Kernel.k_model]. *)
val lower_to_gate : pass

(** [lower_to_gate_with ?options ?macro_of_kernel ()] — the
    parameterized form (custom state encoding, extra macro mappings);
    {!lower_to_gate} is the default instance. *)
val lower_to_gate_with :
  ?options:Synthesize.options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  unit ->
  pass

(** Gate -> Gate ([Netopt.run]): constant propagation, structural
    hashing, dead-logic elimination to fixpoint. *)
val optimize_gates : pass

(** Map an untimed kernel to a synthesis macro through its declarative
    [k_model] — the registry-free counterpart of
    [Ram_cell.macro_of_kernel], usable for any kernel that declares a
    model. *)
val macro_of_model : Dataflow.Kernel.t -> Synthesize.macro_spec option

(** {1 Cross-level equivalence}

    [check_equivalence ?cycles a b] drives both designs with the
    shared stimuli of their behavioral roots for [cycles] clock cycles
    (default 200) and compares probe token histories.  Gate-level
    histories are sampled at the behavioral token cycles (the
    generated-test-bench discipline of section 6).  On the first
    disagreement the result is an [Ocapi_error.t] with code
    [Mismatch] naming the probe, cycle and both levels — a structured
    diagnostic instead of a probe-history diff. *)
val check_equivalence :
  ?cycles:int -> t -> t -> (unit, Ocapi_error.t) result

(** {1 The gate cycle engine}

    Engine ["gate"] (alias ["netlist"]): synthesizes the system on
    session elaboration — with probe-valid wires, so sparse probe
    histories are reconstructed exactly — and steps [Netlist.Sim]
    under the uniform session surface.  Register pokes flip flip-flop
    q-nets through the synthesis {!Synthesize.state_map}; FSM state
    pokes re-encode the controller's state register (an unencoded
    index raises [Invalid_state], the detected-outcome path of SEU
    campaigns).  Registered by the flow layer's linkage; idempotent. *)
val register_gate_engine : unit -> unit
