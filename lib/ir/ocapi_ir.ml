type payload =
  | Behavioral of Cycle_system.t
  | Rtl of Rtl.t
  | Gate of Netlist.t

type pass_record = {
  pr_pass : string;
  pr_input_digest : string;
  pr_output_digest : string;
}

type t = {
  ir_design : payload;
  ir_source : Cycle_system.t;
  ir_digest : string;
  ir_provenance : pass_record list;
}

type pass = { pass_name : string; pass_body : t -> payload }

let digest_of = function
  | Behavioral sys -> Cycle_system.digest sys
  | Rtl r -> Rtl.digest r
  | Gate nl -> Netlist.digest nl

let level_name d =
  match d.ir_design with
  | Behavioral _ -> "behavioral"
  | Rtl _ -> "rtl"
  | Gate _ -> "gate"

let behavioral sys =
  {
    ir_design = Behavioral sys;
    ir_source = sys;
    ir_digest = Cycle_system.digest sys;
    ir_provenance = [];
  }

let to_system d =
  match d.ir_design with Behavioral s -> Some s | Rtl _ | Gate _ -> None

let to_rtl d =
  match d.ir_design with Rtl r -> Some r | Behavioral _ | Gate _ -> None

let to_netlist d =
  match d.ir_design with Gate nl -> Some nl | Behavioral _ | Rtl _ -> None

let wrong_level pass d ~expected =
  raise
    (Ocapi_error.Error
       (Ocapi_error.make Ocapi_error.Unsupported ~engine:"ir"
          ~construct:(Cycle_system.name d.ir_source)
          (Printf.sprintf "pass %s expects a %s design, got %s" pass expected
             (level_name d))))

(* --- the pass manager ----------------------------------------------------- *)

let apply pass d =
  let input_digest = d.ir_digest in
  let out = pass.pass_body d in
  let out_digest = digest_of out in
  {
    ir_design = out;
    ir_source = d.ir_source;
    ir_digest = out_digest;
    ir_provenance =
      d.ir_provenance
      @ [
          {
            pr_pass = pass.pass_name;
            pr_input_digest = input_digest;
            pr_output_digest = out_digest;
          };
        ];
  }

let pipeline passes d = List.fold_left (fun d p -> apply p d) d passes

(* --- kernel macro mapping -------------------------------------------------- *)

let macro_of_model (k : Dataflow.Kernel.t) =
  match k.Dataflow.Kernel.k_model with
  | Some (Dataflow.Kernel.Ram_model m) ->
    Some
      (Synthesize.Ram_macro
         {
           words = m.words;
           width = m.data_fmt.Fixed.width;
           addr_port = m.addr_port;
           wdata_port = m.wdata_port;
           we_port = m.we_port;
           rdata_port = m.rdata_port;
         })
  | None -> None

(* --- built-in passes ------------------------------------------------------- *)

let lower_to_rtl =
  {
    pass_name = "lower-to-rtl";
    pass_body =
      (fun d ->
        match d.ir_design with
        | Behavioral sys ->
          Cycle_system.reset sys;
          Rtl (Rtl.of_system sys)
        | Rtl _ | Gate _ -> wrong_level "lower-to-rtl" d ~expected:"behavioral");
  }

let lower_to_gate_with ?options ?(macro_of_kernel = macro_of_model) () =
  {
    pass_name = "lower-to-gate";
    pass_body =
      (fun d ->
        match d.ir_design with
        | Behavioral _ | Rtl _ ->
          (* Synthesis reads captured structure only, so lowering an
             RTL-level design goes through the retained behavioral
             root — deterministic, hence digest-stable. *)
          let sys = d.ir_source in
          Cycle_system.reset sys;
          let nl, _report = Synthesize.synthesize ?options ~macro_of_kernel sys in
          Gate nl
        | Gate _ -> wrong_level "lower-to-gate" d ~expected:"behavioral or rtl");
  }

let lower_to_gate = lower_to_gate_with ()

let optimize_gates =
  {
    pass_name = "optimize-gates";
    pass_body =
      (fun d ->
        match d.ir_design with
        | Gate nl -> Gate (fst (Netopt.run nl))
        | Behavioral _ | Rtl _ -> wrong_level "optimize-gates" d ~expected:"gate");
  }

let builtin_passes = [ lower_to_rtl; lower_to_gate; optimize_gates ]

let find_pass name =
  List.find_opt (fun p -> p.pass_name = name) builtin_passes

let pass_names () = List.map (fun p -> p.pass_name) builtin_passes

(* --- shared probe plumbing ------------------------------------------------- *)

let probe_histories sys =
  List.filter_map
    (fun p ->
      match Cycle_system.find_component sys p with
      | Some c -> Some (p, Cycle_system.output_history sys c)
      | None -> None)
    (Cycle_system.probes sys)

(* Probe formats: the sink net's format at (probe, "in"), which fixes
   signedness for two's-complement readback from the netlist. *)
let probe_formats sys =
  let fmts = Cycle_system.net_formats sys in
  let sink_map = Hashtbl.create 32 in
  List.iter
    (fun (net, _, sinks) ->
      List.iter (fun (sc, sp) -> Hashtbl.replace sink_map (sc, sp) net) sinks)
    (Cycle_system.nets sys);
  fun p ->
    match Hashtbl.find_opt sink_map (p, "in") with
    | Some net -> (
      match Hashtbl.find_opt fmts net with
      | Some f -> f
      | None -> Fixed.bit_format)
    | None -> Fixed.bit_format

(* --- cross-level equivalence ----------------------------------------------- *)

(* Replay the behavioral root's recorded stimuli on a netlist and
   sample the probes at the behavioral token cycles — the
   generated-test-bench discipline of Synthesize.verify, producing
   histories shaped exactly like the behavioral ones. *)
let gate_histories sys nl ~cycles =
  Cycle_system.reset sys;
  Cycle_system.run sys cycles;
  let expected = probe_histories sys in
  let input_hist = Cycle_system.input_history sys in
  Cycle_system.reset sys;
  let fmt_of = probe_formats sys in
  let out_names = List.map fst (Netlist.outputs_list nl) in
  let sim = Netlist.Sim.create nl in
  let per_cycle = Array.make (max 1 cycles) [] in
  List.iter
    (fun (c, name, v) ->
      if c < cycles then per_cycle.(c) <- (name, v) :: per_cycle.(c))
    input_hist;
  let acc = List.map (fun (p, _) -> (p, ref [])) expected in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, v) -> Netlist.Sim.set_input sim name (Fixed.mantissa v))
      per_cycle.(c);
    Netlist.Sim.settle sim;
    List.iter
      (fun (p, hist) ->
        match List.assoc_opt c hist with
        | None -> ()
        | Some _ when not (List.mem p out_names) -> ()
        | Some _ ->
          let fmt = fmt_of p in
          let signed = fmt.Fixed.signedness = Fixed.Signed in
          let m = Netlist.Sim.get_output sim ~signed p in
          let r = List.assoc p acc in
          r := (c, Fixed.create fmt m) :: !r)
      expected;
    Netlist.Sim.clock sim
  done;
  List.map (fun (p, r) -> (p, List.rev !r)) acc

let histories_of ~cycles d =
  match d.ir_design with
  | Behavioral sys ->
    Cycle_system.reset sys;
    Cycle_system.run sys cycles;
    let h = probe_histories sys in
    Cycle_system.reset sys;
    h
  | Rtl r ->
    let sys = d.ir_source in
    Rtl.reset r;
    Rtl.run r cycles;
    let h =
      List.map (fun p -> (p, Rtl.output_history r p)) (Cycle_system.probes sys)
    in
    Rtl.reset r;
    (* The RTL elaboration aliases the system's registers. *)
    Cycle_system.reset sys;
    h
  | Gate nl -> gate_histories d.ir_source nl ~cycles

let check_equivalence ?(cycles = 200) a b =
  let la = level_name a and lb = level_name b in
  let ha = histories_of ~cycles a and hb = histories_of ~cycles b in
  let mismatch ?cycle ~construct fmt =
    Format.kasprintf
      (fun msg ->
        Error
          (Ocapi_error.make Ocapi_error.Mismatch ~engine:"ir" ~construct
             ?cycle
             ~nets:[ construct ]
             msg))
      fmt
  in
  let rec compare_tokens p ta tb =
    match (ta, tb) with
    | [], [] -> Ok ()
    | (c, va) :: ra, (c', vb) :: rb when c = c' ->
      if Fixed.mantissa va = Fixed.mantissa vb then compare_tokens p ra rb
      else
        mismatch ~cycle:c ~construct:p
          "%s and %s disagree on probe %s: %s vs %s" la lb p
          (Fixed.to_string va) (Fixed.to_string vb)
    | (c, _) :: _, (c', _) :: _ ->
      mismatch ~cycle:(min c c') ~construct:p
        "%s and %s record probe %s tokens at different cycles (%d vs %d)" la
        lb p c c'
    | ts, [] | [], ts ->
      let c = match ts with (c, _) :: _ -> c | [] -> 0 in
      mismatch ~cycle:c ~construct:p
        "%s and %s record different token counts on probe %s (%d vs %d)" la
        lb p (List.length ta) (List.length tb)
  in
  let rec scan = function
    | [] -> Ok ()
    | (p, ta) :: rest -> (
      let tb = match List.assoc_opt p hb with Some l -> l | None -> [] in
      match compare_tokens p ta tb with Ok () -> scan rest | Error e -> Error e)
  in
  scan ha

(* --- the gate cycle engine -------------------------------------------------- *)

module Gate_engine = struct
  let name = "gate"
  let display = "gate"
  let aliases = [ "netlist" ]

  let capabilities =
    {
      Ocapi_engine.cap_two_phase = false;
      cap_max_deltas = false;
      cap_shares_registers = false;
      cap_static_size = true;
      cap_register_pokes = true;
      cap_state_pokes = true;
    }

  let make ?options:_ sys =
    Cycle_system.reset sys;
    let synth_options =
      { Synthesize.default_options with Synthesize.emit_probe_valids = true }
    in
    let nl, _report, smap =
      Synthesize.synthesize_mapped ~options:synth_options
        ~macro_of_kernel:macro_of_model sys
    in
    let sim = Netlist.Sim.create nl in
    let fmt_of = probe_formats sys in
    let out_names = List.map fst (Netlist.outputs_list nl) in
    let in_names = List.map fst (Netlist.inputs_list nl) in
    (* Probes present in the netlist, with format and valid wire. *)
    let probe_rows =
      List.map
        (fun p ->
          let present = List.mem p out_names in
          let valid =
            if List.mem ("__valid__" ^ p) out_names then
              Some ("__valid__" ^ p)
            else None
          in
          (p, fmt_of p, present, valid))
        (Cycle_system.probes sys)
    in
    let input_rows =
      List.filter_map
        (fun (iname, _fmt, stim) ->
          if List.mem iname in_names then
            Some (iname, stim, List.mem ("__stimvalid__" ^ iname) in_names)
          else None)
        (Cycle_system.primary_inputs sys)
    in
    let cycle = ref 0 in
    let hist = Hashtbl.create 8 in
    List.iter (fun (p, _, _, _) -> Hashtbl.replace hist p (ref [])) probe_rows;
    let push p tok =
      let r = Hashtbl.find hist p in
      r := tok :: !r
    in
    let step () =
      List.iter
        (fun (iname, stim, has_valid) ->
          match stim !cycle with
          | Some v ->
            Netlist.Sim.set_input sim iname (Fixed.mantissa v);
            if has_valid then
              Netlist.Sim.set_input sim ("__stimvalid__" ^ iname) 1L
          | None ->
            if has_valid then
              Netlist.Sim.set_input sim ("__stimvalid__" ^ iname) 0L)
        input_rows;
      Netlist.Sim.settle sim;
      List.iter
        (fun (p, fmt, present, valid) ->
          if present then begin
            let live =
              match valid with
              | Some vname ->
                Netlist.Sim.get_output sim ~signed:false vname = 1L
              | None -> true
            in
            if live then begin
              let signed = fmt.Fixed.signedness = Fixed.Signed in
              let m = Netlist.Sim.get_output sim ~signed p in
              push p (!cycle, Fixed.create fmt m)
            end
          end)
        probe_rows;
      Netlist.Sim.clock sim;
      incr cycle
    in
    let reset () =
      Netlist.Sim.reset sim;
      Netlist.Sim.clear_fault sim;
      cycle := 0;
      Hashtbl.iter (fun _ r -> r := []) hist
    in
    let bit_of encoding s b =
      match encoding with
      | Synthesize.Binary -> s land (1 lsl b) <> 0
      | Synthesize.One_hot -> s = b
    in
    let invalid_state ~construct s n =
      raise
        (Ocapi_error.Error
           (Ocapi_error.make Ocapi_error.Invalid_state ~engine:name ~construct
              ~cycle:!cycle
              (Printf.sprintf "state index %d outside the %d encoded states" s
                 n)))
    in
    Cycle_system.attach_engine sys name;
    let closed = ref false in
    {
      Ocapi_engine.ses_engine = name;
      ses_step = step;
      ses_cycle = (fun () -> !cycle);
      ses_reset = reset;
      ses_histories =
        (fun () ->
          List.map
            (fun (p, _, _, _) -> (p, List.rev !(Hashtbl.find hist p)))
            probe_rows);
      ses_register_count = Array.length smap.Synthesize.sm_regs;
      ses_register_info =
        (fun i ->
          let r = smap.Synthesize.sm_regs.(i) in
          (r.Synthesize.rm_name, r.Synthesize.rm_fmt));
      ses_poke_register_bit =
        (fun i ~bit ->
          let r = smap.Synthesize.sm_regs.(i) in
          let nets = r.Synthesize.rm_nets in
          let b = min bit (Array.length nets - 1) in
          Netlist.Sim.poke_net sim nets.(b)
            (not (Netlist.Sim.net_value sim nets.(b))));
      ses_component_count = Array.length smap.Synthesize.sm_fsms;
      ses_component_info =
        (fun i ->
          let f = smap.Synthesize.sm_fsms.(i) in
          (f.Synthesize.fm_name, f.Synthesize.fm_states));
      ses_component_state =
        (fun i ->
          let f = smap.Synthesize.sm_fsms.(i) in
          let bits =
            Array.map (Netlist.Sim.net_value sim) f.Synthesize.fm_state_nets
          in
          match f.Synthesize.fm_encoding with
          | Synthesize.Binary ->
            let v = ref 0 in
            Array.iteri (fun b on -> if on then v := !v lor (1 lsl b)) bits;
            !v
          | Synthesize.One_hot -> (
            let set = ref [] in
            Array.iteri (fun b on -> if on then set := b :: !set) bits;
            match !set with
            | [ b ] -> b
            | _ ->
              invalid_state ~construct:f.Synthesize.fm_name (-1)
                f.Synthesize.fm_states));
      ses_force_component_state =
        (fun i s ->
          let f = smap.Synthesize.sm_fsms.(i) in
          if s < 0 || s >= f.Synthesize.fm_states then
            invalid_state ~construct:f.Synthesize.fm_name s
              f.Synthesize.fm_states
          else
            Array.iteri
              (fun b net ->
                Netlist.Sim.poke_net sim net
                  (bit_of f.Synthesize.fm_encoding s b))
              f.Synthesize.fm_state_nets);
      ses_resident_words = (fun () -> Obj.reachable_words (Obj.repr sim));
      ses_static_size = Some (Netlist.counts nl).Netlist.gate_equivalents;
      ses_close =
        (fun () ->
          if not !closed then begin
            closed := true;
            Cycle_system.detach_engine sys name
          end);
    }
end

let registered = ref false

let register_gate_engine () =
  if not !registered then begin
    registered := true;
    Ocapi_engine.register (module Gate_engine)
  end
