(** Plugin ABI between the host and a dynlinked generated simulator.

    The native engine compiles the source produced by [Emit.emit_plugin]
    with [ocamlfind ocamlopt -shared] and loads the resulting [.cmxs]
    with [Dynlink.loadfile_private].  A privately loaded module cannot
    export values through the normal module system, so the handoff runs
    through this tiny, dependency-free library, linked into the host and
    visible (via its [.cmi]) to the out-of-process compile: the plugin's
    toplevel builds a {!plugin} record and calls {!register}; the host
    {!clear}s the slot, loads the [.cmxs], and {!take}s the record.

    The record exposes the plugin's raw state — value/stamp arrays, the
    cycle counter, FSM state words and kernel hook slots — under a fixed
    slot-layout contract (nets first in [Cycle_system.nets] order, then
    current/next word pairs per register in [all_regs] order).  That
    contract is versioned by [Emit.emitter_version], which is folded
    into the [.cmxs] cache key, so a stale plugin can never be paired
    with a newer host.

    Loads happen under a single global mutex in [Ocapi_native] (engine
    sweeps create sessions from several domains at once), so the single
    shared {!slot} cell needs no locking of its own. *)

(** The plugin's value store.  [Words] is the bit-packed fast path:
    every net and register mantissa proven (by the emitter's width-bound
    analysis) to fit an unboxed 63-bit OCaml [int].  [Boxed] is the
    fallback emission mode using [int64] cells, semantically identical
    to the interpreted compiled engine on any width. *)
type values = Words of int array | Boxed of int64 array

(** Everything the host needs to drive one loaded simulator instance.
    Arrays are the plugin's own working state, mutated in place by
    [p_step] — the host writes stimuli into [p_values]/[p_stamps]
    before each step and reads probes after it. *)
type plugin = {
  p_values : values;  (** one cell per net slot and register word *)
  p_stamps : int array;  (** last cycle each net was driven, [-1] never *)
  p_cycle : int ref;  (** current cycle, incremented by [p_step] *)
  p_states : int array;  (** FSM state per timed component, in order *)
  p_kernels : (unit -> unit) array;
      (** untimed-kernel fire hooks, one per kernel in
          [untimed_components] order; installed by the host after load
          and called by generated code at its topological position *)
  p_kernel_commits : (unit -> unit) array;
      (** untimed-kernel commit hooks, called after every fire hook *)
  p_step : unit -> unit;  (** run one clock cycle *)
  p_reset : unit -> unit;
      (** reset registers/states/stamps/cycle to power-on *)
}

(** Raised by generated code on a fixed-point overflow check (the
    analogue of the interpreted engine's structured [Overflow]
    diagnostic); the host converts it back to [Ocapi_error.Error]. *)
exception Native_overflow of string

(** Called by the plugin's toplevel to publish its {!plugin} record. *)
val register : plugin -> unit

(** Empty the handoff slot before a load, so a plugin that fails to
    register is detected as corrupt rather than yielding a stale
    record. *)
val clear : unit -> unit

(** Claim the record published by the most recent load, emptying the
    slot; [None] if the loaded module never called {!register}. *)
val take : unit -> plugin option
