type values = Words of int array | Boxed of int64 array

type plugin = {
  p_values : values;
  p_stamps : int array;
  p_cycle : int ref;
  p_states : int array;
  p_kernels : (unit -> unit) array;
  p_kernel_commits : (unit -> unit) array;
  p_step : unit -> unit;
  p_reset : unit -> unit;
}

exception Native_overflow of string

let slot : plugin option ref = ref None
let register p = slot := Some p
let clear () = slot := None

let take () =
  let p = !slot in
  slot := None;
  p
