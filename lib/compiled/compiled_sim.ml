exception Unsupported = Compiled_types.Unsupported

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* --- mantissa-level operator builders, specialized at compile time ----- *)

let shl x k = if k = 0 then x else Int64.shift_left x k

let wrap_fn (f : Fixed.format) =
  let w = f.Fixed.width in
  let mask = Int64.sub (Int64.shift_left 1L w) 1L in
  match f.Fixed.signedness with
  | Fixed.Unsigned -> fun m -> Int64.logand m mask
  | Fixed.Signed ->
    let sign_bit = Int64.shift_left 1L (w - 1) in
    let modulus = Int64.shift_left 1L w in
    fun m ->
      let low = Int64.logand m mask in
      if Int64.logand low sign_bit <> 0L then Int64.sub low modulus else low

let sat_fn (f : Fixed.format) =
  let lo = Fixed.min_mantissa f and hi = Fixed.max_mantissa f in
  fun m -> if m < lo then lo else if m > hi then hi else m

let round_fn (mode : Fixed.rounding) k =
  if k = 0 then fun m -> m
  else if k > 62 then fun m -> if m >= 0L then 0L else -1L
  else
    match mode with
    | Fixed.Truncate -> fun m -> Int64.shift_right m k
    | Fixed.Round_nearest ->
      let half = Int64.shift_left 1L (k - 1) in
      fun m -> Int64.shift_right (Int64.add m half) k
    | Fixed.Round_even ->
      let half = Int64.shift_left 1L (k - 1) in
      fun m ->
        let floor = Int64.shift_right m k in
        let rem = Int64.sub m (Int64.shift_left floor k) in
        if rem > half then Int64.add floor 1L
        else if rem < half then floor
        else if Int64.logand floor 1L = 1L then Int64.add floor 1L
        else floor

(* [on_overflow] builds the exception for the pathological huge-shift
   path, letting callers attach component/cycle context; the default
   matches the interpreted engine's [Fixed.resize]. *)
let resize_fn ?on_overflow ~round ~overflow (src : Fixed.format)
    (dst : Fixed.format) =
  let k = src.Fixed.frac - dst.Fixed.frac in
  let ovf =
    match overflow with
    | Fixed.Wrap -> wrap_fn dst
    | Fixed.Saturate -> sat_fn dst
  in
  if k > 0 then
    let rnd = round_fn round k in
    fun m -> ovf (rnd m)
  else if -k > 62 then
    let exn =
      match on_overflow with
      | Some f -> f
      | None ->
        fun () -> Fixed.Overflow "compiled resize: shift too large"
    in
    fun m -> if m = 0L then 0L else raise (exn ())
  else fun m -> ovf (shl m (-k))

(* Alignment shifts for a binary operation whose common fraction is the
   max of the operand fractions. *)
let align_shifts (fa : Fixed.format) (fb : Fixed.format) =
  let frac = max fa.Fixed.frac fb.Fixed.frac in
  (frac - fa.Fixed.frac, frac - fb.Fixed.frac)

(* --- slot allocation ---------------------------------------------------- *)

type alloc = {
  mutable next_slot : int;
  net_slot : (string, int) Hashtbl.t;  (* net name -> slot *)
  net_fmt : (string, Fixed.format) Hashtbl.t;
  net_stamp : (string, int) Hashtbl.t;  (* net name -> stamp index *)
  reg_cur : (int, int) Hashtbl.t;  (* Signal.Reg.id -> slot *)
  reg_next : (int, int) Hashtbl.t;
  reg_init : (int, int64 * int) Hashtbl.t;  (* Reg.id -> (init, cur slot) *)
  node_slot : (int, int) Hashtbl.t;  (* Signal node id -> slot *)
  sink_net : (string * string, string) Hashtbl.t;  (* (comp, in port) -> net *)
  driver_net : (string * string, string) Hashtbl.t;  (* (comp, out port) *)
}

let fresh a =
  let s = a.next_slot in
  a.next_slot <- s + 1;
  s

let slot_of_node a n =
  match Hashtbl.find_opt a.node_slot (Signal.id n) with
  | Some s -> s
  | None ->
    let s = fresh a in
    Hashtbl.replace a.node_slot (Signal.id n) s;
    s

(* Net formats: primary inputs and untimed ports declare theirs; timed
   outputs take the format of the producing expression, which must agree
   across all SFGs that produce the port. *)
let compute_net_formats a sys =
  let set net fmt =
    match Hashtbl.find_opt a.net_fmt net with
    | None -> Hashtbl.replace a.net_fmt net fmt
    | Some f ->
      if not (Fixed.equal_format f fmt) then
        unsupported "net %s is driven with inconsistent formats %s and %s" net
          (Fixed.format_to_string f) (Fixed.format_to_string fmt)
  in
  List.iter
    (fun (name, fmt, _) ->
      match Hashtbl.find_opt a.driver_net (name, "out") with
      | Some net -> set net fmt
      | None -> ())
    (Cycle_system.primary_inputs sys);
  List.iter
    (fun (name, k) ->
      List.iter
        (fun (port, _) ->
          match Hashtbl.find_opt a.driver_net (name, port) with
          | Some net -> set net (Dataflow.Kernel.port_format k port)
          | None -> ())
        k.Dataflow.Kernel.k_outputs)
    (Cycle_system.untimed_components sys);
  List.iter
    (fun (cname, fsm) ->
      List.iter
        (fun sfg ->
          List.iter
            (fun (port, e) ->
              match Hashtbl.find_opt a.driver_net (cname, port) with
              | Some net -> set net (Signal.fmt e)
              | None -> ())
            (Sfg.outputs sfg))
        (Fsm.all_sfgs fsm))
    (Cycle_system.timed_components sys)

(* --- node classification: does a node's cone read an SFG input? -------- *)

(* NOTE: every child must be visited even when the answer is already
   known — short-circuiting would leave siblings unclassified, and an
   unclassified input-dependent node would default to block A and read
   stale values.  Hence the let-bound disjunctions. *)
let classify_nodes roots =
  let cls : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let rec go n =
    match Hashtbl.find_opt cls (Signal.id n) with
    | Some b -> b
    | None ->
      let b =
        match Signal.op n with
        | Signal.Input_read _ -> true
        | Signal.Const _ | Signal.Reg_read _ -> false
        | Signal.Neg x | Signal.Abs x | Signal.Not x
        | Signal.Resize (_, _, x)
        | Signal.Rom_read (_, x)
        | Signal.Shift_left (x, _)
        | Signal.Shift_right (x, _) -> go x
        | Signal.Add (x, y) | Signal.Sub (x, y) | Signal.Mul (x, y)
        | Signal.And (x, y) | Signal.Or (x, y) | Signal.Xor (x, y)
        | Signal.Eq (x, y) | Signal.Lt (x, y) | Signal.Le (x, y) ->
          let bx = go x in
          let by = go y in
          bx || by
        | Signal.Mux (s, x, y) ->
          let bs = go s in
          let bx = go x in
          let by = go y in
          bs || bx || by
      in
      Hashtbl.replace cls (Signal.id n) b;
      b
  in
  List.iter (fun r -> ignore (go r)) roots;
  fun n ->
    match Hashtbl.find_opt cls (Signal.id n) with
    | Some b -> b
    | None -> false

(* --- statement compilation ---------------------------------------------- *)

(* Compile the statement computing node [n] into [values].(slot n).
   [cycle_ref] is read lazily so overflow diagnostics carry the cycle of
   the failing step, not of compilation. *)
let node_statement a (values : int64 array) (cycle_ref : int ref) comp_name n =
  let dst = slot_of_node a n in
  let s x = slot_of_node a x in
  let nf = Signal.fmt n in
  let overflow_diag dst_fmt () =
    Ocapi_error.Error
      (Ocapi_error.make Ocapi_error.Overflow ~engine:"compiled"
         ~construct:comp_name ~cycle:!cycle_ref
         (Printf.sprintf "resize to %s: shift too large for nonzero value"
            (Fixed.format_to_string dst_fmt)))
  in
  match Signal.op n with
  | Signal.Const v ->
    let m = Fixed.mantissa v in
    fun () -> values.(dst) <- m
  | Signal.Input_read i -> begin
    match Hashtbl.find_opt a.sink_net (comp_name, Signal.Input.name i) with
    | Some net ->
      let src = Hashtbl.find a.net_slot net in
      fun () -> values.(dst) <- values.(src)
    | None ->
      unsupported "compiled: input %s.%s is not connected to any net"
        comp_name (Signal.Input.name i)
  end
  | Signal.Reg_read r ->
    let src = Hashtbl.find a.reg_cur (Signal.Reg.id r) in
    fun () -> values.(dst) <- values.(src)
  | Signal.Add (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let sx = s x and sy = s y in
    fun () -> values.(dst) <- Int64.add (shl values.(sx) ka) (shl values.(sy) kb)
  | Signal.Sub (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let sx = s x and sy = s y in
    fun () -> values.(dst) <- Int64.sub (shl values.(sx) ka) (shl values.(sy) kb)
  | Signal.Mul (x, y) ->
    let sx = s x and sy = s y in
    fun () -> values.(dst) <- Int64.mul values.(sx) values.(sy)
  | Signal.Neg x ->
    let sx = s x in
    fun () -> values.(dst) <- Int64.neg values.(sx)
  | Signal.Abs x ->
    let sx = s x in
    fun () -> values.(dst) <- Int64.abs values.(sx)
  | Signal.And (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let wrap = wrap_fn nf in
    let sx = s x and sy = s y in
    fun () ->
      values.(dst) <- wrap (Int64.logand (shl values.(sx) ka) (shl values.(sy) kb))
  | Signal.Or (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let wrap = wrap_fn nf in
    let sx = s x and sy = s y in
    fun () ->
      values.(dst) <- wrap (Int64.logor (shl values.(sx) ka) (shl values.(sy) kb))
  | Signal.Xor (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let wrap = wrap_fn nf in
    let sx = s x and sy = s y in
    fun () ->
      values.(dst) <- wrap (Int64.logxor (shl values.(sx) ka) (shl values.(sy) kb))
  | Signal.Not x ->
    let wrap = wrap_fn nf in
    let sx = s x in
    fun () -> values.(dst) <- wrap (Int64.lognot values.(sx))
  | Signal.Eq (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let sx = s x and sy = s y in
    fun () ->
      values.(dst) <-
        (if Int64.equal (shl values.(sx) ka) (shl values.(sy) kb) then 1L else 0L)
  | Signal.Lt (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let sx = s x and sy = s y in
    fun () ->
      values.(dst) <- (if shl values.(sx) ka < shl values.(sy) kb then 1L else 0L)
  | Signal.Le (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let sx = s x and sy = s y in
    fun () ->
      values.(dst) <- (if shl values.(sx) ka <= shl values.(sy) kb then 1L else 0L)
  | Signal.Mux (sel, x, y) ->
    let on_overflow = overflow_diag nf in
    let rx =
      resize_fn ~on_overflow ~round:Fixed.Truncate ~overflow:Fixed.Wrap
        (Signal.fmt x) nf
    in
    let ry =
      resize_fn ~on_overflow ~round:Fixed.Truncate ~overflow:Fixed.Wrap
        (Signal.fmt y) nf
    in
    let ss = s sel and sx = s x and sy = s y in
    fun () ->
      values.(dst) <- (if values.(ss) <> 0L then rx values.(sx) else ry values.(sy))
  | Signal.Resize (round, overflow, x) ->
    let rz = resize_fn ~on_overflow:(overflow_diag nf) ~round ~overflow
        (Signal.fmt x) nf
    in
    let sx = s x in
    fun () -> values.(dst) <- rz values.(sx)
  | Signal.Rom_read (r, idx) ->
    let len = Signal.Rom.size r in
    let contents = Array.init len (fun i -> Fixed.mantissa (Signal.Rom.get r i)) in
    let frac = (Signal.fmt idx).Fixed.frac in
    let si = s idx in
    if frac <= 0 then
      fun () ->
        let i = Int64.to_int (shl values.(si) (-frac)) in
        values.(dst) <- contents.(i mod len)
    else
      let div = Int64.shift_left 1L (min frac 62) in
      fun () ->
        let i = Int64.to_int (Int64.div values.(si) div) in
        values.(dst) <- contents.(i mod len)
  | Signal.Shift_left (x, _) | Signal.Shift_right (x, _) ->
    let sx = s x in
    fun () -> values.(dst) <- values.(sx)

(* Compile a pure (register/constant-only) expression to a value closure;
   used for FSM guards, which may not read SFG inputs. *)
let rec compile_pure a (values : int64 array) e : unit -> int64 =
  let nf = Signal.fmt e in
  match Signal.op e with
  | Signal.Const v ->
    let m = Fixed.mantissa v in
    fun () -> m
  | Signal.Input_read i -> unsupported "guard reads input %s" (Signal.Input.name i)
  | Signal.Reg_read r ->
    let src = Hashtbl.find a.reg_cur (Signal.Reg.id r) in
    fun () -> values.(src)
  | Signal.Add (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> Int64.add (shl (fx ()) ka) (shl (fy ()) kb)
  | Signal.Sub (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> Int64.sub (shl (fx ()) ka) (shl (fy ()) kb)
  | Signal.Mul (x, y) ->
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> Int64.mul (fx ()) (fy ())
  | Signal.Neg x ->
    let fx = compile_pure a values x in
    fun () -> Int64.neg (fx ())
  | Signal.Abs x ->
    let fx = compile_pure a values x in
    fun () -> Int64.abs (fx ())
  | Signal.And (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let wrap = wrap_fn nf in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> wrap (Int64.logand (shl (fx ()) ka) (shl (fy ()) kb))
  | Signal.Or (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let wrap = wrap_fn nf in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> wrap (Int64.logor (shl (fx ()) ka) (shl (fy ()) kb))
  | Signal.Xor (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let wrap = wrap_fn nf in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> wrap (Int64.logxor (shl (fx ()) ka) (shl (fy ()) kb))
  | Signal.Not x ->
    let wrap = wrap_fn nf in
    let fx = compile_pure a values x in
    fun () -> wrap (Int64.lognot (fx ()))
  | Signal.Eq (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> if Int64.equal (shl (fx ()) ka) (shl (fy ()) kb) then 1L else 0L
  | Signal.Lt (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> if shl (fx ()) ka < shl (fy ()) kb then 1L else 0L
  | Signal.Le (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> if shl (fx ()) ka <= shl (fy ()) kb then 1L else 0L
  | Signal.Mux (sel, x, y) ->
    let fs = compile_pure a values sel in
    let rx = resize_fn ~round:Fixed.Truncate ~overflow:Fixed.Wrap (Signal.fmt x) nf in
    let ry = resize_fn ~round:Fixed.Truncate ~overflow:Fixed.Wrap (Signal.fmt y) nf in
    let fx = compile_pure a values x and fy = compile_pure a values y in
    fun () -> if fs () <> 0L then rx (fx ()) else ry (fy ())
  | Signal.Resize (round, overflow, x) ->
    let rz = resize_fn ~round ~overflow (Signal.fmt x) nf in
    let fx = compile_pure a values x in
    fun () -> rz (fx ())
  | Signal.Rom_read (r, idx) ->
    let len = Signal.Rom.size r in
    let contents = Array.init len (fun i -> Fixed.mantissa (Signal.Rom.get r i)) in
    let frac = (Signal.fmt idx).Fixed.frac in
    let fi = compile_pure a values idx in
    if frac <= 0 then fun () -> contents.(Int64.to_int (shl (fi ()) (-frac)) mod len)
    else
      let div = Int64.shift_left 1L (min frac 62) in
      fun () -> contents.(Int64.to_int (Int64.div (fi ()) div) mod len)
  | Signal.Shift_left (x, _) | Signal.Shift_right (x, _) -> compile_pure a values x

(* --- compiled program structures ---------------------------------------- *)

type transition_code = {
  tc_block_a : (unit -> unit) array;
  tc_block_b : (unit -> unit) array;
  tc_commit : (unit -> unit) array;
  tc_goto : int;
}

type comp_code = {
  cc_name : string;
  cc_initial : int;
  mutable cc_state : int;
  mutable cc_selected : int;  (* transition index, -1 = none *)
  cc_state_transitions : int array array;  (* per state, priority order *)
  cc_guards : (unit -> bool) array;  (* per transition *)
  cc_transitions : transition_code array;
}

type kernel_code = {
  kc_kernel : Dataflow.Kernel.t;
  kc_inputs : (string * int * Fixed.format) list;  (* port, slot, fmt *)
  kc_outputs : (string * int * int) list;  (* port, slot, stamp *)
}

type probe_code = {
  pc_name : string;
  pc_slot : int;
  pc_stamp : int;
  pc_fmt : Fixed.format;
  mutable pc_history : (int * Fixed.t) list;  (* reversed *)
}

type stim_code = {
  st_fn : int -> Fixed.t option;
  st_slot : int;
  st_stamp : int;
}

(* Optional per-net value recording (waveform dumping from the compiled
   engine): one record per net whose carried format is known. *)
type trace_rec = {
  trc_name : string;
  trc_slot : int;
  trc_stamp : int;
  trc_fmt : Fixed.format;
  mutable trc_hist : (int * Fixed.t) list;  (* reversed *)
}

type t = {
  values : int64 array;
  stamps : int array;
  cycle_ref : int ref;  (* captured by output-store statements *)
  mutable cycle : int;
  comps : comp_code array;
  b_schedule : (int, kernel_code) Either.t array;
  stims : stim_code array;
  probes : probe_code array;
  reg_inits : (int64 * int) array;
  (* Register exposure for fault injection: (name, format, cur slot) in
     [Cycle_system.all_regs] order — the same indexing every engine uses. *)
  regs : (string * Fixed.format * int) array;
  n_statements : int;
  mutable tracing : bool;
  trace_recs : trace_rec array;
}

(* --- compilation --------------------------------------------------------- *)

(* Telemetry label for the static operator mix of a flattened program. *)
let op_kind_name n =
  match Signal.op n with
  | Signal.Const _ -> "const"
  | Signal.Input_read _ -> "input_read"
  | Signal.Reg_read _ -> "reg_read"
  | Signal.Add _ -> "add"
  | Signal.Sub _ -> "sub"
  | Signal.Mul _ -> "mul"
  | Signal.Neg _ -> "neg"
  | Signal.Abs _ -> "abs"
  | Signal.And _ -> "and"
  | Signal.Or _ -> "or"
  | Signal.Xor _ -> "xor"
  | Signal.Not _ -> "not"
  | Signal.Eq _ -> "eq"
  | Signal.Lt _ -> "lt"
  | Signal.Le _ -> "le"
  | Signal.Mux _ -> "mux"
  | Signal.Resize _ -> "resize"
  | Signal.Rom_read _ -> "rom_read"
  | Signal.Shift_left _ -> "shift_left"
  | Signal.Shift_right _ -> "shift_right"

let compile sys =
  let t_compile = Ocapi_obs.span_begin () in
  let a =
    {
      next_slot = 0;
      net_slot = Hashtbl.create 64;
      net_fmt = Hashtbl.create 64;
      net_stamp = Hashtbl.create 64;
      reg_cur = Hashtbl.create 64;
      reg_next = Hashtbl.create 64;
      reg_init = Hashtbl.create 64;
      node_slot = Hashtbl.create 1024;
      sink_net = Hashtbl.create 64;
      driver_net = Hashtbl.create 64;
    }
  in
  let nets = Cycle_system.nets sys in
  List.iteri
    (fun i (net_name, (dc, dp), sinks) ->
      Hashtbl.replace a.net_slot net_name (fresh a);
      Hashtbl.replace a.net_stamp net_name i;
      Hashtbl.replace a.driver_net (dc, dp) net_name;
      List.iter
        (fun (sc, sp) -> Hashtbl.replace a.sink_net (sc, sp) net_name)
        sinks)
    nets;
  List.iter
    (fun r ->
      let id = Signal.Reg.id r in
      let cur = fresh a and nxt = fresh a in
      Hashtbl.replace a.reg_cur id cur;
      Hashtbl.replace a.reg_next id nxt;
      Hashtbl.replace a.reg_init id (Fixed.mantissa (Signal.Reg.init r), cur))
    (Cycle_system.all_regs sys);
  compute_net_formats a sys;
  let all_timed = Cycle_system.timed_components sys in
  (* Pre-allocate node slots so the values array can be sized; when
     telemetry is on, also tally the static operator mix (each unique
     expression node once). *)
  let op_seen = Hashtbl.create 256 in
  List.iter
    (fun (_, fsm) ->
      List.iter
        (fun tr ->
          List.iter
            (fun sfg ->
              List.iter
                (fun root ->
                  Signal.fold_dag root ~init:() ~f:(fun () n ->
                      ignore (slot_of_node a n);
                      if
                        Ocapi_obs.enabled ()
                        && not (Hashtbl.mem op_seen (Signal.id n))
                      then begin
                        Hashtbl.add op_seen (Signal.id n) ();
                        Ocapi_obs.count ("compiled.ops." ^ op_kind_name n)
                      end))
                (List.map snd (Sfg.outputs sfg) @ List.map snd (Sfg.assigns sfg)))
            tr.Fsm.t_actions)
        (Fsm.transitions fsm))
    all_timed;
  let values = Array.make (max 1 a.next_slot) 0L in
  let stamps = Array.make (max 1 (List.length nets)) (-1) in
  let cycle_ref = ref 0 in
  let reg_inits =
    Hashtbl.fold (fun _ pair acc -> pair :: acc) a.reg_init []
    |> Array.of_list
  in
  Array.iter (fun (init, cur) -> values.(cur) <- init) reg_inits;
  let n_statements = ref 0 in
  let b_written_nets : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let b_read_by_comp : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let note_b_read comp net =
    let tbl =
      match Hashtbl.find_opt b_read_by_comp comp with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.replace b_read_by_comp comp t;
        t
    in
    Hashtbl.replace tbl net ()
  in
  let compile_transition cname tr =
    let roots =
      List.concat_map
        (fun sfg ->
          List.map snd (Sfg.outputs sfg) @ List.map snd (Sfg.assigns sfg))
        tr.Fsm.t_actions
    in
    let is_b = classify_nodes roots in
    let emitted = Hashtbl.create 128 in
    let block_a = ref [] and block_b = ref [] and commit = ref [] in
    let emit_node n =
      Signal.fold_dag n ~init:() ~f:(fun () x ->
          if not (Hashtbl.mem emitted (Signal.id x)) then begin
            Hashtbl.add emitted (Signal.id x) ();
            let stmt = node_statement a values cycle_ref cname x in
            incr n_statements;
            if is_b x then block_b := stmt :: !block_b
            else block_a := stmt :: !block_a;
            match Signal.op x with
            | Signal.Input_read i -> begin
              match Hashtbl.find_opt a.sink_net (cname, Signal.Input.name i) with
              | Some net -> note_b_read cname net
              | None -> ()
            end
            | Signal.Const _ | Signal.Reg_read _ | Signal.Add _ | Signal.Sub _
            | Signal.Mul _ | Signal.Neg _ | Signal.Abs _ | Signal.And _
            | Signal.Or _ | Signal.Xor _ | Signal.Not _ | Signal.Eq _
            | Signal.Lt _ | Signal.Le _ | Signal.Mux _ | Signal.Resize _
            | Signal.Rom_read _ | Signal.Shift_left _ | Signal.Shift_right _ ->
              ()
          end)
    in
    List.iter
      (fun sfg ->
        List.iter
          (fun (port, e) ->
            emit_node e;
            match Hashtbl.find_opt a.driver_net (cname, port) with
            | None -> () (* unconnected output: value falls on the floor *)
            | Some net ->
              let dst = Hashtbl.find a.net_slot net in
              let stamp = Hashtbl.find a.net_stamp net in
              let src = slot_of_node a e in
              let stmt () =
                values.(dst) <- values.(src);
                stamps.(stamp) <- !cycle_ref
              in
              incr n_statements;
              if is_b e then begin
                block_b := stmt :: !block_b;
                Hashtbl.replace b_written_nets net cname
              end
              else block_a := stmt :: !block_a)
          (Sfg.outputs sfg);
        List.iter
          (fun (reg, e) ->
            emit_node e;
            let nxt = Hashtbl.find a.reg_next (Signal.Reg.id reg) in
            let cur = Hashtbl.find a.reg_cur (Signal.Reg.id reg) in
            let src = slot_of_node a e in
            let stmt () = values.(nxt) <- values.(src) in
            incr n_statements;
            if is_b e then block_b := stmt :: !block_b
            else block_a := stmt :: !block_a;
            commit := (fun () -> values.(cur) <- values.(nxt)) :: !commit)
          (Sfg.assigns sfg))
      tr.Fsm.t_actions;
    {
      tc_block_a = Array.of_list (List.rev !block_a);
      tc_block_b = Array.of_list (List.rev !block_b);
      tc_commit = Array.of_list (List.rev !commit);
      tc_goto = Fsm.state_index tr.Fsm.t_goto;
    }
  in
  let comps =
    List.map
      (fun (cname, fsm) ->
        let transitions = Array.of_list (Fsm.transitions fsm) in
        let guards =
          Array.map
            (fun tr ->
              let f = compile_pure a values (Fsm.guard_expr tr.Fsm.t_guard) in
              fun () -> f () <> 0L)
            transitions
        in
        let tcs = Array.map (compile_transition cname) transitions in
        let n_states = List.length (Fsm.states fsm) in
        let by_state = Array.make n_states [] in
        Array.iteri
          (fun i tr ->
            let s = Fsm.state_index tr.Fsm.t_from in
            by_state.(s) <- i :: by_state.(s))
          transitions;
        {
          cc_name = cname;
          cc_initial = Fsm.state_index (Fsm.initial_state fsm);
          cc_state = Fsm.state_index (Fsm.initial_state fsm);
          cc_selected = -1;
          cc_state_transitions =
            Array.map (fun l -> Array.of_list (List.rev l)) by_state;
          cc_guards = guards;
          cc_transitions = tcs;
        })
      all_timed
    |> Array.of_list
  in
  let kernels =
    List.map
      (fun (cname, k) ->
        let inputs =
          List.map
            (fun (port, _) ->
              match Hashtbl.find_opt a.sink_net (cname, port) with
              | Some net ->
                let fmt =
                  match Hashtbl.find_opt a.net_fmt net with
                  | Some f -> f
                  | None -> Dataflow.Kernel.port_format k port
                in
                (port, Hashtbl.find a.net_slot net, fmt)
              | None ->
                unsupported "compiled: kernel %s input %s unconnected" cname port)
            k.Dataflow.Kernel.k_inputs
        in
        let outputs =
          List.filter_map
            (fun (port, _) ->
              match Hashtbl.find_opt a.driver_net (cname, port) with
              | Some net ->
                Hashtbl.replace b_written_nets net cname;
                Some (port, Hashtbl.find a.net_slot net, Hashtbl.find a.net_stamp net)
              | None -> None)
            k.Dataflow.Kernel.k_outputs
        in
        (cname, { kc_kernel = k; kc_inputs = inputs; kc_outputs = outputs }))
      (Cycle_system.untimed_components sys)
  in
  (* B-phase schedule: topological order, edges writer(net) -> reader. *)
  let unit_names =
    Array.append
      (Array.map (fun c -> c.cc_name) comps)
      (Array.of_list (List.map fst kernels))
  in
  let n_units = Array.length unit_names in
  let index_of_name = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.replace index_of_name n i) unit_names;
  let reads = Array.make n_units [] in
  Array.iteri
    (fun i name ->
      if i < Array.length comps then
        match Hashtbl.find_opt b_read_by_comp name with
        | Some tbl -> reads.(i) <- Hashtbl.fold (fun net () acc -> net :: acc) tbl []
        | None -> ())
    unit_names;
  List.iteri
    (fun j (cname, kc) ->
      let i = Array.length comps + j in
      reads.(i) <-
        List.map
          (fun (port, _, _) ->
            match Hashtbl.find_opt a.sink_net (cname, port) with
            | Some net -> net
            | None -> assert false)
          kc.kc_inputs)
    kernels;
  let succs = Array.make n_units [] in
  let indeg = Array.make n_units 0 in
  Array.iteri
    (fun i nets_read ->
      List.iter
        (fun net ->
          match Hashtbl.find_opt b_written_nets net with
          | Some writer ->
            let w = Hashtbl.find index_of_name writer in
            if w <> i then begin
              succs.(w) <- i :: succs.(w);
              indeg.(i) <- indeg.(i) + 1
            end
          | None -> ())
        nets_read)
    reads;
  let order = ref [] in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr visited;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !visited <> n_units then begin
    let stuck =
      Array.to_list unit_names |> List.filteri (fun i _ -> indeg.(i) > 0)
    in
    unsupported
      "compiled: combinational component cycle involving %s; use the \
       interpreted scheduler"
      (String.concat ", " stuck)
  end;
  let kernel_arr = Array.of_list (List.map snd kernels) in
  let b_schedule =
    List.rev !order
    |> List.map (fun i ->
           if i < Array.length comps then Either.Left i
           else Either.Right kernel_arr.(i - Array.length comps))
    |> Array.of_list
  in
  let stims =
    List.filter_map
      (fun (name, _fmt, stim) ->
        match Hashtbl.find_opt a.driver_net (name, "out") with
        | None -> None
        | Some net ->
          Some
            {
              st_fn = stim;
              st_slot = Hashtbl.find a.net_slot net;
              st_stamp = Hashtbl.find a.net_stamp net;
            })
      (Cycle_system.primary_inputs sys)
    |> Array.of_list
  in
  let probes =
    List.filter_map
      (fun pname ->
        match Hashtbl.find_opt a.sink_net (pname, "in") with
        | None -> None
        | Some net ->
          let fmt =
            match Hashtbl.find_opt a.net_fmt net with
            | Some f -> f
            | None ->
              unsupported "compiled: probe %s net %s has unknown format" pname net
          in
          Some
            {
              pc_name = pname;
              pc_slot = Hashtbl.find a.net_slot net;
              pc_stamp = Hashtbl.find a.net_stamp net;
              pc_fmt = fmt;
              pc_history = [];
            })
      (Cycle_system.probes sys)
    |> Array.of_list
  in
  let trace_recs =
    List.filter_map
      (fun (net_name, _, _) ->
        match Hashtbl.find_opt a.net_fmt net_name with
        | Some fmt ->
          Some
            {
              trc_name = net_name;
              trc_slot = Hashtbl.find a.net_slot net_name;
              trc_stamp = Hashtbl.find a.net_stamp net_name;
              trc_fmt = fmt;
              trc_hist = [];
            }
        | None -> None)
      nets
    |> Array.of_list
  in
  let regs_exposed =
    Cycle_system.all_regs sys
    |> List.map (fun r ->
           ( Signal.Reg.name r,
             Signal.Reg.fmt r,
             Hashtbl.find a.reg_cur (Signal.Reg.id r) ))
    |> Array.of_list
  in
  let t =
    {
      values;
      stamps;
      cycle_ref;
      cycle = 0;
      comps;
      b_schedule;
      stims;
      probes;
      reg_inits;
      regs = regs_exposed;
      n_statements = !n_statements;
      tracing = false;
      trace_recs;
    }
  in
  if Ocapi_obs.enabled () then begin
    Ocapi_obs.set_gauge "compiled.slots" (float_of_int a.next_slot);
    Ocapi_obs.set_gauge "compiled.statements" (float_of_int !n_statements)
  end;
  Ocapi_obs.span_end ~cat:"compiled"
    ~args:
      [
        ("slots", Ocapi_obs.Json.Int a.next_slot);
        ("statements", Ocapi_obs.Json.Int !n_statements);
      ]
    "compiled.compile" t_compile;
  t

(* --- execution ------------------------------------------------------------ *)

let step t =
  let t_step = Ocapi_obs.span_begin () in
  t.cycle_ref := t.cycle;
  Array.iter
    (fun st ->
      match st.st_fn t.cycle with
      | Some v ->
        t.values.(st.st_slot) <- Fixed.mantissa v;
        t.stamps.(st.st_stamp) <- t.cycle
      | None -> ())
    t.stims;
  Array.iter
    (fun c ->
      c.cc_selected <- -1;
      let candidates = c.cc_state_transitions.(c.cc_state) in
      try
        Array.iter
          (fun ti ->
            if c.cc_guards.(ti) () then begin
              c.cc_selected <- ti;
              raise Exit
            end)
          candidates
      with Exit -> ())
    t.comps;
  Array.iter
    (fun c ->
      if c.cc_selected >= 0 then
        Array.iter (fun s -> s ()) c.cc_transitions.(c.cc_selected).tc_block_a)
    t.comps;
  Array.iter
    (fun unit_ ->
      match unit_ with
      | Either.Left i ->
        let c = t.comps.(i) in
        if c.cc_selected >= 0 then
          Array.iter (fun s -> s ()) c.cc_transitions.(c.cc_selected).tc_block_b
      | Either.Right kc ->
        if kc.kc_kernel.Dataflow.Kernel.k_ready () then begin
          if Ocapi_obs.enabled () then Ocapi_obs.count "compiled.kernel_firings";
          let consumed =
            List.map
              (fun (port, slot, fmt) ->
                (port, [ Fixed.create fmt t.values.(slot) ]))
              kc.kc_inputs
          in
          let produced = kc.kc_kernel.Dataflow.Kernel.k_behavior consumed in
          List.iter
            (fun (port, slot, stamp) ->
              match List.assoc_opt port produced with
              | Some [ v ] ->
                t.values.(slot) <- Fixed.mantissa v;
                t.stamps.(stamp) <- t.cycle
              | Some _ | None -> ())
            kc.kc_outputs
        end)
    t.b_schedule;
  Array.iter
    (fun unit_ ->
      match unit_ with
      | Either.Left _ -> ()
      | Either.Right kc ->
        if kc.kc_kernel.Dataflow.Kernel.k_ready () then
          kc.kc_kernel.Dataflow.Kernel.k_commit ())
    t.b_schedule;
  Array.iter
    (fun p ->
      if t.stamps.(p.pc_stamp) = t.cycle then
        p.pc_history <-
          (t.cycle, Fixed.create p.pc_fmt t.values.(p.pc_slot)) :: p.pc_history)
    t.probes;
  if t.tracing then
    Array.iter
      (fun r ->
        if t.stamps.(r.trc_stamp) = t.cycle then
          r.trc_hist <-
            (t.cycle, Fixed.create r.trc_fmt t.values.(r.trc_slot)) :: r.trc_hist)
      t.trace_recs;
  Array.iter
    (fun c ->
      if c.cc_selected >= 0 then begin
        let tc = c.cc_transitions.(c.cc_selected) in
        Array.iter (fun s -> s ()) tc.tc_commit;
        c.cc_state <- tc.tc_goto
      end)
    t.comps;
  if Ocapi_obs.enabled () then begin
    Ocapi_obs.count "compiled.steps";
    let a = ref 0 and b = ref 0 and commits = ref 0 and fired = ref 0 in
    Array.iter
      (fun c ->
        if c.cc_selected >= 0 then begin
          let tc = c.cc_transitions.(c.cc_selected) in
          incr fired;
          a := !a + Array.length tc.tc_block_a;
          b := !b + Array.length tc.tc_block_b;
          commits := !commits + Array.length tc.tc_commit
        end)
      t.comps;
    Ocapi_obs.count ~n:!fired "compiled.transitions_fired";
    Ocapi_obs.count ~n:!a "compiled.stmts.block_a";
    Ocapi_obs.count ~n:!b "compiled.stmts.block_b";
    Ocapi_obs.count ~n:!commits "compiled.stmts.commit"
  end;
  t.cycle <- t.cycle + 1;
  Ocapi_obs.span_end ~cat:"compiled" "compiled.step" t_step

let run t n =
  for _ = 1 to n do
    step t
  done

let current_cycle t = t.cycle

let output_history t name =
  match Array.find_opt (fun p -> p.pc_name = name) t.probes with
  | Some p -> List.rev p.pc_history
  | None -> unsupported "output_history: no probe %s" name

let reset t =
  t.cycle <- 0;
  t.cycle_ref := 0;
  Array.fill t.stamps 0 (Array.length t.stamps) (-1);
  Array.iter (fun (init, cur) -> t.values.(cur) <- init) t.reg_inits;
  Array.iter
    (fun c ->
      c.cc_state <- c.cc_initial;
      c.cc_selected <- -1)
    t.comps;
  Array.iter (fun p -> p.pc_history <- []) t.probes;
  Array.iter (fun r -> r.trc_hist <- []) t.trace_recs;
  Array.iter
    (fun unit_ ->
      match unit_ with
      | Either.Left _ -> ()
      | Either.Right kc -> kc.kc_kernel.Dataflow.Kernel.k_reset ())
    t.b_schedule

let trace_all t = t.tracing <- true

let traced_histories t =
  Array.to_list t.trace_recs
  |> List.map (fun r -> (r.trc_name, r.trc_fmt, List.rev r.trc_hist))

let slot_count t = Array.length t.values
let statement_count t = t.n_statements

(* --- fault-injection access ---------------------------------------------- *)

let register_count t = Array.length t.regs

let register_info t i =
  let name, f, _ = t.regs.(i) in
  (name, f)

let flip_register_bit t i ~bit =
  let name, f, slot = t.regs.(i) in
  if bit < 0 || bit >= f.Fixed.width then
    invalid_arg
      (Printf.sprintf "flip_register_bit: bit %d outside %s for register %s"
         bit (Fixed.format_to_string f) name);
  let flipped = Int64.logxor t.values.(slot) (Int64.shift_left 1L bit) in
  t.values.(slot) <- wrap_fn f flipped

let component_count t = Array.length t.comps

let component_info t i =
  let c = t.comps.(i) in
  (c.cc_name, Array.length c.cc_state_transitions)

let component_state t i = t.comps.(i).cc_state

let set_component_state t i s =
  let c = t.comps.(i) in
  let n = Array.length c.cc_state_transitions in
  if s < 0 || s >= n then
    raise
      (Ocapi_error.Error
         (Ocapi_error.make Ocapi_error.Invalid_state ~engine:"compiled"
            ~construct:c.cc_name ~cycle:t.cycle
            (Printf.sprintf "FSM driven into unencoded state %d (%d states)"
               s n)));
  c.cc_state <- s

let emit_ocaml sys ~cycles = Emit.emit_ocaml sys ~cycles
