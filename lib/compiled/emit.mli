(** OCaml source emission for the compiled simulator (fig 7: "a C++
    description can be regenerated to yield an application-specific and
    optimized compiled code simulator").

    Two emitted shapes share one renderer:

    - {!emit_ocaml} — a standalone program depending only on the
      standard library, with recorded stimuli embedded as literals; it
      prints one line per probe token so its behaviour can be diffed
      against the in-process engines (the codegen demo and the
      end-to-end tests do exactly that).
    - {!emit_plugin} — a library-shaped module for the native engine.
      It registers step/reset closures and its raw state arrays
      through [Ocapi_native_abi] instead of defining [main]; stimuli,
      probes and fault pokes stay on the host side of the ABI.  When
      the emitter's width-bound analysis proves every intermediate
      mantissa fits an unboxed 63-bit [int], the plugin is emitted
      over native [int] words; otherwise it falls back to [int64]
      cells, semantically identical on any width.  Untimed kernels
      carrying a [Dataflow.Kernel.model] (RAM cells) are inlined as
      array accesses instead of crossing the host boundary.

    Both raise [Compiled_types.Unsupported] on designs outside the
    emitters' scope (e.g. untimed kernels without a model in
    {!emit_ocaml}). *)

val emitter_version : int
(** Bumped whenever the emitted plugin text, the slot-layout contract
    or the [Ocapi_native_abi] record shape changes incompatibly; the
    native engine folds it into the [.cmxs] cache key so stale
    artifacts are never paired with a newer host. *)

val emit_ocaml : Cycle_system.t -> cycles:int -> string
(** [emit_ocaml sys ~cycles] renders [sys] as a self-contained OCaml
    program that simulates exactly [cycles] cycles and prints
    ["probe@cycle = value"] lines for every probe token.  Primary
    inputs are sampled over the cycle range at emission time and
    embedded as literals, so the text depends only on the standard
    library. *)

(** What the native host needs to wire a compiled plugin into a
    session, marshalled next to the [.cmxs] artifact: slot and stamp
    indices for stimuli/probes/registers, FSM state counts, and the
    port-to-slot maps of the untimed kernels left on the host side.
    Slot indices address the plugin's value store; stamp indices its
    token-presence array.  [pm_kernels] lists only the kernels the
    emitter did {e not} inline, in [Cycle_system.untimed_components]
    order filtered to those kernels. *)
type plugin_meta = {
  pm_version : int;  (** {!emitter_version} at emission time *)
  pm_packed : bool;  (** word mode (unboxed [int]) or boxed [int64] *)
  pm_slots : int;  (** value-store length *)
  pm_stamp_count : int;  (** stamp-array length *)
  pm_statements : int;
      (** generated statement count — the session's static size, the
          Table 1 source-lines stand-in *)
  pm_stims : (string * int * int) list;
      (** primary input name, slot, stamp *)
  pm_probes : (string * int * int * Fixed.format) list;
      (** probe name, slot, stamp, carried format *)
  pm_regs : (string * Fixed.format * int) list;
      (** register name, declared format, current-value slot; in
          [Cycle_system.all_regs] order — the shared SEU indexing *)
  pm_comps : (string * int) list;
      (** timed component name, state count; in system order *)
  pm_kernels :
    (string
    * (string * int * Fixed.format) list
    * (string * int * int) list)
    list;
      (** host-side kernel: component name, [(input port, slot,
          format)] bindings, [(output port, slot, stamp)] bindings *)
}

val emit_plugin : Cycle_system.t -> string * plugin_meta
(** [emit_plugin sys] renders [sys] as the source of a dynlinkable
    plugin module plus the {!plugin_meta} describing its slot layout.
    The module's only dependency is [Ocapi_native_abi]; on load it
    registers an [Ocapi_native_abi.plugin] exposing its state arrays
    and step/reset entry points. *)
