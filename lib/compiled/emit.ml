(* Standalone OCaml source emission for the compiled simulator (fig 7:
   "a C++ description can be regenerated to yield an application-specific
   and optimized compiled code simulator").  The emitted program depends
   only on the standard library; it prints one line per probe token so
   its behaviour can be diffed against the in-process engines. *)

let unsupported fmt =
  Format.kasprintf (fun s -> raise (Compiled_types.Unsupported s)) fmt

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    (String.lowercase_ascii name)

(* --- allocation (textual twin of Compiled_sim's) ----------------------- *)

type alloc = {
  mutable next_slot : int;
  net_slot : (string, int) Hashtbl.t;
  net_fmt : (string, Fixed.format) Hashtbl.t;
  net_stamp : (string, int) Hashtbl.t;
  reg_cur : (int, int) Hashtbl.t;
  reg_next : (int, int) Hashtbl.t;
  reg_init : (int64 * int) list ref;
  node_slot : (int, int) Hashtbl.t;
  sink_net : (string * string, string) Hashtbl.t;
  driver_net : (string * string, string) Hashtbl.t;
  roms : (string * int64 array) list ref;  (* emitted name, contents *)
  rom_names : (string, string) Hashtbl.t;  (* rom name -> emitted name *)
}

let fresh a =
  let s = a.next_slot in
  a.next_slot <- s + 1;
  s

let slot_of_node a n =
  match Hashtbl.find_opt a.node_slot (Signal.id n) with
  | Some s -> s
  | None ->
    let s = fresh a in
    Hashtbl.replace a.node_slot (Signal.id n) s;
    s

let rom_var a r =
  let name = Signal.Rom.name r in
  match Hashtbl.find_opt a.rom_names name with
  | Some v -> v
  | None ->
    let v = Printf.sprintf "rom_%s_%d" (sanitize name) (List.length !(a.roms)) in
    let contents =
      Array.init (Signal.Rom.size r) (fun i ->
          Fixed.mantissa (Signal.Rom.get r i))
    in
    a.roms := (v, contents) :: !(a.roms);
    Hashtbl.replace a.rom_names name v;
    v

(* --- expression text ----------------------------------------------------- *)

let align_shifts (fa : Fixed.format) (fb : Fixed.format) =
  let frac = max fa.Fixed.frac fb.Fixed.frac in
  (frac - fa.Fixed.frac, frac - fb.Fixed.frac)

let shl_txt x k = if k = 0 then x else Printf.sprintf "(shl %s %d)" x k

let wrap_txt (f : Fixed.format) x =
  match f.Fixed.signedness with
  | Fixed.Unsigned -> Printf.sprintf "(wrap_u %d %s)" f.Fixed.width x
  | Fixed.Signed -> Printf.sprintf "(wrap_s %d %s)" f.Fixed.width x

let sat_txt (f : Fixed.format) x =
  Printf.sprintf "(sat (%LdL) (%LdL) %s)" (Fixed.min_mantissa f)
    (Fixed.max_mantissa f) x

let round_txt mode k x =
  if k = 0 then x
  else if k > 62 then Printf.sprintf "(if %s >= 0L then 0L else -1L)" x
  else
    match mode with
    | Fixed.Truncate -> Printf.sprintf "(Int64.shift_right %s %d)" x k
    | Fixed.Round_nearest -> Printf.sprintf "(rnd_near %d %s)" k x
    | Fixed.Round_even -> Printf.sprintf "(rnd_even %d %s)" k x

let resize_txt ?(ctx = "guard") ~round ~overflow (src : Fixed.format)
    (dst : Fixed.format) x =
  let k = src.Fixed.frac - dst.Fixed.frac in
  let ovf v =
    match overflow with
    | Fixed.Wrap -> wrap_txt dst v
    | Fixed.Saturate -> sat_txt dst v
  in
  if k > 0 then ovf (round_txt round k x)
  else if -k > 62 then
    (* Same semantics as Fixed.resize / the in-process compiled engine:
       zero passes, a nonzero mantissa raises a structured overflow
       carrying the construct, target format and failing cycle. *)
    Printf.sprintf "(if %s = 0L then 0L else overflow_error %S)" x
      (Printf.sprintf "%s: resize to %s: shift too large for nonzero value"
         ctx
         (Fixed.format_to_string dst))
  else ovf (shl_txt x (-k))

(* Text of the expression for node [n], referencing child slots. *)
let node_expr_text a comp_name n =
  let s x = Printf.sprintf "v.(%d)" (slot_of_node a x) in
  let nf = Signal.fmt n in
  match Signal.op n with
  | Signal.Const v -> Printf.sprintf "(%LdL)" (Fixed.mantissa v)
  | Signal.Input_read i -> begin
    match Hashtbl.find_opt a.sink_net (comp_name, Signal.Input.name i) with
    | Some net -> Printf.sprintf "v.(%d)" (Hashtbl.find a.net_slot net)
    | None ->
      unsupported "emit: input %s.%s is not connected" comp_name
        (Signal.Input.name i)
  end
  | Signal.Reg_read r ->
    Printf.sprintf "v.(%d)" (Hashtbl.find a.reg_cur (Signal.Reg.id r))
  | Signal.Add (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(Int64.add %s %s)" (shl_txt (s x) ka) (shl_txt (s y) kb)
  | Signal.Sub (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(Int64.sub %s %s)" (shl_txt (s x) ka) (shl_txt (s y) kb)
  | Signal.Mul (x, y) -> Printf.sprintf "(Int64.mul %s %s)" (s x) (s y)
  | Signal.Neg x -> Printf.sprintf "(Int64.neg %s)" (s x)
  | Signal.Abs x -> Printf.sprintf "(Int64.abs %s)" (s x)
  | Signal.And (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (Printf.sprintf "(Int64.logand %s %s)" (shl_txt (s x) ka) (shl_txt (s y) kb))
  | Signal.Or (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (Printf.sprintf "(Int64.logor %s %s)" (shl_txt (s x) ka) (shl_txt (s y) kb))
  | Signal.Xor (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (Printf.sprintf "(Int64.logxor %s %s)" (shl_txt (s x) ka) (shl_txt (s y) kb))
  | Signal.Not x -> wrap_txt nf (Printf.sprintf "(Int64.lognot %s)" (s x))
  | Signal.Eq (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s = %s then 1L else 0L)" (shl_txt (s x) ka)
      (shl_txt (s y) kb)
  | Signal.Lt (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s < %s then 1L else 0L)" (shl_txt (s x) ka)
      (shl_txt (s y) kb)
  | Signal.Le (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s <= %s then 1L else 0L)" (shl_txt (s x) ka)
      (shl_txt (s y) kb)
  | Signal.Mux (sel, x, y) ->
    let rx =
      resize_txt ~ctx:comp_name ~round:Fixed.Truncate ~overflow:Fixed.Wrap
        (Signal.fmt x) nf (s x)
    in
    let ry =
      resize_txt ~ctx:comp_name ~round:Fixed.Truncate ~overflow:Fixed.Wrap
        (Signal.fmt y) nf (s y)
    in
    Printf.sprintf "(if %s <> 0L then %s else %s)" (s sel) rx ry
  | Signal.Resize (round, overflow, x) ->
    resize_txt ~ctx:comp_name ~round ~overflow (Signal.fmt x) nf (s x)
  | Signal.Rom_read (r, idx) ->
    let var = rom_var a r in
    let len = Signal.Rom.size r in
    let frac = (Signal.fmt idx).Fixed.frac in
    if frac <= 0 then
      Printf.sprintf "%s.(Int64.to_int %s mod %d)" var (shl_txt (s idx) (-frac)) len
    else
      Printf.sprintf "%s.(Int64.to_int (Int64.div %s %LdL) mod %d)" var (s idx)
        (Int64.shift_left 1L (min frac 62))
        len
  | Signal.Shift_left (x, _) | Signal.Shift_right (x, _) -> s x

(* Pure expression text (guards): same ops but inline recursion. *)
let rec pure_expr_text a e =
  let nf = Signal.fmt e in
  let p x = pure_expr_text a x in
  match Signal.op e with
  | Signal.Const v -> Printf.sprintf "(%LdL)" (Fixed.mantissa v)
  | Signal.Input_read i ->
    unsupported "emit: guard reads input %s" (Signal.Input.name i)
  | Signal.Reg_read r ->
    Printf.sprintf "v.(%d)" (Hashtbl.find a.reg_cur (Signal.Reg.id r))
  | Signal.Add (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(Int64.add %s %s)" (shl_txt (p x) ka) (shl_txt (p y) kb)
  | Signal.Sub (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(Int64.sub %s %s)" (shl_txt (p x) ka) (shl_txt (p y) kb)
  | Signal.Mul (x, y) -> Printf.sprintf "(Int64.mul %s %s)" (p x) (p y)
  | Signal.Neg x -> Printf.sprintf "(Int64.neg %s)" (p x)
  | Signal.Abs x -> Printf.sprintf "(Int64.abs %s)" (p x)
  | Signal.And (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (Printf.sprintf "(Int64.logand %s %s)" (shl_txt (p x) ka) (shl_txt (p y) kb))
  | Signal.Or (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (Printf.sprintf "(Int64.logor %s %s)" (shl_txt (p x) ka) (shl_txt (p y) kb))
  | Signal.Xor (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (Printf.sprintf "(Int64.logxor %s %s)" (shl_txt (p x) ka) (shl_txt (p y) kb))
  | Signal.Not x -> wrap_txt nf (Printf.sprintf "(Int64.lognot %s)" (p x))
  | Signal.Eq (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s = %s then 1L else 0L)" (shl_txt (p x) ka)
      (shl_txt (p y) kb)
  | Signal.Lt (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s < %s then 1L else 0L)" (shl_txt (p x) ka)
      (shl_txt (p y) kb)
  | Signal.Le (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s <= %s then 1L else 0L)" (shl_txt (p x) ka)
      (shl_txt (p y) kb)
  | Signal.Mux (sel, x, y) ->
    let rx = resize_txt ~round:Fixed.Truncate ~overflow:Fixed.Wrap (Signal.fmt x) nf (p x) in
    let ry = resize_txt ~round:Fixed.Truncate ~overflow:Fixed.Wrap (Signal.fmt y) nf (p y) in
    Printf.sprintf "(if %s <> 0L then %s else %s)" (p sel) rx ry
  | Signal.Resize (round, overflow, x) ->
    resize_txt ~round ~overflow (Signal.fmt x) nf (p x)
  | Signal.Rom_read (r, idx) ->
    let var = rom_var a r in
    let len = Signal.Rom.size r in
    let frac = (Signal.fmt idx).Fixed.frac in
    if frac <= 0 then
      Printf.sprintf "%s.(Int64.to_int %s mod %d)" var (shl_txt (p idx) (-frac)) len
    else
      Printf.sprintf "%s.(Int64.to_int (Int64.div %s %LdL) mod %d)" var (p idx)
        (Int64.shift_left 1L (min frac 62))
        len
  | Signal.Shift_left (x, _) | Signal.Shift_right (x, _) -> p x

(* --- classification (shared logic) --------------------------------------- *)

(* NOTE: every child must be visited even when the answer is already
   known — short-circuiting would leave siblings unclassified, and an
   unclassified input-dependent node would default to block A and read
   stale values. *)
let classify_nodes roots =
  let cls : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let rec go n =
    match Hashtbl.find_opt cls (Signal.id n) with
    | Some b -> b
    | None ->
      let b =
        match Signal.op n with
        | Signal.Input_read _ -> true
        | Signal.Const _ | Signal.Reg_read _ -> false
        | Signal.Neg x | Signal.Abs x | Signal.Not x
        | Signal.Resize (_, _, x)
        | Signal.Rom_read (_, x)
        | Signal.Shift_left (x, _)
        | Signal.Shift_right (x, _) -> go x
        | Signal.Add (x, y) | Signal.Sub (x, y) | Signal.Mul (x, y)
        | Signal.And (x, y) | Signal.Or (x, y) | Signal.Xor (x, y)
        | Signal.Eq (x, y) | Signal.Lt (x, y) | Signal.Le (x, y) ->
          let bx = go x in
          let by = go y in
          bx || by
        | Signal.Mux (s, x, y) ->
          let bs = go s in
          let bx = go x in
          let by = go y in
          bs || bx || by
      in
      Hashtbl.replace cls (Signal.id n) b;
      b
  in
  List.iter (fun r -> ignore (go r)) roots;
  fun n ->
    match Hashtbl.find_opt cls (Signal.id n) with Some b -> b | None -> false

(* --- emission -------------------------------------------------------------- *)

let emit_ocaml sys ~cycles =
  if Cycle_system.untimed_components sys <> [] then
    unsupported "emit_ocaml: untimed kernels cannot be embedded in source";
  let a =
    {
      next_slot = 0;
      net_slot = Hashtbl.create 64;
      net_fmt = Hashtbl.create 64;
      net_stamp = Hashtbl.create 64;
      reg_cur = Hashtbl.create 64;
      reg_next = Hashtbl.create 64;
      reg_init = ref [];
      node_slot = Hashtbl.create 1024;
      sink_net = Hashtbl.create 64;
      driver_net = Hashtbl.create 64;
      roms = ref [];
      rom_names = Hashtbl.create 8;
    }
  in
  let nets = Cycle_system.nets sys in
  List.iteri
    (fun i (net_name, (dc, dp), sinks) ->
      Hashtbl.replace a.net_slot net_name (fresh a);
      Hashtbl.replace a.net_stamp net_name i;
      Hashtbl.replace a.driver_net (dc, dp) net_name;
      List.iter
        (fun (sc, sp) -> Hashtbl.replace a.sink_net (sc, sp) net_name)
        sinks)
    nets;
  List.iter
    (fun r ->
      let id = Signal.Reg.id r in
      let cur = fresh a and nxt = fresh a in
      Hashtbl.replace a.reg_cur id cur;
      Hashtbl.replace a.reg_next id nxt;
      a.reg_init := (Fixed.mantissa (Signal.Reg.init r), cur) :: !(a.reg_init))
    (Cycle_system.all_regs sys);
  let buf = Buffer.create 65536 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let all_timed = Cycle_system.timed_components sys in
  (* Pre-allocate node slots. *)
  List.iter
    (fun (_, fsm) ->
      List.iter
        (fun tr ->
          List.iter
            (fun sfg ->
              List.iter
                (fun root ->
                  Signal.fold_dag root ~init:() ~f:(fun () n ->
                      ignore (slot_of_node a n)))
                (List.map snd (Sfg.outputs sfg) @ List.map snd (Sfg.assigns sfg)))
            tr.Fsm.t_actions)
        (Fsm.transitions fsm))
    all_timed;
  (* Stimuli: evaluate now, require totality. *)
  let stim_rows =
    List.filter_map
      (fun (name, _fmt, stim) ->
        match Hashtbl.find_opt a.driver_net (name, "out") with
        | None -> None
        | Some net ->
          let vals =
            Array.init cycles (fun c ->
                match stim c with
                | Some v -> Fixed.mantissa v
                | None ->
                  unsupported
                    "emit_ocaml: stimulus %s produced no token at cycle %d"
                    name c)
          in
          Some (sanitize name, Hashtbl.find a.net_slot net,
                Hashtbl.find a.net_stamp net, vals))
      (Cycle_system.primary_inputs sys)
  in
  (* Build per-component text, collecting B-phase ordering info. *)
  let b_written = Hashtbl.create 32 in
  let b_read = Hashtbl.create 32 in
  let comp_texts =
    List.map
      (fun (cname, fsm) ->
        let cid = sanitize cname in
        let transitions = Array.of_list (Fsm.transitions fsm) in
        let block_a = Buffer.create 1024
        and block_b = Buffer.create 1024
        and commits = Buffer.create 256 in
        let ba fmt = Printf.ksprintf (Buffer.add_string block_a) fmt in
        let bb fmt = Printf.ksprintf (Buffer.add_string block_b) fmt in
        let bc fmt = Printf.ksprintf (Buffer.add_string commits) fmt in
        Array.iteri
          (fun ti tr ->
            let roots =
              List.concat_map
                (fun sfg ->
                  List.map snd (Sfg.outputs sfg) @ List.map snd (Sfg.assigns sfg))
                tr.Fsm.t_actions
            in
            let is_b = classify_nodes roots in
            let emitted = Hashtbl.create 128 in
            let a_stmts = ref [] and b_stmts = ref [] and c_stmts = ref [] in
            let emit_node n =
              Signal.fold_dag n ~init:() ~f:(fun () x ->
                  if not (Hashtbl.mem emitted (Signal.id x)) then begin
                    Hashtbl.add emitted (Signal.id x) ();
                    let txt =
                      Printf.sprintf "v.(%d) <- %s" (slot_of_node a x)
                        (node_expr_text a cname x)
                    in
                    if is_b x then b_stmts := txt :: !b_stmts
                    else a_stmts := txt :: !a_stmts;
                    match Signal.op x with
                    | Signal.Input_read i -> begin
                      match
                        Hashtbl.find_opt a.sink_net (cname, Signal.Input.name i)
                      with
                      | Some net -> Hashtbl.replace b_read (cname, net) ()
                      | None -> ()
                    end
                    | _ -> ()
                  end)
            in
            List.iter
              (fun sfg ->
                List.iter
                  (fun (port, e) ->
                    emit_node e;
                    match Hashtbl.find_opt a.driver_net (cname, port) with
                    | None -> ()
                    | Some net ->
                      let txt =
                        Printf.sprintf "v.(%d) <- v.(%d); stamp.(%d) <- !cycle"
                          (Hashtbl.find a.net_slot net)
                          (slot_of_node a e)
                          (Hashtbl.find a.net_stamp net)
                      in
                      if is_b e then begin
                        b_stmts := txt :: !b_stmts;
                        Hashtbl.replace b_written net cname
                      end
                      else a_stmts := txt :: !a_stmts)
                  (Sfg.outputs sfg);
                List.iter
                  (fun (reg, e) ->
                    emit_node e;
                    let nxt = Hashtbl.find a.reg_next (Signal.Reg.id reg) in
                    let cur = Hashtbl.find a.reg_cur (Signal.Reg.id reg) in
                    let txt =
                      Printf.sprintf "v.(%d) <- v.(%d)" nxt (slot_of_node a e)
                    in
                    if is_b e then b_stmts := txt :: !b_stmts
                    else a_stmts := txt :: !a_stmts;
                    c_stmts := Printf.sprintf "v.(%d) <- v.(%d)" cur nxt :: !c_stmts)
                  (Sfg.assigns sfg))
              tr.Fsm.t_actions;
            let body stmts =
              match List.rev stmts with
              | [] -> "()"
              | l -> String.concat ";\n      " l
            in
            ba "    | %d ->\n      %s\n" ti (body !a_stmts);
            bb "    | %d ->\n      %s\n" ti (body !b_stmts);
            bc "    | %d ->\n      %s;\n      st_%s := %d\n" ti (body !c_stmts)
              cid
              (Fsm.state_index tr.Fsm.t_goto))
          transitions;
        (* Guard selection per state. *)
        let sel = Buffer.create 512 in
        let bs fmt = Printf.ksprintf (Buffer.add_string sel) fmt in
        List.iter
          (fun st ->
            bs "    | %d ->\n" (Fsm.state_index st);
            let trs =
              List.filteri (fun _ _ -> true) (Array.to_list transitions)
              |> List.mapi (fun i tr -> (i, tr))
              |> List.filter (fun (_, tr) ->
                     Fsm.state_equal tr.Fsm.t_from st)
            in
            let rec chain = function
              | [] -> "(-1)"
              | (i, tr) :: rest ->
                let g = Fsm.guard_expr tr.Fsm.t_guard in
                Printf.sprintf "if %s <> 0L then %d else %s"
                  (pure_expr_text a g) i (chain rest)
            in
            bs "      %s\n" (chain trs))
          (Fsm.states fsm);
        (cname, cid, Buffer.contents sel, Buffer.contents block_a,
         Buffer.contents block_b, Buffer.contents commits,
         Fsm.state_index (Fsm.initial_state fsm)))
      all_timed
  in
  (* Topological order of B blocks. *)
  let names = List.map (fun (n, _, _, _, _, _, _) -> n) comp_texts in
  let idx = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace idx n i) names;
  let n_units = List.length names in
  let succs = Array.make n_units [] and indeg = Array.make n_units 0 in
  Hashtbl.iter
    (fun (reader, net) () ->
      match Hashtbl.find_opt b_written net with
      | Some writer when writer <> reader ->
        let w = Hashtbl.find idx writer and r = Hashtbl.find idx reader in
        succs.(w) <- r :: succs.(w);
        indeg.(r) <- indeg.(r) + 1
      | Some _ | None -> ())
    b_read;
  let order = ref [] and queue = Queue.create () and visited = ref 0 in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr visited;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !visited <> n_units then
    unsupported "emit_ocaml: combinational component cycle";
  let b_order = List.rev !order in
  (* Probes. *)
  let probe_rows =
    List.filter_map
      (fun pname ->
        match Hashtbl.find_opt a.sink_net (pname, "in") with
        | None -> None
        | Some net ->
          Some (pname, Hashtbl.find a.net_slot net, Hashtbl.find a.net_stamp net))
      (Cycle_system.probes sys)
  in
  (* --- assemble the file --- *)
  pf "(* Generated by ocapi-ml: compiled simulator for system %S. *)\n"
    (Cycle_system.name sys);
  pf "(* %d cycles of embedded stimuli; prints \"<cycle> <probe> <mantissa>\". *)\n\n"
    cycles;
  pf "let v = Array.make %d 0L\n" (max 1 a.next_slot);
  pf "let stamp = Array.make %d (-1)\n" (max 1 (List.length nets));
  pf "let cycle = ref 0\n";
  pf "exception Overflow of string\n";
  pf "let overflow_error what =\n";
  pf "  raise (Overflow (Printf.sprintf \"compiled/%%s (cycle %%d)\" what !cycle))\n";
  pf "let shl x k = if k = 0 then x else Int64.shift_left x k\n";
  pf "let wrap_u w x = Int64.logand x (Int64.sub (Int64.shift_left 1L w) 1L)\n";
  pf "let wrap_s w x =\n";
  pf "  let m = Int64.logand x (Int64.sub (Int64.shift_left 1L w) 1L) in\n";
  pf "  if Int64.logand m (Int64.shift_left 1L (w - 1)) <> 0L then\n";
  pf "    Int64.sub m (Int64.shift_left 1L w) else m\n";
  pf "let sat lo hi x = if x < lo then lo else if x > hi then hi else x\n";
  pf "let rnd_near k x = Int64.shift_right (Int64.add x (Int64.shift_left 1L (k-1))) k\n";
  pf "let rnd_even k x =\n";
  pf "  let f = Int64.shift_right x k in\n";
  pf "  let r = Int64.sub x (Int64.shift_left f k) in\n";
  pf "  let h = Int64.shift_left 1L (k-1) in\n";
  pf "  if r > h then Int64.add f 1L else if r < h then f\n";
  pf "  else if Int64.logand f 1L = 1L then Int64.add f 1L else f\n";
  pf "let _ = shl 0L 0, wrap_u 1 0L, wrap_s 1 0L, sat 0L 0L 0L, rnd_near 1 0L, rnd_even 1 0L\n";
  pf "let _ = overflow_error\n\n";
  List.iter
    (fun (var, contents) ->
      pf "let %s = [|" var;
      Array.iter (fun m -> pf " %LdL;" m) contents;
      pf " |]\n")
    (List.rev !(a.roms));
  List.iter
    (fun (name, slot, stampi, vals) ->
      pf "let stim_%s = [|" name;
      Array.iter (fun m -> pf " %LdL;" m) vals;
      pf " |]\n";
      pf "let stim_%s_slot = %d\nlet stim_%s_stamp = %d\n" name slot name stampi)
    stim_rows;
  pf "\nlet () = (* register initial values *)\n";
  List.iter (fun (init, cur) -> pf "  v.(%d) <- %LdL;\n" cur init) !(a.reg_init);
  pf "  ()\n\n";
  List.iter
    (fun (_, cid, sel, ba, bb, bc, init_state) ->
      pf "let st_%s = ref %d\n" cid init_state;
      pf "let sel_%s = ref (-1)\n" cid;
      pf "let select_%s () =\n  sel_%s := (match !st_%s with\n%s    | _ -> (-1))\n"
        cid cid cid sel;
      pf "let block_a_%s () =\n  (match !sel_%s with\n%s    | _ -> ())\n" cid cid ba;
      pf "let block_b_%s () =\n  (match !sel_%s with\n%s    | _ -> ())\n" cid cid bb;
      pf "let commit_%s () =\n  (match !sel_%s with\n%s    | _ -> ())\n\n" cid cid bc)
    comp_texts;
  pf "let step () =\n";
  List.iter
    (fun (name, _, _, _) ->
      pf "  v.(stim_%s_slot) <- stim_%s.(!cycle); stamp.(stim_%s_stamp) <- !cycle;\n"
        name name name)
    stim_rows;
  List.iter (fun (_, cid, _, _, _, _, _) -> pf "  select_%s ();\n" cid) comp_texts;
  List.iter (fun (_, cid, _, _, _, _, _) -> pf "  block_a_%s ();\n" cid) comp_texts;
  List.iter
    (fun i ->
      let _, cid, _, _, _, _, _ = List.nth comp_texts i in
      pf "  block_b_%s ();\n" cid)
    b_order;
  List.iter
    (fun (pname, slot, stampi) ->
      pf "  (if stamp.(%d) = !cycle then Printf.printf \"%%d %s %%Ld\\n\" !cycle v.(%d));\n"
        stampi pname slot)
    probe_rows;
  List.iter (fun (_, cid, _, _, _, _, _) -> pf "  commit_%s ();\n" cid) comp_texts;
  pf "  incr cycle\n\n";
  pf "let () = for _ = 1 to %d do step () done\n" cycles;
  Buffer.contents buf
