(* OCaml source emission for the compiled simulator (fig 7: "a C++
   description can be regenerated to yield an application-specific and
   optimized compiled code simulator").  Two shapes share one renderer:

   - {!emit_ocaml}: a standalone program depending only on the standard
     library, with recorded stimuli embedded as literals; it prints one
     line per probe token so its behaviour can be diffed against the
     in-process engines.

   - {!emit_plugin}: a library-shaped module for the native engine.  It
     registers step/reset closures and its raw state arrays through
     [Ocapi_native_abi] instead of defining [main]; stimuli, probes and
     fault pokes stay on the host side of the ABI.  When the width-bound
     analysis ({!word_mode_ok}) proves every intermediate mantissa fits
     an unboxed 63-bit [int], the plugin is emitted over native [int]
     words ([Word] mode); otherwise it falls back to [int64] cells
     ([I64] mode), semantically identical to the interpreted compiled
     engine on any width. *)

let unsupported fmt =
  Format.kasprintf (fun s -> raise (Compiled_types.Unsupported s)) fmt

(* Bumped whenever the emitted plugin text, the slot-layout contract or
   the [Ocapi_native_abi] record shape changes incompatibly; folded into
   the .cmxs cache key so stale artifacts are never paired with a newer
   host. *)
let emitter_version = 2

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    (String.lowercase_ascii name)

(* --- allocation (textual twin of Compiled_sim's) ----------------------- *)

type alloc = {
  mutable next_slot : int;
  net_slot : (string, int) Hashtbl.t;
  net_fmt : (string, Fixed.format) Hashtbl.t;
  net_stamp : (string, int) Hashtbl.t;
  reg_cur : (int, int) Hashtbl.t;
  reg_next : (int, int) Hashtbl.t;
  reg_init : (int64 * int) list ref;
  node_slot : (int, int) Hashtbl.t;
  sink_net : (string * string, string) Hashtbl.t;
  driver_net : (string * string, string) Hashtbl.t;
  roms : (string * int64 array) list ref;  (* emitted name, contents *)
  rom_names : (string, string) Hashtbl.t;  (* rom name -> emitted name *)
}

let fresh a =
  let s = a.next_slot in
  a.next_slot <- s + 1;
  s

let slot_of_node a n =
  match Hashtbl.find_opt a.node_slot (Signal.id n) with
  | Some s -> s
  | None ->
    let s = fresh a in
    Hashtbl.replace a.node_slot (Signal.id n) s;
    s

let rom_var a r =
  let name = Signal.Rom.name r in
  match Hashtbl.find_opt a.rom_names name with
  | Some v -> v
  | None ->
    let v = Printf.sprintf "rom_%s_%d" (sanitize name) (List.length !(a.roms)) in
    let contents =
      Array.init (Signal.Rom.size r) (fun i ->
          Fixed.mantissa (Signal.Rom.get r i))
    in
    a.roms := (v, contents) :: !(a.roms);
    Hashtbl.replace a.rom_names name v;
    v

(* Slot allocation shared by both emission shapes: nets first, in
   [Cycle_system.nets] order (net i also owns stamp i), then a
   current/next slot pair per register in [all_regs] order.  The native
   host derives every stimulus/probe/poke slot from this contract alone,
   so no layout metadata needs to ride with a cached .cmxs. *)
let make_alloc sys =
  let a =
    {
      next_slot = 0;
      net_slot = Hashtbl.create 64;
      net_fmt = Hashtbl.create 64;
      net_stamp = Hashtbl.create 64;
      reg_cur = Hashtbl.create 64;
      reg_next = Hashtbl.create 64;
      reg_init = ref [];
      node_slot = Hashtbl.create 1024;
      sink_net = Hashtbl.create 64;
      driver_net = Hashtbl.create 64;
      roms = ref [];
      rom_names = Hashtbl.create 8;
    }
  in
  let nets = Cycle_system.nets sys in
  List.iteri
    (fun i (net_name, (dc, dp), sinks) ->
      Hashtbl.replace a.net_slot net_name (fresh a);
      Hashtbl.replace a.net_stamp net_name i;
      Hashtbl.replace a.driver_net (dc, dp) net_name;
      List.iter
        (fun (sc, sp) -> Hashtbl.replace a.sink_net (sc, sp) net_name)
        sinks)
    nets;
  List.iter
    (fun r ->
      let id = Signal.Reg.id r in
      let cur = fresh a and nxt = fresh a in
      Hashtbl.replace a.reg_cur id cur;
      Hashtbl.replace a.reg_next id nxt;
      a.reg_init := (Fixed.mantissa (Signal.Reg.init r), cur) :: !(a.reg_init))
    (Cycle_system.all_regs sys);
  (a, nets)

(* Net formats, as in Compiled_sim: primary inputs and untimed ports
   declare theirs; timed outputs take the producing expression's. *)
let compute_net_formats a sys =
  let set net fmt =
    match Hashtbl.find_opt a.net_fmt net with
    | None -> Hashtbl.replace a.net_fmt net fmt
    | Some f ->
      if not (Fixed.equal_format f fmt) then
        unsupported "emit: net %s is driven with inconsistent formats %s and %s"
          net
          (Fixed.format_to_string f) (Fixed.format_to_string fmt)
  in
  List.iter
    (fun (name, fmt, _) ->
      match Hashtbl.find_opt a.driver_net (name, "out") with
      | Some net -> set net fmt
      | None -> ())
    (Cycle_system.primary_inputs sys);
  List.iter
    (fun (name, k) ->
      List.iter
        (fun (port, _) ->
          match Hashtbl.find_opt a.driver_net (name, port) with
          | Some net -> set net (Dataflow.Kernel.port_format k port)
          | None -> ())
        k.Dataflow.Kernel.k_outputs)
    (Cycle_system.untimed_components sys);
  List.iter
    (fun (cname, fsm) ->
      List.iter
        (fun sfg ->
          List.iter
            (fun (port, e) ->
              match Hashtbl.find_opt a.driver_net (cname, port) with
              | Some net -> set net (Signal.fmt e)
              | None -> ())
            (Sfg.outputs sfg))
        (Fsm.all_sfgs fsm))
    (Cycle_system.timed_components sys)

(* --- expression text ----------------------------------------------------- *)

(* [I64] renders over [int64] cells (the standalone simulator and the
   boxed plugin); [Word] renders over unboxed [int] words and is only
   valid when {!word_mode_ok} proved the bounds. *)
type mode = I64 | Word

let align_shifts (fa : Fixed.format) (fb : Fixed.format) =
  let frac = max fa.Fixed.frac fb.Fixed.frac in
  (frac - fa.Fixed.frac, frac - fb.Fixed.frac)

let lit mode m =
  match mode with
  | I64 -> Printf.sprintf "(%LdL)" m
  | Word -> Printf.sprintf "(%Ld)" m

let zero mode = match mode with I64 -> "0L" | Word -> "0"
let one mode = match mode with I64 -> "1L" | Word -> "1"

let shl_txt mode x k =
  if k = 0 then x
  else
    match mode with
    | I64 -> Printf.sprintf "(shl %s %d)" x k
    | Word -> Printf.sprintf "(%s lsl %d)" x k

let bin_txt mode op64 opw x y =
  match mode with
  | I64 -> Printf.sprintf "(%s %s %s)" op64 x y
  | Word -> Printf.sprintf "(%s %s %s)" x opw y

let wrap_txt (f : Fixed.format) x =
  match f.Fixed.signedness with
  | Fixed.Unsigned -> Printf.sprintf "(wrap_u %d %s)" f.Fixed.width x
  | Fixed.Signed -> Printf.sprintf "(wrap_s %d %s)" f.Fixed.width x

let sat_txt mode (f : Fixed.format) x =
  Printf.sprintf "(sat %s %s %s)"
    (lit mode (Fixed.min_mantissa f))
    (lit mode (Fixed.max_mantissa f))
    x

let round_txt mode rnd k x =
  if k = 0 then x
  else if k > 62 then
    Printf.sprintf "(if %s >= %s then %s else %s)" x (zero mode) (zero mode)
      (match mode with I64 -> "-1L" | Word -> "(-1)")
  else
    match rnd with
    | Fixed.Truncate -> begin
      match mode with
      | I64 -> Printf.sprintf "(Int64.shift_right %s %d)" x k
      | Word -> Printf.sprintf "(%s asr %d)" x k
    end
    | Fixed.Round_nearest -> Printf.sprintf "(rnd_near %d %s)" k x
    | Fixed.Round_even -> Printf.sprintf "(rnd_even %d %s)" k x

let resize_txt mode ?(ctx = "guard") ~round ~overflow (src : Fixed.format)
    (dst : Fixed.format) x =
  let k = src.Fixed.frac - dst.Fixed.frac in
  let ovf v =
    match overflow with
    | Fixed.Wrap -> wrap_txt dst v
    | Fixed.Saturate -> sat_txt mode dst v
  in
  if k > 0 then ovf (round_txt mode round k x)
  else if -k > 62 then
    (* Same semantics as Fixed.resize / the in-process compiled engine:
       zero passes, a nonzero mantissa raises a structured overflow
       carrying the construct, target format and failing cycle. *)
    Printf.sprintf "(if %s = %s then %s else overflow_error %S)" x (zero mode)
      (zero mode)
      (Printf.sprintf "%s: resize to %s: shift too large for nonzero value"
         ctx
         (Fixed.format_to_string dst))
  else ovf (shl_txt mode x (-k))

(* Text of the expression for node [n].  With [~comp:(Some cname)] this
   is a statement-level node whose children are referenced through their
   slots; with [comp = None] it is a pure guard rendered by inline
   recursion (guards cannot read inputs). *)
let rec expr_text mode a ?comp n =
  let s x =
    match comp with
    | Some _ -> Printf.sprintf "v.(%d)" (slot_of_node a x)
    | None -> expr_text mode a x
  in
  let ctx = match comp with Some c -> c | None -> "guard" in
  let nf = Signal.fmt n in
  match Signal.op n with
  | Signal.Const v -> lit mode (Fixed.mantissa v)
  | Signal.Input_read i -> begin
    match comp with
    | None -> unsupported "emit: guard reads input %s" (Signal.Input.name i)
    | Some cname -> begin
      match Hashtbl.find_opt a.sink_net (cname, Signal.Input.name i) with
      | Some net -> Printf.sprintf "v.(%d)" (Hashtbl.find a.net_slot net)
      | None ->
        unsupported "emit: input %s.%s is not connected" cname
          (Signal.Input.name i)
    end
  end
  | Signal.Reg_read r ->
    Printf.sprintf "v.(%d)" (Hashtbl.find a.reg_cur (Signal.Reg.id r))
  | Signal.Add (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    bin_txt mode "Int64.add" "+" (shl_txt mode (s x) ka) (shl_txt mode (s y) kb)
  | Signal.Sub (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    bin_txt mode "Int64.sub" "-" (shl_txt mode (s x) ka) (shl_txt mode (s y) kb)
  | Signal.Mul (x, y) -> bin_txt mode "Int64.mul" "*" (s x) (s y)
  | Signal.Neg x -> begin
    match mode with
    | I64 -> Printf.sprintf "(Int64.neg %s)" (s x)
    | Word -> Printf.sprintf "(- %s)" (s x)
  end
  | Signal.Abs x -> begin
    match mode with
    | I64 -> Printf.sprintf "(Int64.abs %s)" (s x)
    | Word -> Printf.sprintf "(abs %s)" (s x)
  end
  | Signal.And (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (bin_txt mode "Int64.logand" "land" (shl_txt mode (s x) ka)
         (shl_txt mode (s y) kb))
  | Signal.Or (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (bin_txt mode "Int64.logor" "lor" (shl_txt mode (s x) ka)
         (shl_txt mode (s y) kb))
  | Signal.Xor (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    wrap_txt nf
      (bin_txt mode "Int64.logxor" "lxor" (shl_txt mode (s x) ka)
         (shl_txt mode (s y) kb))
  | Signal.Not x -> begin
    match mode with
    | I64 -> wrap_txt nf (Printf.sprintf "(Int64.lognot %s)" (s x))
    | Word -> wrap_txt nf (Printf.sprintf "(lnot %s)" (s x))
  end
  | Signal.Eq (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s = %s then %s else %s)" (shl_txt mode (s x) ka)
      (shl_txt mode (s y) kb) (one mode) (zero mode)
  | Signal.Lt (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s < %s then %s else %s)" (shl_txt mode (s x) ka)
      (shl_txt mode (s y) kb) (one mode) (zero mode)
  | Signal.Le (x, y) ->
    let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
    Printf.sprintf "(if %s <= %s then %s else %s)" (shl_txt mode (s x) ka)
      (shl_txt mode (s y) kb) (one mode) (zero mode)
  | Signal.Mux (sel, x, y) ->
    let rx =
      resize_txt mode ~ctx ~round:Fixed.Truncate ~overflow:Fixed.Wrap
        (Signal.fmt x) nf (s x)
    in
    let ry =
      resize_txt mode ~ctx ~round:Fixed.Truncate ~overflow:Fixed.Wrap
        (Signal.fmt y) nf (s y)
    in
    Printf.sprintf "(if %s <> %s then %s else %s)" (s sel) (zero mode) rx ry
  | Signal.Resize (round, overflow, x) ->
    resize_txt mode ~ctx ~round ~overflow (Signal.fmt x) nf (s x)
  | Signal.Rom_read (r, idx) ->
    let var = rom_var a r in
    let len = Signal.Rom.size r in
    let frac = (Signal.fmt idx).Fixed.frac in
    if frac <= 0 then
      match mode with
      | I64 ->
        Printf.sprintf "%s.(Int64.to_int %s mod %d)" var
          (shl_txt mode (s idx) (-frac))
          len
      | Word ->
        Printf.sprintf "%s.(%s mod %d)" var (shl_txt mode (s idx) (-frac)) len
    else begin
      match mode with
      | I64 ->
        Printf.sprintf "%s.(Int64.to_int (Int64.div %s %LdL) mod %d)" var
          (s idx)
          (Int64.shift_left 1L (min frac 62))
          len
      | Word ->
        Printf.sprintf "%s.((%s / (1 lsl %d)) mod %d)" var (s idx)
          (min frac 62) len
    end
  | Signal.Shift_left (x, _) | Signal.Shift_right (x, _) -> s x

let node_expr_text mode a comp_name n = expr_text mode a ~comp:comp_name n
let pure_expr_text mode a e = expr_text mode a e

(* --- classification (shared logic) --------------------------------------- *)

(* NOTE: every child must be visited even when the answer is already
   known — short-circuiting would leave siblings unclassified, and an
   unclassified input-dependent node would default to block A and read
   stale values. *)
let classify_nodes roots =
  let cls : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let rec go n =
    match Hashtbl.find_opt cls (Signal.id n) with
    | Some b -> b
    | None ->
      let b =
        match Signal.op n with
        | Signal.Input_read _ -> true
        | Signal.Const _ | Signal.Reg_read _ -> false
        | Signal.Neg x | Signal.Abs x | Signal.Not x
        | Signal.Resize (_, _, x)
        | Signal.Rom_read (_, x)
        | Signal.Shift_left (x, _)
        | Signal.Shift_right (x, _) -> go x
        | Signal.Add (x, y) | Signal.Sub (x, y) | Signal.Mul (x, y)
        | Signal.And (x, y) | Signal.Or (x, y) | Signal.Xor (x, y)
        | Signal.Eq (x, y) | Signal.Lt (x, y) | Signal.Le (x, y) ->
          let bx = go x in
          let by = go y in
          bx || by
        | Signal.Mux (s, x, y) ->
          let bs = go s in
          let bx = go x in
          let by = go y in
          bs || bx || by
      in
      Hashtbl.replace cls (Signal.id n) b;
      b
  in
  List.iter (fun r -> ignore (go r)) roots;
  fun n ->
    match Hashtbl.find_opt cls (Signal.id n) with Some b -> b | None -> false

(* --- width-bound analysis (Word-mode safety) ----------------------------- *)

(* A conservative static fixpoint over magnitude bounds: [bits b] means
   every value the node can carry satisfies |v| < 2^b.  OCaml's native
   [int] is 63 bits (62 magnitude bits + sign), so Word mode is safe iff
   every node — including shifted operands and rounding intermediates —
   stays within 62 magnitude bits, and every format width fed to a
   wrap/saturate helper (which computes [1 lsl width]) is at most 61.
   Registers hold raw (unwrapped) committed expression values, so their
   bounds come from the same fixpoint, seeded with the initial value. *)

exception Too_wide

let value_limit = 62
let width_limit = 61

let bits_of_int64 m =
  let neg = Int64.compare m 0L < 0 in
  let m = if neg then Int64.neg m else m in
  if Int64.compare m 0L < 0 then 63 (* Int64.min_int *)
  else begin
    let b = ref 0 in
    while !b < 63 && Int64.compare (Int64.shift_left 1L !b) m <= 0 do
      incr b
    done;
    !b
  end

let checked b = if b > value_limit then raise Too_wide else b

let checked_width (f : Fixed.format) =
  if f.Fixed.width > width_limit then raise Too_wide else f.Fixed.width

let rec bound_expr a memo net_bits reg_bits comp n =
  match Hashtbl.find_opt memo (Signal.id n) with
  | Some b -> b
  | None ->
    let bx x = bound_expr a memo net_bits reg_bits comp x in
    let nf = Signal.fmt n in
    let resize_bound ~round ~overflow (src : Fixed.format)
        (dst : Fixed.format) b =
      let k = src.Fixed.frac - dst.Fixed.frac in
      ignore overflow;
      if k > 62 then 1
      else if k > 0 then begin
        (match round with
        | Fixed.Truncate -> ()
        | Fixed.Round_nearest | Fixed.Round_even ->
          ignore (checked (max b (k - 1) + 1)));
        checked_width dst
      end
      else if -k > 62 then 1
      else begin
        ignore (checked (b + -k));
        checked_width dst
      end
    in
    let b =
      match Signal.op n with
      | Signal.Const v -> bits_of_int64 (Fixed.mantissa v)
      | Signal.Input_read i -> begin
        match Hashtbl.find_opt a.sink_net (comp, Signal.Input.name i) with
        | Some net -> (
          match Hashtbl.find_opt net_bits net with Some b -> b | None -> 0)
        | None -> 0
      end
      | Signal.Reg_read r -> begin
        match Hashtbl.find_opt reg_bits (Signal.Reg.id r) with
        | Some b -> b
        | None -> 0
      end
      | Signal.Add (x, y) | Signal.Sub (x, y) ->
        let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
        let bx' = checked (bx x + ka) and by' = checked (bx y + kb) in
        max bx' by' + 1
      | Signal.Mul (x, y) -> bx x + bx y
      | Signal.Neg x | Signal.Abs x -> bx x
      | Signal.And (x, y) | Signal.Or (x, y) | Signal.Xor (x, y) ->
        let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
        ignore (checked (bx x + ka));
        ignore (checked (bx y + kb));
        checked_width nf
      | Signal.Not x ->
        ignore (checked (bx x + 1));
        checked_width nf
      | Signal.Eq (x, y) | Signal.Lt (x, y) | Signal.Le (x, y) ->
        let ka, kb = align_shifts (Signal.fmt x) (Signal.fmt y) in
        ignore (checked (bx x + ka));
        ignore (checked (bx y + kb));
        1
      | Signal.Mux (sel, x, y) ->
        ignore (bx sel);
        let rx =
          resize_bound ~round:Fixed.Truncate ~overflow:Fixed.Wrap
            (Signal.fmt x) nf (bx x)
        in
        let ry =
          resize_bound ~round:Fixed.Truncate ~overflow:Fixed.Wrap
            (Signal.fmt y) nf (bx y)
        in
        max rx ry
      | Signal.Resize (round, overflow, x) ->
        resize_bound ~round ~overflow (Signal.fmt x) nf (bx x)
      | Signal.Rom_read (r, idx) ->
        let bidx = bx idx in
        let frac = (Signal.fmt idx).Fixed.frac in
        if frac <= 0 then ignore (checked (bidx + -frac))
        else if frac > width_limit then raise Too_wide;
        let m = ref 0 in
        for i = 0 to Signal.Rom.size r - 1 do
          m := max !m (bits_of_int64 (Fixed.mantissa (Signal.Rom.get r i)))
        done;
        !m
      | Signal.Shift_left (x, _) | Signal.Shift_right (x, _) -> bx x
    in
    let b = checked b in
    Hashtbl.replace memo (Signal.id n) b;
    b

(* [word_mode_ok a sys] decides whether Word-mode emission is exact for
   [sys].  Monotone relaxation over per-net / per-register bounds; any
   bound exceeding the 62-bit magnitude limit (or any wrap width above
   61) rejects.  Termination: bounds only grow and are capped. *)
let word_mode_ok a sys =
  try
    let net_bits : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let reg_bits : (int, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (name, (fmt : Fixed.format), _) ->
        match Hashtbl.find_opt a.driver_net (name, "out") with
        | Some net -> Hashtbl.replace net_bits net (checked_width fmt)
        | None -> ())
      (Cycle_system.primary_inputs sys);
    List.iter
      (fun (name, k) ->
        List.iter
          (fun (port, _) ->
            match Hashtbl.find_opt a.driver_net (name, port) with
            | Some net ->
              Hashtbl.replace net_bits net
                (checked_width (Dataflow.Kernel.port_format k port))
            | None -> ())
          k.Dataflow.Kernel.k_outputs)
      (Cycle_system.untimed_components sys);
    List.iter
      (fun r ->
        Hashtbl.replace reg_bits (Signal.Reg.id r)
          (checked (bits_of_int64 (Fixed.mantissa (Signal.Reg.init r)))))
      (Cycle_system.all_regs sys);
    let relax tbl key b =
      let old = match Hashtbl.find_opt tbl key with Some o -> o | None -> 0 in
      if b > old then begin
        Hashtbl.replace tbl key b;
        true
      end
      else false
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (cname, fsm) ->
          List.iter
            (fun tr ->
              let memo = Hashtbl.create 256 in
              let bound n = bound_expr a memo net_bits reg_bits cname n in
              ignore (bound (Fsm.guard_expr tr.Fsm.t_guard));
              List.iter
                (fun sfg ->
                  List.iter
                    (fun (port, e) ->
                      let b = bound e in
                      match Hashtbl.find_opt a.driver_net (cname, port) with
                      | Some net ->
                        if relax net_bits net b then changed := true
                      | None -> ())
                    (Sfg.outputs sfg);
                  List.iter
                    (fun (reg, e) ->
                      let b = bound e in
                      if relax reg_bits (Signal.Reg.id reg) b then
                        changed := true)
                    (Sfg.assigns sfg))
                tr.Fsm.t_actions)
            (Fsm.transitions fsm))
        (Cycle_system.timed_components sys)
    done;
    (* Inlined RAM models compute [Fixed.to_int] of the address and a
       truncate/wrap resize of the write data in plugin code; both may
       shift left, so their intermediates must obey the same magnitude
       limit as every other node. *)
    List.iter
      (fun (name, k) ->
        match k.Dataflow.Kernel.k_model with
        | Some (Dataflow.Kernel.Ram_model { data_fmt; addr_port; wdata_port; _ })
          ->
          ignore (checked_width data_fmt);
          let input_net_bits port =
            match Hashtbl.find_opt a.sink_net (name, port) with
            | None -> None
            | Some net ->
              let fmt =
                match Hashtbl.find_opt a.net_fmt net with
                | Some f -> f
                | None -> Dataflow.Kernel.port_format k port
              in
              let b =
                match Hashtbl.find_opt net_bits net with
                | Some b -> b
                | None -> 0
              in
              Some (fmt, b)
          in
          (match input_net_bits addr_port with
          | Some (f, b) when f.Fixed.frac < 0 ->
            ignore (checked (b + -f.Fixed.frac))
          | _ -> ());
          (match input_net_bits wdata_port with
          | Some (f, b) ->
            let shift = data_fmt.Fixed.frac - f.Fixed.frac in
            if shift > 0 then ignore (checked (b + shift))
          | None -> ())
        | _ -> ())
      (Cycle_system.untimed_components sys);
    true
  with Too_wide -> false

(* --- shared per-component rendering -------------------------------------- *)

type comp_text = {
  ct_name : string;
  ct_cid : string;  (* sanitized identifier *)
  ct_index : int;  (* index into the FSM-state array *)
  ct_select : string;
  ct_block_a : string;
  ct_block_b : string;
  ct_commit : string;
  ct_initial : int;
  ct_states : int;
}

(* Renders one match arm set per component.  FSM states live in a shared
   [states : int array] (indexed by component order) in both emission
   shapes, so the native host can read and force them through the ABI. *)
let build_comp_texts mode a sys ~b_written ~b_read ~n_statements =
  let all_timed = Cycle_system.timed_components sys in
  List.mapi
    (fun ci (cname, fsm) ->
      let cid = sanitize cname in
      let transitions = Array.of_list (Fsm.transitions fsm) in
      let block_a = Buffer.create 1024
      and block_b = Buffer.create 1024
      and commits = Buffer.create 256 in
      let ba fmt = Printf.ksprintf (Buffer.add_string block_a) fmt in
      let bb fmt = Printf.ksprintf (Buffer.add_string block_b) fmt in
      let bc fmt = Printf.ksprintf (Buffer.add_string commits) fmt in
      Array.iteri
        (fun ti tr ->
          let roots =
            List.concat_map
              (fun sfg ->
                List.map snd (Sfg.outputs sfg) @ List.map snd (Sfg.assigns sfg))
              tr.Fsm.t_actions
          in
          let is_b = classify_nodes roots in
          let emitted = Hashtbl.create 128 in
          let a_stmts = ref [] and b_stmts = ref [] and c_stmts = ref [] in
          let emit_node n =
            Signal.fold_dag n ~init:() ~f:(fun () x ->
                if not (Hashtbl.mem emitted (Signal.id x)) then begin
                  Hashtbl.add emitted (Signal.id x) ();
                  let txt =
                    Printf.sprintf "v.(%d) <- %s" (slot_of_node a x)
                      (node_expr_text mode a cname x)
                  in
                  if is_b x then b_stmts := txt :: !b_stmts
                  else a_stmts := txt :: !a_stmts;
                  incr n_statements;
                  match Signal.op x with
                  | Signal.Input_read i -> begin
                    match
                      Hashtbl.find_opt a.sink_net (cname, Signal.Input.name i)
                    with
                    | Some net -> Hashtbl.replace b_read (cname, net) ()
                    | None -> ()
                  end
                  | _ -> ()
                end)
          in
          List.iter
            (fun sfg ->
              List.iter
                (fun (port, e) ->
                  emit_node e;
                  match Hashtbl.find_opt a.driver_net (cname, port) with
                  | None -> ()
                  | Some net ->
                    let txt =
                      Printf.sprintf "v.(%d) <- v.(%d); stamp.(%d) <- !cycle"
                        (Hashtbl.find a.net_slot net)
                        (slot_of_node a e)
                        (Hashtbl.find a.net_stamp net)
                    in
                    incr n_statements;
                    if is_b e then begin
                      b_stmts := txt :: !b_stmts;
                      Hashtbl.replace b_written net cname
                    end
                    else a_stmts := txt :: !a_stmts)
                (Sfg.outputs sfg);
              List.iter
                (fun (reg, e) ->
                  emit_node e;
                  let nxt = Hashtbl.find a.reg_next (Signal.Reg.id reg) in
                  let cur = Hashtbl.find a.reg_cur (Signal.Reg.id reg) in
                  let txt =
                    Printf.sprintf "v.(%d) <- v.(%d)" nxt (slot_of_node a e)
                  in
                  if is_b e then b_stmts := txt :: !b_stmts
                  else a_stmts := txt :: !a_stmts;
                  n_statements := !n_statements + 2;
                  c_stmts := Printf.sprintf "v.(%d) <- v.(%d)" cur nxt :: !c_stmts)
                (Sfg.assigns sfg))
            tr.Fsm.t_actions;
          let body stmts =
            match List.rev stmts with
            | [] -> "()"
            | l -> String.concat ";\n      " l
          in
          ba "    | %d ->\n      %s\n" ti (body !a_stmts);
          bb "    | %d ->\n      %s\n" ti (body !b_stmts);
          bc "    | %d ->\n      %s;\n      states.(%d) <- %d\n" ti
            (body !c_stmts) ci
            (Fsm.state_index tr.Fsm.t_goto))
        transitions;
      (* Guard selection per state. *)
      let sel = Buffer.create 512 in
      let bs fmt = Printf.ksprintf (Buffer.add_string sel) fmt in
      List.iter
        (fun st ->
          bs "    | %d ->\n" (Fsm.state_index st);
          let trs =
            Array.to_list transitions
            |> List.mapi (fun i tr -> (i, tr))
            |> List.filter (fun (_, tr) -> Fsm.state_equal tr.Fsm.t_from st)
          in
          let rec chain = function
            | [] -> "(-1)"
            | (i, tr) :: rest ->
              let g = Fsm.guard_expr tr.Fsm.t_guard in
              Printf.sprintf "if %s <> %s then %d else %s"
                (pure_expr_text mode a g) (zero mode) i (chain rest)
          in
          bs "      %s\n" (chain trs))
        (Fsm.states fsm);
      {
        ct_name = cname;
        ct_cid = cid;
        ct_index = ci;
        ct_select = Buffer.contents sel;
        ct_block_a = Buffer.contents block_a;
        ct_block_b = Buffer.contents block_b;
        ct_commit = Buffer.contents commits;
        ct_initial = Fsm.state_index (Fsm.initial_state fsm);
        ct_states = List.length (Fsm.states fsm);
      })
    all_timed

(* Topological order of the B-phase units: timed components followed by
   untimed kernels (as (kernel name, nets read) pairs; kernel outputs
   were pre-seeded into [b_written]).  Returns indices into the combined
   unit list. *)
let schedule_b_units ~b_written ~b_read comp_texts kernel_reads =
  let names =
    List.map (fun ct -> ct.ct_name) comp_texts
    @ List.map fst kernel_reads
  in
  let idx = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace idx n i) names;
  let n_units = List.length names in
  let succs = Array.make (max 1 n_units) [] in
  let indeg = Array.make (max 1 n_units) 0 in
  let add_edge writer reader =
    if writer <> reader then begin
      let w = Hashtbl.find idx writer and r = Hashtbl.find idx reader in
      succs.(w) <- r :: succs.(w);
      indeg.(r) <- indeg.(r) + 1
    end
  in
  Hashtbl.iter
    (fun (reader, net) () ->
      match Hashtbl.find_opt b_written net with
      | Some writer -> add_edge writer reader
      | None -> ())
    b_read;
  List.iter
    (fun (kname, nets_read) ->
      List.iter
        (fun net ->
          match Hashtbl.find_opt b_written net with
          | Some writer -> add_edge writer kname
          | None -> ())
        nets_read)
    kernel_reads;
  let order = ref [] and queue = Queue.create () and visited = ref 0 in
  for i = 0 to n_units - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr visited;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !visited <> n_units then
    unsupported "emit: combinational component cycle";
  List.rev !order

(* Shared text fragments: mode helpers, ROMs, register initialization. *)

let emit_helpers buf mode =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match mode with
  | I64 ->
    pf "let shl x k = if k = 0 then x else Int64.shift_left x k\n";
    pf "let wrap_u w x = Int64.logand x (Int64.sub (Int64.shift_left 1L w) 1L)\n";
    pf "let wrap_s w x =\n";
    pf "  let m = Int64.logand x (Int64.sub (Int64.shift_left 1L w) 1L) in\n";
    pf "  if Int64.logand m (Int64.shift_left 1L (w - 1)) <> 0L then\n";
    pf "    Int64.sub m (Int64.shift_left 1L w) else m\n";
    pf "let sat lo hi x = if x < lo then lo else if x > hi then hi else x\n";
    pf "let rnd_near k x = Int64.shift_right (Int64.add x (Int64.shift_left 1L (k-1))) k\n";
    pf "let rnd_even k x =\n";
    pf "  let f = Int64.shift_right x k in\n";
    pf "  let r = Int64.sub x (Int64.shift_left f k) in\n";
    pf "  let h = Int64.shift_left 1L (k-1) in\n";
    pf "  if r > h then Int64.add f 1L else if r < h then f\n";
    pf "  else if Int64.logand f 1L = 1L then Int64.add f 1L else f\n";
    pf "let _ = shl 0L 0, wrap_u 1 0L, wrap_s 1 0L, sat 0L 0L 0L, rnd_near 1 0L, rnd_even 1 0L\n";
    pf "let _ = overflow_error\n\n"
  | Word ->
    pf "let wrap_u w x = x land ((1 lsl w) - 1)\n";
    pf "let wrap_s w x =\n";
    pf "  let m = x land ((1 lsl w) - 1) in\n";
    pf "  if m land (1 lsl (w - 1)) <> 0 then m - (1 lsl w) else m\n";
    pf "let sat lo hi x = if x < lo then lo else if x > hi then hi else x\n";
    pf "let rnd_near k x = (x + (1 lsl (k - 1))) asr k\n";
    pf "let rnd_even k x =\n";
    pf "  let f = x asr k in\n";
    pf "  let r = x - (f lsl k) in\n";
    pf "  let h = 1 lsl (k - 1) in\n";
    pf "  if r > h then f + 1 else if r < h then f\n";
    pf "  else if f land 1 = 1 then f + 1 else f\n";
    pf "let _ = wrap_u 1 0, wrap_s 1 0, sat 0 0 0, rnd_near 1 0, rnd_even 1 0\n";
    pf "let _ = overflow_error\n\n"

let emit_roms buf mode a =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (var, contents) ->
      pf "let %s = [|" var;
      Array.iter (fun m -> pf " %s;" (lit mode m)) contents;
      pf " |]\n")
    (List.rev !(a.roms))

let emit_reg_inits buf mode a =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "let () = (* register initial values *)\n";
  List.iter
    (fun (init, cur) -> pf "  v.(%d) <- %s;\n" cur (lit mode init))
    !(a.reg_init);
  pf "  ()\n\n"

let emit_comp_funs buf comp_texts =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun ct ->
      pf "let sel_%s = ref (-1)\n" ct.ct_cid;
      pf "let select_%s () =\n  sel_%s := (match states.(%d) with\n%s    | _ -> (-1))\n"
        ct.ct_cid ct.ct_cid ct.ct_index ct.ct_select;
      pf "let block_a_%s () =\n  (match !sel_%s with\n%s    | _ -> ())\n"
        ct.ct_cid ct.ct_cid ct.ct_block_a;
      pf "let block_b_%s () =\n  (match !sel_%s with\n%s    | _ -> ())\n"
        ct.ct_cid ct.ct_cid ct.ct_block_b;
      pf "let commit_%s () =\n  (match !sel_%s with\n%s    | _ -> ())\n\n"
        ct.ct_cid ct.ct_cid ct.ct_commit)
    comp_texts

let emit_states buf comp_texts =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "let states : int array = [|";
  List.iter (fun ct -> pf " %d;" ct.ct_initial) comp_texts;
  pf " |]\n"

(* --- standalone emission --------------------------------------------------- *)

let emit_ocaml sys ~cycles =
  if Cycle_system.untimed_components sys <> [] then
    unsupported "emit_ocaml: untimed kernels cannot be embedded in source";
  let mode = I64 in
  let a, nets = make_alloc sys in
  let buf = Buffer.create 65536 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let all_timed = Cycle_system.timed_components sys in
  (* Pre-allocate node slots. *)
  List.iter
    (fun (_, fsm) ->
      List.iter
        (fun tr ->
          List.iter
            (fun sfg ->
              List.iter
                (fun root ->
                  Signal.fold_dag root ~init:() ~f:(fun () n ->
                      ignore (slot_of_node a n)))
                (List.map snd (Sfg.outputs sfg) @ List.map snd (Sfg.assigns sfg)))
            tr.Fsm.t_actions)
        (Fsm.transitions fsm))
    all_timed;
  (* Stimuli: evaluate now, require totality. *)
  let stim_rows =
    List.filter_map
      (fun (name, _fmt, stim) ->
        match Hashtbl.find_opt a.driver_net (name, "out") with
        | None -> None
        | Some net ->
          let vals =
            Array.init cycles (fun c ->
                match stim c with
                | Some v -> Fixed.mantissa v
                | None ->
                  unsupported
                    "emit_ocaml: stimulus %s produced no token at cycle %d"
                    name c)
          in
          Some (sanitize name, Hashtbl.find a.net_slot net,
                Hashtbl.find a.net_stamp net, vals))
      (Cycle_system.primary_inputs sys)
  in
  let b_written = Hashtbl.create 32 in
  let b_read = Hashtbl.create 32 in
  let n_statements = ref 0 in
  let comp_texts =
    build_comp_texts mode a sys ~b_written ~b_read ~n_statements
  in
  let b_order = schedule_b_units ~b_written ~b_read comp_texts [] in
  let comp_arr = Array.of_list comp_texts in
  (* Probes. *)
  let probe_rows =
    List.filter_map
      (fun pname ->
        match Hashtbl.find_opt a.sink_net (pname, "in") with
        | None -> None
        | Some net ->
          Some (pname, Hashtbl.find a.net_slot net, Hashtbl.find a.net_stamp net))
      (Cycle_system.probes sys)
  in
  (* --- assemble the file --- *)
  pf "(* Generated by ocapi-ml: compiled simulator for system %S. *)\n"
    (Cycle_system.name sys);
  pf "(* %d cycles of embedded stimuli; prints \"<cycle> <probe> <mantissa>\". *)\n\n"
    cycles;
  pf "let v = Array.make %d 0L\n" (max 1 a.next_slot);
  pf "let stamp = Array.make %d (-1)\n" (max 1 (List.length nets));
  pf "let cycle = ref 0\n";
  pf "exception Overflow of string\n";
  pf "let overflow_error what =\n";
  pf "  raise (Overflow (Printf.sprintf \"compiled/%%s (cycle %%d)\" what !cycle))\n";
  emit_helpers buf mode;
  emit_roms buf mode a;
  List.iter
    (fun (name, slot, stampi, vals) ->
      pf "let stim_%s = [|" name;
      Array.iter (fun m -> pf " %LdL;" m) vals;
      pf " |]\n";
      pf "let stim_%s_slot = %d\nlet stim_%s_stamp = %d\n" name slot name stampi)
    stim_rows;
  pf "\n";
  emit_reg_inits buf mode a;
  emit_states buf comp_texts;
  emit_comp_funs buf comp_texts;
  pf "let step () =\n";
  List.iter
    (fun (name, _, _, _) ->
      pf "  v.(stim_%s_slot) <- stim_%s.(!cycle); stamp.(stim_%s_stamp) <- !cycle;\n"
        name name name)
    stim_rows;
  List.iter (fun ct -> pf "  select_%s ();\n" ct.ct_cid) comp_texts;
  List.iter (fun ct -> pf "  block_a_%s ();\n" ct.ct_cid) comp_texts;
  List.iter (fun i -> pf "  block_b_%s ();\n" comp_arr.(i).ct_cid) b_order;
  List.iter
    (fun (pname, slot, stampi) ->
      pf "  (if stamp.(%d) = !cycle then Printf.printf \"%%d %s %%Ld\\n\" !cycle v.(%d));\n"
        stampi pname slot)
    probe_rows;
  List.iter (fun ct -> pf "  commit_%s ();\n" ct.ct_cid) comp_texts;
  pf "  incr cycle\n\n";
  pf "let () = for _ = 1 to %d do step () done\n" cycles;
  Buffer.contents buf

(* --- plugin emission ------------------------------------------------------- *)

(* Everything the native host needs to wire a loaded plugin to the
   design: slot/stamp indices for stimuli and probes, register and FSM
   inventories, kernel port wiring.  Derived from the same allocation
   the plugin text was rendered from; plain data, so it can be
   marshalled into a sidecar next to a cached .cmxs. *)
type plugin_meta = {
  pm_version : int;
  pm_packed : bool;  (* Word mode (true) or boxed int64 mode *)
  pm_slots : int;
  pm_stamp_count : int;
  pm_statements : int;
  pm_stims : (string * int * int) list;  (* input name, slot, stamp *)
  pm_probes : (string * int * int * Fixed.format) list;
      (* probe name, slot, stamp, carried format *)
  pm_regs : (string * Fixed.format * int) list;
      (* register name, declared format, current-value slot;
         in Cycle_system.all_regs order *)
  pm_comps : (string * int) list;  (* timed component name, state count *)
  pm_kernels :
    (string
    * (string * int * Fixed.format) list  (* input port, slot, format *)
    * (string * int * int) list)  (* output port, slot, stamp *)
    list;  (* in Cycle_system.untimed_components order *)
}

(* An untimed kernel carrying a {!Dataflow.Kernel.model} is inlined
   into the plugin instead of crossing the host boundary: per-firing
   token boxing through the closure interface is the dominant cycle
   cost of RAM-heavy designs (the DECT transceiver drives seven RAM
   cells every cycle), and the model pins down bit-exact semantics the
   generated code can reproduce directly. *)
type ram_info = {
  ri_id : int;  (* per-plugin RAM ordinal, for identifier naming *)
  ri_words : int;
  ri_data_fmt : Fixed.format;
  ri_addr_slot : int;
  ri_addr_fmt : Fixed.format;
  ri_wdata_slot : int;
  ri_wdata_fmt : Fixed.format;
  ri_we_slot : int;
  ri_rdata : (int * int) option;  (* slot, stamp; None if unconnected *)
}

(* [Fixed.to_int] of the address value, rendered over the mode's cells.
   Word mode is exact because {!word_mode_ok} checked the left-shift
   bound for negative fractions, and a positive fraction >= 62 divides
   a sub-2^62 magnitude to zero exactly as [Int64.div] does. *)
let ram_to_int_txt mode ri =
  let f = ri.ri_addr_fmt.Fixed.frac in
  match mode with
  | Word ->
    if f = 0 then Printf.sprintf "v.(%d)" ri.ri_addr_slot
    else if f < 0 then Printf.sprintf "(v.(%d) lsl %d)" ri.ri_addr_slot (-f)
    else if f > 61 then "0"
    else Printf.sprintf "(v.(%d) / (1 lsl %d))" ri.ri_addr_slot f
  | I64 ->
    if f = 0 then Printf.sprintf "(Int64.to_int v.(%d))" ri.ri_addr_slot
    else if f < 0 then
      Printf.sprintf "(Int64.to_int (Int64.shift_left v.(%d) %d))"
        ri.ri_addr_slot (-f)
    else
      Printf.sprintf
        "(Int64.to_int (Int64.div v.(%d) (Int64.shift_left 1L %d)))"
        ri.ri_addr_slot (min f 62)

(* The firing of Ram_model, as in Ram_cell.kernel: produce the
   pre-write word at the wrapped address, stage the resized write when
   the enable is true (the commit section applies it). *)
let ram_fire_lines mode ri =
  let i = ri.ri_id in
  [
    Printf.sprintf "(let a_ = %s mod %d in" (ram_to_int_txt mode ri)
      ri.ri_words;
    Printf.sprintf " let a_ = if a_ < 0 then a_ + %d else a_ in" ri.ri_words;
  ]
  @ (match ri.ri_rdata with
    | Some (slot, stampi) ->
      [
        Printf.sprintf " v.(%d) <- ram_%d.(a_);" slot i;
        Printf.sprintf " stamp.(%d) <- !cycle;" stampi;
      ]
    | None -> [])
  @ [
      Printf.sprintf " if v.(%d) <> %s then begin" ri.ri_we_slot (zero mode);
      Printf.sprintf "   ram_%d_pa := a_;" i;
      Printf.sprintf "   ram_%d_pv := %s" i
        (resize_txt mode ~ctx:"ram" ~round:Fixed.Truncate ~overflow:Fixed.Wrap
           ri.ri_wdata_fmt ri.ri_data_fmt
           (Printf.sprintf "v.(%d)" ri.ri_wdata_slot));
      " end";
      Printf.sprintf " else ram_%d_pa := (-1));" i;
    ]

let emit_plugin sys =
  let a, nets = make_alloc sys in
  compute_net_formats a sys;
  let all_timed = Cycle_system.timed_components sys in
  List.iter
    (fun (_, fsm) ->
      List.iter
        (fun tr ->
          List.iter
            (fun sfg ->
              List.iter
                (fun root ->
                  Signal.fold_dag root ~init:() ~f:(fun () n ->
                      ignore (slot_of_node a n)))
                (List.map snd (Sfg.outputs sfg) @ List.map snd (Sfg.assigns sfg)))
            tr.Fsm.t_actions)
        (Fsm.transitions fsm))
    all_timed;
  let mode = if word_mode_ok a sys then Word else I64 in
  (* Kernel wiring, as in Compiled_sim.compile. *)
  let kernels =
    List.map
      (fun (cname, k) ->
        let inputs =
          List.map
            (fun (port, _) ->
              match Hashtbl.find_opt a.sink_net (cname, port) with
              | Some net ->
                let fmt =
                  match Hashtbl.find_opt a.net_fmt net with
                  | Some f -> f
                  | None -> Dataflow.Kernel.port_format k port
                in
                (port, Hashtbl.find a.net_slot net, fmt)
              | None ->
                unsupported "emit_plugin: kernel %s input %s unconnected" cname
                  port)
            k.Dataflow.Kernel.k_inputs
        in
        let outputs =
          List.filter_map
            (fun (port, _) ->
              match Hashtbl.find_opt a.driver_net (cname, port) with
              | Some net ->
                Some
                  (port, Hashtbl.find a.net_slot net,
                   Hashtbl.find a.net_stamp net)
              | None -> None)
            k.Dataflow.Kernel.k_outputs
        in
        (cname, k, inputs, outputs))
      (Cycle_system.untimed_components sys)
  in
  (* Partition: kernels carrying an inlinable declarative model run
     entirely inside the plugin; the rest keep crossing the host
     boundary through the closure arrays.  Host indices are assigned
     over the surviving kernels only, so [pm_kernels] and the plugin's
     closure arrays stay index-aligned. *)
  let next_ram = ref 0 in
  let next_host = ref 0 in
  let kunits =
    List.map
      (fun (cname, k, inputs, outputs) ->
        let host () =
          let hj = !next_host in
          incr next_host;
          `Host (hj, (cname, inputs, outputs))
        in
        match k.Dataflow.Kernel.k_model with
        | Some
            (Dataflow.Kernel.Ram_model
               { words; data_fmt; addr_port; wdata_port; we_port; rdata_port })
          -> (
          let inp p =
            List.find_opt (fun (q, _, _) -> String.equal q p) inputs
          in
          match (inp addr_port, inp wdata_port, inp we_port) with
          | Some (_, aslot, afmt), Some (_, wslot, wfmt), Some (_, eslot, _) ->
            let ri =
              {
                ri_id = !next_ram;
                ri_words = words;
                ri_data_fmt = data_fmt;
                ri_addr_slot = aslot;
                ri_addr_fmt = afmt;
                ri_wdata_slot = wslot;
                ri_wdata_fmt = wfmt;
                ri_we_slot = eslot;
                ri_rdata =
                  List.find_map
                    (fun (p, slot, st) ->
                      if String.equal p rdata_port then Some (slot, st)
                      else None)
                    outputs;
              }
            in
            incr next_ram;
            `Inline ri
          | _ -> host ())
        | _ -> host ())
      kernels
  in
  let rams =
    List.filter_map (function `Inline ri -> Some ri | `Host _ -> None) kunits
  in
  let host_kernels =
    List.filter_map
      (function `Host (_, row) -> Some row | `Inline _ -> None)
      kunits
  in
  let kunit_arr = Array.of_list kunits in
  let b_written = Hashtbl.create 32 in
  let b_read = Hashtbl.create 32 in
  (* Kernel outputs are always B-phase-written (inlined or not). *)
  List.iter
    (fun (kname, _, _, outputs) ->
      List.iter
        (fun (port, _, _) ->
          match Hashtbl.find_opt a.driver_net (kname, port) with
          | Some net -> Hashtbl.replace b_written net kname
          | None -> ())
        outputs)
    kernels;
  let n_statements = ref 0 in
  let comp_texts =
    build_comp_texts mode a sys ~b_written ~b_read ~n_statements
  in
  let kernel_reads =
    List.map
      (fun (kname, _, inputs, _) ->
        ( kname,
          List.map
            (fun (port, _, _) -> Hashtbl.find a.sink_net (kname, port))
            inputs ))
      kernels
  in
  let b_order = schedule_b_units ~b_written ~b_read comp_texts kernel_reads in
  let n_comps = List.length comp_texts in
  let comp_arr = Array.of_list comp_texts in
  let n_kernels = List.length host_kernels in
  let stim_rows =
    List.filter_map
      (fun (name, _fmt, _stim) ->
        match Hashtbl.find_opt a.driver_net (name, "out") with
        | None -> None
        | Some net ->
          Some (name, Hashtbl.find a.net_slot net, Hashtbl.find a.net_stamp net))
      (Cycle_system.primary_inputs sys)
  in
  let probe_rows =
    List.filter_map
      (fun pname ->
        match Hashtbl.find_opt a.sink_net (pname, "in") with
        | None -> None
        | Some net ->
          let fmt =
            match Hashtbl.find_opt a.net_fmt net with
            | Some f -> f
            | None ->
              unsupported "emit_plugin: probe %s net %s has unknown format"
                pname net
          in
          Some
            (pname, Hashtbl.find a.net_slot net, Hashtbl.find a.net_stamp net,
             fmt))
      (Cycle_system.probes sys)
  in
  let reg_rows =
    Cycle_system.all_regs sys
    |> List.map (fun r ->
           ( Signal.Reg.name r,
             Signal.Reg.fmt r,
             Hashtbl.find a.reg_cur (Signal.Reg.id r) ))
  in
  let buf = Buffer.create 65536 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "(* Generated by ocapi-ml: native simulator plugin for system %S. *)\n"
    (Cycle_system.name sys);
  pf "(* Emitter v%d, %s value store; loaded via Dynlink, driven through\n"
    emitter_version
    (match mode with Word -> "unboxed int" | I64 -> "int64");
  pf "   the Ocapi_native_abi handoff record. *)\n\n";
  (match mode with
  | Word -> pf "let v = Array.make %d 0\n" (max 1 a.next_slot)
  | I64 -> pf "let v = Array.make %d 0L\n" (max 1 a.next_slot));
  pf "let stamp = Array.make %d (-1)\n" (max 1 (List.length nets));
  pf "let cycle = ref 0\n";
  pf "let overflow_error what =\n";
  pf "  raise (Ocapi_native_abi.Native_overflow\n";
  pf "           (Printf.sprintf \"%%s (cycle %%d)\" what !cycle))\n";
  emit_helpers buf mode;
  emit_roms buf mode a;
  (* Inlined RAM stores: backing array + single staged write (pa < 0
     means nothing staged), mirroring Ram_cell's [pending] ref. *)
  List.iter
    (fun ri ->
      pf "let ram_%d = Array.make %d %s\n" ri.ri_id ri.ri_words (zero mode);
      pf "let ram_%d_pa = ref (-1)\n" ri.ri_id;
      pf "let ram_%d_pv = ref %s\n" ri.ri_id (zero mode))
    rams;
  if rams <> [] then pf "\n";
  List.iter
    (fun ri ->
      pf "let commit_ram_%d () =\n" ri.ri_id;
      pf "  if !ram_%d_pa >= 0 then begin\n" ri.ri_id;
      pf "    ram_%d.(!ram_%d_pa) <- !ram_%d_pv;\n" ri.ri_id ri.ri_id ri.ri_id;
      pf "    ram_%d_pa := (-1)\n" ri.ri_id;
      pf "  end\n\n")
    rams;
  pf "let kernels : (unit -> unit) array = Array.make %d (fun () -> ())\n"
    n_kernels;
  pf "let kernel_commits : (unit -> unit) array = Array.make %d (fun () -> ())\n\n"
    n_kernels;
  emit_reg_inits buf mode a;
  emit_states buf comp_texts;
  emit_comp_funs buf comp_texts;
  pf "let step () =\n";
  List.iter (fun ct -> pf "  select_%s ();\n" ct.ct_cid) comp_texts;
  List.iter (fun ct -> pf "  block_a_%s ();\n" ct.ct_cid) comp_texts;
  List.iter
    (fun i ->
      if i < n_comps then pf "  block_b_%s ();\n" comp_arr.(i).ct_cid
      else
        match kunit_arr.(i - n_comps) with
        | `Inline ri ->
          List.iter (fun line -> pf "  %s\n" line) (ram_fire_lines mode ri)
        | `Host (hj, _) -> pf "  kernels.(%d) ();\n" hj)
    b_order;
  List.iter
    (fun i ->
      if i >= n_comps then
        match kunit_arr.(i - n_comps) with
        | `Inline ri -> pf "  commit_ram_%d ();\n" ri.ri_id
        | `Host (hj, _) -> pf "  kernel_commits.(%d) ();\n" hj)
    b_order;
  List.iter (fun ct -> pf "  commit_%s ();\n" ct.ct_cid) comp_texts;
  pf "  incr cycle\n\n";
  pf "let reset () =\n";
  pf "  cycle := 0;\n";
  pf "  Array.fill stamp 0 %d (-1);\n" (max 1 (List.length nets));
  List.iter
    (fun (init, cur) -> pf "  v.(%d) <- %s;\n" cur (lit mode init))
    !(a.reg_init);
  List.iter
    (fun ct ->
      pf "  states.(%d) <- %d;\n" ct.ct_index ct.ct_initial;
      pf "  sel_%s := (-1);\n" ct.ct_cid)
    comp_texts;
  List.iter
    (fun ri ->
      pf "  Array.fill ram_%d 0 %d %s;\n" ri.ri_id ri.ri_words (zero mode);
      pf "  ram_%d_pa := (-1);\n" ri.ri_id)
    rams;
  pf "  ()\n\n";
  pf "let () =\n";
  pf "  Ocapi_native_abi.register\n";
  pf "    {\n";
  (match mode with
  | Word -> pf "      Ocapi_native_abi.p_values = Ocapi_native_abi.Words v;\n"
  | I64 -> pf "      Ocapi_native_abi.p_values = Ocapi_native_abi.Boxed v;\n");
  pf "      p_stamps = stamp;\n";
  pf "      p_cycle = cycle;\n";
  pf "      p_states = states;\n";
  pf "      p_kernels = kernels;\n";
  pf "      p_kernel_commits = kernel_commits;\n";
  pf "      p_step = step;\n";
  pf "      p_reset = reset;\n";
  pf "    }\n";
  let meta =
    {
      pm_version = emitter_version;
      pm_packed = (mode = Word);
      pm_slots = max 1 a.next_slot;
      pm_stamp_count = max 1 (List.length nets);
      pm_statements = !n_statements;
      pm_stims = stim_rows;
      pm_probes = probe_rows;
      pm_regs = reg_rows;
      pm_comps = List.map (fun ct -> (ct.ct_name, ct.ct_states)) comp_texts;
      pm_kernels = host_kernels;
    }
  in
  (Buffer.contents buf, meta)
