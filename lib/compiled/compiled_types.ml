(* Exception shared by the compiled-simulation modules. *)
exception Unsupported of string
