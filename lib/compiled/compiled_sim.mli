(** Compiled-code simulation.

    The interpreted simulator of [Cycle_system] walks object structures
    (hash tables, token lists) every cycle.  For extensive verification
    the paper regenerates "an application-specific and optimized compiled
    code simulator" from the same data structure (section 5, fig 7).
    This module is that code generator: it {e flattens} a system into

    - one [int64] slot per net, register (current and next) and
      expression node,
    - straight-line statement arrays per FSM transition, split into a
      {b block A} (outputs depending only on registers/constants — the
      static image of the token-production phase) and a {b block B}
      (input-dependent outputs),
    - a static component-level schedule of the B blocks derived from the
      net dependency graph (the static image of the evaluation phase),
    - a commit list per transition (the register-update phase).

    All formats, alignment shifts, masks and saturation bounds are
    resolved at compile time; a simulation step is a sweep of closure
    arrays with no allocation on the hot path.

    Systems whose worst-case (union over transitions) combinational
    net graph is cyclic at component granularity cannot be statically
    scheduled and are rejected with {!Unsupported} — simulate those with
    the interpreted three-phase scheduler.

    {!emit_ocaml} additionally prints the flattened program as a
    standalone OCaml source file (the paper's "C++ description is
    regenerated"), embedding recorded stimuli so the emitted simulator
    can be compiled and diffed against the in-process engines. *)

exception Unsupported of string

type t

(** [compile system] flattens [system].  Requirements beyond the
    interpreted engine: untimed kernels must declare port formats; every
    primary input's stimulus should produce a token each cycle (a [None]
    holds the previous value); combinational component cycles are
    rejected. *)
val compile : Cycle_system.t -> t

(** One clock cycle. *)
val step : t -> unit

(** [run t n] simulates [n] cycles. *)
val run : t -> int -> unit

val current_cycle : t -> int

(** Probe histories, as in {!Cycle_system.output_history} but keyed by
    probe name. *)
val output_history : t -> string -> (int * Fixed.t) list

(** Reset cycle counter, registers, FSM states and histories. *)
val reset : t -> unit

(** {1 Net tracing (waveform dumping)} *)

(** Enable per-net value recording: after every subsequent {!step}, each
    net that carried a token that cycle is appended to its history.
    Costs one sweep of the net array per cycle; leave off for timed
    runs. *)
val trace_all : t -> unit

(** Recorded net histories as (net name, carried format, history);
    nets whose format could not be derived are omitted. *)
val traced_histories : t -> (string * Fixed.format * (int * Fixed.t) list) list

(** {1 Fault-injection access}

    Registers are indexed in [Cycle_system.all_regs] order — the shared
    indexing of the SEU campaigns, identical across engines. *)

val register_count : t -> int

(** [register_info t i] is the register's name and declared format. *)
val register_info : t -> int -> string * Fixed.format

(** [flip_register_bit t i ~bit] XORs one bit into register [i]'s
    current-value slot and re-wraps it into the declared format (a
    transient SEU between two {!step}s).
    @raise Invalid_argument if [bit] is outside the declared width. *)
val flip_register_bit : t -> int -> bit:int -> unit

(** Timed components (FSMs), in system order. *)
val component_count : t -> int

(** [component_info t i] is the component's name and state count. *)
val component_info : t -> int -> string * int

val component_state : t -> int -> int

(** [set_component_state t i s] forces FSM [i] into state [s].
    @raise Ocapi_error.Error with code [Invalid_state] if [s] is not an
    encoded state — the detected-outcome path of SEU campaigns on state
    registers. *)
val set_component_state : t -> int -> int -> unit

(** Number of value slots in the flattened program (a size metric). *)
val slot_count : t -> int

(** Number of compiled statements across all blocks (a size metric). *)
val statement_count : t -> int

(** [emit_ocaml system ~cycles] returns standalone OCaml source for a
    simulator of [system]: stimuli for [cycles] cycles are evaluated now
    and embedded as literals; the emitted program prints one line per
    probe token, ["<cycle> <probe> <mantissa>"], so its output can be
    compared against {!output_history}.  Untimed kernels cannot be
    embedded in emitted source (their behaviour is an opaque closure);
    systems containing any are rejected with {!Unsupported}. *)
val emit_ocaml : Cycle_system.t -> cycles:int -> string
