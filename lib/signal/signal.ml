exception Signal_error of string

let error fmt = Format.kasprintf (fun s -> raise (Signal_error s)) fmt

type format = Fixed.format

(* Atomic so expression/register construction is safe from any domain
   (domain-isolation audit: construction-time gensym must not race). *)
let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

module Reg = struct
  type t = {
    id : int;
    name : string;
    fmt : format;
    clock : Clock.t;
    init : Fixed.t;
    mutable value : Fixed.t;
    mutable next : Fixed.t option;
  }

  let create ?init clock name fmt =
    let init =
      match init with
      | None -> Fixed.zero fmt
      | Some v ->
        if not (Fixed.equal_format (Fixed.fmt v) fmt) then
          error "register %s: init format %s does not match %s" name
            (Fixed.format_to_string (Fixed.fmt v))
            (Fixed.format_to_string fmt);
        v
    in
    { id = next_id (); name; fmt; clock; init; value = init; next = None }

  let name t = t.name
  let fmt t = t.fmt
  let clock t = t.clock
  let init t = t.init
  let id t = t.id
  let value t = t.value
  let set_value t v = t.value <- v
  let set_next t v = t.next <- Some v

  let commit t =
    match t.next with
    | None -> ()
    | Some v ->
      t.value <- v;
      t.next <- None

  let reset t =
    t.value <- t.init;
    t.next <- None

  let pp ppf t = Format.fprintf ppf "reg:%s%a" t.name Fixed.pp_format t.fmt
end

module Input = struct
  type t = { id : int; name : string; fmt : format }

  let create name fmt = { id = next_id (); name; fmt }
  let name t = t.name
  let fmt t = t.fmt
  let id t = t.id
  let pp ppf t = Format.fprintf ppf "in:%s%a" t.name Fixed.pp_format t.fmt
end

module Rom = struct
  type t = { name : string; fmt : format; contents : Fixed.t array }

  let create name fmt contents =
    if Array.length contents = 0 then error "rom %s: empty contents" name;
    Array.iteri
      (fun i v ->
        if not (Fixed.equal_format (Fixed.fmt v) fmt) then
          error "rom %s: element %d has format %s, expected %s" name i
            (Fixed.format_to_string (Fixed.fmt v))
            (Fixed.format_to_string fmt))
      contents;
    { name; fmt; contents }

  let name t = t.name
  let fmt t = t.fmt
  let size t = Array.length t.contents
  let get t i = t.contents.(i mod Array.length t.contents)
end

type t = { id : int; fmt : format; op : op }

and op =
  | Const of Fixed.t
  | Input_read of Input.t
  | Reg_read of Reg.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Abs of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Not of t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | Mux of t * t * t
  | Resize of Fixed.rounding * Fixed.overflow * t
  | Rom_read of Rom.t * t
  | Shift_left of t * int
  | Shift_right of t * int

let id t = t.id
let fmt t = t.fmt
let op t = t.op
let node fmt op = { id = next_id (); fmt; op }
let const v = node (Fixed.fmt v) (Const v)
let constf fmt x = const (Fixed.of_float fmt x)
let consti fmt n = const (Fixed.of_int fmt n)
let vdd = const (Fixed.of_bool true)
let gnd = const (Fixed.of_bool false)
let input i = node (Input.fmt i) (Input_read i)
let reg_q r = node (Reg.fmt r) (Reg_read r)

let rom r index =
  (match (fmt index).Fixed.signedness with
  | Fixed.Unsigned -> ()
  | Fixed.Signed ->
    error "rom %s: index must be unsigned, got %s" (Rom.name r)
      (Fixed.format_to_string (fmt index)));
  node (Rom.fmt r) (Rom_read (r, index))

let add a b = node (Fixed.add_format a.fmt b.fmt) (Add (a, b))
let sub a b = node (Fixed.add_format a.fmt (Fixed.neg_format b.fmt)) (Sub (a, b))
let mul a b = node (Fixed.mul_format a.fmt b.fmt) (Mul (a, b))
let neg a = node (Fixed.neg_format a.fmt) (Neg a)
let abs_ a = node (Fixed.neg_format a.fmt) (Abs a)
let and_ a b = node (Fixed.logic_format a.fmt b.fmt) (And (a, b))
let or_ a b = node (Fixed.logic_format a.fmt b.fmt) (Or (a, b))
let xor_ a b = node (Fixed.logic_format a.fmt b.fmt) (Xor (a, b))
let not_ a = node a.fmt (Not a)
let eq a b = node Fixed.bit_format (Eq (a, b))
let lt a b = node Fixed.bit_format (Lt (a, b))
let le a b = node Fixed.bit_format (Le (a, b))
let ne a b = node Fixed.bit_format (Not (eq a b))
let gt a b = node Fixed.bit_format (Not (le a b))
let ge a b = node Fixed.bit_format (Not (lt a b))

let mux2 sel a b =
  if (fmt sel).Fixed.width <> 1 then
    error "mux2: select must be 1 bit wide, got %s"
      (Fixed.format_to_string (fmt sel));
  node (Fixed.logic_format a.fmt b.fmt) (Mux (sel, a, b))

let resize ?(round = Fixed.Truncate) ?(overflow = Fixed.Wrap) fmt e =
  node fmt (Resize (round, overflow, e))

let shift_left a n =
  let f = a.fmt in
  node (Fixed.format f.Fixed.signedness ~width:f.Fixed.width ~frac:(f.Fixed.frac - n))
    (Shift_left (a, n))

let shift_right a n =
  let f = a.fmt in
  node (Fixed.format f.Fixed.signedness ~width:f.Fixed.width ~frac:(f.Fixed.frac + n))
    (Shift_right (a, n))

let ( +: ) = add
let ( -: ) = sub
let ( *: ) = mul
let ( &: ) = and_
let ( |: ) = or_
let ( ^: ) = xor_
let ( ~: ) = not_
let ( ==: ) = eq
let ( <>: ) = ne
let ( <: ) = lt
let ( <=: ) = le
let ( >: ) = gt
let ( >=: ) = ge

let children t =
  match t.op with
  | Const _ | Input_read _ | Reg_read _ -> []
  | Neg a | Abs a | Not a | Resize (_, _, a)
  | Rom_read (_, a) | Shift_left (a, _) | Shift_right (a, _) -> [ a ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | And (a, b) | Or (a, b)
  | Xor (a, b) | Eq (a, b) | Lt (a, b) | Le (a, b) -> [ a; b ]
  | Mux (s, a, b) -> [ s; a; b ]

let fold_dag e ~init ~f =
  let seen = Hashtbl.create 64 in
  let rec go acc n =
    if Hashtbl.mem seen n.id then acc
    else begin
      Hashtbl.add seen n.id ();
      let acc = List.fold_left go acc (children n) in
      f acc n
    end
  in
  go init e

let input_deps e =
  fold_dag e ~init:[] ~f:(fun acc n ->
      match n.op with Input_read i -> i :: acc | _ -> acc)
  |> List.rev

let regs_read e =
  fold_dag e ~init:[] ~f:(fun acc n ->
      match n.op with Reg_read r -> r :: acc | _ -> acc)
  |> List.rev

let node_count e = fold_dag e ~init:0 ~f:(fun acc _ -> acc + 1)

let op_name = function
  | Const _ -> "const"
  | Input_read _ -> "input"
  | Reg_read _ -> "reg"
  | Add _ -> "add"
  | Sub _ -> "sub"
  | Mul _ -> "mul"
  | Neg _ -> "neg"
  | Abs _ -> "abs"
  | And _ -> "and"
  | Or _ -> "or"
  | Xor _ -> "xor"
  | Not _ -> "not"
  | Eq _ -> "eq"
  | Lt _ -> "lt"
  | Le _ -> "le"
  | Mux _ -> "mux"
  | Resize _ -> "resize"
  | Rom_read _ -> "rom"
  | Shift_left _ -> "shl"
  | Shift_right _ -> "shr"

let rec pp ppf t =
  match t.op with
  | Const v -> Fixed.pp ppf v
  | Input_read i -> Format.pp_print_string ppf (Input.name i)
  | Reg_read r -> Format.pp_print_string ppf (Reg.name r)
  | Rom_read (r, i) -> Format.fprintf ppf "%s[%a]" (Rom.name r) pp i
  | Shift_left (a, n) -> Format.fprintf ppf "(%a << %d)" pp a n
  | Shift_right (a, n) -> Format.fprintf ppf "(%a >> %d)" pp a n
  | Mux (s, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp s pp a pp b
  | Resize (_, _, a) -> Format.fprintf ppf "resize%a(%a)" Fixed.pp_format t.fmt pp a
  | Neg a -> Format.fprintf ppf "(- %a)" pp a
  | Abs a -> Format.fprintf ppf "abs(%a)" pp a
  | Not a -> Format.fprintf ppf "(~ %a)" pp a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | And (a, b) | Or (a, b)
  | Xor (a, b) | Eq (a, b) | Lt (a, b) | Le (a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (op_name t.op) pp b

module Env = struct
  type t = (int, Fixed.t) Hashtbl.t

  let create () = Hashtbl.create 16
  let bind env i v = Hashtbl.replace env (Input.id i) v
  let find env i = Hashtbl.find_opt env (Input.id i)
  let is_bound env i = Hashtbl.mem env (Input.id i)
end

let eval_memo memo env e =
  let rec go n =
    match Hashtbl.find_opt memo n.id with
    | Some v -> v
    | None ->
      let v = compute n in
      Hashtbl.add memo n.id v;
      v
  and compute n =
    match n.op with
    | Const v -> v
    | Input_read i -> begin
      match Env.find env i with
      | Some v -> v
      | None -> error "eval: input %s has no token" (Input.name i)
    end
    | Reg_read r -> Reg.value r
    | Add (a, b) -> Fixed.add (go a) (go b)
    | Sub (a, b) -> Fixed.sub (go a) (go b)
    | Mul (a, b) -> Fixed.mul (go a) (go b)
    | Neg a -> Fixed.neg (go a)
    | Abs a -> Fixed.abs (go a)
    | And (a, b) -> Fixed.logand (go a) (go b)
    | Or (a, b) -> Fixed.logor (go a) (go b)
    | Xor (a, b) -> Fixed.logxor (go a) (go b)
    | Not a -> Fixed.lognot (go a)
    | Eq (a, b) -> Fixed.eq (go a) (go b)
    | Lt (a, b) -> Fixed.lt (go a) (go b)
    | Le (a, b) -> Fixed.le (go a) (go b)
    | Mux (s, a, b) ->
      (* Both branches are evaluated: hardware muxes have no short
         circuit, and resizing to the mux format must be consistent. *)
      let sv = go s and av = go a and bv = go b in
      let v = if Fixed.is_true sv then av else bv in
      Fixed.resize ~round:Fixed.Truncate ~overflow:Fixed.Wrap n.fmt v
    | Resize (round, overflow, a) -> Fixed.resize ~round ~overflow n.fmt (go a)
    | Rom_read (r, idx) ->
      let i = Fixed.to_int (go idx) in
      Rom.get r i
    | Shift_left (a, k) -> Fixed.resize n.fmt (Fixed.shift_left (go a) k)
    | Shift_right (a, k) -> Fixed.resize n.fmt (Fixed.shift_right (go a) k)
  in
  go e

let eval env e = eval_memo (Hashtbl.create 64) env e
