(** Signal flow graphs.

    A set of signal expressions is assembled in a signal flow graph
    together with its desired inputs and outputs (paper section 3.1).
    An SFG "has well defined simulation semantics and represents one
    clock cycle of data processing": when it fires, every output
    expression is evaluated from the input tokens and the current
    register values, and the next values of the registers it assigns are
    staged for the register-update phase.

    Declaring inputs and outputs enables the semantic checks the paper
    advertises — dangling inputs and dead code — see {!check}. *)

type t

exception Sfg_error of string

(** {1 Construction} *)

module Builder : sig
  type sfg := t
  type t

  (** [input b name fmt] declares an input port and returns the signal
      that reads its token. *)
  val input : t -> string -> Fixed.format -> Signal.t

  (** [input_port b port] declares a pre-existing port (used when several
      SFGs of one component must share the port identity). *)
  val input_port : t -> Signal.Input.t -> Signal.t

  (** [output b name e] declares output [name] driven by [e].
      @raise Sfg_error on duplicate output names. *)
  val output : t -> string -> Signal.t -> unit

  (** [assign b reg e] stages [reg <- e] for when this SFG fires.  The
      expression format must equal the register format exactly.
      @raise Sfg_error otherwise, or if [reg] is already assigned here. *)
  val assign : t -> Signal.Reg.t -> Signal.t -> unit

  (** [assign_resized b reg e] inserts a default resize (truncate / wrap)
      to the register format first. *)
  val assign_resized : t -> Signal.Reg.t -> Signal.t -> unit

  val finish : t -> sfg
end

(** [build name f] runs [f] on a fresh builder and returns the checked
    SFG. @raise Sfg_error if {!check} fails with an error. *)
val build : string -> (Builder.t -> unit) -> t

(** An SFG with no inputs, outputs or assignments (a "nop"). *)
val nop : string -> t

(** {1 Accessors} *)

val name : t -> string
val inputs : t -> Signal.Input.t list
val outputs : t -> (string * Signal.t) list
val assigns : t -> (Signal.Reg.t * Signal.t) list

(** Registers assigned by this SFG. *)
val regs_written : t -> Signal.Reg.t list

(** Registers read by any expression of this SFG. *)
val regs_read : t -> Signal.Reg.t list

(** Total expression nodes (outputs and register assignments, shared
    nodes counted once). *)
val node_count : t -> int

(** {1 Semantic checks} *)

type check_issue =
  | Dangling_input of string  (** declared input used by no expression *)
  | Dead_output of string  (** output driven by a constant-only cone *)
  | Multiple_drivers of string  (** register assigned twice *)

val pp_issue : Format.formatter -> check_issue -> unit

(** Issues found in the SFG.  [Dangling_input] and [Dead_output] are
    warnings; [build] only raises for structural errors (duplicate
    names, format mismatches), which the builder detects eagerly.
    [flag_constant_outputs] (default false) also reports outputs whose
    cone contains no input or register read — usually intentional (nop
    instruction words, tied-off write enables), occasionally a bug. *)
val check : ?flag_constant_outputs:bool -> t -> check_issue list

(** {1 Dependency analysis — used by the three-phase cycle scheduler} *)

(** [output_deps t] maps each output name to the set of input ports its
    value combinationally depends on (register reads cut the
    dependency).  Outputs with an empty list can be produced in the
    token-production phase. *)
val output_deps : t -> (string * Signal.Input.t list) list

(** Inputs needed before the register assignments can be computed. *)
val assign_deps : t -> Signal.Input.t list

(** {1 Firing} *)

(** The result of firing: output token values by name. *)
type firing = (string * Fixed.t) list

(** [fire t env] evaluates all outputs and stages all register
    assignments.  [env] must bind every input.
    @raise Signal.Signal_error on a missing token. *)
val fire : t -> Signal.Env.t -> firing

(** [fire_partial t env ~produced] evaluates only the outputs not yet in
    [produced] whose dependencies are bound in [env]; returns them.  When
    every input is bound, it also stages the register assignments and
    returns [`Complete]; otherwise [`Partial]. *)
val fire_partial :
  t ->
  Signal.Env.t ->
  produced:(string -> bool) ->
  firing * [ `Complete | `Partial ]

val pp : Format.formatter -> t -> unit
