(** Clock objects.

    Registered signals are related to a clock object that controls their
    update (paper section 3.1).  A clock is little more than an identity;
    the three-phase cycle scheduler advances one clock per system. *)

type t

val create : string -> t
val name : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** A default system clock, for designs that do not care to name one. *)
val default : t
