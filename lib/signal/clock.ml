type t = { id : int; name : string }

(* Atomic so clock creation is safe from any domain (domain-isolation
   audit: construction-time gensym must not race). *)
let counter = Atomic.make 0

let create name = { id = Atomic.fetch_and_add counter 1 + 1; name }

let name t = t.name
let equal a b = a.id = b.id
let pp ppf t = Format.fprintf ppf "clock:%s" t.name
let default = create "clk"
