type t = { id : int; name : string }

let counter = ref 0

let create name =
  incr counter;
  { id = !counter; name }

let name t = t.name
let equal a b = a.id = b.id
let pp ppf t = Format.fprintf ppf "clock:%s" t.name
let default = create "clk"
