(** Signals and signal expressions.

    Signals are the information carriers of a timed description (paper
    section 3.1).  Where the paper overloads C++ operators so that "the
    parser of the C++ compiler is reused to construct the signal flow
    graph data structure" (fig 3), this module overloads OCaml operators
    over an expression DAG: evaluating [a +: b *: c] builds nodes, it does
    not compute numbers.  The same data structure is later interpreted
    (simulation), flattened (compiled simulation), and printed (HDL code
    generation) — the dual use of fig 7.

    Three kinds of leaf signal exist:
    - constants,
    - SFG {e inputs} — tokens arriving over the system interconnect, and
    - {e registered} signals, which have a current and a next value and
      are updated by their clock (their read breaks combinational
      dependency chains; this is what the scheduler's dependency analysis
      relies on). *)

exception Signal_error of string

type format = Fixed.format

(** {1 Registered signals} *)

module Reg : sig
  type t

  (** [create ?init clock name fmt] makes a registered signal. [init]
      defaults to zero and must have format [fmt]. *)
  val create : ?init:Fixed.t -> Clock.t -> string -> format -> t

  val name : t -> string
  val fmt : t -> format
  val clock : t -> Clock.t
  val init : t -> Fixed.t
  val id : t -> int

  (** Current value (the value visible through {!Signal.reg_q} reads). *)
  val value : t -> Fixed.t

  (** Force the current value (used by simulators and reset). *)
  val set_value : t -> Fixed.t -> unit

  (** Stage the next value; committed by {!commit}. *)
  val set_next : t -> Fixed.t -> unit

  (** Copy next value (if staged) to current value; clears the staging. *)
  val commit : t -> unit

  (** Reset the current value to [init] and clear any staged next. *)
  val reset : t -> unit

  val pp : Format.formatter -> t -> unit
end

(** {1 SFG input ports} *)

module Input : sig
  type t

  val create : string -> format -> t
  val name : t -> string
  val fmt : t -> format
  val id : t -> int
  val pp : Format.formatter -> t -> unit
end

(** {1 Lookup tables (ROMs)} *)

module Rom : sig
  type t

  (** [create name fmt contents] — all [contents] must have format [fmt].
      Reads are taken modulo the table length. *)
  val create : string -> format -> Fixed.t array -> t

  val name : t -> string
  val fmt : t -> format
  val size : t -> int
  val get : t -> int -> Fixed.t
end

(** {1 Expressions} *)

type t
(** An expression node.  Structurally a DAG; shared subexpressions are
    evaluated once per firing. *)

type op =
  | Const of Fixed.t
  | Input_read of Input.t
  | Reg_read of Reg.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Abs of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Not of t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | Mux of t * t * t  (** select (1 bit), value-if-1, value-if-0 *)
  | Resize of Fixed.rounding * Fixed.overflow * t
  | Rom_read of Rom.t * t
  | Shift_left of t * int
  | Shift_right of t * int

val id : t -> int
val fmt : t -> format
val op : t -> op

(** {1 Constructors} *)

val const : Fixed.t -> t

(** [constf fmt x] / [consti fmt n] quantize a float / embed an int. *)
val constf : format -> float -> t

val consti : format -> int -> t

(** 1-bit constants. *)
val vdd : t

val gnd : t

val input : Input.t -> t
val reg_q : Reg.t -> t
val rom : Rom.t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val abs_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor_ : t -> t -> t
val not_ : t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t

(** [mux2 sel a b] is [a] when [sel] is 1 else [b]. [sel] must be 1 bit
    wide. @raise Signal_error otherwise. *)
val mux2 : t -> t -> t -> t

(** [resize ?round ?overflow fmt e] — defaults [Truncate]/[Wrap], the
    hardware bit-dropping behaviour. *)
val resize : ?round:Fixed.rounding -> ?overflow:Fixed.overflow -> format -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** {1 Operators} — the fig 3 embedding. *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( ~: ) : t -> t
val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t
val ( <=: ) : t -> t -> t
val ( >: ) : t -> t -> t
val ( >=: ) : t -> t -> t

(** {1 Analysis} *)

(** [depth_first_seen e ~f acc] folds [f] over every node reachable from
    [e] exactly once, children before parents (postorder). *)
val fold_dag : t -> init:'a -> f:('a -> t -> 'a) -> 'a

(** Inputs the value of [e] combinationally depends on (register reads
    terminate the traversal). *)
val input_deps : t -> Input.t list

(** Registers read anywhere under [e]. *)
val regs_read : t -> Reg.t list

(** Number of nodes in the DAG rooted at [e]. *)
val node_count : t -> int

val pp : Format.formatter -> t -> unit

(** {1 Evaluation} *)

module Env : sig
  type nonrec t

  val create : unit -> t
  val bind : t -> Input.t -> Fixed.t -> unit
  val find : t -> Input.t -> Fixed.t option
  val is_bound : t -> Input.t -> bool
end

(** [eval env e] computes the value of [e]: inputs are read from [env],
    register reads from the registers' current values.
    @raise Signal_error on an unbound input. *)
val eval : Env.t -> t -> Fixed.t

(** [eval_memo memo env e] is [eval] with an explicit per-firing memo
    table ([memo] maps node ids to values), so shared nodes are computed
    once across several output evaluations of the same firing. *)
val eval_memo : (int, Fixed.t) Hashtbl.t -> Env.t -> t -> Fixed.t
