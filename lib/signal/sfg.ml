exception Sfg_error of string

let error fmt = Format.kasprintf (fun s -> raise (Sfg_error s)) fmt

type t = {
  name : string;
  inputs : Signal.Input.t list;
  outputs : (string * Signal.t) list;
  assigns : (Signal.Reg.t * Signal.t) list;
}

module Builder = struct
  type t = {
    sfg_name : string;
    mutable b_inputs : Signal.Input.t list;  (* reversed *)
    mutable b_outputs : (string * Signal.t) list;  (* reversed *)
    mutable b_assigns : (Signal.Reg.t * Signal.t) list;  (* reversed *)
  }

  let create sfg_name =
    { sfg_name; b_inputs = []; b_outputs = []; b_assigns = [] }

  let input_port b port =
    if
      List.exists
        (fun i -> Signal.Input.name i = Signal.Input.name port)
        b.b_inputs
    then error "sfg %s: duplicate input %s" b.sfg_name (Signal.Input.name port);
    b.b_inputs <- port :: b.b_inputs;
    Signal.input port

  let input b name fmt = input_port b (Signal.Input.create name fmt)

  let output b name e =
    if List.mem_assoc name b.b_outputs then
      error "sfg %s: duplicate output %s" b.sfg_name name;
    b.b_outputs <- (name, e) :: b.b_outputs

  let assign b reg e =
    if List.exists (fun (r, _) -> Signal.Reg.id r = Signal.Reg.id reg) b.b_assigns
    then
      error "sfg %s: register %s assigned twice" b.sfg_name
        (Signal.Reg.name reg);
    if not (Fixed.equal_format (Signal.fmt e) (Signal.Reg.fmt reg)) then
      error "sfg %s: assignment to %s has format %s, register is %s"
        b.sfg_name (Signal.Reg.name reg)
        (Fixed.format_to_string (Signal.fmt e))
        (Fixed.format_to_string (Signal.Reg.fmt reg));
    b.b_assigns <- (reg, e) :: b.b_assigns

  let assign_resized b reg e =
    assign b reg (Signal.resize (Signal.Reg.fmt reg) e)

  let finish b =
    {
      name = b.sfg_name;
      inputs = List.rev b.b_inputs;
      outputs = List.rev b.b_outputs;
      assigns = List.rev b.b_assigns;
    }
end

let name t = t.name
let inputs t = t.inputs
let outputs t = t.outputs
let assigns t = t.assigns
let regs_written t = List.map fst t.assigns

let all_roots t = List.map snd t.outputs @ List.map snd t.assigns

let regs_read t =
  let seen = Hashtbl.create 16 in
  List.concat_map Signal.regs_read (all_roots t)
  |> List.filter (fun r ->
         let id = Signal.Reg.id r in
         if Hashtbl.mem seen id then false
         else begin
           Hashtbl.add seen id ();
           true
         end)

let node_count t =
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc root ->
      Signal.fold_dag root ~init:acc ~f:(fun acc n ->
          if Hashtbl.mem seen (Signal.id n) then acc
          else begin
            Hashtbl.add seen (Signal.id n) ();
            acc + 1
          end))
    0 (all_roots t)

type check_issue =
  | Dangling_input of string
  | Dead_output of string
  | Multiple_drivers of string

let pp_issue ppf = function
  | Dangling_input s -> Format.fprintf ppf "dangling input %s" s
  | Dead_output s -> Format.fprintf ppf "dead output %s (constant cone)" s
  | Multiple_drivers s -> Format.fprintf ppf "multiple drivers for %s" s

let check ?(flag_constant_outputs = false) t =
  let used = Hashtbl.create 16 in
  List.iter
    (fun root ->
      List.iter
        (fun i -> Hashtbl.replace used (Signal.Input.id i) ())
        (Signal.input_deps root))
    (all_roots t);
  let dangling =
    List.filter_map
      (fun i ->
        if Hashtbl.mem used (Signal.Input.id i) then None
        else Some (Dangling_input (Signal.Input.name i)))
      t.inputs
  in
  let dead =
    if not flag_constant_outputs then []
    else
    List.filter_map
      (fun (nm, e) ->
        let has_leaf =
          Signal.fold_dag e ~init:false ~f:(fun acc n ->
              acc
              ||
              match Signal.op n with
              | Signal.Input_read _ | Signal.Reg_read _ -> true
              | Signal.Const _ | Signal.Add _ | Signal.Sub _ | Signal.Mul _
              | Signal.Neg _ | Signal.Abs _ | Signal.And _ | Signal.Or _
              | Signal.Xor _ | Signal.Not _ | Signal.Eq _ | Signal.Lt _
              | Signal.Le _ | Signal.Mux _ | Signal.Resize _
              | Signal.Rom_read _ | Signal.Shift_left _ | Signal.Shift_right _
                -> false)
        in
        if has_leaf then None else Some (Dead_output nm))
      t.outputs
  in
  dangling @ dead

let build name f =
  let b = Builder.create name in
  f b;
  Builder.finish b

let nop name = build name (fun _ -> ())

let output_deps t =
  List.map (fun (nm, e) -> (nm, Signal.input_deps e)) t.outputs

let assign_deps t =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun (_, e) -> Signal.input_deps e) t.assigns
  |> List.filter (fun i ->
         let id = Signal.Input.id i in
         if Hashtbl.mem seen id then false
         else begin
           Hashtbl.add seen id ();
           true
         end)

type firing = (string * Fixed.t) list

let fire t env =
  let memo = Hashtbl.create 64 in
  let out =
    List.map (fun (nm, e) -> (nm, Signal.eval_memo memo env e)) t.outputs
  in
  List.iter
    (fun (reg, e) -> Signal.Reg.set_next reg (Signal.eval_memo memo env e))
    t.assigns;
  out

let fire_partial t env ~produced =
  let memo = Hashtbl.create 64 in
  let deps_ok e =
    List.for_all (fun i -> Signal.Env.is_bound env i) (Signal.input_deps e)
  in
  let out =
    List.filter_map
      (fun (nm, e) ->
        if produced nm then None
        else if deps_ok e then Some (nm, Signal.eval_memo memo env e)
        else None)
      t.outputs
  in
  let all_inputs_bound =
    List.for_all (fun i -> Signal.Env.is_bound env i) t.inputs
  in
  if all_inputs_bound then begin
    List.iter
      (fun (reg, e) -> Signal.Reg.set_next reg (Signal.eval_memo memo env e))
      t.assigns;
    (out, `Complete)
  end
  else (out, `Partial)

let pp ppf t =
  Format.fprintf ppf "@[<v 2>sfg %s:" t.name;
  List.iter
    (fun i -> Format.fprintf ppf "@ in %a" Signal.Input.pp i)
    t.inputs;
  List.iter
    (fun (nm, e) -> Format.fprintf ppf "@ out %s = %a" nm Signal.pp e)
    t.outputs;
  List.iter
    (fun (r, e) ->
      Format.fprintf ppf "@ %s <- %a" (Signal.Reg.name r) Signal.pp e)
    t.assigns;
  Format.fprintf ppf "@]"
