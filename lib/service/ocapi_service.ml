(* Resilient campaign service: a supervising server, one worker process
   per job attempt, a write-ahead JSONL journal, and retry with seeded
   exponential backoff.  See ocapi_service.mli for the architecture. *)

module Json = Ocapi_obs.Json

let ( let* ) = Result.bind

(* --- small helpers -------------------------------------------------------- *)

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Same correlation-id derivation as Ocapi_batch: short digest of the
   dedup key, so service, batch and trace spans join on one id. *)
let corr_of_key key = String.sub (Digest.to_hex (Digest.string key)) 0 12

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let sfield name j =
  let* v = field name j in
  match v with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let ifield name j =
  let* v = field name j in
  match v with
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let ffield name j =
  let* v = field name j in
  match v with
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "field %S: expected a number" name)

let bfield name j =
  let* v = field name j in
  match v with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected a boolean" name)

(* --- retry backoff -------------------------------------------------------- *)

let backoff_delay ~base ~cap ~seed ~corr ~attempt =
  if base <= 0. then invalid_arg "Ocapi_service.backoff_delay: base <= 0";
  if cap < base then invalid_arg "Ocapi_service.backoff_delay: cap < base";
  if attempt < 1 then invalid_arg "Ocapi_service.backoff_delay: attempt < 1";
  (* Jitter in [0, 0.5), drawn from a digest so the schedule is a pure
     function of (seed, corr, attempt): reproducible from the seed, yet
     decorrelated across jobs so a crashed fleet does not retry in
     lockstep. *)
  let d = Digest.string (Printf.sprintf "%d|%s|%d" seed corr attempt) in
  let u = int_of_string ("0x" ^ String.sub (Digest.to_hex d) 0 7) in
  let jitter = 0.5 *. (float_of_int u /. 268435456. (* 16^7 *)) in
  Float.min cap (ldexp base (attempt - 1) *. (1. +. jitter))

(* --- journal entries ------------------------------------------------------ *)

type entry =
  | J_submitted of {
      js_corr : string;
      js_key : string;
      js_label : string;
      js_artifact : string;
      js_request : Json.t;
      js_dedup : bool;
    }
  | J_started of { jt_corr : string; jt_attempt : int }
  | J_crashed of { jc_corr : string; jc_attempt : int; jc_reason : string }
  | J_retried of { jr_corr : string; jr_attempt : int; jr_backoff : float }
  | J_completed of { jd_corr : string; jd_artifact : string }
  | J_failed of { jf_corr : string; jf_code : string; jf_message : string }
  | J_rejected of { jx_corr : string; jx_label : string }

let entry_json = function
  | J_submitted s ->
    Json.Obj
      [
        ("ev", Json.String "submitted");
        ("corr", Json.String s.js_corr);
        ("key", Json.String s.js_key);
        ("label", Json.String s.js_label);
        ("artifact", Json.String s.js_artifact);
        ("dedup", Json.Bool s.js_dedup);
        ("request", s.js_request);
      ]
  | J_started s ->
    Json.Obj
      [
        ("ev", Json.String "started");
        ("corr", Json.String s.jt_corr);
        ("attempt", Json.Int s.jt_attempt);
      ]
  | J_crashed c ->
    Json.Obj
      [
        ("ev", Json.String "crashed");
        ("corr", Json.String c.jc_corr);
        ("attempt", Json.Int c.jc_attempt);
        ("reason", Json.String c.jc_reason);
      ]
  | J_retried r ->
    Json.Obj
      [
        ("ev", Json.String "retried");
        ("corr", Json.String r.jr_corr);
        ("attempt", Json.Int r.jr_attempt);
        ("backoff", Json.Float r.jr_backoff);
      ]
  | J_completed d ->
    Json.Obj
      [
        ("ev", Json.String "completed");
        ("corr", Json.String d.jd_corr);
        ("artifact", Json.String d.jd_artifact);
      ]
  | J_failed f ->
    Json.Obj
      [
        ("ev", Json.String "failed");
        ("corr", Json.String f.jf_corr);
        ("code", Json.String f.jf_code);
        ("message", Json.String f.jf_message);
      ]
  | J_rejected x ->
    Json.Obj
      [
        ("ev", Json.String "rejected");
        ("corr", Json.String x.jx_corr);
        ("label", Json.String x.jx_label);
      ]

let entry_of_json j =
  let* ev = sfield "ev" j in
  match ev with
  | "submitted" ->
    let* js_corr = sfield "corr" j in
    let* js_key = sfield "key" j in
    let* js_label = sfield "label" j in
    let* js_artifact = sfield "artifact" j in
    let* js_dedup = bfield "dedup" j in
    let* js_request = field "request" j in
    Ok (J_submitted { js_corr; js_key; js_label; js_artifact; js_request; js_dedup })
  | "started" ->
    let* jt_corr = sfield "corr" j in
    let* jt_attempt = ifield "attempt" j in
    Ok (J_started { jt_corr; jt_attempt })
  | "crashed" ->
    let* jc_corr = sfield "corr" j in
    let* jc_attempt = ifield "attempt" j in
    let* jc_reason = sfield "reason" j in
    Ok (J_crashed { jc_corr; jc_attempt; jc_reason })
  | "retried" ->
    let* jr_corr = sfield "corr" j in
    let* jr_attempt = ifield "attempt" j in
    let* jr_backoff = ffield "backoff" j in
    Ok (J_retried { jr_corr; jr_attempt; jr_backoff })
  | "completed" ->
    let* jd_corr = sfield "corr" j in
    let* jd_artifact = sfield "artifact" j in
    Ok (J_completed { jd_corr; jd_artifact })
  | "failed" ->
    let* jf_corr = sfield "corr" j in
    let* jf_code = sfield "code" j in
    let* jf_message = sfield "message" j in
    Ok (J_failed { jf_corr; jf_code; jf_message })
  | "rejected" ->
    let* jx_corr = sfield "corr" j in
    let* jx_label = sfield "label" j in
    Ok (J_rejected { jx_corr; jx_label })
  | other -> Error ("unknown event: " ^ other)

(* --- the journal file ----------------------------------------------------- *)

type journal = { j_oc : out_channel }

let journal_open path =
  mkdir_p (Filename.dirname path);
  { j_oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path }

(* One write + flush per entry: the write-ahead discipline is only as
   good as the journal's durability ordering. *)
let journal_append t e =
  output_string t.j_oc (Json.to_string (entry_json e));
  output_char t.j_oc '\n';
  flush t.j_oc

let journal_close t = close_out_noerr t.j_oc

let unknown_event msg =
  String.length msg >= 13 && String.sub msg 0 13 = "unknown event"

let journal_load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    let n = List.length lines in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go (i + 1) acc rest
        else begin
          match Json.of_string line with
          | Error msg ->
            (* A torn final line is the crash we are designed for; a
               torn interior line is corruption worth reporting. *)
            if i = n then Ok (List.rev acc)
            else Error (Printf.sprintf "journal line %d: %s" i msg)
          | Ok j -> begin
            match entry_of_json j with
            | Ok e -> go (i + 1) (e :: acc) rest
            | Error msg ->
              if i = n then Ok (List.rev acc)
              else if unknown_event msg then go (i + 1) acc rest
              else Error (Printf.sprintf "journal line %d: %s" i msg)
          end
        end
    in
    go 1 [] lines
  end

(* --- replay --------------------------------------------------------------- *)

type pending = {
  p_corr : string;
  p_key : string;
  p_label : string;
  p_artifact : string;
  p_request : Json.t;
  p_attempts : int;
}

type recovered = {
  rv_completed : (string * string) list;
  rv_failed : (string * string) list;
  rv_pending : pending list;
}

type jstate = S_queued of int | S_completed of string | S_failed of string

let replay entries =
  let info = Hashtbl.create 32 in
  let state = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      match e with
      | J_submitted s when not s.js_dedup ->
        Hashtbl.replace info s.js_corr
          (s.js_key, s.js_label, s.js_artifact, s.js_request);
        (match Hashtbl.find_opt state s.js_corr with
        | Some (S_queued _) -> ()
        | _ ->
          (* A fresh submission — or a resubmission of work whose last
             run ended terminally (failed keys stay resubmittable). *)
          Hashtbl.replace state s.js_corr (S_queued 0);
          if not (List.mem s.js_corr !order) then order := s.js_corr :: !order)
      | J_crashed c -> (
        match Hashtbl.find_opt state c.jc_corr with
        | Some (S_queued _) -> Hashtbl.replace state c.jc_corr (S_queued c.jc_attempt)
        | _ -> ())
      | J_completed d -> Hashtbl.replace state d.jd_corr (S_completed d.jd_artifact)
      | J_failed f -> Hashtbl.replace state f.jf_corr (S_failed f.jf_code)
      | J_submitted _ | J_started _ | J_retried _ | J_rejected _ -> ())
    entries;
  let order = List.rev !order in
  let completed = ref [] and failed = ref [] and pend = ref [] in
  List.iter
    (fun corr ->
      match (Hashtbl.find_opt state corr, Hashtbl.find_opt info corr) with
      | Some (S_completed artifact), Some (key, _, _, _) ->
        completed := (key, artifact) :: !completed
      | Some (S_failed code), Some (key, _, _, _) ->
        failed := (key, code) :: !failed
      | Some (S_queued attempts), Some (key, label, artifact, request) ->
        pend :=
          {
            p_corr = corr;
            p_key = key;
            p_label = label;
            p_artifact = artifact;
            p_request = request;
            p_attempts = attempts;
          }
          :: !pend
      | _ -> ())
    order;
  {
    rv_completed = List.rev !completed;
    rv_failed = List.rev !failed;
    rv_pending = List.rev !pend;
  }

(* --- configuration -------------------------------------------------------- *)

type chaos = { ch_seed : int; ch_kill_prob : float; ch_kill_delay : float }

type config = {
  cf_workers : int;
  cf_state_dir : string;
  cf_artifact_dir : string;
  cf_worker_cmd : string list;
  cf_retries : int;
  cf_backoff_base : float;
  cf_backoff_cap : float;
  cf_backoff_seed : int;
  cf_job_timeout : float option;
  cf_kill_grace : float;
  cf_heartbeat_timeout : float;
  cf_max_queue : int;
  cf_cache_dir : string option;
  cf_chaos : chaos option;
  cf_die_after : int option;
  cf_on_line : (string -> unit) option;
}

let default_config =
  {
    cf_workers = 2;
    cf_state_dir = Filename.concat "_generated" "service";
    cf_artifact_dir = Filename.concat (Filename.concat "_generated" "service") "artifacts";
    cf_worker_cmd = [ Sys.executable_name; "worker" ];
    cf_retries = 3;
    cf_backoff_base = 0.5;
    cf_backoff_cap = 30.;
    cf_backoff_seed = 1;
    cf_job_timeout = None;
    cf_kill_grace = 5.;
    cf_heartbeat_timeout = 30.;
    cf_max_queue = 1024;
    cf_cache_dir = None;
    cf_chaos = None;
    cf_die_after = None;
    cf_on_line = None;
  }

type summary = {
  sm_submitted : int;
  sm_deduped : int;
  sm_recovered : int;
  sm_completed : int;
  sm_failed : int;
  sm_poisoned : int;
  sm_rejected : int;
  sm_crashes : int;
  sm_retries : int;
  sm_chaos_kills : int;
  sm_drained : bool;
  sm_aborted : bool;
  sm_seconds : float;
}

(* --- manifests ------------------------------------------------------------ *)

let read_manifest path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go i acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line ->
            let t = String.trim line in
            if t = "" || t.[0] = '#' then go (i + 1) acc
            else begin
              match Json.of_string t with
              | Ok j -> go (i + 1) (j :: acc)
              | Error msg -> Error (Printf.sprintf "%s:%d: %s" path i msg)
            end
        in
        go 1 [])

(* --- worker side ---------------------------------------------------------- *)

let exit_failed = 20

(* The worker's stdout is the supervision channel; the heartbeat thread
   and the main thread both write lines, so serialize them. *)
let out_mutex = Mutex.create ()

let out_line s =
  Mutex.lock out_mutex;
  print_string s;
  print_char '\n';
  flush stdout;
  Mutex.unlock out_mutex

let fail_line (err : Ocapi_error.t) =
  out_line
    ("fail "
    ^ Json.to_string
        (Json.Obj
           [
             ("code", Json.String (Ocapi_error.code_label err.e_code));
             ("message", Json.String err.e_message);
           ]))

let worker_main ?timeout ?(heartbeat_every = 1.0) ?cache_dir ~request ~artifact
    () =
  let chaos =
    match Json.member "chaos" request with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  if chaos = Some "hang" then begin
    (* A silently wedged worker: no heartbeats, no exit.  Exercises the
       server's heartbeat-timeout kill(9) backstop. *)
    let rec hang () : int =
      Unix.sleepf 3600.;
      hang ()
    in
    hang ()
  end
  else begin
    (match cache_dir with
    | Some dir -> Flow.Cache.enable ~dir ()
    | None -> ());
    match Ocapi_batch.request_of_json request with
    | Error msg ->
      fail_line (Ocapi_error.make Unsupported ~engine:"service" msg);
      exit_failed
    | Ok req ->
      let stop_hb = Atomic.make false in
      let hb =
        Thread.create
          (fun () ->
            while not (Atomic.get stop_hb) do
              out_line "hb";
              Thread.delay heartbeat_every
            done)
          ()
      in
      let finish code =
        Atomic.set stop_hb true;
        Thread.join hb;
        code
      in
      let result =
        try
          let prep = Ocapi_batch.prepare_request req in
          if chaos = Some "crash" then
            (* Self-destruct after the job has started: the supervisor
               sees a SIGKILLed worker, never a written artifact. *)
            Unix.kill (Unix.getpid ()) Sys.sigkill;
          let deadline =
            match (req.rq_timeout, timeout) with
            | Some t, _ | None, Some t -> Some (Unix.gettimeofday () +. t)
            | None, None -> None
          in
          let progress () =
            match deadline with
            | Some d when Unix.gettimeofday () > d ->
              raise
                (Ocapi_error.Error
                   (Ocapi_error.make Timeout ~engine:"service"
                      "job exceeded its wall-clock budget"))
            | _ -> ()
          in
          let json = prep.pr_run ~progress in
          (* Atomic publication: the artifact appears all-or-nothing, so
             a kill between write and rename leaves no torn file and the
             server treats an existing artifact as proof of completion. *)
          let tmp = Printf.sprintf "%s.%d.tmp" artifact (Unix.getpid ()) in
          mkdir_p (Filename.dirname artifact);
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc (Json.to_string json);
              output_char oc '\n');
          Sys.rename tmp artifact;
          Ok ()
        with
        | Ocapi_error.Error e -> Error e
        | e -> (
          match Flow.classify_exn ~engine:"service" e with
          | Some err -> Error err
          | None ->
            Error
              (Ocapi_error.make Internal ~engine:"service" (Printexc.to_string e)))
      in
      (match result with
      | Ok () ->
        out_line "done";
        finish 0
      | Error err ->
        fail_line err;
        finish exit_failed)
  end

(* --- the supervisor ------------------------------------------------------- *)

type qjob = {
  q_corr : string;
  q_key : string;
  q_label : string;
  q_artifact : string;
  q_request : Json.t;
  q_prio : int;
  q_seq : int;
  mutable q_crashes : int;
  mutable q_ready_at : float;
}

type slot = {
  s_pid : int;
  s_fd : Unix.file_descr;
  s_job : qjob;
  s_attempt : int;
  s_deadline : float option;
  s_chaos_at : float option;
  s_buf : Buffer.t;
  mutable s_last_hb : float;
  mutable s_done : bool;
  mutable s_fail : (string * string) option;
  mutable s_killed : string option;
  mutable s_eof : bool;
}

(* OCaml signal numbers are its own negative encoding; name the ones a
   worker plausibly dies of. *)
let signal_name s =
  if s = Sys.sigkill then "sigkill"
  else if s = Sys.sigterm then "sigterm"
  else if s = Sys.sigint then "sigint"
  else if s = Sys.sigsegv then "sigsegv"
  else if s = Sys.sigabrt then "sigabrt"
  else if s = Sys.sigbus then "sigbus"
  else if s = Sys.sigfpe then "sigfpe"
  else string_of_int s

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "signal %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %s" (signal_name s)

let parse_fail_line line =
  let payload = String.sub line 5 (String.length line - 5) in
  match Json.of_string payload with
  | Ok j ->
    let get name fallback =
      match Json.member name j with Some (Json.String s) -> s | _ -> fallback
    in
    (get "code" "internal", get "message" "")
  | Error _ -> ("internal", "malformed failure report: " ^ payload)

let request_timeout j =
  match Json.member "timeout" j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let request_prio j =
  match Json.member "priority" j with
  | Some (Json.String "high") -> 0
  | Some (Json.String "low") -> 2
  | _ -> 1

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let serve cf ~requests =
  if cf.cf_workers < 1 then invalid_arg "Ocapi_service.serve: workers < 1";
  if cf.cf_retries < 1 then invalid_arg "Ocapi_service.serve: retries < 1";
  if cf.cf_max_queue < 1 then invalid_arg "Ocapi_service.serve: max_queue < 1";
  mkdir_p cf.cf_state_dir;
  mkdir_p cf.cf_artifact_dir;
  let t0 = Unix.gettimeofday () in
  let say fmt =
    Printf.ksprintf
      (fun s -> match cf.cf_on_line with Some f -> f s | None -> ())
      fmt
  in
  let journal_path = Filename.concat cf.cf_state_dir "journal.jsonl" in
  let recovered_state =
    match journal_load journal_path with
    | Ok entries -> replay entries
    | Error msg ->
      Ocapi_error.fail Internal ~engine:"service" "unreadable journal: %s" msg
  in
  let jr = journal_open journal_path in
  (* The completed store doubles as the dedup source across restarts —
     but only entries whose artifact survived on disk count; a deleted
     artifact means the work must be redone. *)
  let completed_tbl = Hashtbl.create 64 in
  List.iter
    (fun (key, artifact) ->
      if Sys.file_exists (Filename.concat cf.cf_artifact_dir artifact) then
        Hashtbl.replace completed_tbl key artifact)
    recovered_state.rv_completed;
  let active_keys = Hashtbl.create 64 in
  let pending = ref [] in
  let seq = ref 0 in
  let sm_submitted = ref 0
  and sm_deduped = ref 0
  and sm_completed = ref 0
  and sm_failed = ref 0
  and sm_poisoned = ref 0
  and sm_rejected = ref 0
  and sm_crashes = ref 0
  and sm_retries = ref 0
  and sm_chaos_kills = ref 0 in
  let event ?corr kind fields = Ocapi_obs.Events.emit ?corr ~fields kind in
  let enqueue job =
    Hashtbl.replace active_keys job.q_key ();
    pending := !pending @ [ job ]
  in
  (* Requeue journaled jobs that never reached a terminal state: a
     restarted server resumes exactly where the dead one stopped. *)
  List.iter
    (fun p ->
      incr seq;
      enqueue
        {
          q_corr = p.p_corr;
          q_key = p.p_key;
          q_label = p.p_label;
          q_artifact = p.p_artifact;
          q_request = p.p_request;
          q_prio = request_prio p.p_request;
          q_seq = !seq;
          q_crashes = p.p_attempts;
          q_ready_at = 0.;
        })
    recovered_state.rv_pending;
  let sm_recovered = List.length recovered_state.rv_pending in
  if sm_recovered > 0 then say "recovered %d pending job(s) from the journal" sm_recovered;
  (* Admission: journal first, then enqueue — write-ahead. *)
  let submit raw =
    incr sm_submitted;
    let raw_corr () = corr_of_key ("raw|" ^ Json.to_string raw) in
    match Ocapi_batch.request_of_json raw with
    | Error msg ->
      let corr = raw_corr () in
      journal_append jr (J_rejected { jx_corr = corr; jx_label = msg });
      incr sm_rejected;
      event ~corr "job_rejected" [ ("reason", Json.String msg) ];
      say "rejected: %s" msg
    | Ok req -> (
      match
        try Ok (Ocapi_batch.prepare_request req) with
        | Ocapi_error.Error e -> Error e
        | Invalid_argument m ->
          Error (Ocapi_error.make Unsupported ~engine:"service" m)
      with
      | Error e ->
        let corr = raw_corr () in
        journal_append jr
          (J_failed
             {
               jf_corr = corr;
               jf_code = Ocapi_error.code_label e.e_code;
               jf_message = e.e_message;
             });
        incr sm_failed;
        event ~corr "job_failed"
          [ ("code", Json.String (Ocapi_error.code_label e.e_code)) ];
        say "failed (not runnable): %s" e.e_message
      | Ok prep ->
        (* A "chaos"-marked request is a different job from its plain
           twin: fold the marker into the key so they never dedup into
           each other. *)
        let key, corr, artifact =
          match Json.member "chaos" raw with
          | Some (Json.String c) ->
            let key = prep.pr_key ^ "|chaos=" ^ c in
            (key, corr_of_key key, "chaos-" ^ prep.pr_artifact_file)
          | _ -> (prep.pr_key, prep.pr_corr, prep.pr_artifact_file)
        in
        let submitted dedup =
          journal_append jr
            (J_submitted
               {
                 js_corr = corr;
                 js_key = key;
                 js_label = prep.pr_label;
                 js_artifact = artifact;
                 js_request = raw;
                 js_dedup = dedup;
               })
        in
        if
          Hashtbl.mem completed_tbl key
          && Sys.file_exists
               (Filename.concat cf.cf_artifact_dir (Hashtbl.find completed_tbl key))
        then begin
          submitted true;
          incr sm_deduped;
          event ~corr "job_deduped" [ ("label", Json.String prep.pr_label) ];
          say "dedup (journal): %s" prep.pr_label
        end
        else if Hashtbl.mem active_keys key then begin
          submitted true;
          incr sm_deduped;
          event ~corr "job_deduped" [ ("label", Json.String prep.pr_label) ];
          say "dedup (queued): %s" prep.pr_label
        end
        else if List.length !pending >= cf.cf_max_queue then begin
          journal_append jr (J_rejected { jx_corr = corr; jx_label = prep.pr_label });
          incr sm_rejected;
          Ocapi_obs.count "service.job.rejected";
          event ~corr "job_rejected"
            [
              ("label", Json.String prep.pr_label);
              ("reason", Json.String (Ocapi_error.code_label Overloaded));
            ];
          say "rejected (overloaded): %s" prep.pr_label
        end
        else begin
          submitted false;
          incr seq;
          enqueue
            {
              q_corr = corr;
              q_key = key;
              q_label = prep.pr_label;
              q_artifact = artifact;
              q_request = raw;
              q_prio = request_prio raw;
              q_seq = !seq;
              q_crashes = 0;
              q_ready_at = 0.;
            };
          event ~corr "job_submitted" [ ("label", Json.String prep.pr_label) ]
        end)
  in
  List.iter submit requests;
  (* Supervision proper. *)
  let drain = Atomic.make false and abort = Atomic.make false in
  let on_signal _ =
    (* Handlers may run on any domain: only flip atomics here. *)
    if Atomic.get drain then Atomic.set abort true else Atomic.set drain true
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let slots : slot option array = Array.make cf.cf_workers None in
  let chaos_rng =
    match cf.cf_chaos with
    | Some c -> Some (Random.State.make [| c.ch_seed |])
    | None -> None
  in
  let completed_count = ref 0 in
  let take_ready now =
    let best = ref None in
    List.iter
      (fun j ->
        if j.q_ready_at <= now then
          match !best with
          | Some b when (b.q_prio, b.q_seq) <= (j.q_prio, j.q_seq) -> ()
          | _ -> best := Some j)
      !pending;
    match !best with
    | Some j ->
      pending := List.filter (fun x -> x != j) !pending;
      Some j
    | None -> None
  in
  let launch job =
    let attempt = job.q_crashes + 1 in
    journal_append jr (J_started { jt_corr = job.q_corr; jt_attempt = attempt });
    event ~corr:job.q_corr "job_started"
      [ ("label", Json.String job.q_label); ("attempt", Json.Int attempt) ];
    let artifact_path = Filename.concat cf.cf_artifact_dir job.q_artifact in
    let argv =
      cf.cf_worker_cmd
      @ [ "--request"; Json.to_string job.q_request; "--artifact"; artifact_path ]
      @ (match cf.cf_job_timeout with
        | Some t -> [ "--timeout"; Printf.sprintf "%g" t ]
        | None -> [])
      @
      match cf.cf_cache_dir with
      | Some d -> [ "--cache-dir"; d ]
      | None -> []
    in
    let prog = List.hd cf.cf_worker_cmd in
    let r, w = Unix.pipe () in
    Unix.set_nonblock r;
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    let pid = Unix.create_process prog (Array.of_list argv) devnull w Unix.stderr in
    Unix.close w;
    Unix.close devnull;
    let now = Unix.gettimeofday () in
    let deadline =
      match
        match request_timeout job.q_request with
        | Some t -> Some t
        | None -> cf.cf_job_timeout
      with
      | Some t -> Some (now +. t +. cf.cf_kill_grace)
      | None -> None
    in
    let chaos_at =
      match (chaos_rng, cf.cf_chaos) with
      | Some rng, Some c when attempt = 1 ->
        (* Chaos kills target first attempts only: a retried job is
           left alone, so every chaos run still converges. *)
        if Random.State.float rng 1.0 < c.ch_kill_prob then
          Some (now +. Random.State.float rng c.ch_kill_delay)
        else None
      | _ -> None
    in
    say "start [%s] %s (attempt %d/%d)" job.q_corr job.q_label attempt cf.cf_retries;
    {
      s_pid = pid;
      s_fd = r;
      s_job = job;
      s_attempt = attempt;
      s_deadline = deadline;
      s_chaos_at = chaos_at;
      s_buf = Buffer.create 64;
      s_last_hb = now;
      s_done = false;
      s_fail = None;
      s_killed = None;
      s_eof = false;
    }
  in
  let handle_line sl line =
    sl.s_last_hb <- Unix.gettimeofday ();
    if line = "hb" then ()
    else if line = "done" then sl.s_done <- true
    else if starts_with "fail " line then sl.s_fail <- Some (parse_fail_line line)
  in
  let read_slot sl =
    let bytes = Bytes.create 4096 in
    let rec fill () =
      match Unix.read sl.s_fd bytes 0 4096 with
      | 0 -> sl.s_eof <- true
      | n ->
        Buffer.add_subbytes sl.s_buf bytes 0 n;
        fill ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
    in
    fill ();
    let rec consume = function
      | [] -> ()
      | [ tail ] ->
        Buffer.clear sl.s_buf;
        Buffer.add_string sl.s_buf tail
      | line :: rest ->
        handle_line sl line;
        consume rest
    in
    consume (String.split_on_char '\n' (Buffer.contents sl.s_buf))
  in
  let kill_slot sl reason =
    (try Unix.kill sl.s_pid Sys.sigkill with Unix.Unix_error _ -> ());
    sl.s_killed <- Some reason
  in
  let classify sl status =
    let job = sl.s_job in
    let artifact_path = Filename.concat cf.cf_artifact_dir job.q_artifact in
    (* "done" is printed only after the atomic rename, so the pair
       (done seen, artifact exists) is proof of completion even when
       our own chaos kill raced the worker's exit. *)
    if sl.s_done && Sys.file_exists artifact_path then begin
      journal_append jr
        (J_completed { jd_corr = job.q_corr; jd_artifact = job.q_artifact });
      Hashtbl.replace completed_tbl job.q_key job.q_artifact;
      Hashtbl.remove active_keys job.q_key;
      incr sm_completed;
      Ocapi_obs.count "service.job.completed";
      event ~corr:job.q_corr "job_completed" [ ("label", Json.String job.q_label) ];
      say "done [%s] %s" job.q_corr job.q_label;
      incr completed_count;
      match cf.cf_die_after with
      | Some n when !completed_count >= n ->
        (* The crash-testing failpoint: die the way a real crash does —
           no cleanup, no drain — and let the journal prove itself. *)
        Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ()
    end
    else begin
      match (status, sl.s_fail, sl.s_killed) with
      | Unix.WEXITED c, Some (code, message), None when c = exit_failed ->
        (* A structured failure is the job's verdict, not the worker's:
           terminal, no retry. *)
        journal_append jr
          (J_failed { jf_corr = job.q_corr; jf_code = code; jf_message = message });
        Hashtbl.remove active_keys job.q_key;
        incr sm_failed;
        Ocapi_obs.count "service.job.failed";
        event ~corr:job.q_corr "job_failed"
          [ ("label", Json.String job.q_label); ("code", Json.String code) ];
        say "failed [%s] %s: %s: %s" job.q_corr job.q_label code message
      | status, _, killed ->
        let reason =
          match killed with Some r -> r | None -> status_string status
        in
        (* A chaos kill that raced a finished worker lands in the
           completed branch above; only a kill that actually cost an
           attempt counts here. *)
        if reason = "chaos" then begin
          incr sm_chaos_kills;
          Ocapi_obs.count "service.chaos.kills"
        end;
        incr sm_crashes;
        Ocapi_obs.count "service.worker.crashed";
        journal_append jr
          (J_crashed
             { jc_corr = job.q_corr; jc_attempt = sl.s_attempt; jc_reason = reason });
        event ~corr:job.q_corr "worker_crashed"
          [
            ("label", Json.String job.q_label);
            ("attempt", Json.Int sl.s_attempt);
            ("reason", Json.String reason);
          ];
        say "crash [%s] %s (attempt %d: %s)" job.q_corr job.q_label sl.s_attempt
          reason;
        job.q_crashes <- sl.s_attempt;
        if sl.s_attempt >= cf.cf_retries then begin
          (* Poisoned: this job has killed every worker sent at it. *)
          let code = Ocapi_error.code_label Retries_exhausted in
          journal_append jr
            (J_failed
               {
                 jf_corr = job.q_corr;
                 jf_code = code;
                 jf_message =
                   Printf.sprintf "poisoned after %d crashed attempts (last: %s)"
                     sl.s_attempt reason;
               });
          Hashtbl.remove active_keys job.q_key;
          incr sm_failed;
          incr sm_poisoned;
          Ocapi_obs.count "service.job.poisoned";
          event ~corr:job.q_corr "job_failed"
            [ ("label", Json.String job.q_label); ("code", Json.String code) ];
          say "poisoned [%s] %s" job.q_corr job.q_label
        end
        else begin
          let backoff =
            backoff_delay ~base:cf.cf_backoff_base ~cap:cf.cf_backoff_cap
              ~seed:cf.cf_backoff_seed ~corr:job.q_corr ~attempt:sl.s_attempt
          in
          journal_append jr
            (J_retried
               {
                 jr_corr = job.q_corr;
                 jr_attempt = sl.s_attempt + 1;
                 jr_backoff = backoff;
               });
          incr sm_retries;
          Ocapi_obs.count "service.job.retried";
          event ~corr:job.q_corr "job_retried"
            [
              ("label", Json.String job.q_label);
              ("attempt", Json.Int (sl.s_attempt + 1));
              ("backoff", Json.Float backoff);
            ];
          say "retry [%s] %s in %.2fs (attempt %d/%d)" job.q_corr job.q_label
            backoff (sl.s_attempt + 1) cf.cf_retries;
          job.q_ready_at <- Unix.gettimeofday () +. backoff;
          pending := !pending @ [ job ]
        end
    end
  in
  let running () = Array.exists Option.is_some slots in
  let tick = 0.05 in
  let finished = ref false in
  let drained = ref false and aborted = ref false in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      journal_close jr)
    (fun () ->
      while not !finished do
        (* 1. Fill free slots with ready work (unless draining). *)
        if not (Atomic.get drain) then begin
          let now = Unix.gettimeofday () in
          let continue = ref true in
          while !continue do
            let free = ref None in
            Array.iteri
              (fun i s -> if !free = None && s = None then free := Some i)
              slots;
            match !free with
            | None -> continue := false
            | Some i -> (
              match take_ready now with
              | Some job -> slots.(i) <- Some (launch job)
              | None -> continue := false)
          done
        end;
        (* 2. Wait for worker output (or just pass time). *)
        let fds =
          Array.to_list slots
          |> List.filter_map (function
               | Some sl when not sl.s_eof -> Some sl.s_fd
               | _ -> None)
        in
        let readable =
          if Atomic.get abort then []
          else if fds = [] then begin
            (try Unix.sleepf tick
             with Unix.Unix_error (Unix.EINTR, _, _) -> ());
            []
          end
          else begin
            match Unix.select fds [] [] tick with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          end
        in
        Array.iter
          (function
            | Some sl when List.memq sl.s_fd readable -> read_slot sl
            | _ -> ())
          slots;
        (* 3. Kill policies: chaos schedule, deadline backstop, silent
           (heartbeat-less) workers. *)
        let now = Unix.gettimeofday () in
        Array.iter
          (function
            | Some sl when sl.s_killed = None ->
              (match sl.s_chaos_at with
              | Some t when now >= t -> kill_slot sl "chaos"
              | _ -> ());
              if sl.s_killed = None then begin
                match sl.s_deadline with
                | Some d when now >= d -> kill_slot sl "deadline"
                | _ -> ()
              end;
              if sl.s_killed = None && now -. sl.s_last_hb > cf.cf_heartbeat_timeout
              then kill_slot sl "heartbeat"
            | _ -> ())
          slots;
        (* 4. Reap and classify exits. *)
        Array.iteri
          (fun i osl ->
            match osl with
            | None -> ()
            | Some sl -> (
              match Unix.waitpid [ Unix.WNOHANG ] sl.s_pid with
              | 0, _ -> ()
              | _, status ->
                read_slot sl;
                Unix.close sl.s_fd;
                slots.(i) <- None;
                classify sl status
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                read_slot sl;
                Unix.close sl.s_fd;
                slots.(i) <- None;
                classify sl (Unix.WEXITED 255)))
          slots;
        (* 5. Shutdown decisions. *)
        if Atomic.get abort then begin
          Array.iteri
            (fun i osl ->
              match osl with
              | None -> ()
              | Some sl ->
                (try Unix.kill sl.s_pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] sl.s_pid)
                 with Unix.Unix_error _ -> ());
                Unix.close sl.s_fd;
                slots.(i) <- None)
            slots;
          aborted := true;
          finished := true;
          say "aborted: %d job(s) left journaled for the next run"
            (List.length !pending)
        end
        else if not (running ()) then begin
          if Atomic.get drain then begin
            drained := !pending <> [];
            finished := true;
            if !drained then
              say "drained: %d job(s) left journaled for the next run"
                (List.length !pending)
          end
          else if !pending = [] then finished := true
        end
      done);
  {
    sm_submitted = !sm_submitted;
    sm_deduped = !sm_deduped;
    sm_recovered;
    sm_completed = !sm_completed;
    sm_failed = !sm_failed;
    sm_poisoned = !sm_poisoned;
    sm_rejected = !sm_rejected;
    sm_crashes = !sm_crashes;
    sm_retries = !sm_retries;
    sm_chaos_kills = !sm_chaos_kills;
    sm_drained = !drained;
    sm_aborted = !aborted;
    sm_seconds = Unix.gettimeofday () -. t0;
  }
