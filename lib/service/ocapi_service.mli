(** The resilient campaign service: supervised worker {e processes},
    retry with seeded exponential backoff, and a crash-recoverable
    write-ahead job journal.

    [Ocapi_batch] runs a campaign on worker {e domains} of one process:
    fast, deterministic — and fragile.  A segfaulting engine, an
    OOM-killed worker, a hung job or a Ctrl-C loses the whole campaign
    and its queue state.  This module is the resilience layer above it,
    sharing the batch vocabulary (the same JSONL manifests, the same
    {!Flow.Cache.key_of} dedup fingerprints via
    {!Ocapi_batch.prepare_request}, the same canonical artifact bytes)
    but farming execution out to independent OS-level worker processes
    (the EDAptix model) under one supervising server:

    - {b Process isolation}: the server ([ocapi serve]) spawns
      [ocapi worker] subprocesses, one job per process.  A worker that
      crashes, is killed, or stops heartbeating takes down only its own
      job; the server observes the death via [waitpid] and the
      heartbeat pipe and requeues the job.
    - {b Retry with backoff}: each job has a bounded attempt budget
      ({!config.cf_retries}).  A crashed attempt is requeued after
      {!backoff_delay} — exponential in the attempt number with
      deterministic seeded jitter — and a job that kills every worker
      sent at it is {e poisoned}: resolved [Failed] with code
      [Retries_exhausted] instead of wedging the queue.
    - {b Write-ahead journal}: every submission and state transition is
      appended to [state_dir/journal.jsonl] {e before} it takes effect.
      On restart {!replay} rebuilds the completed-job dedup store and
      the pending set, so a server crash (or kill -9) loses no queue
      state and finished work is never re-executed — across restarts
      and across client populations sharing one state directory.
    - {b Graceful degradation}: SIGTERM/SIGINT enter drain mode (finish
      running jobs, launch nothing new, journal everything, exit); a
      second signal aborts hard — which is safe, because the journal
      replays.  The pending queue is bounded ({!config.cf_max_queue});
      submissions beyond it are rejected with code [Overloaded].
    - {b Chaos mode}: a seeded kill schedule ({!chaos}) SIGKILLs
      first-attempt workers at random, and per-job [{"chaos":
      "crash"|"hang"}] manifest fields make a worker self-destruct or
      hang silently.  Because artifacts are canonical bytes written
      atomically by the worker that finishes the job, a chaos run
      (worker kills, server kill, restart) converges to an artifact
      tree byte-identical to an undisturbed serial run — the property
      [scripts/crash_recovery_gate.sh] checks in CI. *)

(** {1 Retry backoff} *)

(** [backoff_delay ~base ~cap ~seed ~corr ~attempt] is the requeue
    delay in seconds after failed attempt number [attempt] (1-based):
    [base * 2{^attempt-1}], scaled by a jitter factor in [[1.0, 1.5)]
    drawn deterministically from [(seed, corr, attempt)], and clamped
    to [cap].  Deterministic, so a chaos campaign's schedule reproduces
    from its seed; jittered, so a crashed fleet does not retry in
    lockstep.
    @raise Invalid_argument on [base <= 0.], [cap < base] or
    [attempt < 1]. *)
val backoff_delay :
  base:float -> cap:float -> seed:int -> corr:string -> attempt:int -> float

(** {1 The job journal}

    A JSONL write-ahead log: one JSON object per line, appended (and
    flushed) before the transition it records takes effect, so the
    on-disk journal is never behind the server's in-memory state.  A
    line interrupted mid-write by a crash is tolerated by
    {!journal_load} (a truncated {e final} line is dropped).

    Schema, by ["ev"] field:
    {v
{"ev":"submitted","corr":C,"key":K,"label":L,"artifact":F,"dedup":B,"request":{...}}
{"ev":"started","corr":C,"attempt":N}
{"ev":"crashed","corr":C,"attempt":N,"reason":R}
{"ev":"retried","corr":C,"attempt":N,"backoff":S}
{"ev":"completed","corr":C,"artifact":F}
{"ev":"failed","corr":C,"code":E,"message":M}
{"ev":"rejected","corr":C,"label":L}
    v} *)

type entry =
  | J_submitted of {
      js_corr : string;
      js_key : string;  (** full {!Flow.Cache.key_of} dedup key *)
      js_label : string;
      js_artifact : string;  (** artifact file name (not path) *)
      js_request : Ocapi_obs.Json.t;  (** original manifest object *)
      js_dedup : bool;
          (** served by an existing execution; replay skips it *)
    }
  | J_started of { jt_corr : string; jt_attempt : int }
  | J_crashed of { jc_corr : string; jc_attempt : int; jc_reason : string }
  | J_retried of { jr_corr : string; jr_attempt : int; jr_backoff : float }
      (** [jr_attempt] is the {e next} attempt number *)
  | J_completed of { jd_corr : string; jd_artifact : string }
  | J_failed of { jf_corr : string; jf_code : string; jf_message : string }
  | J_rejected of { jx_corr : string; jx_label : string }

val entry_json : entry -> Ocapi_obs.Json.t
val entry_of_json : Ocapi_obs.Json.t -> (entry, string) result

(** An open journal (append channel, line-buffered with an explicit
    flush per entry). *)
type journal

(** [journal_open path] opens (creating if missing) the journal for
    appending. *)
val journal_open : string -> journal

val journal_append : journal -> entry -> unit
val journal_close : journal -> unit

(** [journal_load path] reads a journal back.  A missing file is
    [Ok []]; blank lines are skipped; an unparsable {e final} line is
    dropped (the crash-interrupted append); an unparsable interior
    line is an error. *)
val journal_load : string -> (entry list, string) result

(** {1 Replay} *)

(** A journaled job with no terminal record: it must run (again) after
    a restart.  [p_attempts] counts the {e worker-crash} attempts
    already consumed (journal [crashed] records); a server death
    mid-run consumes no budget — the job was not at fault. *)
type pending = {
  p_corr : string;
  p_key : string;
  p_label : string;
  p_artifact : string;
  p_request : Ocapi_obs.Json.t;
  p_attempts : int;
}

type recovered = {
  rv_completed : (string * string) list;
      (** (dedup key, artifact file) of jobs that finished [Completed];
          resubmissions of these keys dedup instead of re-executing *)
  rv_failed : (string * string) list;
      (** (dedup key, error code) terminal failures; {e not} a dedup
          source — a failed job stays resubmittable, as in the batch
          service *)
  rv_pending : pending list;  (** in original submission order *)
}

(** Fold a journal into the state a restarting server resumes from.
    Pure; the inverse direction (state to journal) is {!serve}'s
    write-ahead discipline. *)
val replay : entry list -> recovered

(** {1 Configuration} *)

(** Seeded chaos injection: when configured, each {e first} attempt of
    a job is, with probability [ch_kill_prob], scheduled to be
    SIGKILLed between 0 and [ch_kill_delay] seconds after launch.
    Retried attempts are never chaos-killed, so every job still
    converges — chaos exercises the recovery machinery, not the retry
    budget. *)
type chaos = { ch_seed : int; ch_kill_prob : float; ch_kill_delay : float }

type config = {
  cf_workers : int;  (** concurrent worker processes *)
  cf_state_dir : string;  (** journal (and any service state) home *)
  cf_artifact_dir : string;
  cf_worker_cmd : string list;
      (** argv prefix of a worker; the server appends
          [--request JSON --artifact PATH] (and [--timeout],
          [--cache-dir]).  Default: [[Sys.executable_name; "worker"]] —
          the CLI re-invoking itself. *)
  cf_retries : int;  (** attempt budget per job (>= 1) *)
  cf_backoff_base : float;
  cf_backoff_cap : float;
  cf_backoff_seed : int;
  cf_job_timeout : float option;
      (** default cooperative per-job timeout (seconds), applied when a
          request carries none; enforced inside the worker *)
  cf_kill_grace : float;
      (** wall-clock slack beyond the cooperative timeout before the
          server's kill(9) backstop fires on a worker that ignored it *)
  cf_heartbeat_timeout : float;
      (** kill(9) a worker silent for this long (its heartbeat thread
          prints once a second, so this bounds detection of a truly
          wedged process) *)
  cf_max_queue : int;  (** pending-queue bound; beyond it: [Overloaded] *)
  cf_cache_dir : string option;
      (** when set, workers enable {!Flow.Cache} on this directory *)
  cf_chaos : chaos option;
  cf_die_after : int option;
      (** crash-testing failpoint: SIGKILL {e the server itself} after
          this many journaled completions *)
  cf_on_line : (string -> unit) option;  (** streaming progress lines *)
}

(** Defaults: 2 workers, [_generated/service] state,
    [_generated/service/artifacts] artifacts, CLI-re-invoking worker
    command, 3 attempts, 0.5 s base / 30 s cap backoff (seed 1), no
    cooperative timeout, 5 s kill grace, 30 s heartbeat timeout, queue
    bound 1024, no cache, no chaos, no failpoint, silent. *)
val default_config : config

(** {1 Serving} *)

type summary = {
  sm_submitted : int;  (** manifest submissions (not replayed jobs) *)
  sm_deduped : int;
      (** submissions served by the journal's completed store or by an
          already-queued execution *)
  sm_recovered : int;  (** pending jobs requeued by journal replay *)
  sm_completed : int;
  sm_failed : int;  (** terminal failures, including poisoned jobs *)
  sm_poisoned : int;  (** subset of [sm_failed] with [Retries_exhausted] *)
  sm_rejected : int;  (** [Overloaded] backpressure rejections *)
  sm_crashes : int;  (** worker deaths observed (incl. chaos/backstop) *)
  sm_retries : int;  (** requeues after crashes *)
  sm_chaos_kills : int;
  sm_drained : bool;  (** a signal drained the service with work left *)
  sm_aborted : bool;  (** a second signal aborted it mid-flight *)
  sm_seconds : float;
}

(** [serve config ~requests] runs the service until the queue drains
    (or a signal drains/aborts it): replays the journal, admits
    [requests] (raw manifest objects — unknown fields such as ["chaos"]
    ride along into the journal and the worker), supervises up to
    [cf_workers] worker processes, and returns the summary.  Installs
    SIGTERM/SIGINT handlers for the duration.  Lifecycle events
    ([job_submitted], [job_started], [worker_crashed], [job_retried],
    [job_completed], [job_failed], [job_rejected], [job_deduped]) are
    emitted into {!Ocapi_obs.Events} when that log is enabled, joined
    on the same correlation ids as the batch service and the trace
    spans. *)
val serve : config -> requests:Ocapi_obs.Json.t list -> summary

(** {1 The worker side} *)

(** Exit code of a worker that ran its job and produced a {e
    structured} failure (printed as a [fail {...}] line on stdout);
    exit 0 means the artifact was written.  Anything else — a signal, a
    segfault, an OOM kill, a nonzero exit without the [fail] protocol —
    is a worker crash, retried by the server. *)
val exit_failed : int

(** [worker_main ~request ~artifact ()] is the body of [ocapi worker]:
    parse the manifest object, build and run the job
    ({!Ocapi_batch.prepare_request}), heartbeat on stdout ([hb] lines,
    every [heartbeat_every] seconds from a dedicated thread, so even a
    compute-bound job stays observable), enforce the cooperative
    [timeout] through the progress hook, and write the canonical
    artifact bytes atomically (tmp + rename) to [artifact].  Returns
    the process exit code (0, {!exit_failed}).

    Chaos failpoints, read from the request's ["chaos"] field:
    ["crash"] SIGKILLs the process after the job starts (never writes
    the artifact); ["hang"] sleeps forever without heartbeats, so the
    server's backstop must kill it. *)
val worker_main :
  ?timeout:float ->
  ?heartbeat_every:float ->
  ?cache_dir:string ->
  request:Ocapi_obs.Json.t ->
  artifact:string ->
  unit ->
  int

(** {1 Manifests} *)

(** [read_manifest path] parses a JSONL manifest into raw objects,
    skipping blank lines and [#] comments ([Error] carries the 1-based
    line number).  Unlike {!Ocapi_batch.read_manifest} the objects are
    kept raw: the journal stores them verbatim and service-only fields
    (["chaos"]) survive the round trip. *)
val read_manifest : string -> (Ocapi_obs.Json.t list, string) result
