(* The uniform cycle-engine interface: one session calling convention
   over the interpreted, compiled and RTL engines, plus the registry
   the upper layers (Flow, fault campaigns, CLI, bench) resolve
   engines from by name. *)

type histories = (string * (int * Fixed.t) list) list

type session = {
  ses_engine : string;
  ses_step : unit -> unit;
  ses_cycle : unit -> int;
  ses_reset : unit -> unit;
  ses_histories : unit -> histories;
  ses_register_count : int;
  ses_register_info : int -> string * Fixed.format;
  ses_poke_register_bit : int -> bit:int -> unit;
  ses_component_count : int;
  ses_component_info : int -> string * int;
  ses_component_state : int -> int;
  ses_force_component_state : int -> int -> unit;
  ses_resident_words : unit -> int;
  ses_static_size : int option;
  ses_close : unit -> unit;
}

type options = { opt_two_phase : bool; opt_max_deltas : int option }

let default_options = { opt_two_phase = false; opt_max_deltas = None }

type capabilities = {
  cap_two_phase : bool;
  cap_max_deltas : bool;
  cap_shares_registers : bool;
  cap_static_size : bool;
  cap_register_pokes : bool;
  cap_state_pokes : bool;
}

module type ENGINE = sig
  val name : string
  val display : string
  val aliases : string list
  val capabilities : capabilities
  val make : ?options:options -> Cycle_system.t -> session
end

type t = (module ENGINE)

let name_of (module E : ENGINE) = E.name
let display_of (module E : ENGINE) = E.display

(* A close that detaches exactly once, however many times callers'
   cleanup paths run it. *)
let closer sys name =
  let closed = ref false in
  fun () ->
    if not !closed then begin
      closed := true;
      Cycle_system.detach_engine sys name
    end

let probe_histories sys =
  List.filter_map
    (fun p ->
      match Cycle_system.find_component sys p with
      | Some c -> Some (p, Cycle_system.output_history sys c)
      | None -> None)
    (Cycle_system.probes sys)

(* Engines index timed components in their own elaboration order; map
   the system's order onto it once per session. *)
let component_index ~engine ~count ~info comps =
  Array.of_list
    (List.map
       (fun (cname, _) ->
         let rec find i =
           if i >= count then
             raise
               (Ocapi_error.Error
                  (Ocapi_error.make Ocapi_error.Internal ~engine
                     ~construct:cname
                     (Printf.sprintf "component missing from %s"
                        (if engine = "rtl" then "elaboration" else "program"))))
           else if fst (info i) = cname then i
           else find (i + 1)
         in
         find 0)
       comps)

(* --- interpreted three-phase engine -------------------------------------- *)

module Interp_engine = struct
  let name = "interp"
  let display = "interpreted"
  let aliases = [ "interpreted" ]

  let capabilities =
    {
      cap_two_phase = true;
      cap_max_deltas = false;
      cap_shares_registers = true;
      cap_static_size = false;
      cap_register_pokes = true;
      cap_state_pokes = true;
    }

  let make ?(options = default_options) sys =
    let regs = Array.of_list (Cycle_system.all_regs sys) in
    let comps = Array.of_list (Cycle_system.timed_components sys) in
    let step =
      if options.opt_two_phase then fun () -> Cycle_system.cycle_two_phase sys
      else fun () -> Cycle_system.cycle sys
    in
    Cycle_system.attach_engine sys name;
    {
      ses_engine = name;
      ses_step = step;
      ses_cycle = (fun () -> Cycle_system.current_cycle sys);
      ses_reset = (fun () -> Cycle_system.reset sys);
      ses_histories = (fun () -> probe_histories sys);
      ses_register_count = Array.length regs;
      ses_register_info =
        (fun i ->
          let r = regs.(i) in
          (Signal.Reg.name r, Signal.Reg.fmt r));
      ses_poke_register_bit =
        (fun i ~bit ->
          let r = regs.(i) in
          let v = Signal.Reg.value r in
          (* Registers may hold values in a wider expression format than
             the declared one; flip within the stored width. *)
          let b = min bit ((Fixed.fmt v).Fixed.width - 1) in
          Signal.Reg.set_value r (Fixed.flip_bit v b));
      ses_component_count = Array.length comps;
      ses_component_info =
        (fun i ->
          let cname, fsm = comps.(i) in
          (cname, List.length (Fsm.states fsm)));
      ses_component_state =
        (fun i ->
          let _, fsm = comps.(i) in
          Fsm.state_index (Fsm.current fsm));
      ses_force_component_state =
        (fun i s ->
          let cname, fsm = comps.(i) in
          let n = List.length (Fsm.states fsm) in
          if s < 0 || s >= n then
            raise
              (Ocapi_error.Error
                 (Ocapi_error.make Ocapi_error.Invalid_state ~engine:name
                    ~construct:cname
                    ~cycle:(Cycle_system.current_cycle sys)
                    (Printf.sprintf
                       "state index %d outside the %d encoded states" s n)))
          else Fsm.force_state fsm s);
      ses_resident_words = (fun () -> Obj.reachable_words (Obj.repr sys));
      ses_static_size = None;
      ses_close = closer sys name;
    }
end

(* --- compiled closure-program engine -------------------------------------- *)

module Compiled_engine = struct
  let name = "compiled"
  let display = "compiled"
  let aliases = []

  let capabilities =
    {
      cap_two_phase = false;
      cap_max_deltas = false;
      cap_shares_registers = false;
      cap_static_size = true;
      cap_register_pokes = true;
      cap_state_pokes = true;
    }

  let make ?options:_ sys =
    Cycle_system.reset sys;
    let prog = Compiled_sim.compile sys in
    let probes = Cycle_system.probes sys in
    let comp_index =
      component_index ~engine:name
        ~count:(Compiled_sim.component_count prog)
        ~info:(Compiled_sim.component_info prog)
        (Cycle_system.timed_components sys)
    in
    Cycle_system.attach_engine sys name;
    {
      ses_engine = name;
      ses_step = (fun () -> Compiled_sim.step prog);
      ses_cycle = (fun () -> Compiled_sim.current_cycle prog);
      ses_reset = (fun () -> Compiled_sim.reset prog);
      ses_histories =
        (fun () ->
          List.map (fun p -> (p, Compiled_sim.output_history prog p)) probes);
      ses_register_count = Compiled_sim.register_count prog;
      ses_register_info = Compiled_sim.register_info prog;
      ses_poke_register_bit = Compiled_sim.flip_register_bit prog;
      ses_component_count = Compiled_sim.component_count prog;
      ses_component_info =
        (fun i -> Compiled_sim.component_info prog comp_index.(i));
      ses_component_state =
        (fun i -> Compiled_sim.component_state prog comp_index.(i));
      ses_force_component_state =
        (fun i s -> Compiled_sim.set_component_state prog comp_index.(i) s);
      ses_resident_words = (fun () -> Obj.reachable_words (Obj.repr prog));
      ses_static_size = Some (Compiled_sim.statement_count prog);
      ses_close = closer sys name;
    }
end

(* --- event-driven RTL engine ---------------------------------------------- *)

module Rtl_engine = struct
  let name = "rtl"
  let display = "rtl"
  let aliases = [ "rtl-sim"; "rt" ]

  let capabilities =
    {
      cap_two_phase = false;
      cap_max_deltas = true;
      cap_shares_registers = true;
      cap_static_size = false;
      cap_register_pokes = true;
      cap_state_pokes = true;
    }

  let make ?(options = default_options) sys =
    Cycle_system.reset sys;
    let rtl = Rtl.of_system ?max_deltas:options.opt_max_deltas sys in
    let probes = Cycle_system.probes sys in
    let comp_index =
      component_index ~engine:name
        ~count:(Rtl.component_count rtl)
        ~info:(Rtl.component_info rtl)
        (Cycle_system.timed_components sys)
    in
    Cycle_system.attach_engine sys name;
    {
      ses_engine = name;
      ses_step = (fun () -> Rtl.cycle rtl);
      ses_cycle = (fun () -> Rtl.current_cycle rtl);
      ses_reset =
        (fun () ->
          (* The elaboration shares the system's register objects:
             restore both so the system is pristine between runs. *)
          Rtl.reset rtl;
          Cycle_system.reset sys);
      ses_histories =
        (fun () -> List.map (fun p -> (p, Rtl.output_history rtl p)) probes);
      ses_register_count = Rtl.register_count rtl;
      ses_register_info = Rtl.register_info rtl;
      ses_poke_register_bit = Rtl.flip_register_bit rtl;
      ses_component_count = Rtl.component_count rtl;
      ses_component_info = (fun i -> Rtl.component_info rtl comp_index.(i));
      ses_component_state =
        (fun i -> Rtl.component_state rtl comp_index.(i));
      ses_force_component_state =
        (fun i s -> Rtl.set_component_state rtl comp_index.(i) s);
      ses_resident_words = (fun () -> Obj.reachable_words (Obj.repr rtl));
      ses_static_size = None;
      ses_close = closer sys name;
    }
end

(* --- registry -------------------------------------------------------------- *)

let engines : t list ref = ref []

let register e = engines := !engines @ [ e ]

let all () = !engines

let names () = List.map name_of !engines

let find label =
  List.find_opt
    (fun (module E : ENGINE) -> E.name = label || List.mem label E.aliases)
    !engines

let get label =
  match find label with
  | Some e -> e
  | None ->
    Ocapi_error.fail Ocapi_error.Unsupported ~engine:"registry"
      "unknown engine %S (known: %s)" label
      (String.concat ", " (names ()))

let () =
  register (module Interp_engine : ENGINE);
  register (module Compiled_engine : ENGINE);
  register (module Rtl_engine : ENGINE)

(* --- uniform execution ----------------------------------------------------- *)

let run ?inject ?progress ses ~cycles =
  ses.ses_reset ();
  (try
     for c = 0 to cycles - 1 do
       (match progress with Some f -> f c | None -> ());
       (match inject with
       | Some (at, poke) when at = c -> poke ()
       | _ -> ());
       ses.ses_step ()
     done
   with e ->
     ses.ses_reset ();
     raise e);
  let result = ses.ses_histories () in
  ses.ses_reset ();
  result
