(** The uniform cycle-engine interface and registry.

    The paper's environment runs the {e same} captured design through
    interchangeable evaluation back-ends — three-phase interpreted
    scheduling, compiled-code simulation, the regenerated native
    simulator, event-driven RT simulation (sections 4–5, Table 1).
    This module is that interchangeability made first-class: one module
    type {!ENGINE}, one {!session} calling convention (stepwise
    execution, probe histories, and the register / FSM-state poke
    surface the SEU campaigns need), and a registry of first-class
    modules wrapping the four implementations.

    Everything above this layer — [Flow], [Ocapi_fault], the CLI, the
    benchmarks — selects engines by {e name} through the registry
    instead of branching per engine.  The gate-level simulator
    ([Netlist.Sim]) is not a cycle engine and stays outside.

    Overview, in reading order:

    - {!section:sessions} — the {!session} record every engine's
      [make] returns: the whole per-engine surface in one place.
    - {!section:options} — per-engine elaboration {!options} and the
      {!capabilities} record that says which engine honours what.
    - {!section:interface} — the {!ENGINE} module type an
      implementation provides.
    - {!section:registry} — name/alias lookup ({!find}, {!get}) and
      registration ({!register}).
    - {!section:execution} — {!run}, the one stepping discipline
      shared by simulation, sweeps and fault campaigns. *)

(** Probe histories, as [(probe name, (cycle, token) list)] pairs —
    the shape of [Cycle_system.output_history] across all engines. *)
type histories = (string * (int * Fixed.t) list) list

(** {1:sessions Sessions}

    A session is one engine instance elaborated over one system:
    the interpreted engine walks the system itself, the compiled
    engine holds a flattened closure program, the RTL engine an
    event-driven elaboration (which {e shares the register objects}
    of the source system).  Sessions mark their system
    ([Cycle_system.attach_engine]) for the lifetime of the session;
    {!run} and the campaign layers use that mark to detect designs
    handed to two consumers at once (code [Shared_state]). *)

type session = {
  ses_engine : string;  (** registry name of the engine *)
  ses_step : unit -> unit;  (** simulate one clock cycle *)
  ses_cycle : unit -> int;  (** cycles simulated since reset *)
  ses_reset : unit -> unit;
      (** cycle counter to zero, registers/FSMs to initial, histories
          cleared — restores the underlying system where the engine
          aliases it *)
  ses_histories : unit -> histories;
  ses_register_count : int;
      (** registers indexed in [Cycle_system.all_regs] order — the
          shared indexing of the SEU campaigns, identical across
          engines *)
  ses_register_info : int -> string * Fixed.format;
  ses_poke_register_bit : int -> bit:int -> unit;
      (** XOR one bit into a register between two steps (a transient
          SEU) *)
  ses_component_count : int;  (** timed components, in system order *)
  ses_component_info : int -> string * int;  (** name, state count *)
  ses_component_state : int -> int;
  ses_force_component_state : int -> int -> unit;
      (** force an FSM's encoded state; driving an unencoded index
          raises [Ocapi_error.Error] with code [Invalid_state] — the
          detected-outcome path of SEU campaigns *)
  ses_resident_words : unit -> int;
      (** reachable heap words of the engine's root state (Table 1's
          memory column) *)
  ses_static_size : int option;
      (** compiled statement count, for engines with a static program
          image *)
  ses_close : unit -> unit;
      (** detach the engine mark from the system; idempotent *)
}

(** {1:options Engine options and capabilities} *)

type options = {
  opt_two_phase : bool;
      (** interpreted engine: classic two-phase scheduling (bench C4
          ablation) instead of three-phase *)
  opt_max_deltas : int option;
      (** RTL engine: delta-cycle budget per settle *)
}

val default_options : options
(** three-phase, engine-default delta budget *)

type capabilities = {
  cap_two_phase : bool;  (** honours [opt_two_phase] *)
  cap_max_deltas : bool;  (** honours [opt_max_deltas] *)
  cap_shares_registers : bool;
      (** the session aliases the system's register objects — run only
          one such session per system at a time *)
  cap_static_size : bool;  (** sessions carry [ses_static_size] *)
  cap_register_pokes : bool;
      (** [ses_poke_register_bit] works; SEU campaigns schedule
          register-bit targets only on engines that say so *)
  cap_state_pokes : bool;
      (** [ses_component_state] / [ses_force_component_state] work;
          SEU campaigns schedule FSM-state targets only on engines
          that say so *)
}

(** {1:interface The engine interface} *)

module type ENGINE = sig
  (** registry key, e.g. ["compiled"] *)
  val name : string

  (** human label used in disagreement-pair names, e.g.
      ["interpreted"] *)
  val display : string

  (** extra names {!find} accepts *)
  val aliases : string list

  val capabilities : capabilities

  val make : ?options:options -> Cycle_system.t -> session
  (** Elaborate a session.  Resets the system first where elaboration
      requires a pristine state (compiled, RTL). *)
end

type t = (module ENGINE)

val name_of : t -> string
val display_of : t -> string

(** {1:registry Registry}

    The built-in engines register themselves in paper order —
    ["interp"], ["compiled"], ["rtl"] — when this module is linked;
    the native engine (["native"], alias ["jit"]) registers fourth,
    from the flow layer's linkage of [Ocapi_native].  {!all} preserves
    registration order (the first engine is the baseline of
    engine-agreement sweeps). *)

val register : t -> unit

(** [find name] resolves [name] against engine names and aliases
    (["interpreted"] finds ["interp"]). *)
val find : string -> t option

(** [get name] is [find], raising [Ocapi_error.Error] with code
    [Unsupported] (listing the known names) on an unknown engine. *)
val get : string -> t

val all : unit -> t list
val names : unit -> string list

(** {1:execution Uniform execution} *)

(** [run ?inject ?progress ses ~cycles] is the one stepping discipline
    shared by plain simulation, campaign controls and faulty runs:
    reset, step [cycles] times — calling [inject]'s thunk just before
    the step of its cycle — read histories, reset again so the session
    (and any aliased system state) is left pristine.  On an engine
    exception the session is reset before the exception propagates,
    keeping the session reusable for the next run (the campaign
    discipline).

    [progress] is called with the cycle index before every step; it may
    raise (e.g. an [Ocapi_error] with code [Timeout]) to abandon the
    run cooperatively — the deadline hook of batch jobs. *)
val run :
  ?inject:int * (unit -> unit) ->
  ?progress:(int -> unit) ->
  session ->
  cycles:int ->
  histories
