(** Naive bit-vector arithmetic, the representation the paper {e avoids}.

    Section 3 claims that "the simulation of the quantization rather than
    the bit-vector representation allows significant simulation speedups".
    This module is the slow comparator for that claim (bench C3) and a
    differential-test oracle for {!Fixed}: every operation is computed
    bit by bit (ripple-carry addition, shift-and-add multiplication) on a
    boolean array, exactly as a register-transfer bit-true simulator
    would. *)

type t
(** A two's-complement (or unsigned) bit vector with a fixed-point
    interpretation identical to a {!Fixed.format}. *)

val of_fixed : Fixed.t -> t
val to_fixed : t -> Fixed.t
val width : t -> int

(** [bit v i] is bit [i], LSB first. *)
val bit : t -> int -> bool

(** Full-precision operations mirroring {!Fixed.add} / [sub] / [mul] /
    [neg]: the result converts back to exactly the same {!Fixed.t}. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** Numeric comparison computed by bitwise subtraction. *)
val compare_value : t -> t -> int

val eq : t -> t -> t
val lt : t -> t -> t

(** [resize ?round ?overflow fmt v] mirrors {!Fixed.resize}, computed on
    the bit representation. Defaults match {!Fixed.resize}. *)
val resize :
  ?round:Fixed.rounding -> ?overflow:Fixed.overflow -> Fixed.format -> t -> t
