(* Bits are stored LSB first: bits.(0) is the least significant bit. *)
type t = { fmt : Fixed.format; bits : bool array }

let width v = Array.length v.bits
let bit v i = v.bits.(i)

let of_fixed x =
  let fmt = Fixed.fmt x in
  let m = Fixed.mantissa x in
  let bits =
    Array.init fmt.Fixed.width (fun i ->
        Int64.logand (Int64.shift_right_logical m i) 1L = 1L)
  in
  { fmt; bits }

let to_fixed v =
  let w = width v in
  let m = ref 0L in
  for i = 0 to w - 1 do
    if v.bits.(i) then m := Int64.logor !m (Int64.shift_left 1L i)
  done;
  (* Negative weight for the sign bit. *)
  (match v.fmt.Fixed.signedness with
  | Fixed.Signed ->
    if v.bits.(w - 1) then m := Int64.sub !m (Int64.shift_left 1L w)
  | Fixed.Unsigned -> ());
  Fixed.create v.fmt !m

let sign_bit v =
  match v.fmt.Fixed.signedness with
  | Fixed.Signed -> v.bits.(width v - 1)
  | Fixed.Unsigned -> false

(* Re-represent [v] with [width] bits and [frac] fraction bits: shift in
   zeros at the bottom for the fraction change, extend with the sign (or
   zero) at the top.  Requires frac >= v.fmt.frac and enough width. *)
let extend v ~target_width ~frac =
  let shift = frac - v.fmt.Fixed.frac in
  let s = sign_bit v in
  let w = width v in
  let bits =
    Array.init target_width (fun i ->
        let j = i - shift in
        if j < 0 then false else if j < w then v.bits.(j) else s)
  in
  let fmt =
    Fixed.format v.fmt.Fixed.signedness ~width:target_width ~frac
  in
  { fmt; bits }

(* Ripple-carry addition of equal-length bit arrays. *)
let ripple_add a b carry_in =
  let n = Array.length a in
  let out = Array.make n false in
  let carry = ref carry_in in
  for i = 0 to n - 1 do
    let x = a.(i) and y = b.(i) and c = !carry in
    out.(i) <- x <> y <> c;
    carry := (x && y) || (x && c) || (y && c)
  done;
  out

let invert bits = Array.map not bits

let binop_format op a b = op a.fmt b.fmt

let add a b =
  let fmt = binop_format Fixed.add_format a b in
  let a' = extend a ~target_width:fmt.Fixed.width ~frac:fmt.Fixed.frac in
  let b' = extend b ~target_width:fmt.Fixed.width ~frac:fmt.Fixed.frac in
  { fmt; bits = ripple_add a'.bits b'.bits false }

let sub a b =
  let fmt = Fixed.add_format a.fmt (Fixed.neg_format b.fmt) in
  let a' = extend a ~target_width:fmt.Fixed.width ~frac:fmt.Fixed.frac in
  let b' = extend b ~target_width:fmt.Fixed.width ~frac:fmt.Fixed.frac in
  { fmt; bits = ripple_add a'.bits (invert b'.bits) true }

let is_zero bits = Array.for_all (fun b -> not b) bits

(* Two's-complement negation in place of the same width. *)
let negate_bits bits = ripple_add (invert bits) (Array.map (fun _ -> false) bits) true

let neg a =
  let fmt = Fixed.neg_format a.fmt in
  let a' = extend a ~target_width:fmt.Fixed.width ~frac:fmt.Fixed.frac in
  { fmt; bits = negate_bits a'.bits }

(* Shift-and-add multiplication on magnitudes, then fix the sign. *)
let mul a b =
  let fmt = Fixed.mul_format a.fmt b.fmt in
  let w = fmt.Fixed.width in
  let neg_result = sign_bit a <> sign_bit b in
  let magnitude v =
    let v' = extend v ~target_width:w ~frac:v.fmt.Fixed.frac in
    if sign_bit v then negate_bits v'.bits else v'.bits
  in
  let ma = magnitude a and mb = magnitude b in
  let acc = ref (Array.make w false) in
  for i = 0 to w - 1 do
    if mb.(i) then begin
      (* acc += ma << i *)
      let shifted = Array.init w (fun j -> j >= i && ma.(j - i)) in
      acc := ripple_add !acc shifted false
    end
  done;
  let bits = if neg_result then negate_bits !acc else !acc in
  { fmt; bits }

let bitwise op a b =
  let fmt = binop_format Fixed.logic_format a b in
  let a' = extend a ~target_width:fmt.Fixed.width ~frac:fmt.Fixed.frac in
  let b' = extend b ~target_width:fmt.Fixed.width ~frac:fmt.Fixed.frac in
  { fmt; bits = Array.init fmt.Fixed.width (fun i -> op a'.bits.(i) b'.bits.(i)) }

let logand a b = bitwise ( && ) a b
let logor a b = bitwise ( || ) a b
let logxor a b = bitwise ( <> ) a b
let lognot a = { a with bits = invert a.bits }

let compare_value a b =
  let d = sub a b in
  if is_zero d.bits then 0 else if d.bits.(width d - 1) then -1 else 1

let bool_bv b =
  { fmt = Fixed.bit_format; bits = [| b |] }

let eq a b = bool_bv (compare_value a b = 0)
let lt a b = bool_bv (compare_value a b < 0)

let resize ?(round = Fixed.Truncate) ?(overflow = Fixed.Wrap) fmt v =
  let k = v.fmt.Fixed.frac - fmt.Fixed.frac in
  (* Work in a widened intermediate: room for the left shift (-k), the
     target width, and rounding carries. *)
  let inter_w =
    max (width v + max 0 (-k)) (fmt.Fixed.width + max k 0) + 2
  in
  let v' = extend v ~target_width:inter_w ~frac:v.fmt.Fixed.frac in
  let rounded =
    if k <= 0 then (extend v ~target_width:inter_w ~frac:fmt.Fixed.frac).bits
    else begin
      let bits = v'.bits in
      let floor = Array.init inter_w (fun i ->
          if i + k < inter_w then bits.(i + k) else bits.(inter_w - 1))
      in
      let round_up =
        match round with
        | Fixed.Truncate -> false
        | Fixed.Round_nearest -> bits.(k - 1)
        | Fixed.Round_even ->
          let half = bits.(k - 1) in
          let rest = ref false in
          for i = 0 to k - 2 do
            if bits.(i) then rest := true
          done;
          if not half then false
          else if !rest then true
          else floor.(0) (* tie: round up iff floor is odd *)
      in
      if round_up then
        ripple_add floor (Array.make inter_w false) true
      else floor
    end
  in
  let w = fmt.Fixed.width in
  match overflow with
  | Fixed.Wrap ->
    { fmt; bits = Array.init w (fun i -> rounded.(i)) }
  | Fixed.Saturate ->
    (* Check that bits w-1 .. inter_w-1 are a pure sign extension
       (signed) or all zero (unsigned). *)
    let ok =
      match fmt.Fixed.signedness with
      | Fixed.Unsigned ->
        let over = ref false in
        for i = w to inter_w - 1 do
          if rounded.(i) then over := true
        done;
        (not !over)
      | Fixed.Signed ->
        let s = rounded.(inter_w - 1) in
        let over = ref false in
        for i = w - 1 to inter_w - 1 do
          if rounded.(i) <> s then over := true
        done;
        not !over
    in
    if ok then { fmt; bits = Array.init w (fun i -> rounded.(i)) }
    else
      let negative = rounded.(inter_w - 1) in
      let bits =
        match fmt.Fixed.signedness, negative with
        | Fixed.Unsigned, true -> Array.make w false
        | Fixed.Unsigned, false -> Array.make w true
        | Fixed.Signed, true ->
          Array.init w (fun i -> i = w - 1)
        | Fixed.Signed, false ->
          Array.init w (fun i -> i <> w - 1)
      in
      { fmt; bits }
