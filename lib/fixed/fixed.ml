type signedness = Signed | Unsigned

type format = { signedness : signedness; width : int; frac : int }

let max_width = 62

exception Format_error of string

let format_error fmt = Format.kasprintf (fun s -> raise (Format_error s)) fmt

let format signedness ~width ~frac =
  if width < 1 then format_error "format: width %d < 1" width;
  if width > max_width then
    format_error "format: width %d exceeds max_width %d" width max_width;
  { signedness; width; frac }

let signed ~width ~frac = format Signed ~width ~frac
let unsigned ~width ~frac = format Unsigned ~width ~frac
let bit_format = unsigned ~width:1 ~frac:0
let int_format width = signed ~width ~frac:0

let equal_format a b =
  a.signedness = b.signedness && a.width = b.width && a.frac = b.frac

let pp_format ppf f =
  Format.fprintf ppf "<%c%d.%d>"
    (match f.signedness with Signed -> 's' | Unsigned -> 'u')
    f.width f.frac

let format_to_string f = Format.asprintf "%a" pp_format f

let min_mantissa f =
  match f.signedness with
  | Unsigned -> 0L
  | Signed -> Int64.neg (Int64.shift_left 1L (f.width - 1))

let max_mantissa f =
  match f.signedness with
  | Unsigned -> Int64.sub (Int64.shift_left 1L f.width) 1L
  | Signed -> Int64.sub (Int64.shift_left 1L (f.width - 1)) 1L

type t = { fmt : format; mantissa : int64 }

type rounding = Truncate | Round_nearest | Round_even
type overflow = Wrap | Saturate

exception Overflow of string

let overflow_error fmt = Format.kasprintf (fun s -> raise (Overflow s)) fmt

let in_range f m = m >= min_mantissa f && m <= max_mantissa f

let create fmt mantissa =
  if not (in_range fmt mantissa) then
    overflow_error "create: mantissa %Ld out of range for %s" mantissa
      (format_to_string fmt);
  { fmt; mantissa }

(* Wrap an arbitrary mantissa into the range of [f] (two's complement). *)
let wrap_mantissa f m =
  let mask = Int64.sub (Int64.shift_left 1L f.width) 1L in
  let low = Int64.logand m mask in
  match f.signedness with
  | Unsigned -> low
  | Signed ->
    let sign_bit = Int64.shift_left 1L (f.width - 1) in
    if Int64.logand low sign_bit <> 0L then
      Int64.sub low (Int64.shift_left 1L f.width)
    else low

let clamp_mantissa f m =
  if m < min_mantissa f then min_mantissa f
  else if m > max_mantissa f then max_mantissa f
  else m

let apply_overflow mode f m =
  match mode with
  | Wrap -> wrap_mantissa f m
  | Saturate -> clamp_mantissa f m

(* Round away [k] low bits of [m] (k >= 0), per the rounding mode.
   Truncation is an arithmetic shift, i.e. rounding toward -infinity. *)
let round_shift mode m k =
  if k = 0 then m
  else if k > 62 then (match mode with _ when m >= 0L -> 0L | _ -> -1L)
  else
    let floor = Int64.shift_right m k in
    match mode with
    | Truncate -> floor
    | Round_nearest ->
      let half = Int64.shift_left 1L (k - 1) in
      Int64.shift_right (Int64.add m half) k
    | Round_even ->
      let rem = Int64.sub m (Int64.shift_left floor k) in
      let half = Int64.shift_left 1L (k - 1) in
      if rem > half then Int64.add floor 1L
      else if rem < half then floor
      else if Int64.logand floor 1L = 1L then Int64.add floor 1L
      else floor

let mantissa v = v.mantissa
let fmt v = v.fmt
let to_float v = Int64.to_float v.mantissa *. Float.exp2 (float (-v.fmt.frac))

let of_float ?(round = Round_nearest) ?(overflow = Saturate) fmt x =
  let scaled = x *. Float.exp2 (float fmt.frac) in
  let m =
    match round with
    | Truncate -> Int64.of_float (Float.floor scaled)
    | Round_nearest -> Int64.of_float (Float.round scaled)
    | Round_even ->
      let f = Float.floor scaled in
      let rem = scaled -. f in
      let fl = Int64.of_float f in
      if rem > 0.5 then Int64.add fl 1L
      else if rem < 0.5 then fl
      else if Int64.logand fl 1L = 1L then Int64.add fl 1L
      else fl
  in
  { fmt; mantissa = apply_overflow overflow fmt m }

let zero fmt = { fmt; mantissa = 0L }

let one fmt =
  let m = Int64.shift_left 1L (max fmt.frac 0) in
  { fmt; mantissa = clamp_mantissa fmt (if fmt.frac < 0 then 1L else m) }

let of_bool b = { fmt = bit_format; mantissa = (if b then 1L else 0L) }
let is_true v = v.mantissa <> 0L

let of_int fmt n =
  if fmt.frac < 0 || fmt.frac > 61 then
    format_error "of_int: fraction %d not exactly representable" fmt.frac;
  let m = Int64.shift_left (Int64.of_int n) fmt.frac in
  create fmt m

let to_int v =
  if v.fmt.frac <= 0 then
    Int64.to_int (Int64.shift_left v.mantissa (-v.fmt.frac))
  else
    (* Truncate toward zero. *)
    let q = Int64.div v.mantissa (Int64.shift_left 1L (min v.fmt.frac 62)) in
    Int64.to_int q

let equal a b = equal_format a.fmt b.fmt && Int64.equal a.mantissa b.mantissa

(* Align two values to a common fraction; exact because widths are bounded. *)
let align a b =
  let frac = max a.fmt.frac b.fmt.frac in
  let lift v =
    let k = frac - v.fmt.frac in
    Int64.shift_left v.mantissa k
  in
  (frac, lift a, lift b)

let compare_value a b =
  let _, ma, mb = align a b in
  Int64.compare ma mb

let pp ppf v = Format.fprintf ppf "%g%a" (to_float v) pp_format v.fmt
let to_string v = Format.asprintf "%a" pp v

(* Signed width needed to also hold unsigned values of format [f] once it is
   aligned to fraction [frac]. *)
let aligned_signed_width f frac =
  let w = f.width + (frac - f.frac) in
  match f.signedness with Signed -> w | Unsigned -> w + 1

let add_format a b =
  let frac = max a.frac b.frac in
  if a.signedness = Unsigned && b.signedness = Unsigned then
    let w = max (a.width + frac - a.frac) (b.width + frac - b.frac) + 1 in
    format Unsigned ~width:w ~frac
  else
    let w = max (aligned_signed_width a frac) (aligned_signed_width b frac) in
    format Signed ~width:(w + 1) ~frac

let mul_format a b =
  let frac = a.frac + b.frac in
  match a.signedness, b.signedness with
  | Unsigned, Unsigned -> format Unsigned ~width:(a.width + b.width) ~frac
  | Signed, Signed | Signed, Unsigned | Unsigned, Signed ->
    (* Conservative: product of ranges fits in w1+w2 signed bits. *)
    format Signed ~width:(a.width + b.width) ~frac

let neg_format a =
  format Signed ~width:(a.width + 1) ~frac:a.frac

let logic_format a b =
  let frac = max a.frac b.frac in
  if a.signedness = Unsigned && b.signedness = Unsigned then
    let w = max (a.width + frac - a.frac) (b.width + frac - b.frac) in
    format Unsigned ~width:w ~frac
  else
    let w = max (aligned_signed_width a frac) (aligned_signed_width b frac) in
    format Signed ~width:w ~frac

let add a b =
  let fmt = add_format a.fmt b.fmt in
  let _, ma, mb = align a b in
  { fmt; mantissa = Int64.add ma mb }

let sub a b =
  let fmt = add_format a.fmt (neg_format b.fmt) in
  let _, ma, mb = align a b in
  { fmt; mantissa = Int64.sub ma mb }

let mul a b =
  let fmt = mul_format a.fmt b.fmt in
  { fmt; mantissa = Int64.mul a.mantissa b.mantissa }

let neg a =
  let fmt = neg_format a.fmt in
  { fmt; mantissa = Int64.neg a.mantissa }

let abs a =
  let fmt = neg_format a.fmt in
  { fmt; mantissa = Int64.abs a.mantissa }

(* Shifting only reinterprets the scale; the mantissa is untouched. *)
let shift_left v n = { v with fmt = { v.fmt with frac = v.fmt.frac - n } }
let shift_right v n = shift_left v (-n)

let cmp_bit op a b = of_bool (op (compare_value a b) 0)
let eq a b = cmp_bit ( = ) a b
let ne a b = cmp_bit ( <> ) a b
let lt a b = cmp_bit ( < ) a b
let le a b = cmp_bit ( <= ) a b
let gt a b = cmp_bit ( > ) a b
let ge a b = cmp_bit ( >= ) a b

let bitwise op a b =
  let fmt = logic_format a.fmt b.fmt in
  let _, ma, mb = align a b in
  { fmt; mantissa = wrap_mantissa fmt (op ma mb) }

let logand a b = bitwise Int64.logand a b
let logor a b = bitwise Int64.logor a b
let logxor a b = bitwise Int64.logxor a b

let lognot a =
  { fmt = a.fmt; mantissa = wrap_mantissa a.fmt (Int64.lognot a.mantissa) }

let resize ?(round = Truncate) ?(overflow = Wrap) fmt v =
  let k = v.fmt.frac - fmt.frac in
  let m =
    if k > 0 then round_shift round v.mantissa k
    else if -k > 62 then
      (if v.mantissa = 0L then 0L
       else overflow_error "resize: shift %d too large" (-k))
    else Int64.shift_left v.mantissa (-k)
  in
  { fmt; mantissa = apply_overflow overflow fmt m }

let to_bits v =
  let b = Bytes.create v.fmt.width in
  for i = 0 to v.fmt.width - 1 do
    let bit = Int64.logand (Int64.shift_right_logical v.mantissa i) 1L in
    Bytes.set b (v.fmt.width - 1 - i) (if bit = 1L then '1' else '0')
  done;
  Bytes.to_string b

let flip_bit v i =
  if i < 0 || i >= v.fmt.width then
    invalid_arg
      (Printf.sprintf "Fixed.flip_bit: bit %d outside format %s" i
         (format_to_string v.fmt));
  let m = Int64.logxor v.mantissa (Int64.shift_left 1L i) in
  { v with mantissa = wrap_mantissa v.fmt m }

let of_bits fmt s =
  if String.length s <> fmt.width then
    format_error "of_bits: %d chars for width %d" (String.length s) fmt.width;
  let m = ref 0L in
  String.iter
    (fun c ->
      let bit =
        match c with
        | '0' -> 0L
        | '1' -> 1L
        | _ -> format_error "of_bits: invalid character %C" c
      in
      m := Int64.logor (Int64.shift_left !m 1) bit)
    s;
  { fmt; mantissa = wrap_mantissa fmt !m }
