(** Fixed-point arithmetic on quantized values.

    The paper (section 3) simulates finite-wordlength effects with a C++
    fixed-point library that models the {e quantization} of a value rather
    than its bit-vector representation.  This module is the OCaml
    counterpart: a value is an [int64] mantissa together with a format
    giving its signedness, total bit width and number of fraction bits.
    The represented real value is [mantissa * 2^-frac].

    Arithmetic comes in two flavours:
    - {e full-precision} operators ([add], [sub], [mul], [neg], ...) whose
      result format is widened so that no information is lost, and
    - [resize], which converts to a narrower format under an explicit
      rounding and overflow mode — the only place quantization happens.

    Widths are limited to {!max_width} bits so that full-precision results
    always fit an [int64] exactly. *)

(** {1 Formats} *)

type signedness = Signed | Unsigned

type format = private {
  signedness : signedness;
  width : int;  (** total number of bits, including sign bit if signed *)
  frac : int;  (** number of fraction bits; may exceed [width] or be < 0 *)
}

(** Maximum supported total width of a format (full-precision products of
    two such values still fit an [int64]). *)
val max_width : int

exception Format_error of string

(** [format signedness ~width ~frac] builds a format.
    @raise Format_error if [width < 1] or [width > max_width]. *)
val format : signedness -> width:int -> frac:int -> format

(** [signed ~width ~frac] = [format Signed ~width ~frac]. *)
val signed : width:int -> frac:int -> format

(** [unsigned ~width ~frac] = [format Unsigned ~width ~frac]. *)
val unsigned : width:int -> frac:int -> format

(** Format of a single bit: unsigned, width 1, no fraction bits. *)
val bit_format : format

(** [int_format w] is a signed integer format of width [w] (no fraction). *)
val int_format : int -> format

val equal_format : format -> format -> bool
val pp_format : Format.formatter -> format -> unit
val format_to_string : format -> string

(** Smallest mantissa representable in a format. *)
val min_mantissa : format -> int64

(** Largest mantissa representable in a format. *)
val max_mantissa : format -> int64

(** {1 Values} *)

type t = private { fmt : format; mantissa : int64 }

(** Rounding mode used when [resize] discards fraction bits. *)
type rounding =
  | Truncate  (** drop bits; rounds toward negative infinity *)
  | Round_nearest  (** round to nearest, ties away from zero (upward) *)
  | Round_even  (** round to nearest, ties to even mantissa *)

(** Overflow mode used when [resize] narrows the integer part. *)
type overflow = Wrap  (** keep low bits, two's-complement wrap *) | Saturate

exception Overflow of string

(** [create fmt mantissa] checks that [mantissa] is representable in [fmt].
    @raise Overflow otherwise. *)
val create : format -> int64 -> t

(** [of_float ?round ?overflow fmt x] quantizes the real [x].
    Default [round] is [Round_nearest], default [overflow] is [Saturate].
    @raise Overflow when [overflow = Wrap] is not requested and... never:
    with [Saturate] the value is clamped; with [Wrap] it wraps. *)
val of_float : ?round:rounding -> ?overflow:overflow -> format -> float -> t

val to_float : t -> float
val mantissa : t -> int64
val fmt : t -> format

(** [zero fmt] and [one fmt] (one requires the format to represent 1.0;
    falls back to the largest representable value otherwise). *)
val zero : format -> t

val one : format -> t

(** [of_bool b] is a 1-bit value, 1 for [true]. *)
val of_bool : bool -> t

(** [is_true v] is [true] iff the mantissa is non-zero. *)
val is_true : t -> bool

(** [of_int fmt n] represents the integer [n] exactly.
    @raise Overflow if it does not fit. *)
val of_int : format -> int -> t

(** [to_int v] is the integer part of the value, truncated toward zero. *)
val to_int : t -> int

val equal : t -> t -> bool

(** Numeric comparison (formats may differ; values are aligned first). *)
val compare_value : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Full-precision arithmetic}

    Result formats are widened so no precision is lost.
    @raise Format_error if the exact result would exceed {!max_width}. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

(** Absolute value (widened by one bit like [neg]). *)
val abs : t -> t

(** [shift_left v n] multiplies by [2^n] exactly (adjusts the format). *)
val shift_left : t -> int -> t

(** [shift_right v n] divides by [2^n] exactly (adjusts the format). *)
val shift_right : t -> int -> t

(** {1 Comparisons} — 1-bit results, suitable as condition signals. *)

val eq : t -> t -> t
val ne : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t

(** {1 Bitwise operations}

    Operate on the two's-complement mantissas after aligning both operands
    to a common format (same rules as [add] minus the carry bit). *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Quantization} *)

(** [resize ?round ?overflow fmt v] converts [v] to format [fmt], rounding
    away fraction bits per [round] (default [Truncate], matching hardware
    bit dropping) and handling integer overflow per [overflow] (default
    [Wrap], matching hardware bit slicing). *)
val resize : ?round:rounding -> ?overflow:overflow -> format -> t -> t

(** {1 Result-format rules} (exposed for the signal layer) *)

val add_format : format -> format -> format
val mul_format : format -> format -> format
val neg_format : format -> format

(** Format that [logand]/[logor]/[logxor] produce for given operands. *)
val logic_format : format -> format -> format

(** {1 Bit-level access} *)

(** [to_bits v] is the two's-complement bit string of the mantissa,
    MSB first, exactly [width] characters of ['0']/['1']. *)
val to_bits : t -> string

(** [of_bits fmt s] parses an MSB-first bit string.
    @raise Format_error if [String.length s <> fmt.width]. *)
val of_bits : format -> string -> t

(** [flip_bit v i] toggles bit [i] (LSB = 0) of the two's-complement
    mantissa and reinterprets the result in [v]'s format — the
    single-event-upset primitive of the fault-injection subsystem.
    @raise Invalid_argument if [i] is outside [0 .. width-1]. *)
val flip_bit : t -> int -> t
