(* Fault injection and fault simulation over the OCAPI engines. *)

(* --- stuck-at fault simulation ------------------------------------------- *)

type stuck_outcome =
  | Sa_detected of { at_cycle : int; at_output : string }
  | Sa_undetected
  | Sa_diagnosed of Ocapi_error.t

type stuck_record = {
  sr_label : string;
  sr_fault : Netlist.fault;
  sr_outcome : stuck_outcome;
}

type stuck_report = {
  st_design : string;
  st_universe : int;
  st_collapsed : int;
  st_simulated : int;
  st_detected : int;
  st_undetected : int;
  st_diagnosed : int;
  st_vectors : int;
  st_coverage : float;
  st_records : stuck_record list;
}

(* Deterministic sample of [k] elements (Fisher-Yates prefix). *)
let sample_list rng k l =
  let arr = Array.of_list l in
  let n = Array.length arr in
  if k >= n then l
  else begin
    for i = 0 to k - 1 do
      let j = i + Random.State.int rng (n - i) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list (Array.sub arr 0 k)
  end

let stuck_at_netlist ?max_faults ?(seed = 1) ?settle_budget ?(domains = 1)
    ?progress nl ~vectors =
  let out_names = List.map fst (Netlist.outputs_list nl) in
  let n_cycles = Array.length vectors in
  let replay_cycle sim c =
    List.iter (fun (name, v) -> Netlist.Sim.set_input sim name v) vectors.(c);
    Netlist.Sim.settle sim
  in
  (* Fault-free reference: every output word of every cycle.  Computed
     once on the coordinating domain's own simulator and shared
     read-only with the workers. *)
  let golden = Array.make (max 1 n_cycles) [] in
  let sim0 = Netlist.Sim.create ?settle_budget nl in
  Netlist.Sim.reset sim0;
  for c = 0 to n_cycles - 1 do
    replay_cycle sim0 c;
    golden.(c) <-
      List.map
        (fun o -> (o, Netlist.Sim.get_output sim0 ~signed:false o))
        out_names;
    Netlist.Sim.clock sim0
  done;
  let universe = Netlist.fault_universe nl in
  let collapsed = Netlist.collapse_faults nl universe in
  let simulated =
    match max_faults with
    | Some k when k < List.length collapsed ->
      sample_list (Random.State.make [| seed; 0x5a |]) k collapsed
    | _ -> collapsed
  in
  let faults = Array.of_list simulated in
  (* One fault, replayed on a given worker's simulator.  Everything the
     body touches beyond [sim] is read-only ([nl], [vectors], [golden]),
     so per-worker simulators are the whole isolation story. *)
  let simulate_one sim f =
    let outcome =
      try
        Netlist.Sim.reset sim;
        Netlist.Sim.inject sim f;
        let result = ref Sa_undetected in
        (try
           for c = 0 to n_cycles - 1 do
             replay_cycle sim c;
             List.iter
               (fun (o, gold) ->
                 if
                   !result = Sa_undetected
                   && Netlist.Sim.get_output sim ~signed:false o <> gold
                 then result := Sa_detected { at_cycle = c; at_output = o })
               golden.(c);
             if !result <> Sa_undetected then raise Exit;
             Netlist.Sim.clock sim
           done
         with Exit -> ());
        !result
      with e -> (
        match Flow.classify_exn ~engine:"gates" e with
        | Some d -> Sa_diagnosed d
        | None -> raise e)
    in
    Netlist.Sim.clear_fault sim;
    if Ocapi_obs.enabled () then
      Ocapi_obs.count
        (match outcome with
        | Sa_detected _ -> "fault.stuck.detected"
        | Sa_undetected -> "fault.stuck.undetected"
        | Sa_diagnosed _ -> "fault.stuck.diagnosed");
    outcome
  in
  let outcomes =
    Ocapi_parallel.map_tasks ~domains
      ~make_state:(fun k ->
        if k = 0 && domains <= 1 then sim0
        else Netlist.Sim.create ?settle_budget nl)
      ~tasks:(Array.length faults)
      ~f:(fun sim i ->
        (match progress with Some f -> f i | None -> ());
        simulate_one sim faults.(i))
      ()
  in
  let records =
    List.init (Array.length faults) (fun i ->
        let f = faults.(i) in
        { sr_label = Netlist.fault_label nl f; sr_fault = f;
          sr_outcome = outcomes.(i) })
  in
  let n_of p = List.length (List.filter p records) in
  let detected =
    n_of (fun r -> match r.sr_outcome with Sa_detected _ -> true | _ -> false)
  in
  let diagnosed =
    n_of (fun r -> match r.sr_outcome with Sa_diagnosed _ -> true | _ -> false)
  in
  let n_sim = List.length records in
  {
    st_design = Netlist.name nl;
    st_universe = List.length universe;
    st_collapsed = List.length collapsed;
    st_simulated = n_sim;
    st_detected = detected;
    st_undetected = n_sim - detected - diagnosed;
    st_diagnosed = diagnosed;
    st_vectors = n_cycles;
    st_coverage =
      (if n_sim = 0 then 0.0 else float_of_int detected /. float_of_int n_sim);
    st_records = records;
  }

(* The system's own stimuli, recorded as the test-bench generator
   does, keyed to the netlist input-bus naming. *)
let record_vectors sys ~cycles =
  Cycle_system.reset sys;
  Cycle_system.run sys cycles;
  let input_hist = Cycle_system.input_history sys in
  Cycle_system.reset sys;
  let vectors = Array.make (max 1 cycles) [] in
  List.iter
    (fun (c, name, v) ->
      if c < cycles then vectors.(c) <- (name, Fixed.mantissa v) :: vectors.(c))
    input_hist;
  vectors

let stuck_at_system ?max_faults ?seed ?settle_budget ?options ?macro_of_kernel
    ?domains ?progress sys ~cycles =
  let vectors = record_vectors sys ~cycles in
  let nl, _report = Synthesize.synthesize ?options ?macro_of_kernel sys in
  stuck_at_netlist ?max_faults ?seed ?settle_budget ?domains ?progress nl
    ~vectors

type stuck_compare = {
  sc_design : string;
  sc_pre : stuck_report;
  sc_post : stuck_report;
  sc_provenance : Ocapi_ir.pass_record list;
}

let stuck_at_optimized ?max_faults ?seed ?settle_budget ?options
    ?macro_of_kernel ?domains ?progress sys ~cycles =
  let vectors = record_vectors sys ~cycles in
  (* Lower through the IR pass pipeline so the optimized netlist
     carries a provenance chain back to the behavioral root. *)
  let gate =
    Ocapi_ir.apply
      (Ocapi_ir.lower_to_gate_with ?options ?macro_of_kernel ())
      (Ocapi_ir.behavioral sys)
  in
  let opt = Ocapi_ir.apply Ocapi_ir.optimize_gates gate in
  let netlist_of d =
    match Ocapi_ir.to_netlist d with
    | Some nl -> nl
    | None -> assert false (* both designs are at the gate level *)
  in
  let campaign nl =
    stuck_at_netlist ?max_faults ?seed ?settle_budget ?domains ?progress nl
      ~vectors
  in
  let pre = campaign (netlist_of gate) in
  let post = campaign (netlist_of opt) in
  {
    sc_design = Cycle_system.name sys;
    sc_pre = pre;
    sc_post = post;
    sc_provenance = opt.Ocapi_ir.ir_provenance;
  }

(* --- SEU campaigns -------------------------------------------------------- *)

type seu_target =
  | Reg_bit of { t_reg : int; t_bit : int }
  | State_bit of { t_comp : int; t_bit : int }

type seu_outcome =
  | Masked
  | Sdc of { probe : string; cycle : int option; detail : string }
  | Detected of Ocapi_error.t

type seu_run = {
  run_index : int;
  run_target : seu_target;
  run_label : string;
  run_cycle : int;
  run_outcome : seu_outcome;
}

type seu_report = {
  seu_design : string;
  seu_engine : string;
  seu_runs : int;
  seu_cycles : int;
  seu_seed : int;
  seu_masked : int;
  seu_sdc : int;
  seu_detected : int;
  seu_records : seu_run list;
}

(* The engines hold a timed component's state as a 16-bit word (the RTL
   elaboration's state signal format); every bit of that word is a
   flippable target.  Flips landing outside the encoded state indices
   are detected by the engine's state decode ([Invalid_state]).
   Single-state FSMs carry no state register at all. *)
let state_register_width = 16
let state_bits n = if n <= 1 then 0 else state_register_width

(* Engine instances (compiled program, RTL elaboration) are built once
   per campaign as an [Ocapi_engine.session] and reused run after run;
   the uniform poke surface of the session replaces the per-engine
   harness dispatch. *)
let make_session ?max_deltas ~engine sys =
  let (module E : Ocapi_engine.ENGINE) = Ocapi_engine.get engine in
  E.make
    ~options:{ Ocapi_engine.default_options with opt_max_deltas = max_deltas }
    sys

let poke_target ses = function
  | Reg_bit { t_reg; t_bit } ->
    ses.Ocapi_engine.ses_poke_register_bit t_reg ~bit:t_bit
  | State_bit { t_comp; t_bit } ->
    let s' =
      ses.Ocapi_engine.ses_component_state t_comp lxor (1 lsl t_bit)
    in
    ses.Ocapi_engine.ses_force_component_state t_comp s'

let control_run ?max_deltas ~engine sys ~cycles =
  let ses = make_session ?max_deltas ~engine sys in
  Fun.protect ~finally:ses.Ocapi_engine.ses_close (fun () ->
      Ocapi_engine.run ses ~cycles)

(* The oracle: compare faulty probe histories against the fault-free
   run.  A differing token value at the same cycle is silent data
   corruption; a structural divergence — tokens shifted in time,
   missing, or an output stream that stops — is what a system-level
   watchdog monitor catches, so it is classified as detected. *)
let classify_histories ~engine golden faulty =
  let structural probe cycle detail =
    Detected
      (Ocapi_error.make Ocapi_error.Watchdog ~engine ~construct:probe ?cycle
         (Printf.sprintf "output stream diverged structurally: %s" detail))
  in
  let rec scan_hist probe h1 h2 =
    match h1, h2 with
    | [], [] -> None
    | (c1, v1) :: t1, (c2, v2) :: t2 ->
      if c1 <> c2 then
        Some
          (structural probe
             (Some (min c1 c2))
             (Printf.sprintf "token cycles diverge (%d vs %d)" c1 c2))
      else if not (Fixed.equal v1 v2) then
        Some
          (Sdc
             {
               probe;
               cycle = Some c1;
               detail =
                 Printf.sprintf "%s vs %s" (Fixed.to_string v1)
                   (Fixed.to_string v2);
             })
      else scan_hist probe t1 t2
    | (c, _) :: _, [] ->
      Some (structural probe (Some c) "faulty output stream ends early")
    | [], (c, _) :: _ ->
      Some (structural probe (Some c) "faulty run produces extra tokens")
  in
  let rec scan a b =
    match a, b with
    | [], [] -> Masked
    | (p1, h1) :: t1, (p2, h2) :: t2 when p1 = p2 -> (
      match scan_hist p1 h1 h2 with
      | Some outcome -> outcome
      | None -> scan t1 t2)
    | (p, _) :: _, _ | _, (p, _) :: _ ->
      structural p None "probe sets differ"
  in
  scan golden faulty

(* The target universe of a system: every bit of every register, every
   bit of every multi-state FSM's encoded state index. *)
let seu_targets sys =
  let regs = Cycle_system.all_regs sys in
  let reg_targets =
    List.concat
      (List.mapi
         (fun i r ->
           let f = Signal.Reg.fmt r in
           List.init f.Fixed.width (fun b ->
               ( Reg_bit { t_reg = i; t_bit = b },
                 Printf.sprintf "%s[%d]" (Signal.Reg.name r) b )))
         regs)
  in
  let state_targets =
    List.concat
      (List.mapi
         (fun i (cname, fsm) ->
           let bits = state_bits (List.length (Fsm.states fsm)) in
           List.init bits (fun b ->
               ( State_bit { t_comp = i; t_bit = b },
                 Printf.sprintf "%s.state[%d]" cname b )))
         (Cycle_system.timed_components sys))
  in
  Array.of_list (reg_targets @ state_targets)

(* SEU reports are memoized through the shared [Flow.Cache] lifecycle:
   an enabled cache serves a repeated campaign (same design digest,
   stimuli, engine, run count, seed, cycle count) from memory or disk,
   and identical campaigns in flight on other domains coalesce to one
   execution.  The whole report is a function of the cache key — the
   schedule is drawn from [seed] alone and parallel runs are
   bit-identical to serial ones — so [domains] stays out of the key. *)
module Seu_store = Flow.Cache.Store (struct
  type t = seu_report

  let namespace = "seu"
end)

let seu_key ~engine ~runs ~max_deltas ~seed sys ~cycles =
  Flow.Cache.key_of
    ~engine:
      (String.concat "+"
         [
           "seu";
           engine;
           "runs" ^ string_of_int runs;
           (match max_deltas with
           | Some n -> "md" ^ string_of_int n
           | None -> "md-");
         ])
    ~seed sys ~cycles

let seu_campaign ?(engine = "compiled") ?(runs = 1000) ?(seed = 1) ?max_deltas
    ?(domains = 1) ?replicate ?progress sys ~cycles =
  if cycles <= 0 then invalid_arg "Ocapi_fault.seu_campaign: cycles must be > 0";
  (* Resolve the engine up front so an unknown name fails before any
     simulation; the report records the canonical registry name even
     when an alias was passed. *)
  let engine = Ocapi_engine.name_of (Ocapi_engine.get engine) in
  let targets = seu_targets sys in
  if Array.length targets = 0 then
    invalid_arg "Ocapi_fault.seu_campaign: design has no architectural state";
  let campaign () =
  (* The full injection schedule is drawn up front, consuming the seeded
     stream in exactly the order the historic serial loop did (target,
     then cycle, per run).  Runs thereby become index-keyed independent
     tasks: whatever domain simulates run [i], its target and cycle —
     and so the merged report — are fixed by [seed] alone. *)
  let rng = Random.State.make [| seed |] in
  let schedule =
    Array.init runs (fun _ -> (0, 0)) (* placeholder; filled in order *)
  in
  for i = 0 to runs - 1 do
    let ti = Random.State.int rng (Array.length targets) in
    let at = Random.State.int rng cycles in
    schedule.(i) <- (ti, at)
  done;
  let simulate_one (ses, golden) i =
    (match progress with Some f -> f i | None -> ());
    let ti, at = schedule.(i) in
    let target, _ = targets.(ti) in
    let outcome =
      match
        Ocapi_engine.run ses ~cycles
          ~inject:(at, fun () -> poke_target ses target)
      with
      | faulty ->
        classify_histories ~engine:ses.Ocapi_engine.ses_engine golden faulty
      | exception e -> (
        match
          Flow.classify_exn ~engine:ses.Ocapi_engine.ses_engine ~cycle:at e
        with
        | Some d -> Detected d
        | None -> raise e)
    in
    if Ocapi_obs.enabled () then
      Ocapi_obs.count
        (match outcome with
        | Masked -> "fault.seu.masked"
        | Sdc _ -> "fault.seu.sdc"
        | Detected _ -> "fault.seu.detected");
    outcome
  in
  (* [make_state] runs serially on the coordinating domain, so plain
     refs suffice to track replicas (for the shared-state audit) and
     open sessions (closed after the joins below). *)
  let replicas = ref [] in
  let sessions = ref [] in
  let make_state k =
    let s =
      if k = 0 then sys
      else begin
        let replicate =
          match replicate with
          | Some f -> f
          | None ->
            invalid_arg
              "Ocapi_fault.seu_campaign: a ~replicate design factory is \
               required when domains > 1 (each worker domain owns an \
               isolated copy of the system)"
        in
        let s = replicate () in
        Flow.check_replica ~context:"Ocapi_fault.seu_campaign" ~campaign:sys
          ~seen:!replicas s;
        replicas := s :: !replicas;
        if Array.length (seu_targets s) <> Array.length targets then
          invalid_arg
            "Ocapi_fault.seu_campaign: ~replicate built a system with a \
             different fault-target universe than the campaign system";
        s
      end
    in
    let ses = make_session ?max_deltas ~engine s in
    sessions := ses :: !sessions;
    let golden = Ocapi_engine.run ses ~cycles in
    (ses, golden)
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun s -> s.Ocapi_engine.ses_close ()) !sessions)
      (fun () ->
        Ocapi_parallel.map_tasks ~domains ~make_state ~tasks:runs
          ~f:simulate_one ())
  in
  let records =
    List.init runs (fun i ->
        let ti, at = schedule.(i) in
        let target, label = targets.(ti) in
        { run_index = i; run_target = target; run_label = label;
          run_cycle = at; run_outcome = outcomes.(i) })
  in
  let n_of p = List.length (List.filter p records) in
  {
    seu_design = Cycle_system.name sys;
    seu_engine = engine;
    seu_runs = runs;
    seu_cycles = cycles;
    seu_seed = seed;
    seu_masked = n_of (fun r -> r.run_outcome = Masked);
    seu_sdc =
      n_of (fun r -> match r.run_outcome with Sdc _ -> true | _ -> false);
    seu_detected =
      n_of (fun r -> match r.run_outcome with Detected _ -> true | _ -> false);
    seu_records = records;
  }
  in
  if not (Flow.Cache.enabled ()) then campaign ()
  else
    Seu_store.coalesced
      ~key:(seu_key ~engine ~runs ~max_deltas ~seed sys ~cycles)
      ~compute:campaign

(* --- reports --------------------------------------------------------------- *)

let pp_stuck_report ppf r =
  Format.fprintf ppf
    "@[<v>stuck-at campaign: %s@,\
     fault universe  %d pins (collapsed %d, simulated %d)@,\
     test vectors    %d cycles@,\
     detected        %d@,\
     undetected      %d@,\
     diagnosed       %d@,\
     coverage        %.1f%%@]" r.st_design r.st_universe r.st_collapsed
    r.st_simulated r.st_vectors r.st_detected r.st_undetected r.st_diagnosed
    (100.0 *. r.st_coverage);
  let undet =
    List.filter
      (fun rc -> match rc.sr_outcome with Sa_undetected -> true | _ -> false)
      r.st_records
  in
  if undet <> [] && List.length undet <= 16 then begin
    Format.fprintf ppf "@,@[<v 2>undetected faults:";
    List.iter (fun rc -> Format.fprintf ppf "@,%s" rc.sr_label) undet;
    Format.fprintf ppf "@]"
  end;
  List.iter
    (fun rc ->
      match rc.sr_outcome with
      | Sa_diagnosed d ->
        Format.fprintf ppf "@,diagnostic %s: %a" rc.sr_label Ocapi_error.pp d
      | _ -> ())
    r.st_records

let pp_stuck_compare ppf c =
  Format.fprintf ppf
    "@[<v>stuck-at pre/post optimization: %s@,\
     %-12s %10s %10s@,\
     %-12s %10d %10d@,\
     %-12s %10d %10d@,\
     %-12s %10d %10d@,\
     %-12s %9.1f%% %9.1f%%@]" c.sc_design "" "pre-opt" "post-opt" "universe"
    c.sc_pre.st_universe c.sc_post.st_universe "simulated"
    c.sc_pre.st_simulated c.sc_post.st_simulated "detected"
    c.sc_pre.st_detected c.sc_post.st_detected "coverage"
    (100.0 *. c.sc_pre.st_coverage)
    (100.0 *. c.sc_post.st_coverage);
  Format.fprintf ppf "@,@[<v 2>provenance:";
  List.iter
    (fun (p : Ocapi_ir.pass_record) ->
      Format.fprintf ppf "@,%s: %s -> %s" p.Ocapi_ir.pr_pass
        (String.sub p.Ocapi_ir.pr_input_digest 0 8)
        (String.sub p.Ocapi_ir.pr_output_digest 0 8))
    c.sc_provenance;
  Format.fprintf ppf "@]"

let pp_seu_report ppf r =
  Format.fprintf ppf
    "@[<v>SEU campaign: %s on %s engine@,\
     runs            %d (seed %d, %d cycles each)@,\
     masked          %d@,\
     silent data corruption %d@,\
     detected        %d@]" r.seu_design r.seu_engine r.seu_runs r.seu_seed
    r.seu_cycles r.seu_masked r.seu_sdc r.seu_detected;
  (* One example diagnostic per distinct error code. *)
  let seen = Hashtbl.create 4 in
  List.iter
    (fun rc ->
      match rc.run_outcome with
      | Detected d when not (Hashtbl.mem seen d.Ocapi_error.e_code) ->
        Hashtbl.add seen d.Ocapi_error.e_code ();
        Format.fprintf ppf "@,run %d (%s @@ cycle %d): %a" rc.run_index
          rc.run_label rc.run_cycle Ocapi_error.pp d
      | _ -> ())
    r.seu_records

let error_json (d : Ocapi_error.t) =
  let open Ocapi_obs.Json in
  Obj
    [
      ("code", String (Ocapi_error.code_label d.Ocapi_error.e_code));
      ("severity", String (Ocapi_error.severity_label d.Ocapi_error.e_severity));
      ("engine", String d.Ocapi_error.e_engine);
      ( "construct",
        match d.Ocapi_error.e_construct with
        | Some c -> String c
        | None -> Null );
      ( "cycle",
        match d.Ocapi_error.e_cycle with Some c -> Int c | None -> Null );
      ("nets", List (List.map (fun n -> String n) d.Ocapi_error.e_nets));
      ("message", String d.Ocapi_error.e_message);
    ]

let stuck_report_json r =
  let open Ocapi_obs.Json in
  Obj
    [
      ("campaign", String "stuck-at");
      ("design", String r.st_design);
      ("fault_universe", Int r.st_universe);
      ("collapsed", Int r.st_collapsed);
      ("simulated", Int r.st_simulated);
      ("detected", Int r.st_detected);
      ("undetected", Int r.st_undetected);
      ("diagnosed", Int r.st_diagnosed);
      ("vectors", Int r.st_vectors);
      ("coverage", Float r.st_coverage);
      ( "diagnostics",
        List
          (List.filter_map
             (fun rc ->
               match rc.sr_outcome with
               | Sa_diagnosed d ->
                 Some
                   (Obj [ ("fault", String rc.sr_label); ("error", error_json d) ])
               | _ -> None)
             r.st_records) );
    ]

let stuck_compare_json c =
  let open Ocapi_obs.Json in
  Obj
    [
      ("campaign", String "stuck-at-optimized");
      ("design", String c.sc_design);
      ("pre", stuck_report_json c.sc_pre);
      ("post", stuck_report_json c.sc_post);
      ( "provenance",
        List
          (List.map
             (fun (p : Ocapi_ir.pass_record) ->
               Obj
                 [
                   ("pass", String p.Ocapi_ir.pr_pass);
                   ("input_digest", String p.Ocapi_ir.pr_input_digest);
                   ("output_digest", String p.Ocapi_ir.pr_output_digest);
                 ])
             c.sc_provenance) );
    ]

let seu_report_json r =
  let open Ocapi_obs.Json in
  let outcome_row rc =
    Obj
      ([
         ("run", Int rc.run_index);
         ("target", String rc.run_label);
         ("cycle", Int rc.run_cycle);
       ]
      @
      match rc.run_outcome with
      | Masked -> [ ("outcome", String "masked") ]
      | Sdc { probe; cycle; detail } ->
        [
          ("outcome", String "sdc");
          ("probe", String probe);
          ("sdc_cycle", match cycle with Some c -> Int c | None -> Null);
          ("detail", String detail);
        ]
      | Detected d -> [ ("outcome", String "detected"); ("error", error_json d) ])
  in
  Obj
    [
      ("campaign", String "seu");
      ("design", String r.seu_design);
      ("engine", String r.seu_engine);
      ("runs", Int r.seu_runs);
      ("cycles", Int r.seu_cycles);
      ("seed", Int r.seu_seed);
      ("masked", Int r.seu_masked);
      ("sdc", Int r.seu_sdc);
      ("detected", Int r.seu_detected);
      ( "detected_runs",
        List
          (List.filter_map
             (fun rc ->
               match rc.run_outcome with
               | Detected _ -> Some (outcome_row rc)
               | _ -> None)
             r.seu_records) );
    ]
