(** Fault injection and fault simulation.

    Two campaign styles over one design:

    - {b Stuck-at fault simulation} (gate level): enumerate the classic
      pin fault universe of the synthesized netlist
      ({!Netlist.fault_universe}), collapse equivalent faults, and
      serially simulate each survivor against recorded test-bench
      stimuli, comparing every output word of every cycle against the
      fault-free run.  The result is a {e fault-coverage} figure for the
      test bench — the quality metric of the generated-test-bench flow
      of fig 8.

    - {b SEU campaigns} (register level): deterministic, seeded
      campaigns of transient bit flips in the architectural state —
      datapath registers and encoded FSM state — of the interpreted,
      compiled or RTL cycle engine.  Each run flips one bit at one
      cycle and is classified against the fault-free probe histories:
      {e masked} (identical histories), {e silent data corruption}
      (histories diverge), or {e detected} (the engine stopped with a
      structured {!Ocapi_error.t} diagnostic — deadlock, overflow,
      oscillation, invalid FSM state).

    Campaigns never abort on a failing run: engine exceptions are
    mapped through {!Flow.classify_exn} and recorded as per-run
    diagnostics.  All randomness comes from an explicit seed; the same
    seed reproduces the same classification table. *)

(** {1 Stuck-at fault simulation} *)

type stuck_outcome =
  | Sa_detected of { at_cycle : int; at_output : string }
      (** first cycle/output word differing from the fault-free run *)
  | Sa_undetected  (** the stimuli never expose the fault *)
  | Sa_diagnosed of Ocapi_error.t
      (** the faulty circuit stopped simulating (e.g. oscillation);
          recorded, not counted as coverage *)

type stuck_record = {
  sr_label : string;  (** {!Netlist.fault_label} *)
  sr_fault : Netlist.fault;
  sr_outcome : stuck_outcome;
}

type stuck_report = {
  st_design : string;
  st_universe : int;  (** full pin fault universe *)
  st_collapsed : int;  (** after equivalence collapsing *)
  st_simulated : int;  (** after optional [max_faults] sampling *)
  st_detected : int;
  st_undetected : int;
  st_diagnosed : int;
  st_vectors : int;  (** stimulus cycles replayed per fault *)
  st_coverage : float;  (** detected / simulated *)
  st_records : stuck_record list;
}

(** [stuck_at_netlist nl ~vectors] runs a stuck-at campaign on [nl].
    [vectors.(c)] lists the [(input bus, mantissa)] stimuli of cycle
    [c].  [max_faults] caps the campaign to a deterministic
    [seed]-driven sample of the collapsed fault list; [settle_budget]
    is passed to {!Netlist.Sim.create} (the per-fault oscillation
    watchdog).  [domains] (default [1] = the serial path) simulates the
    fault list on an {!Ocapi_parallel} pool, one gate-level simulator
    per worker over the shared read-only netlist; the report is
    bit-identical to the serial run for any [domains].

    [progress] is called with the fault index before each fault is
    simulated (on the worker domain running it); it may raise — e.g. an
    [Ocapi_error] with code [Timeout] — to abandon the campaign
    cooperatively, the deadline/cancellation hook of batch jobs. *)
val stuck_at_netlist :
  ?max_faults:int ->
  ?seed:int ->
  ?settle_budget:int ->
  ?domains:int ->
  ?progress:(int -> unit) ->
  Netlist.t ->
  vectors:(string * int64) list array ->
  stuck_report

(** [stuck_at_system sys ~cycles] records [cycles] of the system's own
    stimuli (as the test-bench generator does), synthesizes the system
    to gates, and runs {!stuck_at_netlist} with the recorded vectors.
    [domains] and [progress] are forwarded to {!stuck_at_netlist}. *)
val stuck_at_system :
  ?max_faults:int ->
  ?seed:int ->
  ?settle_budget:int ->
  ?options:Synthesize.options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  ?domains:int ->
  ?progress:(int -> unit) ->
  Cycle_system.t ->
  cycles:int ->
  stuck_report

(** A stuck-at campaign run twice from the same recorded stimuli: once
    on the raw synthesized netlist and once on the [Netopt]-optimized
    one, with the {!Ocapi_ir} provenance chain that derived the
    optimized netlist from the behavioral root.  Optimization shrinks
    the fault universe (dead and duplicated logic carries undetectable
    faults), so the post-optimization coverage is the honest figure of
    merit for a test bench. *)
type stuck_compare = {
  sc_design : string;
  sc_pre : stuck_report;  (** campaign on the raw synthesized netlist *)
  sc_post : stuck_report;  (** campaign on the [Netopt]-optimized netlist *)
  sc_provenance : Ocapi_ir.pass_record list;
      (** the pass chain that produced the optimized netlist *)
}

(** [stuck_at_optimized sys ~cycles] records the system's stimuli once,
    lowers the system through the {!Ocapi_ir} pipeline
    ([lower-to-gate] then [optimize-gates]) and runs
    {!stuck_at_netlist} on both gate-level designs with the shared
    vectors.  All options are forwarded to both campaigns; [progress]
    (fault index) fires for each campaign in turn. *)
val stuck_at_optimized :
  ?max_faults:int ->
  ?seed:int ->
  ?settle_budget:int ->
  ?options:Synthesize.options ->
  ?macro_of_kernel:(Dataflow.Kernel.t -> Synthesize.macro_spec option) ->
  ?domains:int ->
  ?progress:(int -> unit) ->
  Cycle_system.t ->
  cycles:int ->
  stuck_compare

(** {1 SEU (transient bit-flip) campaigns}

    Campaigns run on any cycle engine of the {!Ocapi_engine} registry,
    selected by name (["interp"], ["compiled"], ["rtl"], or an alias);
    injection goes through the uniform session poke surface, so adding
    an engine to the registry makes it campaign-capable with no change
    here. *)

(** What a run flips: one bit of one register (indexed in
    [Cycle_system.all_regs] order), or one bit of one timed component's
    state register.  The engines hold FSM state as a 16-bit word (the
    RTL elaboration's state-signal format), so all 16 bits are targets;
    flips landing outside the encoded state indices are caught by the
    engine's state decode and classified [Detected] with code
    [Invalid_state].  Single-state FSMs carry no state register. *)
type seu_target =
  | Reg_bit of { t_reg : int; t_bit : int }
  | State_bit of { t_comp : int; t_bit : int }

type seu_outcome =
  | Masked  (** probe histories identical to the fault-free run *)
  | Sdc of { probe : string; cycle : int option; detail : string }
      (** silent data corruption: a token value differs at the same
          cycle *)
  | Detected of Ocapi_error.t
      (** the engine stopped with a structured diagnostic (deadlock,
          overflow, oscillation, invalid FSM state), or the output
          stream diverged structurally — tokens shifted, missing or
          stopped, which a system-level watchdog monitor catches
          (code [Watchdog]) *)

type seu_run = {
  run_index : int;
  run_target : seu_target;
  run_label : string;  (** e.g. ["acc\[3\]"], ["hcor.state\[1\]"] *)
  run_cycle : int;  (** injection cycle *)
  run_outcome : seu_outcome;
}

type seu_report = {
  seu_design : string;
  seu_engine : string;
  seu_runs : int;
  seu_cycles : int;
  seu_seed : int;
  seu_masked : int;
  seu_sdc : int;
  seu_detected : int;
  seu_records : seu_run list;
}

(** [seu_campaign sys ~cycles] runs [runs] (default 1000) independent
    simulations of [cycles] cycles on the registry engine named
    [engine] (default ["compiled"]; the report records the canonical
    registry name even when an alias was passed).  Run [i] flips one
    seeded-random state bit at one seeded-random cycle; outcomes are
    classified against the fault-free run of the same engine.
    [max_deltas] is the RTL engine's delta watchdog.  Deterministic:
    same [seed] (default 1), same report.

    [domains] (default [1] = the serial path) distributes the runs over
    an {!Ocapi_parallel} pool.  The whole injection schedule is drawn
    up front from [seed] in the historic serial draw order and runs are
    merged by index, so the report is bit-identical to the serial run
    for any [domains].  Worker 0 reuses [sys]; each further worker
    needs its own isolated copy of the design, built by [replicate]
    (engine sessions cache compiled state inside — or aliasing — the
    system, so systems cannot be shared across domains).

    @raise Ocapi_error.Error with code [Unsupported] on an unknown
    engine name, and with code [Shared_state] if [replicate] hands a
    worker the campaign system itself, the same system twice, or a
    system with live engine sessions ({!Flow.check_replica}).
    [progress] is called with the run index before each run (on the
    worker domain simulating it); it may raise — e.g. an [Ocapi_error]
    with code [Timeout] — to abandon the campaign cooperatively, the
    deadline/cancellation hook of batch jobs.

    When the {!Flow.Cache} is enabled, the whole report is memoized
    under a key derived with {!Flow.Cache.key_of} from the design
    digest, stimuli, engine, [runs], [max_deltas], [seed] and [cycles]:
    a repeated campaign is served from memory or disk bit-identically,
    identical campaigns in flight on other domains coalesce to one
    execution, and [progress] is not called on a hit.  [domains] is
    not part of the key — parallel and serial campaigns produce the
    same report.

    @raise Invalid_argument if [domains > 1] without [replicate], or if
    [replicate] builds a system whose fault-target universe differs
    from [sys]'s. *)
val seu_campaign :
  ?engine:string ->
  ?runs:int ->
  ?seed:int ->
  ?max_deltas:int ->
  ?domains:int ->
  ?replicate:(unit -> Cycle_system.t) ->
  ?progress:(int -> unit) ->
  Cycle_system.t ->
  cycles:int ->
  seu_report

(** The campaign session run with {e no} injection — must be bit-
    identical to the plain engine run (the zero-fault control of the
    test suite).  [engine] is a registry name, as for
    {!seu_campaign}. *)
val control_run :
  ?max_deltas:int ->
  engine:string ->
  Cycle_system.t ->
  cycles:int ->
  (string * (int * Fixed.t) list) list

(** {1 Reports} *)

val pp_stuck_report : Format.formatter -> stuck_report -> unit
val pp_stuck_compare : Format.formatter -> stuck_compare -> unit
val pp_seu_report : Format.formatter -> seu_report -> unit

(** JSON renderings (for [BENCH_fault.json] and the CLI). *)
val stuck_report_json : stuck_report -> Ocapi_obs.Json.t

val stuck_compare_json : stuck_compare -> Ocapi_obs.Json.t
val seu_report_json : seu_report -> Ocapi_obs.Json.t
