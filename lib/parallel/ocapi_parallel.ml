(* A fixed-size Domain.spawn pool with a chunked work queue and
   index-keyed (hence scheduling-independent) result merging. *)

exception
  Worker_error of { we_worker : int; we_exn : exn; we_backtrace : string }

let () =
  Printexc.register_printer (function
    | Worker_error { we_worker; we_exn; _ } ->
      Some
        (Printf.sprintf "Ocapi_parallel.Worker_error(worker %d: %s)" we_worker
           (Printexc.to_string we_exn))
    | _ -> None)

let available_domains () = Domain.recommended_domain_count ()

let extract out =
  Array.map (function Some v -> v | None -> assert false) out

let serial_run ~make_state ~tasks ~f =
  let st = make_state 0 in
  let out = Array.make tasks None in
  for i = 0 to tasks - 1 do
    out.(i) <- Some (f st i)
  done;
  extract out

let map_tasks ?(domains = 1) ?chunk ~make_state ~tasks ~f () =
  if tasks < 0 then invalid_arg "Ocapi_parallel.map_tasks: tasks < 0";
  (match chunk with
  | Some c when c <= 0 -> invalid_arg "Ocapi_parallel.map_tasks: chunk <= 0"
  | _ -> ());
  if tasks = 0 then [||]
  else begin
    let domains = max 1 (min domains tasks) in
    if domains = 1 then serial_run ~make_state ~tasks ~f
    else begin
      let chunk =
        match chunk with
        | Some c -> c
        | None -> max 1 (tasks / (domains * 8))
      in
      (* Worker states are built serially in this domain (construction
         touches process-wide gensyms/registries) and handed over. *)
      let states = Array.make domains None in
      for k = 0 to domains - 1 do
        states.(k) <- Some (make_state k)
      done;
      let out = Array.make tasks None in
      let next = Atomic.make 0 in
      let failure = Array.make domains None in
      let telemetry = Array.make domains None in
      let worker k st () =
        (try
           let rec drain () =
             let start = Atomic.fetch_and_add next chunk in
             if start < tasks then begin
               let stop = min (start + chunk) tasks in
               for i = start to stop - 1 do
                 out.(i) <- Some (f st i)
               done;
               drain ()
             end
           in
           drain ()
         with e ->
           failure.(k) <- Some (e, Printexc.get_backtrace ()));
        if Ocapi_obs.enabled () then
          telemetry.(k) <- Some (Ocapi_obs.export_domain ())
      in
      (* Spawn incrementally so a mid-way failure (domain limit, out of
         memory) can join the workers already launched — they drain the
         queue and terminate on their own — instead of leaking them. *)
      let handles = ref [] in
      (try
         for k = 0 to domains - 1 do
           match states.(k) with
           | Some st -> handles := Domain.spawn (worker k st) :: !handles
           | None -> assert false
         done
       with e ->
         List.iter Domain.join !handles;
         raise e);
      List.iter Domain.join !handles;
      (* Deterministic merge: telemetry in worker order, then the first
         failure by worker index, then the index-keyed results. *)
      Array.iter
        (function Some ex -> Ocapi_obs.absorb_domain ex | None -> ())
        telemetry;
      Array.iteri
        (fun k fail ->
          match fail with
          | Some (we_exn, we_backtrace) ->
            raise (Worker_error { we_worker = k; we_exn; we_backtrace })
          | None -> ())
        failure;
      extract out
    end
  end

(* --- persistent service pool ----------------------------------------------

   [map_tasks] is one batch: a fixed task count, spawn, drain, join.  A
   serving-shaped system (the batch job queue) instead needs domains
   that stay up and pull work as it arrives.  The pool stays dumb on
   purpose: it owns no queue of its own — workers call the caller's
   [pull], which blocks until work exists or the service is shutting
   down — so scheduling policy (priorities, coalescing, cancellation)
   lives entirely in the caller. *)
module Service = struct
  type t = {
    sv_handles : unit Domain.t array;
    sv_failures : (exn * string) option array;
    sv_telemetry : Ocapi_obs.domain_export option array;
    mutable sv_joined : bool;
  }

  let start ?(domains = 1) ~pull () =
    if domains < 1 then invalid_arg "Ocapi_parallel.Service.start: domains < 1";
    let failures = Array.make domains None in
    let telemetry = Array.make domains None in
    let worker k () =
      (try
         let rec loop () =
           match pull () with
           | Some thunk ->
             thunk ();
             loop ()
           | None -> ()
         in
         loop ()
       with e -> failures.(k) <- Some (e, Printexc.get_backtrace ()));
      if Ocapi_obs.enabled () then
        telemetry.(k) <- Some (Ocapi_obs.export_domain ())
    in
    {
      sv_handles = Array.init domains (fun k -> Domain.spawn (worker k));
      sv_failures = failures;
      sv_telemetry = telemetry;
      sv_joined = false;
    }

  let domains t = Array.length t.sv_handles

  let join t =
    if not t.sv_joined then begin
      t.sv_joined <- true;
      Array.iter Domain.join t.sv_handles;
      Array.iter
        (function Some ex -> Ocapi_obs.absorb_domain ex | None -> ())
        t.sv_telemetry;
      Array.iteri
        (fun k fail ->
          match fail with
          | Some (we_exn, we_backtrace) ->
            raise (Worker_error { we_worker = k; we_exn; we_backtrace })
          | None -> ())
        t.sv_failures
    end
end
