(** A fixed-size domain pool for embarrassingly parallel campaigns.

    Fault-injection campaigns, engine cross-verification sweeps and
    throughput benches all share one shape: a fixed number of
    {e independent} tasks, each a deterministic function of its index,
    run against {e per-worker isolated} simulation state.  This module
    runs that shape on OCaml 5 domains ([Domain.spawn], stdlib only —
    no [domainslib]) while keeping the result {b bit-identical to the
    serial run}: results are keyed by task index and merged in index
    order, so scheduling can never reorder, duplicate or drop a record.

    Design rules the pool enforces or relies on:

    - {b Per-worker state, built serially.}  [make_state k] is invoked
      in the {e calling} domain, for [k = 0, 1, ...], before any worker
      spawns.  Design construction and engine elaboration touch
      construction-time gensyms and registries (clock/signal/FSM ids,
      RAM-cell instances), so they stay single-domain; workers receive
      ownership of their state and must be the only domain touching it.
    - {b Chunked work queue.}  Workers pull half-open index ranges
      [\[start, start+chunk)] from one atomic counter until the queue
      is empty — cheap dynamic load balancing with no per-task
      synchronization.
    - {b Deterministic merge.}  Worker [k] writes result [i] into slot
      [i] of the output; after joining, worker telemetry is absorbed in
      worker order ({!Ocapi_obs.absorb_domain}), so merged counters
      equal the serial run's counters exactly.
    - {b Serial short-circuit.}  [domains <= 1] runs the same loop in
      the calling domain with a single state and spawns nothing: the
      default path is the existing serial path.

    Telemetry: when {!Ocapi_obs.enabled} is on at spawn time, each
    worker domain records into its own domain-local registry and trace
    buffer; the pool exports them at worker exit and merges them at
    join, so instrumented parallel campaigns aggregate correctly. *)

(** A worker died on an exception the task body did not handle.
    [we_worker] is the worker index, [we_exn] the original exception,
    [we_backtrace] its raw backtrace (empty unless backtraces are on).
    Raised in the calling domain after all workers have joined; the
    lowest-indexed failing worker wins. *)
exception
  Worker_error of { we_worker : int; we_exn : exn; we_backtrace : string }

(** What the runtime believes this machine can usefully run in
    parallel ({!Domain.recommended_domain_count}).  A campaign asking
    for more domains than this still works — the extra domains just
    time-share cores. *)
val available_domains : unit -> int

(** [map_tasks ~domains ~make_state ~tasks ~f ()] computes
    [[| f s0 0; f s? 1; ...; f s? (tasks-1) |]] where each task [i]
    runs exactly once on some worker's state.

    - [domains] (default [1]): pool size, clamped to [\[1, tasks\]].
      [1] runs serially in the calling domain — no spawn, no merge.
    - [chunk] (default [max 1 (tasks / (domains * 8))]): tasks per
      queue pull.  Larger chunks amortize the atomic fetch; smaller
      chunks balance uneven task costs.
    - [make_state k]: build worker [k]'s isolated state (a fresh
      simulator, a replicated system...).  Called serially in the
      calling domain before any spawn; see the module preamble.
    - [f state i]: run task [i].  Must touch only [state], data local
      to the call, and immutable shared structure; the result lands in
      slot [i] regardless of which worker ran it.

    @raise Worker_error when a task raises; every worker still joins
    first, and telemetry of the surviving workers is still merged.
    @raise Invalid_argument on [tasks < 0] or [chunk <= 0]. *)
val map_tasks :
  ?domains:int ->
  ?chunk:int ->
  make_state:(int -> 'w) ->
  tasks:int ->
  f:('w -> int -> 'a) ->
  unit ->
  'a array

(** {1 Persistent service pool}

    {!map_tasks} runs one finite batch; a serving-shaped consumer (the
    [Ocapi_batch] job queue) needs a pool of domains that stay up and
    pull work as it arrives.  {!Service} is that pool, kept free of
    policy: workers repeatedly call the caller-supplied [pull], which
    is expected to {e block} until it can return the next piece of work
    — or [None], which tells the calling worker to drain out and exit.
    Scheduling (priorities, FIFO order, coalescing, cancellation) is
    entirely the caller's business, inside [pull].

    [pull] and the thunks it returns execute on worker domains: they
    must only touch state that is itself domain-safe (the batch service
    guards its queue with one mutex).  Telemetry recorded by workers
    while {!Ocapi_obs.enabled} is merged into the joining domain at
    {!Service.join}, exactly as {!map_tasks} does at its joins. *)
module Service : sig
  type t

  (** [start ~domains ~pull ()] spawns [domains] worker domains, each
      looping [pull () -> thunk; thunk ()] until [pull] returns [None].
      @raise Invalid_argument on [domains < 1]. *)
  val start : ?domains:int -> pull:(unit -> (unit -> unit) option) -> unit -> t

  val domains : t -> int

  (** Wait for every worker to exit (each must have received [None]
      from [pull], so arrange shutdown before joining), then absorb
      worker telemetry.  Idempotent.
      @raise Worker_error if a thunk or [pull] let an exception escape
      on some worker (lowest worker index wins); remaining telemetry is
      still merged first. *)
  val join : t -> unit
end
