(* The native (dynlinked) engine: the paper's "regenerated" simulator,
   actually compiled.  [Emit.emit_plugin] renders the design as an OCaml
   module over unboxed int words (or int64 cells when the width analysis
   rejects packing); this host compiles it out-of-process with
   [ocamlfind ocamlopt -shared], loads the .cmxs with
   [Dynlink.loadfile_private], and wires the resulting raw state arrays
   into a full [Ocapi_engine.session].  Artifacts are cached on disk
   keyed by structural digest + emitter version, so compilation is
   one-time per structure; every failure path degrades to an interpreted
   [Compiled_sim] program behind the same session surface. *)

let engine_name = "native"

(* --- always-on statistics ------------------------------------------------- *)

(* Not gated on [Ocapi_obs.enabled]: tests use these to prove the true
   native path ran (the fallback would otherwise silently mask emission
   bugs) and that warm runs performed zero compiler invocations. *)

type stats = {
  compiles : int;
  cache_hits : int;
  corrupt_misses : int;
  fallbacks : int;
  loads : int;
}

let n_compiles = ref 0
let n_cache_hits = ref 0
let n_corrupt = ref 0
let n_fallbacks = ref 0
let n_loads = ref 0

let stats () =
  {
    compiles = !n_compiles;
    cache_hits = !n_cache_hits;
    corrupt_misses = !n_corrupt;
    fallbacks = !n_fallbacks;
    loads = !n_loads;
  }

let reset_stats () =
  n_compiles := 0;
  n_cache_hits := 0;
  n_corrupt := 0;
  n_fallbacks := 0;
  n_loads := 0

let bump counter obs_name =
  incr counter;
  if Ocapi_obs.enabled () then Ocapi_obs.count ("native." ^ obs_name)

(* --- availability --------------------------------------------------------- *)

let diag msg =
  Ocapi_error.make Ocapi_error.Native_unavailable ~severity:Ocapi_error.Warning
    ~engine:engine_name msg

let disabled () =
  match Sys.getenv_opt "OCAPI_NATIVE_DISABLE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let find_on_path exe =
  match Sys.getenv_opt "PATH" with
  | None -> None
  | Some path ->
    String.split_on_char ':' path
    |> List.find_map (fun d ->
           if d = "" then None
           else
             let p = Filename.concat d exe in
             if Sys.file_exists p then Some p else None)

let abi_cmi = "ocapi_native_abi.cmi"

(* The plugin is compiled against the ABI's .cmi from this build tree
   (so Dynlink's interface-digest check is against the very module the
   host links).  Walk up from the executable and the cwd towards a dune
   _build root; [OCAPI_NATIVE_CMI_DIR] overrides for installed use. *)
let cmi_dir () =
  let candidate d = Sys.file_exists (Filename.concat d abi_cmi) in
  match Sys.getenv_opt "OCAPI_NATIVE_CMI_DIR" with
  | Some d -> if candidate d then Some d else None
  | None ->
    let objs = Filename.concat "native_abi" ".ocapi_native_abi.objs" in
    let rels =
      [
        Filename.concat "_build"
          (Filename.concat "default" (Filename.concat "lib" objs));
        Filename.concat "lib" objs;
      ]
      |> List.map (fun d -> Filename.concat d "byte")
    in
    let rec walk base n =
      if n > 8 then None
      else
        match
          List.find_opt (fun rel -> candidate (Filename.concat base rel)) rels
        with
        | Some rel -> Some (Filename.concat base rel)
        | None ->
          let parent = Filename.dirname base in
          if parent = base then None else walk parent (n + 1)
    in
    let roots = [ Filename.dirname Sys.executable_name; Sys.getcwd () ] in
    List.fold_left
      (fun acc r -> match acc with Some _ -> acc | None -> walk r 0)
      None roots

let availability () =
  if disabled () then
    Error (diag "native engine disabled by OCAPI_NATIVE_DISABLE")
  else if not Dynlink.is_native then
    Error (diag "host runs bytecode; native Dynlink is unavailable")
  else
    match find_on_path "ocamlfind" with
    | None -> Error (diag "no ocamlfind on PATH; cannot compile plugins")
    | Some _ -> begin
      match cmi_dir () with
      | None ->
        Error
          (diag
             "plugin ABI interface (ocapi_native_abi.cmi) not found; set \
              OCAPI_NATIVE_CMI_DIR")
      | Some _ -> Ok ()
    end

(* --- artifact cache ------------------------------------------------------- *)

(* Always-on disk cache, independent of Flow.Cache being enabled, so a
   warm second process skips the compiler entirely.  Defaults to a
   per-user directory under the system temp dir; [OCAPI_NATIVE_CACHE_DIR]
   relocates it (tests use a fresh directory to force a cold start). *)
let cache_dir () =
  match Sys.getenv_opt "OCAPI_NATIVE_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "ocapi-native-cache"

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    (try Sys.mkdir d 0o755 with Sys_error _ -> ())
  end

let clear_disk_cache () =
  let dir = cache_dir () in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if String.length f >= 12 && String.sub f 0 12 = "ocapi_plugin" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

(* Optional second tier: Flow.Cache's store, installed by the flow
   layer so `--cache` runs keep .cmxs bytes next to history entries. *)
let shared_find : (string -> (string * string) option) ref =
  ref (fun _ -> None)

let shared_store : (string -> string * string -> unit) ref =
  ref (fun _ _ -> ())

let set_shared_store ~find ~store =
  shared_find := find;
  shared_store := store

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic-enough writes (tmp + rename) so a concurrent process never
   loads a torn .cmxs. *)
let write_file path contents =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Hashtbl.hash path)
      (Hashtbl.hash contents)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let cache_key sys ~cmi =
  let cmi_digest =
    try Digest.to_hex (Digest.file (Filename.concat cmi abi_cmi))
    with Sys_error _ -> "no-cmi"
  in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            Cycle_system.digest sys;
            string_of_int Emit.emitter_version;
            Sys.ocaml_version;
            cmi_digest;
          ]))

(* --- out-of-process compilation and loading ------------------------------- *)

(* Plugin loads hand off through one global slot in [Ocapi_native_abi],
   and engine sweeps create sessions from several domains at once, so
   the whole locate-compile-load path is serialized. *)
let load_mutex = Mutex.create ()

exception Fall of Ocapi_error.t

let compile_cmxs ~cmi ~src ~out =
  let ocamlfind =
    match find_on_path "ocamlfind" with
    | Some p -> p
    | None -> raise (Fall (diag "ocamlfind disappeared from PATH"))
  in
  let native_objs = Filename.concat (Filename.dirname cmi) "native" in
  let incs =
    Printf.sprintf "-I %s%s" (Filename.quote cmi)
      (if Sys.file_exists native_objs then
         " -I " ^ Filename.quote native_objs
       else "")
  in
  let log = out ^ ".log" in
  let cmd =
    Printf.sprintf "%s ocamlopt -shared -w -a %s %s -o %s > %s 2>&1"
      (Filename.quote ocamlfind) incs (Filename.quote src)
      (Filename.quote out) (Filename.quote log)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then begin
    let detail = try read_file log with _ -> "" in
    let detail =
      if String.length detail > 400 then String.sub detail 0 400 else detail
    in
    raise
      (Fall (diag (Printf.sprintf "plugin compile failed (rc %d): %s" rc detail)))
  end

exception Bad_plugin

(* Every load dynlinks a throwaway copy of the artifact under a unique
   pathname.  dlopen dedupes by pathname: loading the cached [.cmxs]
   path a second time would re-run the module initializer over the
   already-mapped object, rebinding the module globals out from under
   every live session built from the same digest (engine sweeps and
   parallel fault campaigns do exactly this).  A fresh inode per load
   makes each plugin instance genuinely private; the copy is unlinked
   immediately after loading (the mapping keeps the inode alive). *)
let load_plugin path =
  Ocapi_native_abi.clear ();
  let priv = Filename.temp_file "ocapi_plugin_load" ".cmxs" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove priv with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin priv in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (read_file path));
      Dynlink.loadfile_private priv;
      match Ocapi_native_abi.take () with
      | Some p -> p
      | None -> raise Bad_plugin)

let read_meta path : Emit.plugin_meta option =
  match
    (try Some (Marshal.from_string (read_file path) 0) with _ -> None)
  with
  | Some m when m.Emit.pm_version = Emit.emitter_version -> Some m
  | _ -> None

(* Locate or build the (plugin, meta) pair for [sys]: disk artifact ->
   Flow.Cache store -> fresh emission + compile.  Runs under the load
   mutex.  Raises [Fall] on environmental failures (the caller degrades
   to the interpreted program) and [Compiled_types.Unsupported] on
   design-level rejections (shared verbatim with the compiled engine). *)
let obtain_plugin sys =
  let cmi =
    match cmi_dir () with
    | Some d -> d
    | None -> raise (Fall (diag "plugin ABI interface not found"))
  in
  let dir = cache_dir () in
  mkdir_p dir;
  let key = cache_key sys ~cmi in
  let base = Filename.concat dir ("ocapi_plugin_" ^ key) in
  let cmxs = base ^ ".cmxs" and metaf = base ^ ".meta" in
  let drop_corrupt () =
    bump n_corrupt "corrupt_misses";
    (try Sys.remove cmxs with Sys_error _ -> ());
    (try Sys.remove metaf with Sys_error _ -> ())
  in
  let try_load ~count_hit () =
    match read_meta metaf with
    | None -> None
    | Some meta -> (
      try
        let p = load_plugin cmxs in
        bump n_loads "loads";
        if count_hit then bump n_cache_hits "cache_hits";
        Some (p, meta)
      with _ -> None)
  in
  let from_disk =
    if Sys.file_exists cmxs && Sys.file_exists metaf then begin
      match try_load ~count_hit:true () with
      | Some r -> Some r
      | None ->
        drop_corrupt ();
        None
    end
    else None
  in
  let from_store =
    match from_disk with
    | Some r -> Some r
    | None -> begin
      match !shared_find key with
      | None -> None
      | Some (cmxs_bytes, meta_bytes) -> (
        write_file cmxs cmxs_bytes;
        write_file metaf meta_bytes;
        match try_load ~count_hit:true () with
        | Some r -> Some r
        | None ->
          drop_corrupt ();
          None)
    end
  in
  match from_store with
  | Some r -> r
  | None ->
    let t_compile = Ocapi_obs.span_begin () in
    let src, meta = Emit.emit_plugin sys in
    write_file (base ^ ".ml") src;
    compile_cmxs ~cmi ~src:(base ^ ".ml") ~out:cmxs;
    write_file metaf (Marshal.to_string (meta : Emit.plugin_meta) []);
    bump n_compiles "compiles";
    Ocapi_obs.span_end ~cat:"native"
      ~args:[ ("key", Ocapi_obs.Json.String key) ]
      "native.compile" t_compile;
    (try !shared_store key (read_file cmxs, read_file metaf)
     with _ -> ());
    (match try_load ~count_hit:false () with
    | Some r -> r
    | None -> raise (Fall (diag "freshly compiled plugin failed to load")))

(* --- session construction ------------------------------------------------- *)

let get_slot (p : Ocapi_native_abi.plugin) i =
  match p.Ocapi_native_abi.p_values with
  | Ocapi_native_abi.Words a -> Int64.of_int a.(i)
  | Ocapi_native_abi.Boxed a -> a.(i)

let set_slot (p : Ocapi_native_abi.plugin) i v =
  match p.Ocapi_native_abi.p_values with
  | Ocapi_native_abi.Words a -> a.(i) <- Int64.to_int v
  | Ocapi_native_abi.Boxed a -> a.(i) <- v

let wrap_mantissa (f : Fixed.format) m =
  let w = f.Fixed.width in
  let mask = Int64.sub (Int64.shift_left 1L w) 1L in
  match f.Fixed.signedness with
  | Fixed.Unsigned -> Int64.logand m mask
  | Fixed.Signed ->
    let low = Int64.logand m mask in
    if Int64.logand low (Int64.shift_left 1L (w - 1)) <> 0L then
      Int64.sub low (Int64.shift_left 1L w)
    else low

(* Probe histories are recorded into growable unboxed arrays and only
   materialized as [Fixed.t] lists when [ses_histories] is called: the
   obvious per-cycle [Fixed.create] + cons would cost more than the
   whole generated step (every [Int64] intermediate boxes), and probe
   recording runs once per probe per cycle. *)
type probe_rec = {
  pr_name : string;
  pr_slot : int;
  pr_stamp : int;
  pr_fmt : Fixed.format;
  mutable pr_cycles : int array;
  mutable pr_ints : int array;  (* mantissas, [Words] plugins *)
  mutable pr_i64s : int64 array;  (* mantissas, [Boxed] plugins *)
  mutable pr_len : int;
}

let ensure_capacity ~words pr =
  if pr.pr_len = Array.length pr.pr_cycles then begin
    let cap = max 256 (2 * pr.pr_len) in
    let grow a zero =
      let b = Array.make cap zero in
      Array.blit a 0 b 0 pr.pr_len;
      b
    in
    pr.pr_cycles <- grow pr.pr_cycles 0;
    if words then pr.pr_ints <- grow pr.pr_ints 0
    else pr.pr_i64s <- grow pr.pr_i64s 0L
  end

let probe_history ~words pr =
  let rec go i acc =
    if i < 0 then acc
    else
      let m =
        if words then Int64.of_int pr.pr_ints.(i) else pr.pr_i64s.(i)
      in
      go (i - 1) ((pr.pr_cycles.(i), Fixed.create pr.pr_fmt m) :: acc)
  in
  go (pr.pr_len - 1) []

(* A close that detaches exactly once, however many times callers'
   cleanup paths run it. *)
let closer sys =
  let closed = ref false in
  fun () ->
    if not !closed then begin
      closed := true;
      Cycle_system.detach_engine sys engine_name
    end

let install_kernels (p : Ocapi_native_abi.plugin) (meta : Emit.plugin_meta)
    untimed =
  List.iteri
    (fun j (kname, inputs, outputs) ->
      let k =
        match List.assoc_opt kname untimed with
        | Some k -> k
        | None ->
          Ocapi_error.fail Ocapi_error.Internal ~engine:engine_name
            "plugin metadata names unknown kernel %s" kname
      in
      let fire () =
        if k.Dataflow.Kernel.k_ready () then begin
          if Ocapi_obs.enabled () then Ocapi_obs.count "native.kernel_firings";
          let consumed =
            List.map
              (fun (port, slot, fmt) ->
                (port, [ Fixed.create fmt (get_slot p slot) ]))
              inputs
          in
          let produced = k.Dataflow.Kernel.k_behavior consumed in
          List.iter
            (fun (port, slot, stamp) ->
              match List.assoc_opt port produced with
              | Some [ v ] ->
                set_slot p slot (Fixed.mantissa v);
                p.Ocapi_native_abi.p_stamps.(stamp) <-
                  !(p.Ocapi_native_abi.p_cycle)
              | Some _ | None -> ())
            outputs
        end
      in
      let commit () =
        if k.Dataflow.Kernel.k_ready () then k.Dataflow.Kernel.k_commit ()
      in
      p.Ocapi_native_abi.p_kernels.(j) <- fire;
      p.Ocapi_native_abi.p_kernel_commits.(j) <- commit)
    meta.Emit.pm_kernels

let native_session sys =
  let p, meta =
    Mutex.protect load_mutex (fun () -> obtain_plugin sys)
  in
  let untimed = Cycle_system.untimed_components sys in
  install_kernels p meta untimed;
  let stims =
    meta.Emit.pm_stims
    |> List.filter_map (fun (name, slot, stampi) ->
           Cycle_system.primary_inputs sys
           |> List.find_opt (fun (n, _, _) -> n = name)
           |> Option.map (fun (_, _, fn) -> (fn, slot, stampi)))
    |> Array.of_list
  in
  let probes =
    meta.Emit.pm_probes
    |> List.map (fun (name, slot, stampi, fmt) ->
           {
             pr_name = name;
             pr_slot = slot;
             pr_stamp = stampi;
             pr_fmt = fmt;
             pr_cycles = [||];
             pr_ints = [||];
             pr_i64s = [||];
             pr_len = 0;
           })
    |> Array.of_list
  in
  (* Mode-specialized recorder: the [Words] path never touches a boxed
     value, keeping the per-cycle host overhead to a few array writes. *)
  let record_probes =
    let stamps = p.Ocapi_native_abi.p_stamps in
    match p.Ocapi_native_abi.p_values with
    | Ocapi_native_abi.Words a ->
      fun c ->
        Array.iter
          (fun pr ->
            if stamps.(pr.pr_stamp) = c then begin
              ensure_capacity ~words:true pr;
              pr.pr_cycles.(pr.pr_len) <- c;
              pr.pr_ints.(pr.pr_len) <- a.(pr.pr_slot);
              pr.pr_len <- pr.pr_len + 1
            end)
          probes
    | Ocapi_native_abi.Boxed a ->
      fun c ->
        Array.iter
          (fun pr ->
            if stamps.(pr.pr_stamp) = c then begin
              ensure_capacity ~words:false pr;
              pr.pr_cycles.(pr.pr_len) <- c;
              pr.pr_i64s.(pr.pr_len) <- a.(pr.pr_slot);
              pr.pr_len <- pr.pr_len + 1
            end)
          probes
  in
  let words =
    match p.Ocapi_native_abi.p_values with
    | Ocapi_native_abi.Words _ -> true
    | Ocapi_native_abi.Boxed _ -> false
  in
  let regs = Array.of_list meta.Emit.pm_regs in
  let comps = Array.of_list meta.Emit.pm_comps in
  let step () =
    let c = !(p.Ocapi_native_abi.p_cycle) in
    Array.iter
      (fun (fn, slot, stampi) ->
        match fn c with
        | Some v ->
          set_slot p slot (Fixed.mantissa v);
          p.Ocapi_native_abi.p_stamps.(stampi) <- c
        | None -> ())
      stims;
    (try p.Ocapi_native_abi.p_step () with
    | Ocapi_native_abi.Native_overflow msg ->
      raise
        (Ocapi_error.Error
           (Ocapi_error.make Ocapi_error.Overflow ~engine:engine_name ~cycle:c
              msg)));
    record_probes c;
    if Ocapi_obs.enabled () then Ocapi_obs.count "native.steps"
  in
  let reset () =
    p.Ocapi_native_abi.p_reset ();
    List.iter (fun (_, k) -> k.Dataflow.Kernel.k_reset ()) untimed;
    Array.iter (fun pr -> pr.pr_len <- 0) probes
  in
  Cycle_system.attach_engine sys engine_name;
  {
    Ocapi_engine.ses_engine = engine_name;
    ses_step = step;
    ses_cycle = (fun () -> !(p.Ocapi_native_abi.p_cycle));
    ses_reset = reset;
    ses_histories =
      (fun () ->
        Array.to_list probes
        |> List.map (fun pr -> (pr.pr_name, probe_history ~words pr)));
    ses_register_count = Array.length regs;
    ses_register_info =
      (fun i ->
        let name, fmt, _ = regs.(i) in
        (name, fmt));
    ses_poke_register_bit =
      (fun i ~bit ->
        let name, fmt, slot = regs.(i) in
        if bit < 0 || bit >= fmt.Fixed.width then
          invalid_arg
            (Printf.sprintf
               "flip_register_bit: bit %d outside %s for register %s" bit
               (Fixed.format_to_string fmt) name);
        let flipped =
          Int64.logxor (get_slot p slot) (Int64.shift_left 1L bit)
        in
        set_slot p slot (wrap_mantissa fmt flipped));
    ses_component_count = Array.length comps;
    ses_component_info = (fun i -> comps.(i));
    ses_component_state = (fun i -> p.Ocapi_native_abi.p_states.(i));
    ses_force_component_state =
      (fun i s ->
        let cname, n = comps.(i) in
        if s < 0 || s >= n then
          raise
            (Ocapi_error.Error
               (Ocapi_error.make Ocapi_error.Invalid_state ~engine:engine_name
                  ~construct:cname
                  ~cycle:!(p.Ocapi_native_abi.p_cycle)
                  (Printf.sprintf
                     "FSM driven into unencoded state %d (%d states)" s n)));
        p.Ocapi_native_abi.p_states.(i) <- s);
    ses_resident_words =
      (fun () -> Obj.reachable_words (Obj.repr (p, probes, regs, comps)));
    ses_static_size = Some meta.Emit.pm_statements;
    ses_close = closer sys;
  }

(* The interpreted-compiled degradation: same session surface, same
   [ses_engine] name (so sweep artifacts stay deterministic whether or
   not a toolchain is present), same histories. *)
let fallback_session sys =
  bump n_fallbacks "fallbacks";
  let prog = Compiled_sim.compile sys in
  let probes = Cycle_system.probes sys in
  Cycle_system.attach_engine sys engine_name;
  {
    Ocapi_engine.ses_engine = engine_name;
    ses_step = (fun () -> Compiled_sim.step prog);
    ses_cycle = (fun () -> Compiled_sim.current_cycle prog);
    ses_reset = (fun () -> Compiled_sim.reset prog);
    ses_histories =
      (fun () ->
        List.map (fun p -> (p, Compiled_sim.output_history prog p)) probes);
    ses_register_count = Compiled_sim.register_count prog;
    ses_register_info = Compiled_sim.register_info prog;
    ses_poke_register_bit = Compiled_sim.flip_register_bit prog;
    ses_component_count = Compiled_sim.component_count prog;
    ses_component_info = Compiled_sim.component_info prog;
    ses_component_state = Compiled_sim.component_state prog;
    ses_force_component_state = Compiled_sim.set_component_state prog;
    ses_resident_words = (fun () -> Obj.reachable_words (Obj.repr prog));
    ses_static_size = Some (Compiled_sim.statement_count prog);
    ses_close = closer sys;
  }

module Native_engine : Ocapi_engine.ENGINE = struct
  let name = engine_name
  let display = "native"
  let aliases = [ "jit" ]

  let capabilities =
    {
      Ocapi_engine.cap_two_phase = false;
      cap_max_deltas = false;
      cap_shares_registers = false;
      cap_static_size = true;
      cap_register_pokes = true;
      cap_state_pokes = true;
    }

  let make ?options:_ sys =
    Cycle_system.reset sys;
    match availability () with
    | Error _ -> fallback_session sys
    | Ok () -> (
      try native_session sys
      with Fall _ | Bad_plugin -> fallback_session sys)
end

let registered = ref false

let register_engine () =
  if not !registered then begin
    registered := true;
    Ocapi_engine.register (module Native_engine : Ocapi_engine.ENGINE)
  end
