(** The native compiled engine: the generated simulator, dynlinked.

    This is the fourth first-class {!Ocapi_engine.ENGINE} (registered
    as ["native"], alias ["jit"]).  Where the interpreted compiled
    engine walks a statement array, this engine feeds the design
    through [Emit.emit_plugin], compiles the emitted module
    out-of-process with [ocamlfind ocamlopt -shared], loads the
    resulting [.cmxs] with [Dynlink.loadfile_private], and drives the
    plugin's raw state arrays through the common session surface —
    stimuli, probe histories, register bit pokes, FSM state forcing,
    untimed kernels and telemetry all behave exactly as on the other
    engines.

    {2 Lifecycle}

    Session creation follows a three-rung ladder:

    + {b Word-packed native}: the emitter's width-bound analysis proves
      every net and register mantissa fits an unboxed 63-bit OCaml
      [int]; the plugin simulates over [int array] words.
    + {b Boxed native}: the analysis rejects packing (values provably
      or possibly wider than 62 magnitude bits); the plugin simulates
      over [int64 array] cells — still compiled machine code.
    + {b Interpreted fallback}: no toolchain on [PATH], bytecode host,
      missing ABI [.cmi], compile or load failure, or
      [OCAPI_NATIVE_DISABLE] set — the session silently degrades to an
      interpreted [Compiled_sim] program that reports
      [ses_engine = "native"], so sweep artifacts stay byte-identical
      whether or not a toolchain is present.

    Compiled artifacts ([.cmxs] plus a marshalled [Emit.plugin_meta]
    sidecar) are cached on disk keyed by
    [md5(Cycle_system.digest | Emit.emitter_version | Sys.ocaml_version
    | ABI cmi digest)], so warm loads skip the compiler entirely; a
    second tier in [Flow.Cache]'s store is wired up by the flow layer
    via {!set_shared_store}.  Corrupt or stale artifacts are counted,
    deleted and recompiled.  Every load goes through a throwaway copy
    of the artifact under a unique path: the dynamic loader dedupes
    shared objects by pathname, so re-loading a cached [.cmxs] in
    place would hand concurrent sessions of the same design one shared
    mapping and let a later load re-initialise the module under an
    earlier session.  The copy guarantees each session owns a private
    plugin instance.

    Environment variables: [OCAPI_NATIVE_DISABLE] (any value but
    [""]/[0] forces the fallback rung), [OCAPI_NATIVE_CACHE_DIR]
    (relocates the artifact cache), [OCAPI_NATIVE_CMI_DIR] (points at
    the directory holding [ocapi_native_abi.cmi] for installed use). *)

(** {1 Registration} *)

(** Register the ["native"] engine (alias ["jit"]) with
    {!Ocapi_engine.register}.  Idempotent; called by the flow layer at
    startup so every [Ocapi_engine.find]/[get] client sees it. *)
val register_engine : unit -> unit

(** {1 Availability} *)

(** [availability ()] is [Ok ()] when a session would take a native
    rung, or [Error d] with a {!Ocapi_error.Native_unavailable}
    diagnostic explaining which prerequisite is missing (toolchain,
    native Dynlink, ABI interface, or an explicit disable).  Sessions
    never fail for these reasons — they degrade — so this is the
    introspection point for tests and doctors. *)
val availability : unit -> (unit, Ocapi_error.t) result

(** {1 Statistics} *)

(** Monotonic counters since start (or {!reset_stats}).  Always on —
    independent of [Ocapi_obs] telemetry — because tests use them to
    prove which rung ran: a warm cache shows [compiles = 0] with
    [cache_hits > 0]; a toolchain-less host shows [fallbacks > 0]. *)
type stats = {
  compiles : int;  (** out-of-process [ocamlopt] invocations *)
  cache_hits : int;  (** plugin loads served from a cached [.cmxs] *)
  corrupt_misses : int;
      (** cached artifacts that failed to unmarshal, load, or register
          — counted, deleted, then recompiled *)
  fallbacks : int;  (** sessions that degraded to the interpreted rung *)
  loads : int;  (** successful [Dynlink] loads (fresh or cached) *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** {1 Cache wiring} *)

(** Install the second-tier artifact store (the flow layer passes
    [Flow.Cache]-backed hooks).  [find key] returns
    [(cmxs_bytes, meta_bytes)]; [store key (cmxs_bytes, meta_bytes)]
    persists a freshly compiled pair. *)
val set_shared_store :
  find:(string -> (string * string) option) ->
  store:(string -> string * string -> unit) ->
  unit

(** Delete all plugin artifacts in the disk cache directory (used by
    benchmarks to measure cold-compile cost deterministically). *)
val clear_disk_cache : unit -> unit

(** The artifact cache directory currently in effect
    ([OCAPI_NATIVE_CACHE_DIR] or a fixed location under the system
    temp dir). *)
val cache_dir : unit -> string
