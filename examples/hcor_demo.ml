(* HCOR demo: the DECT header correlator processor hunting for the
   S-field sync word in a noisy multipath burst, then emitting the
   payload — Table 1's first design, end to end.

     dune exec examples/hcor_demo.exe *)

let () =
  (* The "Matlab level": burst, channel, receiver quantization. *)
  let bits = Dect_stimuli.burst ~seed:2026 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~taps:[| 1.0; 0.15; -0.05 |] ~snr_db:22.0 ~seed:2026 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  Printf.printf "burst: %d bits (16 preamble + 16 sync + 388 payload)\n"
    (Array.length bits);
  (* The chip. *)
  let h = Hcor.create ~stimulus:(Hcor.sample_stimulus samples) () in
  let sys = h.Hcor.system in
  let n = Array.length samples + 8 in
  Cycle_system.run sys n;
  let hist p =
    match Cycle_system.find_component sys p with
    | Some c -> Cycle_system.output_history sys c
    | None -> []
  in
  (* Lock instant vs the floating-point golden receiver. *)
  let locked = hist "locked" in
  (match List.find_opt (fun (_, v) -> Fixed.is_true v) locked with
  | Some (c, _) ->
    Printf.printf "HCOR locked at cycle %d " c;
    (match Dect_stimuli.find_sync (Dect_stimuli.slice rx) ~threshold:14 with
    | Some g -> Printf.printf "(golden model: sync ends at sample %d)\n" g
    | None -> print_newline ())
  | None -> print_endline "HCOR never locked");
  (* Peak correlation. *)
  let corr = hist "corr" in
  let peak = List.fold_left (fun acc (_, v) -> max acc (Fixed.to_int v)) 0 corr in
  Printf.printf "peak hard correlation: %d / 16\n" peak;
  (* Payload bit error rate against the transmitted payload. *)
  let locked_at = Array.make n false in
  List.iter (fun (c, v) -> if c < n then locked_at.(c) <- Fixed.is_true v) locked;
  let emitted = List.filter (fun (c, _) -> c < n && locked_at.(c)) (hist "bit_out") in
  let payload = Array.sub bits 32 388 in
  let errors = ref 0 in
  List.iteri
    (fun i (_, v) ->
      if i < Array.length payload && Fixed.is_true v <> payload.(i) then incr errors)
    emitted;
  Printf.printf "payload: %d bits emitted, %d errors\n" (List.length emitted) !errors;
  (* The full back end: synthesis, gate count, gate-level verification. *)
  let _, rep = Synthesize.synthesize sys in
  Printf.printf "synthesized: %d gate-equivalents (paper: ~6 Kgates)\n"
    rep.Synthesize.total.Netlist.gate_equivalents;
  let r = Flow.verify_netlist sys ~cycles:150 in
  Printf.printf "netlist vs reference: %d vectors, %d mismatches\n"
    r.Synthesize.vectors_checked
    (List.length r.Synthesize.mismatches)
