(* The section 3.3 story: the same datapath descriptions under a
   data-driven target and under central control.

     dune exec examples/arch_migration_demo.exe

   "Originally, a data-flow target architecture was chosen... the
   extreme latency requirement required the introduction of global
   exceptions... the target architecture was changed from data driven to
   central control.  The machine model allowed to reuse the datapath
   descriptions and only required the control descriptions to be
   reworked." *)

let () =
  let samples =
    Array.init 120 (fun i ->
        Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
          (sin (float i *. 0.9) /. 2.0))
  in
  (* One capture of the datapaths: DC removal, 16-tap FIR, slicer. *)
  let chain = Arch_migration.build_chain () in
  (* Target 1: local data-driven control (data-flow scheduler). *)
  let r1, st1 = Arch_migration.run_dataflow chain samples in
  Printf.printf "data-flow target:     %d bits, %d process firings%s\n"
    (List.length r1.Arch_migration.r_bits)
    st1.Dataflow.steps
    (if st1.Dataflow.deadlocked then " (deadlocked!)" else "");
  (* Target 2: central control (cycle scheduler). *)
  let r2, st2 = Arch_migration.run_central chain samples in
  Printf.printf "central-control target: %d bits in %d clock cycles\n"
    (List.length r2.Arch_migration.r_bits)
    st2.Cycle_system.cycles;
  (* The datapaths were reused unchanged: the results are identical. *)
  let bits_equal = r1.Arch_migration.r_bits = r2.Arch_migration.r_bits in
  let soft_equal =
    List.for_all2 Fixed.equal r1.Arch_migration.r_soft r2.Arch_migration.r_soft
  in
  Printf.printf "identical bit decisions:  %b\n" bits_equal;
  Printf.printf "identical soft outputs:   %b\n" soft_equal;
  print_endline
    "(the global hold exception that motivated the migration is\n\
    \ exercised on the central-control DECT chip in dect_demo.exe)"
