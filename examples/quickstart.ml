(* Quickstart: capture a small clock-cycle-true design, check it,
   simulate it on three engines, and synthesize it to gates.

     dune exec examples/quickstart.exe

   The design is a saturating moving-average filter: a 4-deep window of
   s8.4 samples, averaged and saturated, with a freeze input modeled as
   an FSM condition register (the paper's fig 2 style). *)

let fmt = Fixed.signed ~width:8 ~frac:4
let clk = Clock.default

let () =
  (* 1. Capture: registers, one SFG per FSM action. *)
  let window = Array.init 4 (fun i -> Signal.Reg.create clk (Printf.sprintf "w%d" i) fmt) in
  let frozen = Signal.Reg.create clk "frozen" Fixed.bit_format in
  let running =
    Sfg.build "running" (fun b ->
        let x = Sfg.Builder.input b "x" fmt in
        let freeze = Sfg.Builder.input b "freeze" Fixed.bit_format in
        (* Shift the window and average the new contents. *)
        let n = Array.init 4 (fun i -> if i = 0 then x else Signal.reg_q window.(i - 1)) in
        Array.iteri (fun i r -> Sfg.Builder.assign_resized b r n.(i)) window;
        let sum = Signal.(n.(0) +: n.(1) +: n.(2) +: n.(3)) in
        Sfg.Builder.output b "avg"
          (Signal.resize ~round:Fixed.Round_nearest ~overflow:Fixed.Saturate fmt
             (Signal.shift_right sum 2));
        Sfg.Builder.assign b frozen freeze)
  in
  let idle =
    Sfg.build "idle" (fun b ->
        let freeze = Sfg.Builder.input b "freeze" Fixed.bit_format in
        Sfg.Builder.output b "avg" (Signal.resize fmt (Signal.reg_q window.(0)));
        Sfg.Builder.assign b frozen freeze)
  in
  (* 2. Control: a two-state Mealy machine on the registered condition. *)
  let fsm = Fsm.create "filter_ctl" in
  let s_run = Fsm.initial fsm "run" in
  let s_idle = Fsm.state fsm "idle" in
  Fsm.(s_run |-- cnd (Signal.reg_q frozen) |+ idle |-> s_idle);
  Fsm.(s_run |-- always |+ running |-> s_run);
  Fsm.(s_idle |-- cnd (Signal.reg_q frozen) |+ idle |-> s_idle);
  Fsm.(s_idle |-- always |+ running |-> s_run);
  (* 3. System: components over the interconnect, stimuli, probes. *)
  let sys = Cycle_system.create "quickstart" in
  let filt = Cycle_system.add_timed sys "filter" fsm in
  let x_in =
    Cycle_system.add_input sys "x_in" fmt (fun c ->
        Some (Fixed.of_float ~overflow:Fixed.Saturate fmt (sin (float c /. 3.0) *. 2.0)))
  in
  let freeze_in =
    Cycle_system.add_input sys "freeze_in" Fixed.bit_format (fun c ->
        Some (Fixed.of_bool (c >= 12 && c < 18)))
  in
  let avg_out = Cycle_system.add_output sys "avg_out" in
  ignore (Cycle_system.connect sys (x_in, "out") [ (filt, "x") ]);
  ignore (Cycle_system.connect sys (freeze_in, "out") [ (filt, "freeze") ]);
  ignore (Cycle_system.connect sys (filt, "avg") [ (avg_out, "in") ]);
  (* 4. Checks (dangling inputs, FSM reachability, interconnect). *)
  let report = Flow.check sys in
  Format.printf "checks: %a@." Flow.pp_check_report report;
  (* 5. Simulate: interpreted, compiled, event-driven RT — identical. *)
  (match Flow.engines_agree sys ~cycles:30 with
  | [] -> print_endline "interpreted == compiled == event-driven RT over 30 cycles"
  | l -> List.iter (fun d -> Printf.printf "DISAGREEMENT: %s\n" d) l);
  let histories = Flow.simulate sys ~cycles:30 in
  let avg = List.assoc "avg_out" histories in
  print_string "avg_out: ";
  List.iteri
    (fun i (_, v) -> if i < 12 then Printf.printf "%.3f " (Fixed.to_float v))
    avg;
  print_newline ();
  (* 6. Synthesize to gates and verify against the reference. *)
  let _, rep = Synthesize.synthesize sys in
  Format.printf "%a@." Synthesize.pp_report rep;
  let r = Flow.verify_netlist sys ~cycles:30 in
  Printf.printf "gate-level verification: %d vectors, %d mismatches\n"
    r.Synthesize.vectors_checked
    (List.length r.Synthesize.mismatches)
