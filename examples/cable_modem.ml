(* Reuse demonstrator: an upstream cable-modem transmitter.

     dune exec examples/cable_modem.exe

   The paper's conclusion notes the library "is currently being reused
   for several demonstrator designs, including an upstream cable
   modem".  This example builds one with the same public API: an x^15
   scrambler, a QPSK mapper and two 4-tap pulse-shaping FIRs, then runs
   the usual battery — engine agreement, VHDL generation, synthesis and
   gate-level verification. *)

let clk = Clock.default
let bit = Fixed.bit_format
let iq_fmt = Fixed.signed ~width:10 ~frac:6

let bit_of e i = Signal.resize bit (Signal.shift_right e i)

let () =
  (* Scrambler: x^15 + x^14 + 1, self-synchronizing transmit side. *)
  let lfsr = Signal.Reg.create clk "cm_lfsr" ~init:(Fixed.of_int (Fixed.unsigned ~width:15 ~frac:0) 0x5AA5) (Fixed.unsigned ~width:15 ~frac:0) in
  let scrambler =
    Sfg.build "cm_scramble" (fun b ->
        let d = Sfg.Builder.input b "d" bit in
        let q = Signal.reg_q lfsr in
        let fb = Signal.(bit_of q 14 ^: bit_of q 13) in
        let out = Signal.(d ^: fb) in
        Sfg.Builder.assign_resized b lfsr
          Signal.(resize (Fixed.unsigned ~width:15 ~frac:0) (shift_left q 1) |: out);
        Sfg.Builder.output b "sbit" out)
  in
  (* QPSK mapper: pairs of bits to (I, Q) in {-0.707, +0.707}. *)
  let half = Signal.Reg.create clk "cm_half" bit in
  let last = Signal.Reg.create clk "cm_last" bit in
  let i_r = Signal.Reg.create clk "cm_i" iq_fmt in
  let q_r = Signal.Reg.create clk "cm_q" iq_fmt in
  let mapper =
    Sfg.build "cm_map" (fun b ->
        let s = Sfg.Builder.input b "s" bit in
        let amp = Signal.constf iq_fmt 0.703125 in
        let namp = Signal.constf iq_fmt (-0.703125) in
        let sym v = Signal.mux2 v amp namp in
        (* Even bits load I-candidate; odd bits commit both rails. *)
        Sfg.Builder.assign b last s;
        Sfg.Builder.assign b half (Signal.not_ (Signal.reg_q half));
        Sfg.Builder.assign b i_r
          (Signal.resize iq_fmt
             (Signal.mux2 (Signal.reg_q half) (sym (Signal.reg_q last))
                (Signal.reg_q i_r)));
        Sfg.Builder.assign b q_r
          (Signal.resize iq_fmt
             (Signal.mux2 (Signal.reg_q half) (sym s) (Signal.reg_q q_r)));
        Sfg.Builder.output b "i_sym" (Signal.resize iq_fmt (Signal.reg_q i_r));
        Sfg.Builder.output b "q_sym" (Signal.resize iq_fmt (Signal.reg_q q_r)))
  in
  (* Pulse shaping: 4-tap FIR per rail (shared code, two instances). *)
  let shaper rail =
    let taps = [| 0.25; 0.75; 0.75; 0.25 |] in
    let w =
      Array.init 4 (fun i ->
          Signal.Reg.create clk (Printf.sprintf "cm_%s_w%d" rail i) iq_fmt)
    in
    Sfg.build ("cm_shape_" ^ rail) (fun b ->
        let x = Sfg.Builder.input b "x" iq_fmt in
        let n = Array.init 4 (fun i -> if i = 0 then x else Signal.reg_q w.(i - 1)) in
        Array.iteri (fun i r -> Sfg.Builder.assign_resized b r n.(i)) w;
        let terms =
          Array.to_list
            (Array.mapi (fun i xi -> Signal.(xi *: constf iq_fmt taps.(i))) n)
        in
        let sum = List.fold_left Signal.add (List.hd terms) (List.tl terms) in
        Sfg.Builder.output b "y"
          (Signal.resize ~round:Fixed.Round_nearest ~overflow:Fixed.Saturate
             iq_fmt sum))
  in
  let timed name sfg =
    let f = Fsm.create (name ^ "_ctl") in
    let s0 = Fsm.initial f "run" in
    Fsm.(s0 |-- always |+ sfg |-> s0);
    f
  in
  let sys = Cycle_system.create "cable_modem" in
  let c_scr = Cycle_system.add_timed sys "scrambler" (timed "scr" scrambler) in
  let c_map = Cycle_system.add_timed sys "mapper" (timed "map" mapper) in
  let c_shi = Cycle_system.add_timed sys "shaper_i" (timed "shi" (shaper "i")) in
  let c_shq = Cycle_system.add_timed sys "shaper_q" (timed "shq" (shaper "q")) in
  let rng = Random.State.make [| 31 |] in
  let data = Array.init 512 (fun _ -> Random.State.bool rng) in
  let d_in =
    Cycle_system.add_input sys "data_in" bit (fun c ->
        Some (Fixed.of_bool data.(c mod 512)))
  in
  let p_i = Cycle_system.add_output sys "i_out" in
  let p_q = Cycle_system.add_output sys "q_out" in
  ignore (Cycle_system.connect sys (d_in, "out") [ (c_scr, "d") ]);
  ignore (Cycle_system.connect sys (c_scr, "sbit") [ (c_map, "s") ]);
  ignore (Cycle_system.connect sys (c_map, "i_sym") [ (c_shi, "x") ]);
  ignore (Cycle_system.connect sys (c_map, "q_sym") [ (c_shq, "x") ]);
  ignore (Cycle_system.connect sys (c_shi, "y") [ (p_i, "in") ]);
  ignore (Cycle_system.connect sys (c_shq, "y") [ (p_q, "in") ]);
  Format.printf "checks: %a@." Flow.pp_check_report (Flow.check sys);
  (match Flow.engines_agree sys ~cycles:200 with
  | [] -> print_endline "all engines agree over 200 cycles"
  | l -> List.iter print_endline l);
  let hist = Flow.simulate sys ~cycles:24 in
  print_string "I rail: ";
  List.iter
    (fun (_, v) -> Printf.printf "%+.2f " (Fixed.to_float v))
    (List.assoc "i_out" hist);
  print_newline ();
  let _, rep = Synthesize.synthesize sys in
  Printf.printf "synthesized: %d gate-equivalents across %d components\n"
    rep.Synthesize.total.Netlist.gate_equivalents
    (List.length rep.Synthesize.components);
  let r = Flow.verify_netlist sys ~cycles:80 in
  Printf.printf "netlist verification: %d vectors, %d mismatches\n"
    r.Synthesize.vectors_checked
    (List.length r.Synthesize.mismatches)
