(* Reuse demonstrator: a lossy image compressor front end.

     dune exec examples/image_compressor.exe

   The paper's conclusion lists "an image compressor" among the designs
   the library was being reused for.  This one is a DPCM + quantizer +
   zero-run-length chain over a scanned 32x32 test image:

     predictor   residual = pixel - previous pixel  (registered DPCM)
     quantizer   residual quantized to s5.0 with round-to-nearest,
                 saturating (the lossy step)
     rle         zero runs collapsed; emits (valid, value, run) tokens

   A floating-point-free golden model reconstructs the image from the
   emitted symbols and reports compression ratio and peak error, then
   the design goes through the usual battery. *)

let clk = Clock.default
let pix_fmt = Fixed.unsigned ~width:8 ~frac:0
let res_fmt = Fixed.signed ~width:9 ~frac:0
let q_fmt = Fixed.signed ~width:5 ~frac:0
let run_fmt = Fixed.unsigned ~width:6 ~frac:0

let () =
  (* The test image: a synthetic gradient with a bright square. *)
  let size = 32 in
  let image =
    Array.init (size * size) (fun i ->
        let x = i mod size and y = i / size in
        let v = (x * 3) + (y * 2) in
        let v = if x >= 10 && x < 20 && y >= 12 && y < 22 then v + 90 else v in
        min 255 v)
  in
  (* -- capture -------------------------------------------------------- *)
  let prev = Signal.Reg.create clk "ic_prev" pix_fmt in
  let predictor =
    Sfg.build "ic_predict" (fun b ->
        let x = Sfg.Builder.input b "x" pix_fmt in
        Sfg.Builder.output b "residual"
          (Signal.resize res_fmt Signal.(x -: reg_q prev));
        Sfg.Builder.assign b prev (Signal.resize pix_fmt x))
  in
  let quantizer =
    Sfg.build "ic_quant" (fun b ->
        let r = Sfg.Builder.input b "r" res_fmt in
        Sfg.Builder.output b "q"
          (Signal.resize ~round:Fixed.Round_nearest ~overflow:Fixed.Saturate
             q_fmt (Signal.shift_right r 3)))
  in
  let run_r = Signal.Reg.create clk "ic_run" run_fmt in
  let rle =
    Sfg.build "ic_rle" (fun b ->
        let q = Sfg.Builder.input b "q" q_fmt in
        let is_zero = Signal.(q ==: consti q_fmt 0) in
        let run_full = Signal.(reg_q run_r ==: consti run_fmt 63) in
        let emit = Signal.(or_ (not_ is_zero) run_full) in
        Sfg.Builder.output b "valid" emit;
        Sfg.Builder.output b "value" (Signal.resize q_fmt q);
        Sfg.Builder.output b "run" (Signal.resize run_fmt (Signal.reg_q run_r));
        Sfg.Builder.assign b run_r
          (Signal.mux2 emit
             (Signal.consti run_fmt 0)
             (Signal.resize run_fmt
                Signal.(reg_q run_r +: consti run_fmt 1))))
  in
  let timed name sfg =
    let f = Fsm.create (name ^ "_ctl") in
    let s0 = Fsm.initial f "run" in
    Fsm.(s0 |-- always |+ sfg |-> s0);
    f
  in
  let sys = Cycle_system.create "image_compressor" in
  let c_pred = Cycle_system.add_timed sys "predictor" (timed "pred" predictor) in
  let c_quant = Cycle_system.add_timed sys "quantizer" (timed "quant" quantizer) in
  let c_rle = Cycle_system.add_timed sys "rle" (timed "rle" rle) in
  let pix_in =
    Cycle_system.add_input sys "pixel_in" pix_fmt (fun c ->
        Some (Fixed.of_int pix_fmt (if c < size * size then image.(c) else 0)))
  in
  let p_valid = Cycle_system.add_output sys "valid_out" in
  let p_value = Cycle_system.add_output sys "value_out" in
  let p_run = Cycle_system.add_output sys "run_out" in
  ignore (Cycle_system.connect sys (pix_in, "out") [ (c_pred, "x") ]);
  ignore (Cycle_system.connect sys (c_pred, "residual") [ (c_quant, "r") ]);
  ignore (Cycle_system.connect sys (c_quant, "q") [ (c_rle, "q") ]);
  ignore (Cycle_system.connect sys (c_rle, "valid") [ (p_valid, "in") ]);
  ignore (Cycle_system.connect sys (c_rle, "value") [ (p_value, "in") ]);
  ignore (Cycle_system.connect sys (c_rle, "run") [ (p_run, "in") ]);
  (* -- run and decode ------------------------------------------------- *)
  let cycles = size * size in
  Cycle_system.run sys cycles;
  let hist p =
    match Cycle_system.find_component sys p with
    | Some c -> Cycle_system.output_history sys c
    | None -> []
  in
  let valids = hist "valid_out" and values = hist "value_out" in
  let runs = hist "run_out" in
  (* Symbol stream: (zero-run, quantized value) whenever valid. *)
  let symbols =
    List.filter_map
      (fun (c, v) ->
        if Fixed.is_true v then
          Some
            ( Fixed.to_int (List.assoc c runs),
              Fixed.to_int (List.assoc c values) )
        else None)
      valids
  in
  (* Golden decode: replay the DPCM loop with dequantized residuals. *)
  let reconstructed = Array.make (size * size) 0 in
  let idx = ref 0 and prev_v = ref 0 in
  List.iter
    (fun (run, value) ->
      for _ = 1 to run do
        if !idx < size * size then begin
          reconstructed.(!idx) <- !prev_v;
          incr idx
        end
      done;
      if !idx < size * size then begin
        let v = max 0 (min 255 (!prev_v + (value * 8))) in
        reconstructed.(!idx) <- v;
        prev_v := v;
        incr idx
      end)
    symbols;
  (* Tail of trailing zeros that never flushed. *)
  while !idx < size * size do
    reconstructed.(!idx) <- !prev_v;
    incr idx
  done;
  let peak_err = ref 0 and sum_err = ref 0 in
  Array.iteri
    (fun i v ->
      let e = abs (v - reconstructed.(i)) in
      peak_err := max !peak_err e;
      sum_err := !sum_err + e)
    image;
  Printf.printf "image: %dx%d, symbols emitted: %d (%.1f%% of pixels)\n" size
    size (List.length symbols)
    (100.0 *. float (List.length symbols) /. float (size * size));
  Printf.printf "reconstruction: peak error %d, mean error %.2f (lossy by design)\n"
    !peak_err
    (float !sum_err /. float (size * size));
  (* -- the battery ----------------------------------------------------- *)
  (match Flow.engines_agree sys ~cycles:200 with
  | [] -> print_endline "all engines agree"
  | l -> List.iter print_endline l);
  let r = Flow.verify_netlist sys ~cycles:200 in
  Printf.printf "netlist verification: %d vectors, %d mismatches\n"
    r.Synthesize.vectors_checked
    (List.length r.Synthesize.mismatches);
  let nl, rep = Synthesize.synthesize sys in
  let _, opt = Netopt.run nl in
  Printf.printf "gates: %d raw, %d after optimization\n"
    rep.Synthesize.total.Netlist.gate_equivalents opt.Netopt.equivalents_after
