(* DECT transceiver demo: the paper's 75 Kgate driver design.

     dune exec examples/dect_demo.exe

   Runs a noisy multipath burst through the full fig 5 architecture
   (VLIW controller, 22 datapaths, 7 RAM cells), compares the equalizer
   output and sliced bits against the fixed-point golden model,
   demonstrates the fig 2 hold exception, and synthesizes the chip. *)

let ll = Dect_transceiver.loop_length

let build_samples ~symbols ~seed =
  let bits = Dect_stimuli.burst ~seed () in
  let tx = Dect_stimuli.transmit (Array.sub bits 0 symbols) in
  let rx = Dect_stimuli.channel ~taps:[| 1.0; 0.45; -0.2 |] ~snr_db:30.0 ~seed tx in
  let cycles = (symbols + 2) * ll in
  let samples = Array.make cycles (Fixed.zero Dect_transceiver.sample_format) in
  Array.iteri
    (fun n v ->
      let c = (ll * n) + 1 in
      if c < cycles then
        samples.(c) <-
          Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
            (v /. 2.0))
    rx;
  (samples, cycles, bits)

let () =
  let symbols = 50 in
  let samples, cycles, _ = build_samples ~symbols ~seed:98 in
  let d =
    Dect_transceiver.create ~stimulus:(Dect_transceiver.sample_stimulus samples) ()
  in
  let sys = d.Dect_transceiver.system in
  Printf.printf "architecture: %d datapaths (%s), %d RAM cells, %d-word microprogram\n"
    (List.length d.Dect_transceiver.instruction_counts)
    (String.concat ", "
       (List.map
          (fun (n, c) -> Printf.sprintf "%s:%d" n c)
          (List.filteri (fun i _ -> i < 4) d.Dect_transceiver.instruction_counts)
       @ [ "..." ]))
    (List.length d.Dect_transceiver.ram_names)
    d.Dect_transceiver.program_length;
  Cycle_system.run sys cycles;
  let hist p =
    match Cycle_system.find_component sys p with
    | Some c -> Cycle_system.output_history sys c
    | None -> []
  in
  (* Equalizer output vs the golden fixed-point model. *)
  let golden = Dect_transceiver.golden_reference samples ~symbols in
  let soft = hist "soft_out" and bits = hist "bit_out" in
  let ok = ref 0 and bad = ref 0 in
  for n = 0 to symbols - 3 do
    match List.assoc_opt ((ll * (n + 1)) + 4) soft with
    | Some v ->
      if Fixed.equal v golden.Dect_transceiver.g_soft.(n) then incr ok
      else incr bad
    | None -> incr bad
  done;
  Printf.printf "equalizer output vs golden: %d/%d symbols exact\n" !ok (!ok + !bad);
  let okb = ref 0 in
  for n = 0 to symbols - 3 do
    match List.assoc_opt ((ll * (n + 1)) + 5) bits with
    | Some v -> if Fixed.is_true v = golden.Dect_transceiver.g_bits.(n) then incr okb
    | None -> ()
  done;
  Printf.printf "sliced decisions vs golden: %d/%d exact\n" !okb (symbols - 2);
  (* The hold exception (fig 2): a held run is the exact delayed run. *)
  let const_stim _ = Some (Fixed.of_float Dect_transceiver.sample_format 0.4) in
  let d1 = Dect_transceiver.create ~stimulus:const_stim () in
  let d2 =
    Dect_transceiver.create ~hold:(fun c -> c >= 50 && c < 58) ~stimulus:const_stim ()
  in
  Cycle_system.run d1.Dect_transceiver.system 240;
  Cycle_system.run d2.Dect_transceiver.system 248;
  let h1 =
    match Cycle_system.find_component d1.Dect_transceiver.system "crc_probe" with
    | Some c -> Cycle_system.output_history d1.Dect_transceiver.system c
    | None -> []
  in
  let h2 =
    match Cycle_system.find_component d2.Dect_transceiver.system "crc_probe" with
    | Some c -> Cycle_system.output_history d2.Dect_transceiver.system c
    | None -> []
  in
  let delayed_exactly =
    List.for_all
      (fun c ->
        match List.assoc_opt c h1, List.assoc_opt (c + 8) h2 with
        | Some a, Some b -> Fixed.equal a b
        | _ -> false)
      (List.init 100 (fun i -> i + 100))
  in
  Printf.printf "hold exception: 8-cycle hold => stream delayed exactly 8 cycles: %b\n"
    delayed_exactly;
  (* Synthesis of the full chip. *)
  let _, rep =
    Synthesize.synthesize ~macro_of_kernel:Dect_transceiver.macro_of_kernel sys
  in
  Printf.printf
    "synthesized: %d gate-equivalents (comb %d, %d flip-flops, %d ROM bits, %d RAM bits)\n"
    rep.Synthesize.total.Netlist.gate_equivalents
    rep.Synthesize.total.Netlist.combinational
    rep.Synthesize.total.Netlist.flip_flops rep.Synthesize.total.Netlist.rom_bits
    rep.Synthesize.total.Netlist.ram_bits;
  Printf.printf "  (paper: 75 Kgates in 0.7 um CMOS; same order of magnitude)\n";
  (* Operator sharing in the 57-instruction datapath. *)
  (match
     List.find_opt
       (fun c -> c.Synthesize.cr_name = "dp_equ")
       rep.Synthesize.components
   with
  | Some c ->
    Printf.printf "dp_equ (57 instructions): %d shareable ops bound to %d units\n"
      c.Synthesize.cr_ops_before_sharing
      (List.fold_left (fun a (_, n) -> a + n) 0 c.Synthesize.cr_shared_units)
  | None -> ());
  (* Gate-level verification with recorded vectors. *)
  let d3, _, _ = (fun () -> let s, c, b = build_samples ~symbols:6 ~seed:98 in
                   (Dect_transceiver.create ~stimulus:(Dect_transceiver.sample_stimulus s) (), c, b)) () in
  let r =
    Flow.verify_netlist ~macro_of_kernel:Dect_transceiver.macro_of_kernel
      d3.Dect_transceiver.system ~cycles:100
  in
  Printf.printf "netlist vs reference: %d vectors, %d mismatches\n"
    r.Synthesize.vectors_checked
    (List.length r.Synthesize.mismatches)
