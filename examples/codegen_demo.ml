(* Code-generation demo (figs 7 and 8): from one capture, generate

     - synthesizable VHDL (controller + datapath entities, top level),
     - a self-checking VHDL test bench from recorded stimuli,
     - the structural Verilog netlist after synthesis,
     - a standalone compiled OCaml simulator, which is then actually
       compiled with ocamlfind and diffed against the in-process engine.

     dune exec examples/codegen_demo.exe *)

let () =
  (* Reuse the HCOR design as the generation target. *)
  let bits = Dect_stimuli.burst ~seed:5 () in
  let tx = Dect_stimuli.transmit (Array.sub bits 0 80) in
  let rx = Dect_stimuli.channel ~snr_db:30.0 ~seed:5 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 3.0) rx)
  in
  let h = Hcor.create ~stimulus:(Hcor.sample_stimulus samples) () in
  let sys = h.Hcor.system in
  let dir = "_generated" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  (* VHDL per fig 8. *)
  let vhdl_paths = Flow.emit_vhdl sys ~dir in
  List.iter (fun p -> Printf.printf "wrote %s\n" p) vhdl_paths;
  (* Test bench from recorded simulation (section 6). *)
  let tb = Flow.emit_testbench sys ~dir ~cycles:40 in
  Printf.printf "wrote %s\n" tb;
  (* Verilog netlist after synthesis. *)
  let nl, rep, netlist_path = Flow.synthesize_to_verilog sys ~dir in
  Printf.printf "wrote %s (%d gate-equivalents)\n" netlist_path
    rep.Synthesize.total.Netlist.gate_equivalents;
  (* The same netlist in the paper's other HDL (HCOR's Table 1 row is
     "VHDL (netlist)"). *)
  let vhdl_netlist = Filename.concat dir "hcor_netlist.vhd" in
  let oc = open_out vhdl_netlist in
  output_string oc (Vhdl.of_netlist nl);
  close_out oc;
  Printf.printf "wrote %s\n" vhdl_netlist;
  (* The regenerated compiled simulator (fig 7), built and executed. *)
  let cycles = 60 in
  let sim_path = Flow.emit_ocaml_simulator sys ~dir ~cycles in
  Printf.printf "wrote %s\n" sim_path;
  let exe = Filename.concat dir "hcor_sim.exe" in
  let rc =
    Sys.command
      (Printf.sprintf
         "ocamlfind ocamlopt %s -o %s >/dev/null 2>&1 || ocamlopt %s -o %s >/dev/null 2>&1"
         sim_path exe sim_path exe)
  in
  if rc <> 0 then print_endline "could not compile the emitted simulator (no ocamlopt?)"
  else begin
    let ic = Unix.open_process_in exe in
    let count = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr count
       done
     with End_of_file -> ());
    ignore (Unix.close_process_in ic);
    let expected =
      List.fold_left
        (fun acc (_, hist) -> acc + List.length hist)
        0
        (Flow.simulate sys ~cycles)
    in
    Printf.printf
      "standalone simulator: %d probe tokens over %d cycles (in-process: %d) %s\n"
      !count cycles expected
      (if !count = expected then "-- MATCH" else "-- MISMATCH");
    (* Code-size comparison, the C1 claim. *)
    let capture_lines = Hcor.source_lines () in
    let vhdl_lines = Vhdl.line_count (Vhdl.of_system sys) in
    Printf.printf
      "code size: OCaml capture %d lines, generated RT VHDL %d lines (x%.1f)\n"
      capture_lines vhdl_lines
      (float vhdl_lines /. float capture_lines)
  end
