(* Reuse demonstrator: a wireless-LAN modem (802.11-style DSSS link).

     dune exec examples/wlan_modem.exe

   The paper's conclusion lists "a wireless LAN modem" among the reuse
   targets.  This example builds a DBPSK direct-sequence link, both
   sides, in one system:

     TX: differential encoder -> 11-chip Barker spreader
     RX: Barker correlator (sign-of-sum despreader) -> differential
         decoder

   and checks that the decoded bit stream equals the transmitted one
   (a loopback BER of zero), then runs the engine and synthesis
   battery.  One data bit occupies 11 chip cycles; the chip counter
   lives in the TX and its phase is exported to the RX, as a wire-link
   modem would share its chip clock. *)

let clk = Clock.default
let bit = Fixed.bit_format
let cnt_fmt = Fixed.unsigned ~width:4 ~frac:0
let corr_fmt = Fixed.signed ~width:5 ~frac:0

(* The 11-chip Barker code, +1/-1 as 1/0. *)
let barker = [| true; false; true; true; false; true; true; true; false; false; false |]

let () =
  let barker_rom =
    Signal.Rom.create "barker" bit
      (Array.map (fun b -> Fixed.of_bool b) barker)
  in
  (* -- transmitter ----------------------------------------------------- *)
  let chip_cnt = Signal.Reg.create clk "wl_chip" cnt_fmt in
  let dbit = Signal.Reg.create clk "wl_dbit" bit in
  let tx =
    Sfg.build "wl_tx" (fun b ->
        let data = Sfg.Builder.input b "data" bit in
        let boundary = Signal.(reg_q chip_cnt ==: consti cnt_fmt 10) in
        (* Differential encoding at the bit boundary. *)
        let next_dbit = Signal.(reg_q dbit ^: data) in
        Sfg.Builder.assign b dbit
          (Signal.resize bit (Signal.mux2 boundary next_dbit (Signal.reg_q dbit)));
        Sfg.Builder.assign b chip_cnt
          (Signal.mux2 boundary
             (Signal.consti cnt_fmt 0)
             (Signal.resize cnt_fmt
                Signal.(reg_q chip_cnt +: consti cnt_fmt 1)));
        let chip =
          Signal.(reg_q dbit ^: rom barker_rom (reg_q chip_cnt))
        in
        Sfg.Builder.output b "chip" chip;
        Sfg.Builder.output b "phase" (Signal.resize cnt_fmt (Signal.reg_q chip_cnt)))
  in
  (* -- receiver --------------------------------------------------------- *)
  let acc = Signal.Reg.create clk "wl_acc" corr_fmt in
  let rx_prev = Signal.Reg.create clk "wl_prev" bit in
  let rx_bit = Signal.Reg.create clk "wl_bit" bit in
  let rx_valid = Signal.Reg.create clk "wl_valid" bit in
  let rx =
    Sfg.build "wl_rx" (fun b ->
        let chip = Sfg.Builder.input b "chip" bit in
        let phase = Sfg.Builder.input b "phase" cnt_fmt in
        (* Correlate: +1 when the chip matches the Barker chip. *)
        let expectation = Signal.rom barker_rom phase in
        let agree = Signal.(~:(chip ^: expectation)) in
        let delta =
          Signal.mux2 agree (Signal.consti corr_fmt 1) (Signal.consti corr_fmt (-1))
        in
        let boundary = Signal.(phase ==: consti cnt_fmt 10) in
        let summed = Signal.(resize corr_fmt (reg_q acc +: delta)) in
        Sfg.Builder.assign b acc
          (Signal.resize corr_fmt
             (Signal.mux2 boundary (Signal.consti corr_fmt 0) summed));
        (* At the boundary the despread symbol is the sign of the sum;
           differential decode against the previous symbol. *)
        let symbol = Signal.(summed >: consti corr_fmt 0) in
        Sfg.Builder.assign b rx_prev
          (Signal.resize bit (Signal.mux2 boundary symbol (Signal.reg_q rx_prev)));
        Sfg.Builder.assign b rx_bit
          (Signal.resize bit
             (Signal.mux2 boundary
                Signal.(symbol ^: reg_q rx_prev)
                (Signal.reg_q rx_bit)));
        Sfg.Builder.assign b rx_valid (Signal.resize bit boundary);
        Sfg.Builder.output b "bit_out" (Signal.reg_q rx_bit);
        Sfg.Builder.output b "valid_out" (Signal.reg_q rx_valid))
  in
  let timed name sfg =
    let f = Fsm.create (name ^ "_ctl") in
    let s0 = Fsm.initial f "run" in
    Fsm.(s0 |-- always |+ sfg |-> s0);
    f
  in
  let sys = Cycle_system.create "wlan_modem" in
  let c_tx = Cycle_system.add_timed sys "tx" (timed "tx" tx) in
  let c_rx = Cycle_system.add_timed sys "rx" (timed "rx" rx) in
  let rng = Random.State.make [| 4711 |] in
  let data = Array.init 64 (fun _ -> Random.State.bool rng) in
  let d_in =
    Cycle_system.add_input sys "data_in" bit (fun c ->
        (* One data bit per 11-chip period. *)
        Some (Fixed.of_bool data.(c / 11 mod 64)))
  in
  let p_bit = Cycle_system.add_output sys "rx_bit" in
  let p_valid = Cycle_system.add_output sys "rx_valid" in
  ignore (Cycle_system.connect sys (d_in, "out") [ (c_tx, "data") ]);
  ignore (Cycle_system.connect sys (c_tx, "chip") [ (c_rx, "chip") ]);
  ignore (Cycle_system.connect sys (c_tx, "phase") [ (c_rx, "phase") ]);
  ignore (Cycle_system.connect sys (c_rx, "bit_out") [ (p_bit, "in") ]);
  ignore (Cycle_system.connect sys (c_rx, "valid_out") [ (p_valid, "in") ]);
  (* -- loopback BER ----------------------------------------------------- *)
  let n_bits = 40 in
  let cycles = (n_bits + 3) * 11 in
  Cycle_system.run sys cycles;
  let hist p =
    match Cycle_system.find_component sys p with
    | Some c -> Cycle_system.output_history sys c
    | None -> []
  in
  let valids = hist "rx_valid" and bits = hist "rx_bit" in
  let decoded =
    List.filter_map
      (fun (c, v) ->
        if Fixed.is_true v then
          Some (c, Fixed.is_true (List.assoc c bits))
        else None)
      valids
  in
  (* The first decoded symbol has no differential reference; skip it and
     align against the transmitted stream. *)
  let errors = ref 0 and compared = ref 0 in
  List.iteri
    (fun i (_, b) ->
      if i >= 1 && i - 1 < n_bits then begin
        incr compared;
        if b <> data.(i - 1) then incr errors
      end)
    decoded;
  Printf.printf "DSSS loopback: %d bits decoded, %d compared, %d errors\n"
    (List.length decoded) !compared !errors;
  (* -- battery ----------------------------------------------------------- *)
  (match Flow.engines_agree sys ~cycles:150 with
  | [] -> print_endline "all engines agree"
  | l -> List.iter print_endline l);
  let r = Flow.verify_netlist sys ~cycles:150 in
  Printf.printf "netlist verification: %d vectors, %d mismatches\n"
    r.Synthesize.vectors_checked
    (List.length r.Synthesize.mismatches);
  let nl, rep = Synthesize.synthesize sys in
  let _, opt = Netopt.run nl in
  Printf.printf "gates: %d raw, %d optimized\n"
    rep.Synthesize.total.Netlist.gate_equivalents opt.Netopt.equivalents_after;
  (* A waveform for the curious. *)
  if not (Sys.file_exists "_generated") then Unix.mkdir "_generated" 0o755;
  Vcd.write sys ~cycles:120 ~path:"_generated/wlan_modem.vcd";
  print_endline "wrote _generated/wlan_modem.vcd"
